// Scenario: a TFN2K distributed denial-of-service attack.
//
// TFN2K floods a victim with spoofed UDP/ICMP/SYN traffic from many
// compromised hosts; spoofing keeps each apparent source's volume low, so
// per-source rate limiting fails. This example drives the full Section 6
// harness at the paper's three attack volumes (2%, 4%, 8% of normal
// traffic) and prints detection/false-positive rates plus the per-attack
// breakdown, with TFN2K highlighted.
//
// Build & run:  ./build/examples/ddos_tfn2k

#include <cstdio>

#include "sim/testbed.h"

using namespace infilter;

int main() {
  sim::ExperimentConfig config;
  config.normal_flows_per_source = 4000;
  config.training_flows = 1500;
  config.engine.mode = core::EngineMode::kEnhanced;
  config.engine.cluster.bits_per_feature = 144;  // the paper's d = 720
  config.seed = 5150;

  sim::ClusterCache cache(config);
  std::printf("TFN2K DDoS through Peer AS1, Enhanced InFilter (d = 720)\n");
  std::printf("%-10s %-12s %-12s %-14s %-10s\n", "volume", "detected", "of", "fp-rate",
              "tfn2k");
  for (const double volume : {0.02, 0.04, 0.08}) {
    config.attack_volume = volume;
    const auto result = sim::run_experiment(config, cache.get(config.seed));
    const auto& tfn =
        result.per_kind[static_cast<std::size_t>(traffic::AttackKind::kTfn2k)];
    std::printf("%-10.0f %-12d %-12d %-14.2f %s\n", volume * 100,
                result.detected_instances, result.attack_instances,
                100.0 * result.false_positive_rate(),
                tfn.second == tfn.first ? "DETECTED" : "missed");
  }

  // Show where the flood is caught: flow-level stage counts at 8%.
  config.attack_volume = 0.08;
  const auto detail = sim::run_experiment(config, cache.get(config.seed));
  std::printf("\nstage breakdown at 8%% attack volume: scan=%llu nns=%llu\n",
              static_cast<unsigned long long>(detail.alerts_scan),
              static_cast<unsigned long long>(detail.alerts_nns));
  std::printf("flow-level: %llu of %llu attack flows detected (%.0f%%)\n",
              static_cast<unsigned long long>(detail.detected_attack_flows),
              static_cast<unsigned long long>(detail.attack_flows),
              100.0 * detail.flow_detection_rate());

  std::printf("\nper-attack detection (instances detected/launched):\n");
  for (int k = 0; k < traffic::kStandardAttackKindCount; ++k) {
    const auto& [total, hit] = detail.per_kind[static_cast<std::size_t>(k)];
    std::printf("  %-20s %d/%d\n",
                std::string(traffic::attack_name(static_cast<traffic::AttackKind>(k)))
                    .c_str(),
                hit, total);
  }
  return 0;
}

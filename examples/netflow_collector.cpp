// Scenario: the full collection pipeline of Figure 9, byte-for-byte.
//
// A simulated border router meters packets in its NetFlow cache, exports
// v5 datagrams, a flow-tools style collector captures them (with a dropped
// datagram to show sequence-gap accounting), flow-report summarizes the
// traffic, and the Enhanced InFilter engine consumes the captured flows
// and prints an Alert-UI style console feed.
//
// Build & run:  ./build/examples/netflow_collector

#include <cstdio>

#include "core/engine.h"
#include "dagflow/dagflow.h"
#include "flowtools/capture.h"
#include "flowtools/report.h"
#include "netflow/flow_cache.h"
#include "traffic/attacks.h"
#include "traffic/normal.h"

using namespace infilter;

int main() {
  util::Rng rng{2025};

  // --- The border router: packets -> flow cache -> v5 datagrams. ---
  netflow::FlowCache router(netflow::FlowCacheConfig{});
  traffic::NormalTrafficModel model;
  const auto trace = model.generate(300, 0, rng);
  dagflow::Dagflow rewrite(
      dagflow::DagflowConfig{},
      dagflow::AddressPool::from_subblocks({*net::SubBlock::parse("1a")}), 1);
  // Turn each flow into a packet train through the metering cache.
  for (const auto& labeled : rewrite.replay(trace)) {
    const auto& r = labeled.record;
    const std::uint32_t packets = std::min(r.packets, 20u);  // cap the train
    for (std::uint32_t p = 0; p < packets; ++p) {
      netflow::PacketObservation packet;
      packet.key = r.key();
      packet.bytes = r.bytes / std::max(1u, packets);
      packet.tcp_flags = p + 1 == packets ? r.tcp_flags : 0;
      packet.time = r.first + (r.last - r.first) * p / std::max(1u, packets);
      router.observe(packet);
    }
  }
  const auto records = router.flush(trace.duration() + 60000);
  std::printf("router metered %zu flows\n", records.size());

  std::uint32_t sequence = 0;
  auto datagrams = netflow::encode_all(records, trace.duration(), sequence);
  std::printf("exported %zu v5 datagrams (%u flow records)\n", datagrams.size(),
              sequence);

  // --- The collector: drop one datagram in transit, ingest the rest. ---
  flowtools::FlowCapture capture;
  for (std::size_t i = 0; i < datagrams.size(); ++i) {
    if (i == 1) continue;  // simulated UDP loss
    if (const auto result = capture.ingest(datagrams[i], 9001); !result) {
      std::printf("ingest error: %s\n", result.error().message.c_str());
    }
  }
  std::printf("collector: %zu datagrams, %zu flows, %llu flows lost to gaps\n\n",
              capture.datagrams_received(), capture.flows().size(),
              static_cast<unsigned long long>(capture.sequence_gaps()));

  // --- flow-report: traffic summary grouped by destination port. ---
  const auto rows = flowtools::group_flows(capture.flows(),
                                           flowtools::GroupField::kDstPort);
  const auto report = flowtools::render_report(
      std::span{rows.data(), std::min<std::size_t>(rows.size(), 8)},
      flowtools::GroupField::kDstPort);
  std::printf("%s\n", report.c_str());

  // --- Analysis + Alert UI: feed captured flows to Enhanced InFilter. ---
  alert::CollectingSink alerts;
  core::EngineConfig config;
  config.seed = 11;
  core::InFilterEngine engine(config, &alerts);
  for (const auto& block : dagflow::eia_range(0).expand()) {
    engine.add_expected(9001, block.prefix());
  }
  std::vector<netflow::V5Record> training;
  for (const auto& flow : capture.flows()) training.push_back(flow.record);
  engine.train(training);

  // A spoofed probe battery arrives among legitimate traffic.
  dagflow::Dagflow attacker(
      dagflow::DagflowConfig{.netflow_port = 9001},
      dagflow::AddressPool::from_subblocks({*net::SubBlock::parse("88b")}), 2);
  traffic::AttackConfig attack_config;
  const auto attack = traffic::generate_attack(traffic::AttackKind::kNessusHttp,
                                               attack_config, 1000, rng);
  for (const auto& flow : attacker.replay(attack)) {
    (void)engine.process(flow.record, flow.arrival_port, flow.record.last);
  }

  std::printf("=== Alert UI (%zu alerts) ===\n", alerts.alerts().size());
  std::size_t shown = 0;
  for (const auto& alert : alerts.alerts()) {
    if (++shown > 5) {
      std::printf("  ... %zu more\n", alerts.alerts().size() - 5);
      break;
    }
    std::printf("  [%llu] %s  %s -> %s:%u  via port %u\n",
                static_cast<unsigned long long>(alert.id),
                std::string(alert::stage_name(alert.stage)).c_str(),
                alert.source_ip.to_string().c_str(),
                alert.target_ip.to_string().c_str(), alert.target_port,
                alert.ingress_port);
  }
  return 0;
}

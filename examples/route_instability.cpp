// Scenario: living with route instability.
//
// The InFilter hypothesis is "frequently", not "always": ingress mappings
// drift when BGP policies change. This example (i) bootstraps EIA sets
// from a simulated BGP table -- the Section 5.2 training option based on
// the Section 3.2 methodology -- and (ii) shows how Basic vs Enhanced
// InFilter cope as emulated route instability rises, including the EIA
// auto-learning that re-absorbs moved sources.
//
// Build & run:  ./build/examples/route_instability

#include <cstdio>

#include "routing/studies.h"
#include "sim/testbed.h"

using namespace infilter;

int main() {
  // --- Part 1: EIA bootstrap from BGP, per Section 5.2 "training". ---
  routing::TopologyConfig topo_config;
  topo_config.tier1_count = 4;
  topo_config.tier2_count = 16;
  topo_config.stub_count = 60;
  const auto topology = routing::AsTopology::generate(topo_config, 99);
  const routing::AsId target = 10;  // a tier-2 ISP as the protected network
  const routing::RouteComputation routes(topology, target);

  // Source-AS -> ingress-peer mapping becomes the EIA table: each source
  // AS "owns" a /16 carved from 20/8 for demonstration purposes.
  core::EiaTable eia;
  auto source_prefix = [](routing::AsId as) {
    return net::Prefix{net::IPv4Address{20, static_cast<std::uint8_t>(as), 0, 0}, 16};
  };
  int mapped = 0;
  for (routing::AsId source = 0; source < topology.as_count(); ++source) {
    if (source == target) continue;
    const auto peer = routes.ingress_peer(source);
    if (peer < 0) continue;
    eia.add_expected(static_cast<core::IngressId>(peer), source_prefix(source));
    ++mapped;
  }
  std::printf("bootstrapped EIA sets from BGP: %d source ASes mapped across %d"
              " ingress peers of AS%d\n",
              mapped, topology.degree(target), topology.as_number(target));
  // Verify one mapping end-to-end.
  const routing::AsId probe = topology.as_count() - 1;
  const auto peer = routes.ingress_peer(probe);
  std::printf("  e.g. traffic from AS%d enters via peer AS%d; EIA check: %s\n\n",
              topology.as_number(probe), topology.as_number(peer),
              eia.is_expected(static_cast<core::IngressId>(peer),
                              net::IPv4Address{20, static_cast<std::uint8_t>(probe), 1, 1})
                  ? "expected"
                  : "NOT expected");

  // --- Part 2: detection under emulated route instability (6.3.3). ---
  sim::ExperimentConfig config;
  config.normal_flows_per_source = 3000;
  config.training_flows = 1200;
  config.attack_volume = 0.08;
  config.engine.cluster.bits_per_feature = 144;
  config.seed = 33;

  sim::ClusterCache cache(config);
  std::printf("route instability sweep (8%% attack volume):\n");
  std::printf("%-14s %-22s %-22s\n", "route change", "Basic FP% (det%)",
              "Enhanced FP% (det%)");
  for (const int change : {1, 2, 4, 8}) {
    config.route_change_blocks = change;
    config.engine.mode = core::EngineMode::kBasic;
    const auto basic = sim::run_experiment(config);
    config.engine.mode = core::EngineMode::kEnhanced;
    const auto enhanced = sim::run_experiment(config, cache.get(config.seed));
    std::printf("%-14d %6.2f (%5.1f)        %6.2f (%5.1f)\n", change,
                100.0 * basic.false_positive_rate(), 100.0 * basic.detection_rate(),
                100.0 * enhanced.false_positive_rate(),
                100.0 * enhanced.detection_rate());
  }
  std::printf("\nEnhanced InFilter suppresses the route-change false positives the\n"
              "Basic configuration raises, at the cost of some detection.\n");
  return 0;
}

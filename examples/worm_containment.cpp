// Scenario: what early notification is worth against a Slammer outbreak.
//
// The paper motivates InFilter with "early notification of cyber attacks"
// and demonstrates Slammer detection without signatures. This example puts
// a number on it: an SI worm epidemic runs against the target network,
// the Enhanced InFilter watches the border flows, and we compare the final
// infected population under three response regimes:
//
//   1. no response,
//   2. border/port filtering triggered by InFilter's first alert
//      (+ a 5-second operator/automation reaction), and
//   3. the same filtering triggered by a signature pipeline that needs
//      10 minutes to identify, write, and deploy a signature.
//
// Build & run:  ./build/examples/worm_containment

#include <cstdio>

#include "core/engine.h"
#include "dagflow/dagflow.h"
#include "traffic/normal.h"
#include "traffic/worm.h"

using namespace infilter;

namespace {

/// First-alert time of the Enhanced InFilter over the border trace (the
/// worm's probes interleaved with normal ingress traffic).
std::optional<util::TimeMs> detect(const traffic::Trace& border,
                                   std::uint64_t seed) {
  core::EngineConfig config;
  config.seed = seed;
  core::InFilterEngine engine(config);
  for (int s = 0; s < 10; ++s) {
    for (const auto& block : dagflow::eia_range(s).expand()) {
      engine.add_expected(static_cast<core::IngressId>(9001 + s), block.prefix());
    }
  }
  traffic::NormalTrafficModel model;
  util::Rng rng{seed};
  {
    const auto trace = model.generate(1500, 0, rng);
    dagflow::Dagflow trainer(
        dagflow::DagflowConfig{},
        dagflow::AddressPool::from_subblocks({*net::SubBlock::parse("1a")}), seed + 1);
    std::vector<netflow::V5Record> records;
    for (const auto& labeled : trainer.replay(trace)) records.push_back(labeled.record);
    engine.train(records);
  }

  // Worm probes enter via Peer AS1, spoofed from foreign blocks; normal
  // background via the same ingress.
  auto background = model.generate(3000, 0, rng);
  dagflow::Dagflow normal_source(
      dagflow::DagflowConfig{.netflow_port = 9001},
      dagflow::AddressPool::from_allocation(dagflow::make_allocation(10, 100, 0, 0)[0]),
      seed + 2);
  dagflow::Dagflow attacker(
      dagflow::DagflowConfig{.netflow_port = 9001},
      dagflow::AddressPool::from_subblocks({*net::SubBlock::parse("88b")}), seed + 3);
  auto stream = normal_source.replay(background);
  const auto worm_flows = attacker.replay(border);
  stream.insert(stream.end(), worm_flows.begin(), worm_flows.end());
  std::sort(stream.begin(), stream.end(), [](const auto& a, const auto& b) {
    return a.record.last < b.record.last;
  });

  for (const auto& flow : stream) {
    const auto verdict =
        engine.process(flow.record, flow.arrival_port, flow.record.last);
    if (verdict.attack && flow.attack) {
      return static_cast<util::TimeMs>(flow.record.last);
    }
  }
  return std::nullopt;
}

}  // namespace

int main() {
  traffic::WormConfig worm_config;
  worm_config.horizon = 120 * util::kSecond;
  worm_config.vulnerable_hosts = 400;

  util::Rng rng{2025};
  // Uncontained baseline run; its border trace drives detection.
  const auto baseline = traffic::simulate_worm(worm_config, rng);
  std::printf("uncontained epidemic: %d of %d vulnerable hosts infected in %llus"
              " (%zu border probes)\n",
              baseline.final_infected, worm_config.vulnerable_hosts,
              static_cast<unsigned long long>(worm_config.horizon / 1000),
              baseline.border_probes);

  const auto detection = detect(baseline.border_trace, 7);
  if (!detection.has_value()) {
    std::printf("worm was not detected -- no containment possible\n");
    return 1;
  }
  std::printf("InFilter first alert at t = %.1f s (infected so far: %d)\n",
              static_cast<double>(*detection) / 1000.0,
              baseline.infected_at(*detection));

  struct Regime {
    const char* name;
    std::optional<util::TimeMs> containment;
  };
  const Regime regimes[] = {
      {"no response", std::nullopt},
      {"InFilter alert + 5 s reaction", *detection + 5 * util::kSecond},
      {"signature pipeline (10 min)", *detection + 600 * util::kSecond},
  };

  std::printf("\n%-34s %-16s %-10s\n", "response regime", "contained at", "infected");
  for (const auto& regime : regimes) {
    util::Rng run_rng{2025};  // same epidemic randomness for comparability
    const auto outcome = traffic::simulate_worm(worm_config, run_rng,
                                                regime.containment);
    if (regime.containment.has_value() && *regime.containment < worm_config.horizon) {
      std::printf("%-34s %10.1f s    %6d\n", regime.name,
                  static_cast<double>(*regime.containment) / 1000.0,
                  outcome.final_infected);
    } else {
      std::printf("%-34s %13s    %6d\n", regime.name, "never", outcome.final_infected);
    }
  }
  std::printf("\ninfection curve (uncontained): ");
  for (util::TimeMs t = 0; t <= worm_config.horizon; t += 15 * util::kSecond) {
    std::printf(" t+%llus:%d", static_cast<unsigned long long>(t / 1000),
                baseline.infected_at(t));
  }
  std::printf("\n");
  return 0;
}

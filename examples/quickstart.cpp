// Quickstart: the smallest useful InFilter deployment.
//
// Builds an Enhanced InFilter engine for a network with two peer ASs,
// preloads the Expected-IP-Address sets, trains the anomaly detector on
// normal traffic, then pushes three flows through it:
//   1. a flow arriving where it is expected          -> passes,
//   2. a mis-ingressed but ordinary flow             -> cleared by NNS,
//   3. a spoofed volumetric flood                    -> flagged, IDMEF alert.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "core/engine.h"
#include "dagflow/dagflow.h"
#include "traffic/normal.h"

using namespace infilter;

namespace {

netflow::V5Record make_flow(net::IPv4Address src, std::uint16_t dst_port,
                            std::uint8_t proto, std::uint32_t packets,
                            std::uint32_t bytes, std::uint32_t duration_ms) {
  netflow::V5Record r;
  r.src_ip = src;
  r.dst_ip = *net::IPv4Address::parse("100.64.0.10");
  r.proto = proto;
  r.src_port = 40000;
  r.dst_port = dst_port;
  r.packets = packets;
  r.bytes = bytes;
  r.first = 0;
  r.last = duration_ms;
  return r;
}

void show(const char* label, const core::Verdict& verdict) {
  std::printf("%-38s -> %s", label, verdict.attack ? "ATTACK" : "ok");
  if (verdict.attack) {
    std::printf(" (stage: %s)", std::string(alert::stage_name(verdict.stage)).c_str());
  }
  if (verdict.nns.has_value()) {
    std::printf("  [nns distance %d vs threshold %d]", verdict.nns->distance,
                verdict.nns->threshold);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  // 1. Engine with an alert sink.
  alert::CollectingSink alerts;
  core::EngineConfig config;
  config.mode = core::EngineMode::kEnhanced;
  config.seed = 2026;
  core::InFilterEngine engine(config, &alerts);

  // 2. EIA sets: peer AS 1 (collector port 9001) carries 3.0/11,
  //    peer AS 2 (port 9002) carries 3.32/11.
  engine.add_expected(9001, *net::Prefix::parse("3.0.0.0/11"));
  engine.add_expected(9002, *net::Prefix::parse("3.32.0.0/11"));

  // 3. Training phase (Figure 11): normal flows build the per-protocol
  //    NNS subclusters.
  traffic::NormalTrafficModel model;
  util::Rng rng{7};
  const auto trace = model.generate(1500, 0, rng);
  dagflow::Dagflow replayer(
      dagflow::DagflowConfig{.netflow_port = 9001},
      dagflow::AddressPool::from_subblocks({*net::SubBlock::parse("1a")}), 8);
  std::vector<netflow::V5Record> training;
  for (const auto& labeled : replayer.replay(trace)) training.push_back(labeled.record);
  engine.train(training);
  std::printf("trained on %zu normal flows (d = %d)\n\n", training.size(),
              engine.clusters()->dimension());

  // 4. Normal processing phase (Figure 12).
  const auto expected = make_flow(*net::IPv4Address::parse("3.1.2.3"), 80, 6, 30,
                                  24000, 1200);
  show("expected source via AS1", engine.process(expected, 9001, 2000));

  const auto moved = make_flow(*net::IPv4Address::parse("3.40.7.7"), 80, 6, 30,
                               24000, 1200);
  show("AS2's source arriving via AS1", engine.process(moved, 9001, 2100));

  const auto flood = make_flow(*net::IPv4Address::parse("3.40.9.9"), 7777, 17,
                               5000, 5000000, 2000);
  show("spoofed UDP flood via AS1", engine.process(flood, 9001, 2200));

  // 5. Alerts came out as IDMEF.
  std::printf("\n%zu IDMEF alert(s):\n", alerts.alerts().size());
  for (const auto& alert : alerts.alerts()) {
    std::printf("%s\n", alert.to_idmef_xml().c_str());
  }
  return 0;
}

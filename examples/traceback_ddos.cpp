// Scenario: tracing a distributed attack back to its ingress points.
//
// The paper twice notes that InFilter "can be easily extended to provide
// traceback capability to detect the ingress point of attack traffic".
// This example is that extension at work: a TFN2K flood enters the target
// ISP through three different border routers at once while a Slammer sweep
// runs elsewhere; the TracebackEngine consumes the IDMEF alert stream and
// reconstructs both episodes, naming the ingress points and their shares.
//
// Build & run:  ./build/examples/traceback_ddos

#include <algorithm>
#include <cstdio>

#include "core/engine.h"
#include "core/traceback.h"
#include "dagflow/dagflow.h"
#include "traffic/attacks.h"
#include "traffic/normal.h"

using namespace infilter;

int main() {
  // Engine chained into traceback, traceback chained into the alert UI.
  alert::CollectingSink ui;
  core::TracebackEngine traceback(core::TracebackConfig{}, &ui);
  core::EngineConfig config;
  config.seed = 1999;
  core::InFilterEngine engine(config, &traceback);
  for (int s = 0; s < 10; ++s) {
    for (const auto& block : dagflow::eia_range(s).expand()) {
      engine.add_expected(static_cast<core::IngressId>(9001 + s), block.prefix());
    }
  }

  traffic::NormalTrafficModel model;
  util::Rng rng{1};
  {
    const auto trace = model.generate(2000, 0, rng);
    dagflow::Dagflow trainer(
        dagflow::DagflowConfig{},
        dagflow::AddressPool::from_subblocks({*net::SubBlock::parse("1a")}), 2);
    std::vector<netflow::V5Record> records;
    for (const auto& labeled : trainer.replay(trace)) records.push_back(labeled.record);
    engine.train(records);
  }

  // The distributed flood: one TFN2K instance split across three ingress
  // points (a botnet spraying through whatever path its members have), at
  // 50% / 30% / 20% of the flows, plus a Slammer sweep through AS7.
  std::vector<dagflow::LabeledFlow> stream;
  traffic::AttackConfig attack_config;
  attack_config.companion_fraction = 0;
  util::Rng attack_rng{3};
  const auto flood =
      traffic::generate_attack(traffic::AttackKind::kTfn2k, attack_config, 5000,
                               attack_rng);
  const std::uint16_t flood_ports[3] = {9001, 9002, 9005};
  const double flood_split[3] = {0.5, 0.8, 1.0};  // cumulative
  std::array<dagflow::Dagflow, 3> sprayers{
      dagflow::Dagflow(dagflow::DagflowConfig{.netflow_port = flood_ports[0]},
                       dagflow::AddressPool::from_subblocks(
                           {*net::SubBlock::parse("30a")}),
                       4),
      dagflow::Dagflow(dagflow::DagflowConfig{.netflow_port = flood_ports[1]},
                       dagflow::AddressPool::from_subblocks(
                           {*net::SubBlock::parse("55c")}),
                       5),
      dagflow::Dagflow(dagflow::DagflowConfig{.netflow_port = flood_ports[2]},
                       dagflow::AddressPool::from_subblocks(
                           {*net::SubBlock::parse("90f")}),
                       6)};
  util::Rng split_rng{7};
  for (const auto& flow : flood.flows) {
    traffic::Trace single;
    single.flows.push_back(flow);
    const double u = split_rng.uniform();
    const int which = u < flood_split[0] ? 0 : (u < flood_split[1] ? 1 : 2);
    const auto labeled = sprayers[static_cast<std::size_t>(which)].replay(single);
    stream.insert(stream.end(), labeled.begin(), labeled.end());
  }

  const auto worm = traffic::generate_attack(traffic::AttackKind::kSlammer,
                                             attack_config, 60000, attack_rng);
  dagflow::Dagflow worm_source(
      dagflow::DagflowConfig{.netflow_port = 9007},
      dagflow::AddressPool::from_subblocks({*net::SubBlock::parse("20b")}), 8);
  {
    const auto labeled = worm_source.replay(worm);
    stream.insert(stream.end(), labeled.begin(), labeled.end());
  }

  // Background traffic through every ingress.
  for (int s = 0; s < 10; ++s) {
    const auto trace = model.generate(500, 0, rng);
    dagflow::Dagflow source(
        dagflow::DagflowConfig{.netflow_port = static_cast<std::uint16_t>(9001 + s)},
        dagflow::AddressPool::from_allocation(
            dagflow::make_allocation(10, 100, 0, 0)[static_cast<std::size_t>(s)]),
        static_cast<std::uint64_t>(50 + s));
    const auto labeled = source.replay(trace);
    stream.insert(stream.end(), labeled.begin(), labeled.end());
  }

  std::sort(stream.begin(), stream.end(), [](const auto& a, const auto& b) {
    return a.record.last < b.record.last;
  });
  for (const auto& flow : stream) {
    (void)engine.process(flow.record, flow.arrival_port, flow.record.last);
  }

  std::printf("%s\n", traceback.report().c_str());
  std::printf("ground truth: TFN2K via 9001/9002/9005 at 50/30/20%%, "
              "Slammer sweep via 9007\n\n");

  // Pull out the flood episode and check the reconstruction.
  for (const auto& episode : traceback.episodes()) {
    if (!episode.distributed()) continue;
    std::printf("distributed episode %llu reconstruction:\n",
                static_cast<unsigned long long>(episode.id));
    for (const auto& evidence : episode.ingresses) {
      std::printf("  ingress %u: %llu alerts (%.0f%%)\n", evidence.ingress,
                  static_cast<unsigned long long>(evidence.alerts),
                  100.0 * evidence.share);
    }
  }
  std::printf("\n%zu alerts forwarded to the Alert UI downstream\n",
              ui.alerts().size());
  return 0;
}

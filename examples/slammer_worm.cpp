// Scenario: detecting the Slammer worm without a signature.
//
// Slammer [SLAM] compromises a host with a single spoofed 404-byte UDP
// packet to port 1434 and needs no reply -- volume-based sensors and
// per-source counters see nothing. The paper's point: treat the worm as
// undiscovered (no signature!) and detect it purely from spoofing + scan
// structure. This example replays the paper's testbed in miniature: ten
// normal Dagflow sources plus one Slammer instance spoofing through Peer
// AS 1, and shows which pipeline stage catches the sweep.
//
// Build & run:  ./build/examples/slammer_worm

#include <algorithm>
#include <array>
#include <cstdio>

#include "core/engine.h"
#include "dagflow/dagflow.h"
#include "sim/testbed.h"
#include "traffic/attacks.h"
#include "traffic/normal.h"

using namespace infilter;

int main() {
  // --- Testbed: 10 normal sources on ports 9001..9010 (Table 3 EIA). ---
  core::EngineConfig config;
  config.mode = core::EngineMode::kEnhanced;
  config.seed = 404;
  alert::CollectingSink alerts;
  core::InFilterEngine engine(config, &alerts);
  for (int s = 0; s < 10; ++s) {
    for (const auto& block : dagflow::eia_range(s).expand()) {
      engine.add_expected(static_cast<core::IngressId>(9001 + s), block.prefix());
    }
  }

  traffic::NormalTrafficModel model;
  util::Rng rng{1};
  {
    const auto trace = model.generate(2500, 0, rng);
    dagflow::Dagflow trainer(
        dagflow::DagflowConfig{.netflow_port = 9001},
        dagflow::AddressPool::from_allocation(dagflow::make_allocation(10, 100, 0, 0)[0]),
        2);
    std::vector<netflow::V5Record> training;
    for (const auto& labeled : trainer.replay(trace)) training.push_back(labeled.record);
    engine.train(training);
  }

  // --- Traffic: normal background + one Slammer instance at AS1. ---
  std::vector<dagflow::LabeledFlow> stream;
  for (int s = 0; s < 10; ++s) {
    const auto trace = model.generate(800, 0, rng);
    dagflow::Dagflow source(
        dagflow::DagflowConfig{.netflow_port = static_cast<std::uint16_t>(9001 + s)},
        dagflow::AddressPool::from_allocation(dagflow::make_allocation(10, 100, 0, 0)
                                                  [static_cast<std::size_t>(s)]),
        static_cast<std::uint64_t>(100 + s));
    const auto labeled = source.replay(trace);
    stream.insert(stream.end(), labeled.begin(), labeled.end());
  }
  traffic::AttackConfig attack_config;  // defaults: ~120 single-packet probes
  const auto worm = traffic::generate_attack(traffic::AttackKind::kSlammer,
                                             attack_config, 4000, rng);
  dagflow::Dagflow attacker(
      dagflow::DagflowConfig{.netflow_port = 9001},
      dagflow::AddressPool::from_subblocks({*net::SubBlock::parse("104c")}), 3);
  const auto worm_flows = attacker.replay(worm);
  stream.insert(stream.end(), worm_flows.begin(), worm_flows.end());
  std::sort(stream.begin(), stream.end(), [](const auto& a, const auto& b) {
    return a.record.last < b.record.last;
  });

  // --- Normal processing. ---
  std::uint64_t worm_total = 0;
  std::uint64_t worm_detected = 0;
  std::uint64_t normal_flagged = 0;
  util::TimeMs first_detection = 0;
  util::TimeMs worm_start = ~util::TimeMs{0};
  std::array<std::uint64_t, 3> by_stage{};
  for (const auto& flow : stream) {
    const auto verdict = engine.process(flow.record, flow.arrival_port, flow.record.last);
    if (flow.attack) {
      worm_start = std::min(worm_start, static_cast<util::TimeMs>(flow.record.first));
      ++worm_total;
      if (verdict.attack) {
        if (worm_detected == 0) first_detection = flow.record.last;
        ++worm_detected;
        by_stage[static_cast<std::size_t>(verdict.stage)] += 1;
      }
    } else if (verdict.attack) {
      ++normal_flagged;
    }
  }

  std::printf("Slammer sweep: %llu probe flows via Peer AS1 (port 9001)\n",
              static_cast<unsigned long long>(worm_total));
  std::printf("  detected: %llu (%.0f%%), first alert %llu ms after the sweep began\n",
              static_cast<unsigned long long>(worm_detected),
              100.0 * static_cast<double>(worm_detected) /
                  static_cast<double>(worm_total),
              static_cast<unsigned long long>(first_detection - worm_start));
  std::printf("  by stage: eia=%llu scan=%llu nns=%llu\n",
              static_cast<unsigned long long>(by_stage[0]),
              static_cast<unsigned long long>(by_stage[1]),
              static_cast<unsigned long long>(by_stage[2]));
  std::printf("  normal flows flagged: %llu of %zu\n",
              static_cast<unsigned long long>(normal_flagged),
              stream.size() - static_cast<std::size_t>(worm_total));
  if (!alerts.alerts().empty()) {
    std::printf("\nfirst IDMEF alert:\n%s",
                alerts.alerts().front().to_idmef_xml().c_str());
  }
  return 0;
}

// infilter-capture: a live flow-capture node (Figure 9's flow-tools box).
//
// Binds one UDP socket per collector port, ingests NetFlow v5 export
// datagrams until a flow target or deadline is reached, and writes the
// capture for infilter-report / infilter-detect. Pair with
// `infilter-flowgen --send` in another shell for a live two-process run.
//
// Usage:
//   infilter-capture --out flows.bin [--ports 9001,9002,...]
//                    [--flows 1000] [--timeout-ms 10000] [--ascii]

#include <cstdio>
#include <fstream>

#include "flowtools/ascii.h"
#include "flowtools/udp.h"
#include "util/args.h"

using namespace infilter;

namespace {

int fail(const std::string& message) {
  std::fprintf(stderr, "infilter-capture: %s\n", message.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  const auto parsed = util::Args::parse(argc, argv, {"ascii"});
  if (!parsed) return fail(parsed.error().message);
  const auto& args = *parsed;
  const auto out_path = args.value("out");
  if (!out_path.has_value()) return fail("--out FILE is required");

  std::vector<std::uint16_t> ports;
  {
    const std::string spec = args.value_or("ports", "9001,9002,9003,9004,9005,"
                                                    "9006,9007,9008,9009,9010");
    std::size_t at = 0;
    while (at <= spec.size()) {
      const auto comma = spec.find(',', at);
      const auto token =
          spec.substr(at, comma == std::string::npos ? std::string::npos : comma - at);
      ports.push_back(static_cast<std::uint16_t>(std::strtoul(token.c_str(), nullptr, 10)));
      if (comma == std::string::npos) break;
      at = comma + 1;
    }
  }

  auto collector = flowtools::LiveCollector::bind(ports);
  if (!collector) return fail(collector.error().message);
  std::printf("listening on %zu port(s); first is %u\n", ports.size(),
              collector->ports().front());

  const auto target = static_cast<std::size_t>(args.int_or("flows", 1000));
  const int timeout = static_cast<int>(args.int_or("timeout-ms", 10000));
  const auto collected = collector->collect(target, timeout);
  if (!collected) return fail(collected.error().message);

  const auto& capture = collector->capture();
  std::printf("captured %zu flows (%zu datagrams, %zu malformed, %llu lost to gaps)\n",
              capture.flows().size(), capture.datagrams_received(),
              capture.datagrams_malformed(),
              static_cast<unsigned long long>(capture.sequence_gaps()));

  if (args.has("ascii")) {
    std::ofstream out(*out_path);
    if (!out) return fail("cannot open " + *out_path);
    out << flowtools::export_ascii(capture.flows());
  } else if (const auto saved = capture.save(*out_path); !saved) {
    return fail(saved.error().message);
  }
  std::printf("wrote %s\n", out_path->c_str());
  return 0;
}

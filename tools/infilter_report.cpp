// infilter-report: flow-report style summaries of a capture.
//
// Usage:
//   infilter-report FILE [--ascii] [--group KEYS] [--top N]
//                        [--dstport N] [--proto N] [--srcprefix P]
//
// KEYS is a '+'-joined list of: srcip dstip proto srcport dstport tos
// input srcas dstas port. Default: dstport.

#include <cstdio>
#include <fstream>
#include <sstream>

#include "flowtools/ascii.h"
#include "flowtools/capture.h"
#include "flowtools/report.h"
#include "util/args.h"

using namespace infilter;

namespace {

int fail(const std::string& message) {
  std::fprintf(stderr, "infilter-report: %s\n", message.c_str());
  return 1;
}

util::Result<flowtools::GroupField> parse_group(const std::string& spec) {
  using flowtools::GroupField;
  auto mask = static_cast<GroupField>(0);
  std::size_t at = 0;
  while (at <= spec.size()) {
    const auto plus = spec.find('+', at);
    const auto key =
        spec.substr(at, plus == std::string::npos ? std::string::npos : plus - at);
    GroupField field;
    if (key == "srcip") field = GroupField::kSrcIp;
    else if (key == "dstip") field = GroupField::kDstIp;
    else if (key == "proto") field = GroupField::kProto;
    else if (key == "srcport") field = GroupField::kSrcPort;
    else if (key == "dstport") field = GroupField::kDstPort;
    else if (key == "tos") field = GroupField::kTos;
    else if (key == "input") field = GroupField::kInputIf;
    else if (key == "srcas") field = GroupField::kSrcAs;
    else if (key == "dstas") field = GroupField::kDstAs;
    else if (key == "port") field = GroupField::kArrivalPort;
    else return util::Error{"unknown group key '" + key + "'"};
    mask = mask | field;
    if (plus == std::string::npos) break;
    at = plus + 1;
  }
  return mask;
}

}  // namespace

int main(int argc, char** argv) {
  const auto parsed = util::Args::parse(argc, argv, {"ascii"});
  if (!parsed) return fail(parsed.error().message);
  const auto& args = *parsed;
  if (args.positional().size() != 1) return fail("exactly one capture FILE expected");
  const auto& path = args.positional().front();

  flowtools::FlowCapture capture;
  std::vector<flowtools::CapturedFlow> flows;
  if (args.has("ascii")) {
    std::ifstream in(path);
    if (!in) return fail("cannot open " + path);
    std::ostringstream text;
    text << in.rdbuf();
    auto imported = flowtools::import_ascii(text.str());
    if (!imported) return fail(imported.error().message);
    flows = std::move(*imported);
  } else {
    if (const auto loaded = capture.load(path); !loaded) {
      return fail(loaded.error().message);
    }
    flows = capture.flows();
  }

  // Filters.
  flowtools::FlowFilter filter;
  if (args.has("dstport")) {
    filter.dst_port = static_cast<std::uint16_t>(args.int_or("dstport", 0));
  }
  if (args.has("proto")) {
    filter.proto = static_cast<std::uint8_t>(args.int_or("proto", 0));
  }
  if (const auto prefix_text = args.value("srcprefix")) {
    const auto prefix = net::Prefix::parse(*prefix_text);
    if (!prefix.has_value()) return fail("bad --srcprefix");
    filter.src_prefix = prefix;
  }
  const auto kept = flowtools::filter_flows(flows, filter);

  const auto group = parse_group(args.value_or("group", "dstport"));
  if (!group) return fail(group.error().message);
  auto rows = flowtools::group_flows(kept, *group);
  const auto top = static_cast<std::size_t>(args.int_or("top", 20));
  if (rows.size() > top) rows.resize(top);

  std::printf("%zu flows (%zu after filters), %zu groups shown\n", flows.size(),
              kept.size(), rows.size());
  std::fputs(flowtools::render_report(rows, *group).c_str(), stdout);
  return 0;
}

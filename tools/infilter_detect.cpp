// infilter-detect: run the InFilter analysis over a capture.
//
// EIA sets default to the Table 3 preloads (collector ports 9001..9010
// own 100 sub-blocks each); training comes from a separate capture of
// known-good traffic. Prints an alert summary, the traceback report, and
// (optionally) every alert as IDMEF XML.
//
// Usage:
//   infilter-detect FILE --train TRAIN_FILE
//                   [--eia EIA_FILE]      # text EIA config (default: Table 3)
//                   [--dump-eia OUT]      # write the post-run EIA sets
//                   [--mode basic|enhanced] [--ascii] [--idmef]
//                   [--bits 144]          # unary bits/feature (d = 5*bits)
//                   [--buffer 200] [--learn 5]
//                   [--eia-backend exact|bloom[:BITS[,K[,R[,ROTATE]]]]|cbloom[:...]]
//                                         # EIA membership storage: exact
//                                         # interval sets (default) or a
//                                         # memory-bounded Bloom / counting-
//                                         # Bloom filter (core/eia_backend.h)
//                   [--ttl-detect]        # fuse the TTL hop-count detector
//                                         # with the EIA check (src/hopcount)
//                   [--ttl-tolerance 2]   # hop-count window slack
//                   [--eia-max-idle MS]   # expire learned EIA /24s idle
//                                         # longer than MS of flow time
//                                         # (src/lifecycle; 0 = off; needs
//                                         # the exact or cbloom backend)
//                   [--resize-shards N]   # live-resize the runtime to N
//                                         # shards halfway through the
//                                         # replay (requires --threads)
//                   [--threads N]         # 0 (default) = serial engine;
//                                         # N >= 1 = sharded runtime
//                   [--ingest-threads N]  # N >= 1 replays the capture over
//                                         # loopback UDP through the receiver-
//                                         # direct ingest pipeline (src/ingest):
//                                         # each receiver decodes inline and
//                                         # dispatches as its own runtime
//                                         # producer; implies --threads >= 1
//                   [--cpu-set LIST]      # pin pipeline threads, e.g. "0-3,8":
//                                         # receivers first, then shard
//                                         # workers, then the scan thread
//                   [--queue-depth 4096] [--backpressure block|drop]
//                   [--metrics-out FILE]  # metrics dump: JSON when FILE
//                                         # ends in .json, else Prometheus
//                   [--trace-out FILE]    # flight-recorder export: Chrome
//                                         # trace-event JSON (open in Perfetto)
//                   [--trace-sample N]    # trace 1 in N records (default 64;
//                                         # either --trace-* flag enables the
//                                         # recorder and the journey histograms)

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <limits>
#include <optional>
#include <sstream>
#include <thread>

#include "core/eia_io.h"
#include "core/engine.h"
#include "core/traceback.h"
#include "dagflow/allocation.h"
#include "flowtools/ascii.h"
#include "flowtools/capture.h"
#include "flowtools/udp.h"
#include "ingest/ingest.h"
#include "obs/export.h"
#include "obs/process.h"
#include "obs/trace.h"
#include "runtime/affinity.h"
#include "runtime/runtime.h"
#include "util/args.h"

using namespace infilter;

namespace {

int fail(const std::string& message) {
  std::fprintf(stderr, "infilter-detect: %s\n", message.c_str());
  return 1;
}

util::Result<std::vector<flowtools::CapturedFlow>> load_flows(const std::string& path,
                                                              bool ascii) {
  if (ascii) {
    std::ifstream in(path);
    if (!in) return util::Error{"cannot open " + path};
    std::ostringstream text;
    text << in.rdbuf();
    return flowtools::import_ascii(text.str());
  }
  flowtools::FlowCapture capture;
  if (const auto loaded = capture.load(path); !loaded) return loaded.error();
  return capture.flows();
}

}  // namespace

int main(int argc, char** argv) {
  const auto parsed = util::Args::parse(argc, argv, {"ascii", "idmef", "ttl-detect"});
  if (!parsed) return fail(parsed.error().message);
  const auto& args = *parsed;
  if (args.positional().size() != 1) return fail("exactly one capture FILE expected");

  const auto flows = load_flows(args.positional().front(), args.has("ascii"));
  if (!flows) return fail(flows.error().message);

  core::EngineConfig config;
  const auto mode = args.value_or("mode", "enhanced");
  if (mode == "basic") config.mode = core::EngineMode::kBasic;
  else if (mode != "enhanced") return fail("--mode must be basic or enhanced");
  // Validated numerics: a typo'd or out-of-range value must fail with a
  // message, not wrap into RuntimeConfig/EngineConfig and misbehave there.
  const auto bits = args.checked_int("bits", 144, 1, 1 << 20);
  if (!bits) return fail(bits.error().message);
  config.cluster.bits_per_feature = static_cast<int>(*bits);
  const auto buffer = args.checked_int("buffer", 200, 1, 1 << 24);
  if (!buffer) return fail(buffer.error().message);
  config.scan.buffer_size = static_cast<std::size_t>(*buffer);
  const auto learn = args.checked_int("learn", 5, 1, 1 << 20);
  if (!learn) return fail(learn.error().message);
  config.eia.learn_threshold = static_cast<int>(*learn);
  const auto backend = core::parse_eia_backend(args.value_or("eia-backend", "exact"));
  if (!backend) return fail(backend.error().message);
  config.eia.backend = *backend;
  const auto max_idle = args.checked_int("eia-max-idle", 0, 0,
                                         std::numeric_limits<std::int64_t>::max());
  if (!max_idle) return fail(max_idle.error().message);
  config.eia.lifecycle.max_idle_ms = static_cast<util::DurationMs>(*max_idle);
  if (config.eia.lifecycle.enabled() &&
      config.eia.backend.type == core::EiaBackendType::kBloom) {
    // The plain Bloom filter cannot remove a /24; it ages by sub-filter
    // rotation instead (core/eia_backend.h), so the flag is inert there.
    std::fprintf(stderr,
                 "infilter-detect: warning: --eia-max-idle has no effect on "
                 "the bloom backend (use exact or cbloom)\n");
  }
  config.use_hopcount = args.has("ttl-detect");
  const auto ttl_tolerance = args.checked_int("ttl-tolerance", 2, 0, 255);
  if (!ttl_tolerance) return fail(ttl_tolerance.error().message);
  config.hopcount.tolerance = static_cast<int>(*ttl_tolerance);
  const auto seed = args.checked_int("seed", 1, 0,
                                     std::numeric_limits<std::int64_t>::max());
  if (!seed) return fail(seed.error().message);
  config.seed = static_cast<std::uint64_t>(*seed);

  const auto threads_arg = args.checked_int("threads", 0, 0, 4096);
  if (!threads_arg) return fail(threads_arg.error().message);
  const auto ingest_arg = args.checked_int("ingest-threads", 0, 0, 4096);
  if (!ingest_arg) return fail(ingest_arg.error().message);
  const int ingest_threads = static_cast<int>(*ingest_arg);
  // Threaded ingest dispatches into a runtime; force at least one shard.
  const int threads = ingest_threads > 0 ? std::max(1, static_cast<int>(*threads_arg))
                                         : static_cast<int>(*threads_arg);
  const auto resize_arg = args.checked_int("resize-shards", 0, 0, 4096);
  if (!resize_arg) return fail(resize_arg.error().message);
  const int resize_shards = static_cast<int>(*resize_arg);
  if (resize_shards > 0 && threads == 0) {
    return fail("--resize-shards requires the sharded runtime (--threads >= 1)");
  }
  // Distinct arrival ports, in capture order: the ingest replay binds one
  // loopback socket per port, and the receiver count is capped by them.
  std::vector<core::IngressId> ingresses;
  if (ingest_threads > 0) {
    for (const auto& flow : *flows) {
      if (std::find(ingresses.begin(), ingresses.end(), flow.arrival_port) ==
          ingresses.end()) {
        ingresses.push_back(flow.arrival_port);
      }
    }
    if (ingresses.empty()) return fail("capture is empty");
  }
  runtime::RuntimeConfig runtime_config;
  runtime_config.shards = threads;
  if (ingest_threads > 0) {
    // Receiver i dispatches as runtime producer i. Receivers take cpu
    // slots 0..R-1 of --cpu-set; workers and the scan thread follow.
    const auto receivers = std::max<std::size_t>(
        std::min<std::size_t>(static_cast<std::size_t>(ingest_threads),
                              ingresses.size()),
        1);
    runtime_config.producers = static_cast<int>(receivers);
    runtime_config.cpu_slot_offset = receivers;
  }
  const auto queue_depth = args.checked_int("queue-depth", 4096, 1, 1 << 24);
  if (!queue_depth) return fail(queue_depth.error().message);
  runtime_config.queue_depth = static_cast<std::size_t>(*queue_depth);
  const auto backpressure = args.value_or("backpressure", "block");
  if (backpressure == "drop") {
    runtime_config.backpressure = runtime::BackpressurePolicy::kDrop;
  } else if (backpressure != "block") {
    return fail("--backpressure must be block or drop");
  }
  runtime_config.engine = config;
  if (const auto cpu_set = args.value("cpu-set")) {
    std::string error;
    const auto cpus = runtime::parse_cpu_set(*cpu_set, &error);
    if (!cpus) return fail(error);
    runtime_config.cpu_set = *cpus;
  }

  // Flight recorder: either --trace-* flag turns it on. Declared before the
  // engine/runtime so it outlives them (lanes are retired, not destroyed).
  const auto trace_out = args.value("trace-out");
  const auto trace_sample = args.checked_int("trace-sample", 64, 1, 1 << 30);
  if (!trace_sample) return fail(trace_sample.error().message);
  std::optional<obs::Tracer> tracer;
  if (trace_out.has_value() || args.value("trace-sample").has_value()) {
    obs::TracerConfig trace_config;
    trace_config.sample_every = static_cast<std::uint64_t>(*trace_sample);
    trace_config.enabled = true;
    tracer.emplace(trace_config);
    runtime_config.tracer = &*tracer;
  }

  if (threads > 0 && args.value("dump-eia")) {
    // Auto-learned entries are spread over the shard tables; there is no
    // single EIA set to persist. Re-run serially to dump.
    return fail("--dump-eia requires the serial engine (--threads 0)");
  }

  alert::CollectingSink ui;
  core::TracebackEngine traceback(core::TracebackConfig{}, &ui);
  std::optional<core::InFilterEngine> engine;
  std::optional<runtime::ShardedRuntime> rt;
  // Filled by the ingest replay before the pipeline is torn down, so the
  // infilter_ingest_* counters survive into the metrics export below.
  std::optional<obs::RegistrySnapshot> ingest_snapshot;
  std::atomic<std::uint64_t> rt_suspects{0};
  std::atomic<std::uint64_t> rt_attacks{0};
  if (threads > 0) {
    rt.emplace(runtime_config, &traceback,
               [&](const runtime::FlowItem&, const core::Verdict& verdict) {
                 if (verdict.suspect)
                   rt_suspects.fetch_add(1, std::memory_order_relaxed);
                 if (verdict.attack)
                   rt_attacks.fetch_add(1, std::memory_order_relaxed);
               });
  } else {
    engine.emplace(config, &traceback);
  }
  std::uint64_t preloaded_slash24s = 0;
  const auto add_expected = [&](core::IngressId ingress, const net::Prefix& prefix) {
    preloaded_slash24s += ((prefix.last().value() & 0xFFFFFF00u) -
                           (prefix.first().value() & 0xFFFFFF00u)) / 0x100u + 1;
    if (rt) rt->add_expected(ingress, prefix);
    else engine->add_expected(ingress, prefix);
  };

  // EIA preloads: a text config if given, otherwise the Table 3 defaults.
  if (const auto eia_path = args.value("eia")) {
    std::ifstream in(*eia_path);
    if (!in) return fail("cannot open " + *eia_path);
    std::ostringstream text;
    text << in.rdbuf();
    const auto imported = core::import_eia(text.str());
    if (!imported) return fail(imported.error().message);
    if (imported->backend().type() != core::EiaBackendType::kExact) {
      // A probabilistic dump has no prefix list to replay into the
      // engine's (per-shard) tables; only exact-format files preload.
      return fail(*eia_path + " holds a probabilistic backend dump; "
                  "--eia wants an exact prefix-list file");
    }
    for (const auto ingress : imported->ingresses()) {
      for (const auto& prefix : imported->set_for(ingress)->to_cidrs()) {
        add_expected(ingress, prefix);
      }
    }
    std::printf("loaded EIA sets for %zu ingress points from %s\n",
                imported->ingress_count(), eia_path->c_str());
  } else {
    for (int s = 0; s < 10; ++s) {
      for (const auto& block : dagflow::eia_range(s).expand()) {
        add_expected(static_cast<core::IngressId>(9001 + s), block.prefix());
      }
    }
  }
  if (const double fill =
          core::predicted_fill_ratio(config.eia.backend, preloaded_slash24s);
      fill > 0.5) {
    // A saturated filter answers "expected" for everything -- detection
    // silently disappears. Warn, don't fail: the operator may be sizing
    // for learned traffic, not the preload.
    std::fprintf(stderr,
                 "infilter-detect: warning: --eia-backend budget will be ~%.0f%% "
                 "full after preloading %llu /24s; membership false positives "
                 "will suppress detection (size >= 8 bits per expected /24)\n",
                 100 * fill, static_cast<unsigned long long>(preloaded_slash24s));
  }

  if (config.mode == core::EngineMode::kEnhanced) {
    const auto train_path = args.value("train");
    if (!train_path.has_value()) {
      return fail("--train TRAIN_FILE is required in enhanced mode");
    }
    const auto training = load_flows(*train_path, args.has("ascii"));
    if (!training) return fail(training.error().message);
    std::vector<netflow::V5Record> records;
    records.reserve(training->size());
    for (const auto& flow : *training) records.push_back(flow.record);
    if (rt) rt->train(records);
    else engine->train(records);
    const auto& clusters = rt ? rt->shard_engine(0).clusters() : engine->clusters();
    std::printf("trained on %zu flows (d = %d)\n", records.size(),
                clusters->dimension());
  }

  std::uint64_t attacks = 0;
  std::uint64_t suspects = 0;
  if (rt && ingest_threads > 0) {
    // Loopback replay through the full live path: re-encode the capture
    // into v5 export datagrams, send them over UDP, and let the receiver
    // threads decode inline and dispatch straight into the runtime (each
    // receiver is its own producer slot -- no intermediate decode thread).
    // Ephemeral sockets stand in for the collector ports; ingress_ids pins
    // each socket's ingress identity to the capture's arrival port, so
    // verdicts are identical to the direct-submit path.
    ingest::IngestConfig ingest_config;
    ingest_config.ports.assign(ingresses.size(), 0);
    ingest_config.ingress_ids = ingresses;
    ingest_config.receiver_threads = ingest_threads;
    ingest_config.cpu_set = runtime_config.cpu_set;  // receivers: slots 0..R-1
    if (tracer) ingest_config.tracer = &*tracer;
    auto pipeline = ingest::IngestPipeline::create(ingest_config, *rt);
    if (!pipeline) return fail(pipeline.error().message);
    const auto bound = (*pipeline)->ports();
    auto sender = flowtools::UdpSender::create();
    if (!sender) return fail(sender.error().message);

    // Preserve per-port record order: walk the capture in runs of
    // consecutive same-port records (each at most one datagram's worth).
    std::vector<std::uint32_t> sequences(ingresses.size(), 0);
    std::vector<netflow::V5Record> run;
    std::uint64_t datagrams_sent = 0;
    bool resized = false;
    const auto in_flight = [&] {
      return datagrams_sent - (*pipeline)->stats().datagrams_received;
    };
    for (std::size_t at = 0; at < flows->size();) {
      if (!resized && resize_shards > 0 && at >= flows->size() / 2) {
        // The main thread is not a producer, so the exclusive-gate resize
        // simply stalls the receivers' dispatches for its duration.
        resized = rt->resize(resize_shards);
        if (resized) {
          std::printf("resized runtime to %d shard(s) mid-replay\n",
                      resize_shards);
        }
      }
      const auto port = (*flows)[at].arrival_port;
      run.clear();
      while (at < flows->size() && (*flows)[at].arrival_port == port &&
             run.size() < netflow::kV5MaxRecords) {
        run.push_back((*flows)[at].record);
        ++at;
      }
      const auto idx = static_cast<std::size_t>(
          std::find(ingresses.begin(), ingresses.end(), port) - ingresses.begin());
      for (const auto& datagram :
           netflow::encode_all(run, run.front().last, sequences[idx])) {
        if (const auto ok = sender->send(bound[idx], datagram); !ok) {
          return fail(ok.error().message);
        }
        ++datagrams_sent;
      }
      // Loopback UDP still drops when the sender outruns the kernel
      // queues; a small in-flight window keeps the replay lossless.
      while (in_flight() > 256) {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
      }
    }
    // Wait for full delivery, bailing out only if reception stalls.
    std::uint64_t last_received = 0;
    for (int stalled_ms = 0; in_flight() > 0 && stalled_ms < 2000;) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      const auto received = (*pipeline)->stats().datagrams_received;
      stalled_ms = received == last_received ? stalled_ms + 1 : 0;
      last_received = received;
    }
    (*pipeline)->stop();  // phase 1: decode + dispatch everything accepted
    rt->shutdown();       // phase 2: drain the shards and join
    ingest_snapshot = (*pipeline)->snapshot();
    const auto ingest_stats = (*pipeline)->stats();
    std::printf(
        "ingest: %llu/%llu datagrams over %zu socket(s), %llu records "
        "dispatched (%llu kernel drops, %llu sequence gaps)\n",
        static_cast<unsigned long long>(ingest_stats.datagrams_received),
        static_cast<unsigned long long>(datagrams_sent), bound.size(),
        static_cast<unsigned long long>(ingest_stats.records_dispatched),
        static_cast<unsigned long long>(ingest_stats.kernel_drops),
        static_cast<unsigned long long>(ingest_stats.sequence_gaps));
    suspects = rt_suspects.load(std::memory_order_relaxed);
    attacks = rt_attacks.load(std::memory_order_relaxed);
  } else if (rt) {
    std::uint64_t tag = 0;  // journey id in the trace export
    const std::size_t resize_at =
        resize_shards > 0 ? flows->size() / 2 : flows->size() + 1;
    for (const auto& flow : *flows) {
      if (tag == resize_at && rt->resize(resize_shards)) {
        std::printf("resized runtime to %d shard(s) mid-replay\n",
                    resize_shards);
      }
      rt->submit(flow.record, flow.arrival_port, flow.record.last, ++tag);
    }
    // Drain and join: every counter and the merged snapshot become final.
    rt->shutdown();
    suspects = rt_suspects.load(std::memory_order_relaxed);
    attacks = rt_attacks.load(std::memory_order_relaxed);
  } else {
    // Serial engine: one logical pipeline thread. A sampled flow's whole
    // journey is a single `serial` span.
    obs::ThreadLane* lane =
        tracer ? tracer->register_thread("main", "serial") : nullptr;
    std::uint64_t seq = 0;
    for (const auto& flow : *flows) {
      core::Verdict verdict;
      ++seq;
      if (lane != nullptr && tracer->sampled(seq)) {
        const auto t0 = obs::Tracer::now_ns();
        verdict = engine->process(flow.record, flow.arrival_port, flow.record.last);
        const auto t1 = obs::Tracer::now_ns();
        lane->emit(obs::SpanKind::kSerial, t0, t1 - t0, seq);
        tracer->e2e_us->observe(static_cast<double>(t1 - t0) / 1000.0);
      } else {
        verdict = engine->process(flow.record, flow.arrival_port, flow.record.last);
      }
      suspects += verdict.suspect ? 1 : 0;
      attacks += verdict.attack ? 1 : 0;
    }
    if (lane != nullptr) {
      lane->heartbeat(flows->size());
      lane->retire();
    }
  }

  std::printf("%zu flows analyzed: %llu suspects, %llu flagged as attacks\n",
              flows->size(), static_cast<unsigned long long>(suspects),
              static_cast<unsigned long long>(attacks));
  {
    auto snapshot = rt ? rt->snapshot() : engine->registry().snapshot();
    if (ingest_snapshot) {
      snapshot = obs::merge_snapshots({snapshot, *ingest_snapshot});
    }
    // Process-level self-metrics (RSS, CPU time, uptime, thread count) ride
    // along with every export; the flight recorder contributes its journey
    // histograms and liveness gauges when enabled.
    obs::Registry process_registry;
    obs::register_process_metrics(process_registry);
    std::vector<obs::RegistrySnapshot> parts{std::move(snapshot),
                                             process_registry.snapshot()};
    if (tracer) parts.push_back(tracer->snapshot());
    snapshot = obs::merge_snapshots(parts);
    if (rt) {
      std::printf(
          "runtime: %d shard(s), %.0f dispatched batches, %.0f dropped, "
          "%.0f backpressure waits\n",
          threads, snapshot.value("infilter_runtime_batches_total"),
          snapshot.value("infilter_runtime_dropped_total"),
          snapshot.value("infilter_runtime_backpressure_waits_total"));
    }
    if (const double resizes =
            snapshot.value("infilter_lifecycle_resizes_total");
        config.eia.lifecycle.enabled() || resizes > 0) {
      std::printf(
          "lifecycle: %.0f entries expired, %.0f relearned, %.0f resize(s), "
          "%.0f entries migrated\n",
          snapshot.value("infilter_lifecycle_entries_expired_total"),
          snapshot.value("infilter_lifecycle_entries_relearned_total"), resizes,
          snapshot.value("infilter_lifecycle_migrated_entries_total"));
    }
    const auto* latency = snapshot.histogram("infilter_process_latency_us");
    if (latency != nullptr && latency->count > 0) {
      std::printf("per-flow latency: p50 %.2fus p95 %.2fus p99 %.2fus\n",
                  latency->quantile(0.50), latency->quantile(0.95),
                  latency->quantile(0.99));
    }
    if (const auto metrics_path = args.value("metrics-out")) {
      std::ofstream out(*metrics_path, std::ios::trunc);
      if (!out) return fail("cannot open " + *metrics_path);
      const bool json = metrics_path->size() >= 5 &&
                        metrics_path->rfind(".json") == metrics_path->size() - 5;
      out << (json ? obs::to_json(snapshot) : obs::to_prometheus(snapshot));
      if (!out) return fail("cannot write metrics to " + *metrics_path);
      std::printf("wrote metrics to %s\n", metrics_path->c_str());
    }
    if (tracer) {
      const auto* e2e = snapshot.histogram("infilter_e2e_latency_us");
      if (e2e != nullptr && e2e->count > 0) {
        std::printf(
            "trace: %llu journeys sampled (1 in %llu), e2e p50 %.2fus "
            "p99 %.2fus p99.9 %.2fus; %llu span events (%llu dropped)\n",
            static_cast<unsigned long long>(e2e->count),
            static_cast<unsigned long long>(tracer->sample_every()),
            e2e->quantile(0.50), e2e->quantile(0.99), e2e->quantile(0.999),
            static_cast<unsigned long long>(tracer->events_emitted()),
            static_cast<unsigned long long>(tracer->events_dropped()));
      }
    }
  }
  if (tracer && trace_out.has_value()) {
    std::ofstream out(*trace_out, std::ios::trunc);
    if (!out) return fail("cannot open " + *trace_out);
    out << tracer->chrome_trace_json();
    if (!out) return fail("cannot write trace to " + *trace_out);
    std::printf("wrote Chrome trace-event JSON to %s (open in ui.perfetto.dev)\n",
                trace_out->c_str());
  }
  std::fputs(traceback.report().c_str(), stdout);

  if (args.has("idmef")) {
    for (const auto& alert : ui.alerts()) {
      std::fputs(alert.to_idmef_xml().c_str(), stdout);
    }
  }

  // Persist the post-run EIA sets (including anything auto-learned).
  if (const auto dump_path = args.value("dump-eia")) {
    std::ofstream out(*dump_path);
    if (!out) return fail("cannot open " + *dump_path);
    out << core::export_eia(engine->eia());
    std::printf("wrote EIA sets to %s\n", dump_path->c_str());
  }
  return 0;
}

// infilter-monitor: the live InFilter analysis node (Figure 9, running).
//
// Binds the collector ports, trains from a capture of known-good traffic,
// then analyzes arriving NetFlow exports in real time, printing each alert
// as it fires plus a periodic status line and a final traceback report.
// Feed it with `infilter-flowgen --send --attacks ...` from another shell.
//
// Usage:
//   infilter-monitor --train TRAIN_FILE [--ports 9001,...]
//                    [--eia EIA_FILE] [--mode basic|enhanced]
//                    [--eia-backend exact|bloom[:BITS[,K[,R[,ROTATE]]]]|cbloom[:...]]
//                                          # EIA membership storage: exact
//                                          # interval sets (default) or a
//                                          # memory-bounded Bloom / counting-
//                                          # Bloom filter (core/eia_backend.h)
//                    [--eia-max-idle MS]   # expire learned EIA entries idle
//                                          # longer than MS of flow time
//                                          # (0 = off; src/lifecycle). Exact
//                                          # and cbloom backends only
//                    [--resize-shards N]   # live-resize the worker pool to N
//                                          # shards halfway through the run,
//                                          # migrating engine state (needs
//                                          # --threads >= 1)
//                    [--duration-ms 30000] [--idmef]
//                    [--ttl-detect]        # fuse the TTL hop-count detector
//                                          # with the EIA check (src/hopcount)
//                    [--ttl-tolerance 2]   # hop-count window slack
//                    [--threads N]         # 0 (default) = inline analysis;
//                                          # N >= 1 = sharded runtime
//                    [--queue-depth 4096]
//                    [--ingest-threads N]  # 0 (default) = poll-loop receive;
//                                          # N >= 1 = threaded ingest: N
//                                          # recvmmsg receivers, each decoding
//                                          # and dispatching directly into the
//                                          # runtime (implies --threads >= 1)
//                    [--overload block|drop-oldest]  # compat; receiver-direct
//                                          # ingest has no internal queue
//                    [--cpu-set LIST]      # pin pipeline threads: "0-3,8"
//                                          # style; receivers first, then
//                                          # workers, then the scan thread.
//                                          # A hint -- missing cpus are
//                                          # counted, never fatal
//                    [--metrics-out FILE]  # final metrics dump: JSON when
//                                          # FILE ends in .json, else
//                                          # Prometheus text format
//                    [--trace-out FILE]    # flight-recorder export: Chrome
//                                          # trace-event JSON (Perfetto)
//                    [--trace-sample N]    # trace 1 in N records (default 64;
//                                          # either --trace-* flag enables the
//                                          # recorder); liveness stall warnings
//                                          # ride the status loop either way

#include <cstdio>
#include <fstream>
#include <limits>
#include <optional>
#include <sstream>

#include "app/node.h"
#include "core/eia_io.h"
#include "dagflow/allocation.h"
#include "flowtools/capture.h"
#include "obs/export.h"
#include "obs/process.h"
#include "obs/trace.h"
#include "runtime/affinity.h"
#include "util/args.h"

using namespace infilter;

namespace {

int fail(const std::string& message) {
  std::fprintf(stderr, "infilter-monitor: %s\n", message.c_str());
  return 1;
}

/// Prints alerts as they arrive (the console Alert UI).
class ConsoleSink final : public alert::AlertSink {
 public:
  explicit ConsoleSink(bool idmef) : idmef_(idmef) {}
  void consume(const alert::Alert& alert) override {
    if (idmef_) {
      std::fputs(alert.to_idmef_xml().c_str(), stdout);
      return;
    }
    std::printf("ALERT #%llu [%s] %s -> %s:%u via ingress %u\n",
                static_cast<unsigned long long>(alert.id),
                std::string(alert::stage_name(alert.stage)).c_str(),
                alert.source_ip.to_string().c_str(),
                alert.target_ip.to_string().c_str(), alert.target_port,
                alert.ingress_port);
  }

 private:
  bool idmef_;
};

/// Writes a metrics snapshot to `path`: JSON when the name ends in
/// ".json", Prometheus text exposition format otherwise.
bool write_metrics(const std::string& path, const obs::RegistrySnapshot& snapshot) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  const bool json = path.size() >= 5 && path.rfind(".json") == path.size() - 5;
  out << (json ? obs::to_json(snapshot) : obs::to_prometheus(snapshot));
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  const auto parsed = util::Args::parse(argc, argv, {"idmef", "ttl-detect"});
  if (!parsed) return fail(parsed.error().message);
  const auto& args = *parsed;

  app::NodeConfig config;
  if (const auto ports_spec = args.value("ports")) {
    config.ports.clear();
    std::size_t at = 0;
    while (at <= ports_spec->size()) {
      const auto comma = ports_spec->find(',', at);
      const auto token = ports_spec->substr(
          at, comma == std::string::npos ? std::string::npos : comma - at);
      config.ports.push_back(
          static_cast<std::uint16_t>(std::strtoul(token.c_str(), nullptr, 10)));
      if (comma == std::string::npos) break;
      at = comma + 1;
    }
  }
  const auto mode = args.value_or("mode", "enhanced");
  if (mode == "basic") config.engine.mode = core::EngineMode::kBasic;
  const auto backend =
      core::parse_eia_backend(args.value_or("eia-backend", "exact"));
  if (!backend) return fail(backend.error().message);
  config.engine.eia.backend = *backend;
  const auto max_idle = args.checked_int("eia-max-idle", 0, 0,
                                         std::numeric_limits<std::int64_t>::max());
  if (!max_idle) return fail(max_idle.error().message);
  config.engine.eia.lifecycle.max_idle_ms = static_cast<util::DurationMs>(*max_idle);
  if (config.engine.eia.lifecycle.enabled() &&
      config.engine.eia.backend.type == core::EiaBackendType::kBloom) {
    std::fprintf(stderr,
                 "infilter-monitor: warning: --eia-max-idle has no effect on the "
                 "bloom backend (use exact or cbloom)\n");
  }
  config.engine.use_hopcount = args.has("ttl-detect");
  const auto ttl_tolerance = args.checked_int("ttl-tolerance", 2, 0, 255);
  if (!ttl_tolerance) return fail(ttl_tolerance.error().message);
  config.engine.hopcount.tolerance = static_cast<int>(*ttl_tolerance);
  // Validated numerics: a typo'd or out-of-range value must fail with a
  // message, not wrap into NodeConfig and misbehave there.
  const auto threads = args.checked_int("threads", 0, 0, 4096);
  if (!threads) return fail(threads.error().message);
  config.threads = static_cast<int>(*threads);
  const auto queue_depth = args.checked_int("queue-depth", 4096, 1, 1 << 24);
  if (!queue_depth) return fail(queue_depth.error().message);
  config.queue_depth = static_cast<std::size_t>(*queue_depth);
  const auto resize_arg = args.checked_int("resize-shards", 0, 0, 4096);
  if (!resize_arg) return fail(resize_arg.error().message);
  const int resize_shards = static_cast<int>(*resize_arg);
  if (resize_shards > 0 && config.threads == 0) {
    return fail("--resize-shards requires the sharded runtime (--threads >= 1)");
  }
  const auto ingest_threads = args.checked_int("ingest-threads", 0, 0, 4096);
  if (!ingest_threads) return fail(ingest_threads.error().message);
  config.ingest_threads = static_cast<int>(*ingest_threads);
  const auto overload = args.value_or("overload", "block");
  if (overload == "drop-oldest") {
    config.overload = ingest::OverloadPolicy::kDropOldest;
  } else if (overload != "block") {
    return fail("--overload must be block or drop-oldest");
  }
  if (const auto cpu_set = args.value("cpu-set")) {
    std::string error;
    const auto cpus = runtime::parse_cpu_set(*cpu_set, &error);
    if (!cpus) return fail(error);
    config.affinity = *cpus;
  }

  // Flight recorder: always attached, so the liveness watchdog sees every
  // pipeline thread; span tracing (the part with a cost) only turns on when
  // a --trace-* flag asks for it. Declared before the node: must outlive it.
  const auto trace_out = args.value("trace-out");
  const auto trace_sample = args.checked_int("trace-sample", 64, 1, 1 << 30);
  if (!trace_sample) return fail(trace_sample.error().message);
  obs::TracerConfig trace_config;
  trace_config.sample_every = static_cast<std::uint64_t>(*trace_sample);
  // Always on: the sampled e2e latency histogram feeds the live status
  // line (1-in-N records, bounded span rings). The Chrome trace export
  // itself still only happens with --trace-out.
  trace_config.enabled = true;
  obs::Tracer tracer(trace_config);
  config.tracer = &tracer;

  ConsoleSink console(args.has("idmef"));
  auto node = app::InFilterNode::create(config, &console);
  if (!node) return fail(node.error().message);

  // EIA sets: file or Table 3 defaults.
  std::uint64_t preloaded_slash24s = 0;
  const auto add_expected = [&](core::IngressId ingress, const net::Prefix& prefix) {
    preloaded_slash24s += ((prefix.last().value() & 0xFFFFFF00u) -
                           (prefix.first().value() & 0xFFFFFF00u)) / 0x100u + 1;
    (*node)->add_expected(ingress, prefix);
  };
  if (const auto eia_path = args.value("eia")) {
    std::ifstream in(*eia_path);
    if (!in) return fail("cannot open " + *eia_path);
    std::ostringstream text;
    text << in.rdbuf();
    const auto imported = core::import_eia(text.str());
    if (!imported) return fail(imported.error().message);
    if (imported->backend().type() != core::EiaBackendType::kExact) {
      // A probabilistic dump has no prefix list to replay into the
      // node's (per-shard) tables; only exact-format files preload.
      return fail(*eia_path + " holds a probabilistic backend dump; "
                  "--eia wants an exact prefix-list file");
    }
    for (const auto ingress : imported->ingresses()) {
      for (const auto& prefix : imported->set_for(ingress)->to_cidrs()) {
        add_expected(ingress, prefix);
      }
    }
  } else {
    for (int s = 0; s < 10; ++s) {
      for (const auto& block : dagflow::eia_range(s).expand()) {
        add_expected(static_cast<core::IngressId>(9001 + s), block.prefix());
      }
    }
  }
  if (const double fill = core::predicted_fill_ratio(config.engine.eia.backend,
                                                     preloaded_slash24s);
      fill > 0.5) {
    // A saturated filter answers "expected" for everything -- detection
    // silently disappears. Warn, don't fail: the operator may be sizing
    // for learned traffic, not the preload.
    std::fprintf(stderr,
                 "infilter-monitor: warning: --eia-backend budget will be ~%.0f%% "
                 "full after preloading %llu /24s; membership false positives "
                 "will suppress detection (size >= 8 bits per expected /24)\n",
                 100 * fill, static_cast<unsigned long long>(preloaded_slash24s));
  }

  if (config.engine.mode == core::EngineMode::kEnhanced) {
    const auto train_path = args.value("train");
    if (!train_path.has_value()) return fail("--train is required in enhanced mode");
    flowtools::FlowCapture training;
    if (const auto loaded = training.load(*train_path); !loaded) {
      return fail(loaded.error().message);
    }
    std::vector<netflow::V5Record> records;
    records.reserve(training.flows().size());
    for (const auto& flow : training.flows()) records.push_back(flow.record);
    (*node)->train(records);
    std::printf("trained on %zu flows; ", records.size());
  }
  if (config.ingest_threads > 0) {
    std::printf(
        "monitoring %zu collector port(s): %d receiver thread(s) dispatching "
        "directly -> %d worker shard(s)\n",
        (*node)->ports().size(), config.ingest_threads, (*node)->threads());
  } else if (config.threads > 0) {
    std::printf("monitoring %zu collector port(s) with %d worker shard(s)\n",
                (*node)->ports().size(), (*node)->threads());
  } else {
    std::printf("monitoring %zu collector port(s)\n", (*node)->ports().size());
  }

  const auto duration_arg = args.checked_int("duration-ms", 30000, 1, 1 << 30);
  if (!duration_arg) return fail(duration_arg.error().message);
  const auto duration = *duration_arg;
  std::int64_t elapsed = 0;
  std::uint64_t last_processed = 0;
  bool resized = false;
  while (elapsed < duration) {
    constexpr int kSliceMs = 250;
    const auto processed = (*node)->poll_once(kSliceMs);
    if (!processed) return fail(processed.error().message);
    elapsed += kSliceMs;
    if (!resized && resize_shards > 0 && elapsed >= duration / 2) {
      // Live resize under traffic: ingest receivers stall on the submit
      // gate for the pause, then keep dispatching into the new pool.
      resized = (*node)->resize(resize_shards);
      if (resized) {
        std::printf("resized runtime to %d shard(s) mid-run\n", resize_shards);
      }
    }
    // The liveness watchdog: flag pipeline threads whose progress counter
    // stopped while their input queue is non-empty (wedged worker, stuck
    // decode stage...). One scan per slice keeps the baselines fresh.
    for (const auto& stall : tracer.scan_liveness(100.0)) {
      std::fprintf(stderr,
                   "WARN: thread '%s' stalled for %.0f ms (%s, %zu queued)\n",
                   stall.name.c_str(), stall.stalled_for_ms,
                   std::string(obs::thread_state_name(stall.state)).c_str(),
                   stall.queued);
    }
    const auto& stats = (*node)->stats();
    if (stats.flows_processed != last_processed && elapsed % 1000 < kSliceMs) {
      // Runtime-backed: drain in-flight flows first, so the snapshot can
      // safely merge every shard engine's registry and the printed
      // flows/suspects/attacks agree with each other (serial: no-op).
      (*node)->flush();
      const auto snapshot = (*node)->metrics();
      std::printf("status: %llu flows, %llu suspects, %llu attacks",
                  static_cast<unsigned long long>(stats.flows_processed),
                  static_cast<unsigned long long>(stats.suspects),
                  static_cast<unsigned long long>(stats.attacks_flagged));
      const auto* latency = snapshot.histogram("infilter_process_latency_us");
      if (latency != nullptr && latency->count > 0) {
        std::printf(" | process p50 %.2fus p95 %.2fus p99 %.2fus",
                    latency->quantile(0.50), latency->quantile(0.95),
                    latency->quantile(0.99));
      }
      // End-to-end (receive -> final verdict) from the always-on sampled
      // journey histogram -- the live view of what --trace-out exports.
      const auto* e2e = snapshot.histogram("infilter_e2e_latency_us");
      if (e2e != nullptr && e2e->count > 0) {
        std::printf(" | e2e p50 %.2fus p99 %.2fus", e2e->quantile(0.50),
                    e2e->quantile(0.99));
      }
      // Lifecycle health rides the same line: entry churn (aging on) and
      // pool resizes, from the engine/runtime lifecycle counters.
      if (const double resizes =
              snapshot.value("infilter_lifecycle_resizes_total");
          config.engine.eia.lifecycle.enabled() || resizes > 0) {
        std::printf(
            " | lifecycle %.0f expired %.0f relearned %.0f resize(s)",
            snapshot.value("infilter_lifecycle_entries_expired_total"),
            snapshot.value("infilter_lifecycle_entries_relearned_total"),
            resizes);
      }
      std::printf("\n");
      last_processed = stats.flows_processed;
    }
  }

  // Runtime-backed: drain in-flight flows so the final numbers are exact.
  (*node)->flush();
  const auto& stats = (*node)->stats();
  std::printf("\nfinal: %llu flows processed, %llu suspects, %llu attacks, "
              "%llu datagrams (%llu malformed, %llu flows lost)\n",
              static_cast<unsigned long long>(stats.flows_processed),
              static_cast<unsigned long long>(stats.suspects),
              static_cast<unsigned long long>(stats.attacks_flagged),
              static_cast<unsigned long long>(stats.datagrams),
              static_cast<unsigned long long>(stats.malformed_datagrams),
              static_cast<unsigned long long>(stats.sequence_gaps));
  std::fputs((*node)->traceback().report().c_str(), stdout);

  if (tracer.enabled()) {
    const auto snapshot = (*node)->metrics();
    const auto* e2e = snapshot.histogram("infilter_e2e_latency_us");
    if (e2e != nullptr && e2e->count > 0) {
      std::printf(
          "trace: %llu journeys sampled (1 in %llu), e2e p50 %.2fus "
          "p99 %.2fus p99.9 %.2fus; %llu span events (%llu dropped)\n",
          static_cast<unsigned long long>(e2e->count),
          static_cast<unsigned long long>(tracer.sample_every()),
          e2e->quantile(0.50), e2e->quantile(0.99), e2e->quantile(0.999),
          static_cast<unsigned long long>(tracer.events_emitted()),
          static_cast<unsigned long long>(tracer.events_dropped()));
    }
  }

  if (const auto metrics_path = args.value("metrics-out")) {
    // Node metrics (engine/runtime/ingest + tracer) plus the process-level
    // self-metrics: RSS, CPU time, uptime, thread count.
    obs::Registry process_registry;
    obs::register_process_metrics(process_registry);
    const auto merged = obs::merge_snapshots(
        {(*node)->metrics(), process_registry.snapshot()});
    if (!write_metrics(*metrics_path, merged)) {
      return fail("cannot write metrics to " + *metrics_path);
    }
    std::printf("wrote metrics to %s\n", metrics_path->c_str());
  }

  if (trace_out.has_value()) {
    std::ofstream out(*trace_out, std::ios::trunc);
    if (!out) return fail("cannot open " + *trace_out);
    out << tracer.chrome_trace_json();
    if (!out) return fail("cannot write trace to " + *trace_out);
    std::printf("wrote Chrome trace-event JSON to %s (open in ui.perfetto.dev)\n",
                trace_out->c_str());
  }
  return 0;
}

// infilter-flowgen: generate a NetFlow capture for experimentation.
//
// Emulates one Dagflow source (normal traffic from its Table 3 address
// blocks) plus optional spoofed attacks, and writes the capture in the
// binary or ASCII format the other tools read.
//
// Usage:
//   infilter-flowgen --out flows.bin [--flows 5000] [--seed 1]
//                    [--source 0]           # which Table 3 source (0..9)
//                    [--attacks slammer,tfn2k | all | none]
//                    [--attack-volume 0.04] [--spoof-block 104c]
//                    [--sampling 1] [--ascii]
//   infilter-flowgen --send ...            # transmit over UDP instead of
//                                          # writing a file (pair with a
//                                          # running infilter-capture)
//   infilter-flowgen --list-attacks

#include <cstdio>
#include <fstream>

#include "dagflow/dagflow.h"
#include "flowtools/ascii.h"
#include "flowtools/capture.h"
#include "flowtools/udp.h"
#include "traffic/attacks.h"
#include "traffic/normal.h"
#include "util/args.h"

using namespace infilter;

namespace {

int fail(const std::string& message) {
  std::fprintf(stderr, "infilter-flowgen: %s\n", message.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  const auto parsed = util::Args::parse(argc, argv, {"ascii", "list-attacks", "send"});
  if (!parsed) return fail(parsed.error().message);
  const auto& args = *parsed;

  if (args.has("list-attacks")) {
    for (int k = 0; k < traffic::kAttackKindCount; ++k) {
      std::printf("%s\n",
                  std::string(traffic::attack_name(static_cast<traffic::AttackKind>(k)))
                      .c_str());
    }
    return 0;
  }

  const bool live = args.has("send");
  const auto out_path = args.value("out");
  if (!live && !out_path.has_value()) {
    return fail("--out FILE or --send is required (see the header comment)");
  }
  const auto seed = static_cast<std::uint64_t>(args.int_or("seed", 1));
  const auto flows = static_cast<std::size_t>(args.int_or("flows", 5000));
  const int source = static_cast<int>(args.int_or("source", 0));
  if (source < 0 || source > 9) return fail("--source must be 0..9");
  const auto port = static_cast<std::uint16_t>(9001 + source);
  const auto sampling = static_cast<std::uint32_t>(args.int_or("sampling", 1));

  // Normal traffic from the source's own Table 3 blocks.
  util::Rng rng{seed};
  traffic::NormalTrafficModel model;
  traffic::Trace trace = model.generate(flows, 0, rng);
  dagflow::Dagflow normal_source(
      dagflow::DagflowConfig{.netflow_port = port, .sampling_interval = sampling},
      dagflow::AddressPool::from_allocation(
          dagflow::make_allocation(10, 100, 0, 0)[static_cast<std::size_t>(source)]),
      seed + 1);
  auto labeled = normal_source.replay(trace);

  // Attacks.
  const std::string attack_spec = args.value_or("attacks", "none");
  std::vector<traffic::AttackKind> kinds;
  if (attack_spec == "all") {
    for (int k = 0; k < traffic::kAttackKindCount; ++k) {
      kinds.push_back(static_cast<traffic::AttackKind>(k));
    }
  } else if (attack_spec != "none") {
    std::size_t at = 0;
    while (at <= attack_spec.size()) {
      const auto comma = attack_spec.find(',', at);
      const auto name = attack_spec.substr(
          at, comma == std::string::npos ? std::string::npos : comma - at);
      const auto kind = traffic::attack_by_name(name);
      if (!kind.has_value()) {
        return fail("unknown attack '" + name + "' (--list-attacks shows names)");
      }
      kinds.push_back(*kind);
      if (comma == std::string::npos) break;
      at = comma + 1;
    }
  }
  if (!kinds.empty()) {
    const auto block =
        net::SubBlock::parse(args.value_or("spoof-block", "104c"));
    if (!block.has_value()) return fail("bad --spoof-block notation");
    traffic::AttackConfig attack_config;
    const double volume = args.double_or("attack-volume", 0.04);
    attack_config.intensity =
        volume * static_cast<double>(flows) / (637.0 * static_cast<double>(kinds.size()) / 12.0);
    dagflow::Dagflow attacker(
        dagflow::DagflowConfig{.netflow_port = port, .sampling_interval = sampling},
        dagflow::AddressPool::from_subblocks({*block}), seed + 2);
    const auto span = static_cast<util::DurationMs>(trace.duration() * 0.8);
    for (const auto kind : kinds) {
      const auto origin = rng.below(std::max<util::DurationMs>(1, span));
      const auto attack = traffic::generate_attack(kind, attack_config, origin, rng);
      const auto attack_flows = attacker.replay(attack);
      labeled.insert(labeled.end(), attack_flows.begin(), attack_flows.end());
    }
  }
  std::sort(labeled.begin(), labeled.end(), [](const auto& a, const auto& b) {
    return a.record.last < b.record.last;
  });

  dagflow::Dagflow exporter(
      dagflow::DagflowConfig{.netflow_port = port},
      dagflow::AddressPool::from_subblocks({*net::SubBlock::parse("1a")}), seed + 3);
  const auto datagrams = exporter.export_datagrams(labeled, trace.duration());

  if (live) {
    auto sender = flowtools::UdpSender::create();
    if (!sender) return fail(sender.error().message);
    for (const auto& datagram : datagrams) {
      if (const auto sent = sender->send(port, datagram); !sent) {
        return fail(sent.error().message);
      }
    }
    std::printf("sent %zu flows in %zu datagrams to 127.0.0.1:%u\n", labeled.size(),
                datagrams.size(), port);
    return 0;
  }

  // Write through the collector so both formats share one code path.
  flowtools::FlowCapture capture;
  for (const auto& datagram : datagrams) {
    if (const auto result = capture.ingest(datagram, port); !result) {
      return fail("internal: " + result.error().message);
    }
  }

  if (args.has("ascii")) {
    std::ofstream out(*out_path);
    if (!out) return fail("cannot open " + *out_path);
    out << flowtools::export_ascii(capture.flows());
  } else if (const auto saved = capture.save(*out_path); !saved) {
    return fail(saved.error().message);
  }
  std::printf("wrote %zu flows (%zu attack flows from %zu attack kinds) to %s\n",
              capture.flows().size(),
              static_cast<std::size_t>(std::count_if(
                  labeled.begin(), labeled.end(),
                  [](const auto& flow) { return flow.attack; })),
              kinds.size(), out_path->c_str());
  return 0;
}

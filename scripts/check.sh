#!/usr/bin/env bash
# Local CI: the tier-1 gate plus sanitizer lanes.
#
#   scripts/check.sh             # tier-1: release build + full ctest
#   scripts/check.sh --asan      # + AddressSanitizer lane (full suite)
#   scripts/check.sh --tsan      # + ThreadSanitizer lane (runtime tests)
#   scripts/check.sh --ubsan     # + UndefinedBehaviorSanitizer lane (full suite)
#   scripts/check.sh --producers # + TSan multi-producer sweep only (the
#                                #   shard-ring merge, shards x producers
#                                #   equivalence, flush/snapshot-under-load,
#                                #   and multi-receiver ingest tests)
#   scripts/check.sh --soak      # + TSan lifecycle lane: resize vs live
#                                #   producers, aging properties, and the
#                                #   short churn-soak harness tests
#   scripts/check.sh --all       # tier-1 + asan + tsan + ubsan + soak
#
# The TSan lane runs the concurrency tests only (Runtime/Node/Ingest/Trace):
# the full suite under TSan takes far longer and the single-threaded
# tests cannot race. --producers is the focused subset to iterate on when
# touching the multi-producer dispatch path (a strict subset of --tsan's
# filter, so --all already covers it).

set -euo pipefail
cd "$(dirname "$0")/.."

run_asan=0
run_tsan=0
run_ubsan=0
run_producers=0
run_soak=0
for arg in "$@"; do
  case "$arg" in
    --asan) run_asan=1 ;;
    --tsan) run_tsan=1 ;;
    --ubsan) run_ubsan=1 ;;
    --producers) run_producers=1 ;;
    --soak) run_soak=1 ;;
    --all) run_asan=1; run_tsan=1; run_ubsan=1; run_soak=1 ;;
    *) echo "usage: scripts/check.sh [--asan] [--tsan] [--ubsan] [--producers] [--soak] [--all]" >&2; exit 2 ;;
  esac
done

jobs="$(nproc 2>/dev/null || echo 2)"

echo "== tier-1: release build + ctest =="
cmake --preset release
cmake --build --preset release -j "$jobs"
ctest --preset release

if [[ "$run_asan" == 1 ]]; then
  echo "== lane: AddressSanitizer =="
  cmake --preset asan
  cmake --build --preset asan -j "$jobs"
  ctest --preset asan
fi

if [[ "$run_tsan" == 1 ]]; then
  echo "== lane: ThreadSanitizer (concurrency tests) =="
  # EiaBackend*/EiaTable*/EiaIo* ride along so the Bloom/counting-Bloom
  # membership backends (engine-private state the shard sweeps exercise
  # concurrently) get sanitizer coverage next to the runtime tests.
  cmake --preset tsan
  cmake --build --preset tsan -j "$jobs"
  ./build-tsan/tests/infilter_tests \
    --gtest_filter='ShardedRuntime*:SpscRing*:SerializingSink*:Node*:Ingest*:Tracer*:TraceRuntime*:TraceRing*:ThreadLane*:EiaBackend*:EiaBackendParse*:EiaTable*:EiaIo*'
fi

if [[ "$run_producers" == 1 ]]; then
  echo "== lane: ThreadSanitizer multi-producer sweep =="
  cmake --preset tsan
  cmake --build --preset tsan -j "$jobs"
  ./build-tsan/tests/infilter_tests \
    --gtest_filter='ShardedRuntime.MergeKeepsSeqStrictlyMonotonePerShard:ShardedRuntime.MultiProducerSweepReplaysIdenticalAlertStream:ShardedRuntime.SnapshotAndFlushAreSafeWhileProducersSubmit:IngestPipeline.TagsArePartitionedAndMonotonePerReceiver:IngestStress.MultiSocketMultiReceiverWithConcurrentQuiesce'
fi

if [[ "$run_soak" == 1 ]]; then
  echo "== lane: ThreadSanitizer lifecycle soak =="
  # The resize/flush/snapshot-vs-producers race, the resize bit-consistency
  # sweep, the aging property tests, and the short churn-soak harness
  # (tests/test_lifecycle.cpp) under TSan.
  cmake --preset tsan
  cmake --build --preset tsan -j "$jobs"
  ./build-tsan/tests/infilter_tests \
    --gtest_filter='Lifecycle*:EiaAging*:EiaSetRemove*:EiaIoLifecycle*'
fi

if [[ "$run_ubsan" == 1 ]]; then
  echo "== lane: UndefinedBehaviorSanitizer =="
  cmake --preset ubsan
  cmake --build --preset ubsan -j "$jobs"
  ctest --preset ubsan
fi

echo "== all requested lanes passed =="

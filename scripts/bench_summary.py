#!/usr/bin/env python3
"""Collate BENCH_*.json perf files into one trajectory document, and
validate flight-recorder trace exports.

Collation (default mode):

    scripts/bench_summary.py [--dir build] [--out BENCH_summary.json]
                             [--expect NAME ...]

  Scans --dir (recursively) for BENCH_*.json files written by the bench
  binaries, and writes one {"benches": {name: doc, ...}} document plus a
  flat "trajectory" list of every records_per_sec / speedup headline it
  finds -- the file a perf dashboard or a later PR's regression check can
  diff in one read.

  An unparseable BENCH_*.json is an error (exit 1), not something to
  silently collate around -- a truncated file means a bench crashed
  mid-write. --expect NAME (repeatable; NAME with or without the
  BENCH_/.json decoration) additionally fails the run when that bench
  document was not found at all. --expect NAME:key1,key2 further fails
  when no run in that document carries every listed key -- e.g.
  `--expect throughput:producers,shard_queue_peak_min,shard_queue_peak_max`
  gates on the multi-producer occupancy fields being recorded.

Trace validation:

    scripts/bench_summary.py --validate-trace TRACE.json [--against BENCH.json]

  Asserts TRACE.json is valid Chrome trace-event JSON of the shape
  Perfetto loads ({"traceEvents": [...]}, every "X" event carrying
  name/ph/pid/tid/ts/dur), that each journey's spans tile (every span
  starts where the previous one ended), and -- when --against names the
  bench document -- that the per-journey span durations sum to the
  exported e2e latency histogram within tolerance. Exit 0 = valid.
"""

import argparse
import json
import os
import sys

# Perfetto's trace-event importer needs these on every complete ("X") event.
REQUIRED_X_KEYS = ("name", "ph", "pid", "tid", "ts", "dur")


def collate(root, out_path, expected):
    benches = {}
    broken = []
    for dirpath, _dirnames, filenames in os.walk(root):
        for filename in sorted(filenames):
            if not (filename.startswith("BENCH_") and filename.endswith(".json")):
                continue
            if filename.endswith("_trace.json") or filename == os.path.basename(out_path):
                continue
            path = os.path.join(dirpath, filename)
            try:
                with open(path) as f:
                    doc = json.load(f)
            except (OSError, json.JSONDecodeError) as error:
                print(f"bench_summary: error: cannot read {path}: {error}",
                      file=sys.stderr)
                broken.append(path)
                continue
            benches[filename[len("BENCH_"):-len(".json")]] = doc

    # Normalize --expect names ("ttl_detect", "BENCH_ttl_detect.json", ...)
    # to the bare bench name used as the benches key. "NAME:key1,key2"
    # additionally requires a run carrying every listed key.
    missing = []
    for name in expected:
        spec = name.split(":", 1)
        bare = os.path.basename(spec[0])
        if bare.startswith("BENCH_"):
            bare = bare[len("BENCH_"):]
        if bare.endswith(".json"):
            bare = bare[:-len(".json")]
        if bare not in benches:
            missing.append(name)
            continue
        if len(spec) == 2:
            keys = [k for k in spec[1].split(",") if k]
            runs = benches[bare].get("runs", [])
            if not any(all(k in run for k in keys) for run in runs):
                print(f"bench_summary: error: no run in bench '{bare}' carries "
                      f"all of {keys}", file=sys.stderr)
                missing.append(name)
    for name in missing:
        print(f"bench_summary: error: expectation '{name}' not met under "
              f"{root}", file=sys.stderr)
    if broken or missing:
        return 1

    trajectory = []
    for name, doc in sorted(benches.items()):
        for run in doc.get("runs", []):
            point = {"bench": name, "mode": run.get("mode", "?")}
            for key in ("records_per_sec", "flows_per_sec", "speedup_vs_serial",
                        "throughput_vs_untraced", "seconds", "producers",
                        "shard_queue_peak_min", "shard_queue_peak_max",
                        "memory_bytes", "lookup_ns_per_flow",
                        "memory_ratio_vs_exact", "false_positive_ratio",
                        "bloom_false_suspects_total", "resizes",
                        "migrated_entries", "resize_pause_p99_us",
                        "entries_expired", "entries_relearned",
                        "min_detection_rate", "benign_suspect_delta"):
                if key in run:
                    point[key] = run[key]
            trajectory.append(point)

    summary = {"benches": benches, "trajectory": trajectory}
    with open(out_path, "w") as f:
        json.dump(summary, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"bench_summary: {len(benches)} bench file(s), "
          f"{len(trajectory)} trajectory point(s) -> {out_path}")
    return 0


def validate_trace(trace_path, against_path, tolerance_us):
    with open(trace_path) as f:
        doc = json.load(f)  # a parse error here is the failure we're testing for
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        print("bench_summary: traceEvents missing or not a list", file=sys.stderr)
        return 1

    spans = [e for e in events if e.get("ph") == "X"]
    for event in spans:
        missing = [k for k in REQUIRED_X_KEYS if k not in event]
        if missing:
            print(f"bench_summary: X event missing {missing}: {event}", file=sys.stderr)
            return 1

    # Per-journey tiling: sorted by start, span N+1 begins where span N ends
    # (the pipeline re-stamps hop_ns at every hand-off, so any gap or
    # overlap beyond export rounding is a plumbing bug).
    journeys = {}
    for event in spans:
        journeys.setdefault(event.get("args", {}).get("id"), []).append(event)
    span_sum_us = 0.0
    for journey_id, journey in journeys.items():
        journey.sort(key=lambda e: e["ts"])
        for prev, nxt in zip(journey, journey[1:]):
            gap = abs(prev["ts"] + prev["dur"] - nxt["ts"])
            if gap > 0.002:  # export prints microseconds with 3 decimals
                print(f"bench_summary: journey {journey_id} spans do not tile "
                      f"(gap {gap:.3f}us)", file=sys.stderr)
                return 1
        span_sum_us += sum(e["dur"] for e in journey)

    checked = f"{len(spans)} spans over {len(journeys)} journey(s)"
    if against_path:
        with open(against_path) as f:
            bench = json.load(f)
        trace = bench.get("trace", {})
        e2e_sum = trace.get("e2e_sum_us")
        if trace.get("journeys") != len(journeys):
            print(f"bench_summary: {len(journeys)} journeys in the trace, "
                  f"{trace.get('journeys')} in the e2e histogram", file=sys.stderr)
            return 1
        if e2e_sum is None or abs(span_sum_us - e2e_sum) > tolerance_us:
            print(f"bench_summary: span durations sum to {span_sum_us:.3f}us, "
                  f"e2e histogram to {e2e_sum}us (tolerance {tolerance_us}us)",
                  file=sys.stderr)
            return 1
        checked += f"; span sum {span_sum_us:.1f}us == e2e sum {e2e_sum:.1f}us"
    print(f"bench_summary: {trace_path} OK ({checked})")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--dir", default=".", help="directory to scan for BENCH_*.json")
    parser.add_argument("--out", default="BENCH_summary.json")
    parser.add_argument("--expect", action="append", default=[],
                        metavar="NAME[:KEY,...]",
                        help="fail unless this bench document was collated "
                             "(repeatable; with or without BENCH_/.json); "
                             "NAME:key1,key2 also requires a run carrying "
                             "every listed key")
    parser.add_argument("--validate-trace", metavar="TRACE_JSON",
                        help="validate a Chrome trace-event export instead of collating")
    parser.add_argument("--against", metavar="BENCH_JSON",
                        help="bench document with the e2e histogram to cross-check")
    parser.add_argument("--tolerance-us", type=float, default=None,
                        help="span-sum vs e2e-sum tolerance (default: 0.1%% of e2e sum, "
                             "min 5us -- double rounding at 3 decimals per span)")
    args = parser.parse_args()

    if args.validate_trace:
        tolerance = args.tolerance_us
        if tolerance is None and args.against:
            with open(args.against) as f:
                e2e_sum = json.load(f).get("trace", {}).get("e2e_sum_us") or 0.0
            tolerance = max(5.0, 0.001 * e2e_sum)
        return validate_trace(args.validate_trace, args.against, tolerance or 5.0)
    return collate(args.dir, args.out, args.expect)


if __name__ == "__main__":
    sys.exit(main())

#include "nns/encoding.h"

#include <algorithm>
#include <cassert>

namespace infilter::nns {

UnaryEncoder::UnaryEncoder(std::vector<FeatureRange> ranges, int bits_per_feature)
    : ranges_(std::move(ranges)), bits_per_feature_(bits_per_feature) {
  assert(!ranges_.empty());
  assert(bits_per_feature_ > 0);
  for (const auto& range : ranges_) {
    assert(range.hi > range.lo);
    (void)range;
  }
}

UnaryEncoder UnaryEncoder::log_scale(std::vector<FeatureRange> ranges,
                                     int bits_per_feature) {
  for (auto& range : ranges) {
    assert(range.lo > 0);
    range.lo = std::log10(range.lo);
    range.hi = std::log10(range.hi);
  }
  UnaryEncoder encoder(std::move(ranges), bits_per_feature);
  encoder.log_scale_ = true;
  return encoder;
}

int UnaryEncoder::quantize(double value, std::size_t feature) const {
  assert(feature < ranges_.size());
  if (log_scale_) value = std::log10(std::max(value, 1e-12));
  const auto& range = ranges_[feature];
  const double fraction = (value - range.lo) / (range.hi - range.lo);
  const int interval = static_cast<int>(std::floor(fraction * bits_per_feature_));
  return std::clamp(interval, 0, bits_per_feature_);
}

BitVector UnaryEncoder::encode(std::span<const double> values) const {
  BitVector out;
  encode_into(values, out);
  return out;
}

void UnaryEncoder::encode_into(std::span<const double> values, BitVector& out) const {
  assert(values.size() == ranges_.size());
  out.reset(dimension());
  for (std::size_t c = 0; c < values.size(); ++c) {
    const int ones = quantize(values[c], c);
    out.fill_ones(static_cast<int>(c) * bits_per_feature_, ones);
  }
}

}  // namespace infilter::nns

// Dense bit vectors for the unary flow encoding of Section 4.2.
//
// Flows are represented as points in {0,1}^d (d = 720 in the paper's
// experiments). The NNS algorithms need exactly three primitives on these
// vectors: Hamming distance, GF(2) inner product (the "Test" procedure of
// Figure 7), and random generation with per-bit bias (the "CreateTestVector"
// procedure). All three reduce to word-parallel popcounts.

#pragma once

#include <bit>
#include <cassert>
#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace infilter::nns {

/// A fixed-size vector in {0,1}^d backed by 64-bit words.
class BitVector {
 public:
  BitVector() = default;
  explicit BitVector(int bits) : bits_(bits), words_((bits + 63) / 64, 0) {}

  [[nodiscard]] int size() const { return bits_; }

  [[nodiscard]] bool get(int i) const {
    assert(i >= 0 && i < bits_);
    return (words_[static_cast<std::size_t>(i) / 64] >> (i % 64)) & 1;
  }

  void set(int i, bool value = true) {
    assert(i >= 0 && i < bits_);
    const std::uint64_t mask = std::uint64_t{1} << (i % 64);
    if (value) {
      words_[static_cast<std::size_t>(i) / 64] |= mask;
    } else {
      words_[static_cast<std::size_t>(i) / 64] &= ~mask;
    }
  }

  /// Number of set bits.
  [[nodiscard]] int popcount() const {
    int total = 0;
    for (auto word : words_) total += std::popcount(word);
    return total;
  }

  /// Hamming distance (the HD procedure of Figure 7).
  /// Precondition: same size.
  [[nodiscard]] int hamming_distance(const BitVector& other) const {
    assert(bits_ == other.bits_);
    int total = 0;
    for (std::size_t w = 0; w < words_.size(); ++w) {
      total += std::popcount(words_[w] ^ other.words_[w]);
    }
    return total;
  }

  /// GF(2) inner product (the Test procedure of Figure 7): the parity of
  /// the AND of the two vectors. Precondition: same size.
  [[nodiscard]] bool inner_product(const BitVector& other) const {
    assert(bits_ == other.bits_);
    std::uint64_t parity = 0;
    for (std::size_t w = 0; w < words_.size(); ++w) {
      parity ^= words_[w] & other.words_[w];
    }
    return std::popcount(parity) & 1;
  }

  /// CreateTestVector (Figure 7): each bit independently 1 with
  /// probability b/2.
  static BitVector random_biased(int bits, double b, util::Rng& rng) {
    BitVector v(bits);
    const double p = b / 2.0;
    for (int i = 0; i < bits; ++i) {
      if (rng.chance(p)) v.set(i);
    }
    return v;
  }

  friend bool operator==(const BitVector&, const BitVector&) = default;

 private:
  int bits_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace infilter::nns

// Dense bit vectors for the unary flow encoding of Section 4.2.
//
// Flows are represented as points in {0,1}^d (d = 720 in the paper's
// experiments). The NNS algorithms need exactly three primitives on these
// vectors: Hamming distance, GF(2) inner product (the "Test" procedure of
// Figure 7), and random generation with per-bit bias (the "CreateTestVector"
// procedure). All three reduce to word-parallel popcounts.
//
// The word storage is exposed read-only (words()) so cache-conscious
// consumers -- the KOR probe tables keep every table's test vectors in one
// contiguous word array -- can operate on raw words without going through
// per-bit accessors.

#pragma once

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "util/rng.h"

namespace infilter::nns {

/// GF(2) inner product over raw word spans: parity of the AND of two
/// equally sized word arrays. The primitive behind BitVector::inner_product
/// and the SoA probe tables of nns/kor.h.
[[nodiscard]] inline bool gf2_inner_product(const std::uint64_t* a,
                                            const std::uint64_t* b,
                                            std::size_t words) noexcept {
  std::uint64_t parity = 0;
  for (std::size_t w = 0; w < words; ++w) parity ^= a[w] & b[w];
  return std::popcount(parity) & 1;
}

/// Hamming distance over raw word spans. The primitive behind
/// BitVector::hamming_distance and the flattened training rows the KOR
/// batch probe kernel scans (nns/kor.cpp).
[[nodiscard]] inline int hamming_distance_words(const std::uint64_t* a,
                                                const std::uint64_t* b,
                                                std::size_t words) noexcept {
  int total = 0;
  for (std::size_t w = 0; w < words; ++w) total += std::popcount(a[w] ^ b[w]);
  return total;
}

/// A fixed-size vector in {0,1}^d backed by 64-bit words.
class BitVector {
 public:
  BitVector() = default;
  explicit BitVector(int bits) : bits_(bits), words_(words_for_bits(bits), 0) {}

  [[nodiscard]] int size() const { return bits_; }

  /// Words needed to hold `bits` bits.
  [[nodiscard]] static std::size_t words_for_bits(int bits) {
    return static_cast<std::size_t>(bits + 63) / 64;
  }

  /// Read-only view of the backing words. Bits past size() are zero.
  [[nodiscard]] std::span<const std::uint64_t> words() const { return words_; }

  /// Resizes to `bits` bits, all zero. Reuses the existing word buffer when
  /// it is large enough -- the arena primitive behind the zero-allocation
  /// batch encode path (UnaryEncoder::encode_into).
  void reset(int bits) {
    bits_ = bits;
    words_.assign(words_for_bits(bits), 0);
  }

  [[nodiscard]] bool get(int i) const {
    assert(i >= 0 && i < bits_);
    return (words_[static_cast<std::size_t>(i) / 64] >> (i % 64)) & 1;
  }

  void set(int i, bool value = true) {
    assert(i >= 0 && i < bits_);
    const std::uint64_t mask = std::uint64_t{1} << (i % 64);
    if (value) {
      words_[static_cast<std::size_t>(i) / 64] |= mask;
    } else {
      words_[static_cast<std::size_t>(i) / 64] &= ~mask;
    }
  }

  /// Sets bits [begin, begin + count) word-at-a-time. With the unary code
  /// writing runs of up to bits_per_feature ones per flow, this replaces
  /// count individual set() calls with ~count/64 word ORs.
  void fill_ones(int begin, int count) {
    assert(begin >= 0 && count >= 0 && begin + count <= bits_);
    int at = begin;
    const int end = begin + count;
    std::size_t w = static_cast<std::size_t>(at) / 64;
    int bit = at % 64;
    while (at < end) {
      const int take = std::min(64 - bit, end - at);
      const std::uint64_t run =
          take == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << take) - 1;
      words_[w] |= run << bit;
      at += take;
      ++w;
      bit = 0;
    }
  }

  /// Number of set bits.
  [[nodiscard]] int popcount() const {
    int total = 0;
    for (auto word : words_) total += std::popcount(word);
    return total;
  }

  /// Hamming distance (the HD procedure of Figure 7).
  /// Precondition: same size.
  [[nodiscard]] int hamming_distance(const BitVector& other) const {
    assert(bits_ == other.bits_);
    return hamming_distance_words(words_.data(), other.words_.data(),
                                  words_.size());
  }

  /// GF(2) inner product (the Test procedure of Figure 7): the parity of
  /// the AND of the two vectors. Precondition: same size.
  [[nodiscard]] bool inner_product(const BitVector& other) const {
    assert(bits_ == other.bits_);
    return gf2_inner_product(words_.data(), other.words_.data(), words_.size());
  }

  /// CreateTestVector (Figure 7): each bit independently 1 with
  /// probability b/2. Sampled by geometric skips between set bits rather
  /// than one Bernoulli draw per bit: KOR draws its test vectors with
  /// b = 1/(2t), i.e. per-bit probabilities down to ~1/2d, where skip
  /// sampling consumes O(p * bits) RNG draws instead of O(bits). The
  /// produced distribution is exactly the per-bit Bernoulli product
  /// (tests/test_bitvector.cpp pins the draws against a scalar reference).
  static BitVector random_biased(int bits, double b, util::Rng& rng) {
    BitVector v(bits);
    const double p = b / 2.0;
    if (p <= 0.0 || bits <= 0) return v;
    if (p >= 1.0) {
      v.fill_ones(0, bits);
      return v;
    }
    // The gap ahead of each set bit is Geometric(p): floor(log(1-u) /
    // log(1-p)) for u uniform in [0, 1). u = 0 gives gap 0 (adjacent set
    // bit); u -> 1 overshoots past `bits` and terminates the loop.
    const double denom = std::log1p(-p);
    double position = -1.0;
    for (;;) {
      const double u = rng.uniform();
      position += 1.0 + std::floor(std::log1p(-u) / denom);
      if (!(position < static_cast<double>(bits))) break;
      v.set(static_cast<int>(position));
    }
    return v;
  }

  friend bool operator==(const BitVector&, const BitVector&) = default;

 private:
  int bits_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace infilter::nns

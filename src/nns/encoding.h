// Unary encoding of flow characteristics (Section 4.2).
//
// Each flow characteristic X_c taking values in [a, b] is allocated d_c
// bits: [a, b] is divided into d_c equal intervals and a value falling in
// the I-th interval is encoded as I ones followed by (d_c - I) zeros.
// Concatenating the N characteristics yields the d = N * d_c bit point the
// NNS algorithms operate on. The key property: the Hamming distance between
// two encoded flows is the sum of per-characteristic interval differences,
// i.e. an L1 distance on quantized features.

#pragma once

#include <cmath>
#include <span>
#include <vector>

#include "nns/bitvector.h"

namespace infilter::nns {

/// Value range of one flow characteristic. Values outside [lo, hi] clamp:
/// the detector must score wildly out-of-range flows as maximally distant,
/// not reject them.
struct FeatureRange {
  double lo = 0;
  double hi = 1;
};

/// Encodes N-characteristic flows into {0,1}^d with d = N * bits_per_feature.
class UnaryEncoder {
 public:
  /// Precondition: !ranges.empty(), bits_per_feature > 0, and each range
  /// has hi > lo.
  UnaryEncoder(std::vector<FeatureRange> ranges, int bits_per_feature);

  [[nodiscard]] int dimension() const {
    return static_cast<int>(ranges_.size()) * bits_per_feature_;
  }
  [[nodiscard]] int bits_per_feature() const { return bits_per_feature_; }
  [[nodiscard]] std::size_t feature_count() const { return ranges_.size(); }

  /// The interval index in [0, bits_per_feature] a value maps to.
  [[nodiscard]] int quantize(double value, std::size_t feature) const;

  /// Encodes one flow. Precondition: values.size() == feature_count().
  [[nodiscard]] BitVector encode(std::span<const double> values) const;

  /// Arena variant of encode(): writes the encoding into `out`, reusing its
  /// word buffer. After `out` has been sized once (first call), subsequent
  /// calls perform no heap allocation -- the batch paths keep a pool of
  /// BitVectors and encode_into them flow after flow.
  void encode_into(std::span<const double> values, BitVector& out) const;

  /// Log-scale encoder: features spanning orders of magnitude (byte counts,
  /// bit rates) are quantized on log10 so that the unary distance reflects
  /// relative rather than absolute differences. `ranges` are given in
  /// linear units and must be strictly positive.
  static UnaryEncoder log_scale(std::vector<FeatureRange> ranges, int bits_per_feature);

 private:
  std::vector<FeatureRange> ranges_;
  int bits_per_feature_;
  bool log_scale_ = false;
};

}  // namespace infilter::nns

#include "nns/kor.h"

#include <cassert>

namespace infilter::nns {

std::vector<std::uint32_t> hamming_ball(std::uint32_t center, int m2, int radius) {
  assert(m2 > 0 && m2 <= 24);
  assert(radius >= 1 && radius <= 4);
  std::vector<std::uint32_t> out;
  out.push_back(center);
  if (radius >= 2) {
    for (int i = 0; i < m2; ++i) out.push_back(center ^ (1u << i));
  }
  if (radius >= 3) {
    for (int i = 0; i < m2; ++i) {
      for (int j = i + 1; j < m2; ++j) {
        out.push_back(center ^ (1u << i) ^ (1u << j));
      }
    }
  }
  if (radius >= 4) {
    for (int i = 0; i < m2; ++i) {
      for (int j = i + 1; j < m2; ++j) {
        for (int k = j + 1; k < m2; ++k) {
          out.push_back(center ^ (1u << i) ^ (1u << j) ^ (1u << k));
        }
      }
    }
  }
  return out;
}

KorNns::KorNns(std::span<const BitVector> training, const KorParams& params)
    : params_(params), training_(training.begin(), training.end()) {
  assert(params_.m1 >= 1);
  assert(params_.m2 >= 1 && params_.m2 <= 24);
  assert(params_.m3 >= 1 && params_.m3 <= 4);
  if (training_.empty()) return;
  dimension_ = training_.front().size();
  for (const auto& flow : training_) {
    assert(flow.size() == dimension_);
    (void)flow;
  }

  assert(params_.bucket_capacity >= 1);
  assert(params_.scale_factor >= 1.0);

  // Geometric scale ladder 1 = t_0 < t_1 < ... <= d.
  for (int t = 1; t <= dimension_;) {
    scales_.push_back(t);
    const int next = static_cast<int>(
        std::ceil(static_cast<double>(t) * params_.scale_factor));
    t = std::max(t + 1, next);
  }

  util::Rng rng{params_.seed};
  substructures_.resize(scales_.size());
  const std::size_t table_size = std::size_t{1} << params_.m2;
  const auto capacity = static_cast<std::size_t>(params_.bucket_capacity);

  for (std::size_t s = 0; s < scales_.size(); ++s) {
    const int i = scales_[s];
    auto& sub = substructures_[s];
    sub.tables.resize(static_cast<std::size_t>(params_.m1));
    // Figure 6: test vectors for scale i are biased with b = 1/(2i).
    const double b = 1.0 / (2.0 * i);
    for (auto& table : sub.tables) {
      table.test_vectors.reserve(static_cast<std::size_t>(params_.m2));
      for (int k = 0; k < params_.m2; ++k) {
        table.test_vectors.push_back(BitVector::random_biased(dimension_, b, rng));
      }
      table.cells.assign(table_size * capacity, -1);
      for (std::size_t f = 0; f < training_.size(); ++f) {
        const std::uint32_t trace = trace_of(table, training_[f]);
        for (std::uint32_t z : hamming_ball(trace, params_.m2, params_.m3)) {
          // First bucket_capacity registrants win.
          auto* bucket = &table.cells[z * capacity];
          for (std::size_t slot = 0; slot < capacity; ++slot) {
            if (bucket[slot] < 0) {
              bucket[slot] = static_cast<std::int32_t>(f);
              break;
            }
          }
        }
      }
    }
  }
}

std::uint32_t KorNns::trace_of(const Table& table, const BitVector& v) const {
  std::uint32_t trace = 0;
  for (int k = 0; k < params_.m2; ++k) {
    if (v.inner_product(table.test_vectors[static_cast<std::size_t>(k)])) {
      trace |= 1u << k;
    }
  }
  return trace;
}

std::optional<NnsMatch> KorNns::search(const BitVector& query, util::Rng& rng) const {
  if (training_.empty()) return std::nullopt;
  assert(query.size() == dimension_);
  const auto capacity = static_cast<std::size_t>(params_.bucket_capacity);

  // Figure 8: binary search for the smallest scale at which the query's
  // trace lands in a populated cell -- here, a cell whose bucket holds a
  // candidate passing the verification check for that scale. The search
  // runs over the geometric scale ladder.
  int lo = 0;
  int hi = static_cast<int>(scales_.size()) - 1;
  std::optional<NnsMatch> best;
  while (lo <= hi) {
    const int mid = lo + (hi - lo) / 2;
    const int t = scales_[static_cast<std::size_t>(mid)];
    const auto& sub = substructures_[static_cast<std::size_t>(mid)];
    const auto& table =
        sub.tables[static_cast<std::size_t>(rng.below(sub.tables.size()))];
    const std::uint32_t trace = trace_of(table, query);
    const auto* bucket = &table.cells[trace * capacity];

    std::optional<NnsMatch> cell_best;
    for (std::size_t slot = 0; slot < capacity && bucket[slot] >= 0; ++slot) {
      const int distance = query.hamming_distance(
          training_[static_cast<std::size_t>(bucket[slot])]);
      if (!cell_best.has_value() || distance < cell_best->distance) {
        cell_best = NnsMatch{bucket[slot], distance};
      }
    }
    const bool hit =
        cell_best.has_value() &&
        (params_.verification_factor <= 0 ||
         cell_best->distance <= params_.verification_factor * t);
    if (hit) {
      if (!best.has_value() || cell_best->distance < best->distance) best = cell_best;
      hi = mid - 1;
    } else {
      lo = mid + 1;
    }
  }
  return best;
}

std::size_t KorNns::table_bytes() const {
  std::size_t total = 0;
  for (const auto& sub : substructures_) {
    for (const auto& table : sub.tables) {
      total += table.cells.size() * sizeof(std::int32_t);
      total += table.test_vectors.size() *
               (static_cast<std::size_t>(dimension_) + 7) / 8;
    }
  }
  return total;
}

ExactNns::ExactNns(std::span<const BitVector> training)
    : training_(training.begin(), training.end()) {}

std::optional<NnsMatch> ExactNns::search(const BitVector& query, util::Rng&) const {
  if (training_.empty()) return std::nullopt;
  NnsMatch best{0, query.hamming_distance(training_.front())};
  for (std::size_t i = 1; i < training_.size(); ++i) {
    const int d = query.hamming_distance(training_[i]);
    if (d < best.distance) best = NnsMatch{static_cast<int>(i), d};
  }
  return best;
}

}  // namespace infilter::nns

#include "nns/kor.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace infilter::nns {

namespace {

/// Read-only prefetch hint for the batch probe kernel; a no-op where the
/// builtin is unavailable.
inline void prefetch(const void* address) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(address);
#else
  (void)address;
#endif
}

}  // namespace

std::vector<std::uint32_t> hamming_ball(std::uint32_t center, int m2, int radius) {
  assert(m2 > 0 && m2 <= 24);
  assert(radius >= 1 && radius <= 4);
  std::vector<std::uint32_t> out;
  out.push_back(center);
  if (radius >= 2) {
    for (int i = 0; i < m2; ++i) out.push_back(center ^ (1u << i));
  }
  if (radius >= 3) {
    for (int i = 0; i < m2; ++i) {
      for (int j = i + 1; j < m2; ++j) {
        out.push_back(center ^ (1u << i) ^ (1u << j));
      }
    }
  }
  if (radius >= 4) {
    for (int i = 0; i < m2; ++i) {
      for (int j = i + 1; j < m2; ++j) {
        for (int k = j + 1; k < m2; ++k) {
          out.push_back(center ^ (1u << i) ^ (1u << j) ^ (1u << k));
        }
      }
    }
  }
  return out;
}

void NnsIndex::search_batch(std::span<const BitVector> queries,
                            std::span<std::optional<NnsMatch>> out,
                            std::span<util::Rng> rngs,
                            NnsBatchScratch& scratch) const {
  (void)scratch;
  assert(queries.size() == out.size() && queries.size() == rngs.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    out[i] = search(queries[i], rngs[i]);
  }
}

KorNns::KorNns(std::span<const BitVector> training, const KorParams& params)
    : params_(params), training_(training.begin(), training.end()) {
  assert(params_.m1 >= 1);
  assert(params_.m2 >= 1 && params_.m2 <= 24);
  assert(params_.m3 >= 1 && params_.m3 <= 4);
  if (training_.empty()) return;
  dimension_ = training_.front().size();
  words_per_vector_ = BitVector::words_for_bits(dimension_);
  training_words_.reserve(training_.size() * words_per_vector_);
  for (const auto& flow : training_) {
    assert(flow.size() == dimension_);
    training_words_.insert(training_words_.end(), flow.words().begin(),
                           flow.words().end());
  }

  assert(params_.bucket_capacity >= 1);
  assert(params_.scale_factor >= 1.0);

  // Geometric scale ladder 1 = t_0 < t_1 < ... <= d.
  for (int t = 1; t <= dimension_;) {
    scales_.push_back(t);
    const int next = static_cast<int>(
        std::ceil(static_cast<double>(t) * params_.scale_factor));
    t = std::max(t + 1, next);
  }

  // The registration ball is the same set of XOR offsets around every
  // trace; enumerate it once instead of once per training flow x table.
  const std::vector<std::uint32_t> ball_offsets =
      hamming_ball(0, params_.m2, params_.m3);

  util::Rng rng{params_.seed};
  substructures_.resize(scales_.size());
  const std::size_t table_size = std::size_t{1} << params_.m2;
  const auto capacity = static_cast<std::size_t>(params_.bucket_capacity);

  for (std::size_t s = 0; s < scales_.size(); ++s) {
    const int i = scales_[s];
    auto& sub = substructures_[s];
    sub.tables.resize(static_cast<std::size_t>(params_.m1));
    // Figure 6: test vectors for scale i are biased with b = 1/(2i).
    const double b = 1.0 / (2.0 * i);
    for (auto& table : sub.tables) {
      table.test_words.reserve(static_cast<std::size_t>(params_.m2) *
                               words_per_vector_);
      for (int k = 0; k < params_.m2; ++k) {
        const BitVector v = BitVector::random_biased(dimension_, b, rng);
        table.test_words.insert(table.test_words.end(), v.words().begin(),
                                v.words().end());
      }
      table.cells.assign(table_size * capacity, -1);
      for (std::size_t f = 0; f < training_.size(); ++f) {
        const std::uint32_t trace = trace_of(table, training_[f]);
        for (const std::uint32_t offset : ball_offsets) {
          // First bucket_capacity registrants win.
          auto* bucket = &table.cells[(trace ^ offset) * capacity];
          for (std::size_t slot = 0; slot < capacity; ++slot) {
            if (bucket[slot] < 0) {
              bucket[slot] = static_cast<std::int32_t>(f);
              break;
            }
          }
        }
      }
    }
  }
}

std::uint32_t KorNns::trace_of(const Table& table, const BitVector& v) const {
  std::uint32_t trace = 0;
  const std::uint64_t* test = table.test_words.data();
  const std::uint64_t* query = v.words().data();
  for (int k = 0; k < params_.m2; ++k, test += words_per_vector_) {
    if (gf2_inner_product(test, query, words_per_vector_)) {
      trace |= 1u << k;
    }
  }
  return trace;
}

std::pair<std::uint32_t, std::uint32_t> KorNns::trace_pair(
    const Table& table, const BitVector& a, const BitVector& b) const {
  std::uint32_t trace_a = 0;
  std::uint32_t trace_b = 0;
  const std::uint64_t* test = table.test_words.data();
  const std::uint64_t* words_a = a.words().data();
  const std::uint64_t* words_b = b.words().data();
  for (int k = 0; k < params_.m2; ++k, test += words_per_vector_) {
    std::uint64_t parity_a = 0;
    std::uint64_t parity_b = 0;
    for (std::size_t w = 0; w < words_per_vector_; ++w) {
      const std::uint64_t t = test[w];
      parity_a ^= t & words_a[w];
      parity_b ^= t & words_b[w];
    }
    trace_a |= static_cast<std::uint32_t>(std::popcount(parity_a) & 1) << k;
    trace_b |= static_cast<std::uint32_t>(std::popcount(parity_b) & 1) << k;
  }
  return {trace_a, trace_b};
}

std::optional<NnsMatch> KorNns::probe_cell(const Table& table, std::uint32_t trace,
                                           const BitVector& query) const {
  const auto capacity = static_cast<std::size_t>(params_.bucket_capacity);
  const auto* bucket = &table.cells[trace * capacity];
  std::optional<NnsMatch> cell_best;
  for (std::size_t slot = 0; slot < capacity && bucket[slot] >= 0; ++slot) {
    const int distance =
        query.hamming_distance(training_[static_cast<std::size_t>(bucket[slot])]);
    if (!cell_best.has_value() || distance < cell_best->distance) {
      cell_best = NnsMatch{bucket[slot], distance};
    }
  }
  return cell_best;
}

std::optional<NnsMatch> KorNns::search(const BitVector& query, util::Rng& rng) const {
  if (training_.empty()) return std::nullopt;
  assert(query.size() == dimension_);

  // Figure 8: binary search for the smallest scale at which the query's
  // trace lands in a populated cell -- here, a cell whose bucket holds a
  // candidate passing the verification check for that scale. The search
  // runs over the geometric scale ladder.
  int lo = 0;
  int hi = static_cast<int>(scales_.size()) - 1;
  std::optional<NnsMatch> best;
  while (lo <= hi) {
    const int mid = lo + (hi - lo) / 2;
    const int t = scales_[static_cast<std::size_t>(mid)];
    const auto& sub = substructures_[static_cast<std::size_t>(mid)];
    const auto& table =
        sub.tables[static_cast<std::size_t>(rng.below(sub.tables.size()))];
    const auto cell_best = probe_cell(table, trace_of(table, query), query);
    const bool hit =
        cell_best.has_value() &&
        (params_.verification_factor <= 0 ||
         cell_best->distance <= params_.verification_factor * t);
    if (hit) {
      if (!best.has_value() || cell_best->distance < best->distance) best = cell_best;
      hi = mid - 1;
    } else {
      lo = mid + 1;
    }
  }
  return best;
}

void KorNns::search_batch(std::span<const BitVector> queries,
                          std::span<std::optional<NnsMatch>> out,
                          std::span<util::Rng> rngs,
                          NnsBatchScratch& scratch) const {
  assert(queries.size() == out.size() && queries.size() == rngs.size());
  if (training_.empty()) {
    std::fill(out.begin(), out.end(), std::nullopt);
    return;
  }

  // Level-synchronous binary search: every query starts at the same scale
  // ladder, so each round groups the still-active queries by the (scale,
  // table) they probe next and runs a whole group against one table while
  // its contiguous test-vector block is cache-hot. Each query's RNG is
  // consumed once per round by that query alone -- exactly the draw
  // sequence of the per-query search() -- so results are bit-identical.
  const auto m1 = static_cast<std::uint32_t>(params_.m1);
  auto& states = scratch.states;
  states.assign(queries.size(),
                NnsBatchScratch::QueryState{
                    0, static_cast<int>(scales_.size()) - 1, -1, 0});
  auto& active = scratch.active;

  for (;;) {
    active.clear();
    for (std::uint32_t q = 0; q < queries.size(); ++q) {
      auto& state = states[q];
      if (state.lo > state.hi) continue;
      assert(queries[q].size() == dimension_);
      const int mid = state.lo + (state.hi - state.lo) / 2;
      const auto table =
          static_cast<std::uint32_t>(rngs[q].below(params_.m1));
      active.emplace_back(static_cast<std::uint32_t>(mid) * m1 + table, q);
    }
    if (active.empty()) break;
    std::sort(active.begin(), active.end());

    const auto capacity = static_cast<std::size_t>(params_.bucket_capacity);
    std::size_t at = 0;
    while (at < active.size()) {
      const std::uint32_t key = active[at].first;
      const auto mid = static_cast<std::size_t>(key / m1);
      const int t = scales_[mid];
      const Table& table = substructures_[mid].tables[key % m1];
      const std::size_t run_begin = at;
      while (at < active.size() && active[at].first == key) ++at;
      const std::size_t run = at - run_begin;
      auto& traces = scratch.traces;
      traces.resize(run);

      // Phase 1: traces for the whole run, two queries at a time so each
      // streamed test-vector word feeds two independent parity chains.
      // Prefetch every query's cell bucket as its trace lands, so the
      // bucket loads of phase 2 overlap the remaining trace computations
      // instead of stalling one probe at a time.
      std::size_t r = 0;
      for (; r + 1 < run; r += 2) {
        const auto [trace_a, trace_b] =
            trace_pair(table, queries[active[run_begin + r].second],
                       queries[active[run_begin + r + 1].second]);
        traces[r] = trace_a;
        traces[r + 1] = trace_b;
        prefetch(&table.cells[trace_a * capacity]);
        prefetch(&table.cells[trace_b * capacity]);
      }
      if (r < run) {
        traces[r] = trace_of(table, queries[active[run_begin + r].second]);
        prefetch(&table.cells[traces[r] * capacity]);
      }

      // Phase 2: the buckets are cache-hot now; prefetch the training
      // rows behind every populated slot before any distance is computed.
      for (r = 0; r < run; ++r) {
        const auto* bucket = &table.cells[traces[r] * capacity];
        for (std::size_t slot = 0; slot < capacity && bucket[slot] >= 0; ++slot) {
          prefetch(training_words_.data() +
                   static_cast<std::size_t>(bucket[slot]) * words_per_vector_);
        }
      }

      // Phase 3: bucket distances against the flattened training rows,
      // then the binary-search step. Same candidate order, strict-<
      // update, and verification check as probe_cell, so the chosen
      // match is bit-identical to the per-query path.
      for (r = 0; r < run; ++r) {
        const std::uint32_t q = active[run_begin + r].second;
        const std::uint64_t* query_words = queries[q].words().data();
        const auto* bucket = &table.cells[traces[r] * capacity];
        std::int32_t cell_index = -1;
        int cell_distance = 0;
        for (std::size_t slot = 0; slot < capacity && bucket[slot] >= 0; ++slot) {
          const std::uint64_t* row =
              training_words_.data() +
              static_cast<std::size_t>(bucket[slot]) * words_per_vector_;
          const int distance =
              hamming_distance_words(query_words, row, words_per_vector_);
          if (cell_index < 0 || distance < cell_distance) {
            cell_index = bucket[slot];
            cell_distance = distance;
          }
        }
        const bool hit =
            cell_index >= 0 &&
            (params_.verification_factor <= 0 ||
             cell_distance <= params_.verification_factor * t);
        auto& state = states[q];
        if (hit) {
          if (state.best_index < 0 || cell_distance < state.best_distance) {
            state.best_index = cell_index;
            state.best_distance = cell_distance;
          }
          state.hi = static_cast<int>(mid) - 1;
        } else {
          state.lo = static_cast<int>(mid) + 1;
        }
      }
    }
  }

  for (std::size_t q = 0; q < queries.size(); ++q) {
    out[q] = states[q].best_index >= 0
                 ? std::optional(NnsMatch{states[q].best_index,
                                          states[q].best_distance})
                 : std::nullopt;
  }
}

std::size_t KorNns::table_bytes() const {
  std::size_t total = 0;
  for (const auto& sub : substructures_) {
    for (const auto& table : sub.tables) {
      total += table.cells.size() * sizeof(std::int32_t);
      total += table.test_words.size() * sizeof(std::uint64_t);
    }
  }
  return total;
}

ExactNns::ExactNns(std::span<const BitVector> training)
    : training_(training.begin(), training.end()) {}

std::optional<NnsMatch> ExactNns::search(const BitVector& query, util::Rng&) const {
  if (training_.empty()) return std::nullopt;
  NnsMatch best{0, query.hamming_distance(training_.front())};
  for (std::size_t i = 1; i < training_.size(); ++i) {
    const int d = query.hamming_distance(training_[i]);
    if (d < best.distance) best = NnsMatch{static_cast<int>(i), d};
  }
  return best;
}

}  // namespace infilter::nns

// The Kushilevitz-Ostrovsky-Rabani approximate nearest-neighbor structure
// (Figures 6-8 of the paper; [KOR] SIAM J. Comput. 30(2)).
//
// Construction: for every candidate distance i in [1, d] a substructure S_i
// is built. S_i holds M1 tables; each table holds M2 random test vectors
// drawn with per-bit bias b = 1/(2i) and a 2^M2-entry table. A training
// flow registers in every table cell whose index is within Hamming distance
// M3 of the flow's trace (the M2 GF(2) inner products against the test
// vectors). Intuition: two points at distance <= i agree on a biased test
// with noticeably higher probability than points at distance > c*i, so the
// trace is a locality-sensitive fingerprint for distance scale i.
//
// Search: binary search over the distance scale. At scale t, compute the
// query's trace in a randomly chosen table of S_t; a hit sends the search
// toward smaller t, a miss toward larger t. The flow in the last non-empty
// cell visited is returned as the approximate nearest neighbor.
//
// Storage is struct-of-arrays: each table's M2 test vectors live in one
// contiguous word array, so computing a trace streams one cache-resident
// block instead of chasing M2 heap vectors, and search_batch() can probe a
// whole batch of queries against a table while that block stays hot.
//
// The paper's experiments use d = 720, M1 = 1, M2 = 12, M3 = 3.

#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "nns/bitvector.h"
#include "util/rng.h"

namespace infilter::nns {

struct KorParams {
  int m1 = 1;   ///< tables per substructure
  int m2 = 12;  ///< trace width (bits); table size is 2^m2
  int m3 = 3;   ///< registration ball: cells with HD(trace, z) < m3
  /// Training flows kept per table cell. Figure 6 stores one flow per
  /// cell; with thousands of training flows and m2 = 12 the 4096-cell
  /// tables saturate and a single first-registrant-wins entry is nearly
  /// random. A small bucket keeps several candidates so the search can
  /// pick the closest.
  int bucket_capacity = 4;
  /// A cell hit at scale t only counts when the best candidate is within
  /// verification_factor * t of the query, making the binary search robust
  /// to saturated cells (KOR's analysis assumes parameter regimes --
  /// m2 ~ c log n per scale -- that the paper's fixed m2 = 12 leaves;
  /// this distance check restores the "is there a neighbor within ~t?"
  /// semantics each binary-search step needs). Set <= 0 to accept any
  /// non-empty cell, which is the literal Figure 8 behaviour.
  double verification_factor = 2.0;
  /// Scales are geometrically spaced: substructures are built for
  /// t = 1, ceil(1*f), ceil(1*f^2), ... instead of every t in [1, d].
  /// Adjacent scales' bias 1/(2t) differs negligibly, so this compresses
  /// the structure ~d/log(d)-fold with no observable accuracy cost
  /// (1.0 builds every scale, the literal Figure 6).
  double scale_factor = 1.35;
  std::uint64_t seed = 1;
};

/// Result of a nearest-neighbor query: a training-set index plus the true
/// Hamming distance from the query to that training flow.
struct NnsMatch {
  int index = -1;
  int distance = 0;

  friend auto operator<=>(const NnsMatch&, const NnsMatch&) = default;
};

/// Reusable working memory for search_batch(). The indexes themselves are
/// immutable and shared across threads (core/cluster.h), so batch state
/// lives with the caller: hold one scratch per processing thread and the
/// batch path performs no per-query allocations after warm-up.
struct NnsBatchScratch {
  struct QueryState {
    int lo = 0;
    int hi = 0;
    std::int32_t best_index = -1;
    int best_distance = 0;
  };
  std::vector<QueryState> states;
  /// (group key, query id) pairs of the still-active queries, regrouped
  /// each binary-search round.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> active;
  /// Per-run trace staging area: traces are computed for a whole run
  /// first (prefetching each query's cell bucket as its trace lands),
  /// then the buckets are probed in a second pass.
  std::vector<std::uint32_t> traces;
};

/// Interface shared by the approximate structure and the exact baseline so
/// the analysis engine and the ablation bench can swap them.
class NnsIndex {
 public:
  virtual ~NnsIndex() = default;
  /// Finds an (approximate) nearest neighbor of `query`, or nullopt when
  /// the structure cannot locate any candidate (empty training set, or no
  /// table cell hit at any scale).
  [[nodiscard]] virtual std::optional<NnsMatch> search(const BitVector& query,
                                                       util::Rng& rng) const = 0;
  /// Batched search: out[i] is exactly what search(queries[i], rngs[i])
  /// returns -- every query consumes its own RNG in the same order as the
  /// per-query path, so batching is invisible to verdicts. The base
  /// implementation loops search(); KorNns overrides it with a
  /// level-synchronous probe that amortizes table loads across the batch.
  /// Preconditions: queries, rngs, and out have equal sizes.
  virtual void search_batch(std::span<const BitVector> queries,
                            std::span<std::optional<NnsMatch>> out,
                            std::span<util::Rng> rngs,
                            NnsBatchScratch& scratch) const;
  [[nodiscard]] virtual std::size_t training_size() const = 0;
};

/// The KOR structure (Figures 6 and 8).
class KorNns final : public NnsIndex {
 public:
  /// Builds the structure over `training`. All vectors must share the same
  /// dimension d >= 1; construction cost is O(d * |training| * m1 * m2)
  /// inner products.
  KorNns(std::span<const BitVector> training, const KorParams& params);

  [[nodiscard]] std::optional<NnsMatch> search(const BitVector& query,
                                               util::Rng& rng) const override;
  void search_batch(std::span<const BitVector> queries,
                    std::span<std::optional<NnsMatch>> out,
                    std::span<util::Rng> rngs,
                    NnsBatchScratch& scratch) const override;
  [[nodiscard]] std::size_t training_size() const override { return training_.size(); }

  [[nodiscard]] const BitVector& training_flow(int index) const {
    return training_[static_cast<std::size_t>(index)];
  }
  [[nodiscard]] int dimension() const { return dimension_; }
  /// Approximate resident size of the tables, for the ablation bench.
  [[nodiscard]] std::size_t table_bytes() const;

 private:
  struct Table {
    /// m2 test vectors, SoA: vector k occupies the word range
    /// [k * words_per_vector, (k + 1) * words_per_vector).
    std::vector<std::uint64_t> test_words;
    /// 2^m2 cells x bucket_capacity slots, flattened; -1 = empty slot.
    std::vector<std::int32_t> cells;
  };
  struct Substructure {
    std::vector<Table> tables;  ///< m1 tables
  };

  [[nodiscard]] std::uint32_t trace_of(const Table& table, const BitVector& v) const;
  /// Traces of two queries against the same table, interleaved so each
  /// streamed test-vector word is shared between two independent parity
  /// chains. The batch kernel's unit of work.
  [[nodiscard]] std::pair<std::uint32_t, std::uint32_t> trace_pair(
      const Table& table, const BitVector& a, const BitVector& b) const;
  /// Best bucket candidate of `table`'s cell for `trace`, plus the
  /// hit/miss verdict at scale t (used by the per-query search()).
  [[nodiscard]] std::optional<NnsMatch> probe_cell(const Table& table,
                                                   std::uint32_t trace,
                                                   const BitVector& query) const;

  KorParams params_;
  int dimension_ = 0;
  std::size_t words_per_vector_ = 0;
  std::vector<BitVector> training_;
  /// The training vectors again, flattened row-major (row f occupies
  /// words [f * words_per_vector, (f + 1) * words_per_vector)). The batch
  /// probe kernel computes bucket distances against these rows -- one
  /// indexed block instead of two pointer hops per candidate -- and
  /// prefetches them a run ahead of the distance loop.
  std::vector<std::uint64_t> training_words_;
  /// Geometrically spaced scales t (ascending) and their substructures.
  std::vector<int> scales_;
  std::vector<Substructure> substructures_;
};

/// Exact linear-scan baseline: always returns the true nearest neighbor.
class ExactNns final : public NnsIndex {
 public:
  explicit ExactNns(std::span<const BitVector> training);

  [[nodiscard]] std::optional<NnsMatch> search(const BitVector& query,
                                               util::Rng& rng) const override;
  [[nodiscard]] std::size_t training_size() const override { return training_.size(); }

 private:
  std::vector<BitVector> training_;
};

/// Enumerates all m2-bit strings within Hamming distance < radius of
/// `center` (the registration ball of Figure 6). Exposed for testing.
/// hamming_ball(c, m2, r)[j] == c ^ hamming_ball(0, m2, r)[j]: the
/// zero-centered ball is a reusable offset table (KorNns construction
/// memoizes it once per (m2, radius) instead of re-enumerating per flow).
[[nodiscard]] std::vector<std::uint32_t> hamming_ball(std::uint32_t center, int m2,
                                                      int radius);

}  // namespace infilter::nns

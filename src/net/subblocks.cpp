#include "net/subblocks.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <charconv>

namespace infilter::net {
namespace {

// Table 1: the 143 publicly-routable, allocated unicast /8 blocks as of
// 28 Oct 2004, ascending. Block numbering for sub-block notation counts
// these starting at 1 (so octet 3 is block 1 and octet 204 is block 125).
constexpr std::array<std::uint8_t, kSlash8BlockCount> kFirstOctets = {
    3,   4,   6,   8,   9,   11,  12,  13,  14,  15,  16,  17,  18,  19,  20,
    21,  22,  24,  25,  26,  28,  29,  30,  32,  33,  34,  35,  38,  40,  43,
    44,  45,  46,  47,  48,  51,  52,  53,  54,  55,  56,  57,  58,  59,  60,
    61,  62,  63,  64,  65,  66,  67,  68,  69,  70,  71,  72,  80,  81,  82,
    83,  84,  85,  86,  87,  88,  128, 129, 130, 131, 132, 133, 134, 135, 136,
    137, 138, 139, 140, 141, 142, 143, 144, 145, 146, 147, 148, 149, 150, 151,
    152, 153, 154, 155, 156, 157, 158, 159, 160, 161, 162, 163, 164, 165, 166,
    167, 168, 169, 170, 171, 172, 188, 191, 192, 193, 194, 195, 196, 198, 199,
    200, 201, 202, 203, 204, 205, 206, 207, 208, 209, 210, 211, 212, 213, 214,
    215, 216, 217, 218, 219, 220, 221, 222};

}  // namespace

std::span<const std::uint8_t> slash8_first_octets() { return kFirstOctets; }

SubBlock::SubBlock(int index) : index_(index) {
  assert(index >= 0 && index < kTotalSubBlocks);
}

std::optional<SubBlock> SubBlock::parse(std::string_view notation) {
  if (notation.size() < 2) return std::nullopt;
  const char letter = notation.back();
  if (letter < 'a' || letter > 'h') return std::nullopt;
  const auto digits = notation.substr(0, notation.size() - 1);
  int block = 0;
  auto [ptr, ec] = std::from_chars(digits.data(), digits.data() + digits.size(), block);
  if (ec != std::errc{} || ptr != digits.data() + digits.size()) return std::nullopt;
  if (block < 1 || block > kSlash8BlockCount) return std::nullopt;
  return SubBlock{(block - 1) * kSubBlocksPerSlash8 + (letter - 'a')};
}

std::optional<SubBlock> SubBlock::containing(IPv4Address address) {
  const auto first = static_cast<std::uint8_t>(address.octet(0));
  const auto it = std::lower_bound(kFirstOctets.begin(), kFirstOctets.end(), first);
  if (it == kFirstOctets.end() || *it != first) return std::nullopt;
  const int block = static_cast<int>(it - kFirstOctets.begin());
  // The /11 letter is the top 3 bits of the second octet.
  const int letter = address.octet(1) >> 5;
  return SubBlock{block * kSubBlocksPerSlash8 + letter};
}

Prefix SubBlock::prefix() const {
  const std::uint8_t first = kFirstOctets[static_cast<std::size_t>(index_ / kSubBlocksPerSlash8)];
  const auto second = static_cast<std::uint8_t>(letter_index() << 5);
  return Prefix{IPv4Address{first, second, 0, 0}, 11};
}

std::string SubBlock::notation() const {
  return std::to_string(block_number()) + static_cast<char>('a' + letter_index());
}

std::optional<SubBlockRange> SubBlockRange::parse(std::string_view text) {
  const auto dash = text.find('-');
  if (dash == std::string_view::npos) {
    auto single = SubBlock::parse(text);
    if (!single) return std::nullopt;
    return SubBlockRange{*single, *single};
  }
  auto first = SubBlock::parse(text.substr(0, dash));
  auto last = SubBlock::parse(text.substr(dash + 1));
  if (!first || !last || last->index() < first->index()) return std::nullopt;
  return SubBlockRange{*first, *last};
}

std::string SubBlockRange::notation() const {
  if (first == last) return first.notation();
  return first.notation() + "-" + last.notation();
}

std::vector<SubBlock> SubBlockRange::expand() const {
  std::vector<SubBlock> out;
  out.reserve(static_cast<std::size_t>(size()));
  for (int i = first.index(); i <= last.index(); ++i) out.emplace_back(i);
  return out;
}

}  // namespace infilter::net

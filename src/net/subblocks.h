// The address sub-block scheme of Table 1 (Section 6.2 of the paper).
//
// The paper takes the 143 publicly-routable, allocated, unicast /8 blocks
// (per the IANA IPv4 address-space registry as of 28 Oct 2004), splits each
// into eight /11 sub-blocks, and uses the first 1000 of the resulting 1144
// sub-blocks for its experiments. Sub-blocks are named "<block><letter>":
// block numbers count the /8s in ascending order starting at 1, and the
// letter a..h selects the /11 within the /8 ("1a" = 3.0/11, "2c" = 4.64/11,
// "125h" = 204.224/11).

#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "net/ipv4.h"

namespace infilter::net {

/// Number of /8 blocks in Table 1.
inline constexpr int kSlash8BlockCount = 143;
/// Sub-blocks per /8 (a /8 holds eight /11s).
inline constexpr int kSubBlocksPerSlash8 = 8;
/// Total sub-blocks (143 * 8).
inline constexpr int kTotalSubBlocks = kSlash8BlockCount * kSubBlocksPerSlash8;
/// Sub-blocks actually used in the paper's experiments (blocks 1..125,
/// i.e. 3/8 through 204/8).
inline constexpr int kUsedSubBlocks = 1000;

/// The first octets of the 143 publicly-routable /8 blocks of Table 1, in
/// ascending order (the order that defines block numbering).
[[nodiscard]] std::span<const std::uint8_t> slash8_first_octets();

/// One of the 1144 /11 sub-blocks, identified by a dense index in
/// [0, kTotalSubBlocks). Index 0 is "1a", index 7 is "1h", index 8 is "2a".
class SubBlock {
 public:
  SubBlock() = default;

  /// Constructs from a dense index. Precondition: 0 <= index < kTotalSubBlocks.
  explicit SubBlock(int index);

  /// Constructs from the paper's notation, e.g. "5a" or "125h".
  static std::optional<SubBlock> parse(std::string_view notation);

  /// The sub-block that contains `address`, if any Table 1 block covers it.
  static std::optional<SubBlock> containing(IPv4Address address);

  [[nodiscard]] int index() const { return index_; }
  /// 1-based /8 block number (the numeric part of the notation).
  [[nodiscard]] int block_number() const { return index_ / kSubBlocksPerSlash8 + 1; }
  /// 0-based letter position within the /8 (0 = 'a' .. 7 = 'h').
  [[nodiscard]] int letter_index() const { return index_ % kSubBlocksPerSlash8; }

  /// The /11 prefix this sub-block denotes.
  [[nodiscard]] Prefix prefix() const;

  /// Paper notation, e.g. "13d".
  [[nodiscard]] std::string notation() const;

  friend auto operator<=>(SubBlock, SubBlock) = default;

 private:
  int index_ = 0;
};

/// An inclusive, contiguous range of sub-blocks in dense-index order, the
/// unit in which the paper allocates addresses ("1a-13b", Table 2/3).
struct SubBlockRange {
  SubBlock first;
  SubBlock last;

  /// Parses "1a-13d" (or a single sub-block "13c", denoting a 1-wide range).
  static std::optional<SubBlockRange> parse(std::string_view text);

  [[nodiscard]] int size() const { return last.index() - first.index() + 1; }
  [[nodiscard]] bool contains(SubBlock b) const {
    return first.index() <= b.index() && b.index() <= last.index();
  }
  [[nodiscard]] std::string notation() const;

  /// All member sub-blocks in order.
  [[nodiscard]] std::vector<SubBlock> expand() const;

  friend auto operator<=>(const SubBlockRange&, const SubBlockRange&) = default;
};

}  // namespace infilter::net

#include "net/ipv4.h"

#include <charconv>

namespace infilter::net {
namespace {

// Parses one decimal octet from the front of `text`, advancing it.
// Rejects values > 255 and empty digit runs.
std::optional<std::uint8_t> parse_octet(std::string_view& text) {
  unsigned value = 0;
  const char* begin = text.data();
  const char* end = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc{} || ptr == begin || value > 255) return std::nullopt;
  text.remove_prefix(static_cast<std::size_t>(ptr - begin));
  return static_cast<std::uint8_t>(value);
}

bool consume(std::string_view& text, char c) {
  if (text.empty() || text.front() != c) return false;
  text.remove_prefix(1);
  return true;
}

}  // namespace

std::optional<IPv4Address> IPv4Address::parse(std::string_view text) {
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    if (i > 0 && !consume(text, '.')) return std::nullopt;
    auto octet = parse_octet(text);
    if (!octet) return std::nullopt;
    value = (value << 8) | *octet;
  }
  if (!text.empty()) return std::nullopt;
  return IPv4Address{value};
}

std::string IPv4Address::to_string() const {
  std::string out;
  out.reserve(15);
  for (int i = 0; i < 4; ++i) {
    if (i > 0) out.push_back('.');
    out += std::to_string(octet(i));
  }
  return out;
}

std::optional<Prefix> Prefix::parse(std::string_view text) {
  const auto slash = text.find('/');
  if (slash == std::string_view::npos) {
    auto address = IPv4Address::parse(text);
    if (!address) return std::nullopt;
    return Prefix{*address, 32};
  }
  auto address = IPv4Address::parse(text.substr(0, slash));
  if (!address) return std::nullopt;
  auto rest = text.substr(slash + 1);
  int length = 0;
  auto [ptr, ec] = std::from_chars(rest.data(), rest.data() + rest.size(), length);
  if (ec != std::errc{} || ptr != rest.data() + rest.size() || length < 0 || length > 32) {
    return std::nullopt;
  }
  return Prefix{*address, length};
}

std::string Prefix::to_string() const {
  return address_.to_string() + "/" + std::to_string(length_);
}

}  // namespace infilter::net

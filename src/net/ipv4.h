// IPv4 value types used throughout the InFilter reproduction.
//
// All types here are small, regular value types (C++ Core Guidelines C.10,
// C.61): cheap to copy, totally ordered, hashable, and formattable. Parsing
// returns std::optional rather than throwing -- malformed input is an
// expected condition at system boundaries (wire decoding, config files).

#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

namespace infilter::net {

/// An IPv4 address held in host byte order.
///
/// The numeric value is exposed so that range/interval algorithms (EIA sets,
/// sub-block allocation) can treat addresses as integers.
class IPv4Address {
 public:
  constexpr IPv4Address() = default;
  constexpr explicit IPv4Address(std::uint32_t host_order) : value_(host_order) {}
  constexpr IPv4Address(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d)
      : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
               (std::uint32_t{c} << 8) | std::uint32_t{d}) {}

  /// Parses dotted-quad notation ("192.0.2.1"). Returns nullopt on any
  /// syntax error (missing octets, out-of-range values, trailing junk).
  static std::optional<IPv4Address> parse(std::string_view text);

  [[nodiscard]] constexpr std::uint32_t value() const { return value_; }
  [[nodiscard]] constexpr std::uint8_t octet(int i) const {
    return static_cast<std::uint8_t>(value_ >> (8 * (3 - i)));
  }

  /// Dotted-quad representation.
  [[nodiscard]] std::string to_string() const;

  friend constexpr auto operator<=>(IPv4Address, IPv4Address) = default;

 private:
  std::uint32_t value_ = 0;
};

/// A CIDR prefix: an address plus a mask length in [0, 32].
///
/// Invariant: the host bits of `address` below the mask are zero. The
/// constructor canonicalizes (truncates host bits) rather than rejecting,
/// matching the common router behaviour for configured prefixes.
class Prefix {
 public:
  constexpr Prefix() = default;
  constexpr Prefix(IPv4Address address, int length)
      : address_(IPv4Address{length == 0 ? 0u : (address.value() & mask_bits(length))}),
        length_(length) {}

  /// Parses "a.b.c.d/len". A bare address parses as a /32.
  static std::optional<Prefix> parse(std::string_view text);

  [[nodiscard]] constexpr IPv4Address address() const { return address_; }
  [[nodiscard]] constexpr int length() const { return length_; }

  /// First and last addresses covered by this prefix (inclusive).
  [[nodiscard]] constexpr IPv4Address first() const { return address_; }
  [[nodiscard]] constexpr IPv4Address last() const {
    return IPv4Address{address_.value() | ~mask_bits(length_)};
  }

  [[nodiscard]] constexpr bool contains(IPv4Address a) const {
    return length_ == 0 || (a.value() & mask_bits(length_)) == address_.value();
  }
  [[nodiscard]] constexpr bool contains(const Prefix& other) const {
    return length_ <= other.length_ && contains(other.address_);
  }

  /// Number of addresses covered (2^(32-length)), as 64-bit to hold /0.
  [[nodiscard]] constexpr std::uint64_t size() const {
    return std::uint64_t{1} << (32 - length_);
  }

  [[nodiscard]] std::string to_string() const;

  friend constexpr auto operator<=>(const Prefix&, const Prefix&) = default;

  /// Bit mask with `length` leading ones; length 0 maps to 0.
  static constexpr std::uint32_t mask_bits(int length) {
    return length == 0 ? 0u : ~std::uint32_t{0} << (32 - length);
  }

 private:
  IPv4Address address_;
  int length_ = 0;
};

/// Truncates an address to its /24 subnet. Section 3.1 of the paper relaxes
/// raw last-hop IP comparison to /24 comparison to absorb load-shared links.
[[nodiscard]] constexpr Prefix to_slash24(IPv4Address a) { return Prefix{a, 24}; }

}  // namespace infilter::net

template <>
struct std::hash<infilter::net::IPv4Address> {
  std::size_t operator()(infilter::net::IPv4Address a) const noexcept {
    return std::hash<std::uint32_t>{}(a.value());
  }
};

template <>
struct std::hash<infilter::net::Prefix> {
  std::size_t operator()(const infilter::net::Prefix& p) const noexcept {
    return std::hash<std::uint64_t>{}((std::uint64_t{p.address().value()} << 6) ^
                                      static_cast<std::uint64_t>(p.length()));
  }
};

// Lifecycle of learned detection state.
//
// The paper learns EIA sets once and assumes they stay valid; a deployed
// system must survive weeks of BGP/IGP churn, exporter restarts, and
// traffic shifts without detection quality decaying. This module is the
// shared vocabulary for aging that state: a conntrack-style entry state
// machine (learning -> established -> stale -> expired, with
// relearn-on-reobservation) and the idle-expiry clock predicate both the
// EIA table (core/eia.h) and the hop-count table (hopcount/hopcount.h)
// evaluate against the flow-carried virtual time.
//
// Determinism contract: expiry is always decided lazily, per key, against
// the `now` carried by the flow being processed -- never against a global
// wall clock or a sweep schedule tied to batch boundaries. Whether a key
// is expired therefore depends only on that key's own observation history
// (its last_seen) and the current flow's timestamp, both of which are
// shard-local under the runtime's source-/24 shard hash. That keeps
// verdicts bit-identical to a serial replay at every shard x producer
// count, the same contract the runtime's reorder stage upholds.
// `EiaTable::age_sweep` may additionally reclaim memory eagerly; it uses
// the identical predicate, so a sweep at time T only removes entries every
// later lookup would have rejected anyway -- verdict-neutral by
// construction.

#pragma once

#include <cstdint>

#include "util/time.h"

namespace infilter::lifecycle {

/// Knobs for learned-entry aging. Default-constructed = aging off, which
/// is required to be bit-identical to the pre-lifecycle pipeline.
struct LifecycleConfig {
  /// Idle time after which a learned entry expires (membership removed,
  /// relearnable). 0 disables aging entirely.
  util::DurationMs max_idle_ms = 0;
  /// Idle time after which an entry is merely *stale* (still accepted,
  /// reported for observability). 0 derives max_idle_ms / 2.
  util::DurationMs stale_after_ms = 0;

  [[nodiscard]] bool enabled() const { return max_idle_ms > 0; }
  [[nodiscard]] util::DurationMs stale_threshold() const {
    return stale_after_ms > 0 ? stale_after_ms : max_idle_ms / 2;
  }

  friend bool operator==(const LifecycleConfig&, const LifecycleConfig&) = default;
};

/// Conntrack-style entry states. `kLearning` = a pending learn counter
/// exists but the key is not yet a member; `kStale` entries are still
/// accepted (the grace window between freshness and expiry); `kExpired`
/// entries have had their membership removed and relearn through the
/// normal mismatch-observation path.
enum class EntryState : std::uint8_t {
  kLearning,
  kEstablished,
  kStale,
  kExpired,
};

[[nodiscard]] const char* state_name(EntryState state);

/// The one idle-expiry predicate. `now` earlier than `last_seen` (exporter
/// restart rebasing uptime, reordered batch tails) never expires.
[[nodiscard]] inline bool idle_expired(util::TimeMs last_seen, util::TimeMs now,
                                       util::DurationMs max_idle) {
  return now > last_seen && now - last_seen > max_idle;
}

/// State of a live (non-tombstone) entry under `config` at `now`.
[[nodiscard]] EntryState idle_state(util::TimeMs last_seen, util::TimeMs now,
                                    const LifecycleConfig& config);

/// Per-entry age metadata kept for auto-learned keys (preloads are exempt:
/// operator-provisioned ranges never age). An `expired` entry is a
/// tombstone: membership is gone, but the marker lets a later relearn be
/// counted as such.
struct EntryAge {
  util::TimeMs learned_at = 0;
  util::TimeMs last_seen = 0;
  bool expired = false;

  friend bool operator==(const EntryAge&, const EntryAge&) = default;
};

/// Lifetime counters of one aging domain (observability surface).
struct LifecycleStats {
  std::uint64_t entries_expired = 0;    ///< memberships removed by idle expiry
  std::uint64_t entries_relearned = 0;  ///< expired keys learned again
  std::uint64_t entries_refreshed = 0;  ///< last_seen advances on lookup hits
  std::uint64_t sweeps = 0;             ///< explicit age_sweep() passes
};

}  // namespace infilter::lifecycle

#include "lifecycle/migrate.h"

#include <algorithm>
#include <cassert>
#include <set>

#include "util/rng.h"

namespace infilter::lifecycle {

namespace {

using core::EiaBackendType;

/// Bank owner under the divisor contract: every key of bank b lands on
/// shard b % shards whenever shards divides kBloomBanks (both are powers
/// of two in practice; see the sharding contract in core/eia_backend.h).
std::size_t bank_owner(std::size_t bank, std::size_t shards) {
  return bank % shards;
}

const core::BankedBloomBase* as_banked(const core::EiaBackend& backend) {
  return dynamic_cast<const core::BankedBloomBase*>(&backend);
}

}  // namespace

std::size_t shard_of_key24(std::uint32_t key24, std::size_t shards) {
  return static_cast<std::size_t>(util::SplitMix64{key24}.next() % shards);
}

std::size_t EngineHarvest::entry_count() const {
  std::size_t membership = 0;
  if (banked) {
    membership = static_cast<std::size_t>(filter_inserts);
  } else {
    for (const auto& [ingress, cidrs] : exact_cidrs) membership += cidrs.size();
  }
  return membership + ages.size() + pending.size() + hopcount.size();
}

EngineHarvest harvest_engines(
    const std::vector<const core::InFilterEngine*>& engines) {
  assert(!engines.empty());
  EngineHarvest harvest;
  const std::size_t old_shards = engines.size();

  std::set<core::IngressId> ingress_union;
  for (const auto* engine : engines) {
    for (const core::IngressId ingress : engine->eia().ingresses()) {
      ingress_union.insert(ingress);
    }
  }
  harvest.ingresses.assign(ingress_union.begin(), ingress_union.end());

  const core::EiaBackend& backend0 = engines[0]->eia().backend();
  if (backend0.type() == EiaBackendType::kExact) {
    for (const core::IngressId ingress : harvest.ingresses) {
      core::EiaSet merged;
      for (const auto* engine : engines) {
        const core::EiaSet* set = engine->eia().set_for(ingress);
        if (set == nullptr) continue;
        for (const net::Prefix& prefix : set->to_cidrs()) merged.add(prefix);
      }
      harvest.exact_cidrs.emplace_back(ingress, merged.to_cidrs());
    }
  } else {
    harvest.banked = true;
    const auto* banked0 = as_banked(backend0);
    assert(banked0 != nullptr);
    const std::size_t segment = banked0->segment_positions();
    const auto subfilters =
        static_cast<std::size_t>(banked0->config().subfilters);
    const bool exact_banks = core::kBloomBanks % old_shards == 0;

    std::vector<const core::BankedBloomBase*> banked;
    banked.reserve(old_shards);
    for (const auto* engine : engines) {
      banked.push_back(as_banked(engine->eia().backend()));
      harvest.filter_inserts += banked.back()->insert_count();
      harvest.filter_rotations += banked.back()->rotations();
    }

    // Per-bank rotation cursors from each bank's owner shard.
    harvest.bank_current.resize(core::kBloomBanks);
    harvest.bank_inserts.resize(core::kBloomBanks);
    for (std::size_t b = 0; b < core::kBloomBanks; ++b) {
      const auto* owner = banked[bank_owner(b, old_shards)];
      harvest.bank_current[b] = owner->bank_current()[b];
      harvest.bank_inserts[b] = owner->bank_inserts()[b];
    }

    if (backend0.type() == EiaBackendType::kBloom) {
      std::vector<const std::vector<std::vector<std::uint64_t>>*> words;
      for (const auto* engine : engines) {
        words.push_back(&static_cast<const core::BloomEiaBackend&>(
                             engine->eia().backend())
                             .word_arrays());
      }
      harvest.bloom_words.resize(words[0]->size());
      const std::size_t words_per_bank = subfilters * segment / 64;
      for (std::size_t f = 0; f < words[0]->size(); ++f) {
        const std::size_t n = (*words[0])[f].size();
        harvest.bloom_words[f].assign(n, 0);
        for (std::size_t w = 0; w < n; ++w) {
          if (exact_banks) {
            const std::size_t bank = w / words_per_bank;
            harvest.bloom_words[f][w] =
                (*words[bank_owner(bank, old_shards)])[f][w];
          } else {
            // Off the divisor contract: banks mix shards, so merge
            // conservatively (set-bit union; false positives only).
            for (std::size_t s = 0; s < old_shards; ++s) {
              harvest.bloom_words[f][w] |= (*words[s])[f][w];
            }
          }
        }
      }
    } else {
      std::vector<const std::vector<std::vector<std::uint8_t>>*> counters;
      for (const auto* engine : engines) {
        counters.push_back(&static_cast<const core::CountingBloomEiaBackend&>(
                                engine->eia().backend())
                                .counter_arrays());
      }
      harvest.cbloom_counters.resize(counters[0]->size());
      const std::size_t bytes_per_bank = subfilters * segment;
      for (std::size_t f = 0; f < counters[0]->size(); ++f) {
        const std::size_t n = (*counters[0])[f].size();
        harvest.cbloom_counters[f].assign(n, 0);
        for (std::size_t i = 0; i < n; ++i) {
          if (exact_banks) {
            const std::size_t bank = i / bytes_per_bank;
            harvest.cbloom_counters[f][i] =
                (*counters[bank_owner(bank, old_shards)])[f][i];
          } else {
            std::uint8_t best = 0;
            for (std::size_t s = 0; s < old_shards; ++s) {
              best = std::max(best, (*counters[s])[f][i]);
            }
            harvest.cbloom_counters[f][i] = best;
          }
        }
      }
    }
  }

  // Age metadata and pending counters live only on their owner shard, so
  // a plain union across engines is the serial map.
  for (const auto* engine : engines) {
    const auto ages = engine->eia().aged_entries();
    harvest.ages.insert(harvest.ages.end(), ages.begin(), ages.end());
    const auto pending = engine->eia().pending_entries();
    harvest.pending.insert(harvest.pending.end(), pending.begin(),
                           pending.end());
  }
  std::sort(harvest.ages.begin(), harvest.ages.end(),
            [](const auto& a, const auto& b) {
              return a.ingress != b.ingress ? a.ingress < b.ingress
                                            : a.key24 < b.key24;
            });
  std::sort(harvest.pending.begin(), harvest.pending.end());

  // Hop-count entries: keep each key's evolved copy from its owner (a
  // replicated preload is identical everywhere until its owner touches it).
  for (std::size_t s = 0; s < old_shards; ++s) {
    for (const auto& exported : engines[s]->hopcount_table().entries()) {
      const std::uint32_t key24 = exported.slash24.address().value();
      if (old_shards == 1 || shard_of_key24(key24, old_shards) == s) {
        harvest.hopcount.push_back(exported);
      }
    }
  }
  std::sort(harvest.hopcount.begin(), harvest.hopcount.end(),
            [](const auto& a, const auto& b) {
              if (a.ingress != b.ingress) return a.ingress < b.ingress;
              return a.slash24.address().value() < b.slash24.address().value();
            });

  return harvest;
}

void install_engine_state(const EngineHarvest& harvest,
                          core::InFilterEngine& engine, std::size_t shard,
                          std::size_t new_shards) {
  core::EiaTable& table = engine.eia_mut();
  for (const core::IngressId ingress : harvest.ingresses) {
    table.declare_ingress(ingress);
  }

  if (!harvest.banked) {
    for (const auto& [ingress, cidrs] : harvest.exact_cidrs) {
      for (const net::Prefix& prefix : cidrs) table.add_expected(ingress, prefix);
    }
  } else {
    core::EiaBackend& backend = table.backend_mut();
    if (backend.type() == EiaBackendType::kBloom) {
      auto& bloom = static_cast<core::BloomEiaBackend&>(backend);
      assert(bloom.word_arrays().size() == harvest.bloom_words.size());
      bloom.word_arrays() = harvest.bloom_words;
      bloom.restore_bank_state(harvest.bank_current, harvest.bank_inserts,
                               harvest.filter_inserts,
                               harvest.filter_rotations);
    } else {
      auto& cbloom = static_cast<core::CountingBloomEiaBackend&>(backend);
      assert(cbloom.counter_arrays().size() == harvest.cbloom_counters.size());
      cbloom.counter_arrays() = harvest.cbloom_counters;
      cbloom.restore_bank_state(harvest.bank_current, harvest.bank_inserts,
                                harvest.filter_inserts,
                                harvest.filter_rotations);
    }
  }

  for (const auto& aged : harvest.ages) {
    if (new_shards == 1 || shard_of_key24(aged.key24, new_shards) == shard) {
      table.restore_age(aged.ingress, aged.key24, aged.age);
    }
  }
  for (const auto& [key, count] : harvest.pending) {
    const auto key24 = static_cast<std::uint32_t>(key & 0xFFFFFFFFu);
    if (new_shards == 1 || shard_of_key24(key24, new_shards) == shard) {
      table.restore_pending(key, count);
    }
  }

  if (!harvest.hopcount.empty()) {
    hopcount::HopCountTable hc{engine.config().hopcount};
    for (const auto& exported : harvest.hopcount) {
      hc.restore(exported.ingress, exported.slash24.address(), exported.entry);
    }
    engine.install_hopcount(std::move(hc));
  }
}

}  // namespace infilter::lifecycle

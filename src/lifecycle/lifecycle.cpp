#include "lifecycle/lifecycle.h"

namespace infilter::lifecycle {

const char* state_name(EntryState state) {
  switch (state) {
    case EntryState::kLearning:
      return "learning";
    case EntryState::kEstablished:
      return "established";
    case EntryState::kStale:
      return "stale";
    case EntryState::kExpired:
      return "expired";
  }
  return "unknown";
}

EntryState idle_state(util::TimeMs last_seen, util::TimeMs now,
                      const LifecycleConfig& config) {
  if (idle_expired(last_seen, now, config.max_idle_ms)) return EntryState::kExpired;
  if (idle_expired(last_seen, now, config.stale_threshold())) return EntryState::kStale;
  return EntryState::kEstablished;
}

}  // namespace infilter::lifecycle

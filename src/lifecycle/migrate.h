// Shard-engine state migration for ShardedRuntime::resize.
//
// A resize quiesces the pool (two-phase flush, workers joined), harvests
// the per-shard engines' learned state into one serial-equivalent image,
// and installs that image into a freshly built shard map. The invariant
// throughout: after installation, every key's state on its new owner
// shard is exactly the state a serial engine that processed the same
// flow sequence would hold. That extends the runtime's bit-identical
// serial-replay contract across the resize boundary.
//
// Per-component protocol (owner = the shard the source-/24 hash maps to):
//
//   * Exact EIA membership  -- union of every old shard's interval sets,
//     replicated to every new engine. Learned /24s exist only on their
//     old owner and preloads are replicated identically everywhere, so
//     the union IS the serial set; entries for keys a new shard does not
//     own are dead weight it never looks up (the same argument
//     install_hopcount documents for hop-count preloads).
//   * Bloom / counting-Bloom -- the bit space is bank-segmented by the
//     same /24 hash (core/eia_backend.h), so each bank's segment -- and
//     its rotation cursor -- is taken from the bank's old owner shard,
//     reassembling the serial array exactly; the array is replicated to
//     every new engine. For shard counts that do not divide kBloomBanks
//     (outside the equivalence contract) the fallback merges
//     conservatively (bitwise OR / counter max): never a false negative.
//   * EIA age metadata + pending learn counters -- harvested from their
//     owner (each lives only there) and installed filtered by the NEW
//     owner hash: pending banks must hold exactly the serial contents,
//     because bank-full decay depends on bank occupancy.
//   * Hop-count ranges -- entries filtered by old owner on harvest (an
//     install_hopcount preload is replicated, and only the owner's copy
//     has evolved), then replicated to every new engine like a preload.
//   * Scan buffers -- not handled here: the shared scan stage owns them
//     on the persistent scan engine, which survives the resize untouched.

#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/engine.h"

namespace infilter::lifecycle {

/// The runtime's shard hash (runtime.cpp shard_of), exposed so migration
/// filters with the exact same mapping. `key24` is the /24 base address.
[[nodiscard]] std::size_t shard_of_key24(std::uint32_t key24, std::size_t shards);

/// One serial-equivalent image of a quiescent shard pool's learned state.
struct EngineHarvest {
  std::vector<core::IngressId> ingresses;  ///< declared, ascending

  /// Exact backend: union membership as minimal CIDRs per ingress.
  std::vector<std::pair<core::IngressId, std::vector<net::Prefix>>> exact_cidrs;

  /// Probabilistic backends: the reassembled serial filter arrays plus
  /// per-bank rotation state. `banked` selects this representation.
  bool banked = false;
  std::vector<std::vector<std::uint64_t>> bloom_words;
  std::vector<std::vector<std::uint8_t>> cbloom_counters;
  std::vector<std::uint8_t> bank_current;
  std::vector<std::uint64_t> bank_inserts;
  std::uint64_t filter_inserts = 0;    ///< summed across replicas (see note)
  std::uint64_t filter_rotations = 0;  ///< summed across replicas

  std::vector<core::EiaTable::AgedEntry> ages;
  std::vector<std::pair<std::uint64_t, int>> pending;
  std::vector<hopcount::HopCountTable::ExportedEntry> hopcount;

  /// Distinct state records carried (infilter_lifecycle_migrated_entries).
  [[nodiscard]] std::size_t entry_count() const;
};

/// Harvests the serial-equivalent state image from a quiescent pool.
/// `engines[s]` must be old shard s's engine; all share one EngineConfig.
[[nodiscard]] EngineHarvest harvest_engines(
    const std::vector<const core::InFilterEngine*>& engines);

/// Installs the image into new shard `shard` of `new_shards`. Membership
/// and hop-count ranges are replicated; age metadata and pending counters
/// are filtered to the keys this shard owns.
void install_engine_state(const EngineHarvest& harvest,
                          core::InFilterEngine& engine, std::size_t shard,
                          std::size_t new_shards);

}  // namespace infilter::lifecycle

#include "netflow/flow_cache.h"

#include <cassert>

namespace infilter::netflow {

FlowCache::FlowCache(FlowCacheConfig config) : config_(config) {
  assert(config_.max_entries > 0);
  assert(config_.full_watermark > 0.0 && config_.full_watermark <= 1.0);
}

void FlowCache::observe(const PacketObservation& packet) {
  ++stats_.packets;
  auto [it, inserted] = entries_.try_emplace(packet.key);
  Entry& entry = it->second;
  if (inserted) {
    ++stats_.flows_created;
    evict_if_full();
    // evict_if_full never removes the brand-new entry: it was just touched.
    entry.record.src_ip = packet.key.src_ip;
    entry.record.dst_ip = packet.key.dst_ip;
    entry.record.proto = packet.key.proto;
    entry.record.src_port = packet.key.src_port;
    entry.record.dst_port = packet.key.dst_port;
    entry.record.tos = packet.key.tos;
    entry.record.input_if = packet.key.input_if;
    entry.record.src_as = packet.src_as;
    entry.record.dst_as = packet.dst_as;
    entry.record.next_hop = packet.next_hop;
    entry.record.first = static_cast<std::uint32_t>(packet.time);
    entry.first_seen = packet.time;
    lru_.push_front(packet.key);
    entry.lru_position = lru_.begin();
  } else {
    lru_.splice(lru_.begin(), lru_, entry.lru_position);
  }

  entry.record.packets += 1;
  entry.record.bytes += packet.bytes;
  entry.record.last = static_cast<std::uint32_t>(packet.time);
  entry.record.tcp_flags |= packet.tcp_flags;
  entry.last_seen = packet.time;

  const bool tcp_terminated =
      packet.key.proto == static_cast<std::uint8_t>(IpProto::kTcp) &&
      (packet.tcp_flags & (tcpflags::kFin | tcpflags::kRst)) != 0;
  const bool over_age = packet.time - entry.first_seen >= config_.active_timeout;
  if (tcp_terminated || over_age) {
    expire(it, tcp_terminated ? ExpiryCause::kTcpClose : ExpiryCause::kActive);
  }
}

void FlowCache::advance(util::TimeMs now) {
  // Walk from the least-recently-active end; stop at the first entry that
  // is still fresh (everything after it in LRU order is fresher).
  while (!lru_.empty()) {
    auto it = entries_.find(lru_.back());
    assert(it != entries_.end());
    const Entry& entry = it->second;
    const bool idle = now - entry.last_seen >= config_.idle_timeout;
    if (idle) {
      expire(it, ExpiryCause::kIdle);
      continue;
    }
    break;
  }
  // Active-timeout entries can be anywhere in LRU order (a chatty long
  // flow stays at the front), so scan the map for them. This sweep is
  // periodic and the cache is bounded, so the linear pass is acceptable.
  for (auto it = entries_.begin(); it != entries_.end();) {
    auto next = std::next(it);
    if (now - it->second.first_seen >= config_.active_timeout) {
      expire(it, ExpiryCause::kActive);
    }
    it = next;
  }
}

std::vector<V5Record> FlowCache::drain_expired() {
  std::vector<V5Record> out;
  out.swap(expired_);
  return out;
}

std::vector<V5Record> FlowCache::flush(util::TimeMs) {
  while (!entries_.empty()) expire(entries_.begin(), ExpiryCause::kFlush);
  return drain_expired();
}

void FlowCache::expire(std::unordered_map<FlowKey, Entry>::iterator it,
                       ExpiryCause cause) {
  switch (cause) {
    case ExpiryCause::kIdle: ++stats_.expired_idle; break;
    case ExpiryCause::kActive: ++stats_.expired_active; break;
    case ExpiryCause::kTcpClose: ++stats_.expired_tcp_close; break;
    case ExpiryCause::kFull: ++stats_.evicted_full; break;
    case ExpiryCause::kFlush: ++stats_.flushed; break;
  }
  expired_.push_back(it->second.record);
  lru_.erase(it->second.lru_position);
  entries_.erase(it);
}

void FlowCache::evict_if_full() {
  const auto watermark = static_cast<std::size_t>(
      config_.full_watermark * static_cast<double>(config_.max_entries));
  while (entries_.size() > watermark && lru_.size() > 1) {
    auto it = entries_.find(lru_.back());
    assert(it != entries_.end());
    expire(it, ExpiryCause::kFull);
  }
}

}  // namespace infilter::netflow

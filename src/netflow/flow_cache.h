// Router-side NetFlow flow cache.
//
// Models the accounting a NetFlow-enabled border router performs
// (Section 5.1.1): packets are aggregated into flow entries keyed by the
// seven fields of Figure 10, and an entry expires into an export record
// when any of the paper's four conditions holds:
//
//   1. the flow has been idle longer than the idle timeout,
//   2. the flow has been active longer than the active timeout,
//   3. the cache is close to full (oldest entries are evicted), or
//   4. a TCP connection terminates (FIN or RST observed).
//
// Only ingress traffic is accounted -- callers feed the cache packets seen
// on the interfaces facing peer ASs, matching the paper's deployment.

#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "netflow/v5.h"
#include "util/time.h"

namespace infilter::netflow {

/// One packet as seen by the metering process.
struct PacketObservation {
  FlowKey key;
  std::uint32_t bytes = 0;      ///< IP length of this packet
  std::uint8_t tcp_flags = 0;   ///< flags if TCP, else 0
  util::TimeMs time = 0;
  /// Attribution carried into the export record.
  std::uint16_t src_as = 0;
  std::uint16_t dst_as = 0;
  net::IPv4Address next_hop;
};

struct FlowCacheConfig {
  util::DurationMs idle_timeout = 15 * util::kSecond;
  util::DurationMs active_timeout = 30 * util::kMinute;
  /// Hard capacity of the cache.
  std::size_t max_entries = 65536;
  /// "Close to full": evict least-recently-active entries once occupancy
  /// reaches this fraction of max_entries.
  double full_watermark = 0.9;
};

/// Lifetime counters of one FlowCache, broken down by the paper's four
/// expiry conditions (observability surface).
struct FlowCacheStats {
  std::uint64_t packets = 0;        ///< packets observed
  std::uint64_t flows_created = 0;  ///< cache entries created
  std::uint64_t expired_idle = 0;
  std::uint64_t expired_active = 0;    ///< active-timeout expiries
  std::uint64_t expired_tcp_close = 0; ///< FIN/RST expiries
  std::uint64_t evicted_full = 0;      ///< cache-full evictions
  std::uint64_t flushed = 0;           ///< flush() shutdown expiries
};

/// The metering cache. Single-threaded by design: each simulated router
/// owns one cache and the simulation drives it from one thread.
class FlowCache {
 public:
  explicit FlowCache(FlowCacheConfig config);

  /// Accounts one packet. May expire entries (FIN/RST, active timeout,
  /// cache-full) into the pending-export queue.
  void observe(const PacketObservation& packet);

  /// Advances the cache clock, expiring idle and over-age entries.
  /// Routers run this as a periodic sweep; the simulation calls it between
  /// traffic batches.
  void advance(util::TimeMs now);

  /// Removes and returns all records waiting to be exported, in expiry
  /// order.
  [[nodiscard]] std::vector<V5Record> drain_expired();

  /// Expires every active entry (router shutdown / end of run) and returns
  /// all pending records.
  [[nodiscard]] std::vector<V5Record> flush(util::TimeMs now);

  [[nodiscard]] std::size_t active_flows() const { return entries_.size(); }
  [[nodiscard]] std::size_t pending_exports() const { return expired_.size(); }
  [[nodiscard]] const FlowCacheStats& stats() const { return stats_; }

 private:
  struct Entry {
    V5Record record;
    util::TimeMs first_seen = 0;
    util::TimeMs last_seen = 0;
    std::list<FlowKey>::iterator lru_position;
  };

  /// Which of the four expiry conditions fired (indexes FlowCacheStats).
  enum class ExpiryCause : std::uint8_t { kIdle, kActive, kTcpClose, kFull, kFlush };

  void expire(std::unordered_map<FlowKey, Entry>::iterator it, ExpiryCause cause);
  void evict_if_full();

  FlowCacheConfig config_;
  FlowCacheStats stats_;
  std::unordered_map<FlowKey, Entry> entries_;
  /// Least-recently-active order; front = oldest. Drives cache-full
  /// eviction and the idle sweep.
  std::list<FlowKey> lru_;
  std::vector<V5Record> expired_;
};

}  // namespace infilter::netflow

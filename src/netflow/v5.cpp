#include "netflow/v5.h"

#include <cassert>

namespace infilter::netflow {
namespace {

// Big-endian primitive writers/readers. NetFlow is network byte order.
void put16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

void put32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

std::uint16_t get16(std::span<const std::uint8_t> in, std::size_t at) {
  return static_cast<std::uint16_t>((in[at] << 8) | in[at + 1]);
}

std::uint32_t get32(std::span<const std::uint8_t> in, std::size_t at) {
  return (std::uint32_t{in[at]} << 24) | (std::uint32_t{in[at + 1]} << 16) |
         (std::uint32_t{in[at + 2]} << 8) | std::uint32_t{in[at + 3]};
}

void encode_record(std::vector<std::uint8_t>& out, const V5Record& r) {
  put32(out, r.src_ip.value());
  put32(out, r.dst_ip.value());
  put32(out, r.next_hop.value());
  put16(out, r.input_if);
  put16(out, r.output_if);
  put32(out, r.packets);
  put32(out, r.bytes);
  put32(out, r.first);
  put32(out, r.last);
  put16(out, r.src_port);
  put16(out, r.dst_port);
  out.push_back(r.ttl);  // pad1, repurposed to carry the observed TTL
  out.push_back(r.tcp_flags);
  out.push_back(r.proto);
  out.push_back(r.tos);
  put16(out, r.src_as);
  put16(out, r.dst_as);
  out.push_back(r.src_mask);
  out.push_back(r.dst_mask);
  put16(out, 0);  // pad2
}

V5Record decode_record(std::span<const std::uint8_t> in) {
  V5Record r;
  r.src_ip = net::IPv4Address{get32(in, 0)};
  r.dst_ip = net::IPv4Address{get32(in, 4)};
  r.next_hop = net::IPv4Address{get32(in, 8)};
  r.input_if = get16(in, 12);
  r.output_if = get16(in, 14);
  r.packets = get32(in, 16);
  r.bytes = get32(in, 20);
  r.first = get32(in, 24);
  r.last = get32(in, 28);
  r.src_port = get16(in, 32);
  r.dst_port = get16(in, 34);
  r.ttl = in[36];
  r.tcp_flags = in[37];
  r.proto = in[38];
  r.tos = in[39];
  r.src_as = get16(in, 40);
  r.dst_as = get16(in, 42);
  r.src_mask = in[44];
  r.dst_mask = in[45];
  return r;
}

}  // namespace

std::vector<std::uint8_t> encode(const V5Header& header,
                                 std::span<const V5Record> records) {
  assert(records.size() <= kV5MaxRecords);
  std::vector<std::uint8_t> out;
  out.reserve(kV5HeaderBytes + records.size() * kV5RecordBytes);
  put16(out, kV5Version);
  put16(out, static_cast<std::uint16_t>(records.size()));
  put32(out, header.sys_uptime_ms);
  put32(out, header.unix_secs);
  put32(out, header.unix_nsecs);
  put32(out, header.flow_sequence);
  out.push_back(header.engine_type);
  out.push_back(header.engine_id);
  put16(out, header.sampling_interval);
  for (const auto& record : records) encode_record(out, record);
  return out;
}

DecodeStatus decode_into(std::span<const std::uint8_t> bytes, V5Header& header,
                         std::span<V5Record> records, std::size_t& count) {
  assert(records.size() >= kV5MaxRecords);
  count = 0;
  if (bytes.size() < kV5HeaderBytes) return DecodeStatus::kShort;
  if (get16(bytes, 0) != kV5Version) return DecodeStatus::kBadVersion;
  header.count = get16(bytes, 2);
  header.sys_uptime_ms = get32(bytes, 4);
  header.unix_secs = get32(bytes, 8);
  header.unix_nsecs = get32(bytes, 12);
  header.flow_sequence = get32(bytes, 16);
  header.engine_type = bytes[20];
  header.engine_id = bytes[21];
  header.sampling_interval = get16(bytes, 22);

  if (header.count == 0 || header.count > kV5MaxRecords) {
    return DecodeStatus::kBadCount;
  }
  const std::size_t expected = kV5HeaderBytes + header.count * kV5RecordBytes;
  if (bytes.size() != expected) return DecodeStatus::kLengthMismatch;
  for (std::size_t i = 0; i < header.count; ++i) {
    records[i] = decode_record(
        bytes.subspan(kV5HeaderBytes + i * kV5RecordBytes, kV5RecordBytes));
  }
  count = header.count;
  return DecodeStatus::kOk;
}

util::Result<V5Datagram> decode(std::span<const std::uint8_t> bytes) {
  V5Datagram dgram;
  V5Record records[kV5MaxRecords];
  std::size_t count = 0;
  switch (decode_into(bytes, dgram.header, records, count)) {
    case DecodeStatus::kOk:
      break;
    case DecodeStatus::kShort:
      return util::Error{"datagram shorter than v5 header"};
    case DecodeStatus::kBadVersion:
      return util::Error{"unsupported NetFlow version " +
                         std::to_string(get16(bytes, 0))};
    case DecodeStatus::kBadCount:
      return util::Error{"record count " + std::to_string(dgram.header.count) +
                         " outside [1, 30]"};
    case DecodeStatus::kLengthMismatch:
      return util::Error{
          "datagram length " + std::to_string(bytes.size()) +
          " does not match record count (expected " +
          std::to_string(kV5HeaderBytes + dgram.header.count * kV5RecordBytes) +
          ")"};
  }
  dgram.records.assign(records, records + count);
  return dgram;
}

std::vector<std::vector<std::uint8_t>> encode_all(std::span<const V5Record> records,
                                                  util::TimeMs export_time,
                                                  std::uint32_t& sequence,
                                                  std::uint8_t engine_id) {
  std::vector<std::vector<std::uint8_t>> out;
  for (std::size_t at = 0; at < records.size(); at += kV5MaxRecords) {
    const auto n = std::min(kV5MaxRecords, records.size() - at);
    V5Header header;
    header.sys_uptime_ms = static_cast<std::uint32_t>(export_time);
    header.unix_secs = static_cast<std::uint32_t>(export_time / util::kSecond);
    header.unix_nsecs = static_cast<std::uint32_t>((export_time % util::kSecond) * 1000000);
    header.flow_sequence = sequence;
    header.engine_id = engine_id;
    out.push_back(encode(header, records.subspan(at, n)));
    sequence += static_cast<std::uint32_t>(n);
  }
  return out;
}

}  // namespace infilter::netflow

// NetFlow version 5: flow keys, records, and the export wire format.
//
// Section 5.1.1 of the paper: flows are identified by the seven key fields
// of Figure 10 (source/destination IP, IP protocol, source/destination port,
// TOS byte, input interface). A v5 export datagram carries a 24-byte header
// followed by up to 30 fixed-size 48-byte records, all big-endian.
//
// The codec here is wire-accurate so that the Dagflow replay sources, the
// flow-tools style collector, and the analysis engine talk to each other
// through real datagram bytes, as in the paper's testbed.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "net/ipv4.h"
#include "util/result.h"
#include "util/time.h"

namespace infilter::netflow {

/// IP protocol numbers used throughout the reproduction.
enum class IpProto : std::uint8_t {
  kIcmp = 1,
  kTcp = 6,
  kUdp = 17,
};

/// TCP flag bits as they appear in the v5 record's tcp_flags field
/// (cumulative OR of flags seen on the flow's packets).
namespace tcpflags {
inline constexpr std::uint8_t kFin = 0x01;
inline constexpr std::uint8_t kSyn = 0x02;
inline constexpr std::uint8_t kRst = 0x04;
inline constexpr std::uint8_t kPsh = 0x08;
inline constexpr std::uint8_t kAck = 0x10;
}  // namespace tcpflags

/// The seven NetFlow key fields of Figure 10. Two packets belong to the
/// same flow iff their keys compare equal.
struct FlowKey {
  net::IPv4Address src_ip;
  net::IPv4Address dst_ip;
  std::uint8_t proto = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t tos = 0;
  std::uint16_t input_if = 0;

  friend auto operator<=>(const FlowKey&, const FlowKey&) = default;
};

/// One NetFlow v5 flow record (48 bytes on the wire).
struct V5Record {
  net::IPv4Address src_ip;    ///< srcaddr
  net::IPv4Address dst_ip;    ///< dstaddr
  net::IPv4Address next_hop;  ///< nexthop
  std::uint16_t input_if = 0;
  std::uint16_t output_if = 0;
  std::uint32_t packets = 0;  ///< dPkts
  std::uint32_t bytes = 0;    ///< dOctets
  std::uint32_t first = 0;    ///< SysUptime (ms) at first packet
  std::uint32_t last = 0;     ///< SysUptime (ms) at last packet
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  /// Observed IP TTL of the flow's packets, carried in the record's pad1
  /// byte (offset 36). Real v5 exporters leave pad1 zero; 0 here means
  /// "TTL not observed" and downstream hop-count analysis treats the flow
  /// as unknown, so plain v5 captures keep decoding unchanged.
  std::uint8_t ttl = 0;
  std::uint8_t tcp_flags = 0;
  std::uint8_t proto = 0;
  std::uint8_t tos = 0;
  std::uint16_t src_as = 0;
  std::uint16_t dst_as = 0;
  std::uint8_t src_mask = 0;
  std::uint8_t dst_mask = 0;

  [[nodiscard]] FlowKey key() const {
    return FlowKey{src_ip, dst_ip, proto, src_port, dst_port, tos, input_if};
  }
  /// Flow duration in milliseconds (last - first).
  [[nodiscard]] std::uint32_t duration_ms() const { return last - first; }

  friend auto operator<=>(const V5Record&, const V5Record&) = default;
};

/// The v5 export header (24 bytes on the wire).
struct V5Header {
  std::uint16_t count = 0;            ///< records in this datagram (1..30)
  std::uint32_t sys_uptime_ms = 0;    ///< router uptime when exported
  std::uint32_t unix_secs = 0;        ///< export wall-clock seconds
  std::uint32_t unix_nsecs = 0;       ///< export wall-clock nanoseconds
  std::uint32_t flow_sequence = 0;    ///< cumulative count of exported flows
  std::uint8_t engine_type = 0;
  std::uint8_t engine_id = 0;
  std::uint16_t sampling_interval = 0;

  friend auto operator<=>(const V5Header&, const V5Header&) = default;
};

/// A decoded export datagram: header plus records.
struct V5Datagram {
  V5Header header;
  std::vector<V5Record> records;
};

inline constexpr std::uint16_t kV5Version = 5;
inline constexpr std::size_t kV5HeaderBytes = 24;
inline constexpr std::size_t kV5RecordBytes = 48;
/// v5 routers never pack more than 30 records into one datagram.
inline constexpr std::size_t kV5MaxRecords = 30;

/// Serializes a datagram. Precondition: records.size() <= kV5MaxRecords.
/// The header's count field is taken from records.size(), not from
/// header.count.
[[nodiscard]] std::vector<std::uint8_t> encode(const V5Header& header,
                                               std::span<const V5Record> records);

/// Parses one export datagram. Fails on: short buffer, wrong version,
/// record count inconsistent with the buffer length, count > 30.
[[nodiscard]] util::Result<V5Datagram> decode(std::span<const std::uint8_t> bytes);

/// Why decode_into() failed (kOk = it did not).
enum class DecodeStatus : std::uint8_t {
  kOk,
  kShort,           ///< buffer shorter than the 24-byte header
  kBadVersion,      ///< version field != 5
  kBadCount,        ///< record count outside [1, 30]
  kLengthMismatch,  ///< buffer length inconsistent with record count
};

/// Allocation-free decode for the live ingest hot path: parses the header
/// and up to kV5MaxRecords records into caller-owned storage. `records`
/// must hold at least kV5MaxRecords entries; on kOk, `count` is the number
/// filled in. Validation is identical to decode() -- which is implemented
/// on top of this -- but failures carry a status code instead of an
/// allocated message, so a flood of malformed datagrams stays
/// allocation-free too.
[[nodiscard]] DecodeStatus decode_into(std::span<const std::uint8_t> bytes,
                                       V5Header& header,
                                       std::span<V5Record> records,
                                       std::size_t& count);

/// Splits an arbitrarily long record sequence into correctly-sized export
/// datagrams, maintaining flow_sequence across them. `sequence` is the
/// cumulative flow count before this call and is updated.
[[nodiscard]] std::vector<std::vector<std::uint8_t>> encode_all(
    std::span<const V5Record> records, util::TimeMs export_time,
    std::uint32_t& sequence, std::uint8_t engine_id = 0);

}  // namespace infilter::netflow

template <>
struct std::hash<infilter::netflow::FlowKey> {
  std::size_t operator()(const infilter::netflow::FlowKey& k) const noexcept {
    // FNV-1a over the key fields; the key is the hot hash in the flow cache.
    std::uint64_t h = 0xcbf29ce484222325ULL;
    auto mix = [&h](std::uint64_t v) {
      h ^= v;
      h *= 0x100000001b3ULL;
    };
    mix(k.src_ip.value());
    mix(k.dst_ip.value());
    mix((std::uint64_t{k.proto} << 40) | (std::uint64_t{k.src_port} << 24) |
        (std::uint64_t{k.dst_port} << 8) | k.tos);
    mix(k.input_if);
    return static_cast<std::size_t>(h);
  }
};

#include "traffic/normal.h"

#include <algorithm>
#include <cassert>

namespace infilter::traffic {
namespace {

// The seven families of Section 5.1.3c. Weights loosely follow early-2000s
// backbone mixes (HTTP-dominated, DNS-heavy in flow count); the exact
// values matter less than each family having a distinct, stable shape for
// the NNS subclusters to learn.
std::vector<ProtocolProfile> default_profiles() {
  using netflow::IpProto;
  std::vector<ProtocolProfile> p;
  // http: the bulk of bytes; wide heavy-tailed sizes.
  p.push_back({.weight = 0.42,
               .proto = static_cast<std::uint8_t>(IpProto::kTcp),
               .dst_port = 80,
               .packets_alpha = 1.15,
               .packets_min = 3,
               .packets_max = 4000,
               .bpp_min = 120,
               .bpp_max = 1400,
               .mean_gap_ms = 18});
  // smtp: moderate message-sized flows.
  p.push_back({.weight = 0.06,
               .proto = static_cast<std::uint8_t>(IpProto::kTcp),
               .dst_port = 25,
               .packets_alpha = 1.3,
               .packets_min = 6,
               .packets_max = 800,
               .bpp_min = 80,
               .bpp_max = 1000,
               .mean_gap_ms = 25});
  // ftp control: chatty small packets, long-lived.
  p.push_back({.weight = 0.03,
               .proto = static_cast<std::uint8_t>(IpProto::kTcp),
               .dst_port = 21,
               .packets_alpha = 1.4,
               .packets_min = 8,
               .packets_max = 600,
               .bpp_min = 60,
               .bpp_max = 300,
               .mean_gap_ms = 120});
  // dns: tiny request/response pairs, the flow-count heavyweight.
  p.push_back({.weight = 0.24,
               .proto = static_cast<std::uint8_t>(IpProto::kUdp),
               .dst_port = 53,
               .packets_alpha = 2.0,
               .packets_min = 1,
               .packets_max = 6,
               .bpp_min = 60,
               .bpp_max = 300,
               .mean_gap_ms = 40});
  // other tcp services (ssh, nntp, irc, ...): random high/low ports.
  p.push_back({.weight = 0.11,
               .proto = static_cast<std::uint8_t>(IpProto::kTcp),
               .dst_port = 0,
               .packets_alpha = 1.2,
               .packets_min = 2,
               .packets_max = 2000,
               .bpp_min = 80,
               .bpp_max = 1200,
               .mean_gap_ms = 35});
  // failed/aborted tcp connections (lone SYNs, RSTs, dead services):
  // ubiquitous in backbone traces. These sit exactly where single-packet
  // scan probes sit, which is why probe detection needs the Scan Analysis
  // counters rather than per-flow anomaly scores (Section 4.1).
  p.push_back({.weight = 0.04,
               .proto = static_cast<std::uint8_t>(IpProto::kTcp),
               .dst_port = 0,
               .packets_alpha = 2.5,
               .packets_min = 1,
               .packets_max = 3,
               .bpp_min = 40,
               .bpp_max = 70,
               .mean_gap_ms = 40});
  // other udp (streaming, games, ntp).
  p.push_back({.weight = 0.07,
               .proto = static_cast<std::uint8_t>(IpProto::kUdp),
               .dst_port = 0,
               .packets_alpha = 1.3,
               .packets_min = 1,
               .packets_max = 900,
               .bpp_min = 60,
               .bpp_max = 900,
               .mean_gap_ms = 30});
  // icmp: echo trains, small and short.
  p.push_back({.weight = 0.03,
               .proto = static_cast<std::uint8_t>(IpProto::kIcmp),
               .dst_port = 0,
               .packets_alpha = 1.8,
               .packets_min = 1,
               .packets_max = 30,
               .bpp_min = 64,
               .bpp_max = 120,
               .mean_gap_ms = 1000});
  return p;
}

}  // namespace

NormalTrafficModel::NormalTrafficModel(NormalTrafficConfig config)
    : config_(config), profiles_(default_profiles()) {
  assert(config_.hot_destinations > 0);
  double total = 0;
  for (const auto& profile : profiles_) total += profile.weight;
  double running = 0;
  cumulative_weight_.reserve(profiles_.size());
  for (const auto& profile : profiles_) {
    running += profile.weight / total;
    cumulative_weight_.push_back(running);
  }
  cumulative_weight_.back() = 1.0;
}

TraceFlow NormalTrafficModel::sample_flow(util::Rng& rng) const {
  const double u = rng.uniform();
  std::size_t index = 0;
  while (index + 1 < cumulative_weight_.size() && u > cumulative_weight_[index]) {
    ++index;
  }
  const ProtocolProfile& profile = profiles_[index];

  TraceFlow flow;
  flow.proto = profile.proto;
  flow.dst_port = profile.dst_port != 0
                      ? profile.dst_port
                      : static_cast<std::uint16_t>(rng.range(1024, 65535));
  if (profile.proto == static_cast<std::uint8_t>(netflow::IpProto::kIcmp)) {
    flow.src_port = 0;
    flow.dst_port = 0;
  } else {
    flow.src_port = static_cast<std::uint16_t>(rng.range(1024, 65535));
  }

  const double packets =
      rng.bounded_pareto(profile.packets_alpha, profile.packets_min, profile.packets_max);
  flow.packets = static_cast<std::uint32_t>(std::max(1.0, packets));
  const double bpp = profile.bpp_min + rng.uniform() * (profile.bpp_max - profile.bpp_min);
  flow.bytes = static_cast<std::uint32_t>(std::max(40.0, bpp * flow.packets));
  // Duration: per-packet gaps, exponential around the profile mean.
  double duration = 0;
  if (flow.packets > 1) {
    duration = rng.exponential(profile.mean_gap_ms) * (flow.packets - 1);
  }
  flow.duration_ms = static_cast<std::uint32_t>(duration);
  if (flow.proto == static_cast<std::uint8_t>(netflow::IpProto::kTcp)) {
    flow.tcp_flags = netflow::tcpflags::kSyn | netflow::tcpflags::kAck |
                     netflow::tcpflags::kPsh | netflow::tcpflags::kFin;
  }

  // Destination: zipf-ish reuse of a hot set inside the target ISP space.
  const auto host =
      static_cast<std::uint32_t>(std::min<double>(
          config_.hot_destinations - 1,
          std::floor(std::pow(rng.uniform(), 2.0) * config_.hot_destinations)));
  flow.dst_ip = net::IPv4Address{config_.destination_space.address().value() + host};
  return flow;
}

Trace NormalTrafficModel::generate(std::size_t flow_count, util::TimeMs origin,
                                   util::Rng& rng) const {
  Trace trace;
  trace.flows.reserve(flow_count);
  double clock = static_cast<double>(origin);
  for (std::size_t i = 0; i < flow_count; ++i) {
    TraceFlow flow = sample_flow(rng);
    clock += rng.exponential(config_.mean_interarrival_ms);
    flow.start = static_cast<util::TimeMs>(clock);
    trace.flows.push_back(flow);
  }
  return trace;
}

}  // namespace infilter::traffic

#include "traffic/attacks.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <unordered_set>

namespace infilter::traffic {
namespace {

using netflow::IpProto;
namespace tf = netflow::tcpflags;

constexpr std::uint8_t proto_of(IpProto p) { return static_cast<std::uint8_t>(p); }

/// Scales a base flow count by the configured intensity, at least 1.
std::size_t scaled(double base, const AttackConfig& config) {
  return static_cast<std::size_t>(std::max(1.0, std::round(base * config.intensity)));
}

net::IPv4Address random_victim(const AttackConfig& config, util::Rng& rng) {
  const auto span = config.destination_space.size();
  return net::IPv4Address{config.destination_space.address().value() +
                          static_cast<std::uint32_t>(rng.below(span))};
}

TraceFlow base_flow(AttackKind kind, util::TimeMs start) {
  TraceFlow flow;
  flow.attack = true;
  flow.attack_kind = kind;
  flow.start = start;
  return flow;
}

// Puke: a forged ICMP destination-unreachable message that knocks a client
// off its server. At flow level a single small ICMP packet -- statistically
// indistinguishable from an ordinary ping, which is what makes it the
// hardest of the paper's attacks.
Trace puke(const AttackConfig& config, util::TimeMs origin, util::Rng& rng) {
  Trace trace;
  const auto victim = random_victim(config, rng);
  for (std::size_t i = 0; i < scaled(3, config); ++i) {
    auto flow = base_flow(AttackKind::kPuke, origin + rng.below(2000));
    flow.proto = proto_of(IpProto::kIcmp);
    flow.dst_ip = victim;
    flow.packets = 1;
    flow.bytes = static_cast<std::uint32_t>(rng.range(56, 100));
    flow.duration_ms = 0;
    trace.flows.push_back(flow);
  }
  return trace;
}

// Jolt: oversized fragmented ICMP. A single "packet" arrives as dozens of
// large fragments in a few tens of milliseconds -- an extreme ICMP rate.
Trace jolt(const AttackConfig& config, util::TimeMs origin, util::Rng& rng) {
  Trace trace;
  const auto victim = random_victim(config, rng);
  for (std::size_t i = 0; i < scaled(2, config); ++i) {
    auto flow = base_flow(AttackKind::kJolt, origin + rng.below(1500));
    flow.proto = proto_of(IpProto::kIcmp);
    flow.dst_ip = victim;
    flow.packets = static_cast<std::uint32_t>(rng.range(30, 60));
    flow.bytes = flow.packets * 1480;
    flow.duration_ms = static_cast<std::uint32_t>(rng.range(20, 80));
    trace.flows.push_back(flow);
  }
  return trace;
}

// Teardrop: a handful of overlapping UDP fragments. The fragment train is
// tiny -- two to four ordinary-sized datagrams in a few tens of
// milliseconds, which sits inside the bulk of normal short UDP flows (the
// malformation is in fragment offsets, invisible at flow level).
Trace teardrop(const AttackConfig& config, util::TimeMs origin, util::Rng& rng) {
  Trace trace;
  const auto victim = random_victim(config, rng);
  for (std::size_t i = 0; i < scaled(2, config); ++i) {
    auto flow = base_flow(AttackKind::kTeardrop, origin + rng.below(1000));
    flow.proto = proto_of(IpProto::kUdp);
    flow.dst_ip = victim;
    flow.src_port = static_cast<std::uint16_t>(rng.range(1024, 65535));
    flow.dst_port = static_cast<std::uint16_t>(rng.range(1024, 65535));
    flow.packets = static_cast<std::uint32_t>(rng.range(2, 4));
    flow.bytes = flow.packets * static_cast<std::uint32_t>(rng.range(100, 400));
    flow.duration_ms = static_cast<std::uint32_t>(rng.range(20, 90));
    trace.flows.push_back(flow);
  }
  return trace;
}

// Slammer: one 404-byte UDP packet to port 1434 per randomly chosen
// victim; no reply needed, so sources are freely spoofed [SLAM].
Trace slammer(const AttackConfig& config, util::TimeMs origin, util::Rng& rng) {
  Trace trace;
  for (std::size_t i = 0; i < scaled(120, config); ++i) {
    auto flow = base_flow(AttackKind::kSlammer, origin + rng.below(8000));
    flow.proto = proto_of(IpProto::kUdp);
    flow.dst_ip = random_victim(config, rng);
    flow.src_port = static_cast<std::uint16_t>(rng.range(1024, 65535));
    flow.dst_port = 1434;
    flow.packets = 1;
    flow.bytes = 404;
    flow.duration_ms = 0;
    trace.flows.push_back(flow);
  }
  return trace;
}

// TFN2K: volumetric multi-vector flood (UDP, ICMP and SYN floods mixed)
// against one victim from many spoofed sources.
Trace tfn2k(const AttackConfig& config, util::TimeMs origin, util::Rng& rng) {
  Trace trace;
  const auto victim = random_victim(config, rng);
  for (std::size_t i = 0; i < scaled(60, config); ++i) {
    auto flow = base_flow(AttackKind::kTfn2k, origin + rng.below(30000));
    flow.dst_ip = victim;
    const int vector = static_cast<int>(rng.below(3));
    if (vector == 0) {  // UDP flood
      flow.proto = proto_of(IpProto::kUdp);
      flow.src_port = static_cast<std::uint16_t>(rng.range(1024, 65535));
      flow.dst_port = static_cast<std::uint16_t>(rng.range(1, 65535));
      flow.packets = static_cast<std::uint32_t>(rng.range(500, 5000));
      flow.bytes = flow.packets * static_cast<std::uint32_t>(rng.range(500, 1400));
    } else if (vector == 1) {  // ICMP flood
      flow.proto = proto_of(IpProto::kIcmp);
      flow.packets = static_cast<std::uint32_t>(rng.range(500, 5000));
      flow.bytes = flow.packets * static_cast<std::uint32_t>(rng.range(64, 1024));
    } else {  // SYN flood vector
      flow.proto = proto_of(IpProto::kTcp);
      flow.src_port = static_cast<std::uint16_t>(rng.range(1024, 65535));
      flow.dst_port = 80;
      flow.tcp_flags = tf::kSyn;
      flow.packets = static_cast<std::uint32_t>(rng.range(200, 2000));
      flow.bytes = flow.packets * 40;
    }
    flow.duration_ms = static_cast<std::uint32_t>(rng.range(1000, 5000));
    trace.flows.push_back(flow);
  }
  return trace;
}

// nmap network scan: one service port probed across many distinct hosts.
Trace nmap_network_scan(const AttackConfig& config, util::TimeMs origin,
                        util::Rng& rng) {
  Trace trace;
  static constexpr std::uint16_t kPorts[] = {80, 21, 25, 139, 445, 1433, 3389};
  const std::uint16_t port = kPorts[rng.below(std::size(kPorts))];
  std::unordered_set<std::uint32_t> seen;
  for (std::size_t i = 0; i < scaled(80, config); ++i) {
    auto flow = base_flow(AttackKind::kNmapNetworkScan, origin + rng.below(20000));
    flow.proto = proto_of(IpProto::kTcp);
    // Distinct victims: re-draw on collision (space is large).
    auto victim = random_victim(config, rng);
    while (!seen.insert(victim.value()).second) victim = random_victim(config, rng);
    flow.dst_ip = victim;
    flow.src_port = static_cast<std::uint16_t>(rng.range(1024, 65535));
    flow.dst_port = port;
    flow.tcp_flags = tf::kSyn;
    flow.packets = static_cast<std::uint32_t>(rng.range(1, 2));
    flow.bytes = flow.packets * 40;
    flow.duration_ms = static_cast<std::uint32_t>(rng.below(1000));
    trace.flows.push_back(flow);
  }
  return trace;
}

// nmap Idlescan: a truly blind scan -- many ports probed on one host with
// spoofed sources (Section 4.1's "host scan attack").
Trace nmap_idle_scan(const AttackConfig& config, util::TimeMs origin, util::Rng& rng) {
  Trace trace;
  const auto victim = random_victim(config, rng);
  std::unordered_set<std::uint16_t> ports;
  for (std::size_t i = 0; i < scaled(100, config); ++i) {
    auto flow = base_flow(AttackKind::kNmapIdleScan, origin + rng.below(15000));
    flow.proto = proto_of(IpProto::kTcp);
    flow.dst_ip = victim;
    flow.src_port = static_cast<std::uint16_t>(rng.range(1024, 65535));
    std::uint16_t port = static_cast<std::uint16_t>(rng.range(1, 10000));
    while (!ports.insert(port).second) {
      port = static_cast<std::uint16_t>(rng.range(1, 10000));
    }
    flow.dst_port = port;
    flow.tcp_flags = tf::kSyn;
    flow.packets = 1;
    flow.bytes = 40;
    flow.duration_ms = 0;
    trace.flows.push_back(flow);
  }
  return trace;
}

// SYN flood: a stream of single-SYN flows from spoofed sources at one
// service.
Trace syn_flood(const AttackConfig& config, util::TimeMs origin, util::Rng& rng) {
  Trace trace;
  const auto victim = random_victim(config, rng);
  for (std::size_t i = 0; i < scaled(150, config); ++i) {
    auto flow = base_flow(AttackKind::kSynFlood, origin + rng.below(10000));
    flow.proto = proto_of(IpProto::kTcp);
    flow.dst_ip = victim;
    flow.src_port = static_cast<std::uint16_t>(rng.range(1024, 65535));
    flow.dst_port = 80;
    flow.tcp_flags = tf::kSyn;
    flow.packets = 1;
    flow.bytes = 40;
    flow.duration_ms = 0;
    trace.flows.push_back(flow);
  }
  return trace;
}

// Nessus-style probe battery: short, malformed-looking exchanges with one
// service -- far below the normal flow-size floor for that protocol family.
Trace nessus(AttackKind kind, std::uint8_t proto, std::uint16_t port, double base_count,
             const AttackConfig& config, util::TimeMs origin, util::Rng& rng) {
  Trace trace;
  const auto victim = random_victim(config, rng);
  for (std::size_t i = 0; i < scaled(base_count, config); ++i) {
    auto flow = base_flow(kind, origin + rng.below(12000));
    flow.proto = proto;
    flow.dst_ip = victim;
    flow.src_port = static_cast<std::uint16_t>(rng.range(1024, 65535));
    flow.dst_port = port;
    if (proto == proto_of(IpProto::kTcp)) {
      flow.tcp_flags = tf::kSyn | (rng.chance(0.5) ? tf::kRst : tf::kFin);
      flow.packets = static_cast<std::uint32_t>(rng.range(1, 4));
      flow.bytes = flow.packets * static_cast<std::uint32_t>(rng.range(40, 120));
      flow.duration_ms = static_cast<std::uint32_t>(rng.below(100));
    } else {
      // Oversized DNS probes (suspicious TXT/version queries).
      flow.packets = static_cast<std::uint32_t>(rng.range(1, 3));
      flow.bytes = flow.packets * static_cast<std::uint32_t>(rng.range(500, 1200));
      flow.duration_ms = static_cast<std::uint32_t>(rng.below(50));
    }
    trace.flows.push_back(flow);
  }
  return trace;
}

// In-EIA spoof flood: the EIA blind spot. The testbed points this
// instance's source pool at the attacked ingress's own expected blocks
// and stamps the tool's true path TTL onto its records, so the EIA check
// passes every flow and only the hop-count witness can object. Flow
// shape: a plain single-SYN flood at one service.
Trace in_eia_spoof_flood(const AttackConfig& config, util::TimeMs origin,
                         util::Rng& rng) {
  Trace trace;
  const auto victim = random_victim(config, rng);
  for (std::size_t i = 0; i < scaled(120, config); ++i) {
    auto flow = base_flow(AttackKind::kInEiaSpoofFlood, origin + rng.below(10000));
    flow.proto = proto_of(IpProto::kTcp);
    flow.dst_ip = victim;
    flow.src_port = static_cast<std::uint16_t>(rng.range(1024, 65535));
    flow.dst_port = 443;
    flow.tcp_flags = tf::kSyn;
    flow.packets = 1;
    flow.bytes = 40;
    flow.duration_ms = 0;
    trace.flows.push_back(flow);
  }
  return trace;
}

// TTL-jittered evasion: the same in-EIA forging, but the tool randomizes
// its TTL per packet to smear the hop-count signal (the testbed's path
// model applies the actual jitter when stamping records). Flow shape: a
// short-datagram UDP flood at one victim.
Trace ttl_jitter_flood(const AttackConfig& config, util::TimeMs origin,
                       util::Rng& rng) {
  Trace trace;
  const auto victim = random_victim(config, rng);
  for (std::size_t i = 0; i < scaled(100, config); ++i) {
    auto flow = base_flow(AttackKind::kTtlJitterFlood, origin + rng.below(12000));
    flow.proto = proto_of(IpProto::kUdp);
    flow.dst_ip = victim;
    flow.src_port = static_cast<std::uint16_t>(rng.range(1024, 65535));
    flow.dst_port = static_cast<std::uint16_t>(rng.range(1024, 65535));
    flow.packets = static_cast<std::uint32_t>(rng.range(1, 3));
    flow.bytes = flow.packets * static_cast<std::uint32_t>(rng.range(60, 200));
    flow.duration_ms = static_cast<std::uint32_t>(rng.below(100));
    trace.flows.push_back(flow);
  }
  return trace;
}

// Tool-session companion flows: the non-attack traffic a capture of the
// tool inevitably contains. About 60% look like legitimate service
// sessions (connect follow-ups, banner grabs that complete); the rest are
// short odd exchanges (half-open probes, resets).
void append_companions(Trace& trace, AttackKind kind, const AttackConfig& config,
                       util::Rng& rng) {
  // The TTL-aware floods are pure spoofed streams -- no tool session ever
  // completes over a forged source, so they leave no companion traffic.
  if (kind == AttackKind::kInEiaSpoofFlood || kind == AttackKind::kTtlJitterFlood) {
    return;
  }
  if (is_stealthy(kind) || trace.flows.empty() || config.companion_fraction <= 0) {
    return;
  }
  const auto count = static_cast<std::size_t>(
      std::round(config.companion_fraction * static_cast<double>(trace.flows.size())));
  const std::size_t attack_count = trace.flows.size();
  for (std::size_t i = 0; i < count; ++i) {
    // Companions target the same victims/services the tool touched.
    const TraceFlow& peer = trace.flows[rng.below(attack_count)];
    TraceFlow flow;
    flow.attack = false;
    flow.attack_kind = kind;
    flow.start = peer.start + rng.below(2000);
    flow.dst_ip = peer.dst_ip;
    flow.proto = peer.proto;
    flow.dst_port = peer.dst_port;
    flow.src_port = static_cast<std::uint16_t>(rng.range(1024, 65535));
    if (rng.chance(0.6)) {
      // A completed session, shaped like ordinary service traffic.
      flow.packets = static_cast<std::uint32_t>(rng.range(8, 120));
      flow.bytes = flow.packets * static_cast<std::uint32_t>(rng.range(150, 900));
      flow.duration_ms =
          static_cast<std::uint32_t>(rng.exponential(20.0) * (flow.packets - 1));
      if (flow.proto == proto_of(IpProto::kTcp)) {
        flow.tcp_flags = tf::kSyn | tf::kAck | tf::kPsh | tf::kFin;
      }
    } else {
      // A short odd exchange.
      flow.packets = static_cast<std::uint32_t>(rng.range(1, 3));
      flow.bytes = flow.packets * static_cast<std::uint32_t>(rng.range(40, 200));
      flow.duration_ms = static_cast<std::uint32_t>(rng.below(150));
      if (flow.proto == proto_of(IpProto::kTcp)) flow.tcp_flags = tf::kSyn | tf::kRst;
    }
    trace.flows.push_back(flow);
  }
}

}  // namespace

std::string_view attack_name(AttackKind kind) {
  switch (kind) {
    case AttackKind::kPuke: return "puke";
    case AttackKind::kJolt: return "jolt";
    case AttackKind::kTeardrop: return "teardrop";
    case AttackKind::kSlammer: return "slammer";
    case AttackKind::kTfn2k: return "tfn2k";
    case AttackKind::kNmapNetworkScan: return "nmap-network-scan";
    case AttackKind::kNmapIdleScan: return "nmap-idlescan";
    case AttackKind::kSynFlood: return "syn-flood";
    case AttackKind::kNessusHttp: return "nessus-http";
    case AttackKind::kNessusFtp: return "nessus-ftp";
    case AttackKind::kNessusSmtp: return "nessus-smtp";
    case AttackKind::kNessusDns: return "nessus-dns";
    case AttackKind::kInEiaSpoofFlood: return "in-eia-spoof";
    case AttackKind::kTtlJitterFlood: return "ttl-jitter";
  }
  return "unknown";
}

namespace {

Trace generate_attack_only(AttackKind kind, const AttackConfig& config,
                           util::TimeMs origin, util::Rng& rng) {
  using enum AttackKind;
  switch (kind) {
    case kPuke: return puke(config, origin, rng);
    case kJolt: return jolt(config, origin, rng);
    case kTeardrop: return teardrop(config, origin, rng);
    case kSlammer: return slammer(config, origin, rng);
    case kTfn2k: return tfn2k(config, origin, rng);
    case kNmapNetworkScan: return nmap_network_scan(config, origin, rng);
    case kNmapIdleScan: return nmap_idle_scan(config, origin, rng);
    case kSynFlood: return syn_flood(config, origin, rng);
    case kNessusHttp:
      return nessus(kNessusHttp, proto_of(IpProto::kTcp), 80, 40, config, origin, rng);
    case kNessusFtp:
      return nessus(kNessusFtp, proto_of(IpProto::kTcp), 21, 25, config, origin, rng);
    case kNessusSmtp:
      return nessus(kNessusSmtp, proto_of(IpProto::kTcp), 25, 25, config, origin, rng);
    case kNessusDns:
      return nessus(kNessusDns, proto_of(IpProto::kUdp), 53, 30, config, origin, rng);
    case kInEiaSpoofFlood: return in_eia_spoof_flood(config, origin, rng);
    case kTtlJitterFlood: return ttl_jitter_flood(config, origin, rng);
  }
  return {};
}

}  // namespace

Trace generate_attack(AttackKind kind, const AttackConfig& config, util::TimeMs origin,
                      util::Rng& rng) {
  Trace trace = generate_attack_only(kind, config, origin, rng);
  append_companions(trace, kind, config, rng);
  std::sort(trace.flows.begin(), trace.flows.end(),
            [](const TraceFlow& a, const TraceFlow& b) { return a.start < b.start; });
  return trace;
}

Trace generate_attack_set(const AttackConfig& config, util::TimeMs origin,
                          util::DurationMs span, util::Rng& rng) {
  // The standard set is the paper's twelve; the TTL-aware kinds are
  // launched separately by TTL-scenario experiments.
  std::vector<Trace> traces;
  traces.reserve(kStandardAttackKindCount);
  for (int k = 0; k < kStandardAttackKindCount; ++k) {
    const util::TimeMs start = origin + rng.below(std::max<util::DurationMs>(1, span));
    traces.push_back(generate_attack(static_cast<AttackKind>(k), config, start, rng));
  }
  return merge(std::move(traces));
}

}  // namespace infilter::traffic

// Skewed source-popularity models.
//
// Real ingress traffic is not uniform over the source space: a few source
// /24s carry most of the flows (classic Zipf-like popularity), and the
// hot set drifts over time as customer activity moves. Because the
// sharded runtime (src/runtime) partitions work by source /24, that skew
// is exactly what produces shard imbalance -- this model makes the
// imbalance reproducible so `infilter_runtime_queue_imbalance` can be
// studied on a synthetic stream (bench/throughput --source-dist zipf),
// seeding the heavy-hitter mitigation work on the roadmap.

#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace infilter::traffic {

struct SourceSkewConfig {
  /// Zipf exponent over popularity ranks: item at rank k (1-based) gets
  /// weight 1/k^s. 1.26 matches the flow-per-source tail measured in
  /// backbone traces; larger values concentrate harder.
  double zipf_s = 1.26;
  /// Draws between hot-set rotations ("churn"): every `churn_every` draws
  /// the rank -> item permutation is reshuffled, so yesterday's heavy
  /// hitter goes cold and a new one takes over. 0 = static popularity.
  std::size_t churn_every = 0;
};

/// Draws item indices in [0, n) with Zipf(s)-distributed popularity and
/// optional churn. Which item holds which rank is a seeded permutation,
/// so the same (n, config, seed) reproduces the same skew exactly.
class ZipfSourceModel {
 public:
  ZipfSourceModel(std::size_t items, SourceSkewConfig config,
                  std::uint64_t seed);

  /// Draws one item index; consumes exactly one rng.uniform() draw.
  [[nodiscard]] std::size_t draw(util::Rng& rng);

  /// Hot-set rotations that have happened so far (0 until churn kicks in).
  [[nodiscard]] std::size_t epochs() const { return epoch_; }
  [[nodiscard]] std::size_t items() const { return permutation_.size(); }

 private:
  void reshuffle();

  SourceSkewConfig config_;
  std::uint64_t seed_;
  /// cdf_[k] = P(rank <= k), over 1/k^s weights.
  std::vector<double> cdf_;
  /// rank -> item index for the current epoch.
  std::vector<std::size_t> permutation_;
  std::size_t draws_ = 0;
  std::size_t epoch_ = 0;
};

}  // namespace infilter::traffic

#include "traffic/worm.h"

#include <algorithm>
#include <cassert>
#include <unordered_set>

namespace infilter::traffic {

int WormOutcome::infected_at(util::TimeMs time) const {
  int infected = 0;
  for (const auto& [at, count] : infections_over_time) {
    if (at > time) break;
    infected = count;
  }
  return infected;
}

WormOutcome simulate_worm(const WormConfig& config, util::Rng& rng,
                          std::optional<util::TimeMs> containment_at) {
  assert(config.vulnerable_hosts > 0);
  assert(config.step > 0);
  const double space = static_cast<double>(config.target_space.size());

  WormOutcome outcome;
  int infected_inside = 0;
  // Scanners: external seeds plus every infected inside host.
  auto scanners = [&] {
    return config.initially_infected + infected_inside;
  };

  for (util::TimeMs now = 0; now < config.horizon; now += config.step) {
    const bool contained = containment_at.has_value() && now >= *containment_at;
    const double step_seconds =
        static_cast<double>(config.step) / static_cast<double>(util::kSecond);

    if (!contained) {
      // Probes this step (expectation + fractional Bernoulli).
      const double expectation =
          scanners() * config.probes_per_host_per_second * step_seconds;
      int probes = static_cast<int>(expectation);
      if (rng.chance(expectation - probes)) ++probes;

      for (int p = 0; p < probes; ++p) {
        const bool external_scanner =
            rng.below(static_cast<std::uint64_t>(scanners())) <
            static_cast<std::uint64_t>(config.initially_infected);
        const auto victim = net::IPv4Address{
            config.target_space.address().value() +
            static_cast<std::uint32_t>(rng.below(config.target_space.size()))};

        // Only externally-sourced probes cross the border and are visible
        // to the ingress detector; internal scanning spreads silently.
        if (external_scanner) {
          TraceFlow flow;
          flow.attack = true;
          flow.attack_kind = AttackKind::kSlammer;
          flow.start = now + rng.below(config.step);
          flow.proto = static_cast<std::uint8_t>(netflow::IpProto::kUdp);
          flow.src_port = static_cast<std::uint16_t>(rng.range(1024, 65535));
          flow.dst_port = config.port;
          flow.packets = 1;
          flow.bytes = config.probe_bytes;
          flow.dst_ip = victim;
          outcome.border_trace.flows.push_back(flow);
          ++outcome.border_probes;
        }

        // Infection: the probe hits one of the remaining vulnerable hosts
        // with the hypergeometric-ish density of the scanned space.
        const double susceptible =
            static_cast<double>(config.vulnerable_hosts - infected_inside);
        if (rng.chance(susceptible / space)) {
          ++infected_inside;
        }
      }
    }
    outcome.infections_over_time.emplace_back(now + config.step, infected_inside);
  }

  std::sort(outcome.border_trace.flows.begin(), outcome.border_trace.flows.end(),
            [](const TraceFlow& a, const TraceFlow& b) { return a.start < b.start; });
  outcome.final_infected = infected_inside;
  return outcome;
}

}  // namespace infilter::traffic

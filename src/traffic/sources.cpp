#include "traffic/sources.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace infilter::traffic {

ZipfSourceModel::ZipfSourceModel(std::size_t items, SourceSkewConfig config,
                                 std::uint64_t seed)
    : config_(config), seed_(seed) {
  assert(items > 0);
  cdf_.reserve(items);
  double total = 0;
  for (std::size_t k = 1; k <= items; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k), config_.zipf_s);
    cdf_.push_back(total);
  }
  for (auto& c : cdf_) c /= total;
  cdf_.back() = 1.0;
  permutation_.resize(items);
  std::iota(permutation_.begin(), permutation_.end(), std::size_t{0});
  reshuffle();
}

void ZipfSourceModel::reshuffle() {
  // Seeded Fisher-Yates: the epoch's permutation is a pure function of
  // (seed, epoch), independent of the caller's rng stream, so enabling
  // churn changes which items are hot but not how many draws are consumed.
  util::SplitMix64 mix{seed_ ^ (std::uint64_t{epoch_} * 0x9E3779B97F4A7C15ULL)};
  for (std::size_t i = permutation_.size(); i > 1; --i) {
    const auto j = static_cast<std::size_t>(mix.next() % i);
    std::swap(permutation_[i - 1], permutation_[j]);
  }
}

std::size_t ZipfSourceModel::draw(util::Rng& rng) {
  if (config_.churn_every > 0 && draws_ > 0 && draws_ % config_.churn_every == 0) {
    ++epoch_;
    reshuffle();
  }
  ++draws_;
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  const auto rank = static_cast<std::size_t>(it - cdf_.begin());
  return permutation_[std::min(rank, permutation_.size() - 1)];
}

}  // namespace infilter::traffic

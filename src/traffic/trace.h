// Flow-level traffic traces.
//
// The paper replays previously captured DAG-format packet traces through
// Dagflow, which reduces them to NetFlow records. Since InFilter consumes
// flow statistics only, our synthetic stand-in for CAIDA/NLANR captures is
// a *flow-level* trace: one entry per flow with the aggregate quantities a
// NetFlow record would carry, plus ground-truth attack labels used by the
// evaluation to score detections.

#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "net/ipv4.h"
#include "netflow/v5.h"
#include "util/time.h"

namespace infilter::traffic {

/// The attack tools of Section 6.2: stealthy attacks, scans, service
/// exploits, a worm and a DDoS tool -- "12 unique attacks".
enum class AttackKind : std::uint8_t {
  kPuke,             ///< forged ICMP unreachable burst at one host
  kJolt,             ///< oversized fragmented ICMP (availability)
  kTeardrop,         ///< overlapping UDP fragments (availability)
  kSlammer,          ///< single-UDP-packet worm, port 1434, random targets
  kTfn2k,            ///< multi-vector volumetric DDoS
  kNmapNetworkScan,  ///< one port swept across many hosts
  kNmapIdleScan,     ///< truly blind host scan: many ports on one host
  kSynFlood,         ///< spoofed TCP SYN flood at one service
  kNessusHttp,       ///< service probe battery against tcp/80
  kNessusFtp,        ///< service probe battery against tcp/21
  kNessusSmtp,       ///< service probe battery against tcp/25
  kNessusDns,        ///< probe battery against udp/53
  // TTL-aware spoofing, beyond the paper's twelve: the sources are forged
  // from address space the attacked ingress *expects* (SMap documents
  // spoofers routinely using valid addresses), so the EIA check passes
  // and only the hop-count witness (src/hopcount) can object.
  kInEiaSpoofFlood,  ///< flood forging in-EIA sources over the tool's own path
  kTtlJitterFlood,   ///< same, randomizing its TTL per flow to smear the signal
};

inline constexpr int kAttackKindCount = 14;
/// The paper's original "12 unique attacks" -- the standard attack set.
/// The two TTL-aware kinds above are launched only by TTL-scenario
/// experiments, so baselines keyed to the standard set stay comparable.
inline constexpr int kStandardAttackKindCount = 12;

[[nodiscard]] std::string_view attack_name(AttackKind kind);

/// Inverse of attack_name; nullopt for unknown names.
[[nodiscard]] std::optional<AttackKind> attack_by_name(std::string_view name);

/// True for the attacks the paper calls "stealthy" (one or very few
/// packets, invisible to volume-based sensors).
[[nodiscard]] constexpr bool is_stealthy(AttackKind kind) {
  switch (kind) {
    case AttackKind::kPuke:
    case AttackKind::kJolt:
    case AttackKind::kTeardrop:
    case AttackKind::kSlammer:
      return true;
    default:
      return false;
  }
}

/// One flow of a trace. Source addresses here are placeholders -- Dagflow
/// rewrites them from its allocated address blocks (Section 6.1).
struct TraceFlow {
  util::TimeMs start = 0;  ///< offset from the trace origin
  std::uint32_t duration_ms = 0;
  std::uint32_t packets = 1;
  std::uint32_t bytes = 0;
  std::uint8_t proto = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t tcp_flags = 0;
  net::IPv4Address src_ip;
  net::IPv4Address dst_ip;
  /// Ground truth for the evaluation; never visible to the detector.
  bool attack = false;
  AttackKind attack_kind = AttackKind::kPuke;

  [[nodiscard]] util::TimeMs end() const { return start + duration_ms; }
};

/// A flow-level trace: flows ordered by start time.
struct Trace {
  std::vector<TraceFlow> flows;

  [[nodiscard]] util::DurationMs duration() const {
    util::DurationMs last = 0;
    for (const auto& flow : flows) last = std::max(last, flow.end());
    return last;
  }
  [[nodiscard]] std::size_t attack_flow_count() const {
    std::size_t n = 0;
    for (const auto& flow : flows) n += flow.attack ? 1 : 0;
    return n;
  }
};

/// Merges traces into one, ordered by flow start time.
[[nodiscard]] Trace merge(std::vector<Trace> traces);

/// Shifts every flow's start by `offset`.
void shift(Trace& trace, util::DurationMs offset);

}  // namespace infilter::traffic

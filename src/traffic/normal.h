// Synthetic "normal" Internet traffic.
//
// Stand-in for the paper's CAIDA/NLANR captures (DESIGN.md section 2): a
// per-protocol mixture model with heavy-tailed flow sizes and durations.
// The mixture components deliberately match the subclusters the Enhanced
// InFilter partitions its Normal cluster into (Section 5.1.3c): http, smtp,
// ftp, dns, other-tcp, other-udp and icmp -- so the per-subcluster NNS
// thresholds are trained on the same families the detector later sees.

#pragma once

#include <cstdint>

#include "traffic/trace.h"
#include "util/rng.h"

namespace infilter::traffic {

/// Shape of one protocol family's flows.
struct ProtocolProfile {
  double weight = 0;  ///< mixture weight (relative, normalized internally)
  std::uint8_t proto = 0;
  std::uint16_t dst_port = 0;  ///< 0 = random unprivileged port
  /// Bounded-Pareto packet count [min, max] with shape alpha.
  double packets_alpha = 1.2;
  double packets_min = 1;
  double packets_max = 1000;
  /// Uniform bytes-per-packet range.
  double bpp_min = 64;
  double bpp_max = 1400;
  /// Mean per-packet inter-arrival used to derive duration (ms).
  double mean_gap_ms = 30;
};

struct NormalTrafficConfig {
  /// Mean flow inter-arrival time at one ingress point.
  double mean_interarrival_ms = 25;
  /// Destinations are drawn from this prefix (the target ISP's customers).
  net::Prefix destination_space{net::IPv4Address{100, 64, 0, 0}, 16};
  /// Number of distinct popular destination hosts (zipf-ish reuse).
  int hot_destinations = 400;
};

/// Generates normal traffic flows. Stateless between calls except for the
/// caller-owned RNG, so distinct Dagflow sources can share one model.
class NormalTrafficModel {
 public:
  explicit NormalTrafficModel(NormalTrafficConfig config = {});

  /// Generates `flow_count` flows starting at `origin`, spaced by
  /// exponential inter-arrivals.
  [[nodiscard]] Trace generate(std::size_t flow_count, util::TimeMs origin,
                               util::Rng& rng) const;

  /// The paper's seven protocol families, exposed for tests and benches.
  [[nodiscard]] const std::vector<ProtocolProfile>& profiles() const {
    return profiles_;
  }

  /// Draws one flow from the mixture (without arrival-time assignment).
  [[nodiscard]] TraceFlow sample_flow(util::Rng& rng) const;

 private:
  NormalTrafficConfig config_;
  std::vector<ProtocolProfile> profiles_;
  std::vector<double> cumulative_weight_;
};

}  // namespace infilter::traffic

// Worm propagation at flow level.
//
// The paper's flagship stealthy attack is the Slammer worm [SLAM]: one
// spoofed 404-byte UDP packet per probe, random scanning, no reply needed.
// Its value proposition for InFilter is *early notification* -- flag the
// sweep while the infected population is still small. This module models
// the epidemic itself (a discrete-time SI process over the target address
// space) so the containment example can quantify that claim: infections
// over time with no response, with InFilter-triggered border filtering,
// and with a slower signature-derived response.

#pragma once

#include <optional>
#include <vector>

#include "traffic/trace.h"
#include "util/rng.h"

namespace infilter::traffic {

struct WormConfig {
  /// The scanned address space (the target network).
  net::Prefix target_space{net::IPv4Address{100, 64, 0, 0}, 16};
  /// Vulnerable hosts inside the space (Slammer hit unpatched SQL Server).
  int vulnerable_hosts = 400;
  /// Infected hosts seeding the epidemic from outside the network.
  int initially_infected = 2;
  /// Scan probes per infected host per second (Slammer saturated links;
  /// scaled down to keep traces manageable -- the dynamics are identical).
  double probes_per_host_per_second = 8;
  /// Simulation horizon and step.
  util::DurationMs horizon = 60 * util::kSecond;
  util::DurationMs step = 100;
  std::uint16_t port = 1434;
  std::uint32_t probe_bytes = 404;
};

struct WormOutcome {
  /// Every probe flow that crossed the network border, in time order
  /// (what the border NetFlow exporters see).
  Trace border_trace;
  /// (time, cumulative infected hosts) sampled each step.
  std::vector<std::pair<util::TimeMs, int>> infections_over_time;
  int final_infected = 0;
  /// Probes that crossed the border before containment (all of them when
  /// containment never happened).
  std::size_t border_probes = 0;

  [[nodiscard]] int infected_at(util::TimeMs time) const;
};

/// Simulates the epidemic. `containment_at`, when set, models the border
/// routers dropping the worm's traffic from that moment (the response an
/// InFilter alert triggers): no further probes enter and no further
/// inside hosts are infected from outside. Already-infected *inside*
/// hosts keep scanning internally -- containment caps the epidemic, it
/// does not cure it.
[[nodiscard]] WormOutcome simulate_worm(const WormConfig& config, util::Rng& rng,
                                        std::optional<util::TimeMs> containment_at =
                                            std::nullopt);

}  // namespace infilter::traffic

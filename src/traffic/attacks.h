// Flow-level attack trace generators (Section 6.2's 12 attacks).
//
// The paper captured real attack tool output (Nessus, nmap, TFN2K, worm and
// nuker binaries) in TCPDUMP/DAG format. Here each attack is synthesized at
// flow level from its published network signature; InFilter sees only
// NetFlow statistics, so flow-level fidelity is what matters (DESIGN.md
// section 2). Every generated flow carries its ground-truth label.

#pragma once

#include "traffic/trace.h"
#include "util/rng.h"

namespace infilter::traffic {

/// Scale/targeting knobs shared by the generators.
struct AttackConfig {
  /// Victim hosts live in this prefix (the target ISP's address space).
  net::Prefix destination_space{net::IPv4Address{100, 64, 0, 0}, 16};
  /// Multiplies per-attack flow counts ("each attack being used multiple
  /// times depending on volume of attacks needed").
  double intensity = 1.0;
  /// Fraction of additional *non-attack* companion flows added per
  /// instance: session overhead of the tools themselves (nmap connect
  /// follow-ups, Nessus full service sessions, TFN2K control chatter).
  /// Captured attack traces inevitably contain such traffic; replayed with
  /// spoofed sources it is what the evaluation counts as false-positive
  /// pressure. Stealthy single-packet attacks get no companions.
  double companion_fraction = 0.35;
};

/// Generates one instance of `kind` starting at `origin`.
[[nodiscard]] Trace generate_attack(AttackKind kind, const AttackConfig& config,
                                    util::TimeMs origin, util::Rng& rng);

/// All twelve attacks, interleaved over `span` starting at `origin` --
/// the paper's standard attack set.
[[nodiscard]] Trace generate_attack_set(const AttackConfig& config,
                                        util::TimeMs origin, util::DurationMs span,
                                        util::Rng& rng);

}  // namespace infilter::traffic

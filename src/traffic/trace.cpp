#include "traffic/trace.h"

#include <algorithm>

namespace infilter::traffic {

std::optional<AttackKind> attack_by_name(std::string_view name) {
  for (int k = 0; k < kAttackKindCount; ++k) {
    const auto kind = static_cast<AttackKind>(k);
    if (attack_name(kind) == name) return kind;
  }
  return std::nullopt;
}

Trace merge(std::vector<Trace> traces) {
  Trace out;
  std::size_t total = 0;
  for (const auto& trace : traces) total += trace.flows.size();
  out.flows.reserve(total);
  for (auto& trace : traces) {
    out.flows.insert(out.flows.end(), trace.flows.begin(), trace.flows.end());
  }
  std::stable_sort(out.flows.begin(), out.flows.end(),
                   [](const TraceFlow& a, const TraceFlow& b) { return a.start < b.start; });
  return out;
}

void shift(Trace& trace, util::DurationMs offset) {
  for (auto& flow : trace.flows) flow.start += offset;
}

}  // namespace infilter::traffic

// The experimental testbed of Section 6 (Figures 13/14).
//
// Emulates an ISP with 10 peer ASs / border routers: 10 "normal" Dagflow
// sources (each the sole user of 100 address sub-blocks, Table 3), plus
// attack Dagflow source sets aimed at one or all ingress points. Traffic
// is replayed into an InFilter engine and scored against ground truth.
//
// Experiment designs implemented (Section 6.3):
//   * spoofed attacks through one peer AS (6.3.1),
//   * stress: attack sets at every peer AS (6.3.2),
//   * spoofed attacks under emulated route instability (6.3.3, Table 2).

#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "core/engine.h"
#include "dagflow/dagflow.h"
#include "obs/metrics.h"
#include "runtime/runtime.h"
#include "traffic/attacks.h"
#include "traffic/normal.h"

namespace infilter::sim {

struct ExperimentConfig {
  // -- Testbed shape (Figure 14) --
  int sources = 10;
  int blocks_per_source = 100;
  /// Collector UDP port of source 0; source i uses first_port + i.
  std::uint16_t first_port = 9001;

  // -- Traffic --
  std::size_t normal_flows_per_source = 20000;
  /// Baseline fraction of each normal source's flows that carry addresses
  /// from other sources' blocks even with no emulated route change. Real
  /// ingress mappings drift at this order (the Section 3 validation
  /// measures 0.4-1.6% per interval); this floor produces the paper's
  /// ~1% false-positive baseline.
  double ingress_drift = 0.015;
  /// Active /24s per /11 block for normal sources (clustered like real
  /// subnet populations). Clustering is what gives the EIA auto-learning
  /// rule traction on persistently moved prefixes; drift traffic stays
  /// unclustered (diffuse wobble). 0 disables clustering.
  int source_active_slash24s = 4;

  // -- Attacks (6.3.1 / 6.3.2) --
  /// Attack traffic volume as a fraction of the normal traffic volume at
  /// each attacked ingress (the paper's 2%, 4%, 8%).
  double attack_volume = 0.02;
  /// Number of ingress points receiving an attack set: 1 reproduces
  /// Section 6.3.1, `sources` reproduces the stress test of 6.3.2.
  int attacked_ingresses = 1;
  /// Foreign sub-blocks each attack instance spoofs from (the paper's
  /// attack Dagflows used "an address block corresponding to EIA sets for
  /// Peer ASs" other than their own; small pools make the spoofed sources
  /// clustered, as a real replayed trace would be).
  int spoof_blocks_per_instance = 2;
  double companion_fraction = 0.5;
  /// TTL scenario: every Dagflow stamps record TTLs through one shared
  /// hop-count path model (src/hopcount). Normal sources stamp honestly
  /// (each rewritten source's own path); attack instances stamp the
  /// *tool's* path regardless of the forged source. In addition to the
  /// standard 12-tool set, each attacked ingress receives the two
  /// TTL-aware kinds (kInEiaSpoofFlood / kTtlJitterFlood) forging sources
  /// from the attacked ingress's own blocks -- invisible to the EIA check,
  /// only the hop-count witness objects. Off: every record keeps ttl = 0
  /// and only the standard set is launched (baselines unchanged).
  /// Detection fusion is switched separately via engine.use_hopcount.
  bool ttl_scenario = false;
  /// Stress-test timing (Section 6.3.2): the attack Dagflow set is
  /// *replicated* per peer AS and the replicas replay the same traces, so
  /// each attack tool fires at every ingress at (nearly) the same moment.
  /// The concurrent storms share the one scan-analysis buffer -- that
  /// contention is what degrades stress detection and inflates stress
  /// false positives. false staggers instances independently instead.
  bool synchronized_attack_sets = true;

  // -- Route instability (6.3.3, Table 2) --
  /// Donated blocks per source (= route-change percentage with 100-block
  /// sources). 0 disables route-change emulation.
  int route_change_blocks = 0;
  /// Allocations constructed per route-change level; sources transition
  /// between them simultaneously, evenly spaced over the run.
  int allocations = 4;

  /// NetFlow sampled mode on every emulated exporter (1 = unsampled).
  /// Large ISPs often run 1-in-N sampled NetFlow; the ablation bench
  /// quantifies what that costs InFilter's stealthy-attack detection.
  std::uint32_t netflow_sampling = 1;

  // -- Engine --
  core::EngineConfig engine;
  std::size_t training_flows = 3000;

  // -- Concurrent runtime (src/runtime) --
  /// 0 replays through one serial engine (the paper's prototype); N >= 1
  /// replays through a ShardedRuntime with N worker shards. The testbed
  /// submits from one thread (producer 0), so the realized dispatch
  /// order is submission order and verdicts are bit-identical to serial
  /// at every shard count: suspects from all shards funnel through one
  /// shared scan-stage engine in that order (see runtime/runtime.h), so
  /// the destination-keyed suspect buffer stays global. Multi-producer
  /// submission keeps the same guarantee against the realized claim
  /// order (pinned in tests/test_runtime.cpp).
  int runtime_shards = 0;
  std::size_t runtime_queue_depth = 4096;

  std::uint64_t seed = 1;
};

/// Ground-truth scoring of one run.
struct ExperimentResult {
  // Attack-instance accounting ("about 83% of launched attacks were
  // detected"): an instance is one use of one attack tool at one ingress;
  // it is detected when at least one of its flows raises an alert.
  int attack_instances = 0;
  int detected_instances = 0;

  // Flow-level accounting.
  std::uint64_t attack_flows = 0;
  std::uint64_t detected_attack_flows = 0;
  std::uint64_t benign_flows = 0;  ///< normal sources + companions
  std::uint64_t false_positives = 0;
  /// Benign flows that entered the suspect path (EIA mismatch or TTL
  /// mismatch) whatever their final verdict -- the scan-stage load the
  /// hop-count detector adds on legitimate traffic is budgeted on this.
  std::uint64_t benign_suspects = 0;

  // Alerts by pipeline stage.
  std::uint64_t alerts_eia = 0;
  std::uint64_t alerts_scan = 0;
  std::uint64_t alerts_nns = 0;
  std::uint64_t alerts_fused = 0;  ///< EIA miss + TTL miss (kHopCountFusion)

  /// Mean virtual-time latency from an instance's first attack flow to its
  /// first alert, over detected instances ("Also tracked was the latency
  /// between attack initiation and detection", Section 6.3).
  double mean_detection_latency_ms = 0;

  /// Per attack kind: {instances, detected instances}.
  std::array<std::pair<int, int>, traffic::kAttackKindCount> per_kind{};

  /// Final metrics dump of the run's engine (pipeline counters, component
  /// gauges, per-stage latency histograms). Taken after the last flow, so
  /// it reconciles with the accounting above: flows_total equals
  /// attack_flows + benign_flows, and the verdict_attack_* counters sum to
  /// alerts_eia + alerts_scan + alerts_nns + alerts_fused.
  obs::RegistrySnapshot metrics;

  [[nodiscard]] double detection_rate() const {
    return attack_instances == 0
               ? 0.0
               : static_cast<double>(detected_instances) / attack_instances;
  }
  [[nodiscard]] double flow_detection_rate() const {
    return attack_flows == 0
               ? 0.0
               : static_cast<double>(detected_attack_flows) /
                     static_cast<double>(attack_flows);
  }
  [[nodiscard]] double false_positive_rate() const {
    return benign_flows == 0 ? 0.0
                             : static_cast<double>(false_positives) /
                                   static_cast<double>(benign_flows);
  }
  [[nodiscard]] double benign_suspect_rate() const {
    return benign_flows == 0 ? 0.0
                             : static_cast<double>(benign_suspects) /
                                   static_cast<double>(benign_flows);
  }
};

/// Averages of `detection_rate` / `false_positive_rate` over repeated runs
/// ("Each data point was obtained by averaging 5 runs").
struct AveragedResult {
  double detection_rate = 0;
  double flow_detection_rate = 0;
  double false_positive_rate = 0;
  int runs = 0;
};

/// One generated testbed workload: the labeled replay stream plus every
/// launched attack instance (an instance can contribute zero flows under
/// aggressive NetFlow sampling and must still count as launched).
struct TestbedStream {
  /// Normal + attack + companion flows, sorted by export time (record.last).
  std::vector<dagflow::LabeledFlow> flows;
  /// Launched (attacked-ingress index, attack kind) pairs.
  std::vector<std::pair<int, traffic::AttackKind>> instances;
};

/// Generates the full Section 6 workload for `config` -- the stream
/// run_experiment replays, also consumed directly by bench/throughput.
[[nodiscard]] TestbedStream generate_stream(const ExperimentConfig& config);

/// Ground-truth accounting shared by the serial and runtime replay paths,
/// and reused wave-by-wave by the lifecycle soak harness (sim/soak.h).
/// Every reduction is order-independent (counts and min-aggregations), so
/// scoring the same (flow, verdict) pairs in any interleaving -- the
/// runtime's workers finish shards in nondeterministic order -- produces
/// exactly the serial result. (first_alert as a min over alerting flows'
/// export times equals the serial "first detected flow in replay order":
/// the stream is sorted by record.last.)
class Scorer {
 public:
  Scorer(const ExperimentConfig& config, const TestbedStream& stream);

  void score(const dagflow::LabeledFlow& flow, const core::Verdict& verdict);

  /// Folds the per-instance states into the final result (metrics field
  /// left to the caller).
  [[nodiscard]] ExperimentResult finalize();

 private:
  struct InstanceKey {
    int ingress;
    traffic::AttackKind kind;
    auto operator<=>(const InstanceKey&) const = default;
  };
  struct InstanceState {
    bool detected = false;
    util::TimeMs first_flow = ~util::TimeMs{0};
    util::TimeMs first_alert = ~util::TimeMs{0};
  };

  int first_port_;
  std::map<InstanceKey, InstanceState> instances_;
  ExperimentResult result_;
};

/// Builds the training traffic and trained clusters for a seed; shared
/// across runs like the paper's pre-built NNS structures.
[[nodiscard]] std::shared_ptr<const core::TrainedClusters> train_clusters(
    const ExperimentConfig& config);

/// Runs one experiment. When `clusters` is null the run trains its own.
[[nodiscard]] ExperimentResult run_experiment(
    const ExperimentConfig& config,
    std::shared_ptr<const core::TrainedClusters> clusters = nullptr);

/// Memoizes trained clusters by seed. The paper builds the NNS structures
/// once "prior to the experiment runs"; benches sweeping many parameter
/// points share one cache so each seed trains exactly once.
class ClusterCache {
 public:
  explicit ClusterCache(ExperimentConfig base) : base_(std::move(base)) {}
  std::shared_ptr<const core::TrainedClusters> get(std::uint64_t seed);

 private:
  ExperimentConfig base_;
  std::map<std::uint64_t, std::shared_ptr<const core::TrainedClusters>> cache_;
};

/// Runs `runs` seeded repetitions and averages the headline rates.
/// `cache` (optional) supplies pre-trained clusters per run seed.
[[nodiscard]] AveragedResult run_averaged(ExperimentConfig config, int runs = 5,
                                          ClusterCache* cache = nullptr);

}  // namespace infilter::sim

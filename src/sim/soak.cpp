#include "sim/soak.h"

#include <algorithm>
#include <cassert>
#include <mutex>

namespace infilter::sim {

namespace {

std::uint64_t counter_value(const obs::RegistrySnapshot& snap,
                            std::string_view name) {
  return static_cast<std::uint64_t>(snap.value(name));
}

}  // namespace

double SoakResult::min_detection_rate() const {
  double lo = 1.0;
  for (const SoakWave& wave : waves) lo = std::min(lo, wave.detection_rate);
  return waves.empty() ? 0.0 : lo;
}

double SoakResult::max_false_positive_rate() const {
  double hi = 0.0;
  for (const SoakWave& wave : waves) hi = std::max(hi, wave.false_positive_rate);
  return hi;
}

double SoakResult::max_benign_suspect_rate() const {
  double hi = 0.0;
  for (const SoakWave& wave : waves) hi = std::max(hi, wave.benign_suspect_rate);
  return hi;
}

SoakResult run_soak(const SoakConfig& config) {
  assert(config.base.runtime_shards >= 1);

  core::EngineConfig engine_config = config.base.engine;
  engine_config.seed = config.base.seed ^ 0xe191eULL;
  const bool needs_clusters =
      engine_config.mode == core::EngineMode::kEnhanced && engine_config.use_nns;
  const auto clusters =
      needs_clusters ? train_clusters(config.base) : nullptr;

  runtime::RuntimeConfig runtime_config;
  runtime_config.shards = config.base.runtime_shards;
  runtime_config.queue_depth = config.base.runtime_queue_depth;
  runtime_config.engine = engine_config;

  // The hook targets whichever wave's scorer is current; the pointer swap
  // happens under the same mutex as scoring, and only while the runtime
  // is flushed (no verdict can be in flight across a swap).
  std::mutex score_mutex;
  Scorer* scorer = nullptr;
  const TestbedStream* stream = nullptr;
  runtime::ShardedRuntime runtime(
      runtime_config, nullptr,
      [&](const runtime::FlowItem& item, const core::Verdict& verdict) {
        std::lock_guard lock(score_mutex);
        scorer->score(stream->flows[item.tag], verdict);
      });

  // Preload the EIA sets once, before wave 0 -- the operator-configured
  // baseline that persists across the whole horizon (preloads are exempt
  // from aging; only drift-learned entries expire and relearn).
  for (int s = 0; s < config.base.sources; ++s) {
    const auto port = static_cast<core::IngressId>(config.base.first_port + s);
    const auto range = dagflow::eia_range(s, config.base.blocks_per_source);
    for (int b = range.first.index(); b <= range.last.index(); ++b) {
      runtime.add_expected(port, net::SubBlock{b}.prefix());
    }
  }
  if (needs_clusters) runtime.set_clusters(clusters);

  SoakResult out;
  util::TimeMs offset = 0;
  ExperimentConfig wave_config = config.base;
  for (int w = 0; w < config.waves; ++w) {
    for (const SoakResize& resize : config.resizes) {
      if (resize.before_wave == w) runtime.resize(resize.shards);
    }

    // A fresh epoch: new seed (new drift pattern, new attack timing), the
    // same routing-churn schedule (allocation transitions within the
    // wave, per ExperimentConfig::route_change_blocks).
    wave_config.seed =
        config.base.seed + static_cast<std::uint64_t>(w) * 7919ULL;
    const TestbedStream wave_stream = generate_stream(wave_config);
    Scorer wave_scorer(wave_config, wave_stream);
    {
      std::lock_guard lock(score_mutex);
      scorer = &wave_scorer;
      stream = &wave_stream;
    }

    // Exporter restart: record.first/last carry the exporter's rebased
    // uptime (small again each wave), while the submitted arrival clock
    // advances by the accumulated offset. The lifecycle predicate keys on
    // the arrival clock, so rebasing never expires entries spuriously.
    util::TimeMs span = 0;
    for (std::size_t i = 0; i < wave_stream.flows.size(); ++i) {
      const auto& flow = wave_stream.flows[i];
      const auto arrival =
          offset + static_cast<util::TimeMs>(flow.record.last);
      runtime.submit(flow.record, flow.arrival_port, arrival, i);
      span = std::max(span, static_cast<util::TimeMs>(flow.record.last));
    }
    runtime.flush();
    const ExperimentResult scored = wave_scorer.finalize();

    // The idle gap, then the optional eager sweep at the gap's end.
    offset += span + config.wave_gap_ms;
    std::size_t swept = 0;
    if (config.age_sweep_between_waves) swept = runtime.age_sweep(offset);

    const obs::RegistrySnapshot snap = runtime.snapshot();
    SoakWave wave;
    wave.wave = w;
    wave.shards = static_cast<int>(runtime.shard_count());
    wave.detection_rate = scored.detection_rate();
    wave.flow_detection_rate = scored.flow_detection_rate();
    wave.false_positive_rate = scored.false_positive_rate();
    wave.benign_suspect_rate = scored.benign_suspect_rate();
    wave.entries_expired =
        counter_value(snap, "infilter_lifecycle_entries_expired_total");
    wave.entries_relearned =
        counter_value(snap, "infilter_lifecycle_entries_relearned_total");
    wave.swept = swept;
    out.waves.push_back(wave);
  }

  out.metrics = runtime.snapshot();
  out.resizes = counter_value(out.metrics, "infilter_lifecycle_resizes_total");
  out.migrated_entries =
      counter_value(out.metrics, "infilter_lifecycle_migrated_entries_total");
  out.entries_expired =
      counter_value(out.metrics, "infilter_lifecycle_entries_expired_total");
  out.entries_relearned =
      counter_value(out.metrics, "infilter_lifecycle_entries_relearned_total");
  if (const obs::HistogramSnapshot* pause =
          out.metrics.histogram("infilter_lifecycle_resize_pause_us")) {
    out.resize_pause_p99_us = pause->quantile(0.99);
  }
  return out;
}

}  // namespace infilter::sim

// Long-horizon churn soak: the lifecycle subsystem's acceptance harness.
//
// Replays the Section 6 testbed workload as a sequence of "waves" -- each
// wave a freshly seeded epoch of normal traffic, routing churn (the
// allocation transitions of 6.3.3), and attack sets -- through ONE
// persistent ShardedRuntime, separated by long virtual idle gaps. Between
// waves the harness can fire an exact-EIA aging sweep (against the same
// flow-carried virtual clock the detectors use) and live shard-pool
// resizes (ShardedRuntime::resize). Each wave also emulates an exporter
// restart: the NetFlow records' SysUptime-derived first/last rebase to
// ~zero while the collector's arrival clock keeps advancing by the
// accumulated wave offset -- the case the lifecycle idle predicate must
// tolerate (a rebased `now` below last_seen never expires an entry).
//
// Each wave is scored against its own ground truth (sim::Scorer), so the
// result is detection quality as a trajectory over virtual weeks: the
// acceptance bar is that aging plus >= 2 resizes do not decay fused
// detection versus a static-pool run of the same waves, and that the
// benign-false-suspect rate stays within noise of it.

#pragma once

#include <cstdint>
#include <vector>

#include "sim/testbed.h"
#include "util/time.h"

namespace infilter::sim {

/// One scheduled live resize: the pool switches to `shards` worker shards
/// immediately before wave `before_wave` is submitted.
struct SoakResize {
  int before_wave = 0;
  int shards = 1;
};

struct SoakConfig {
  /// Per-wave workload template. runtime_shards must be >= 1 (the soak
  /// exercises the concurrent runtime; the serial path has no pool to
  /// resize). engine.eia.lifecycle selects the aging policy under test.
  ExperimentConfig base;
  int waves = 4;
  /// Virtual idle gap inserted between waves -- what drives idle expiry.
  util::DurationMs wave_gap_ms = util::kDay;
  /// Live resizes, applied in schedule order (>= 2 for the acceptance run;
  /// empty reproduces the static-pool baseline).
  std::vector<SoakResize> resizes;
  /// Fire EiaTable::age_sweep across the pool after each wave's gap. The
  /// sweep is verdict-neutral (runtime.h); on = eager reclamation, off =
  /// purely lazy expiry. Quality must not differ between the two.
  bool age_sweep_between_waves = true;
};

/// Per-wave scorecard plus the lifecycle counters after the wave.
struct SoakWave {
  int wave = 0;
  int shards = 0;  ///< pool size that processed this wave
  double detection_rate = 0;
  double flow_detection_rate = 0;
  double false_positive_rate = 0;
  double benign_suspect_rate = 0;
  std::uint64_t entries_expired = 0;    ///< cumulative, post-wave
  std::uint64_t entries_relearned = 0;  ///< cumulative, post-wave
  std::size_t swept = 0;  ///< entries the explicit post-wave sweep expired
};

struct SoakResult {
  std::vector<SoakWave> waves;
  std::uint64_t resizes = 0;
  std::uint64_t migrated_entries = 0;
  double resize_pause_p99_us = 0;
  std::uint64_t entries_expired = 0;
  std::uint64_t entries_relearned = 0;
  /// Final merged runtime snapshot (includes resize-retired history).
  obs::RegistrySnapshot metrics;

  [[nodiscard]] double min_detection_rate() const;
  [[nodiscard]] double max_false_positive_rate() const;
  [[nodiscard]] double max_benign_suspect_rate() const;
};

/// Runs the soak. Deterministic for a fixed config (wave seeds derive
/// from base.seed; the runtime preserves serial-replay equivalence across
/// every resize boundary).
[[nodiscard]] SoakResult run_soak(const SoakConfig& config);

}  // namespace infilter::sim

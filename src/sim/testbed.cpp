#include "sim/testbed.h"

#include <algorithm>
#include <cassert>
#include <mutex>

namespace infilter::sim {
namespace {

/// Flow count of one attack set at intensity 1 (sum of the generators'
/// base counts, attack flows only). Used to translate the paper's
/// "% of normal volume" knob into a generator intensity.
constexpr double kBaselineAttackSetFlows = 637.0;

std::vector<net::SubBlock> all_used_blocks(const ExperimentConfig& config) {
  std::vector<net::SubBlock> blocks;
  blocks.reserve(static_cast<std::size_t>(config.sources * config.blocks_per_source));
  for (int s = 0; s < config.sources; ++s) {
    const auto range = dagflow::eia_range(s, config.blocks_per_source);
    for (int b = range.first.index(); b <= range.last.index(); ++b) {
      blocks.emplace_back(b);
    }
  }
  return blocks;
}

/// Normal-source pool: the source's current allocation plus the baseline
/// ingress-drift component drawn from every other source's blocks.
dagflow::AddressPool source_pool(const dagflow::SourceAllocation& allocation,
                                 int source, const ExperimentConfig& config) {
  std::vector<net::Prefix> own;
  own.reserve(allocation.normal_set.size() + allocation.change_set.size());
  for (const auto& block : allocation.normal_set) own.push_back(block.prefix());
  for (const auto& block : allocation.change_set) own.push_back(block.prefix());

  if (config.ingress_drift <= 0) {
    return dagflow::AddressPool(
        {{std::move(own), 1.0, config.source_active_slash24s}});
  }
  std::vector<net::Prefix> foreign;
  foreign.reserve(static_cast<std::size_t>((config.sources - 1) *
                                           config.blocks_per_source));
  for (int other = 0; other < config.sources; ++other) {
    if (other == source) continue;
    const auto range = dagflow::eia_range(other, config.blocks_per_source);
    for (int b = range.first.index(); b <= range.last.index(); ++b) {
      foreign.push_back(net::SubBlock{b}.prefix());
    }
  }
  return dagflow::AddressPool(
      {{std::move(own), 1.0 - config.ingress_drift, config.source_active_slash24s},
       {std::move(foreign), config.ingress_drift, 0}});
}

/// Spoofing pool for one attack instance at ingress `attacked`: a few
/// sub-blocks drawn from the other sources' EIA ranges (Section 6.3.1:
/// "source addresses ... chosen from the 900 address blocks corresponding
/// to the EIA sets for Peer AS2 - Peer AS10").
dagflow::AddressPool spoof_pool(int attacked, const ExperimentConfig& config,
                                util::Rng& rng) {
  std::vector<net::SubBlock> blocks;
  const int count = std::max(1, config.spoof_blocks_per_instance);
  for (int i = 0; i < count; ++i) {
    int other = attacked;
    while (other == attacked) {
      other = static_cast<int>(rng.below(static_cast<std::uint64_t>(config.sources)));
    }
    const auto range = dagflow::eia_range(other, config.blocks_per_source);
    blocks.emplace_back(static_cast<int>(
        rng.range(range.first.index(), range.last.index())));
  }
  return dagflow::AddressPool::from_subblocks(blocks);
}

/// Spoofing pool for the TTL-aware kinds: EIA sub-blocks from the whole
/// peer universe (Section 6.3.1: sources "chosen from the ... address
/// blocks corresponding to the EIA sets"), clustered exactly like honest
/// traffic -- the active-/24 subset is a deterministic hash of the prefix
/// (AddressPool::draw), so the forged sources land in the same popular
/// /24s whose hop-count ranges honest traffic established. Half the
/// blocks come from the attacked ingress's *own* EIA range: those flows
/// pass the EIA check and the TTL witness is the only signal, feeding
/// scan/NNS arbitration. The other half come from the other peers'
/// ranges: those flows miss EIA at the attacked ingress AND contradict
/// the range their source's home ingress learned -- the
/// doubly-inconsistent case the engine escalates to a fused
/// high-confidence alert.
dagflow::AddressPool in_eia_pool(int attacked, const ExperimentConfig& config,
                                 util::Rng& rng) {
  const int count = std::max(1, config.spoof_blocks_per_instance);
  const auto pick = [&](int owner) {
    const auto range = dagflow::eia_range(owner, config.blocks_per_source);
    return net::SubBlock{static_cast<int>(
                             rng.range(range.first.index(), range.last.index()))}
        .prefix();
  };
  std::vector<net::Prefix> own;
  for (int i = 0; i < count; ++i) own.push_back(pick(attacked));
  if (config.sources <= 1) {
    return dagflow::AddressPool(
        {{std::move(own), 1.0, config.source_active_slash24s}});
  }
  std::vector<net::Prefix> cross;
  for (int i = 0; i < count; ++i) {
    int owner = attacked;
    while (owner == attacked) {
      owner = static_cast<int>(
          rng.below(static_cast<std::uint64_t>(config.sources)));
    }
    cross.push_back(pick(owner));
  }
  return dagflow::AddressPool(
      {{std::move(own), 0.5, config.source_active_slash24s},
       {std::move(cross), 0.5, config.source_active_slash24s}});
}

}  // namespace

std::shared_ptr<const core::TrainedClusters> train_clusters(
    const ExperimentConfig& config) {
  // Training: a single Dagflow instance replaying a normal trace
  // (Section 6.3, "A training traffic cluster was created by using a
  // single Dagflow instance").
  util::Rng rng{config.seed ^ 0x7e51a11ULL};
  traffic::NormalTrafficModel model;
  const traffic::Trace trace = model.generate(config.training_flows, 0, rng);
  dagflow::Dagflow replayer(
      dagflow::DagflowConfig{.netflow_port = 8999,
                             .sampling_interval = config.netflow_sampling},
      dagflow::AddressPool::from_subblocks(all_used_blocks(config)),
      config.seed ^ 0xdaf1ULL);
  const auto labeled = replayer.replay(trace);
  std::vector<netflow::V5Record> records;
  records.reserve(labeled.size());
  for (const auto& flow : labeled) records.push_back(flow.record);
  return std::make_shared<const core::TrainedClusters>(records, config.engine.cluster,
                                                       config.seed);
}

TestbedStream generate_stream(const ExperimentConfig& config) {
  assert(config.sources > 0);
  assert(config.attacked_ingresses >= 0 && config.attacked_ingresses <= config.sources);
  util::Rng master{config.seed};
  TestbedStream out;
  std::vector<dagflow::LabeledFlow>& stream = out.flows;

  // One shared path model stamps every record's TTL in the TTL scenario.
  // Stamping is pure hashing (no RNG draws), so the stream is identical to
  // the non-TTL stream in every field but ttl.
  const hopcount::PathModel path_model(
      hopcount::PathModelConfig{.seed = config.seed ^ 0x7717a11ULL});
  const hopcount::PathModel* stamper =
      config.ttl_scenario ? &path_model : nullptr;

  // Normal traffic: one Dagflow per source, transitioning through the
  // route-change allocations simultaneously (Section 6.3.3).
  traffic::NormalTrafficModel model;
  const int allocation_count = std::max(1, config.allocations);
  for (int s = 0; s < config.sources; ++s) {
    util::Rng source_rng = master.fork(0x100 + static_cast<std::uint64_t>(s));
    traffic::Trace trace =
        model.generate(config.normal_flows_per_source, 0, source_rng);
    dagflow::Dagflow replayer(
        dagflow::DagflowConfig{
            .netflow_port = static_cast<std::uint16_t>(config.first_port + s),
            .sampling_interval = config.netflow_sampling,
            .path_model = stamper},
        dagflow::AddressPool{}, config.seed ^ (0xd0f1ULL + static_cast<std::uint64_t>(s)));

    const std::size_t per_chunk =
        (trace.flows.size() + allocation_count - 1) / allocation_count;
    for (int a = 0; a < allocation_count; ++a) {
      const auto allocation = dagflow::make_allocation(
          config.sources, config.blocks_per_source, config.route_change_blocks, a);
      replayer.set_pool(
          source_pool(allocation[static_cast<std::size_t>(s)], s, config));
      const std::size_t begin = static_cast<std::size_t>(a) * per_chunk;
      if (begin >= trace.flows.size()) break;
      const std::size_t end = std::min(trace.flows.size(), begin + per_chunk);
      traffic::Trace chunk;
      chunk.flows.assign(trace.flows.begin() + static_cast<std::ptrdiff_t>(begin),
                         trace.flows.begin() + static_cast<std::ptrdiff_t>(end));
      auto labeled = replayer.replay(chunk);
      stream.insert(stream.end(), labeled.begin(), labeled.end());
    }
  }

  // The normal run length bounds where attacks can start.
  const double normal_span_ms =
      static_cast<double>(config.normal_flows_per_source) * 25.0;

  // Attack sets (Sections 6.3.1/6.3.2): one instance of each of the 12
  // attacks per attacked ingress, scaled so the attack-flow volume is the
  // configured fraction of the ingress's normal volume. The TTL scenario
  // appends the two TTL-aware kinds at the same intensity.
  const double target_flows =
      config.attack_volume * static_cast<double>(config.normal_flows_per_source);
  traffic::AttackConfig attack_config;
  attack_config.intensity = target_flows / kBaselineAttackSetFlows;
  attack_config.companion_fraction = config.companion_fraction;

  // Shared per-kind launch times for the synchronized stress replicas.
  // A single attack set (6.3.1) is twelve tools run one after another, so
  // its instances stagger across the run; the stress test (6.3.2) fires
  // the *replicated* set at every border router at once -- one replay
  // script per BR, started together -- so the whole set lands as one
  // storm and the ten replicas of each tool overlap in the shared
  // scan-analysis buffer.
  std::array<util::TimeMs, traffic::kAttackKindCount> shared_origin{};
  {
    util::Rng origin_rng = master.fork(0x300);
    const bool storm =
        config.synchronized_attack_sets && config.attacked_ingresses > 1;
    const double window = storm ? 10000.0 : 0.9 * normal_span_ms;
    const double start = storm ? origin_rng.uniform() * (0.9 * normal_span_ms - window)
                               : 0.0;
    for (auto& origin : shared_origin) {
      origin = static_cast<util::TimeMs>(start + origin_rng.uniform() * window);
    }
  }

  // The TTL kinds launch last so the standard set draws exactly the same
  // RNG stream whether or not the scenario is on (TTL stamping itself
  // consumes no draws).
  const int launched_kinds = config.ttl_scenario
                                 ? traffic::kAttackKindCount
                                 : traffic::kStandardAttackKindCount;
  for (int a = 0; a < config.attacked_ingresses; ++a) {
    util::Rng attack_rng = master.fork(0x200 + static_cast<std::uint64_t>(a));
    const auto port = static_cast<std::uint16_t>(config.first_port + a);
    for (int k = 0; k < launched_kinds; ++k) {
      const auto kind = static_cast<traffic::AttackKind>(k);
      const bool in_eia = k >= traffic::kStandardAttackKindCount;
      const auto origin =
          config.synchronized_attack_sets
              ? shared_origin[static_cast<std::size_t>(k)] + attack_rng.below(2000)
              : static_cast<util::TimeMs>(attack_rng.uniform() * 0.9 * normal_span_ms);
      const traffic::Trace trace =
          traffic::generate_attack(kind, attack_config, origin, attack_rng);
      dagflow::DagflowConfig replay_config{
          .netflow_port = port,
          .sampling_interval = config.netflow_sampling,
          .path_model = stamper};
      if (stamper != nullptr) {
        // Each tool instance sends over its own path: a unique, non-zero
        // salt per (ingress, kind).
        replay_config.attacker_path_salt =
            0xa77acc00ULL + static_cast<std::uint64_t>(a) * 64 +
            static_cast<std::uint64_t>(k) + 1;
        if (kind == traffic::AttackKind::kTtlJitterFlood) {
          replay_config.attacker_ttl_jitter = 10;
        }
      }
      dagflow::Dagflow replayer(replay_config,
                                in_eia ? in_eia_pool(a, config, attack_rng)
                                       : spoof_pool(a, config, attack_rng),
                                attack_rng());
      auto labeled = replayer.replay(trace);
      stream.insert(stream.end(), labeled.begin(), labeled.end());
      out.instances.emplace_back(a, kind);
    }
  }

  // Flows reach the collector in export order.
  std::stable_sort(stream.begin(), stream.end(),
                   [](const dagflow::LabeledFlow& x, const dagflow::LabeledFlow& y) {
                     return x.record.last < y.record.last;
                   });
  return out;
}

Scorer::Scorer(const ExperimentConfig& config, const TestbedStream& stream)
    : first_port_(config.first_port) {
  for (const auto& [ingress, kind] : stream.instances) {
    instances_[InstanceKey{ingress, kind}] = InstanceState{};
  }
}

void Scorer::score(const dagflow::LabeledFlow& flow,
                   const core::Verdict& verdict) {
  if (verdict.attack) {
    switch (verdict.stage) {
      case alert::DetectionStage::kEiaMismatch: ++result_.alerts_eia; break;
      case alert::DetectionStage::kScanAnalysis: ++result_.alerts_scan; break;
      case alert::DetectionStage::kNnsDistance: ++result_.alerts_nns; break;
      case alert::DetectionStage::kHopCountFusion: ++result_.alerts_fused; break;
    }
  }
  if (flow.attack) {
    ++result_.attack_flows;
    auto& instance = instances_[InstanceKey{
        flow.arrival_port - first_port_, flow.attack_kind}];
    instance.first_flow = std::min(
        instance.first_flow, static_cast<util::TimeMs>(flow.record.first));
    if (verdict.attack) {
      instance.detected = true;
      instance.first_alert = std::min(
          instance.first_alert, static_cast<util::TimeMs>(flow.record.last));
      ++result_.detected_attack_flows;
    }
  } else {
    ++result_.benign_flows;
    if (verdict.suspect) ++result_.benign_suspects;
    if (verdict.attack) ++result_.false_positives;
  }
}

ExperimentResult Scorer::finalize() {
  ExperimentResult result = result_;
  result.attack_instances = static_cast<int>(instances_.size());
  double latency_sum = 0;
  for (const auto& [key, instance] : instances_) {
    const auto k = static_cast<std::size_t>(key.kind);
    result.per_kind[k].first += 1;
    if (instance.detected) {
      ++result.detected_instances;
      result.per_kind[k].second += 1;
      latency_sum += instance.first_alert >= instance.first_flow
                         ? static_cast<double>(instance.first_alert -
                                               instance.first_flow)
                         : 0.0;
    }
  }
  if (result.detected_instances > 0) {
    result.mean_detection_latency_ms =
        latency_sum / static_cast<double>(result.detected_instances);
  }
  return result;
}

ExperimentResult run_experiment(const ExperimentConfig& config,
                                std::shared_ptr<const core::TrainedClusters> clusters) {
  TestbedStream stream = generate_stream(config);

  core::EngineConfig engine_config = config.engine;
  engine_config.seed = config.seed ^ 0xe191eULL;
  const bool needs_clusters =
      engine_config.mode == core::EngineMode::kEnhanced && engine_config.use_nns;
  if (needs_clusters && !clusters) clusters = train_clusters(config);

  Scorer scorer(config, stream);
  ExperimentResult result;

  if (config.runtime_shards > 0) {
    // Concurrent replay: N shard engines behind bounded rings. Scoring
    // happens on the worker threads, joined to ground truth through the
    // FlowItem tag (a stream index) under one mutex -- the engines stay
    // lock-free, only the accounting serializes.
    runtime::RuntimeConfig runtime_config;
    runtime_config.shards = config.runtime_shards;
    runtime_config.queue_depth = config.runtime_queue_depth;
    runtime_config.engine = engine_config;
    std::mutex score_mutex;
    runtime::ShardedRuntime runtime(
        runtime_config, nullptr,
        [&](const runtime::FlowItem& item, const core::Verdict& verdict) {
          std::lock_guard lock(score_mutex);
          scorer.score(stream.flows[item.tag], verdict);
        });
    for (int s = 0; s < config.sources; ++s) {
      const auto port = static_cast<core::IngressId>(config.first_port + s);
      const auto range = dagflow::eia_range(s, config.blocks_per_source);
      for (int b = range.first.index(); b <= range.last.index(); ++b) {
        runtime.add_expected(port, net::SubBlock{b}.prefix());
      }
    }
    if (needs_clusters) runtime.set_clusters(clusters);
    for (std::size_t i = 0; i < stream.flows.size(); ++i) {
      const auto& flow = stream.flows[i];
      runtime.submit(flow.record, flow.arrival_port, flow.record.last, i);
    }
    runtime.flush();
    result = scorer.finalize();
    result.metrics = runtime.snapshot();
    return result;
  }

  // Serial replay (the paper's prototype). The run-local registry collects
  // the pipeline metrics; it is snapshotted into the result before the
  // engine (whose callbacks it holds) goes away.
  obs::Registry registry;
  if (engine_config.registry == nullptr) engine_config.registry = &registry;
  core::InFilterEngine engine(engine_config);
  for (int s = 0; s < config.sources; ++s) {
    const auto port = static_cast<core::IngressId>(config.first_port + s);
    const auto range = dagflow::eia_range(s, config.blocks_per_source);
    for (int b = range.first.index(); b <= range.last.index(); ++b) {
      engine.add_expected(port, net::SubBlock{b}.prefix());
    }
  }
  if (needs_clusters) engine.set_clusters(clusters);

  // Replay through the batch hot path in fixed-size chunks (verdicts are
  // bit-identical to per-flow process(); tests/test_batch.cpp pins this).
  constexpr std::size_t kReplayBatch = 256;
  std::vector<core::FlowInput> inputs(kReplayBatch);
  std::vector<core::Verdict> verdicts(kReplayBatch);
  for (std::size_t begin = 0; begin < stream.flows.size(); begin += kReplayBatch) {
    const std::size_t n = std::min(kReplayBatch, stream.flows.size() - begin);
    for (std::size_t i = 0; i < n; ++i) {
      const auto& flow = stream.flows[begin + i];
      inputs[i] = core::FlowInput{flow.record, flow.arrival_port, flow.record.last};
    }
    engine.process_batch(std::span<const core::FlowInput>(inputs.data(), n),
                         std::span<core::Verdict>(verdicts.data(), n));
    for (std::size_t i = 0; i < n; ++i) {
      const auto& flow = stream.flows[begin + i];
      scorer.score(flow, verdicts[i]);
      // Ground truth feed for infilter_eia_bloom_false_suspects_total:
      // only the testbed knows this suspect was benign (engine.h).
      if (!flow.attack && verdicts[i].suspect) {
        engine.note_ground_truth_benign_suspect();
      }
    }
  }
  result = scorer.finalize();
  result.metrics = engine.registry().snapshot();
  return result;
}

std::shared_ptr<const core::TrainedClusters> ClusterCache::get(std::uint64_t seed) {
  auto it = cache_.find(seed);
  if (it == cache_.end()) {
    ExperimentConfig config = base_;
    config.seed = seed;
    it = cache_.emplace(seed, train_clusters(config)).first;
  }
  return it->second;
}

AveragedResult run_averaged(ExperimentConfig config, int runs, ClusterCache* cache) {
  AveragedResult out;
  const std::uint64_t base_seed = config.seed;
  for (int run = 0; run < runs; ++run) {
    config.seed = base_seed + static_cast<std::uint64_t>(run) * 1000;
    const auto result = run_experiment(
        config, cache != nullptr ? cache->get(config.seed) : nullptr);
    out.detection_rate += result.detection_rate();
    out.flow_detection_rate += result.flow_detection_rate();
    out.false_positive_rate += result.false_positive_rate();
    ++out.runs;
  }
  if (out.runs > 0) {
    out.detection_rate /= out.runs;
    out.flow_detection_rate /= out.runs;
    out.false_positive_rate /= out.runs;
  }
  return out;
}

}  // namespace infilter::sim

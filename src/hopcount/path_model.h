// Deterministic TTL path model for the simulated testbed.
//
// The testbed has no real forwarding plane, so observed TTLs are produced
// by a model of the one property the detector keys on: a source network
// reaches the protected AS over a path of stable length, while a spoofer
// sits on a *different* path from the networks it forges. Each source /24
// gets a stable (initial TTL, hop count) pair hashed from its prefix;
// each attack instance gets its own attacker-side pair. Per-flow jitter
// of +/-1 hop models load-shared links, and a wider, attacker-chosen
// jitter models deliberate TTL randomization (the evasion attack kind).
//
// Everything is a pure hash of (seed, /24 or instance, flow salt) -- no
// shared RNG stream is consumed, so stamping TTLs onto a replay leaves
// every other draw (source selection, sampling) bit-identical.

#pragma once

#include <cstdint>

#include "net/ipv4.h"

namespace infilter::hopcount {

struct PathModelConfig {
  std::uint64_t seed = 0x7717a11;
  /// Honest source networks sit min..max hops from the collector.
  int min_hops = 4;
  int max_hops = 14;
  /// Attack hosts sit farther out: their true path differs from the paths
  /// of the networks they forge, which is precisely the TTL witness.
  int attacker_min_hops = 18;
  int attacker_max_hops = 30;
};

class PathModel {
 public:
  explicit PathModel(PathModelConfig config = {});

  /// Stable hop count of `source`'s /24 (no jitter).
  [[nodiscard]] int source_hops(net::IPv4Address source) const;

  /// Observed TTL of a genuine packet from `source`: the /24's initial
  /// TTL (a stable pick from {64, 128, 255}) minus its hop count, with a
  /// per-flow jitter of -1/0/+1 derived from `flow_salt`.
  [[nodiscard]] std::uint8_t source_ttl(net::IPv4Address source,
                                        std::uint64_t flow_salt) const;

  /// Stable hop count of attack instance `instance_salt`'s true path.
  [[nodiscard]] int attacker_hops(std::uint64_t instance_salt) const;

  /// Observed TTL of a packet emitted by attack instance `instance_salt`,
  /// independent of whatever source it forges. `jitter` > 0 spreads
  /// per-flow hop counts uniformly over +/-jitter around the true path
  /// (TTL-jittered evasion); 0 models a plain spoofing tool.
  [[nodiscard]] std::uint8_t attacker_ttl(std::uint64_t instance_salt,
                                          std::uint64_t flow_salt,
                                          int jitter = 0) const;

  [[nodiscard]] const PathModelConfig& config() const { return config_; }

 private:
  PathModelConfig config_;
};

}  // namespace infilter::hopcount

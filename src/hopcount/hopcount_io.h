// Hop-count table persistence, alongside core/eia_io.
//
// The learned TTL ranges survive restarts the same way the EIA sets do:
// as auditable text. Unlike the EIA format (which predates versioning and
// stays as-is), this format opens with a mandatory magic/version line so
// a future layout change is rejected loudly instead of half-parsed:
//
//     infilter-hopcount v1
//     # comment
//     ingress 9001
//       10.1.2.0/24 3 5 12 0 123456
//
// Each entry line is: <source /24> <min_hops> <max_hops> <count>
// <out_streak> <last_seen_ms>. Every field of the in-memory entry is
// persisted, so a table that is exported and re-imported continues
// learning -- and classifying -- exactly where the original left off.

#pragma once

#include <string>
#include <string_view>

#include "hopcount/hopcount.h"
#include "util/result.h"

namespace infilter::hopcount {

/// The mandatory first line of the format.
inline constexpr std::string_view kHopCountMagic = "infilter-hopcount v1";

/// Renders the table in the text format above.
[[nodiscard]] std::string export_hopcount(const HopCountTable& table);

/// Parses the text format into a fresh table using `config` for the
/// classification parameters. Fails with a line number on: missing or
/// mismatched magic/version line, unknown directives, entries before any
/// ingress stanza, non-/24 prefixes, malformed fields.
[[nodiscard]] util::Result<HopCountTable> import_hopcount(
    std::string_view text, HopCountConfig config = {});

}  // namespace infilter::hopcount

#include "hopcount/hopcount.h"

#include <algorithm>

#include "lifecycle/lifecycle.h"

namespace infilter::hopcount {

const char* ttl_class_name(TtlClass c) {
  switch (c) {
    case TtlClass::kUnknown:
      return "unknown";
    case TtlClass::kConsistent:
      return "consistent";
    case TtlClass::kMiss:
      return "miss";
  }
  return "?";
}

HopCountTable::HopCountTable(HopCountConfig config) : config_(config) {}

std::uint64_t HopCountTable::key_of(IngressId ingress, net::IPv4Address source) {
  return (std::uint64_t{ingress} << 32) |
         net::to_slash24(source).address().value();
}

bool HopCountTable::stale(const Entry& entry, util::TimeMs now) const {
  // Shared idle-expiry predicate (lifecycle/lifecycle.h): the hop-count
  // decay clock and the EIA entry-aging clock are the same flow-carried
  // virtual time, so the testbed drives both deterministically.
  return config_.decay_ms != 0 &&
         lifecycle::idle_expired(entry.last_seen, now, config_.decay_ms);
}

TtlClass HopCountTable::classify(IngressId ingress, net::IPv4Address source,
                                 std::uint8_t ttl, util::TimeMs now) const {
  ++stats_.classified;
  const int hops = hops_from_ttl(ttl);
  if (hops < 0) {
    ++stats_.unknown;
    return TtlClass::kUnknown;
  }
  const auto it = table_.find(key_of(ingress, source));
  if (it == table_.end() || it->second.count < config_.learn_threshold ||
      stale(it->second, now)) {
    ++stats_.unknown;
    return TtlClass::kUnknown;
  }
  const Entry& entry = it->second;
  if (hops >= int{entry.min_hops} - config_.tolerance &&
      hops <= int{entry.max_hops} + config_.tolerance) {
    ++stats_.consistent;
    return TtlClass::kConsistent;
  }
  ++stats_.misses;
  return TtlClass::kMiss;
}

HopCountTable::Observe HopCountTable::observe(IngressId ingress,
                                              net::IPv4Address source,
                                              std::uint8_t ttl,
                                              util::TimeMs now) {
  const int hops = hops_from_ttl(ttl);
  if (hops < 0) return Observe::kIgnored;

  const auto key = key_of(ingress, source);
  auto it = table_.find(key);
  if (it == table_.end()) {
    if (table_.size() >= config_.max_entries) return Observe::kIgnored;
    it = table_.emplace(key, Entry{}).first;
    it->second.count = 0;
  } else if (stale(it->second, now)) {
    // Idle past the decay deadline: the old range no longer describes the
    // path; start learning over from this observation.
    it->second = Entry{};
    ++stats_.expired_entries;
  }

  ++stats_.observations;
  Entry& entry = it->second;
  entry.last_seen = now;
  const auto hops8 = static_cast<std::uint8_t>(std::clamp(hops, 0, 255));

  if (entry.count < config_.learn_threshold) {
    if (entry.count == 0) {
      entry.min_hops = entry.max_hops = hops8;
    } else {
      entry.min_hops = std::min(entry.min_hops, hops8);
      entry.max_hops = std::max(entry.max_hops, hops8);
    }
    if (++entry.count == config_.learn_threshold) ++stats_.established_keys;
    return Observe::kLearning;
  }

  if (hops >= int{entry.min_hops} - config_.tolerance &&
      hops <= int{entry.max_hops} + config_.tolerance) {
    entry.out_streak = 0;
    return Observe::kInRange;
  }
  if (++entry.out_streak >= config_.relearn_threshold) {
    entry = Entry{hops8, hops8, 1, 0, now};
    ++stats_.relearned_ranges;
    return Observe::kRelearned;
  }
  return Observe::kOutOfRange;
}

void HopCountTable::restore(IngressId ingress, net::IPv4Address source,
                            const Entry& entry) {
  table_[key_of(ingress, source)] = entry;
}

std::vector<HopCountTable::ExportedEntry> HopCountTable::entries() const {
  std::vector<ExportedEntry> out;
  out.reserve(table_.size());
  for (const auto& [key, entry] : table_) {
    out.push_back(ExportedEntry{
        static_cast<IngressId>(key >> 32),
        net::Prefix{net::IPv4Address{static_cast<std::uint32_t>(key)}, 24},
        entry});
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.ingress != b.ingress ? a.ingress < b.ingress
                                  : a.slash24.address() < b.slash24.address();
  });
  return out;
}

HopCountAnalysis::HopCountAnalysis(HopCountConfig config) : table_(config) {}

TtlClass HopCountAnalysis::analyze(IngressId ingress, net::IPv4Address source,
                                   std::uint8_t ttl, util::TimeMs now,
                                   bool eia_hit) {
  const TtlClass result = table_.classify(ingress, source, ttl, now);
  // Learn only from flows the EIA sets vouch for, and never from a flow
  // that itself looks like a forged path -- a spoofer must not be able to
  // drag the range toward its own hop count.
  if (eia_hit && result != TtlClass::kMiss) {
    (void)table_.observe(ingress, source, ttl, now);
  }
  return result;
}

}  // namespace infilter::hopcount

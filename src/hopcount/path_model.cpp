#include "hopcount/path_model.h"

#include <algorithm>

#include "util/rng.h"

namespace infilter::hopcount {
namespace {

/// A 64-bit hash of (seed, salt) with SplitMix64 -- one value per call
/// site, no shared stream.
std::uint64_t mix(std::uint64_t seed, std::uint64_t salt) {
  return util::SplitMix64{seed ^ (salt * 0x9e3779b97f4a7c15ULL)}.next();
}

/// The common initial TTLs honest stacks send with.
constexpr std::uint8_t kInitials[] = {64, 128, 255};

std::uint8_t ttl_of(std::uint8_t initial, int hops) {
  return static_cast<std::uint8_t>(
      std::max(1, int{initial} - std::max(0, hops)));
}

}  // namespace

PathModel::PathModel(PathModelConfig config) : config_(config) {}

int PathModel::source_hops(net::IPv4Address source) const {
  const auto slash24 = source.value() & net::Prefix::mask_bits(24);
  const auto h = mix(config_.seed, slash24);
  const int span = config_.max_hops - config_.min_hops + 1;
  return config_.min_hops + static_cast<int>(h % static_cast<unsigned>(span));
}

std::uint8_t PathModel::source_ttl(net::IPv4Address source,
                                   std::uint64_t flow_salt) const {
  const auto slash24 = source.value() & net::Prefix::mask_bits(24);
  const auto h = mix(config_.seed, slash24);
  const auto initial = kInitials[(h >> 32) % 3];
  // Per-flow jitter of -1/0/+1 hops: load-shared links inside the default
  // tolerance window, never enough to cross it.
  const auto j = mix(config_.seed ^ 0x5a17, slash24 ^ flow_salt);
  const int hops = source_hops(source) + static_cast<int>(j % 3) - 1;
  return ttl_of(initial, hops);
}

int PathModel::attacker_hops(std::uint64_t instance_salt) const {
  const auto h = mix(config_.seed ^ 0xa77ac3, instance_salt);
  const int span = config_.attacker_max_hops - config_.attacker_min_hops + 1;
  return config_.attacker_min_hops +
         static_cast<int>(h % static_cast<unsigned>(span));
}

std::uint8_t PathModel::attacker_ttl(std::uint64_t instance_salt,
                                     std::uint64_t flow_salt,
                                     int jitter) const {
  const auto h = mix(config_.seed ^ 0xa77ac3, instance_salt);
  const auto initial = kInitials[(h >> 32) % 3];
  int hops = attacker_hops(instance_salt);
  if (jitter > 0) {
    const auto j = mix(config_.seed ^ 0x1177e4, instance_salt ^ flow_salt);
    hops += static_cast<int>(j % (2 * static_cast<unsigned>(jitter) + 1)) - jitter;
  }
  return ttl_of(initial, hops);
}

}  // namespace infilter::hopcount

#include "hopcount/hopcount_io.h"

#include <charconv>
#include <optional>
#include <sstream>
#include <vector>

namespace infilter::hopcount {
namespace {

std::string_view trim(std::string_view text) {
  while (!text.empty() && (text.front() == ' ' || text.front() == '\t')) {
    text.remove_prefix(1);
  }
  while (!text.empty() &&
         (text.back() == ' ' || text.back() == '\t' || text.back() == '\r')) {
    text.remove_suffix(1);
  }
  return text;
}

/// Splits a line on runs of spaces/tabs.
std::vector<std::string_view> fields_of(std::string_view line) {
  std::vector<std::string_view> fields;
  std::size_t at = 0;
  while (at < line.size()) {
    while (at < line.size() && (line[at] == ' ' || line[at] == '\t')) ++at;
    std::size_t end = at;
    while (end < line.size() && line[end] != ' ' && line[end] != '\t') ++end;
    if (end > at) fields.push_back(line.substr(at, end - at));
    at = end;
  }
  return fields;
}

template <typename T>
std::optional<T> parse_number(std::string_view text) {
  T value{};
  const auto end = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(text.data(), end, value);
  if (ec != std::errc{} || ptr != end) return std::nullopt;
  return value;
}

util::Error at_line(int line_number, const std::string& what) {
  return util::Error{"line " + std::to_string(line_number) + ": " + what};
}

}  // namespace

std::string export_hopcount(const HopCountTable& table) {
  std::ostringstream out;
  out << kHopCountMagic << "\n";
  out << "# ingress <id> followed by: <src /24> <min> <max> <count> "
         "<out_streak> <last_seen_ms>\n";
  std::optional<IngressId> current;
  for (const auto& exported : table.entries()) {
    if (!current.has_value() || *current != exported.ingress) {
      current = exported.ingress;
      out << "ingress " << *current << "\n";
    }
    const auto& e = exported.entry;
    out << "  " << exported.slash24.to_string() << " " << int{e.min_hops}
        << " " << int{e.max_hops} << " " << e.count << " " << e.out_streak
        << " " << e.last_seen << "\n";
  }
  return std::move(out).str();
}

util::Result<HopCountTable> import_hopcount(std::string_view text,
                                            HopCountConfig config) {
  HopCountTable table(config);
  std::optional<IngressId> current;
  bool magic_seen = false;
  int line_number = 0;

  std::size_t at = 0;
  while (at <= text.size()) {
    const auto newline = text.find('\n', at);
    const auto raw = text.substr(
        at, newline == std::string_view::npos ? text.size() - at : newline - at);
    at = newline == std::string_view::npos ? text.size() + 1 : newline + 1;
    ++line_number;

    const auto line = trim(raw);
    if (!magic_seen) {
      // The magic/version line must come before anything else, comments
      // included -- a truncated or foreign file fails here, not later.
      if (line.empty()) continue;
      if (line != kHopCountMagic) {
        return at_line(line_number, "expected '" + std::string(kHopCountMagic) +
                                        "', got '" + std::string(line) + "'");
      }
      magic_seen = true;
      continue;
    }
    if (line.empty() || line.front() == '#') continue;

    if (line.rfind("ingress", 0) == 0) {
      const auto id = parse_number<unsigned>(trim(line.substr(7)));
      if (!id.has_value() || *id > 0xFFFF) {
        return at_line(line_number, "bad ingress id '" +
                                        std::string(trim(line.substr(7))) + "'");
      }
      current = static_cast<IngressId>(*id);
      continue;
    }

    const auto fields = fields_of(line);
    if (fields.size() != 6) {
      return at_line(line_number, "expected 6 fields, got " +
                                      std::to_string(fields.size()));
    }
    const auto prefix = net::Prefix::parse(fields[0]);
    if (!prefix.has_value() || prefix->length() != 24) {
      return at_line(line_number,
                     "bad /24 prefix '" + std::string(fields[0]) + "'");
    }
    if (!current.has_value()) {
      return at_line(line_number, "entry before any 'ingress' stanza");
    }
    const auto min_hops = parse_number<unsigned>(fields[1]);
    const auto max_hops = parse_number<unsigned>(fields[2]);
    const auto count = parse_number<int>(fields[3]);
    const auto out_streak = parse_number<int>(fields[4]);
    const auto last_seen = parse_number<std::uint64_t>(fields[5]);
    if (!min_hops.has_value() || !max_hops.has_value() || *min_hops > 255 ||
        *max_hops > 255 || *min_hops > *max_hops || !count.has_value() ||
        *count < 0 || !out_streak.has_value() || *out_streak < 0 ||
        !last_seen.has_value()) {
      return at_line(line_number, "bad entry fields '" + std::string(line) + "'");
    }
    table.restore(*current, prefix->address(),
                  HopCountTable::Entry{static_cast<std::uint8_t>(*min_hops),
                                       static_cast<std::uint8_t>(*max_hops),
                                       *count, *out_streak, *last_seen});
  }
  if (!magic_seen) {
    return util::Error{"missing '" + std::string(kHopCountMagic) +
                       "' header line"};
  }
  return table;
}

}  // namespace infilter::hopcount

// TTL hop-count detection -- a second spoofing witness, independent of EIA.
//
// InFilter's hypothesis is that traffic from a given source reaches the
// protected AS over a stable path. The Expected-IP-Address sets test one
// consequence (the ingress point is stable); the IP TTL tests another: the
// *path length* is stable too. Scheitle et al. ("Carrier-Grade Anomaly
// Detection Using Time-to-Live Header Information") show per-source TTL
// stability survives at carrier scale, and SMap documents that real
// spoofers routinely forge addresses that are perfectly valid at the
// ingress they attack -- the one attack class the EIA sets cannot see.
//
// A HopCountTable learns, per (ingress, source /24), the expected range of
// hop counts. The hop count is recovered from the observed TTL by the
// standard initial-TTL inference: operating systems send with an initial
// TTL of 32, 64, 128 or 255, so the smallest of those >= the observed TTL
// is the likely initial value and (initial - observed) the path length.
// Learning mirrors the EIA table's learn/detect phases: a key classifies
// flows only after learn_threshold trusted observations, and idle entries
// decay so a genuine route change re-learns instead of alarming forever.

#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "net/ipv4.h"
#include "util/time.h"

namespace infilter::hopcount {

/// Identifies an ingress point (Peer AS / Border Router); numerically
/// identical to core::IngressId -- hopcount sits below core in the layer
/// order, so the alias is repeated here rather than included.
using IngressId = std::uint16_t;

/// Per-flow TTL classification.
enum class TtlClass : std::uint8_t {
  kUnknown,     ///< no TTL on the record, or the key has no established range
  kConsistent,  ///< hop count within the learned tolerance window
  kMiss,        ///< hop count outside the window: path-length mismatch
};

[[nodiscard]] const char* ttl_class_name(TtlClass c);

/// The likely initial TTL for an observed value: the smallest of the
/// common initial TTLs {32, 64, 128, 255} that is >= observed. 0 (no TTL
/// recorded) maps to 0.
[[nodiscard]] constexpr std::uint8_t infer_initial_ttl(std::uint8_t observed) {
  if (observed == 0) return 0;
  if (observed <= 32) return 32;
  if (observed <= 64) return 64;
  if (observed <= 128) return 128;
  return 255;
}

/// Hop count recovered from an observed TTL, or -1 when no TTL was
/// recorded (observed == 0).
[[nodiscard]] constexpr int hops_from_ttl(std::uint8_t observed) {
  return observed == 0 ? -1 : infer_initial_ttl(observed) - observed;
}

struct HopCountConfig {
  /// Half-width of the acceptance window around the learned hop-count
  /// range: a flow is consistent iff its hop count lands in
  /// [min - tolerance, max + tolerance]. Absorbs load-shared paths and
  /// transient reroutes of a hop or two.
  int tolerance = 2;
  /// Trusted observations of an (ingress, source /24) key before its
  /// range is established and flows classify (mirrors the EIA table's
  /// learn threshold); until then the key classifies as unknown.
  int learn_threshold = 5;
  /// Consecutive out-of-window observations fed to observe() before the
  /// range is re-learned around the new path length. Only reachable when
  /// the caller chooses to learn from miss flows; the engine does not, so
  /// under the default policy adaptation happens via decay_ms instead.
  int relearn_threshold = 5;
  /// Entries idle longer than this are expired and re-learned from the
  /// next observation -- the time-decay that lets a genuine route change
  /// converge instead of alarming forever. 0 disables decay.
  util::DurationMs decay_ms = 10 * util::kMinute;
  /// Bound on the table; spoofed floods from diffuse sources must not
  /// grow it without limit. When full, new keys are not tracked.
  std::size_t max_entries = 1 << 20;
};

/// Lifetime counters of one HopCountTable (observability surface).
struct HopCountStats {
  std::uint64_t classified = 0;        ///< classify() calls
  std::uint64_t consistent = 0;
  std::uint64_t misses = 0;
  std::uint64_t unknown = 0;
  std::uint64_t observations = 0;      ///< observe() calls that touched state
  std::uint64_t established_keys = 0;  ///< keys that completed learning
  std::uint64_t relearned_ranges = 0;  ///< ranges reset by the relearn rule
  std::uint64_t expired_entries = 0;   ///< entries reset after decay_ms idle
};

/// Learned per-(ingress, source /24) expected hop-count ranges.
class HopCountTable {
 public:
  /// What observe() did with the observation.
  enum class Observe : std::uint8_t {
    kIgnored,    ///< no TTL on the record, or the table is full
    kLearning,   ///< folded into a range still below learn_threshold
    kInRange,    ///< matched an established range (refreshes the entry)
    kOutOfRange, ///< outside the window of an established range
    kRelearned,  ///< out-of-window streak hit relearn_threshold; range reset
  };

  /// Serialization image of one learned range (hopcount_io).
  struct Entry {
    std::uint8_t min_hops = 0;
    std::uint8_t max_hops = 0;
    int count = 0;       ///< observations folded in; >= learn_threshold = established
    int out_streak = 0;  ///< consecutive out-of-window observations
    util::TimeMs last_seen = 0;
  };
  struct ExportedEntry {
    IngressId ingress = 0;
    net::Prefix slash24;
    Entry entry;
  };

  explicit HopCountTable(HopCountConfig config = {});

  /// Classifies `source`'s TTL at `ingress` against the learned range.
  /// Read-only with respect to the ranges (stats are counted); an entry
  /// past its decay deadline classifies as unknown.
  [[nodiscard]] TtlClass classify(IngressId ingress, net::IPv4Address source,
                                  std::uint8_t ttl, util::TimeMs now) const;

  /// Folds one trusted observation into the key's range. Callers decide
  /// what "trusted" means -- the engine only feeds flows the EIA sets
  /// vouch for and that did not themselves classify as a miss, so a
  /// spoofer cannot poison the ranges it is being checked against.
  Observe observe(IngressId ingress, net::IPv4Address source, std::uint8_t ttl,
                  util::TimeMs now);

  /// Restores one entry verbatim (import path); replaces any existing
  /// entry for the key. `slash24` is canonicalized to its /24.
  void restore(IngressId ingress, net::IPv4Address source, const Entry& entry);

  /// Every entry, sorted by (ingress, /24) for deterministic export.
  [[nodiscard]] std::vector<ExportedEntry> entries() const;

  [[nodiscard]] std::size_t size() const { return table_.size(); }
  [[nodiscard]] const HopCountConfig& config() const { return config_; }
  [[nodiscard]] const HopCountStats& stats() const { return stats_; }

 private:
  static std::uint64_t key_of(IngressId ingress, net::IPv4Address source);
  [[nodiscard]] bool stale(const Entry& entry, util::TimeMs now) const;

  HopCountConfig config_;
  /// Mutable: classify() is logically const but counts its calls.
  mutable HopCountStats stats_;
  /// (ingress << 32 | source /24) -> learned range.
  std::unordered_map<std::uint64_t, Entry> table_;
};

/// The engine-facing analysis stage: classify every flow, learn only from
/// flows the EIA sets vouch for.
class HopCountAnalysis {
 public:
  explicit HopCountAnalysis(HopCountConfig config = {});

  /// Classifies the flow; when `eia_hit` and the flow is not itself a
  /// miss, its TTL is folded into the learned range. EIA-miss flows and
  /// TTL-miss flows never update the table.
  TtlClass analyze(IngressId ingress, net::IPv4Address source, std::uint8_t ttl,
                   util::TimeMs now, bool eia_hit);

  /// Replaces the learned state (training-phase preload / import).
  void install(HopCountTable table) { table_ = std::move(table); }

  [[nodiscard]] const HopCountTable& table() const { return table_; }

 private:
  HopCountTable table_;
};

}  // namespace infilter::hopcount

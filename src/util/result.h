// A minimal expected-style result for boundary code (wire decoding, file
// parsing) where failure is an ordinary outcome, not an exception.
// std::expected is C++23; this is the small subset we need under C++20.

#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace infilter::util {

/// Describes why a boundary operation failed. Carried by value; cheap.
struct Error {
  std::string message;
};

/// Holds either a T or an Error. Precondition on value()/error(): the
/// corresponding has_value()/!has_value() state, asserted in debug builds.
template <typename T>
class Result {
 public:
  Result(T value) : data_(std::move(value)) {}        // NOLINT(google-explicit-constructor)
  Result(Error error) : data_(std::move(error)) {}    // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool has_value() const { return std::holds_alternative<T>(data_); }
  explicit operator bool() const { return has_value(); }

  [[nodiscard]] T& value() & {
    assert(has_value());
    return std::get<T>(data_);
  }
  [[nodiscard]] const T& value() const& {
    assert(has_value());
    return std::get<T>(data_);
  }
  [[nodiscard]] T&& value() && {
    assert(has_value());
    return std::get<T>(std::move(data_));
  }

  [[nodiscard]] const Error& error() const {
    assert(!has_value());
    return std::get<Error>(data_);
  }

  [[nodiscard]] T& operator*() & { return value(); }
  [[nodiscard]] const T& operator*() const& { return value(); }
  [[nodiscard]] T* operator->() { return &value(); }
  [[nodiscard]] const T* operator->() const { return &value(); }

 private:
  std::variant<T, Error> data_;
};

}  // namespace infilter::util

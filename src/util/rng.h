// Deterministic random-number generation for the simulation substrates.
//
// Every stochastic component in this repository takes an explicit seed and
// owns its own engine; there is no global RNG and no wall-clock dependence,
// so every experiment run is exactly reproducible (DESIGN.md section 5).
//
// The engine is xoshiro256** seeded via SplitMix64 -- small, fast, and of
// far better quality than std::minstd; we avoid std::mt19937 only because
// its 2.5 KB state is wasteful for the thousands of per-entity engines the
// routing simulator creates.

#pragma once

#include <cmath>
#include <cstdint>
#include <span>

namespace infilter::util {

/// SplitMix64: used to expand a single 64-bit seed into engine state.
/// Passes through every value exactly once over its 2^64 period.
class SplitMix64 {
 public:
  constexpr explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: the general-purpose engine. Satisfies
/// std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  constexpr explicit Rng(std::uint64_t seed) {
    SplitMix64 mix{seed};
    for (auto& word : state_) word = mix.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  constexpr result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// A derived engine with an independent stream; used to give each
  /// simulated entity (router, traffic source, ...) its own generator.
  [[nodiscard]] constexpr Rng fork(std::uint64_t stream) {
    return Rng{(*this)() ^ (stream * 0x9e3779b97f4a7c15ULL)};
  }

  /// Uniform integer in [0, bound). Precondition: bound > 0.
  /// Uses Lemire's multiply-shift rejection method.
  std::uint64_t below(std::uint64_t bound) {
    // Rejection loop terminates quickly: acceptance probability >= 1/2.
    const std::uint64_t threshold = (~bound + 1) % bound;  // (2^64 - bound) mod bound
    for (;;) {
      const std::uint64_t r = (*this)();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  bool chance(double p) { return uniform() < p; }

  /// Exponential variate with the given mean (> 0).
  double exponential(double mean) {
    double u = uniform();
    // uniform() can return exactly 0; nudge to keep log finite.
    if (u <= 0.0) u = 0x1.0p-53;
    return -mean * std::log(u);
  }

  /// Bounded Pareto variate on [lo, hi] with shape alpha > 0. Heavy-tailed
  /// flow sizes and durations in the traffic generator come from this.
  double bounded_pareto(double alpha, double lo, double hi) {
    const double u = uniform();
    const double la = std::pow(lo, alpha);
    const double ha = std::pow(hi, alpha);
    return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
  }

  /// Uniformly chosen element of a non-empty span.
  template <typename T>
  const T& pick(std::span<const T> items) {
    return items[below(items.size())];
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace infilter::util

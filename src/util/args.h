// Minimal command-line option parsing for the tools/ binaries.
//
// Supports "--name value" and "--flag" styles plus positional arguments;
// unknown options are errors so typos fail loudly. Deliberately tiny: the
// tools need a dozen options, not a framework.

#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "util/result.h"

namespace infilter::util {

class Args {
 public:
  /// Parses argv. `flag_names` lists options that take no value; every
  /// other "--name" consumes the following token as its value.
  static Result<Args> parse(int argc, const char* const* argv,
                            const std::vector<std::string>& flag_names = {});

  [[nodiscard]] bool has(const std::string& name) const {
    return values_.contains(name) || flags_.contains(name);
  }
  [[nodiscard]] std::optional<std::string> value(const std::string& name) const {
    const auto it = values_.find(name);
    if (it == values_.end()) return std::nullopt;
    return it->second;
  }
  [[nodiscard]] std::string value_or(const std::string& name,
                                     std::string fallback) const {
    return value(name).value_or(std::move(fallback));
  }
  /// Lenient: a malformed value silently parses as whatever strtoll makes
  /// of it (usually 0). Prefer checked_int for anything that feeds a
  /// size, thread count, or other value with a validity range.
  [[nodiscard]] std::int64_t int_or(const std::string& name, std::int64_t fallback) const;
  /// int_or with validation: when --name was given, its value must be a
  /// whole base-10 number (no trailing junk, no overflow) within
  /// [min, max], else an Error naming the option and the accepted range.
  /// Absent option: the fallback, unvalidated.
  [[nodiscard]] Result<std::int64_t> checked_int(
      const std::string& name, std::int64_t fallback,
      std::int64_t min = std::numeric_limits<std::int64_t>::min(),
      std::int64_t max = std::numeric_limits<std::int64_t>::max()) const;
  [[nodiscard]] double double_or(const std::string& name, double fallback) const;
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

 private:
  std::map<std::string, std::string> values_;
  std::set<std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace infilter::util

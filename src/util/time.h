// Simulation time.
//
// The whole reproduction runs on virtual time: a 64-bit count of
// milliseconds since the simulation epoch. NetFlow v5 natively timestamps
// flows in router-uptime milliseconds, so milliseconds are the natural
// resolution for every component.

#pragma once

#include <cstdint>

namespace infilter::util {

/// Milliseconds since the simulation epoch.
using TimeMs = std::uint64_t;

/// A span of simulated milliseconds.
using DurationMs = std::uint64_t;

inline constexpr DurationMs kSecond = 1000;
inline constexpr DurationMs kMinute = 60 * kSecond;
inline constexpr DurationMs kHour = 60 * kMinute;
inline constexpr DurationMs kDay = 24 * kHour;

}  // namespace infilter::util

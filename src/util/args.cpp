#include "util/args.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>

namespace infilter::util {

Result<Args> Args::parse(int argc, const char* const* argv,
                         const std::vector<std::string>& flag_names) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string token = argv[i];
    if (token.rfind("--", 0) != 0) {
      args.positional_.push_back(token);
      continue;
    }
    const std::string name = token.substr(2);
    if (name.empty()) return Error{"bare '--' is not a valid option"};
    if (std::find(flag_names.begin(), flag_names.end(), name) != flag_names.end()) {
      args.flags_.insert(name);
      continue;
    }
    if (i + 1 >= argc) return Error{"option --" + name + " needs a value"};
    args.values_[name] = argv[++i];
  }
  return args;
}

std::int64_t Args::int_or(const std::string& name, std::int64_t fallback) const {
  const auto text = value(name);
  if (!text.has_value()) return fallback;
  return std::strtoll(text->c_str(), nullptr, 10);
}

Result<std::int64_t> Args::checked_int(const std::string& name,
                                       std::int64_t fallback, std::int64_t min,
                                       std::int64_t max) const {
  const auto text = value(name);
  if (!text.has_value()) return fallback;
  errno = 0;
  char* end = nullptr;
  const long long parsed = std::strtoll(text->c_str(), &end, 10);
  if (end == text->c_str() || *end != '\0' || errno == ERANGE) {
    return Error{"option --" + name + ": '" + *text + "' is not a whole number"};
  }
  if (parsed < min || parsed > max) {
    return Error{"option --" + name + ": " + *text + " is out of range [" +
                 std::to_string(min) + ", " + std::to_string(max) + "]"};
  }
  return static_cast<std::int64_t>(parsed);
}

double Args::double_or(const std::string& name, double fallback) const {
  const auto text = value(name);
  if (!text.has_value()) return fallback;
  return std::strtod(text->c_str(), nullptr);
}

}  // namespace infilter::util

// Pluggable EIA membership backends.
//
// The paper's EIA sets are exact per-(peer AS, /24) interval maps. At
// SMap scale (internet-wide deployments seeing millions of source /24s
// across hundreds of peer ASes) exact sets are the last pipeline data
// structure with no memory story, so the membership layer is pluggable:
//
//   * kExact          -- the original sorted-interval EiaSet per ingress.
//                        Bit-identical to the historical EiaTable.
//   * kBloom          -- Bloom-filter membership over a fixed bit budget
//                        (k hashes), aged Azzana-style by periodic erasure
//                        of one of R rotating sub-filters.
//   * kCountingBloom  -- counting-Bloom variant (8-bit saturating
//                        counters) that additionally supports unlearning,
//                        for churn-driven entry aging.
//
// Granularity: the probabilistic backends store membership at /24
// granularity -- the EIA auto-learning grain (Section 5.2) and the
// runtime's shard key. A preloaded prefix shorter than /24 is expanded
// into its covering /24s; longer ones are widened to their /24.
//
// Sharding contract: the bit space is partitioned into kBloomBanks banks
// keyed by the SAME /24 hash the runtime's shard_of uses
// (runtime/runtime.cpp). A membership probe for source S only reads bits
// that keys in S's bank can set, and every key of one bank lands on one
// runtime shard whenever the shard count divides kBloomBanks (any
// power of two <= 1024). Per-bank rotation counters keep the aging
// schedule bank-local too. Hence Bloom verdicts -- false positives
// included -- are identical at every such shard x producer count for a
// given seed, preserving the runtime's bit-identical-replay contract
// per backend.
//
// Probabilistic contract: contains() has no false negatives for learned
// keys still covered by a live sub-filter; false positives occur at the
// configured budget (classic Bloom bound per bank). expected_ingress()
// returns the FIRST ingress (ascending id) whose filter accepts the
// source -- under false positives that may name a lower-id ingress than
// an exact table would; callers treat it as alert context / TTL-witness
// selection, both of which tolerate an approximate answer.

#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "net/ipv4.h"
#include "util/result.h"

namespace infilter::core {

using IngressId = std::uint16_t;

class EiaSet;  // core/eia.h

enum class EiaBackendType : std::uint8_t {
  kExact,
  kBloom,
  kCountingBloom,
};

[[nodiscard]] const char* eia_backend_name(EiaBackendType type);

/// Bank count of the probabilistic backends. Must stay a power of two at
/// least as large as any shard count that wants Bloom verdict
/// shard-invariance (see the sharding contract above).
inline constexpr std::size_t kBloomBanks = 1024;

struct EiaBackendConfig {
  EiaBackendType type = EiaBackendType::kExact;

  /// Total bit budget (kBloom) or counter budget (kCountingBloom) across
  /// all banks and sub-filters. Rounded up so every (bank, sub-filter)
  /// segment holds a whole number of 64-bit words.
  std::size_t bits = std::size_t{1} << 23;

  /// Hash probes per key (the classic Bloom k).
  int hashes = 4;

  /// Rotating sub-filters R for Azzana-style aging. Membership checks all
  /// R; inserts go to the bank's current sub-filter. 1 = a plain filter.
  int subfilters = 1;

  /// Inserts into one bank between aging steps: after this many the
  /// bank's oldest sub-filter is erased and becomes current. 0 disables
  /// aging (the default; entries then live forever, like exact sets).
  /// Meaningful only with subfilters >= 2.
  std::uint64_t rotate_every = 0;

  /// false (default): one shared bit array, hashed with the ingress id as
  /// salt. true: a separate array of `bits` per declared ingress.
  bool per_ingress = false;

  /// Seeds the position hashes (not the bank hash, which is pinned to the
  /// runtime's shard hash). Same seed => same bit patterns => same
  /// verdicts on the same learned stream.
  std::uint64_t hash_seed = 0x9e3779b97f4a7c15ULL;

  friend bool operator==(const EiaBackendConfig&, const EiaBackendConfig&) = default;
};

/// Parses the CLI / persistence syntax:
///   "exact" | "bloom[:BITS[,K[,R[,ROTATE]]]]" | "cbloom[:BITS[,K[,R[,ROTATE]]]]"
[[nodiscard]] util::Result<EiaBackendConfig> parse_eia_backend(std::string_view text);

/// Predicted fill ratio of one live sub-filter after `slash24_inserts`
/// keys (1 - e^{-k.n/m}, m = bits / subfilters); 0.0 on the exact
/// backend. The CLIs warn at preload time when the configured budget
/// cannot hold the expected set -- a saturated filter answers "expected"
/// for every source, silently disabling detection.
[[nodiscard]] double predicted_fill_ratio(const EiaBackendConfig& config,
                                          std::uint64_t slash24_inserts);

/// Membership storage behind EiaTable. Implementations are engine-private
/// (single-threaded) like the table itself.
class EiaBackend {
 public:
  virtual ~EiaBackend() = default;

  [[nodiscard]] virtual EiaBackendType type() const = 0;

  /// Ensures `ingress` exists (possibly with nothing learned).
  virtual void declare_ingress(IngressId ingress) = 0;

  /// Adds `prefix` to `ingress`'s membership (see the granularity note).
  virtual void add(IngressId ingress, const net::Prefix& prefix) = 0;

  [[nodiscard]] virtual bool contains(IngressId ingress,
                                      net::IPv4Address source) const = 0;

  /// First ingress (ascending id) whose membership accepts `source`.
  [[nodiscard]] virtual std::optional<IngressId> expected_ingress(
      net::IPv4Address source) const = 0;

  [[nodiscard]] virtual std::vector<IngressId> ingresses() const = 0;
  [[nodiscard]] virtual std::size_t ingress_count() const = 0;

  /// Exact: stored interval count. Probabilistic: /24 inserts performed.
  [[nodiscard]] virtual std::size_t total_ranges() const = 0;

  /// Bytes held by the membership structures (the memory story).
  [[nodiscard]] virtual std::size_t memory_bytes() const = 0;

  /// Set bit (nonzero counter) fraction; 0 for the exact backend.
  [[nodiscard]] virtual double fill_ratio() const { return 0.0; }

  /// kCountingBloom only: removes one learned /24 (counter decrement;
  /// saturated counters are pinned and stay). No-op elsewhere.
  virtual void unlearn(IngressId ingress, const net::Prefix& prefix);
  [[nodiscard]] virtual bool supports_unlearn() const { return false; }

  /// The exact backend's interval set for `ingress` (null on the
  /// probabilistic backends, which have no interval representation).
  [[nodiscard]] virtual const EiaSet* set_for(IngressId /*ingress*/) const {
    return nullptr;
  }
};

[[nodiscard]] std::unique_ptr<EiaBackend> make_eia_backend(
    const EiaBackendConfig& config);

// -- Concrete types (exposed for persistence in eia_io and for tests) --

/// The historical per-ingress sorted-interval table, bit-identical to the
/// pre-backend EiaTable.
class ExactEiaBackend final : public EiaBackend {
 public:
  ExactEiaBackend();
  ~ExactEiaBackend() override;  // out of line: EiaSet is incomplete here
  [[nodiscard]] EiaBackendType type() const override {
    return EiaBackendType::kExact;
  }
  void declare_ingress(IngressId ingress) override;
  void add(IngressId ingress, const net::Prefix& prefix) override;
  [[nodiscard]] bool contains(IngressId ingress,
                              net::IPv4Address source) const override;
  [[nodiscard]] std::optional<IngressId> expected_ingress(
      net::IPv4Address source) const override;
  [[nodiscard]] std::vector<IngressId> ingresses() const override;
  [[nodiscard]] std::size_t ingress_count() const override;
  [[nodiscard]] std::size_t total_ranges() const override;
  [[nodiscard]] std::size_t memory_bytes() const override;
  [[nodiscard]] const EiaSet* set_for(IngressId ingress) const override;
  /// Exact interval subtraction -- the lifecycle layer's expiry hook
  /// (src/lifecycle): removes the prefix's addresses from `ingress`'s
  /// set, splitting covering ranges as needed.
  [[nodiscard]] bool supports_unlearn() const override { return true; }
  void unlearn(IngressId ingress, const net::Prefix& prefix) override;

 private:
  EiaSet& set_ref(IngressId ingress);
  /// Sorted by ingress id; small (one entry per peer AS).
  std::vector<std::pair<IngressId, std::unique_ptr<EiaSet>>> sets_;
};

/// Shared machinery of the two probabilistic backends: the banked segment
/// layout, the shard-consistent bank hash, the k position hashes, and the
/// per-bank rotation bookkeeping. `Cell` is the per-position storage.
class BankedBloomBase : public EiaBackend {
 public:
  explicit BankedBloomBase(EiaBackendConfig config);

  void declare_ingress(IngressId ingress) override;
  void add(IngressId ingress, const net::Prefix& prefix) override;
  [[nodiscard]] bool contains(IngressId ingress,
                              net::IPv4Address source) const override;
  [[nodiscard]] std::optional<IngressId> expected_ingress(
      net::IPv4Address source) const override;
  [[nodiscard]] std::vector<IngressId> ingresses() const override;
  [[nodiscard]] std::size_t ingress_count() const override;
  [[nodiscard]] std::size_t total_ranges() const override;

  [[nodiscard]] const EiaBackendConfig& config() const { return config_; }
  /// Bits (kBloom) / counters (kCountingBloom) per (bank, sub-filter)
  /// segment after the whole-word rounding.
  [[nodiscard]] std::size_t segment_positions() const { return segment_positions_; }
  /// /24 inserts performed (each expansion of a wide prefix counts one).
  [[nodiscard]] std::uint64_t insert_count() const { return inserts_; }
  /// Aging erasures performed across all banks.
  [[nodiscard]] std::uint64_t rotations() const { return rotations_; }

  // Persistence accessors (eia_io): per-bank rotation state.
  [[nodiscard]] const std::vector<std::uint8_t>& bank_current() const {
    return bank_current_;
  }
  [[nodiscard]] const std::vector<std::uint64_t>& bank_inserts() const {
    return bank_inserts_;
  }
  void restore_bank_state(std::vector<std::uint8_t> current,
                          std::vector<std::uint64_t> inserts,
                          std::uint64_t total_inserts, std::uint64_t rotations);

 protected:
  struct Probe {
    std::size_t bank;
    std::uint64_t base;  ///< first position hash
    std::uint64_t step;  ///< double-hashing stride (odd)
  };
  [[nodiscard]] Probe probe_for(IngressId ingress, std::uint32_t key24) const;
  /// Storage index of position `pos` in (bank, sub-filter) coordinates.
  [[nodiscard]] std::size_t position_index(std::size_t bank, int sub,
                                           std::uint64_t pos) const {
    return (bank * static_cast<std::size_t>(config_.subfilters) +
            static_cast<std::size_t>(sub)) *
               segment_positions_ +
           static_cast<std::size_t>(pos % segment_positions_);
  }

  /// Per-ingress filter id: 0 in shared mode, the ingress's slot
  /// otherwise. Grows per_ingress storage on first use.
  [[nodiscard]] std::size_t filter_slot(IngressId ingress);
  [[nodiscard]] std::optional<std::size_t> filter_slot_of(IngressId ingress) const;

  // Storage hooks implemented by the concrete cell types. Filter arrays
  // are addressed by sorted ingress position (per-ingress mode) or slot 0
  // (shared mode); insert_filter adds an empty array at `at`.
  virtual void insert_filter(std::size_t at) = 0;
  [[nodiscard]] virtual std::size_t filter_count() const = 0;
  virtual void set_position(std::size_t filter, std::size_t index) = 0;
  virtual void clear_position(std::size_t filter, std::size_t index) = 0;
  [[nodiscard]] virtual bool test_position(std::size_t filter,
                                           std::size_t index) const = 0;
  virtual void erase_segment(std::size_t filter, std::size_t bank, int sub) = 0;

  void insert_key(IngressId ingress, std::uint32_t key24);
  [[nodiscard]] bool test_key(IngressId ingress, std::uint32_t key24) const;
  void remove_key(IngressId ingress, std::uint32_t key24);
  virtual void decrement_position(std::size_t filter, std::size_t index) {
    (void)filter;
    (void)index;
  }

  EiaBackendConfig config_;
  std::size_t segment_positions_ = 0;  ///< positions per (bank, sub) segment
  std::size_t positions_total_ = 0;    ///< positions per filter array
  std::vector<IngressId> ingresses_;   ///< sorted, ascending
  std::uint64_t inserts_ = 0;
  std::uint64_t rotations_ = 0;
  std::vector<std::uint8_t> bank_current_;   ///< current sub-filter per bank
  std::vector<std::uint64_t> bank_inserts_;  ///< inserts since last rotation
};

/// Plain bit-array Bloom backend.
class BloomEiaBackend final : public BankedBloomBase {
 public:
  explicit BloomEiaBackend(EiaBackendConfig config);
  [[nodiscard]] EiaBackendType type() const override {
    return EiaBackendType::kBloom;
  }
  [[nodiscard]] std::size_t memory_bytes() const override;
  [[nodiscard]] double fill_ratio() const override;

  /// One word array per filter (shared mode: exactly one).
  [[nodiscard]] const std::vector<std::vector<std::uint64_t>>& word_arrays() const {
    return words_;
  }
  [[nodiscard]] std::vector<std::vector<std::uint64_t>>& word_arrays() {
    return words_;
  }

 protected:
  void insert_filter(std::size_t at) override;
  [[nodiscard]] std::size_t filter_count() const override { return words_.size(); }
  void set_position(std::size_t filter, std::size_t index) override;
  void clear_position(std::size_t filter, std::size_t index) override;
  [[nodiscard]] bool test_position(std::size_t filter,
                                   std::size_t index) const override;
  void erase_segment(std::size_t filter, std::size_t bank, int sub) override;

 private:
  std::vector<std::vector<std::uint64_t>> words_;
};

/// Counting-Bloom backend: 8-bit saturating counters; supports unlearn.
class CountingBloomEiaBackend final : public BankedBloomBase {
 public:
  explicit CountingBloomEiaBackend(EiaBackendConfig config);
  [[nodiscard]] EiaBackendType type() const override {
    return EiaBackendType::kCountingBloom;
  }
  [[nodiscard]] std::size_t memory_bytes() const override;
  [[nodiscard]] double fill_ratio() const override;
  [[nodiscard]] bool supports_unlearn() const override { return true; }
  void unlearn(IngressId ingress, const net::Prefix& prefix) override;

  [[nodiscard]] const std::vector<std::vector<std::uint8_t>>& counter_arrays() const {
    return counters_;
  }
  [[nodiscard]] std::vector<std::vector<std::uint8_t>>& counter_arrays() {
    return counters_;
  }

 protected:
  void insert_filter(std::size_t at) override;
  [[nodiscard]] std::size_t filter_count() const override {
    return counters_.size();
  }
  void set_position(std::size_t filter, std::size_t index) override;
  void clear_position(std::size_t filter, std::size_t index) override;
  [[nodiscard]] bool test_position(std::size_t filter,
                                   std::size_t index) const override;
  void erase_segment(std::size_t filter, std::size_t bank, int sub) override;
  void decrement_position(std::size_t filter, std::size_t index) override;

 private:
  std::vector<std::vector<std::uint8_t>> counters_;
};

}  // namespace infilter::core

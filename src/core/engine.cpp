#include "core/engine.h"

namespace infilter::core {

InFilterEngine::InFilterEngine(EngineConfig config, alert::AlertSink* sink)
    : config_(config),
      sink_(sink),
      eia_(config.eia),
      scan_(config.scan),
      rng_(config.seed ^ 0x1f11753ULL) {}

void InFilterEngine::add_expected(IngressId ingress, const net::Prefix& prefix) {
  eia_.add_expected(ingress, prefix);
}

void InFilterEngine::train(std::span<const netflow::V5Record> normal_flows) {
  clusters_ =
      std::make_shared<const TrainedClusters>(normal_flows, config_.cluster, config_.seed);
}

void InFilterEngine::set_clusters(std::shared_ptr<const TrainedClusters> clusters) {
  clusters_ = std::move(clusters);
}

Verdict InFilterEngine::process(const netflow::V5Record& record, IngressId ingress,
                                util::TimeMs now) {
  ++flows_processed_;
  Verdict verdict;

  // Figure 12, case (b): the ingress expects this source -- legal flow.
  if (eia_.is_expected(ingress, record.src_ip)) return verdict;

  // Case (a): possible attack. The auto-learning rule of Section 5.2 runs
  // regardless of the final verdict: persistent traffic from a new source
  // at this ingress eventually updates the EIA set (route change
  // adaptation) -- and a flow that triggers learning is treated as the
  // route change it signals, not as an attack.
  verdict.suspect = true;
  const bool learned = eia_.observe_mismatch(ingress, record.src_ip);

  if (config_.mode == EngineMode::kBasic) {
    verdict.attack = !learned;
    verdict.stage = alert::DetectionStage::kEiaMismatch;
    if (verdict.attack) emit_alert(record, ingress, now, verdict);
    return verdict;
  }

  // Enhanced InFilter: Scan Analysis sits between EIA and NNS.
  if (config_.use_scan_analysis) {
    const ScanVerdict scan = scan_.observe(record);
    if (scan != ScanVerdict::kClean) {
      verdict.attack = true;
      verdict.stage = alert::DetectionStage::kScanAnalysis;
      emit_alert(record, ingress, now, verdict);
      return verdict;
    }
  }

  if (config_.use_nns && clusters_ != nullptr) {
    verdict.nns = clusters_->assess(record, rng_);
    if (verdict.nns->anomalous) {
      verdict.attack = true;
      verdict.stage = alert::DetectionStage::kNnsDistance;
      emit_alert(record, ingress, now, verdict);
    }
    return verdict;
  }

  // Enhanced mode with every second stage disabled degenerates to Basic.
  verdict.attack = !learned;
  verdict.stage = alert::DetectionStage::kEiaMismatch;
  if (verdict.attack) emit_alert(record, ingress, now, verdict);
  return verdict;
}

void InFilterEngine::emit_alert(const netflow::V5Record& record, IngressId ingress,
                                util::TimeMs now, const Verdict& verdict) {
  ++next_alert_id_;
  if (sink_ == nullptr) return;
  alert::Alert a;
  a.id = next_alert_id_;
  a.create_time = now;
  a.stage = verdict.stage;
  a.source_ip = record.src_ip;
  a.target_ip = record.dst_ip;
  a.target_port = record.dst_port;
  a.proto = record.proto;
  a.ingress_port = ingress;
  if (const auto expected = eia_.expected_ingress(record.src_ip)) {
    a.expected_ingress = *expected;
  }
  if (verdict.nns.has_value()) {
    a.nns_distance = verdict.nns->distance;
    a.nns_threshold = verdict.nns->threshold;
  }
  a.detection_latency_ms = now >= record.last ? static_cast<double>(now - record.last) : 0.0;
  a.classification = std::string{"spoofed traffic ("} +
                     std::string{alert::stage_name(verdict.stage)} + ")";
  sink_->consume(a);
}

}  // namespace infilter::core

#include "core/engine.h"

#include <cassert>

#include "obs/stage_timer.h"
#include "util/rng.h"

namespace infilter::core {
namespace {

/// Seed for the per-flow NNS probe RNG: a SplitMix64 chain over the flow's
/// identifying fields. Any pure function of (engine seed, record) keeps
/// verdicts independent of processing order; chaining through SplitMix64
/// decorrelates flows that differ in a single field.
std::uint64_t flow_rng_seed(std::uint64_t seed, const netflow::V5Record& r) {
  std::uint64_t h = util::SplitMix64{seed ^ 0x1f11753ULL}.next();
  const std::uint64_t words[] = {
      (std::uint64_t{r.src_ip.value()} << 32) | r.dst_ip.value(),
      (std::uint64_t{r.src_port} << 48) | (std::uint64_t{r.dst_port} << 32) |
          (std::uint64_t{r.proto} << 8) | r.tos,
      (std::uint64_t{r.first} << 32) | r.last,
  };
  for (const std::uint64_t word : words) h = util::SplitMix64{h ^ word}.next();
  return h;
}

}  // namespace

InFilterEngine::InFilterEngine(EngineConfig config, alert::AlertSink* sink)
    : config_(config),
      sink_(sink),
      eia_(config.eia),
      hopcount_(config.hopcount),
      scan_(config.scan),
      owned_registry_(config.registry != nullptr ? nullptr
                                                 : std::make_unique<obs::Registry>()),
      registry_(config.registry != nullptr ? config.registry : owned_registry_.get()),
      metrics_(*registry_) {
  register_component_metrics();
}

void InFilterEngine::register_component_metrics() {
  // Pull-style component internals: sampled at snapshot time, reading the
  // engine's members directly (see EngineConfig::registry lifetime note).
  registry_->gauge_fn(
      "infilter_eia_pending_counters",
      [this] { return static_cast<double>(eia_.pending_counters()); },
      "Auto-learning candidates currently tracked (Section 5.2)");
  registry_->gauge_fn(
      "infilter_eia_ranges",
      [this] { return static_cast<double>(eia_.total_ranges()); },
      "Stored address ranges across all EIA sets");
  registry_->gauge_fn(
      "infilter_eia_ingresses",
      [this] { return static_cast<double>(eia_.ingress_count()); },
      "Ingress points with an EIA set");
  registry_->counter_fn(
      "infilter_eia_lookups_total", [this] { return eia_.stats().lookups; },
      "EIA membership tests performed by the table");
  registry_->gauge_fn(
      "infilter_eia_backend_bytes",
      [this] { return static_cast<double>(eia_.memory_bytes()); },
      "Bytes held by the EIA membership backend");
  registry_->gauge_fn(
      "infilter_eia_bloom_fill_ratio", [this] { return eia_.fill_ratio(); },
      "Fraction of Bloom bits set (0 on the exact backend)");
  registry_->counter_fn(
      "infilter_eia_pending_rejected_total",
      [this] { return eia_.stats().pending_rejected; },
      "Full-bank events on the pending learn-counter map (each ran the "
      "decay/eviction policy)");
  registry_->counter_fn(
      "infilter_eia_bloom_false_suspects_total",
      [this] { return eia_false_suspects_; },
      "Ground-truth-benign flows that drew a suspect verdict under a "
      "probabilistic EIA backend (testbed-driven; 0 in production and on "
      "the exact backend)");
  registry_->counter_fn(
      "infilter_lifecycle_entries_expired_total",
      [this] { return eia_.lifecycle_stats().entries_expired; },
      "Learned EIA entries whose membership idle-expired (src/lifecycle)");
  registry_->counter_fn(
      "infilter_lifecycle_entries_relearned_total",
      [this] { return eia_.lifecycle_stats().entries_relearned; },
      "Expired EIA entries learned again on reobservation");
  registry_->counter_fn(
      "infilter_lifecycle_entries_refreshed_total",
      [this] { return eia_.lifecycle_stats().entries_refreshed; },
      "EIA entry last_seen advances on lookup hits (aging on)");
  registry_->gauge_fn(
      "infilter_lifecycle_aged_entries",
      [this] { return static_cast<double>(eia_.aged_entry_count()); },
      "Age-metadata records held (live learned entries + expiry tombstones)");
  registry_->gauge_fn(
      "infilter_hopcount_entries",
      [this] { return static_cast<double>(hopcount_.table().size()); },
      "(ingress, source /24) keys with a hop-count range");
  registry_->counter_fn(
      "infilter_hopcount_lookups_total",
      [this] { return hopcount_.table().stats().classified; },
      "TTL classifications performed by the hop-count table");
  registry_->counter_fn(
      "infilter_hopcount_established_total",
      [this] { return hopcount_.table().stats().established_keys; },
      "Hop-count keys that completed learning");
  registry_->counter_fn(
      "infilter_hopcount_expired_total",
      [this] { return hopcount_.table().stats().expired_entries; },
      "Hop-count entries re-learned after decaying idle");
  registry_->gauge_fn(
      "infilter_scan_buffer_flows",
      [this] { return static_cast<double>(scan_.buffered_flows()); },
      "Suspect flows currently in the scan-analysis buffer");
  registry_->counter_fn(
      "infilter_scan_evictions_total", [this] { return scan_.stats().evictions; },
      "Flows aged out of the scan-analysis buffer");
  registry_->counter_fn(
      "infilter_nns_index_assessments_total",
      [this] { return clusters_ != nullptr ? clusters_->stats().assessments : 0; },
      "NNS queries against the trained clusters (all sharing engines)");
  registry_->counter_fn(
      "infilter_nns_no_neighbor_total",
      [this] { return clusters_ != nullptr ? clusters_->stats().no_neighbor : 0; },
      "NNS queries that found no neighbor at all");
  registry_->gauge_fn(
      "infilter_nns_trained_flows",
      [this] {
        return clusters_ != nullptr
                   ? static_cast<double>(clusters_->training_size_total())
                   : 0.0;
      },
      "Flows in the trained Normal cluster");
}

void InFilterEngine::add_expected(IngressId ingress, const net::Prefix& prefix) {
  eia_.add_expected(ingress, prefix);
}

void InFilterEngine::train(std::span<const netflow::V5Record> normal_flows) {
  clusters_ =
      std::make_shared<const TrainedClusters>(normal_flows, config_.cluster, config_.seed);
}

void InFilterEngine::set_clusters(std::shared_ptr<const TrainedClusters> clusters) {
  clusters_ = std::move(clusters);
}

bool InFilterEngine::pre_process(const netflow::V5Record& record, IngressId ingress,
                                 util::TimeMs now, Verdict& verdict,
                                 SuspectFlow& suspect) {
  metrics_.flows_total->inc();
  const double start_us = obs::monotonic_us();
  verdict = Verdict{};

  // Figure 12, case (b): the ingress expects this source -- legal flow.
  bool expected;
  {
    obs::StageTimer timer(metrics_.stage_eia_us);
    expected = eia_.is_expected(ingress, record.src_ip, now);
  }

  // The source's home ingress (AS_IP(phi), a scan over every EIA set) is
  // wanted twice on suspect paths -- TTL-witness selection and alert
  // context -- but computed at most once per flow: lazily here, and the
  // post-learn alert context is *derived* (see below) rather than
  // re-scanned.
  bool home_known = false;
  std::optional<IngressId> home;
  const auto home_ingress = [&] {
    if (!home_known) {
      home = eia_.expected_ingress(record.src_ip, now);
      home_known = true;
    }
    return home;
  };

  // The TTL witness (src/hopcount). Flows the EIA sets vouch for are
  // classified against -- and learned into -- the range at the observed
  // ingress. An EIA-missing flow is classified (never learned: the
  // anti-poisoning rule) against the range at the ingress that DOES expect
  // its source: if honest traffic from that /24 established a path length
  // at its home ingress and this flow's TTL contradicts it, the address is
  // forged, not re-routed. Both keys share the flow's source /24, which
  // the runtime shards by (runtime.cpp shard_of), so the lookup stays
  // shard-local and the serial-equivalence argument covers it unchanged.
  auto ttl = hopcount::TtlClass::kUnknown;
  if (config_.use_hopcount) {
    obs::StageTimer timer(metrics_.stage_hopcount_us);
    const auto witness =
        expected ? std::optional<IngressId>{ingress} : home_ingress();
    if (witness.has_value()) {
      ttl = hopcount_.analyze(*witness, record.src_ip, record.ttl, now, expected);
    }
    (ttl == hopcount::TtlClass::kConsistent ? metrics_.hopcount_consistent
     : ttl == hopcount::TtlClass::kMiss     ? metrics_.hopcount_miss
                                            : metrics_.hopcount_unknown)
        ->inc();
  }

  if (expected) {
    metrics_.eia_hits->inc();
    if (ttl == hopcount::TtlClass::kMiss) {
      // In-EIA spoof suspicion: the address is vouched for but the path
      // length is wrong. One disagreeing witness makes a suspect,
      // arbitrated by scan/NNS like any EIA miss.
      verdict.suspect = true;
      suspect = SuspectFlow{record, ingress, now, false, home_ingress(), ttl, true};
      return true;
    }
    metrics_.verdict_legal->inc();
    if (metrics_.process_us != nullptr) {
      metrics_.process_us->observe(obs::monotonic_us() - start_us);
    }
    return false;
  }
  metrics_.eia_misses->inc();

  // Case (a): possible attack. The auto-learning rule of Section 5.2 runs
  // regardless of the final verdict: persistent traffic from a new source
  // at this ingress eventually updates the EIA set (route change
  // adaptation) -- and a flow that triggers learning is treated as the
  // route change it signals, not as an attack.
  verdict.suspect = true;
  const std::optional<IngressId> pre_learn_home = home_ingress();
  const bool learned = eia_.observe_mismatch(ingress, record.src_ip, now);
  if (learned) metrics_.eia_learned->inc();
  // The alert context is the post-learn first match, derived without a
  // second scan: learning added exactly (ingress, src /24), so the first
  // match becomes min(home, ingress) -- and an unchanged table keeps home.
  // Exact on the exact backend (home == ingress is impossible on a miss);
  // under Bloom aging a rotation inside the add could additionally erase
  // an old match, which the documented probabilistic contract absorbs.
  suspect = SuspectFlow{
      record, ingress, now, learned,
      learned ? std::optional<IngressId>{pre_learn_home.has_value() &&
                                                 *pre_learn_home < ingress
                                             ? *pre_learn_home
                                             : ingress}
              : pre_learn_home,
      ttl, false};
  return true;
}

Verdict InFilterEngine::finish_suspect(const SuspectFlow& suspect) {
  obs::StageTimer process_timer(metrics_.process_us);
  Verdict verdict;
  verdict.suspect = true;

  // Fused high-confidence path: both independent witnesses disagree with
  // the learned state -- unexpected ingress AND wrong path length. The
  // confirmation scan/NNS would provide is already here, so they are
  // skipped (a learned flow keeps its route-change reading instead).
  if (!suspect.eia_hit && suspect.ttl == hopcount::TtlClass::kMiss &&
      !suspect.learned) {
    verdict.attack = true;
    verdict.stage = alert::DetectionStage::kHopCountFusion;
    metrics_.verdict_attack_fused->inc();
    if (sink_ != nullptr) {
      emit_alert_with(suspect.record, suspect.ingress, suspect.now, verdict,
                      suspect.expected);
    }
    return verdict;
  }

  if (config_.mode == EngineMode::kBasic) {
    verdict.attack = !suspect.learned;
    verdict.stage = alert::DetectionStage::kEiaMismatch;
    (verdict.attack ? metrics_.verdict_attack_eia : metrics_.verdict_cleared_learned)
        ->inc();
    if (verdict.attack && sink_ != nullptr) {
      emit_alert_with(suspect.record, suspect.ingress, suspect.now, verdict,
                      suspect.expected);
    }
    return verdict;
  }

  // Enhanced InFilter: Scan Analysis sits between EIA and NNS.
  if (config_.use_scan_analysis) {
    ScanVerdict scan;
    {
      obs::StageTimer timer(metrics_.stage_scan_us);
      scan = scan_.observe(suspect.record);
    }
    metrics_.scan_analyzed->inc();
    if (scan != ScanVerdict::kClean) {
      (scan == ScanVerdict::kNetworkScan ? metrics_.scan_network : metrics_.scan_host)
          ->inc();
      verdict.attack = true;
      verdict.stage = alert::DetectionStage::kScanAnalysis;
      metrics_.verdict_attack_scan->inc();
      if (sink_ != nullptr) {
        emit_alert_with(suspect.record, suspect.ingress, suspect.now, verdict,
                        suspect.expected);
      }
      return verdict;
    }
  }

  if (config_.use_nns && clusters_ != nullptr) {
    {
      obs::StageTimer timer(metrics_.stage_nns_us);
      util::Rng flow_rng{flow_rng_seed(config_.seed, suspect.record)};
      verdict.nns = clusters_->assess(suspect.record, flow_rng);
    }
    metrics_.nns_assessed->inc();
    if (verdict.nns->anomalous) {
      metrics_.nns_anomalous->inc();
      verdict.attack = true;
      verdict.stage = alert::DetectionStage::kNnsDistance;
      metrics_.verdict_attack_nns->inc();
      if (sink_ != nullptr) {
        emit_alert_with(suspect.record, suspect.ingress, suspect.now, verdict,
                        suspect.expected);
      }
    } else {
      metrics_.nns_normal->inc();
      metrics_.verdict_cleared_nns->inc();
    }
    return verdict;
  }

  // Enhanced mode with every second stage disabled degenerates to Basic.
  verdict.attack = !suspect.learned;
  verdict.stage = alert::DetectionStage::kEiaMismatch;
  (verdict.attack ? metrics_.verdict_attack_eia : metrics_.verdict_cleared_learned)
      ->inc();
  if (verdict.attack && sink_ != nullptr) {
    emit_alert_with(suspect.record, suspect.ingress, suspect.now, verdict,
                    suspect.expected);
  }
  return verdict;
}

Verdict InFilterEngine::process(const netflow::V5Record& record, IngressId ingress,
                                util::TimeMs now) {
  Verdict verdict;
  SuspectFlow suspect;
  if (!pre_process(record, ingress, now, verdict, suspect)) return verdict;
  return finish_suspect(suspect);
}

void InFilterEngine::pre_process_batch(std::span<const FlowInput> flows,
                                       std::span<Verdict> out,
                                       std::vector<SuspectFlow>& suspects,
                                       std::vector<std::uint32_t>& positions) {
  assert(flows.size() == out.size());
  if (flows.empty()) return;
  const double batch_start_us = obs::monotonic_us();
  std::size_t legal = 0;

  // The stateful EIA stage, flow by flow in batch order (auto-learning
  // mutates the table exactly as the per-flow path would). A suspect's
  // expected-ingress alert context is snapshotted *here*, at the point the
  // per-flow path would read it, before later flows can update the EIA
  // table.
  for (std::size_t i = 0; i < flows.size(); ++i) {
    const auto& [record, ingress, now] = flows[i];
    metrics_.flows_total->inc();
    Verdict& verdict = out[i];
    verdict = Verdict{};

    bool expected;
    {
      obs::StageTimer timer(metrics_.stage_eia_us);
      expected = eia_.is_expected(ingress, record.src_ip, now);
    }

    // Same single-scan rule as pre_process: the home ingress is computed
    // lazily, at most once per flow, and the post-learn alert context is
    // derived rather than re-scanned.
    bool home_known = false;
    std::optional<IngressId> home;
    const auto home_ingress = [&] {
      if (!home_known) {
        home = eia_.expected_ingress(record.src_ip, now);
        home_known = true;
      }
      return home;
    };

    // Same TTL-witness rule as pre_process: EIA-vouched flows learn at the
    // observed ingress, EIA-missing flows are classified against their
    // source's home-ingress range.
    auto ttl = hopcount::TtlClass::kUnknown;
    if (config_.use_hopcount) {
      obs::StageTimer timer(metrics_.stage_hopcount_us);
      const auto witness =
          expected ? std::optional<IngressId>{ingress} : home_ingress();
      if (witness.has_value()) {
        ttl = hopcount_.analyze(*witness, record.src_ip, record.ttl, now,
                                expected);
      }
      (ttl == hopcount::TtlClass::kConsistent ? metrics_.hopcount_consistent
       : ttl == hopcount::TtlClass::kMiss     ? metrics_.hopcount_miss
                                              : metrics_.hopcount_unknown)
          ->inc();
    }

    if (expected) {
      metrics_.eia_hits->inc();
      if (ttl == hopcount::TtlClass::kMiss) {
        verdict.suspect = true;
        suspects.push_back(
            SuspectFlow{record, ingress, now, false, home_ingress(), ttl, true});
        positions.push_back(static_cast<std::uint32_t>(i));
        continue;
      }
      metrics_.verdict_legal->inc();
      ++legal;
      continue;
    }
    metrics_.eia_misses->inc();

    verdict.suspect = true;
    const std::optional<IngressId> pre_learn_home = home_ingress();
    const bool learned = eia_.observe_mismatch(ingress, record.src_ip, now);
    if (learned) metrics_.eia_learned->inc();
    // Post-learn context derived as in pre_process: min(home, ingress)
    // when this flow learned, home otherwise.
    suspects.push_back(SuspectFlow{
        record, ingress, now, learned,
        learned ? std::optional<IngressId>{pre_learn_home.has_value() &&
                                                   *pre_learn_home < ingress
                                               ? *pre_learn_home
                                               : ingress}
                : pre_learn_home,
        ttl, false});
    positions.push_back(static_cast<std::uint32_t>(i));
  }

  // Legal flows finish here, so their end-to-end latency sample is this
  // pass alone (batch-amortized); suspects get theirs from
  // finish_suspect_batch, keeping one process_us sample per flow overall.
  if (metrics_.process_us != nullptr && legal > 0) {
    const double per_flow_us = (obs::monotonic_us() - batch_start_us) /
                               static_cast<double>(flows.size());
    for (std::size_t i = 0; i < legal; ++i) {
      metrics_.process_us->observe(per_flow_us);
    }
  }
}

void InFilterEngine::finish_suspect_batch(std::span<const SuspectFlow> suspects,
                                          std::span<Verdict> out) {
  assert(suspects.size() == out.size());
  if (suspects.empty()) return;
  const double batch_start_us = obs::monotonic_us();
  auto& scratch = batch_scratch_;
  scratch.nns_ids.clear();
  scratch.nns_records.clear();
  scratch.nns_rngs.clear();

  // Pass 1 -- the stateful scan stage, suspect by suspect in span order
  // (the shared buffer sees them exactly as the per-flow path would).
  // Suspects that reach the NNS stage are gathered for pass 2; alerts are
  // only recorded, not emitted, so the stream can be replayed in span
  // order in pass 3.
  const bool degenerate_basic = config_.mode == EngineMode::kBasic ||
                                !config_.use_nns || clusters_ == nullptr;
  for (std::size_t i = 0; i < suspects.size(); ++i) {
    const SuspectFlow& suspect = suspects[i];
    Verdict& verdict = out[i];
    verdict = Verdict{};
    verdict.suspect = true;

    // Fused high-confidence path, as in finish_suspect(): bypasses the
    // scan buffer entirely, so the buffer sees exactly the suspects the
    // per-flow path would show it.
    if (!suspect.eia_hit && suspect.ttl == hopcount::TtlClass::kMiss &&
        !suspect.learned) {
      verdict.attack = true;
      verdict.stage = alert::DetectionStage::kHopCountFusion;
      metrics_.verdict_attack_fused->inc();
      continue;
    }

    if (config_.mode != EngineMode::kBasic && config_.use_scan_analysis) {
      ScanVerdict scan;
      {
        obs::StageTimer timer(metrics_.stage_scan_us);
        scan = scan_.observe(suspect.record);
      }
      metrics_.scan_analyzed->inc();
      if (scan != ScanVerdict::kClean) {
        (scan == ScanVerdict::kNetworkScan ? metrics_.scan_network
                                           : metrics_.scan_host)
            ->inc();
        verdict.attack = true;
        verdict.stage = alert::DetectionStage::kScanAnalysis;
        metrics_.verdict_attack_scan->inc();
        continue;
      }
    }

    if (degenerate_basic) {
      verdict.attack = !suspect.learned;
      verdict.stage = alert::DetectionStage::kEiaMismatch;
      (verdict.attack ? metrics_.verdict_attack_eia
                      : metrics_.verdict_cleared_learned)
          ->inc();
      continue;
    }

    scratch.nns_ids.push_back(static_cast<std::uint32_t>(i));
    scratch.nns_records.push_back(suspect.record);
    scratch.nns_rngs.emplace_back(flow_rng_seed(config_.seed, suspect.record));
  }

  // Pass 2 -- the stateless NNS stage over the gathered suspects as one
  // batch. The stage histogram records the batch-amortized per-flow cost
  // so its sample count still matches the per-flow path's.
  if (const std::size_t assessed = scratch.nns_ids.size(); assessed > 0) {
    if (scratch.nns_out.size() < assessed) scratch.nns_out.resize(assessed);
    const double nns_start_us = obs::monotonic_us();
    clusters_->assess_batch(
        std::span<const netflow::V5Record>(scratch.nns_records.data(), assessed),
        std::span<util::Rng>(scratch.nns_rngs.data(), assessed),
        std::span<TrainedClusters::Assessment>(scratch.nns_out.data(), assessed),
        scratch.clusters);
    if (metrics_.stage_nns_us != nullptr) {
      const double per_flow_us =
          (obs::monotonic_us() - nns_start_us) / static_cast<double>(assessed);
      for (std::size_t j = 0; j < assessed; ++j) {
        metrics_.stage_nns_us->observe(per_flow_us);
      }
    }
    for (std::size_t j = 0; j < assessed; ++j) {
      Verdict& verdict = out[scratch.nns_ids[j]];
      verdict.nns = scratch.nns_out[j];
      metrics_.nns_assessed->inc();
      if (verdict.nns->anomalous) {
        metrics_.nns_anomalous->inc();
        verdict.attack = true;
        verdict.stage = alert::DetectionStage::kNnsDistance;
        metrics_.verdict_attack_nns->inc();
      } else {
        metrics_.nns_normal->inc();
        metrics_.verdict_cleared_nns->inc();
      }
    }
  }

  // Pass 3 -- alert emission in span order: ids and contents match the
  // per-flow stream exactly (the expected-ingress context was snapshotted
  // at EIA-check time).
  if (sink_ != nullptr) {
    for (std::size_t i = 0; i < suspects.size(); ++i) {
      if (!out[i].attack) continue;
      emit_alert_with(suspects[i].record, suspects[i].ingress, suspects[i].now,
                      out[i], suspects[i].expected);
    }
  }

  if (metrics_.process_us != nullptr) {
    const double per_flow_us = (obs::monotonic_us() - batch_start_us) /
                               static_cast<double>(suspects.size());
    for (std::size_t i = 0; i < suspects.size(); ++i) {
      metrics_.process_us->observe(per_flow_us);
    }
  }
}

void InFilterEngine::process_batch(std::span<const FlowInput> flows,
                                   std::span<Verdict> out) {
  assert(flows.size() == out.size());
  if (flows.empty()) return;
  auto& scratch = batch_scratch_;
  scratch.suspects.clear();
  scratch.suspect_positions.clear();
  pre_process_batch(flows, out, scratch.suspects, scratch.suspect_positions);
  if (scratch.suspects.empty()) return;
  if (scratch.suspect_verdicts.size() < scratch.suspects.size()) {
    scratch.suspect_verdicts.resize(scratch.suspects.size());
  }
  finish_suspect_batch(
      scratch.suspects,
      std::span<Verdict>(scratch.suspect_verdicts.data(), scratch.suspects.size()));
  for (std::size_t j = 0; j < scratch.suspects.size(); ++j) {
    out[scratch.suspect_positions[j]] = scratch.suspect_verdicts[j];
  }
}

void InFilterEngine::emit_alert_with(const netflow::V5Record& record,
                                     IngressId ingress, util::TimeMs now,
                                     const Verdict& verdict,
                                     std::optional<IngressId> expected) {
  metrics_.alerts_total->inc();
  switch (verdict.stage) {
    case alert::DetectionStage::kEiaMismatch: metrics_.alerts_eia->inc(); break;
    case alert::DetectionStage::kScanAnalysis: metrics_.alerts_scan->inc(); break;
    case alert::DetectionStage::kNnsDistance: metrics_.alerts_nns->inc(); break;
    case alert::DetectionStage::kHopCountFusion:
      metrics_.alerts_fused->inc();
      break;
  }
  alert::Alert a;
  a.id = ++next_alert_id_;
  a.create_time = now;
  a.stage = verdict.stage;
  a.source_ip = record.src_ip;
  a.target_ip = record.dst_ip;
  a.target_port = record.dst_port;
  a.proto = record.proto;
  a.ingress_port = ingress;
  if (expected.has_value()) {
    a.expected_ingress = *expected;
  }
  if (verdict.nns.has_value()) {
    a.nns_distance = verdict.nns->distance;
    a.nns_threshold = verdict.nns->threshold;
  }
  a.detection_latency_ms = now >= record.last ? static_cast<double>(now - record.last) : 0.0;
  a.classification = std::string{"spoofed traffic ("} +
                     std::string{alert::stage_name(verdict.stage)} + ")";
  sink_->consume(a);
}

}  // namespace infilter::core

// Normal-cluster partitioning and per-subcluster NNS training
// (Sections 5.1.3 b-d).
//
// The training flows ("Normal cluster") are partitioned into protocol
// subclusters -- http (tcp/80), smtp (tcp/25), ftp (tcp/21), dns (udp/53),
// udp (other udp), tcp (other tcp) and icmp -- because "normal traffic
// flows to a particular application will show less variation ... than
// traffic flows to multiple applications". Each subcluster gets its own
// KOR search structure and its own Hamming-distance threshold, computed
// from the distribution of within-cluster nearest-neighbor distances.

#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string_view>

#include "flowtools/stats.h"
#include "netflow/v5.h"
#include "nns/encoding.h"
#include "nns/kor.h"

namespace infilter::core {

enum class Subcluster : std::uint8_t {
  kHttp,
  kSmtp,
  kFtp,
  kDns,
  kUdp,   ///< all udp except dns
  kTcp,   ///< all tcp without their own subcluster
  kIcmp,
};
inline constexpr int kSubclusterCount = 7;

[[nodiscard]] Subcluster classify(const netflow::V5Record& record);
[[nodiscard]] std::string_view subcluster_name(Subcluster cluster);

struct ClusterConfig {
  /// Unary bits per flow characteristic; d = 5 * bits_per_feature
  /// (the paper's d = 720 -> 144 bits per characteristic).
  int bits_per_feature = 144;
  /// Threshold = this percentile of within-cluster NN distances ...
  double threshold_percentile = 0.99;
  /// ... plus this margin (absolute Hamming distance).
  int threshold_margin = 6;
  nns::KorParams kor;
  /// Ablation switch: use the exact linear-scan index instead of KOR.
  bool use_exact_nns = false;
  /// Ablation switch: false trains one global cluster instead of the
  /// paper's per-protocol subclusters (Section 5.1.3c), quantifying the
  /// claim that per-application clusters "show less variation".
  bool partition_by_protocol = true;
};

/// The trained per-subcluster NNS structures and thresholds.
class TrainedClusters {
 public:
  /// Trains on the Normal cluster. Subclusters with fewer than 2 flows get
  /// an empty index (assess() reports no-neighbor = anomalous).
  TrainedClusters(std::span<const netflow::V5Record> normal_flows,
                  const ClusterConfig& config, std::uint64_t seed);

  /// Encodes a record's five statistics into the unary flow point.
  [[nodiscard]] nns::BitVector encode(const netflow::V5Record& record) const;

  /// Arena variant of encode(): reuses `out`'s buffer (no allocation once
  /// `out` has been sized).
  void encode_into(const netflow::V5Record& record, nns::BitVector& out) const;

  struct Assessment {
    bool anomalous = false;
    Subcluster cluster = Subcluster::kTcp;
    /// True Hamming distance to the found neighbor (-1 if none found).
    int distance = -1;
    int threshold = 0;
  };

  /// NNS analysis of Section 5.1.3(e): nearest neighbor in the record's
  /// subcluster, anomalous when beyond the subcluster threshold or when no
  /// neighbor exists.
  [[nodiscard]] Assessment assess(const netflow::V5Record& record,
                                  util::Rng& rng) const;

  /// Reusable working memory for assess_batch(): per-subcluster gather
  /// arrays (pools that grow to the high-water batch size, then stop
  /// allocating) plus the NNS-level scratch. One per processing thread.
  struct BatchScratch {
    struct Group {
      std::vector<nns::BitVector> queries;
      std::vector<util::Rng> rngs;
      std::vector<std::optional<nns::NnsMatch>> matches;
      std::vector<std::uint32_t> flow_ids;  ///< positions in the batch
      std::size_t count = 0;
    };
    std::array<Group, kSubclusterCount> groups;
    nns::NnsBatchScratch nns;
  };

  /// Batched assess: out[i] is exactly assess(records[i], rngs[i]) -- each
  /// flow consumes its own RNG identically to the per-flow path -- and
  /// rngs[i] is left in the same post-call state. Flows are gathered per
  /// subcluster so each subcluster's index sees one contiguous batch.
  /// Preconditions: records, rngs, and out have equal sizes.
  void assess_batch(std::span<const netflow::V5Record> records,
                    std::span<util::Rng> rngs, std::span<Assessment> out,
                    BatchScratch& scratch) const;

  [[nodiscard]] int threshold(Subcluster cluster) const {
    return thresholds_[static_cast<std::size_t>(cluster)];
  }
  [[nodiscard]] std::size_t training_size(Subcluster cluster) const;
  /// Flows across every subcluster (index + calibration split).
  [[nodiscard]] std::size_t training_size_total() const;

  /// Lifetime query counters. A TrainedClusters is often shared across
  /// engines (Section 6.3 builds the NNS structures once); these aggregate
  /// over every sharer, hence the atomics.
  struct IndexStats {
    std::uint64_t assessments = 0;  ///< assess() calls
    std::uint64_t no_neighbor = 0;  ///< queries that found no neighbor at all
  };
  [[nodiscard]] IndexStats stats() const {
    return {assessments_.load(std::memory_order_relaxed),
            no_neighbor_.load(std::memory_order_relaxed)};
  }
  [[nodiscard]] const nns::UnaryEncoder& encoder() const { return encoder_; }
  [[nodiscard]] int dimension() const { return encoder_.dimension(); }

 private:
  [[nodiscard]] Subcluster bucket_of(const netflow::V5Record& record) const;

  nns::UnaryEncoder encoder_;
  bool partition_by_protocol_ = true;
  std::array<std::unique_ptr<nns::NnsIndex>, kSubclusterCount> indexes_;
  std::array<int, kSubclusterCount> thresholds_{};
  /// Flows assigned to each subcluster (index + calibration split).
  std::array<std::size_t, kSubclusterCount> partition_sizes_{};
  mutable std::atomic<std::uint64_t> assessments_{0};
  mutable std::atomic<std::uint64_t> no_neighbor_{0};
};

/// The encoder the engine uses for the five statistics of Section 5.1.2:
/// log-scale ranges wide enough for both normal traffic and floods.
[[nodiscard]] nns::UnaryEncoder make_flow_encoder(int bits_per_feature);

}  // namespace infilter::core

// Attack traceback -- the extension the paper promises twice ("the
// approach can be easily extended to provide traceback capability to
// detect the ingress point of attack traffic into large IP networks",
// Sections 1 and 7).
//
// InFilter alerts already carry the ingress point (the collector port
// identifying the Peer AS / Border Router). Traceback aggregates the
// alert stream into *episodes* -- one attack as a human would name it --
// and reports, per episode, which ingress points carried the traffic and
// with what share of the evidence. A DDoS spraying through many border
// routers shows up as one distributed episode with per-ingress shares; a
// worm sweep groups by its target port across victims.
//
// TracebackEngine is itself an AlertSink, so it chains behind the
// analysis engine (optionally forwarding to a downstream consumer such as
// the Alert UI), exactly the "larger system that consumes such data" the
// paper sketches in Section 5.1.4.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "alert/idmef.h"
#include "core/eia.h"
#include "util/time.h"

namespace infilter::core {

struct TracebackConfig {
  /// Alerts matching an open episode but arriving more than this many
  /// (virtual) milliseconds after its last alert start a new episode.
  util::DurationMs episode_gap = 10 * util::kSecond;
  /// Bound on retained episodes; oldest closed episodes are evicted first.
  std::size_t max_episodes = 4096;
};

/// One ingress point's share of an episode's evidence.
struct IngressEvidence {
  IngressId ingress = 0;
  std::uint64_t alerts = 0;
  /// Fraction of the episode's alerts seen at this ingress.
  double share = 0;
};

/// One reconstructed attack.
struct AttackEpisode {
  std::uint64_t id = 0;
  /// The victim, when the episode targets a single host.
  std::optional<net::IPv4Address> victim;
  /// The destination port, when the episode sticks to one service
  /// (worm sweeps and network scans do; host scans do not).
  std::optional<std::uint16_t> service_port;
  util::TimeMs first_alert = 0;
  util::TimeMs last_alert = 0;
  std::uint64_t alert_count = 0;
  std::uint64_t distinct_victims = 0;
  /// Ingress evidence, sorted by descending share.
  std::vector<IngressEvidence> ingresses;

  /// More than one border router carried the attack (DDoS-like).
  [[nodiscard]] bool distributed() const { return ingresses.size() > 1; }
  /// The ingress carrying the plurality of the evidence.
  [[nodiscard]] IngressId primary_ingress() const;
  /// One-line human-readable report.
  [[nodiscard]] std::string summary() const;
};

class TracebackEngine final : public alert::AlertSink {
 public:
  explicit TracebackEngine(TracebackConfig config = {},
                           alert::AlertSink* downstream = nullptr);

  void consume(const alert::Alert& alert) override;

  /// All episodes, open and closed, oldest first.
  [[nodiscard]] std::vector<AttackEpisode> episodes() const;
  [[nodiscard]] std::size_t episode_count() const { return episodes_.size(); }

  /// Renders the full traceback report.
  [[nodiscard]] std::string report() const;

 private:
  struct EpisodeState {
    AttackEpisode episode;
    /// Distinct victims (bounded sample) for multi-victim detection.
    std::vector<std::uint32_t> victims_seen;
    /// Alert counts per ingress (small vector: one entry per peer AS).
    std::vector<std::pair<IngressId, std::uint64_t>> per_ingress;
  };

  EpisodeState* find_open(const alert::Alert& alert);
  static void finalize(EpisodeState& state);

  TracebackConfig config_;
  alert::AlertSink* downstream_;
  std::vector<EpisodeState> episodes_;
  std::uint64_t next_id_ = 1;
};

}  // namespace infilter::core

// Expected IP Address (EIA) sets -- the Basic InFilter data structure.
//
// Section 3: "The system would maintain a data structure containing the
// Expected source IP Address set (EIA set) on a per Peer AS basis.
// Incoming traffic with a source IP address not present in the
// corresponding Peer AS' EIA set would be flagged as a potential attack."
//
// An EIA set is a set of address ranges, stored as sorted disjoint
// intervals for O(log n) membership tests. The table supports the three
// initialization modes of Section 5.1.3(a) (preload by subnet mask, by
// hand, or learned from live flow data) and the Normal-processing-phase
// auto-learning rule of Section 5.2: a source /24 is added to an ingress's
// EIA set once enough flows from it arrive there.
//
// Membership storage is pluggable (core/eia_backend.h): the default exact
// interval sets, or a memory-bounded Bloom / counting-Bloom backend for
// internet-scale deployments. The table owns the learning machinery
// either way; only the membership representation varies.

#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/eia_backend.h"
#include "lifecycle/lifecycle.h"
#include "net/ipv4.h"
#include "util/time.h"

namespace infilter::core {

/// A set of IPv4 ranges with O(log n) lookup.
class EiaSet {
 public:
  /// Adds a prefix, merging overlapping/adjacent ranges.
  void add(const net::Prefix& prefix);

  [[nodiscard]] bool contains(net::IPv4Address address) const;
  [[nodiscard]] std::size_t range_count() const { return ranges_.size(); }
  [[nodiscard]] std::uint64_t address_count() const;
  /// Heap bytes held by the range store (capacity, not size: the memory
  /// actually reserved is what a deployment budget cares about).
  [[nodiscard]] std::size_t memory_bytes() const {
    return ranges_.capacity() * sizeof(Range);
  }

  /// Decomposes the stored ranges into the minimal list of CIDR prefixes
  /// covering exactly the same addresses (for persistence and display).
  [[nodiscard]] std::vector<net::Prefix> to_cidrs() const;

  /// Removes a prefix's addresses, splitting covering ranges as needed
  /// (lifecycle expiry of learned /24s). Returns true when any stored
  /// address was actually removed.
  bool remove(const net::Prefix& prefix);

 private:
  struct Range {
    std::uint32_t first;
    std::uint32_t last;  // inclusive
  };
  std::vector<Range> ranges_;  ///< sorted by first, disjoint, non-adjacent
};

/// Lifetime counters of one EiaTable (observability surface).
struct EiaStats {
  std::uint64_t lookups = 0;           ///< is_expected() calls
  std::uint64_t hits = 0;              ///< lookups that matched
  std::uint64_t learned_prefixes = 0;  ///< /24s auto-learned (Section 5.2a)
  std::uint64_t mismatch_observations = 0;
  /// Insert-when-full events on the pending learn-counter map: each one
  /// triggered the decay/eviction policy instead of (as before the fix)
  /// silently refusing to ever track the new candidate.
  std::uint64_t pending_rejected = 0;
  [[nodiscard]] std::uint64_t misses() const { return lookups - hits; }
};

struct EiaTableConfig {
  /// Flows from the same (ingress, source /24) before the /24 is learned
  /// into that ingress's EIA set (Section 5.2a's "predefined threshold").
  int learn_threshold = 5;
  /// Bound on the pending learn-counter map; spoofed floods would
  /// otherwise grow it without limit. The bound is enforced per bank
  /// (kPendingBanks banks keyed by the source /24's shard hash, cap =
  /// max_pending_counters / kPendingBanks, at least 1): when a bank is
  /// full, counters in it are halved and zeroed entries swept -- and if
  /// that frees nothing, the smallest (count, key) entry is evicted -- so
  /// a spoofed flood can delay but never permanently block a legitimate
  /// new source from learning. Bank-local decay keeps a flow's learning
  /// outcome a function of its own shard's history, preserving the
  /// sharded runtime's replay contract.
  std::size_t max_pending_counters = 1 << 20;
  /// Membership storage (core/eia_backend.h).
  EiaBackendConfig backend;
  /// Learned-entry aging (src/lifecycle). Off by default, which keeps the
  /// table bit-identical to the pre-lifecycle pipeline. Active only on
  /// backends that can remove a /24 (exact, counting-Bloom); the plain
  /// Bloom backend keeps its own rotating-sub-filter aging.
  lifecycle::LifecycleConfig lifecycle;
};

/// Per-ingress EIA sets plus the auto-learning machinery. Move-only: the
/// membership backend is owned behind a pointer.
class EiaTable {
 public:
  explicit EiaTable(EiaTableConfig config = {});

  /// Preloads `prefix` into `ingress`'s EIA set (training phase).
  void add_expected(IngressId ingress, const net::Prefix& prefix);

  /// Ensures `ingress` has an (initially empty) EIA set.
  void declare_ingress(IngressId ingress);

  /// Basic InFilter check: does `ingress` expect this source? Exact on
  /// the exact backend; on the probabilistic backends, subject to the
  /// configured false-positive budget (never falsely negative for a
  /// still-live learned key).
  [[nodiscard]] bool is_expected(IngressId ingress, net::IPv4Address source) const;

  /// Aging-aware check: with lifecycle aging enabled, first expires the
  /// (ingress, source /24) entry if it has idled past max_idle_ms of the
  /// flow-carried virtual time (membership removed, tombstone kept so a
  /// later relearn is counted), then refreshes last_seen on a hit. With
  /// aging off this is exactly the const overload -- bit-identical.
  /// Expiry is lazy and per-key (see lifecycle/lifecycle.h for why that
  /// preserves the serial-replay contract).
  [[nodiscard]] bool is_expected(IngressId ingress, net::IPv4Address source,
                                 util::TimeMs now);

  /// The ingress whose EIA set contains `source` (AS_IP(phi) of Section
  /// 5.2), or nullopt if no EIA set contains it. When several match, the
  /// lowest ingress id wins (deterministic). On the probabilistic
  /// backends this is the first-matching-ingress under the false-positive
  /// budget: a false positive can name a lower ingress than the exact
  /// answer. Callers use it as alert context and TTL-witness selection,
  /// both tolerant of an approximate answer (core/eia_backend.h).
  [[nodiscard]] std::optional<IngressId> expected_ingress(net::IPv4Address source) const;

  /// Aging-aware variant: expires the source's idled entries at every
  /// ingress first (no refresh -- a /24 seen only at *other* ingresses is
  /// exactly the drift aging exists to forget). Identical to the const
  /// overload with aging off.
  [[nodiscard]] std::optional<IngressId> expected_ingress(net::IPv4Address source,
                                                          util::TimeMs now);

  /// Records a flow that failed the check. Once learn_threshold flows from
  /// the same source /24 arrive at the same ingress, the /24 is added to
  /// that ingress's EIA set. Returns true when this call learned the /24.
  bool observe_mismatch(IngressId ingress, net::IPv4Address source);

  /// Aging-aware variant: on a learn, stamps the entry's age metadata
  /// (learned_at = last_seen = now) and counts a relearn when the key had
  /// previously expired. Identical to the plain overload with aging off.
  bool observe_mismatch(IngressId ingress, net::IPv4Address source,
                        util::TimeMs now);

  /// Eagerly expires every entry whose idle time exceeds max_idle_ms at
  /// `now` (memory reclaim). Uses the same predicate as the lazy lookup
  /// path, so it is verdict-neutral: it only removes entries every later
  /// lookup would have rejected anyway. Returns the number expired.
  std::size_t age_sweep(util::TimeMs now);

  /// True when entry aging is active (config enabled AND the backend can
  /// remove a /24).
  [[nodiscard]] bool aging_enabled() const {
    return config_.lifecycle.enabled() && backend_->supports_unlearn();
  }

  /// State of the (ingress, source /24) entry at `now`, or nullopt for
  /// keys the table knows nothing about. Preloaded (operator-provisioned)
  /// members report kEstablished forever.
  [[nodiscard]] std::optional<lifecycle::EntryState> entry_state(
      IngressId ingress, net::IPv4Address source, util::TimeMs now) const;

  [[nodiscard]] const lifecycle::LifecycleStats& lifecycle_stats() const {
    return lifecycle_stats_;
  }
  /// Age-metadata entries held (live + tombstones).
  [[nodiscard]] std::size_t aged_entry_count() const { return age_.size(); }

  /// One exported age record (persistence in eia_io, shard migration).
  struct AgedEntry {
    IngressId ingress;
    std::uint32_t key24;  ///< first address of the /24
    lifecycle::EntryAge age;

    friend bool operator==(const AgedEntry&, const AgedEntry&) = default;
  };
  /// All age metadata, sorted by (ingress, key24) -- deterministic.
  [[nodiscard]] std::vector<AgedEntry> aged_entries() const;
  /// Reattaches age metadata to a key (import / migration). Does not
  /// touch membership; pair with add_expected for live entries.
  void restore_age(IngressId ingress, std::uint32_t key24,
                   const lifecycle::EntryAge& age);

  /// Pending learn counters, sorted by key -- deterministic export for
  /// shard migration. Key layout: (ingress << 32) | source /24.
  [[nodiscard]] std::vector<std::pair<std::uint64_t, int>> pending_entries() const;
  /// Re-inserts one pending counter into its bank (shard migration).
  void restore_pending(std::uint64_t key, int count);

  [[nodiscard]] std::size_t ingress_count() const { return backend_->ingress_count(); }
  /// The exact backend's interval set (null for unknown ingresses and on
  /// the probabilistic backends, which have no interval representation).
  [[nodiscard]] const EiaSet* set_for(IngressId ingress) const {
    return backend_->set_for(ingress);
  }
  [[nodiscard]] std::size_t pending_counters() const;
  /// All ingress ids with an EIA set, ascending.
  [[nodiscard]] std::vector<IngressId> ingresses() const {
    return backend_->ingresses();
  }
  /// Stored ranges across every ingress's EIA set (probabilistic
  /// backends: /24 inserts performed).
  [[nodiscard]] std::size_t total_ranges() const { return backend_->total_ranges(); }
  /// Bytes held by the membership backend (infilter_eia_backend_bytes).
  [[nodiscard]] std::size_t memory_bytes() const { return backend_->memory_bytes(); }
  /// Bloom fill ratio; 0.0 on the exact backend.
  [[nodiscard]] double fill_ratio() const { return backend_->fill_ratio(); }
  [[nodiscard]] const EiaStats& stats() const { return stats_; }
  [[nodiscard]] const EiaTableConfig& config() const { return config_; }
  [[nodiscard]] const EiaBackend& backend() const { return *backend_; }
  /// Mutable backend access for persistence (eia_io) and tests.
  [[nodiscard]] EiaBackend& backend_mut() { return *backend_; }

  /// Pending-map banks; a power of two so bank-local decay refines every
  /// power-of-two runtime shard count (see max_pending_counters).
  static constexpr std::size_t kPendingBanks = 64;

 private:
  using PendingMap = std::unordered_map<std::uint64_t, int>;

  static std::uint64_t age_key(IngressId ingress, net::IPv4Address source) {
    return (std::uint64_t{ingress} << 32) | (source.value() & 0xFFFFFF00u);
  }
  /// Expires the entry behind `age` if it has idled out at `now`:
  /// membership removed, tombstone kept. Returns true when it did.
  bool expire_if_idle(IngressId ingress, std::uint32_t key24,
                      lifecycle::EntryAge& age, util::TimeMs now);

  EiaTableConfig config_;
  std::unique_ptr<EiaBackend> backend_;
  /// Mutable: is_expected() is logically const but counts its lookups.
  mutable EiaStats stats_;
  /// (ingress << 32 | source /24) -> observed mismatch count, banked by
  /// the /24's shard hash.
  std::array<PendingMap, kPendingBanks> pending_;
  std::size_t pending_bank_cap_;
  /// (ingress << 32 | source /24) -> age metadata for auto-learned keys
  /// (preloads exempt); expired entries stay as tombstones.
  std::unordered_map<std::uint64_t, lifecycle::EntryAge> age_;
  lifecycle::LifecycleStats lifecycle_stats_;
};

}  // namespace infilter::core

// Expected IP Address (EIA) sets -- the Basic InFilter data structure.
//
// Section 3: "The system would maintain a data structure containing the
// Expected source IP Address set (EIA set) on a per Peer AS basis.
// Incoming traffic with a source IP address not present in the
// corresponding Peer AS' EIA set would be flagged as a potential attack."
//
// An EIA set is a set of address ranges, stored as sorted disjoint
// intervals for O(log n) membership tests. The table supports the three
// initialization modes of Section 5.1.3(a) (preload by subnet mask, by
// hand, or learned from live flow data) and the Normal-processing-phase
// auto-learning rule of Section 5.2: a source /24 is added to an ingress's
// EIA set once enough flows from it arrive there.

#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "net/ipv4.h"

namespace infilter::core {

/// Identifies an ingress point (Peer AS / Border Router). In the testbed
/// this is the collector UDP port of the corresponding Dagflow instance.
using IngressId = std::uint16_t;

/// A set of IPv4 ranges with O(log n) lookup.
class EiaSet {
 public:
  /// Adds a prefix, merging overlapping/adjacent ranges.
  void add(const net::Prefix& prefix);

  [[nodiscard]] bool contains(net::IPv4Address address) const;
  [[nodiscard]] std::size_t range_count() const { return ranges_.size(); }
  [[nodiscard]] std::uint64_t address_count() const;

  /// Decomposes the stored ranges into the minimal list of CIDR prefixes
  /// covering exactly the same addresses (for persistence and display).
  [[nodiscard]] std::vector<net::Prefix> to_cidrs() const;

 private:
  struct Range {
    std::uint32_t first;
    std::uint32_t last;  // inclusive
  };
  std::vector<Range> ranges_;  ///< sorted by first, disjoint, non-adjacent
};

/// Lifetime counters of one EiaTable (observability surface).
struct EiaStats {
  std::uint64_t lookups = 0;           ///< is_expected() calls
  std::uint64_t hits = 0;              ///< lookups that matched
  std::uint64_t learned_prefixes = 0;  ///< /24s auto-learned (Section 5.2a)
  std::uint64_t mismatch_observations = 0;
  [[nodiscard]] std::uint64_t misses() const { return lookups - hits; }
};

struct EiaTableConfig {
  /// Flows from the same (ingress, source /24) before the /24 is learned
  /// into that ingress's EIA set (Section 5.2a's "predefined threshold").
  int learn_threshold = 5;
  /// Bound on the pending learn-counter map; spoofed floods would
  /// otherwise grow it without limit. When full, new candidates are not
  /// tracked (existing counters keep counting).
  std::size_t max_pending_counters = 1 << 20;
};

/// Per-ingress EIA sets plus the auto-learning machinery.
class EiaTable {
 public:
  explicit EiaTable(EiaTableConfig config = {});

  /// Preloads `prefix` into `ingress`'s EIA set (training phase).
  void add_expected(IngressId ingress, const net::Prefix& prefix);

  /// Ensures `ingress` has an (initially empty) EIA set.
  void declare_ingress(IngressId ingress);

  /// Basic InFilter check: does `ingress` expect this source?
  [[nodiscard]] bool is_expected(IngressId ingress, net::IPv4Address source) const;

  /// The ingress whose EIA set contains `source` (AS_IP(phi) of Section
  /// 5.2), or nullopt if no EIA set contains it. When several match, the
  /// lowest ingress id wins (deterministic).
  [[nodiscard]] std::optional<IngressId> expected_ingress(net::IPv4Address source) const;

  /// Records a flow that failed the check. Once learn_threshold flows from
  /// the same source /24 arrive at the same ingress, the /24 is added to
  /// that ingress's EIA set. Returns true when this call learned the /24.
  bool observe_mismatch(IngressId ingress, net::IPv4Address source);

  [[nodiscard]] std::size_t ingress_count() const { return sets_.size(); }
  [[nodiscard]] const EiaSet* set_for(IngressId ingress) const;
  [[nodiscard]] std::size_t pending_counters() const { return pending_.size(); }
  /// All ingress ids with an EIA set, ascending.
  [[nodiscard]] std::vector<IngressId> ingresses() const;
  /// Stored ranges across every ingress's EIA set.
  [[nodiscard]] std::size_t total_ranges() const;
  [[nodiscard]] const EiaStats& stats() const { return stats_; }

 private:
  EiaTableConfig config_;
  /// Mutable: is_expected() is logically const but counts its lookups.
  mutable EiaStats stats_;
  /// Sorted by ingress id; small (one entry per peer AS).
  std::vector<std::pair<IngressId, EiaSet>> sets_;
  /// (ingress << 32 | source /24) -> observed mismatch count.
  std::unordered_map<std::uint64_t, int> pending_;

  EiaSet& set_ref(IngressId ingress);
};

}  // namespace infilter::core

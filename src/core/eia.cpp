#include "core/eia.h"

#include <algorithm>
#include <bit>
#include <cassert>

#include "util/rng.h"

namespace infilter::core {

void EiaSet::add(const net::Prefix& prefix) {
  Range incoming{prefix.first().value(), prefix.last().value()};

  // Find the insertion window: all ranges overlapping or adjacent to the
  // incoming one get merged into it.
  auto first = std::lower_bound(
      ranges_.begin(), ranges_.end(), incoming,
      [](const Range& r, const Range& v) {
        // r ends strictly before v starts (and is not adjacent).
        return r.last != ~std::uint32_t{0} && r.last + 1 < v.first;
      });
  auto last = first;
  while (last != ranges_.end() &&
         (incoming.last == ~std::uint32_t{0} || last->first <= incoming.last + 1)) {
    incoming.first = std::min(incoming.first, last->first);
    incoming.last = std::max(incoming.last, last->last);
    ++last;
  }
  const auto at = ranges_.erase(first, last);
  ranges_.insert(at, incoming);
}

bool EiaSet::contains(net::IPv4Address address) const {
  const std::uint32_t value = address.value();
  auto it = std::upper_bound(ranges_.begin(), ranges_.end(), value,
                             [](std::uint32_t v, const Range& r) { return v < r.first; });
  if (it == ranges_.begin()) return false;
  --it;
  return value >= it->first && value <= it->last;
}

std::vector<net::Prefix> EiaSet::to_cidrs() const {
  std::vector<net::Prefix> out;
  for (const auto& range : ranges_) {
    // Greedy minimal decomposition: at each step emit the largest
    // power-of-two block that is aligned at `at` and fits within the range.
    std::uint64_t at = range.first;
    const std::uint64_t end = std::uint64_t{range.last} + 1;
    while (at < end) {
      // Largest alignment of `at` (32 for at == 0).
      int length = at == 0 ? 0 : 32 - std::countr_zero(static_cast<std::uint32_t>(at));
      // Shrink the block until it fits in the remaining span.
      while (length < 32 &&
             (std::uint64_t{1} << (32 - length)) > end - at) {
        ++length;
      }
      out.emplace_back(net::IPv4Address{static_cast<std::uint32_t>(at)}, length);
      at += std::uint64_t{1} << (32 - length);
    }
  }
  return out;
}

std::uint64_t EiaSet::address_count() const {
  std::uint64_t total = 0;
  for (const auto& range : ranges_) {
    total += std::uint64_t{range.last} - range.first + 1;
  }
  return total;
}

EiaTable::EiaTable(EiaTableConfig config)
    : config_(config),
      backend_(make_eia_backend(config.backend)),
      pending_bank_cap_(std::max<std::size_t>(
          1, config.max_pending_counters / kPendingBanks)) {
  assert(config_.learn_threshold > 0);
}

void EiaTable::add_expected(IngressId ingress, const net::Prefix& prefix) {
  backend_->add(ingress, prefix);
}

void EiaTable::declare_ingress(IngressId ingress) {
  backend_->declare_ingress(ingress);
}

bool EiaTable::is_expected(IngressId ingress, net::IPv4Address source) const {
  ++stats_.lookups;
  const bool hit = backend_->contains(ingress, source);
  stats_.hits += hit ? 1 : 0;
  return hit;
}

std::optional<IngressId> EiaTable::expected_ingress(net::IPv4Address source) const {
  return backend_->expected_ingress(source);
}

std::size_t EiaTable::pending_counters() const {
  std::size_t total = 0;
  for (const auto& bank : pending_) total += bank.size();
  return total;
}

bool EiaTable::observe_mismatch(IngressId ingress, net::IPv4Address source) {
  ++stats_.mismatch_observations;
  const std::uint32_t key24 = source.value() & 0xFFFFFF00u;
  const std::uint64_t key = (std::uint64_t{ingress} << 32) | key24;
  // Bank by the /24's shard hash (the exact function the runtime's
  // shard_of uses), so every key that can influence a bank's decay lives
  // on the same runtime shard: a flow's learning outcome stays a function
  // of its own shard's history at every power-of-two shard count.
  auto& bank = pending_[util::SplitMix64{key24}.next() % kPendingBanks];
  auto it = bank.find(key);
  if (it == bank.end()) {
    if (bank.size() >= pending_bank_cap_) {
      // Insert-when-full: decay instead of the historical silent refusal
      // (which let a spoofed flood permanently starve legitimate new
      // sources of learning). Halve every counter and sweep the zeroed
      // ones -- a flood's once-seen keys all go -- then, if the bank is
      // somehow still full of entries with >= 2 observations, evict the
      // deterministic minimum so the newcomer always gets a counter.
      ++stats_.pending_rejected;
      for (auto entry = bank.begin(); entry != bank.end();) {
        entry->second /= 2;
        entry = entry->second == 0 ? bank.erase(entry) : std::next(entry);
      }
      if (bank.size() >= pending_bank_cap_) {
        auto victim = bank.begin();
        for (auto entry = std::next(bank.begin()); entry != bank.end(); ++entry) {
          if (entry->second < victim->second ||
              (entry->second == victim->second && entry->first < victim->first)) {
            victim = entry;
          }
        }
        bank.erase(victim);
      }
    }
    it = bank.emplace(key, 0).first;
  }
  if (++it->second >= config_.learn_threshold) {
    backend_->add(ingress, net::Prefix{source, 24});
    bank.erase(it);
    ++stats_.learned_prefixes;
    return true;
  }
  return false;
}

}  // namespace infilter::core

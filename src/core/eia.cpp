#include "core/eia.h"

#include <algorithm>
#include <bit>
#include <cassert>

#include "util/rng.h"

namespace infilter::core {

void EiaSet::add(const net::Prefix& prefix) {
  Range incoming{prefix.first().value(), prefix.last().value()};

  // Find the insertion window: all ranges overlapping or adjacent to the
  // incoming one get merged into it.
  auto first = std::lower_bound(
      ranges_.begin(), ranges_.end(), incoming,
      [](const Range& r, const Range& v) {
        // r ends strictly before v starts (and is not adjacent).
        return r.last != ~std::uint32_t{0} && r.last + 1 < v.first;
      });
  auto last = first;
  while (last != ranges_.end() &&
         (incoming.last == ~std::uint32_t{0} || last->first <= incoming.last + 1)) {
    incoming.first = std::min(incoming.first, last->first);
    incoming.last = std::max(incoming.last, last->last);
    ++last;
  }
  const auto at = ranges_.erase(first, last);
  ranges_.insert(at, incoming);
}

bool EiaSet::contains(net::IPv4Address address) const {
  const std::uint32_t value = address.value();
  auto it = std::upper_bound(ranges_.begin(), ranges_.end(), value,
                             [](std::uint32_t v, const Range& r) { return v < r.first; });
  if (it == ranges_.begin()) return false;
  --it;
  return value >= it->first && value <= it->last;
}

std::vector<net::Prefix> EiaSet::to_cidrs() const {
  std::vector<net::Prefix> out;
  for (const auto& range : ranges_) {
    // Greedy minimal decomposition: at each step emit the largest
    // power-of-two block that is aligned at `at` and fits within the range.
    std::uint64_t at = range.first;
    const std::uint64_t end = std::uint64_t{range.last} + 1;
    while (at < end) {
      // Largest alignment of `at` (32 for at == 0).
      int length = at == 0 ? 0 : 32 - std::countr_zero(static_cast<std::uint32_t>(at));
      // Shrink the block until it fits in the remaining span.
      while (length < 32 &&
             (std::uint64_t{1} << (32 - length)) > end - at) {
        ++length;
      }
      out.emplace_back(net::IPv4Address{static_cast<std::uint32_t>(at)}, length);
      at += std::uint64_t{1} << (32 - length);
    }
  }
  return out;
}

bool EiaSet::remove(const net::Prefix& prefix) {
  const std::uint32_t first = prefix.first().value();
  const std::uint32_t last = prefix.last().value();

  // First stored range that could overlap [first, last].
  auto it = std::upper_bound(ranges_.begin(), ranges_.end(), first,
                             [](std::uint32_t v, const Range& r) { return v < r.first; });
  if (it != ranges_.begin() && std::prev(it)->last >= first) --it;

  bool removed = false;
  while (it != ranges_.end() && it->first <= last) {
    const Range hit = *it;
    removed = true;
    // Keep the pieces of `hit` outside [first, last], if any.
    const bool keep_low = hit.first < first;
    const bool keep_high = hit.last > last;
    if (keep_low && keep_high) {
      it->last = first - 1;
      it = std::next(ranges_.insert(std::next(it), Range{last + 1, hit.last}));
    } else if (keep_low) {
      it->last = first - 1;
      ++it;
    } else if (keep_high) {
      it->first = last + 1;
      ++it;
    } else {
      it = ranges_.erase(it);
    }
  }
  return removed;
}

std::uint64_t EiaSet::address_count() const {
  std::uint64_t total = 0;
  for (const auto& range : ranges_) {
    total += std::uint64_t{range.last} - range.first + 1;
  }
  return total;
}

EiaTable::EiaTable(EiaTableConfig config)
    : config_(config),
      backend_(make_eia_backend(config.backend)),
      pending_bank_cap_(std::max<std::size_t>(
          1, config.max_pending_counters / kPendingBanks)) {
  assert(config_.learn_threshold > 0);
}

void EiaTable::add_expected(IngressId ingress, const net::Prefix& prefix) {
  backend_->add(ingress, prefix);
}

void EiaTable::declare_ingress(IngressId ingress) {
  backend_->declare_ingress(ingress);
}

bool EiaTable::is_expected(IngressId ingress, net::IPv4Address source) const {
  ++stats_.lookups;
  const bool hit = backend_->contains(ingress, source);
  stats_.hits += hit ? 1 : 0;
  return hit;
}

std::optional<IngressId> EiaTable::expected_ingress(net::IPv4Address source) const {
  return backend_->expected_ingress(source);
}

std::size_t EiaTable::pending_counters() const {
  std::size_t total = 0;
  for (const auto& bank : pending_) total += bank.size();
  return total;
}

bool EiaTable::observe_mismatch(IngressId ingress, net::IPv4Address source) {
  ++stats_.mismatch_observations;
  const std::uint32_t key24 = source.value() & 0xFFFFFF00u;
  const std::uint64_t key = (std::uint64_t{ingress} << 32) | key24;
  // Bank by the /24's shard hash (the exact function the runtime's
  // shard_of uses), so every key that can influence a bank's decay lives
  // on the same runtime shard: a flow's learning outcome stays a function
  // of its own shard's history at every power-of-two shard count.
  auto& bank = pending_[util::SplitMix64{key24}.next() % kPendingBanks];
  auto it = bank.find(key);
  if (it == bank.end()) {
    if (bank.size() >= pending_bank_cap_) {
      // Insert-when-full: decay instead of the historical silent refusal
      // (which let a spoofed flood permanently starve legitimate new
      // sources of learning). Halve every counter and sweep the zeroed
      // ones -- a flood's once-seen keys all go -- then, if the bank is
      // somehow still full of entries with >= 2 observations, evict the
      // deterministic minimum so the newcomer always gets a counter.
      ++stats_.pending_rejected;
      for (auto entry = bank.begin(); entry != bank.end();) {
        entry->second /= 2;
        entry = entry->second == 0 ? bank.erase(entry) : std::next(entry);
      }
      if (bank.size() >= pending_bank_cap_) {
        auto victim = bank.begin();
        for (auto entry = std::next(bank.begin()); entry != bank.end(); ++entry) {
          if (entry->second < victim->second ||
              (entry->second == victim->second && entry->first < victim->first)) {
            victim = entry;
          }
        }
        bank.erase(victim);
      }
    }
    it = bank.emplace(key, 0).first;
  }
  if (++it->second >= config_.learn_threshold) {
    backend_->add(ingress, net::Prefix{source, 24});
    bank.erase(it);
    ++stats_.learned_prefixes;
    return true;
  }
  return false;
}

// -- Lifecycle aging (src/lifecycle) --------------------------------------

bool EiaTable::expire_if_idle(IngressId ingress, std::uint32_t key24,
                              lifecycle::EntryAge& age, util::TimeMs now) {
  if (age.expired ||
      !lifecycle::idle_expired(age.last_seen, now, config_.lifecycle.max_idle_ms)) {
    return false;
  }
  backend_->unlearn(ingress, net::Prefix{net::IPv4Address{key24}, 24});
  age.expired = true;
  ++lifecycle_stats_.entries_expired;
  return true;
}

bool EiaTable::is_expected(IngressId ingress, net::IPv4Address source,
                           util::TimeMs now) {
  if (!aging_enabled()) return is_expected(ingress, source);
  auto it = age_.find(age_key(ingress, source));
  if (it != age_.end()) {
    expire_if_idle(ingress, source.value() & 0xFFFFFF00u, it->second, now);
  }
  const bool hit = is_expected(ingress, source);
  if (hit && it != age_.end() && !it->second.expired &&
      now > it->second.last_seen) {
    it->second.last_seen = now;
    ++lifecycle_stats_.entries_refreshed;
  }
  return hit;
}

std::optional<IngressId> EiaTable::expected_ingress(net::IPv4Address source,
                                                    util::TimeMs now) {
  if (!aging_enabled()) return expected_ingress(source);
  const std::uint32_t key24 = source.value() & 0xFFFFFF00u;
  for (const IngressId ingress : backend_->ingresses()) {
    auto it = age_.find((std::uint64_t{ingress} << 32) | key24);
    if (it != age_.end()) expire_if_idle(ingress, key24, it->second, now);
  }
  return backend_->expected_ingress(source);
}

bool EiaTable::observe_mismatch(IngressId ingress, net::IPv4Address source,
                                util::TimeMs now) {
  if (!aging_enabled()) return observe_mismatch(ingress, source);
  const bool learned = observe_mismatch(ingress, source);
  if (learned) {
    auto& age = age_[age_key(ingress, source)];
    if (age.expired) ++lifecycle_stats_.entries_relearned;
    age = lifecycle::EntryAge{.learned_at = now, .last_seen = now, .expired = false};
  }
  return learned;
}

std::size_t EiaTable::age_sweep(util::TimeMs now) {
  if (!aging_enabled()) return 0;
  ++lifecycle_stats_.sweeps;
  std::size_t expired = 0;
  for (auto& [key, age] : age_) {
    const auto ingress = static_cast<IngressId>(key >> 32);
    const auto key24 = static_cast<std::uint32_t>(key & 0xFFFFFFFFu);
    if (expire_if_idle(ingress, key24, age, now)) ++expired;
  }
  return expired;
}

std::optional<lifecycle::EntryState> EiaTable::entry_state(
    IngressId ingress, net::IPv4Address source, util::TimeMs now) const {
  const std::uint32_t key24 = source.value() & 0xFFFFFF00u;
  const std::uint64_t key = age_key(ingress, source);
  if (pending_[util::SplitMix64{key24}.next() % kPendingBanks].contains(key)) {
    return lifecycle::EntryState::kLearning;
  }
  if (auto it = age_.find(key); it != age_.end()) {
    if (it->second.expired) return lifecycle::EntryState::kExpired;
    if (!aging_enabled()) return lifecycle::EntryState::kEstablished;
    return lifecycle::idle_state(it->second.last_seen, now, config_.lifecycle);
  }
  // Membership with no age metadata is a preload: established forever.
  if (backend_->contains(ingress, source)) return lifecycle::EntryState::kEstablished;
  return std::nullopt;
}

std::vector<EiaTable::AgedEntry> EiaTable::aged_entries() const {
  std::vector<AgedEntry> out;
  out.reserve(age_.size());
  for (const auto& [key, age] : age_) {
    out.push_back(AgedEntry{static_cast<IngressId>(key >> 32),
                            static_cast<std::uint32_t>(key & 0xFFFFFFFFu), age});
  }
  std::sort(out.begin(), out.end(), [](const AgedEntry& a, const AgedEntry& b) {
    return a.ingress != b.ingress ? a.ingress < b.ingress : a.key24 < b.key24;
  });
  return out;
}

void EiaTable::restore_age(IngressId ingress, std::uint32_t key24,
                           const lifecycle::EntryAge& age) {
  age_[(std::uint64_t{ingress} << 32) | (key24 & 0xFFFFFF00u)] = age;
}

std::vector<std::pair<std::uint64_t, int>> EiaTable::pending_entries() const {
  std::vector<std::pair<std::uint64_t, int>> out;
  for (const auto& bank : pending_) out.insert(out.end(), bank.begin(), bank.end());
  std::sort(out.begin(), out.end());
  return out;
}

void EiaTable::restore_pending(std::uint64_t key, int count) {
  const auto key24 = static_cast<std::uint32_t>(key & 0xFFFFFFFFu);
  pending_[util::SplitMix64{key24}.next() % kPendingBanks][key] = count;
}

}  // namespace infilter::core

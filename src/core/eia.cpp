#include "core/eia.h"

#include <algorithm>
#include <bit>
#include <cassert>

namespace infilter::core {

void EiaSet::add(const net::Prefix& prefix) {
  Range incoming{prefix.first().value(), prefix.last().value()};

  // Find the insertion window: all ranges overlapping or adjacent to the
  // incoming one get merged into it.
  auto first = std::lower_bound(
      ranges_.begin(), ranges_.end(), incoming,
      [](const Range& r, const Range& v) {
        // r ends strictly before v starts (and is not adjacent).
        return r.last != ~std::uint32_t{0} && r.last + 1 < v.first;
      });
  auto last = first;
  while (last != ranges_.end() &&
         (incoming.last == ~std::uint32_t{0} || last->first <= incoming.last + 1)) {
    incoming.first = std::min(incoming.first, last->first);
    incoming.last = std::max(incoming.last, last->last);
    ++last;
  }
  const auto at = ranges_.erase(first, last);
  ranges_.insert(at, incoming);
}

bool EiaSet::contains(net::IPv4Address address) const {
  const std::uint32_t value = address.value();
  auto it = std::upper_bound(ranges_.begin(), ranges_.end(), value,
                             [](std::uint32_t v, const Range& r) { return v < r.first; });
  if (it == ranges_.begin()) return false;
  --it;
  return value >= it->first && value <= it->last;
}

std::vector<net::Prefix> EiaSet::to_cidrs() const {
  std::vector<net::Prefix> out;
  for (const auto& range : ranges_) {
    // Greedy minimal decomposition: at each step emit the largest
    // power-of-two block that is aligned at `at` and fits within the range.
    std::uint64_t at = range.first;
    const std::uint64_t end = std::uint64_t{range.last} + 1;
    while (at < end) {
      // Largest alignment of `at` (32 for at == 0).
      int length = at == 0 ? 0 : 32 - std::countr_zero(static_cast<std::uint32_t>(at));
      // Shrink the block until it fits in the remaining span.
      while (length < 32 &&
             (std::uint64_t{1} << (32 - length)) > end - at) {
        ++length;
      }
      out.emplace_back(net::IPv4Address{static_cast<std::uint32_t>(at)}, length);
      at += std::uint64_t{1} << (32 - length);
    }
  }
  return out;
}

std::uint64_t EiaSet::address_count() const {
  std::uint64_t total = 0;
  for (const auto& range : ranges_) {
    total += std::uint64_t{range.last} - range.first + 1;
  }
  return total;
}

EiaTable::EiaTable(EiaTableConfig config) : config_(config) {
  assert(config_.learn_threshold > 0);
}

EiaSet& EiaTable::set_ref(IngressId ingress) {
  auto it = std::lower_bound(sets_.begin(), sets_.end(), ingress,
                             [](const auto& entry, IngressId id) {
                               return entry.first < id;
                             });
  if (it == sets_.end() || it->first != ingress) {
    it = sets_.insert(it, {ingress, EiaSet{}});
  }
  return it->second;
}

const EiaSet* EiaTable::set_for(IngressId ingress) const {
  auto it = std::lower_bound(sets_.begin(), sets_.end(), ingress,
                             [](const auto& entry, IngressId id) {
                               return entry.first < id;
                             });
  if (it == sets_.end() || it->first != ingress) return nullptr;
  return &it->second;
}

void EiaTable::add_expected(IngressId ingress, const net::Prefix& prefix) {
  set_ref(ingress).add(prefix);
}

void EiaTable::declare_ingress(IngressId ingress) { (void)set_ref(ingress); }

bool EiaTable::is_expected(IngressId ingress, net::IPv4Address source) const {
  ++stats_.lookups;
  const EiaSet* set = set_for(ingress);
  const bool hit = set != nullptr && set->contains(source);
  stats_.hits += hit ? 1 : 0;
  return hit;
}

std::optional<IngressId> EiaTable::expected_ingress(net::IPv4Address source) const {
  for (const auto& [ingress, set] : sets_) {
    if (set.contains(source)) return ingress;
  }
  return std::nullopt;
}

std::vector<IngressId> EiaTable::ingresses() const {
  std::vector<IngressId> out;
  out.reserve(sets_.size());
  for (const auto& [ingress, set] : sets_) out.push_back(ingress);
  return out;
}

std::size_t EiaTable::total_ranges() const {
  std::size_t total = 0;
  for (const auto& [ingress, set] : sets_) total += set.range_count();
  return total;
}

bool EiaTable::observe_mismatch(IngressId ingress, net::IPv4Address source) {
  ++stats_.mismatch_observations;
  const std::uint64_t key =
      (std::uint64_t{ingress} << 32) | (source.value() & 0xFFFFFF00u);
  auto it = pending_.find(key);
  if (it == pending_.end()) {
    if (pending_.size() >= config_.max_pending_counters) return false;
    it = pending_.emplace(key, 0).first;
  }
  if (++it->second >= config_.learn_threshold) {
    set_ref(ingress).add(net::Prefix{source, 24});
    pending_.erase(it);
    ++stats_.learned_prefixes;
    return true;
  }
  return false;
}

}  // namespace infilter::core

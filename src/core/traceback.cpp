#include "core/traceback.h"

#include <algorithm>
#include <sstream>

namespace infilter::core {

IngressId AttackEpisode::primary_ingress() const {
  return ingresses.empty() ? 0 : ingresses.front().ingress;
}

std::string AttackEpisode::summary() const {
  std::ostringstream out;
  out << "episode " << id << ": " << alert_count << " alert(s)";
  if (victim.has_value()) {
    out << " against " << victim->to_string();
  } else {
    out << " against " << distinct_victims << " hosts";
  }
  if (service_port.has_value()) out << " on port " << *service_port;
  out << ", " << (distributed() ? "DISTRIBUTED via" : "via");
  for (const auto& evidence : ingresses) {
    out << " ingress " << evidence.ingress << " ("
        << static_cast<int>(evidence.share * 100.0 + 0.5) << "%)";
  }
  return std::move(out).str();
}

TracebackEngine::TracebackEngine(TracebackConfig config, alert::AlertSink* downstream)
    : config_(config), downstream_(downstream) {}

TracebackEngine::EpisodeState* TracebackEngine::find_open(const alert::Alert& alert) {
  // Newest episodes first: attacks are bursts, so the match is near the
  // back. An alert joins an episode when it shares the victim host, or --
  // for sweep-style traffic -- the (service port, still-fresh) pattern.
  for (auto it = episodes_.rbegin(); it != episodes_.rend(); ++it) {
    auto& state = *it;
    if (alert.create_time > state.episode.last_alert + config_.episode_gap) continue;
    const bool same_victim =
        state.episode.victim.has_value() && *state.episode.victim == alert.target_ip;
    const bool victim_seen =
        std::find(state.victims_seen.begin(), state.victims_seen.end(),
                  alert.target_ip.value()) != state.victims_seen.end();
    const bool same_service = state.episode.service_port.has_value() &&
                              alert.target_port != 0 &&
                              *state.episode.service_port == alert.target_port;
    if (same_victim || victim_seen || same_service) return &state;
  }
  return nullptr;
}

void TracebackEngine::consume(const alert::Alert& alert) {
  EpisodeState* state = find_open(alert);
  if (state == nullptr) {
    if (episodes_.size() >= config_.max_episodes) {
      episodes_.erase(episodes_.begin());
    }
    episodes_.emplace_back();
    state = &episodes_.back();
    state->episode.id = next_id_++;
    state->episode.first_alert = alert.create_time;
    state->episode.victim = alert.target_ip;
    if (alert.target_port != 0) state->episode.service_port = alert.target_port;
  }

  auto& episode = state->episode;
  episode.last_alert = std::max(episode.last_alert, alert.create_time);
  episode.alert_count += 1;

  // Victim tracking: a second distinct victim turns the episode into a
  // sweep (victim cleared, distinct count maintained on a bounded sample).
  if (std::find(state->victims_seen.begin(), state->victims_seen.end(),
                alert.target_ip.value()) == state->victims_seen.end()) {
    if (state->victims_seen.size() < 4096) {
      state->victims_seen.push_back(alert.target_ip.value());
    }
    episode.distinct_victims = state->victims_seen.size();
  }
  if (episode.victim.has_value() && *episode.victim != alert.target_ip) {
    episode.victim.reset();
  }
  // Service tracking: a second distinct port clears the service (host
  // scans probe many ports).
  if (episode.service_port.has_value() && alert.target_port != 0 &&
      *episode.service_port != alert.target_port) {
    episode.service_port.reset();
  }

  auto ingress_it = std::find_if(
      state->per_ingress.begin(), state->per_ingress.end(),
      [&alert](const auto& entry) { return entry.first == alert.ingress_port; });
  if (ingress_it == state->per_ingress.end()) {
    state->per_ingress.emplace_back(alert.ingress_port, 1);
  } else {
    ingress_it->second += 1;
  }

  if (downstream_ != nullptr) downstream_->consume(alert);
}

void TracebackEngine::finalize(EpisodeState& state) {
  auto& episode = state.episode;
  episode.ingresses.clear();
  episode.ingresses.reserve(state.per_ingress.size());
  for (const auto& [ingress, alerts] : state.per_ingress) {
    episode.ingresses.push_back(IngressEvidence{
        ingress, alerts,
        static_cast<double>(alerts) / static_cast<double>(episode.alert_count)});
  }
  std::sort(episode.ingresses.begin(), episode.ingresses.end(),
            [](const IngressEvidence& a, const IngressEvidence& b) {
              if (a.alerts != b.alerts) return a.alerts > b.alerts;
              return a.ingress < b.ingress;
            });
}

std::vector<AttackEpisode> TracebackEngine::episodes() const {
  std::vector<AttackEpisode> out;
  out.reserve(episodes_.size());
  for (const auto& state : episodes_) {
    EpisodeState copy = state;
    finalize(copy);
    out.push_back(std::move(copy.episode));
  }
  return out;
}

std::string TracebackEngine::report() const {
  std::ostringstream out;
  const auto all = episodes();
  out << "traceback: " << all.size() << " episode(s)\n";
  for (const auto& episode : all) {
    out << "  " << episode.summary() << "\n";
  }
  return std::move(out).str();
}

}  // namespace infilter::core

// The InFilter analysis engine: Basic (EIA only) and Enhanced
// (EIA -> Scan Analysis -> NNS) configurations, implementing the Normal
// processing phase of Figure 12 and the training phase of Figure 11.

#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>

#include "alert/idmef.h"
#include "core/cluster.h"
#include "core/eia.h"
#include "core/scan.h"
#include "netflow/v5.h"
#include "obs/metrics.h"
#include "obs/pipeline.h"

namespace infilter::core {

/// The two software configurations of Section 6.3.
enum class EngineMode : std::uint8_t {
  kBasic,     ///< "BI": EIA set analysis alone
  kEnhanced,  ///< "EI": EIA -> Scan Analysis -> NNS
};

struct EngineConfig {
  EngineMode mode = EngineMode::kEnhanced;
  EiaTableConfig eia;
  ScanConfig scan;
  ClusterConfig cluster;
  /// Ablation switches (both true reproduces the paper's EI pipeline).
  bool use_scan_analysis = true;
  bool use_nns = true;
  /// Seeds the NNS probe randomness. The probe RNG is derived *per flow*
  /// from (seed, flow fields), never from a sequential stream, so a
  /// flow's verdict depends only on the engine's configuration, its
  /// trained clusters, and the previously processed flows that share the
  /// verdict-relevant state keys (EIA learning: the flow's (ingress,
  /// source /24); scan analysis: the whole suspect buffer) -- not on how
  /// many unrelated flows happened to be processed first. The sharded
  /// runtime (src/runtime) relies on this for serial-equivalence.
  std::uint64_t seed = 1;
  /// External metrics registry (not owned). Null: the engine creates a
  /// private registry, reachable via registry(). The engine registers
  /// pull-style component metrics (EIA/scan/NNS internals) that read its
  /// members, so an external registry must not be snapshotted after the
  /// engine is destroyed.
  obs::Registry* registry = nullptr;
};

/// Outcome of processing one flow.
struct Verdict {
  bool attack = false;
  alert::DetectionStage stage = alert::DetectionStage::kEiaMismatch;
  /// True when the EIA check failed (also true for every attack verdict).
  bool suspect = false;
  /// NNS diagnostics, when the flow reached NNS analysis.
  std::optional<TrainedClusters::Assessment> nns;
};

class InFilterEngine {
 public:
  /// `sink` may be null (no alert emission); not owned.
  explicit InFilterEngine(EngineConfig config, alert::AlertSink* sink = nullptr);

  /// Immovable: the registry holds pull-style callbacks bound to this
  /// engine's address.
  InFilterEngine(const InFilterEngine&) = delete;
  InFilterEngine& operator=(const InFilterEngine&) = delete;

  // -- Training phase (Figure 11) --

  /// Preloads an EIA entry (Section 5.1.3a; Table 3 in the testbed).
  void add_expected(IngressId ingress, const net::Prefix& prefix);

  /// Builds the Normal cluster, partitions it, and constructs the NNS
  /// search structures (Sections 5.1.3 b-d). Replaces any prior training.
  void train(std::span<const netflow::V5Record> normal_flows);

  /// Installs pre-built search structures. The paper constructs the NNS
  /// structures once "prior to the experiment runs"; sharing one trained
  /// set across engines mirrors that and avoids retraining per run.
  void set_clusters(std::shared_ptr<const TrainedClusters> clusters);

  // -- Normal processing phase (Figure 12) --

  /// Processes one incoming flow observed at `ingress` at virtual time
  /// `now`. Emits an IDMEF alert through the sink on attack verdicts.
  Verdict process(const netflow::V5Record& record, IngressId ingress,
                  util::TimeMs now);

  [[nodiscard]] const EiaTable& eia() const { return eia_; }
  [[nodiscard]] const TrainedClusters* clusters() const { return clusters_.get(); }
  [[nodiscard]] ScanAnalysis& scan() { return scan_; }
  [[nodiscard]] const EngineConfig& config() const { return config_; }

  /// The registry every pipeline metric lives in (the external one when
  /// EngineConfig::registry was set, the engine-private one otherwise).
  [[nodiscard]] obs::Registry& registry() { return *registry_; }
  [[nodiscard]] const obs::Registry& registry() const { return *registry_; }
  /// Direct handles to the per-stage counters and latency histograms.
  [[nodiscard]] const obs::PipelineMetrics& metrics() const { return metrics_; }

  [[nodiscard]] std::uint64_t flows_processed() const {
    return metrics_.flows_total->value();
  }
  /// Alerts actually delivered to the sink -- 0 when no sink is attached.
  [[nodiscard]] std::uint64_t alerts_emitted() const {
    return metrics_.alerts_total->value();
  }

 private:
  void emit_alert(const netflow::V5Record& record, IngressId ingress,
                  util::TimeMs now, const Verdict& verdict);
  void register_component_metrics();

  EngineConfig config_;
  alert::AlertSink* sink_;
  EiaTable eia_;
  ScanAnalysis scan_;
  std::shared_ptr<const TrainedClusters> clusters_;
  std::unique_ptr<obs::Registry> owned_registry_;  ///< when config.registry == null
  obs::Registry* registry_;                        ///< never null
  obs::PipelineMetrics metrics_;
  std::uint64_t next_alert_id_ = 0;
};

}  // namespace infilter::core

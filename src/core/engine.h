// The InFilter analysis engine: Basic (EIA only) and Enhanced
// (EIA -> Scan Analysis -> NNS) configurations, implementing the Normal
// processing phase of Figure 12 and the training phase of Figure 11.

#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>

#include "alert/idmef.h"
#include "core/cluster.h"
#include "core/eia.h"
#include "core/scan.h"
#include "hopcount/hopcount.h"
#include "netflow/v5.h"
#include "obs/metrics.h"
#include "obs/pipeline.h"

namespace infilter::core {

/// The two software configurations of Section 6.3.
enum class EngineMode : std::uint8_t {
  kBasic,     ///< "BI": EIA set analysis alone
  kEnhanced,  ///< "EI": EIA -> Scan Analysis -> NNS
};

struct EngineConfig {
  EngineMode mode = EngineMode::kEnhanced;
  EiaTableConfig eia;
  ScanConfig scan;
  ClusterConfig cluster;
  /// Ablation switches (both true reproduces the paper's EI pipeline).
  bool use_scan_analysis = true;
  bool use_nns = true;
  /// TTL hop-count detection (src/hopcount), fused with the EIA check:
  /// EIA miss + TTL miss is a high-confidence spoof (kHopCountFusion,
  /// skipping scan/NNS); an in-EIA flow with the wrong path length
  /// becomes a suspect and feeds scan/NNS like any EIA miss. Off by
  /// default: records without TTLs classify as unknown and the fusion
  /// never fires, but the classify/learn work is skipped entirely.
  bool use_hopcount = false;
  hopcount::HopCountConfig hopcount;
  /// Seeds the NNS probe randomness. The probe RNG is derived *per flow*
  /// from (seed, flow fields), never from a sequential stream, so a
  /// flow's verdict depends only on the engine's configuration, its
  /// trained clusters, and the previously processed flows that share the
  /// verdict-relevant state keys (EIA learning: the flow's (ingress,
  /// source /24); scan analysis: the whole suspect buffer) -- not on how
  /// many unrelated flows happened to be processed first. The sharded
  /// runtime (src/runtime) relies on this for serial-equivalence.
  std::uint64_t seed = 1;
  /// External metrics registry (not owned). Null: the engine creates a
  /// private registry, reachable via registry(). The engine registers
  /// pull-style component metrics (EIA/scan/NNS internals) that read its
  /// members, so an external registry must not be snapshotted after the
  /// engine is destroyed.
  obs::Registry* registry = nullptr;
};

/// One flow for the batch API: the arguments of process() as a value, so a
/// dequeued batch can be handed to process_batch() as one contiguous span.
struct FlowInput {
  netflow::V5Record record;
  IngressId ingress = 0;
  util::TimeMs now = 0;
};

/// Outcome of processing one flow.
struct Verdict {
  bool attack = false;
  alert::DetectionStage stage = alert::DetectionStage::kEiaMismatch;
  /// True when the EIA check failed (also true for every attack verdict).
  bool suspect = false;
  /// NNS diagnostics, when the flow reached NNS analysis.
  std::optional<TrainedClusters::Assessment> nns;
};

/// A flow that failed the EIA check, detached from the engine that ran the
/// check: everything the post-EIA stages (scan analysis, NNS, alert
/// emission) need to finish the verdict. The sharded runtime forwards
/// these from the per-shard EIA stages to one shared scan-stage engine
/// (runtime/runtime.h), which is what keeps the destination-keyed suspect
/// buffer global -- and scan verdicts serial-exact -- under sharding.
struct SuspectFlow {
  netflow::V5Record record;
  IngressId ingress = 0;
  util::TimeMs now = 0;
  /// The EIA auto-learning rule fired on this flow (Section 5.2): the
  /// mismatch is treated as the route change it signals, not an attack.
  bool learned = false;
  /// Expected-ingress alert context, snapshotted at EIA-check time --
  /// before later flows can mutate the EIA table that produced it.
  std::optional<IngressId> expected;
  /// TTL classification, snapshotted against the hop-count table at
  /// pre-process time (per-shard state, like the EIA check); kUnknown
  /// when TTL detection is off.
  hopcount::TtlClass ttl = hopcount::TtlClass::kUnknown;
  /// The flow passed the EIA check and is a suspect only because of its
  /// TTL (in-EIA spoof suspicion).
  bool eia_hit = false;
};

class InFilterEngine {
 public:
  /// `sink` may be null (no alert emission); not owned.
  explicit InFilterEngine(EngineConfig config, alert::AlertSink* sink = nullptr);

  /// Immovable: the registry holds pull-style callbacks bound to this
  /// engine's address.
  InFilterEngine(const InFilterEngine&) = delete;
  InFilterEngine& operator=(const InFilterEngine&) = delete;

  // -- Training phase (Figure 11) --

  /// Preloads an EIA entry (Section 5.1.3a; Table 3 in the testbed).
  void add_expected(IngressId ingress, const net::Prefix& prefix);

  /// Builds the Normal cluster, partitions it, and constructs the NNS
  /// search structures (Sections 5.1.3 b-d). Replaces any prior training.
  void train(std::span<const netflow::V5Record> normal_flows);

  /// Installs pre-built search structures. The paper constructs the NNS
  /// structures once "prior to the experiment runs"; sharing one trained
  /// set across engines mirrors that and avoids retraining per run.
  void set_clusters(std::shared_ptr<const TrainedClusters> clusters);

  // -- Normal processing phase (Figure 12) --

  /// Processes one incoming flow observed at `ingress` at virtual time
  /// `now`. Emits an IDMEF alert through the sink on attack verdicts.
  Verdict process(const netflow::V5Record& record, IngressId ingress,
                  util::TimeMs now);

  /// Batched equivalent of process(): out[i] is bit-for-bit what
  /// process(flows[i]...) returns, the stateful stages (EIA learning, scan
  /// buffer) observe flows in batch order, alerts reach the sink in flow
  /// order with the same ids and content, and every counter reaches the
  /// same total. What batching buys: the NNS stage runs once over the
  /// whole batch through TrainedClusters::assess_batch (contiguous probe
  /// tables, pooled encodings -- zero per-flow allocations at steady
  /// state). Latency histograms record batch-amortized per-flow values.
  /// Precondition: flows.size() == out.size().
  void process_batch(std::span<const FlowInput> flows, std::span<Verdict> out);

  // -- Split pipeline (the sharded runtime's shared scan stage) --
  //
  // process() == pre_process() then, for suspects, finish_suspect() on the
  // same engine. The split exists so the runtime can run the EIA stage on
  // per-shard engines (state keyed by the shard hash) while one shared
  // engine runs the destination-keyed stages for every shard's suspects in
  // the one total dispatch order the runtime's sequence tags define --
  // with one producer that is submission order; with several it is the
  // realized claim order (runtime/runtime.h). The two halves divide the per-flow metrics
  // between them: pre_process owns flows_total, the EIA stage counters and
  // the legal-flow verdict/latency metrics; finish_suspect owns the
  // scan/NNS stage counters, the suspect verdict/latency metrics and alert
  // emission -- so a merged snapshot over both engines reaches exactly the
  // serial engine's totals.

  /// The EIA stage of process() alone: the membership check plus the
  /// Section 5.2 auto-learning rule. Returns false for a legal flow
  /// (`verdict` is final); returns true for a suspect (`verdict.suspect`
  /// set, attack verdict undecided) and fills `suspect` for a
  /// finish_suspect() call -- on this engine or another one.
  bool pre_process(const netflow::V5Record& record, IngressId ingress,
                   util::TimeMs now, Verdict& verdict, SuspectFlow& suspect);

  /// The post-EIA stages of process() alone: scan analysis -> NNS ->
  /// alert emission, against *this* engine's scan buffer, clusters and
  /// sink.
  Verdict finish_suspect(const SuspectFlow& suspect);

  /// Batched pre_process: out[i] is final for legal flows; suspect flows
  /// are appended to `suspects` (their batch positions to `positions`)
  /// with out[i].suspect set, for a finish_suspect_batch() elsewhere.
  /// Neither vector is cleared. Precondition: flows.size() == out.size().
  void pre_process_batch(std::span<const FlowInput> flows, std::span<Verdict> out,
                         std::vector<SuspectFlow>& suspects,
                         std::vector<std::uint32_t>& positions);

  /// Batched finish_suspect: the stateful scan stage observes suspects in
  /// span order, the NNS stage runs once over the whole batch, and alerts
  /// are emitted in span order -- bit-for-bit the per-suspect results.
  /// Precondition: suspects.size() == out.size().
  void finish_suspect_batch(std::span<const SuspectFlow> suspects,
                            std::span<Verdict> out);

  /// Installs a previously learned hop-count table (training-phase
  /// preload / import), replacing the current one.
  void install_hopcount(hopcount::HopCountTable table) {
    hopcount_.install(std::move(table));
  }

  [[nodiscard]] const EiaTable& eia() const { return eia_; }
  /// Mutable table access for persistence restore and shard-state
  /// migration (lifecycle/migrate.h) -- not for the flow hot path.
  [[nodiscard]] EiaTable& eia_mut() { return eia_; }
  [[nodiscard]] const hopcount::HopCountTable& hopcount_table() const {
    return hopcount_.table();
  }

  /// Eagerly expires idled EIA entries at virtual time `now`
  /// (EiaTable::age_sweep): verdict-neutral memory reclaim. Returns the
  /// number expired; 0 when aging is off.
  std::size_t age_sweep(util::TimeMs now) { return eia_.age_sweep(now); }
  [[nodiscard]] const TrainedClusters* clusters() const { return clusters_.get(); }
  [[nodiscard]] ScanAnalysis& scan() { return scan_; }
  [[nodiscard]] const ScanAnalysis& scan() const { return scan_; }
  [[nodiscard]] const EngineConfig& config() const { return config_; }

  /// The registry every pipeline metric lives in (the external one when
  /// EngineConfig::registry was set, the engine-private one otherwise).
  [[nodiscard]] obs::Registry& registry() { return *registry_; }
  [[nodiscard]] const obs::Registry& registry() const { return *registry_; }
  /// Direct handles to the per-stage counters and latency histograms.
  [[nodiscard]] const obs::PipelineMetrics& metrics() const { return metrics_; }

  [[nodiscard]] std::uint64_t flows_processed() const {
    return metrics_.flows_total->value();
  }
  /// Alerts actually delivered to the sink -- 0 when no sink is attached.
  [[nodiscard]] std::uint64_t alerts_emitted() const {
    return metrics_.alerts_total->value();
  }

  /// Ground-truth hook (infilter_eia_bloom_false_suspects_total): a caller
  /// that knows a flow was benign -- only the testbed does -- reports that
  /// it still drew a suspect verdict. Counted only while a probabilistic
  /// EIA backend is active; the exact backend cannot produce membership
  /// false positives, so its benign suspects are the learning-phase
  /// baseline, not backend artifacts. Subtract an exact-backend run on the
  /// same seed to isolate the Bloom-attributable share (bench/eia_scale).
  void note_ground_truth_benign_suspect() {
    if (eia_.backend().type() != EiaBackendType::kExact) ++eia_false_suspects_;
  }

 private:
  /// Alert construction with the expected-ingress context precomputed:
  /// pre_process snapshots it at EIA-check time (before later flows mutate
  /// the EIA table that produced it), so emission can happen arbitrarily
  /// later -- or on another engine -- with the per-flow alert content
  /// reproduced exactly. No sink, no alert: the verdict counters already
  /// account for the detection, and alert ids stay dense over *delivered*
  /// alerts. Precondition: sink_ != nullptr.
  void emit_alert_with(const netflow::V5Record& record, IngressId ingress,
                       util::TimeMs now, const Verdict& verdict,
                       std::optional<IngressId> expected);
  void register_component_metrics();

  /// process_batch working memory: pools that grow to the high-water batch
  /// size, then stop allocating. The engine is driven by one thread (each
  /// runtime shard owns its engine), so member scratch is safe.
  struct BatchScratch {
    std::vector<std::uint32_t> nns_ids;  ///< batch positions reaching NNS
    std::vector<netflow::V5Record> nns_records;
    std::vector<util::Rng> nns_rngs;
    std::vector<TrainedClusters::Assessment> nns_out;
    /// process_batch staging between its pre and finish halves.
    std::vector<SuspectFlow> suspects;
    std::vector<std::uint32_t> suspect_positions;
    std::vector<Verdict> suspect_verdicts;
    TrainedClusters::BatchScratch clusters;
  };

  EngineConfig config_;
  alert::AlertSink* sink_;
  EiaTable eia_;
  hopcount::HopCountAnalysis hopcount_;
  ScanAnalysis scan_;
  std::shared_ptr<const TrainedClusters> clusters_;
  std::unique_ptr<obs::Registry> owned_registry_;  ///< when config.registry == null
  obs::Registry* registry_;                        ///< never null
  obs::PipelineMetrics metrics_;
  std::uint64_t next_alert_id_ = 0;
  std::uint64_t eia_false_suspects_ = 0;  ///< note_ground_truth_benign_suspect()
  BatchScratch batch_scratch_;
};

}  // namespace infilter::core

// Scan Analysis (Section 4.1).
//
// A bounded buffer of recently observed *suspect* flows (flows that failed
// the EIA check) feeds two counters:
//
//   * network scan: flows targeting one destination port across many
//     distinct destination hosts (Slammer-style sweeps);
//   * host scan: flows targeting many distinct destination ports on one
//     host (nmap Idlescan-style blind scans).
//
// When either count crosses its threshold the triggering flow is flagged.
// The paper uses a buffer of about 200 flows; spoofing "is expected to not
// occur excessively", so the memory footprint stays small.

#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>

#include "net/ipv4.h"
#include "netflow/v5.h"

namespace infilter::core {

struct ScanConfig {
  /// Clamped to >= 1 by the ScanAnalysis constructor: a zero-size buffer
  /// would make observe() evict from an empty deque.
  std::size_t buffer_size = 200;
  /// Distinct destination hosts on one destination port that constitute a
  /// network scan. Clamped to >= 2 (a threshold of 1 would flag every
  /// suspect flow, including the first from a source).
  int network_scan_threshold = 15;
  /// Distinct destination ports on one destination host that constitute a
  /// host scan. Clamped to >= 2.
  int host_scan_threshold = 15;
};

/// The verdict for one suspect flow.
enum class ScanVerdict : std::uint8_t { kClean, kNetworkScan, kHostScan };

/// Lifetime counters of one ScanAnalysis (observability surface).
struct ScanStats {
  std::uint64_t observed = 0;       ///< suspect flows buffered
  std::uint64_t network_scans = 0;  ///< flows flagged as network scans
  std::uint64_t host_scans = 0;     ///< flows flagged as host scans
  std::uint64_t evictions = 0;      ///< flows aged out of the buffer
};

class ScanAnalysis {
 public:
  /// Out-of-range config values are clamped (see ScanConfig), so a release
  /// build fed `buffer_size == 0` degrades to a one-flow buffer instead of
  /// evicting from an empty deque.
  explicit ScanAnalysis(ScanConfig config = {});

  /// The configuration actually in effect after clamping.
  [[nodiscard]] const ScanConfig& config() const { return config_; }

  /// Buffers a suspect flow and evaluates both counters for it.
  ScanVerdict observe(const netflow::V5Record& record);

  [[nodiscard]] std::size_t buffered_flows() const { return buffer_.size(); }
  [[nodiscard]] const ScanStats& stats() const { return stats_; }
  /// Distinct destination hosts currently buffered for `dst_port`.
  [[nodiscard]] int hosts_on_port(std::uint16_t dst_port) const;
  /// Distinct destination ports currently buffered for `host`.
  [[nodiscard]] int ports_on_host(net::IPv4Address host) const;

 private:
  struct BufferedFlow {
    std::uint32_t dst_ip;
    std::uint16_t dst_port;
  };

  void evict_oldest();

  ScanConfig config_;
  ScanStats stats_;
  std::deque<BufferedFlow> buffer_;
  /// dst_port -> (dst_ip -> buffered-flow count). Outer erase when empty.
  std::unordered_map<std::uint16_t, std::unordered_map<std::uint32_t, int>> by_port_;
  /// dst_ip -> (dst_port -> buffered-flow count).
  std::unordered_map<std::uint32_t, std::unordered_map<std::uint16_t, int>> by_host_;
};

}  // namespace infilter::core

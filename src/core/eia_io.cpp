#include "core/eia_io.h"

#include <charconv>
#include <sstream>

namespace infilter::core {
namespace {

std::string_view trim(std::string_view text) {
  while (!text.empty() && (text.front() == ' ' || text.front() == '\t')) {
    text.remove_prefix(1);
  }
  while (!text.empty() &&
         (text.back() == ' ' || text.back() == '\t' || text.back() == '\r')) {
    text.remove_suffix(1);
  }
  return text;
}

}  // namespace

std::string export_eia(const EiaTable& table) {
  std::ostringstream out;
  out << "# InFilter EIA sets: ingress <id> followed by its expected prefixes\n";
  for (const auto ingress : table.ingresses()) {
    out << "ingress " << ingress << "\n";
    for (const auto& prefix : table.set_for(ingress)->to_cidrs()) {
      out << "  " << prefix.to_string() << "\n";
    }
  }
  return std::move(out).str();
}

util::Result<EiaTable> import_eia(std::string_view text, EiaTableConfig config) {
  EiaTable table(config);
  std::optional<IngressId> current;
  int line_number = 0;

  std::size_t at = 0;
  while (at <= text.size()) {
    const auto newline = text.find('\n', at);
    const auto raw = text.substr(
        at, newline == std::string_view::npos ? text.size() - at : newline - at);
    at = newline == std::string_view::npos ? text.size() + 1 : newline + 1;
    ++line_number;

    const auto line = trim(raw);
    if (line.empty() || line.front() == '#') continue;

    if (line.rfind("ingress", 0) == 0) {
      const auto id_text = trim(line.substr(7));
      unsigned id = 0;
      const auto end = id_text.data() + id_text.size();
      const auto [ptr, ec] = std::from_chars(id_text.data(), end, id);
      if (ec != std::errc{} || ptr != end || id > 0xFFFF) {
        return util::Error{"line " + std::to_string(line_number) +
                           ": bad ingress id '" + std::string(id_text) + "'"};
      }
      current = static_cast<IngressId>(id);
      table.declare_ingress(*current);  // a stanza may legitimately be empty
      continue;
    }

    const auto prefix = net::Prefix::parse(line);
    if (!prefix.has_value()) {
      return util::Error{"line " + std::to_string(line_number) + ": bad prefix '" +
                         std::string(line) + "'"};
    }
    if (!current.has_value()) {
      return util::Error{"line " + std::to_string(line_number) +
                         ": prefix before any 'ingress' stanza"};
    }
    table.add_expected(*current, *prefix);
  }
  return table;
}

}  // namespace infilter::core

#include "core/eia_io.h"

#include <charconv>
#include <sstream>

namespace infilter::core {
namespace {

std::string_view trim(std::string_view text) {
  while (!text.empty() && (text.front() == ' ' || text.front() == '\t')) {
    text.remove_prefix(1);
  }
  while (!text.empty() &&
         (text.back() == ' ' || text.back() == '\t' || text.back() == '\r')) {
    text.remove_suffix(1);
  }
  return text;
}

std::optional<std::uint64_t> parse_u64(std::string_view text, int base = 10) {
  std::uint64_t value = 0;
  const auto* end = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(text.data(), end, value, base);
  if (ec != std::errc{} || ptr != end) return std::nullopt;
  return value;
}

/// Splits `line` at spaces/tabs into at most `max` tokens.
std::vector<std::string_view> tokens_of(std::string_view line) {
  std::vector<std::string_view> out;
  std::size_t at = 0;
  while (at < line.size()) {
    while (at < line.size() && (line[at] == ' ' || line[at] == '\t')) ++at;
    std::size_t end = at;
    while (end < line.size() && line[end] != ' ' && line[end] != '\t') ++end;
    if (end > at) out.push_back(line.substr(at, end - at));
    at = end;
  }
  return out;
}

void append_hex(std::string& out, std::uint64_t value, int digits) {
  static const char* kHex = "0123456789abcdef";
  for (int shift = (digits - 1) * 4; shift >= 0; shift -= 4) {
    out.push_back(kHex[(value >> shift) & 0xF]);
  }
}

/// Emits `key=value` backend parameters for the directive line.
void append_backend_directive(std::string& out, const BankedBloomBase& backend) {
  const auto& config = backend.config();
  out += "backend ";
  out += eia_backend_name(config.type);
  out += " bits=" + std::to_string(config.bits);
  out += " k=" + std::to_string(config.hashes);
  out += " subfilters=" + std::to_string(config.subfilters);
  out += " rotate=" + std::to_string(config.rotate_every);
  out += " per_ingress=" + std::to_string(config.per_ingress ? 1 : 0);
  out += " seed=" + std::to_string(config.hash_seed);
  out += " inserts=" + std::to_string(backend.insert_count());
  out += " rotations=" + std::to_string(backend.rotations());
  out += "\n";
}

/// Emits runs of nonzero 64-bit words: "words <start-index> <hex16>...".
void append_word_runs(std::string& out, const std::vector<std::uint64_t>& words) {
  constexpr std::size_t kPerLine = 8;
  std::size_t i = 0;
  while (i < words.size()) {
    if (words[i] == 0) {
      ++i;
      continue;
    }
    std::size_t end = i;
    while (end < words.size() && end - i < kPerLine && words[end] != 0) ++end;
    out += "words " + std::to_string(i);
    for (std::size_t w = i; w < end; ++w) {
      out += ' ';
      append_hex(out, words[w], 16);
    }
    out += "\n";
    i = end;
  }
}

/// Emits runs of nonzero counter bytes: "bytes <start-index> <hex2>...".
void append_byte_runs(std::string& out, const std::vector<std::uint8_t>& bytes) {
  constexpr std::size_t kPerLine = 32;
  std::size_t i = 0;
  while (i < bytes.size()) {
    if (bytes[i] == 0) {
      ++i;
      continue;
    }
    std::size_t end = i;
    while (end < bytes.size() && end - i < kPerLine && bytes[end] != 0) ++end;
    out += "bytes " + std::to_string(i);
    for (std::size_t b = i; b < end; ++b) {
      out += ' ';
      append_hex(out, bytes[b], 2);
    }
    out += "\n";
    i = end;
  }
}

void append_bank_state(std::string& out, const BankedBloomBase& backend) {
  // Only meaningful (and only emitted) when aging is on: with rotate=0
  // every bank stays at sub-filter 0 with a zero insert counter.
  if (backend.config().rotate_every == 0) return;
  const auto& current = backend.bank_current();
  const auto& inserts = backend.bank_inserts();
  for (std::size_t bank = 0; bank < current.size(); ++bank) {
    if (current[bank] == 0 && inserts[bank] == 0) continue;
    out += "bank " + std::to_string(bank) + " " + std::to_string(current[bank]) +
           " " + std::to_string(inserts[bank]) + "\n";
  }
}

/// The versioned lifecycle directive (aging policy) and the per-entry
/// age lines. Both appear only when age metadata exists, so a table that
/// never aged exports byte-identically to the historical format (the
/// round-trip tests pin it); legacy dumps without them load with every
/// entry fresh/established. The directive precedes the state lines --
/// import honors it like the backend directive, overriding the caller's
/// configured policy so a reload resumes the exported aging behavior.
void append_lifecycle_directive(std::string& out, const EiaTable& table) {
  const lifecycle::LifecycleConfig& policy = table.config().lifecycle;
  out += "lifecycle v1 max_idle=" + std::to_string(policy.max_idle_ms) +
         " stale_after=" + std::to_string(policy.stale_after_ms) + "\n";
}

void append_age_entries(std::string& out, const EiaTable& table) {
  for (const EiaTable::AgedEntry& aged : table.aged_entries()) {
    out += "age " + std::to_string(aged.ingress) + " " +
           net::Prefix{net::IPv4Address{aged.key24}, 24}.to_string() + " " +
           std::to_string(aged.age.learned_at) + " " +
           std::to_string(aged.age.last_seen);
    if (aged.age.expired) out += " expired";
    out += "\n";
  }
}

/// Parsed state of a "backend ..." directive line.
struct BackendDirective {
  EiaBackendConfig config;
  std::uint64_t inserts = 0;
  std::uint64_t rotations = 0;
};

util::Result<BackendDirective> parse_backend_directive(std::string_view line) {
  BackendDirective out;
  const auto parts = tokens_of(line);
  // parts[0] == "backend"
  if (parts.size() < 2) return util::Error{"backend directive missing type"};
  if (parts[1] == "exact") {
    out.config.type = EiaBackendType::kExact;
    return out;
  }
  if (parts[1] == "bloom") {
    out.config.type = EiaBackendType::kBloom;
  } else if (parts[1] == "cbloom") {
    out.config.type = EiaBackendType::kCountingBloom;
  } else {
    return util::Error{"unknown backend type '" + std::string(parts[1]) + "'"};
  }
  for (std::size_t i = 2; i < parts.size(); ++i) {
    const auto eq = parts[i].find('=');
    if (eq == std::string_view::npos) {
      return util::Error{"bad backend parameter '" + std::string(parts[i]) + "'"};
    }
    const auto name = parts[i].substr(0, eq);
    const auto value = parse_u64(parts[i].substr(eq + 1));
    if (!value.has_value()) {
      return util::Error{"bad backend parameter value in '" + std::string(parts[i]) +
                         "'"};
    }
    if (name == "bits") {
      out.config.bits = static_cast<std::size_t>(*value);
    } else if (name == "k") {
      out.config.hashes = static_cast<int>(*value);
    } else if (name == "subfilters") {
      out.config.subfilters = static_cast<int>(*value);
    } else if (name == "rotate") {
      out.config.rotate_every = *value;
    } else if (name == "per_ingress") {
      out.config.per_ingress = *value != 0;
    } else if (name == "seed") {
      out.config.hash_seed = *value;
    } else if (name == "inserts") {
      out.inserts = *value;
    } else if (name == "rotations") {
      out.rotations = *value;
    } else {
      return util::Error{"unknown backend parameter '" + std::string(name) + "'"};
    }
  }
  if (out.config.hashes < 1 || out.config.hashes > 16) {
    return util::Error{"backend k out of range"};
  }
  if (out.config.subfilters < 1 || out.config.subfilters > 8) {
    return util::Error{"backend subfilters out of range"};
  }
  return out;
}

}  // namespace

std::string export_eia(const EiaTable& table) {
  // The exact backend keeps the historical text format, byte-identical:
  // operators' configs and the round-trip tests both depend on it.
  if (table.backend().type() == EiaBackendType::kExact) {
    std::ostringstream out;
    out << "# InFilter EIA sets: ingress <id> followed by its expected prefixes\n";
    if (table.aged_entry_count() > 0) {
      std::string directive;
      append_lifecycle_directive(directive, table);
      out << directive;
    }
    for (const auto ingress : table.ingresses()) {
      out << "ingress " << ingress << "\n";
      for (const auto& prefix : table.set_for(ingress)->to_cidrs()) {
        out << "  " << prefix.to_string() << "\n";
      }
    }
    if (table.aged_entry_count() > 0) {
      std::string ages;
      append_age_entries(ages, table);
      out << ages;
    }
    return std::move(out).str();
  }

  // Probabilistic backends: the membership state IS the bit/counter
  // arrays, so they persist verbatim (sparse nonzero runs) together with
  // every parameter that shapes the hashes -- a reload answers exactly
  // like the exported table, false positives included.
  const auto& base = static_cast<const BankedBloomBase&>(table.backend());
  std::string out =
      "# InFilter EIA backend state (probabilistic; core/eia_backend.h)\n";
  append_backend_directive(out, base);
  if (table.aged_entry_count() > 0) append_lifecycle_directive(out, table);
  for (const auto ingress : table.ingresses()) {
    out += "ingress " + std::to_string(ingress) + "\n";
  }
  append_bank_state(out, base);
  if (base.type() == EiaBackendType::kBloom) {
    const auto& arrays =
        static_cast<const BloomEiaBackend&>(base).word_arrays();
    for (std::size_t slot = 0; slot < arrays.size(); ++slot) {
      out += "filter " + std::to_string(slot) + "\n";
      append_word_runs(out, arrays[slot]);
    }
  } else {
    const auto& arrays =
        static_cast<const CountingBloomEiaBackend&>(base).counter_arrays();
    for (std::size_t slot = 0; slot < arrays.size(); ++slot) {
      out += "filter " + std::to_string(slot) + "\n";
      append_byte_runs(out, arrays[slot]);
    }
  }
  if (table.aged_entry_count() > 0) append_age_entries(out, table);
  return out;
}

util::Result<EiaTable> import_eia(std::string_view text, EiaTableConfig config) {
  // First pass for the backend directive: it must precede any state and
  // decides which table we build (absent = the caller's configured
  // backend, historically exact).
  std::optional<BackendDirective> directive;
  std::optional<EiaTable> table;
  std::optional<IngressId> current;
  int line_number = 0;
  // Probabilistic import state.
  std::vector<std::uint8_t> bank_current(kBloomBanks, 0);
  std::vector<std::uint64_t> bank_inserts(kBloomBanks, 0);
  bool saw_bank_state = false;
  std::optional<std::size_t> current_filter;

  auto fail = [&](const std::string& message) {
    return util::Error{"line " + std::to_string(line_number) + ": " + message};
  };
  auto ensure_table = [&]() -> EiaTable& {
    if (!table.has_value()) table.emplace(config);
    return *table;
  };
  auto probabilistic = [&]() {
    return config.backend.type != EiaBackendType::kExact;
  };

  std::size_t at = 0;
  while (at <= text.size()) {
    const auto newline = text.find('\n', at);
    const auto raw = text.substr(
        at, newline == std::string_view::npos ? text.size() - at : newline - at);
    at = newline == std::string_view::npos ? text.size() + 1 : newline + 1;
    ++line_number;

    const auto line = trim(raw);
    if (line.empty() || line.front() == '#') continue;

    if (line.rfind("backend", 0) == 0 &&
        (line.size() == 7 || line[7] == ' ' || line[7] == '\t')) {
      if (table.has_value()) return fail("backend directive after state lines");
      if (directive.has_value()) return fail("duplicate backend directive");
      auto parsed = parse_backend_directive(line);
      if (!parsed) return fail(parsed.error().message);
      directive = std::move(parsed).value();
      config.backend = directive->config;
      continue;
    }

    if (line.rfind("lifecycle", 0) == 0 &&
        (line.size() == 9 || line[9] == ' ' || line[9] == '\t')) {
      if (table.has_value()) return fail("lifecycle directive after state lines");
      const auto parts = tokens_of(line);
      if (parts.size() < 2 || parts[1] != "v1") {
        return fail("unsupported lifecycle directive version");
      }
      for (std::size_t i = 2; i < parts.size(); ++i) {
        const auto eq = parts[i].find('=');
        const auto value = eq == std::string_view::npos
                               ? std::nullopt
                               : parse_u64(parts[i].substr(eq + 1));
        if (!value.has_value()) {
          return fail("bad lifecycle parameter '" + std::string(parts[i]) + "'");
        }
        const auto name = parts[i].substr(0, eq);
        if (name == "max_idle") {
          config.lifecycle.max_idle_ms = *value;
        } else if (name == "stale_after") {
          config.lifecycle.stale_after_ms = *value;
        } else {
          return fail("unknown lifecycle parameter '" + std::string(name) + "'");
        }
      }
      continue;
    }

    if (line.rfind("age ", 0) == 0) {
      const auto parts = tokens_of(line);
      if (parts.size() != 5 && parts.size() != 6) {
        return fail("age line wants: age INGRESS PREFIX LEARNED LAST [expired]");
      }
      const auto ingress = parse_u64(parts[1]);
      const auto prefix = net::Prefix::parse(parts[2]);
      const auto learned = parse_u64(parts[3]);
      const auto last = parse_u64(parts[4]);
      bool expired = false;
      if (parts.size() == 6) {
        if (parts[5] != "expired") {
          return fail("bad age flag '" + std::string(parts[5]) + "'");
        }
        expired = true;
      }
      if (!ingress.has_value() || *ingress > 0xFFFF || !prefix.has_value() ||
          prefix->length() != 24 || !learned.has_value() || !last.has_value()) {
        return fail("bad age line");
      }
      ensure_table().restore_age(
          static_cast<IngressId>(*ingress), prefix->address().value(),
          lifecycle::EntryAge{*learned, *last, expired});
      continue;
    }

    if (line.rfind("ingress", 0) == 0) {
      const auto id_text = trim(line.substr(7));
      const auto id = parse_u64(id_text);
      if (!id.has_value() || *id > 0xFFFF) {
        return fail("bad ingress id '" + std::string(id_text) + "'");
      }
      current = static_cast<IngressId>(*id);
      ensure_table().declare_ingress(*current);  // a stanza may be empty
      continue;
    }

    if (line.rfind("filter ", 0) == 0) {
      if (!probabilistic()) return fail("'filter' needs a probabilistic backend");
      const auto slot = parse_u64(trim(line.substr(7)));
      if (!slot.has_value()) return fail("bad filter slot");
      current_filter = static_cast<std::size_t>(*slot);
      continue;
    }

    if (line.rfind("words ", 0) == 0 || line.rfind("bytes ", 0) == 0) {
      if (!probabilistic()) return fail("'words' needs a probabilistic backend");
      const bool words = line.rfind("words ", 0) == 0;
      if (words != (config.backend.type == EiaBackendType::kBloom)) {
        return fail(words ? "'words' belongs to the bloom backend"
                          : "'bytes' belongs to the cbloom backend");
      }
      if (!current_filter.has_value()) return fail("state before any 'filter'");
      const auto parts = tokens_of(line);
      if (parts.size() < 3) return fail("truncated state line");
      const auto start = parse_u64(parts[1]);
      if (!start.has_value()) return fail("bad state offset");
      auto& backend = ensure_table().backend_mut();
      if (words) {
        auto& arrays = static_cast<BloomEiaBackend&>(backend).word_arrays();
        if (*current_filter >= arrays.size()) return fail("filter slot out of range");
        auto& array = arrays[*current_filter];
        for (std::size_t i = 2; i < parts.size(); ++i) {
          const auto value = parse_u64(parts[i], 16);
          const std::size_t index = *start + (i - 2);
          if (!value.has_value() || parts[i].size() != 16) {
            return fail("bad word '" + std::string(parts[i]) + "'");
          }
          if (index >= array.size()) return fail("word index out of range");
          array[index] = *value;
        }
      } else {
        auto& arrays =
            static_cast<CountingBloomEiaBackend&>(backend).counter_arrays();
        if (*current_filter >= arrays.size()) return fail("filter slot out of range");
        auto& array = arrays[*current_filter];
        for (std::size_t i = 2; i < parts.size(); ++i) {
          const auto value = parse_u64(parts[i], 16);
          const std::size_t index = *start + (i - 2);
          if (!value.has_value() || parts[i].size() != 2 || *value > 0xFF) {
            return fail("bad counter '" + std::string(parts[i]) + "'");
          }
          if (index >= array.size()) return fail("counter index out of range");
          array[index] = static_cast<std::uint8_t>(*value);
        }
      }
      continue;
    }

    if (line.rfind("bank ", 0) == 0) {
      if (!probabilistic()) return fail("'bank' needs a probabilistic backend");
      const auto parts = tokens_of(line);
      if (parts.size() != 4) return fail("bank line wants: bank INDEX CURRENT COUNT");
      const auto bank = parse_u64(parts[1]);
      const auto cur = parse_u64(parts[2]);
      const auto count = parse_u64(parts[3]);
      if (!bank.has_value() || !cur.has_value() || !count.has_value() ||
          *bank >= kBloomBanks || *cur > 0xFF) {
        return fail("bad bank state");
      }
      bank_current[*bank] = static_cast<std::uint8_t>(*cur);
      bank_inserts[*bank] = *count;
      saw_bank_state = true;
      continue;
    }

    const auto prefix = net::Prefix::parse(line);
    if (!prefix.has_value()) {
      return fail("bad prefix '" + std::string(line) + "'");
    }
    if (!current.has_value()) {
      return fail("prefix before any 'ingress' stanza");
    }
    ensure_table().add_expected(*current, *prefix);
  }

  if (!table.has_value()) table.emplace(config);
  if (probabilistic() && directive.has_value()) {
    auto& base = static_cast<BankedBloomBase&>(table->backend_mut());
    if (saw_bank_state || directive->inserts > 0 || directive->rotations > 0) {
      base.restore_bank_state(std::move(bank_current), std::move(bank_inserts),
                              directive->inserts, directive->rotations);
    }
  }
  return std::move(*table);
}

}  // namespace infilter::core

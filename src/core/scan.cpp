#include "core/scan.h"

#include <algorithm>
#include <cassert>

namespace infilter::core {

ScanAnalysis::ScanAnalysis(ScanConfig config) : config_(config) {
  // Clamp rather than assert: an assert disappears in release builds, and
  // buffer_size == 0 would then call evict_oldest() on an empty deque
  // (undefined behavior) on the first observe(). Thresholds below 2 would
  // flag every buffered flow, which no caller can mean.
  config_.buffer_size = std::max<std::size_t>(config_.buffer_size, 1);
  config_.network_scan_threshold = std::max(config_.network_scan_threshold, 2);
  config_.host_scan_threshold = std::max(config_.host_scan_threshold, 2);
}

ScanVerdict ScanAnalysis::observe(const netflow::V5Record& record) {
  while (buffer_.size() >= config_.buffer_size) evict_oldest();

  ++stats_.observed;
  const BufferedFlow flow{record.dst_ip.value(), record.dst_port};
  buffer_.push_back(flow);
  by_port_[flow.dst_port][flow.dst_ip] += 1;
  by_host_[flow.dst_ip][flow.dst_port] += 1;

  if (hosts_on_port(flow.dst_port) >= config_.network_scan_threshold) {
    ++stats_.network_scans;
    return ScanVerdict::kNetworkScan;
  }
  if (ports_on_host(record.dst_ip) >= config_.host_scan_threshold) {
    ++stats_.host_scans;
    return ScanVerdict::kHostScan;
  }
  return ScanVerdict::kClean;
}

int ScanAnalysis::hosts_on_port(std::uint16_t dst_port) const {
  const auto it = by_port_.find(dst_port);
  return it == by_port_.end() ? 0 : static_cast<int>(it->second.size());
}

int ScanAnalysis::ports_on_host(net::IPv4Address host) const {
  const auto it = by_host_.find(host.value());
  return it == by_host_.end() ? 0 : static_cast<int>(it->second.size());
}

void ScanAnalysis::evict_oldest() {
  assert(!buffer_.empty());
  ++stats_.evictions;
  const BufferedFlow flow = buffer_.front();
  buffer_.pop_front();

  auto port_it = by_port_.find(flow.dst_port);
  assert(port_it != by_port_.end());
  if (--port_it->second[flow.dst_ip] <= 0) port_it->second.erase(flow.dst_ip);
  if (port_it->second.empty()) by_port_.erase(port_it);

  auto host_it = by_host_.find(flow.dst_ip);
  assert(host_it != by_host_.end());
  if (--host_it->second[flow.dst_port] <= 0) host_it->second.erase(flow.dst_port);
  if (host_it->second.empty()) by_host_.erase(host_it);
}

}  // namespace infilter::core

#include "core/cluster.h"

#include <algorithm>
#include <cassert>
#include <vector>

namespace infilter::core {

Subcluster classify(const netflow::V5Record& record) {
  using netflow::IpProto;
  switch (static_cast<IpProto>(record.proto)) {
    case IpProto::kTcp:
      switch (record.dst_port) {
        case 80: return Subcluster::kHttp;
        case 25: return Subcluster::kSmtp;
        case 21: return Subcluster::kFtp;
        default: return Subcluster::kTcp;
      }
    case IpProto::kUdp:
      return record.dst_port == 53 ? Subcluster::kDns : Subcluster::kUdp;
    case IpProto::kIcmp:
      return Subcluster::kIcmp;
  }
  // Unknown protocols share the generic tcp bucket.
  return Subcluster::kTcp;
}

std::string_view subcluster_name(Subcluster cluster) {
  switch (cluster) {
    case Subcluster::kHttp: return "http";
    case Subcluster::kSmtp: return "smtp";
    case Subcluster::kFtp: return "ftp";
    case Subcluster::kDns: return "dns";
    case Subcluster::kUdp: return "udp";
    case Subcluster::kTcp: return "tcp";
    case Subcluster::kIcmp: return "icmp";
  }
  return "unknown";
}

nns::UnaryEncoder make_flow_encoder(int bits_per_feature) {
  // Log-scale ranges covering everything from a single 40-byte SYN to a
  // multi-gigabit flood; order matches FlowStats::as_array().
  return nns::UnaryEncoder::log_scale(
      {
          nns::FeatureRange{1, 1e8},     // byte count
          nns::FeatureRange{1, 1e6},     // packet count
          nns::FeatureRange{1, 3.6e6},   // duration (ms, up to an hour)
          nns::FeatureRange{1, 1e9},     // bit rate
          nns::FeatureRange{0.01, 1e6},  // packet rate
      },
      bits_per_feature);
}

TrainedClusters::TrainedClusters(std::span<const netflow::V5Record> normal_flows,
                                 const ClusterConfig& config, std::uint64_t seed)
    : encoder_(make_flow_encoder(config.bits_per_feature)),
      partition_by_protocol_(config.partition_by_protocol) {
  // Partition (Section 5.1.3c). With partitioning disabled everything
  // lands in the generic tcp bucket (one global Normal cluster).
  std::array<std::vector<nns::BitVector>, kSubclusterCount> partitions;
  for (const auto& record : normal_flows) {
    const auto cluster = static_cast<std::size_t>(bucket_of(record));
    partitions[cluster].push_back(encode(record));
  }

  // Per-subcluster structure + threshold (Sections 5.1.3c/d). The
  // threshold is calibrated on a held-out fifth of the subcluster: those
  // flows are queried through the *actual* search structure, so the
  // threshold reflects the distance distribution normal traffic will
  // produce at run time, approximation noise included.
  util::Rng calibration_rng{seed ^ 0xca11b8ULL};
  for (std::size_t c = 0; c < kSubclusterCount; ++c) {
    const auto& flows = partitions[c];

    std::vector<nns::BitVector> build;
    std::vector<const nns::BitVector*> calibration;
    if (flows.size() < 10) {
      build = flows;  // too small to split; fall back to the margin alone
    } else {
      build.reserve(flows.size());
      for (std::size_t i = 0; i < flows.size(); ++i) {
        if (i % 5 == 0) {
          calibration.push_back(&flows[i]);
        } else {
          build.push_back(flows[i]);
        }
      }
    }

    if (config.use_exact_nns) {
      indexes_[c] = std::make_unique<nns::ExactNns>(build);
    } else {
      nns::KorParams params = config.kor;
      params.seed = seed + c;
      indexes_[c] = std::make_unique<nns::KorNns>(build, params);
    }
    partition_sizes_[c] = flows.size();

    if (calibration.empty()) {
      thresholds_[c] = config.threshold_margin;
      continue;
    }
    std::vector<int> distances;
    distances.reserve(calibration.size());
    for (const auto* query : calibration) {
      const auto match = indexes_[c]->search(*query, calibration_rng);
      distances.push_back(match.has_value() ? match->distance : encoder_.dimension());
    }
    std::sort(distances.begin(), distances.end());
    const auto rank = static_cast<std::size_t>(
        config.threshold_percentile * static_cast<double>(distances.size() - 1));
    thresholds_[c] = distances[rank] + config.threshold_margin;
  }
}

nns::BitVector TrainedClusters::encode(const netflow::V5Record& record) const {
  const auto stats = flowtools::FlowStats::from_record(record).as_array();
  return encoder_.encode(stats);
}

void TrainedClusters::encode_into(const netflow::V5Record& record,
                                  nns::BitVector& out) const {
  const auto stats = flowtools::FlowStats::from_record(record).as_array();
  encoder_.encode_into(stats, out);
}

Subcluster TrainedClusters::bucket_of(const netflow::V5Record& record) const {
  return partition_by_protocol_ ? classify(record) : Subcluster::kTcp;
}

TrainedClusters::Assessment TrainedClusters::assess(const netflow::V5Record& record,
                                                    util::Rng& rng) const {
  assessments_.fetch_add(1, std::memory_order_relaxed);
  Assessment out;
  out.cluster = bucket_of(record);
  out.threshold = thresholds_[static_cast<std::size_t>(out.cluster)];
  const auto query = encode(record);
  const auto match =
      indexes_[static_cast<std::size_t>(out.cluster)]->search(query, rng);
  if (!match.has_value()) {
    no_neighbor_.fetch_add(1, std::memory_order_relaxed);
    out.anomalous = true;
    return out;
  }
  out.distance = match->distance;
  out.anomalous = match->distance > out.threshold;
  return out;
}

void TrainedClusters::assess_batch(std::span<const netflow::V5Record> records,
                                   std::span<util::Rng> rngs,
                                   std::span<Assessment> out,
                                   BatchScratch& scratch) const {
  assert(records.size() == rngs.size() && records.size() == out.size());
  assessments_.fetch_add(records.size(), std::memory_order_relaxed);

  // Gather: one encode per flow into the pooled query vectors, grouped by
  // subcluster. The pools grow to the high-water batch size once and are
  // reused verbatim afterwards (BitVector::reset keeps its buffer), so the
  // steady-state encode path performs zero heap allocations.
  for (auto& group : scratch.groups) group.count = 0;
  for (std::size_t i = 0; i < records.size(); ++i) {
    const auto cluster = bucket_of(records[i]);
    auto& group = scratch.groups[static_cast<std::size_t>(cluster)];
    const std::size_t at = group.count++;
    if (group.queries.size() <= at) group.queries.emplace_back();
    encode_into(records[i], group.queries[at]);
    if (group.rngs.size() <= at) {
      group.rngs.push_back(rngs[i]);
      group.flow_ids.push_back(static_cast<std::uint32_t>(i));
    } else {
      group.rngs[at] = rngs[i];
      group.flow_ids[at] = static_cast<std::uint32_t>(i);
    }
    out[i].cluster = cluster;
    out[i].threshold = thresholds_[static_cast<std::size_t>(cluster)];
  }

  // Probe: each subcluster's index sees its flows as one contiguous batch.
  for (std::size_t c = 0; c < kSubclusterCount; ++c) {
    auto& group = scratch.groups[c];
    if (group.count == 0) continue;
    if (group.matches.size() < group.count) group.matches.resize(group.count);
    indexes_[c]->search_batch(
        std::span<const nns::BitVector>(group.queries.data(), group.count),
        std::span<std::optional<nns::NnsMatch>>(group.matches.data(), group.count),
        std::span<util::Rng>(group.rngs.data(), group.count), scratch.nns);

    // Scatter results (and advanced RNG state) back into batch order.
    for (std::size_t j = 0; j < group.count; ++j) {
      const std::size_t i = group.flow_ids[j];
      rngs[i] = group.rngs[j];
      const auto& match = group.matches[j];
      if (!match.has_value()) {
        no_neighbor_.fetch_add(1, std::memory_order_relaxed);
        out[i].distance = -1;
        out[i].anomalous = true;
        continue;
      }
      out[i].distance = match->distance;
      out[i].anomalous = match->distance > out[i].threshold;
    }
  }
}

std::size_t TrainedClusters::training_size(Subcluster cluster) const {
  return partition_sizes_[static_cast<std::size_t>(cluster)];
}

std::size_t TrainedClusters::training_size_total() const {
  std::size_t total = 0;
  for (const auto size : partition_sizes_) total += size;
  return total;
}

}  // namespace infilter::core

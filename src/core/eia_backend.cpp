#include "core/eia_backend.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <charconv>
#include <cmath>

#include "core/eia.h"
#include "util/rng.h"

namespace infilter::core {
namespace {

/// The runtime's shard hash over the /24 key (runtime/runtime.cpp
/// shard_of) -- the bank hash MUST stay identical to it so a bank's keys
/// all land on one shard (see the sharding contract in eia_backend.h).
std::uint64_t shard_hash(std::uint32_t key24) {
  return util::SplitMix64{key24}.next();
}

/// Visits the /24 keys covered by `prefix` (the membership grain).
template <typename Fn>
void for_each_slash24(const net::Prefix& prefix, Fn&& fn) {
  const std::uint32_t first = prefix.first().value() & 0xFFFFFF00u;
  const std::uint32_t last = prefix.last().value() & 0xFFFFFF00u;
  for (std::uint64_t key = first; key <= last; key += 0x100u) {
    fn(static_cast<std::uint32_t>(key));
  }
}

std::optional<std::uint64_t> parse_u64(std::string_view text) {
  std::uint64_t value = 0;
  const auto* end = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(text.data(), end, value);
  if (ec != std::errc{} || ptr != end) return std::nullopt;
  return value;
}

}  // namespace

const char* eia_backend_name(EiaBackendType type) {
  switch (type) {
    case EiaBackendType::kExact: return "exact";
    case EiaBackendType::kBloom: return "bloom";
    case EiaBackendType::kCountingBloom: return "cbloom";
  }
  return "?";
}

util::Result<EiaBackendConfig> parse_eia_backend(std::string_view text) {
  EiaBackendConfig config;
  const auto colon = text.find(':');
  const auto name = text.substr(0, colon);
  if (name == "exact") {
    if (colon != std::string_view::npos) {
      return util::Error{"backend 'exact' takes no parameters"};
    }
    return config;
  }
  if (name == "bloom") {
    config.type = EiaBackendType::kBloom;
  } else if (name == "cbloom") {
    config.type = EiaBackendType::kCountingBloom;
  } else {
    return util::Error{"unknown EIA backend '" + std::string(name) +
                       "' (want exact, bloom or cbloom)"};
  }
  if (colon == std::string_view::npos) return config;

  // BITS[,K[,R[,ROTATE]]]
  std::string_view rest = text.substr(colon + 1);
  std::uint64_t* fields[] = {nullptr, nullptr, nullptr, nullptr};
  std::uint64_t bits = 0;
  std::uint64_t hashes = 0;
  std::uint64_t subfilters = 0;
  std::uint64_t rotate = 0;
  fields[0] = &bits;
  fields[1] = &hashes;
  fields[2] = &subfilters;
  fields[3] = &rotate;
  int field = 0;
  while (!rest.empty()) {
    if (field >= 4) return util::Error{"too many backend parameters in '" +
                                       std::string(text) + "'"};
    const auto comma = rest.find(',');
    const auto token = rest.substr(0, comma);
    const auto value = parse_u64(token);
    if (!value.has_value()) {
      return util::Error{"bad backend parameter '" + std::string(token) + "'"};
    }
    *fields[field++] = *value;
    rest = comma == std::string_view::npos ? std::string_view{}
                                           : rest.substr(comma + 1);
  }
  if (field >= 1) {
    if (bits < 64 || bits > (std::uint64_t{1} << 36)) {
      return util::Error{"backend bits must be in [64, 2^36]"};
    }
    config.bits = static_cast<std::size_t>(bits);
  }
  if (field >= 2) {
    if (hashes < 1 || hashes > 16) {
      return util::Error{"backend hash count must be in [1, 16]"};
    }
    config.hashes = static_cast<int>(hashes);
  }
  if (field >= 3) {
    if (subfilters < 1 || subfilters > 8) {
      return util::Error{"backend sub-filter count must be in [1, 8]"};
    }
    config.subfilters = static_cast<int>(subfilters);
  }
  if (field >= 4) config.rotate_every = rotate;
  if (config.rotate_every > 0 && config.subfilters < 2) {
    return util::Error{"aging (rotate > 0) needs at least 2 sub-filters"};
  }
  return config;
}

double predicted_fill_ratio(const EiaBackendConfig& config,
                            std::uint64_t slash24_inserts) {
  if (config.type == EiaBackendType::kExact) return 0.0;
  const double live_bits = static_cast<double>(config.bits) /
                           static_cast<double>(std::max(1, config.subfilters));
  return 1.0 - std::exp(-static_cast<double>(config.hashes) *
                        static_cast<double>(slash24_inserts) / live_bits);
}

std::unique_ptr<EiaBackend> make_eia_backend(const EiaBackendConfig& config) {
  switch (config.type) {
    case EiaBackendType::kExact: return std::make_unique<ExactEiaBackend>();
    case EiaBackendType::kBloom: return std::make_unique<BloomEiaBackend>(config);
    case EiaBackendType::kCountingBloom:
      return std::make_unique<CountingBloomEiaBackend>(config);
  }
  return nullptr;
}

void EiaBackend::unlearn(IngressId ingress, const net::Prefix& prefix) {
  (void)ingress;
  (void)prefix;
}

// -- ExactEiaBackend ---------------------------------------------------

ExactEiaBackend::ExactEiaBackend() = default;
ExactEiaBackend::~ExactEiaBackend() = default;

EiaSet& ExactEiaBackend::set_ref(IngressId ingress) {
  auto it = std::lower_bound(sets_.begin(), sets_.end(), ingress,
                             [](const auto& entry, IngressId id) {
                               return entry.first < id;
                             });
  if (it == sets_.end() || it->first != ingress) {
    it = sets_.insert(it, {ingress, std::make_unique<EiaSet>()});
  }
  return *it->second;
}

void ExactEiaBackend::declare_ingress(IngressId ingress) { (void)set_ref(ingress); }

void ExactEiaBackend::add(IngressId ingress, const net::Prefix& prefix) {
  set_ref(ingress).add(prefix);
}

bool ExactEiaBackend::contains(IngressId ingress, net::IPv4Address source) const {
  const EiaSet* set = set_for(ingress);
  return set != nullptr && set->contains(source);
}

std::optional<IngressId> ExactEiaBackend::expected_ingress(
    net::IPv4Address source) const {
  for (const auto& [ingress, set] : sets_) {
    if (set->contains(source)) return ingress;
  }
  return std::nullopt;
}

std::vector<IngressId> ExactEiaBackend::ingresses() const {
  std::vector<IngressId> out;
  out.reserve(sets_.size());
  for (const auto& [ingress, set] : sets_) out.push_back(ingress);
  return out;
}

std::size_t ExactEiaBackend::ingress_count() const { return sets_.size(); }

std::size_t ExactEiaBackend::total_ranges() const {
  std::size_t total = 0;
  for (const auto& [ingress, set] : sets_) total += set->range_count();
  return total;
}

std::size_t ExactEiaBackend::memory_bytes() const {
  std::size_t total = sets_.capacity() * sizeof(sets_[0]);
  for (const auto& [ingress, set] : sets_) total += sizeof(EiaSet) + set->memory_bytes();
  return total;
}

void ExactEiaBackend::unlearn(IngressId ingress, const net::Prefix& prefix) {
  auto it = std::lower_bound(sets_.begin(), sets_.end(), ingress,
                             [](const auto& entry, IngressId id) {
                               return entry.first < id;
                             });
  if (it == sets_.end() || it->first != ingress) return;
  it->second->remove(prefix);
}

const EiaSet* ExactEiaBackend::set_for(IngressId ingress) const {
  auto it = std::lower_bound(sets_.begin(), sets_.end(), ingress,
                             [](const auto& entry, IngressId id) {
                               return entry.first < id;
                             });
  if (it == sets_.end() || it->first != ingress) return nullptr;
  return it->second.get();
}

// -- BankedBloomBase ---------------------------------------------------

BankedBloomBase::BankedBloomBase(EiaBackendConfig config)
    : config_(config) {
  assert(config_.hashes >= 1);
  assert(config_.subfilters >= 1);
  // Whole 64-bit words per (bank, sub-filter) segment, rounded up so the
  // configured budget is a floor on precision, never exceeded by much.
  const std::size_t segments =
      kBloomBanks * static_cast<std::size_t>(config_.subfilters);
  const std::size_t words_per_segment =
      std::max<std::size_t>(1, (config_.bits + segments * 64 - 1) / (segments * 64));
  segment_positions_ = words_per_segment * 64;
  positions_total_ = segments * segment_positions_;
  bank_current_.assign(kBloomBanks, 0);
  bank_inserts_.assign(kBloomBanks, 0);
}

void BankedBloomBase::declare_ingress(IngressId ingress) {
  (void)filter_slot(ingress);
}

std::size_t BankedBloomBase::filter_slot(IngressId ingress) {
  auto it = std::lower_bound(ingresses_.begin(), ingresses_.end(), ingress);
  const auto pos = static_cast<std::size_t>(it - ingresses_.begin());
  if (it == ingresses_.end() || *it != ingress) {
    ingresses_.insert(it, ingress);
    // Filter arrays are addressed by sorted ingress position, so a
    // mid-list ingress inserts its (empty) array at the same position.
    if (config_.per_ingress) {
      insert_filter(pos);
    } else if (filter_count() == 0) {
      insert_filter(0);
    }
  }
  return config_.per_ingress ? pos : 0;
}

std::optional<std::size_t> BankedBloomBase::filter_slot_of(IngressId ingress) const {
  auto it = std::lower_bound(ingresses_.begin(), ingresses_.end(), ingress);
  if (it == ingresses_.end() || *it != ingress) return std::nullopt;
  return config_.per_ingress
             ? static_cast<std::size_t>(it - ingresses_.begin())
             : 0;
}

BankedBloomBase::Probe BankedBloomBase::probe_for(IngressId ingress,
                                                  std::uint32_t key24) const {
  const std::uint64_t h = shard_hash(key24);
  // The ingress salt only applies in shared mode; per-ingress arrays are
  // already separated, and keeping their bit patterns salt-free lets an
  // operator compare filters across ingresses.
  const std::uint64_t salt =
      config_.per_ingress ? 0
                          : 0x1005e1a0ULL * (static_cast<std::uint64_t>(ingress) + 1);
  util::SplitMix64 mix{h ^ config_.hash_seed ^ salt};
  Probe probe;
  probe.bank = static_cast<std::size_t>(h % kBloomBanks);
  probe.base = mix.next();
  probe.step = mix.next() | 1;  // odd: walks every position eventually
  return probe;
}

void BankedBloomBase::insert_key(IngressId ingress, std::uint32_t key24) {
  const std::size_t filter = filter_slot(ingress);
  const Probe probe = probe_for(ingress, key24);
  // Azzana-style aging: every rotate_every inserts into a bank, the
  // bank's oldest sub-filter is erased and becomes the write target, so
  // an idle key expires after R-1 .. R full rotations. Bank-local
  // counters keep the schedule independent of other banks' traffic (and
  // hence of the runtime shard count).
  if (config_.rotate_every > 0 && config_.subfilters >= 2) {
    if (bank_inserts_[probe.bank] >= config_.rotate_every) {
      const int next =
          (bank_current_[probe.bank] + 1) % config_.subfilters;
      // Erase in every filter array: rotation is a bank property, shared
      // by per-ingress filters so the schedule stays key-driven.
      for (std::size_t f = 0; f < filter_count(); ++f) {
        erase_segment(f, probe.bank, next);
      }
      bank_current_[probe.bank] = static_cast<std::uint8_t>(next);
      bank_inserts_[probe.bank] = 0;
      ++rotations_;
    }
    ++bank_inserts_[probe.bank];
  }
  const int sub = bank_current_[probe.bank];
  for (int i = 0; i < config_.hashes; ++i) {
    const std::uint64_t pos = probe.base + static_cast<std::uint64_t>(i) * probe.step;
    set_position(filter, position_index(probe.bank, sub, pos));
  }
  ++inserts_;
}

bool BankedBloomBase::test_key(IngressId ingress, std::uint32_t key24) const {
  const auto filter = filter_slot_of(ingress);
  if (!filter.has_value()) return false;
  const Probe probe = probe_for(ingress, key24);
  for (int sub = 0; sub < config_.subfilters; ++sub) {
    bool all = true;
    for (int i = 0; i < config_.hashes && all; ++i) {
      const std::uint64_t pos =
          probe.base + static_cast<std::uint64_t>(i) * probe.step;
      all = test_position(*filter, position_index(probe.bank, sub, pos));
    }
    if (all) return true;
  }
  return false;
}

void BankedBloomBase::remove_key(IngressId ingress, std::uint32_t key24) {
  const auto filter = filter_slot_of(ingress);
  if (!filter.has_value()) return;
  const Probe probe = probe_for(ingress, key24);
  for (int sub = 0; sub < config_.subfilters; ++sub) {
    for (int i = 0; i < config_.hashes; ++i) {
      const std::uint64_t pos =
          probe.base + static_cast<std::uint64_t>(i) * probe.step;
      decrement_position(*filter, position_index(probe.bank, sub, pos));
    }
  }
}

void BankedBloomBase::add(IngressId ingress, const net::Prefix& prefix) {
  for_each_slash24(prefix, [&](std::uint32_t key24) { insert_key(ingress, key24); });
}

bool BankedBloomBase::contains(IngressId ingress, net::IPv4Address source) const {
  return test_key(ingress, source.value() & 0xFFFFFF00u);
}

std::optional<IngressId> BankedBloomBase::expected_ingress(
    net::IPv4Address source) const {
  const std::uint32_t key24 = source.value() & 0xFFFFFF00u;
  for (const IngressId ingress : ingresses_) {
    if (test_key(ingress, key24)) return ingress;
  }
  return std::nullopt;
}

std::vector<IngressId> BankedBloomBase::ingresses() const { return ingresses_; }

std::size_t BankedBloomBase::ingress_count() const { return ingresses_.size(); }

std::size_t BankedBloomBase::total_ranges() const {
  return static_cast<std::size_t>(inserts_);
}

void BankedBloomBase::restore_bank_state(std::vector<std::uint8_t> current,
                                         std::vector<std::uint64_t> inserts,
                                         std::uint64_t total_inserts,
                                         std::uint64_t rotations) {
  assert(current.size() == kBloomBanks && inserts.size() == kBloomBanks);
  bank_current_ = std::move(current);
  bank_inserts_ = std::move(inserts);
  inserts_ = total_inserts;
  rotations_ = rotations;
}

// -- BloomEiaBackend ---------------------------------------------------

BloomEiaBackend::BloomEiaBackend(EiaBackendConfig config)
    : BankedBloomBase(config) {}

void BloomEiaBackend::insert_filter(std::size_t at) {
  words_.insert(words_.begin() + static_cast<std::ptrdiff_t>(at),
                std::vector<std::uint64_t>(positions_total_ / 64, 0));
}

void BloomEiaBackend::set_position(std::size_t filter, std::size_t index) {
  words_[filter][index / 64] |= std::uint64_t{1} << (index % 64);
}

void BloomEiaBackend::clear_position(std::size_t filter, std::size_t index) {
  words_[filter][index / 64] &= ~(std::uint64_t{1} << (index % 64));
}

bool BloomEiaBackend::test_position(std::size_t filter, std::size_t index) const {
  return (words_[filter][index / 64] >> (index % 64)) & 1u;
}

void BloomEiaBackend::erase_segment(std::size_t filter, std::size_t bank, int sub) {
  const std::size_t first =
      position_index(bank, sub, 0) / 64;
  const std::size_t count = segment_positions_ / 64;
  std::fill_n(words_[filter].begin() + static_cast<std::ptrdiff_t>(first), count, 0);
}

std::size_t BloomEiaBackend::memory_bytes() const {
  std::size_t total = bank_current_.size() + bank_inserts_.size() * sizeof(std::uint64_t);
  for (const auto& array : words_) total += array.capacity() * sizeof(std::uint64_t);
  return total;
}

double BloomEiaBackend::fill_ratio() const {
  std::uint64_t set = 0;
  std::uint64_t bits = 0;
  for (const auto& array : words_) {
    for (const std::uint64_t word : array) set += std::popcount(word);
    bits += array.size() * 64;
  }
  return bits == 0 ? 0.0 : static_cast<double>(set) / static_cast<double>(bits);
}

// -- CountingBloomEiaBackend -------------------------------------------

CountingBloomEiaBackend::CountingBloomEiaBackend(EiaBackendConfig config)
    : BankedBloomBase(config) {}

void CountingBloomEiaBackend::insert_filter(std::size_t at) {
  counters_.insert(counters_.begin() + static_cast<std::ptrdiff_t>(at),
                   std::vector<std::uint8_t>(positions_total_, 0));
}

void CountingBloomEiaBackend::set_position(std::size_t filter, std::size_t index) {
  auto& counter = counters_[filter][index];
  if (counter != 0xFF) ++counter;  // saturate: 255 pins the position forever
}

void CountingBloomEiaBackend::clear_position(std::size_t filter, std::size_t index) {
  counters_[filter][index] = 0;
}

bool CountingBloomEiaBackend::test_position(std::size_t filter,
                                            std::size_t index) const {
  return counters_[filter][index] != 0;
}

void CountingBloomEiaBackend::erase_segment(std::size_t filter, std::size_t bank,
                                            int sub) {
  const std::size_t first = position_index(bank, sub, 0);
  std::fill_n(counters_[filter].begin() + static_cast<std::ptrdiff_t>(first),
              segment_positions_, 0);
}

void CountingBloomEiaBackend::decrement_position(std::size_t filter,
                                                 std::size_t index) {
  auto& counter = counters_[filter][index];
  if (counter != 0 && counter != 0xFF) --counter;
}

void CountingBloomEiaBackend::unlearn(IngressId ingress, const net::Prefix& prefix) {
  for_each_slash24(prefix, [&](std::uint32_t key24) { remove_key(ingress, key24); });
}

std::size_t CountingBloomEiaBackend::memory_bytes() const {
  std::size_t total = bank_current_.size() + bank_inserts_.size() * sizeof(std::uint64_t);
  for (const auto& array : counters_) total += array.capacity();
  return total;
}

double CountingBloomEiaBackend::fill_ratio() const {
  std::uint64_t nonzero = 0;
  std::uint64_t count = 0;
  for (const auto& array : counters_) {
    for (const std::uint8_t c : array) nonzero += c != 0 ? 1 : 0;
    count += array.size();
  }
  return count == 0 ? 0.0 : static_cast<double>(nonzero) / static_cast<double>(count);
}

}  // namespace infilter::core

// EIA set persistence.
//
// Operators configure and audit the Expected-IP-Address sets as text
// ("the EIA sets may also be initialized by hand", Section 5.1.3a). The
// format is one stanza per ingress:
//
//     # comment
//     ingress 9001
//       3.0.0.0/11
//       3.32.0.0/11
//     ingress 9002
//       18.96.0.0/11
//
// Export emits the minimal CIDR decomposition of each set, so a table
// that learned extra /24s round-trips exactly.
//
// Probabilistic backends (core/eia_backend.h) have no interval
// representation, so their export instead persists the backend verbatim:
// a "backend <type> key=value..." directive carrying every hash-shaping
// parameter, the ingress ids, per-bank rotation cursors (aging only), and
// the nonzero bit words / counter bytes as sparse runs. Import honors the
// directive -- it overrides the backend in the caller's config -- so a
// reload answers membership exactly like the exported table, false
// positives included. Files without a directive load with the caller's
// configured backend (historically exact).
//
// Lifecycle aging (src/lifecycle) adds a versioned "lifecycle v1
// max_idle=... stale_after=..." directive plus one "age <ingress>
// <prefix/24> <learned_at> <last_seen> [expired]" line per aged entry.
// Both appear only when the table holds age metadata, so pre-lifecycle
// exports stay byte-identical; legacy dumps load with every entry
// fresh/established (no metadata). The directive overrides the caller's
// configured aging policy like the backend directive does.

#pragma once

#include <string>
#include <string_view>

#include "core/eia.h"
#include "util/result.h"

namespace infilter::core {

/// Renders the table in the text format above.
[[nodiscard]] std::string export_eia(const EiaTable& table);

/// Parses the text format into a fresh table using `config` for the
/// learning parameters. Fails with a line number on malformed input
/// (unknown directives, prefixes before any ingress stanza, bad CIDR).
[[nodiscard]] util::Result<EiaTable> import_eia(std::string_view text,
                                                EiaTableConfig config = {});

}  // namespace infilter::core

// Metrics registry: named counters, gauges, and fixed-bucket histograms
// with snapshot semantics.
//
// The analysis node of Figure 9 is meant to sit in an ISP operations
// center; what the paper reports as offline experiment tables (per-stage
// detection counts, processing latency, Section 6.4) a production
// deployment needs as live telemetry. This module is the substrate: every
// pipeline stage owns metrics registered here, and exporters
// (obs/export.h) serialize one consistent snapshot.
//
// Hot-path discipline:
//   * Counter/Gauge/Histogram updates are single relaxed atomic ops (the
//     histogram adds one branch-light bucket search over a fixed array)
//     and never allocate or lock.
//   * Registration and snapshotting take a mutex and allocate; both are
//     setup-time / scrape-time operations, never per-flow.
//
// Metrics are identified by name only (no label sets); pipeline
// breakdowns use suffixed names (e.g. infilter_alerts_eia_total).

#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace infilter::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// A value that can go up and down.
class Gauge {
 public:
  void set(double value) noexcept { value_.store(value, std::memory_order_relaxed); }
  void add(double delta) noexcept {
    double current = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(current, current + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Point-in-time copy of one histogram, safe to read and serialize while
/// the live histogram keeps observing.
struct HistogramSnapshot {
  /// Finite inclusive upper bounds, ascending. Values above the last bound
  /// land in an implicit overflow bucket.
  std::vector<double> bounds;
  /// Per-bucket (non-cumulative) counts; size bounds.size() + 1, the last
  /// entry being the overflow bucket.
  std::vector<std::uint64_t> counts;
  std::uint64_t count = 0;
  double sum = 0.0;

  /// Estimated q-quantile (0 < q <= 1) by linear interpolation within the
  /// containing bucket (lower edge 0 for the first bucket). Returns 0 when
  /// empty; quantiles inside the overflow bucket clamp to the last finite
  /// bound.
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double mean() const {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
};

/// Fixed-bucket histogram. Bucket bounds are set at construction so
/// observe() never allocates.
class Histogram {
 public:
  /// `bounds`: finite inclusive upper bounds, strictly ascending, at least
  /// one entry.
  explicit Histogram(std::vector<double> bounds);

  /// `count` bounds starting at `start`, each `factor` times the previous.
  [[nodiscard]] static std::vector<double> exponential_bounds(double start,
                                                              double factor,
                                                              int count);

  void observe(double value) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  [[nodiscard]] HistogramSnapshot snapshot() const;

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;  ///< bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

[[nodiscard]] std::string_view kind_name(MetricKind kind);

/// One metric in a registry snapshot.
struct MetricSnapshot {
  std::string name;
  std::string help;
  MetricKind kind = MetricKind::kCounter;
  /// Counter/gauge value (counters are exact below 2^53).
  double value = 0.0;
  std::optional<HistogramSnapshot> histogram;
};

/// A consistent point-in-time view of a whole registry, sorted by name.
struct RegistrySnapshot {
  std::vector<MetricSnapshot> metrics;

  [[nodiscard]] const MetricSnapshot* find(std::string_view name) const;
  /// Counter/gauge value by name; `fallback` when absent.
  [[nodiscard]] double value(std::string_view name, double fallback = 0.0) const;
  [[nodiscard]] const HistogramSnapshot* histogram(std::string_view name) const;
};

/// Merges snapshots metric-by-metric into one registry view -- how the
/// sharded runtime (src/runtime) presents N per-shard registries as a
/// single scrape. Counters and gauges sum (a summed gauge reads as the
/// fleet total: queue depths add; per-shard EIA range counts add across
/// the shard replicas). Histograms with identical bounds merge bucket-wise;
/// on a bounds mismatch the first snapshot's histogram wins. Name, help,
/// and kind come from the first snapshot that mentions the metric.
[[nodiscard]] RegistrySnapshot merge_snapshots(
    const std::vector<RegistrySnapshot>& snapshots);

/// Owns metrics by name. Registration is idempotent: re-registering a name
/// returns the existing instrument, so independent components can share
/// one registry without coordination. Returned references stay valid for
/// the registry's lifetime.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& counter(std::string_view name, std::string_view help = {});
  Gauge& gauge(std::string_view name, std::string_view help = {});
  /// Re-registration returns the existing histogram; `bounds` are only
  /// used on first registration.
  Histogram& histogram(std::string_view name, std::vector<double> bounds,
                       std::string_view help = {});

  /// Pull-style instruments: `fn` is sampled at snapshot() time. The
  /// callable (and anything it captures) must outlive every snapshot()
  /// call. Re-registering an existing name is a no-op.
  void counter_fn(std::string_view name, std::function<std::uint64_t()> fn,
                  std::string_view help = {});
  void gauge_fn(std::string_view name, std::function<double()> fn,
                std::string_view help = {});

  [[nodiscard]] RegistrySnapshot snapshot() const;
  [[nodiscard]] std::size_t size() const;

 private:
  struct Entry {
    std::string name;
    std::string help;
    MetricKind kind = MetricKind::kCounter;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
    std::function<double()> pull;  ///< callback instruments
  };

  Entry* find_entry(std::string_view name);
  Entry& emplace(std::string_view name, std::string_view help, MetricKind kind);

  mutable std::mutex mutex_;
  /// Deque for stable addresses across registrations.
  std::deque<Entry> entries_;
};

}  // namespace infilter::obs

#include "obs/pipeline.h"

namespace infilter::obs {

std::vector<double> default_latency_bounds_us() {
  return Histogram::exponential_bounds(0.25, 2.0, 16);
}

PipelineMetrics::PipelineMetrics(Registry& r)
    : flows_total(&r.counter("infilter_flows_total", "Flows processed")),
      eia_hits(&r.counter("infilter_eia_hits_total",
                          "Flows whose source was in the ingress EIA set")),
      eia_misses(&r.counter("infilter_eia_misses_total",
                            "Flows failing the EIA check (suspects)")),
      eia_learned(&r.counter("infilter_eia_learned_total",
                             "Source /24s auto-learned into an EIA set")),
      hopcount_consistent(
          &r.counter("infilter_hopcount_consistent_total",
                     "Flows whose TTL matched the learned hop-count range")),
      hopcount_miss(&r.counter("infilter_hopcount_miss_total",
                               "Flows whose TTL implied the wrong path length")),
      hopcount_unknown(
          &r.counter("infilter_hopcount_unknown_total",
                     "Flows with no TTL or no established hop-count range")),
      scan_analyzed(&r.counter("infilter_scan_analyzed_total",
                               "Suspect flows run through scan analysis")),
      scan_network(&r.counter("infilter_scan_network_total",
                              "Flows flagged as part of a network scan")),
      scan_host(&r.counter("infilter_scan_host_total",
                           "Flows flagged as part of a host scan")),
      nns_assessed(&r.counter("infilter_nns_assessed_total",
                              "Suspect flows assessed by the NNS stage")),
      nns_normal(&r.counter("infilter_nns_normal_total",
                            "NNS assessments within the subcluster threshold")),
      nns_anomalous(&r.counter("infilter_nns_anomalous_total",
                               "NNS assessments beyond the subcluster threshold")),
      verdict_legal(&r.counter("infilter_verdict_legal_total",
                               "Terminal verdict: expected source, passed")),
      verdict_attack_eia(&r.counter("infilter_verdict_attack_eia_total",
                                    "Terminal verdict: attack via EIA mismatch")),
      verdict_attack_scan(&r.counter("infilter_verdict_attack_scan_total",
                                     "Terminal verdict: attack via scan analysis")),
      verdict_attack_nns(&r.counter("infilter_verdict_attack_nns_total",
                                    "Terminal verdict: attack via NNS distance")),
      verdict_attack_fused(
          &r.counter("infilter_verdict_attack_fused_total",
                     "Terminal verdict: attack via EIA + TTL fusion")),
      verdict_cleared_nns(&r.counter("infilter_verdict_cleared_nns_total",
                                     "Terminal verdict: suspect cleared by NNS")),
      verdict_cleared_learned(&r.counter(
          "infilter_verdict_cleared_learned_total",
          "Terminal verdict: suspect absorbed by EIA auto-learning")),
      alerts_total(&r.counter("infilter_alerts_total",
                              "Alerts delivered to the alert sink")),
      alerts_eia(&r.counter("infilter_alerts_eia_total",
                            "Delivered alerts raised by the EIA stage")),
      alerts_scan(&r.counter("infilter_alerts_scan_total",
                             "Delivered alerts raised by scan analysis")),
      alerts_nns(&r.counter("infilter_alerts_nns_total",
                            "Delivered alerts raised by the NNS stage")),
      alerts_fused(&r.counter("infilter_alerts_fused_total",
                              "Delivered alerts raised by EIA + TTL fusion")),
      stage_eia_us(&r.histogram("infilter_stage_eia_latency_us",
                                default_latency_bounds_us(),
                                "EIA lookup wall time per flow (us)")),
      stage_hopcount_us(
          &r.histogram("infilter_stage_hopcount_latency_us",
                       default_latency_bounds_us(),
                       "Hop-count classify/learn wall time per flow (us)")),
      stage_scan_us(&r.histogram("infilter_stage_scan_latency_us",
                                 default_latency_bounds_us(),
                                 "Scan analysis wall time per suspect (us)")),
      stage_nns_us(&r.histogram("infilter_stage_nns_latency_us",
                                default_latency_bounds_us(),
                                "NNS query wall time per suspect (us)")),
      process_us(&r.histogram("infilter_process_latency_us",
                              default_latency_bounds_us(),
                              "Whole process() wall time per flow (us)")) {}

}  // namespace infilter::obs

#include "obs/process.h"

#include <sys/resource.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>

namespace infilter::obs {
namespace {

/// Program-start anchor for the uptime gauge: initialized when this
/// translation unit's statics run, which is process start for all
/// practical purposes.
const std::chrono::steady_clock::time_point kProcessStart =
    std::chrono::steady_clock::now();

std::uint64_t rusage_us(bool system_time) {
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  const timeval& tv = system_time ? usage.ru_stime : usage.ru_utime;
  return static_cast<std::uint64_t>(tv.tv_sec) * 1000000ULL +
         static_cast<std::uint64_t>(tv.tv_usec);
}

/// Scans /proc/self/status for a "Key:  <number>" line; 0 when absent
/// (non-Linux or unreadable -- the gauges then just read 0).
std::uint64_t proc_status_field(const char* key) {
  std::FILE* file = std::fopen("/proc/self/status", "r");
  if (file == nullptr) return 0;
  char line[256];
  const std::size_t key_len = std::strlen(key);
  std::uint64_t value = 0;
  while (std::fgets(line, sizeof line, file) != nullptr) {
    if (std::strncmp(line, key, key_len) == 0 && line[key_len] == ':') {
      value = std::strtoull(line + key_len + 1, nullptr, 10);
      break;
    }
  }
  std::fclose(file);
  return value;
}

double rss_bytes() {
  // VmRSS is reported in kB.
  if (const auto kb = proc_status_field("VmRSS"); kb != 0) {
    return static_cast<double>(kb) * 1024.0;
  }
  // Fallback: peak RSS from getrusage (kB on Linux).
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0.0;
  return static_cast<double>(usage.ru_maxrss) * 1024.0;
}

}  // namespace

void register_process_metrics(Registry& registry) {
  registry.gauge_fn("infilter_process_rss_bytes", rss_bytes,
                    "Resident set size of this process in bytes");
  registry.counter_fn(
      "infilter_process_cpu_user_us_total", [] { return rusage_us(false); },
      "User-mode CPU time consumed by this process, microseconds");
  registry.counter_fn(
      "infilter_process_cpu_system_us_total", [] { return rusage_us(true); },
      "Kernel-mode CPU time consumed by this process, microseconds");
  registry.gauge_fn(
      "infilter_process_uptime_seconds",
      [] {
        const auto elapsed = std::chrono::steady_clock::now() - kProcessStart;
        return std::chrono::duration<double>(elapsed).count();
      },
      "Seconds since process start");
  registry.gauge_fn(
      "infilter_process_threads",
      [] { return static_cast<double>(proc_status_field("Threads")); },
      "OS threads currently in this process");
}

}  // namespace infilter::obs

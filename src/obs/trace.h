// Flight-recorder tracing and thread liveness for the ingest -> runtime ->
// scan pipeline.
//
// The per-stage histograms (obs/pipeline.h) measure time spent *inside* a
// stage; nothing so far measured the time between stages -- the queue
// waits that dominate end-to-end latency once the pipeline is threaded,
// and exactly the numbers the receiver-direct-dispatch and adaptive-
// sharding work need before either can be judged. This module is that
// missing layer, in the always-on, low-overhead shape a carrier-grade
// deployment needs (Scheitle et al.: telemetry that runs at line rate or
// not at all):
//
//   * A Tracer owns one fixed-capacity SPSC TraceRing per registered
//     pipeline thread (receivers, shard workers, scan stage). Writers
//     emit compact span events with a single try_push -- no locks, no
//     heap; a full ring drops the event and counts the drop
//     (infilter_trace_dropped_total), so the recorder can run forever.
//   * A sampled per-record journey: a monotonic timestamp is stamped at
//     socket receive (ingest::DatagramRef::recv_ns), carried through the
//     pipeline in FlowItem::{recv_ns, hop_ns}, and re-stamped at every
//     hand-off. Each hop emits one span whose end is the next hop's
//     start, so a record's spans tile the interval from socket receive to
//     final verdict exactly:
//
//       decode | queue_shard | eia | queue_scan | scan_nns
//       ^ recv_ns                                 t_verdict ^
//
//     `decode` runs inline on the receiver lane that read the datagram
//     (receiver-direct dispatch), so there is no receiver->decoder queue
//     hop -- the old `queue_ingest` span no longer occurs, and the ingest
//     bench fails if one appears in an export. (Legal flows end at `eia`;
//     runs without the shared scan stage replace eia.. with one `process`
//     span; direct-submit callers start at `decode`'s end.) The same
//     stamps feed always-on histograms -- infilter_e2e_latency_us and
//     infilter_queue_wait_{shard,scan}_us -- so p50/p99/p999 queue-wait
//     attribution is one scrape away even when nobody exports the event
//     stream.
//   * Liveness: every registered thread publishes a progress heartbeat
//     and a current-state gauge with relaxed stores; scan_liveness() is
//     the monitor-side stall detector, flagging threads whose progress
//     counter stops advancing while their input queue is non-empty.
//
// Cost discipline: with tracing disabled every hop is one relaxed load
// and one branch (enabled()); nothing else runs -- no clock reads, no
// sampling arithmetic. Enabled, the clock is read once per *batch* at
// each hop and only sampled records (1 in sample_every) emit events.
// Ring memory is allocated at thread registration (setup time); the
// steady-state write path never touches the heap. bench/ingest_throughput
// pins the disabled-overhead and zero-allocation claims.
//
// Threading contract: emit()/heartbeat()/set_state() are single-writer
// per lane (the owning thread). drain()/chrome_trace_json() are the
// single consumer side of every ring -- call them from one thread at a
// time. register_thread() and scan_liveness() lock; they are setup- and
// scrape-time operations. Lanes are never unregistered (the flight
// recorder keeps a dead thread's last events); retire() detaches the
// queue probe so a Tracer may outlive the pipeline it instrumented.

#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"

namespace infilter::obs {

/// One hop of a sampled record's journey (or a whole serial process()).
/// Values are stable: they index kSpanNames and appear in trace exports.
enum class SpanKind : std::uint8_t {
  kQueueIngest = 0,  ///< retired: receiver->decoder ring wait. Unused since
                     ///< receivers decode inline; value kept for export
                     ///< stability and old-trace readers.
  kDecode,           ///< socket receive -> dispatch entry (inline parse)
  kQueueShard,       ///< dispatch -> shard-worker pop (shard ring wait)
  kEia,              ///< worker pop -> EIA stage done (legal flows: verdict)
  kProcess,          ///< worker pop -> verdict (no shared scan stage)
  kQueueScan,        ///< suspect forward -> scan-stage release (reorder wait)
  kScanNns,          ///< scan release -> verdict (scan -> NNS -> alert)
  kSerial,           ///< serial engine process(), no pipeline
};

[[nodiscard]] std::string_view span_name(SpanKind kind);

/// What a registered pipeline thread is doing right now.
enum class ThreadState : std::uint8_t {
  kIdle = 0,  ///< parked or polling with nothing queued
  kBusy,      ///< actively receiving / decoding / processing
  kBlocked,   ///< waiting on a downstream resource (backpressure, quiesce)
  kStopped,   ///< thread exited (lane retired)
};

[[nodiscard]] std::string_view thread_state_name(ThreadState state);

/// One compact span event. 32 bytes; a lane's ring is an array of these.
struct TraceEvent {
  std::uint64_t start_ns = 0;  ///< monotonic (steady_clock) start
  std::uint64_t dur_ns = 0;
  std::uint64_t id = 0;  ///< record journey id (the FlowItem tag)
  SpanKind kind = SpanKind::kSerial;
};

/// Fixed-capacity SPSC ring of TraceEvents. Same wait-free head/tail
/// discipline as runtime::SpscRing (obs cannot depend on runtime), plus
/// drop-on-full: a flight recorder must never block its writer.
class TraceRing {
 public:
  /// `capacity` is rounded up to a power of two (minimum 2).
  explicit TraceRing(std::size_t capacity);

  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Producer side. Returns false (event lost) when the ring is full.
  bool try_push(const TraceEvent& event) noexcept;
  /// Consumer side. Returns false when the ring is empty.
  bool try_pop(TraceEvent& out) noexcept;

  [[nodiscard]] std::size_t size() const noexcept;
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }

 private:
  static constexpr std::size_t kCacheLine = 64;

  const std::size_t capacity_;
  const std::size_t mask_;
  std::unique_ptr<TraceEvent[]> slots_;

  alignas(kCacheLine) std::atomic<std::size_t> head_{0};  ///< consumer
  alignas(kCacheLine) std::size_t cached_tail_{0};
  alignas(kCacheLine) std::atomic<std::size_t> tail_{0};  ///< producer
  alignas(kCacheLine) std::size_t cached_head_{0};
};

/// Per-thread handle: one trace ring plus the liveness slots. Obtained
/// from Tracer::register_thread(); the pointer stays valid for the
/// Tracer's lifetime (lanes are never destroyed, only retired).
class ThreadLane {
 public:
  ThreadLane(std::string name, std::string role, std::size_t ring_capacity,
             std::function<std::size_t()> queue_depth);

  ThreadLane(const ThreadLane&) = delete;
  ThreadLane& operator=(const ThreadLane&) = delete;

  // -- Writer side (the owning thread only) --

  /// Records one span; a full ring counts the event as dropped instead.
  void emit(SpanKind kind, std::uint64_t start_ns, std::uint64_t dur_ns,
            std::uint64_t id) noexcept {
    if (ring_.try_push(TraceEvent{start_ns, dur_ns, id, kind})) {
      emitted_.fetch_add(1, std::memory_order_relaxed);
    } else {
      dropped_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  /// Publishes forward progress: bump once per unit of work handled.
  void heartbeat(std::uint64_t n = 1) noexcept {
    progress_.fetch_add(n, std::memory_order_relaxed);
  }
  void set_state(ThreadState state) noexcept {
    state_.store(static_cast<std::uint8_t>(state), std::memory_order_relaxed);
  }
  /// Thread exit: marks the lane kStopped and detaches the queue probe,
  /// so a Tracer outliving the pipeline never calls into freed state.
  void retire();

  // -- Reader side --

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const std::string& role() const noexcept { return role_; }
  [[nodiscard]] ThreadState state() const noexcept {
    return static_cast<ThreadState>(state_.load(std::memory_order_relaxed));
  }
  [[nodiscard]] std::uint64_t progress() const noexcept {
    return progress_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t events_emitted() const noexcept {
    return emitted_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t events_dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }
  /// Single-consumer: appends every queued event to `out`.
  void drain(std::vector<TraceEvent>& out);
  /// The lane's input-queue depth (0 when no probe / retired).
  [[nodiscard]] std::size_t queue_depth() const;

 private:
  friend class Tracer;

  std::string name_;
  std::string role_;
  TraceRing ring_;
  std::atomic<std::uint64_t> progress_{0};
  std::atomic<std::uint8_t> state_{static_cast<std::uint8_t>(ThreadState::kIdle)};
  std::atomic<std::uint64_t> emitted_{0};
  std::atomic<std::uint64_t> dropped_{0};

  /// Guarded by probe_mutex_: scan_liveness() samples it while retire()
  /// may clear it from the exiting thread.
  mutable std::mutex probe_mutex_;
  std::function<std::size_t()> queue_depth_;

  // Stall-detector state, owned by the scanning thread (scan_liveness()).
  std::uint64_t last_progress_ = 0;
  std::uint64_t last_change_ns_ = 0;
  bool seen_ = false;
};

/// One stalled thread, as diagnosed by Tracer::scan_liveness().
struct ThreadStall {
  std::string name;
  ThreadState state = ThreadState::kIdle;
  std::size_t queued = 0;        ///< input-queue depth at scan time
  double stalled_for_ms = 0.0;   ///< time since the progress counter last moved
};

struct TracerConfig {
  /// Span events buffered per registered thread before drops begin.
  std::size_t ring_capacity = 1 << 14;
  /// 1 in `sample_every` records gets the full journey treatment
  /// (timestamps, span events, histogram observations). 1 = every record.
  std::uint64_t sample_every = 64;
  /// Master switch; also settable at runtime (set_enabled()).
  bool enabled = false;
  /// Value metrics (event/drop counters, journey histograms) land here;
  /// null = a tracer-private registry. Pull gauges that call back into the
  /// tracer always stay private (obs::Registry has no unregistration --
  /// same dangling-callback discipline as ShardedRuntime).
  Registry* registry = nullptr;
};

/// The flight recorder: owns every lane, the journey histograms, and the
/// stall detector. One per process (or per pipeline under test); every
/// stage holds a `Tracer*` that may be null (tracing not compiled out,
/// just absent).
class Tracer {
 public:
  explicit Tracer(TracerConfig config = {});

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// The per-hop fast-path gate: one relaxed load. Every other Tracer
  /// facility sits behind this check on hot paths.
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }
  void set_enabled(bool enabled) noexcept {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  /// Whether record `id` is on the sampled journey (enabled() callers
  /// check that first; this is pure arithmetic).
  [[nodiscard]] bool sampled(std::uint64_t id) const noexcept {
    return id % sample_every_ == 0;
  }
  [[nodiscard]] std::uint64_t sample_every() const noexcept { return sample_every_; }

  /// Monotonic (steady_clock) nanoseconds. Never 0, so a zero recv_ns
  /// reliably means "not sampled".
  [[nodiscard]] static std::uint64_t now_ns() noexcept;

  /// Registers the calling pipeline thread: allocates its ring (setup
  /// time) and returns the lane handle, valid for the tracer's lifetime.
  /// `queue_depth` (optional) probes the thread's input queue for the
  /// stall detector; it must stay callable until the lane is retired.
  /// Roles get a `infilter_pipeline_threads_<role>` count gauge.
  ThreadLane* register_thread(std::string name, std::string role,
                              std::function<std::size_t()> queue_depth = {});

  /// The monitor-side stall detector: a thread is stalled when its
  /// progress counter has not advanced for `stall_after_ms` while its
  /// input queue is non-empty (work waiting, nobody moving). Call
  /// periodically from one thread; each call refreshes the per-lane
  /// progress bookkeeping and the infilter_trace_threads_stalled gauge.
  [[nodiscard]] std::vector<ThreadStall> scan_liveness(double stall_after_ms = 100.0);

  /// Drains every lane's ring into one Chrome trace-event / Perfetto
  /// JSON document ({"traceEvents":[...]}, ts/dur in microseconds, one
  /// tid per lane with thread_name metadata). Single-consumer; events
  /// already drained are gone (flight-recorder semantics).
  [[nodiscard]] std::string chrome_trace_json();

  /// Aggregate accounting across all lanes.
  [[nodiscard]] std::uint64_t events_emitted() const;
  [[nodiscard]] std::uint64_t events_dropped() const;

  /// The tracer-private registry view (thread-count and stall gauges,
  /// plus the value metrics when no external registry was configured).
  /// Merge with the pipeline's own snapshot (obs::merge_snapshots).
  [[nodiscard]] RegistrySnapshot snapshot() const { return owned_registry_->snapshot(); }

  // -- Journey histograms (value instruments; thread-safe observe) --
  Histogram* e2e_us = nullptr;           ///< infilter_e2e_latency_us
  Histogram* queue_wait_shard_us = nullptr;
  Histogram* queue_wait_scan_us = nullptr;

 private:
  std::uint64_t sample_every_;
  std::size_t ring_capacity_;
  std::atomic<bool> enabled_;

  /// Guards lanes_ structure (registration, liveness scans, exports);
  /// never taken on an emit path.
  mutable std::mutex mutex_;
  /// Deque for stable lane addresses across registrations.
  std::deque<std::unique_ptr<ThreadLane>> lanes_;
  std::atomic<std::uint64_t> stalled_count_{0};

  std::unique_ptr<Registry> owned_registry_;
  Registry* registry_;  ///< external or owned_registry_.get(); never null
};

}  // namespace infilter::obs

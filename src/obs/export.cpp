#include "obs/export.h"

#include <cmath>
#include <cstdio>

namespace infilter::obs {
namespace {

void append_escaped_json(std::string& out, const std::string& text) {
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
}

/// Prometheus text-format HELP escaping: only backslash and newline are
/// special (label *values* would also escape double quotes, but this
/// registry has no labels beyond the literal `le` buckets).
void append_escaped_help(std::string& out, const std::string& text) {
  for (const char c : text) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
}

void append_histogram_json(std::string& out, const HistogramSnapshot& h) {
  out += "\"count\":" + format_number(static_cast<double>(h.count));
  out += ",\"sum\":" + format_number(h.sum);
  out += ",\"buckets\":[";
  for (std::size_t b = 0; b < h.bounds.size(); ++b) {
    if (b > 0) out += ',';
    out += "{\"le\":" + format_number(h.bounds[b]) +
           ",\"count\":" + format_number(static_cast<double>(h.counts[b])) + '}';
  }
  out += "],\"overflow\":" + format_number(static_cast<double>(h.counts.back()));
  out += ",\"p50\":" + format_number(h.quantile(0.50));
  out += ",\"p95\":" + format_number(h.quantile(0.95));
  out += ",\"p99\":" + format_number(h.quantile(0.99));
  out += ",\"p999\":" + format_number(h.quantile(0.999));
}

}  // namespace

std::string format_number(double value) {
  char buffer[64];
  if (std::nearbyint(value) == value && std::fabs(value) < 1e15) {
    std::snprintf(buffer, sizeof buffer, "%.0f", value);
  } else {
    std::snprintf(buffer, sizeof buffer, "%.9g", value);
  }
  return buffer;
}

std::string to_prometheus(const RegistrySnapshot& snapshot) {
  std::string out;
  for (const auto& metric : snapshot.metrics) {
    if (!metric.help.empty()) {
      out += "# HELP " + metric.name + ' ';
      append_escaped_help(out, metric.help);
      out += '\n';
    }
    out += "# TYPE " + metric.name + ' ' + std::string(kind_name(metric.kind)) + '\n';
    if (!metric.histogram.has_value()) {
      out += metric.name + ' ' + format_number(metric.value) + '\n';
      continue;
    }
    const auto& h = *metric.histogram;
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < h.bounds.size(); ++b) {
      cumulative += h.counts[b];
      out += metric.name + "_bucket{le=\"" + format_number(h.bounds[b]) + "\"} " +
             format_number(static_cast<double>(cumulative)) + '\n';
    }
    out += metric.name + "_bucket{le=\"+Inf\"} " +
           format_number(static_cast<double>(h.count)) + '\n';
    out += metric.name + "_sum " + format_number(h.sum) + '\n';
    out += metric.name + "_count " + format_number(static_cast<double>(h.count)) +
           '\n';
  }
  return out;
}

std::string to_json(const RegistrySnapshot& snapshot) {
  std::string out = "{\"metrics\":[";
  bool first = true;
  for (const auto& metric : snapshot.metrics) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    append_escaped_json(out, metric.name);
    out += "\",\"kind\":\"" + std::string(kind_name(metric.kind)) + "\",";
    if (metric.histogram.has_value()) {
      append_histogram_json(out, *metric.histogram);
    } else {
      out += "\"value\":" + format_number(metric.value);
    }
    out += '}';
  }
  out += "]}";
  return out;
}

}  // namespace infilter::obs

// Per-stage wall-time tracing for the detection pipeline.
//
// Section 6.4 measures "processing latencies" per configuration; the
// StageTimer is the runtime equivalent: an RAII scope that records the
// wall time of one pipeline stage (EIA lookup, scan analysis, NNS query)
// into a fixed-bucket histogram. A null histogram disables the timer
// entirely, including the clock reads.

#pragma once

#include <chrono>

#include "obs/metrics.h"

namespace infilter::obs {

/// Monotonic clock reading in microseconds (arbitrary epoch).
[[nodiscard]] inline double monotonic_us() noexcept {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Records the lifetime of the scope into `histogram` (microseconds).
class StageTimer {
 public:
  explicit StageTimer(Histogram* histogram) noexcept
      : histogram_(histogram), start_(histogram != nullptr ? monotonic_us() : 0.0) {}

  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;

  ~StageTimer() { stop(); }

  /// Records now instead of at scope exit; idempotent. Returns the elapsed
  /// microseconds recorded (0 when disabled or already stopped).
  double stop() noexcept {
    if (histogram_ == nullptr) return 0.0;
    const double elapsed_us = monotonic_us() - start_;
    histogram_->observe(elapsed_us);
    histogram_ = nullptr;
    return elapsed_us;
  }

 private:
  Histogram* histogram_;
  double start_;
};

}  // namespace infilter::obs

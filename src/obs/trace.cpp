#include "obs/trace.h"

#include <chrono>
#include <iterator>
#include <sstream>
#include <utility>

namespace infilter::obs {
namespace {

constexpr std::string_view kSpanNames[] = {
    "queue_ingest", "decode", "queue_shard", "eia",
    "process",      "queue_scan", "scan_nns", "serial",
};

constexpr std::string_view kStateNames[] = {"idle", "busy", "blocked", "stopped"};

std::size_t round_up_pow2(std::size_t n) {
  std::size_t cap = 2;
  while (cap < n) cap <<= 1;
  return cap;
}

/// Journey histograms share one bound set: 1us .. ~1s, x2 per bucket.
std::vector<double> journey_bounds() {
  return Histogram::exponential_bounds(1.0, 2.0, 20);
}

}  // namespace

std::string_view span_name(SpanKind kind) {
  const auto index = static_cast<std::size_t>(kind);
  return index < std::size(kSpanNames) ? kSpanNames[index] : "unknown";
}

std::string_view thread_state_name(ThreadState state) {
  const auto index = static_cast<std::size_t>(state);
  return index < std::size(kStateNames) ? kStateNames[index] : "unknown";
}

// -- TraceRing ---------------------------------------------------------------

TraceRing::TraceRing(std::size_t capacity)
    : capacity_(round_up_pow2(capacity < 2 ? 2 : capacity)),
      mask_(capacity_ - 1),
      slots_(new TraceEvent[capacity_]) {}

bool TraceRing::try_push(const TraceEvent& event) noexcept {
  const auto tail = tail_.load(std::memory_order_relaxed);
  if (tail - cached_head_ >= capacity_) {
    cached_head_ = head_.load(std::memory_order_acquire);
    if (tail - cached_head_ >= capacity_) return false;
  }
  slots_[tail & mask_] = event;
  tail_.store(tail + 1, std::memory_order_release);
  return true;
}

bool TraceRing::try_pop(TraceEvent& out) noexcept {
  const auto head = head_.load(std::memory_order_relaxed);
  if (head == cached_tail_) {
    cached_tail_ = tail_.load(std::memory_order_acquire);
    if (head == cached_tail_) return false;
  }
  out = slots_[head & mask_];
  head_.store(head + 1, std::memory_order_release);
  return true;
}

std::size_t TraceRing::size() const noexcept {
  const auto tail = tail_.load(std::memory_order_acquire);
  const auto head = head_.load(std::memory_order_acquire);
  return tail - head;
}

// -- ThreadLane --------------------------------------------------------------

ThreadLane::ThreadLane(std::string name, std::string role,
                       std::size_t ring_capacity,
                       std::function<std::size_t()> queue_depth)
    : name_(std::move(name)),
      role_(std::move(role)),
      ring_(ring_capacity),
      queue_depth_(std::move(queue_depth)) {}

void ThreadLane::retire() {
  set_state(ThreadState::kStopped);
  const std::lock_guard<std::mutex> lock(probe_mutex_);
  queue_depth_ = nullptr;
}

void ThreadLane::drain(std::vector<TraceEvent>& out) {
  TraceEvent event;
  while (ring_.try_pop(event)) out.push_back(event);
}

std::size_t ThreadLane::queue_depth() const {
  const std::lock_guard<std::mutex> lock(probe_mutex_);
  return queue_depth_ ? queue_depth_() : 0;
}

// -- Tracer ------------------------------------------------------------------

Tracer::Tracer(TracerConfig config)
    : sample_every_(config.sample_every == 0 ? 1 : config.sample_every),
      ring_capacity_(config.ring_capacity),
      enabled_(config.enabled),
      owned_registry_(std::make_unique<Registry>()),
      registry_(config.registry != nullptr ? config.registry
                                           : owned_registry_.get()) {
  e2e_us = &registry_->histogram(
      "infilter_e2e_latency_us", journey_bounds(),
      "Sampled end-to-end latency, socket receive to final verdict (us)");
  queue_wait_shard_us = &registry_->histogram(
      "infilter_queue_wait_shard_us", journey_bounds(),
      "Sampled wait in the producer->shard-worker rings (us)");
  queue_wait_scan_us = &registry_->histogram(
      "infilter_queue_wait_scan_us", journey_bounds(),
      "Sampled wait from suspect forward to scan-stage release (us)");
  // Tracer-backed pull instruments stay in the owned registry:
  // obs::Registry has no unregistration, so this-capturing callbacks must
  // not outlive `this`.
  owned_registry_->counter_fn(
      "infilter_trace_events_total", [this] { return events_emitted(); },
      "Span events recorded across all lanes");
  owned_registry_->counter_fn(
      "infilter_trace_dropped_total", [this] { return events_dropped(); },
      "Span events lost to full trace rings (flight recorder never blocks)");
  owned_registry_->gauge_fn(
      "infilter_trace_threads",
      [this] {
        const std::lock_guard<std::mutex> lock(mutex_);
        double live = 0;
        for (const auto& lane : lanes_) {
          if (lane->state() != ThreadState::kStopped) live += 1;
        }
        return live;
      },
      "Registered pipeline threads that have not exited");
  owned_registry_->gauge_fn(
      "infilter_trace_threads_stalled",
      [this] {
        return static_cast<double>(stalled_count_.load(std::memory_order_relaxed));
      },
      "Threads flagged by the last liveness scan (no progress, queue non-empty)");
}

std::uint64_t Tracer::now_ns() noexcept {
  const auto since_epoch = std::chrono::steady_clock::now().time_since_epoch();
  const auto ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(since_epoch).count();
  // Never 0: a zero recv_ns means "record not sampled" throughout the
  // pipeline, and steady_clock could in principle start at 0 at boot.
  return static_cast<std::uint64_t>(ns) | 1U;
}

ThreadLane* Tracer::register_thread(std::string name, std::string role,
                                    std::function<std::size_t()> queue_depth) {
  ThreadLane* handle = nullptr;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    auto lane = std::make_unique<ThreadLane>(std::move(name), role,
                                             ring_capacity_,
                                             std::move(queue_depth));
    handle = lane.get();
    lanes_.push_back(std::move(lane));
  }
  // Per-role thread-count gauge (idempotent on re-registration). Counts
  // live (non-retired) lanes so exporters see the pipeline's true shape.
  // Registered after dropping mutex_: a concurrent Registry::snapshot()
  // invokes pull gauges under the registry mutex and those gauges take
  // mutex_, so taking the registry mutex while holding mutex_ would
  // invert that lock order.
  owned_registry_->gauge_fn(
      "infilter_pipeline_threads_" + role,
      [this, role] {
        const std::lock_guard<std::mutex> inner(mutex_);
        double live = 0;
        for (const auto& lane : lanes_) {
          if (lane->role() == role && lane->state() != ThreadState::kStopped) {
            live += 1;
          }
        }
        return live;
      },
      "Live pipeline threads with role '" + role + "'");
  return handle;
}

std::vector<ThreadStall> Tracer::scan_liveness(double stall_after_ms) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto now = now_ns();
  std::vector<ThreadStall> stalls;
  for (const auto& lane : lanes_) {
    if (lane->state() == ThreadState::kStopped) continue;
    const auto progress = lane->progress();
    if (!lane->seen_ || progress != lane->last_progress_) {
      lane->seen_ = true;
      lane->last_progress_ = progress;
      lane->last_change_ns_ = now;
      continue;
    }
    const auto queued = lane->queue_depth();
    if (queued == 0) {
      // Idle with an empty queue is healthy; restart the stall clock so a
      // later backlog is measured from when work actually appeared.
      lane->last_change_ns_ = now;
      continue;
    }
    const double stalled_ms =
        static_cast<double>(now - lane->last_change_ns_) / 1e6;
    if (stalled_ms >= stall_after_ms) {
      stalls.push_back(ThreadStall{lane->name(), lane->state(), queued, stalled_ms});
    }
  }
  stalled_count_.store(stalls.size(), std::memory_order_relaxed);
  return stalls;
}

std::string Tracer::chrome_trace_json() {
  std::vector<std::pair<const ThreadLane*, std::vector<TraceEvent>>> drained;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    drained.reserve(lanes_.size());
    for (const auto& lane : lanes_) {
      std::vector<TraceEvent> events;
      lane->drain(events);
      drained.emplace_back(lane.get(), std::move(events));
    }
  }
  // Rebase to the earliest span so timestamps are small offsets rather than
  // nanoseconds-since-boot (keeps doubles exact and the Perfetto viewport
  // sane).
  std::uint64_t origin = ~std::uint64_t{0};
  for (const auto& [lane, events] : drained) {
    for (const auto& event : events) {
      if (event.start_ns < origin) origin = event.start_ns;
    }
  }
  if (origin == ~std::uint64_t{0}) origin = 0;

  std::ostringstream out;
  out.precision(3);
  out << std::fixed;
  out << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  int tid = 0;
  for (const auto& [lane, events] : drained) {
    if (!first) out << ',';
    first = false;
    out << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
        << ",\"args\":{\"name\":\"" << lane->name() << "\"}}";
    for (const auto& event : events) {
      out << ",{\"name\":\"" << span_name(event.kind)
          << "\",\"cat\":\"pipeline\",\"ph\":\"X\",\"pid\":1,\"tid\":" << tid
          << ",\"ts\":" << static_cast<double>(event.start_ns - origin) / 1000.0
          << ",\"dur\":" << static_cast<double>(event.dur_ns) / 1000.0
          << ",\"args\":{\"id\":" << event.id << "}}";
    }
    ++tid;
  }
  out << "]}";
  return out.str();
}

std::uint64_t Tracer::events_emitted() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& lane : lanes_) total += lane->events_emitted();
  return total;
}

std::uint64_t Tracer::events_dropped() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& lane : lanes_) total += lane->events_dropped();
  return total;
}

}  // namespace infilter::obs

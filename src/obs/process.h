// Process-level self-metrics: RSS, CPU time, uptime, OS thread count.
//
// The tracing layer (obs/trace.h) attributes latency inside the pipeline;
// these gauges put the pipeline's *cost* in the same scrape, so an
// overhead regression (tracing, an extra shard, a leak) shows up next to
// the latency it buys. Pull-style: nothing is measured until snapshot
// time, so registering them costs nothing on any hot path.

#pragma once

#include "obs/metrics.h"

namespace infilter::obs {

/// Registers the process self-metrics into `registry` (idempotent):
///   infilter_process_rss_bytes            resident set size (gauge)
///   infilter_process_cpu_user_us_total    user CPU time, microseconds (counter)
///   infilter_process_cpu_system_us_total  system CPU time, microseconds (counter)
///   infilter_process_uptime_seconds      time since this module was loaded (gauge)
///   infilter_process_threads             OS threads in this process (gauge)
/// The callbacks read only global process state (/proc/self, getrusage),
/// so any registry lifetime is safe.
void register_process_metrics(Registry& registry);

}  // namespace infilter::obs

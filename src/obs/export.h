// Metrics exposition: Prometheus text format and JSON.
//
// Both serializers work from a RegistrySnapshot, so one scrape sees a
// consistent view. The Prometheus form follows the text exposition format
// (escaped HELP lines, TYPE lines, cumulative le-labeled histogram
// buckets with a +Inf terminator, _sum and _count series --
// tests/test_obs.cpp holds the conformance checks); the JSON form is a
// flat machine-readable document that also precomputes p50/p95/p99/p999
// for histograms -- the shape the BENCH_*.json perf-trajectory files use.

#pragma once

#include <string>

#include "obs/metrics.h"

namespace infilter::obs {

/// Prometheus text exposition format, metrics sorted by name.
[[nodiscard]] std::string to_prometheus(const RegistrySnapshot& snapshot);

/// JSON document: {"metrics":[{"name":...,"kind":...,...}]}. Counters and
/// gauges carry "value"; histograms carry "count", "sum", finite
/// "buckets" ([{"le":...,"count":...}]), "overflow", and
/// "p50"/"p95"/"p99"/"p999".
[[nodiscard]] std::string to_json(const RegistrySnapshot& snapshot);

/// Serializes a number the way both exporters do: integers exactly,
/// everything else with enough digits to round-trip.
[[nodiscard]] std::string format_number(double value);

}  // namespace infilter::obs

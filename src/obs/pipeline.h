// The detection pipeline's metric set.
//
// One PipelineMetrics instance bundles every instrument the EIA -> Scan ->
// NNS pipeline updates per flow, registered by canonical name so any
// exporter, test, or dashboard can rely on the schema:
//
//   flow accounting    infilter_flows_total
//   EIA stage          infilter_eia_{hits,misses,learned}_total
//   hop-count stage    infilter_hopcount_{consistent,miss,unknown}_total
//   scan stage         infilter_scan_{analyzed,network,host}_total
//   NNS stage          infilter_nns_{assessed,normal,anomalous}_total
//   terminal verdicts  infilter_verdict_{legal,attack_eia,attack_scan,
//                      attack_nns,attack_fused,cleared_nns,
//                      cleared_learned}_total
//   alerts delivered   infilter_alerts{,_eia,_scan,_nns,_fused}_total
//   stage latency      infilter_stage_{eia,hopcount,scan,nns}_latency_us,
//                      infilter_process_latency_us  (histograms, us)
//
// Invariants (checked by tests/test_obs.cpp and the integration suite):
//   * flows_total == sum of the seven terminal verdict counters;
//   * eia_hits + eia_misses == flows_total;
//   * with TTL detection on, hopcount_consistent + hopcount_miss +
//     hopcount_unknown == flows_total (every counter zero when off);
//   * in the Enhanced configuration with scan analysis enabled and TTL
//     detection off, scan_analyzed == eia_misses (TTL detection adds
//     in-EIA suspects to the scan stage and diverts fused verdicts
//     around it);
//   * nns_assessed == nns_normal + nns_anomalous;
//   * alerts_total == alerts_eia + alerts_scan + alerts_nns +
//     alerts_fused == alerts delivered to the engine's sink.

#pragma once

#include <vector>

#include "obs/metrics.h"

namespace infilter::obs {

/// Default bounds for the per-stage latency histograms: exponential from
/// 0.25 us to ~8.2 ms (16 finite buckets, factor 2). The 2005 prototype's
/// 0.5-6 ms stage latencies sit in the top buckets; modern per-stage costs
/// resolve in the sub-microsecond ones.
[[nodiscard]] std::vector<double> default_latency_bounds_us();

/// Non-owning handles into a Registry; copyable. Pointers stay valid for
/// the registry's lifetime.
struct PipelineMetrics {
  explicit PipelineMetrics(Registry& registry);

  Counter* flows_total;

  Counter* eia_hits;
  Counter* eia_misses;
  Counter* eia_learned;

  Counter* hopcount_consistent;
  Counter* hopcount_miss;
  Counter* hopcount_unknown;

  Counter* scan_analyzed;
  Counter* scan_network;
  Counter* scan_host;

  Counter* nns_assessed;
  Counter* nns_normal;
  Counter* nns_anomalous;

  Counter* verdict_legal;
  Counter* verdict_attack_eia;
  Counter* verdict_attack_scan;
  Counter* verdict_attack_nns;
  Counter* verdict_attack_fused;
  Counter* verdict_cleared_nns;
  Counter* verdict_cleared_learned;

  Counter* alerts_total;
  Counter* alerts_eia;
  Counter* alerts_scan;
  Counter* alerts_nns;
  Counter* alerts_fused;

  Histogram* stage_eia_us;
  Histogram* stage_hopcount_us;
  Histogram* stage_scan_us;
  Histogram* stage_nns_us;
  Histogram* process_us;
};

}  // namespace infilter::obs

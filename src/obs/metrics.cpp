#include "obs/metrics.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace infilter::obs {

double HistogramSnapshot::quantile(double q) const {
  if (count == 0 || bounds.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target observation (1-based, ceil).
  const auto target = static_cast<std::uint64_t>(
      std::max(1.0, std::ceil(q * static_cast<double>(count))));
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < counts.size(); ++b) {
    if (counts[b] == 0) continue;
    const std::uint64_t before = cumulative;
    cumulative += counts[b];
    if (cumulative < target) continue;
    if (b >= bounds.size()) {
      // Overflow bucket: no finite upper edge to interpolate toward.
      return bounds.back();
    }
    const double lower = b == 0 ? 0.0 : bounds[b - 1];
    const double upper = bounds[b];
    const double within = static_cast<double>(target - before) /
                          static_cast<double>(counts[b]);
    return lower + within * (upper - lower);
  }
  return bounds.back();
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  assert(!bounds_.empty());
  assert(std::is_sorted(bounds_.begin(), bounds_.end()));
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t b = 0; b <= bounds_.size(); ++b) buckets_[b].store(0);
}

std::vector<double> Histogram::exponential_bounds(double start, double factor,
                                                  int count) {
  assert(start > 0 && factor > 1 && count > 0);
  std::vector<double> bounds;
  bounds.reserve(static_cast<std::size_t>(count));
  double bound = start;
  for (int i = 0; i < count; ++i) {
    bounds.push_back(bound);
    bound *= factor;
  }
  return bounds;
}

void Histogram::observe(double value) noexcept {
  // Branch-light search over the fixed bounds; bucket b holds values in
  // (bounds[b-1], bounds[b]], bucket bounds_.size() everything larger.
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const auto bucket = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double sum = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(sum, sum + value, std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot out;
  out.bounds = bounds_;
  out.counts.resize(bounds_.size() + 1);
  for (std::size_t b = 0; b <= bounds_.size(); ++b) {
    out.counts[b] = buckets_[b].load(std::memory_order_relaxed);
  }
  out.count = count_.load(std::memory_order_relaxed);
  out.sum = sum_.load(std::memory_order_relaxed);
  return out;
}

std::string_view kind_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "unknown";
}

const MetricSnapshot* RegistrySnapshot::find(std::string_view name) const {
  const auto it = std::lower_bound(
      metrics.begin(), metrics.end(), name,
      [](const MetricSnapshot& m, std::string_view n) { return m.name < n; });
  if (it == metrics.end() || it->name != name) return nullptr;
  return &*it;
}

double RegistrySnapshot::value(std::string_view name, double fallback) const {
  const auto* metric = find(name);
  return metric == nullptr ? fallback : metric->value;
}

const HistogramSnapshot* RegistrySnapshot::histogram(std::string_view name) const {
  const auto* metric = find(name);
  if (metric == nullptr || !metric->histogram.has_value()) return nullptr;
  return &*metric->histogram;
}

RegistrySnapshot merge_snapshots(const std::vector<RegistrySnapshot>& snapshots) {
  RegistrySnapshot out;
  for (const auto& snapshot : snapshots) {
    for (const auto& metric : snapshot.metrics) {
      auto it = std::lower_bound(
          out.metrics.begin(), out.metrics.end(), metric.name,
          [](const MetricSnapshot& m, const std::string& n) { return m.name < n; });
      if (it == out.metrics.end() || it->name != metric.name) {
        out.metrics.insert(it, metric);
        continue;
      }
      if (it->kind != metric.kind) continue;  // name collision across kinds
      if (metric.kind == MetricKind::kHistogram) {
        // Merge only when the bucket layouts agree; on a mismatch the
        // first snapshot's histogram stays fully intact (value included),
        // never a sum of values over buckets from one contributor.
        if (it->histogram.has_value() && metric.histogram.has_value() &&
            it->histogram->bounds == metric.histogram->bounds) {
          it->value += metric.value;
          for (std::size_t b = 0; b < it->histogram->counts.size(); ++b) {
            it->histogram->counts[b] += metric.histogram->counts[b];
          }
          it->histogram->count += metric.histogram->count;
          it->histogram->sum += metric.histogram->sum;
        }
        continue;
      }
      it->value += metric.value;
    }
  }
  return out;
}

Registry::Entry* Registry::find_entry(std::string_view name) {
  for (auto& entry : entries_) {
    if (entry.name == name) return &entry;
  }
  return nullptr;
}

Registry::Entry& Registry::emplace(std::string_view name, std::string_view help,
                                   MetricKind kind) {
  Entry& entry = entries_.emplace_back();
  entry.name = std::string(name);
  entry.help = std::string(help);
  entry.kind = kind;
  return entry;
}

Counter& Registry::counter(std::string_view name, std::string_view help) {
  std::lock_guard lock(mutex_);
  if (Entry* existing = find_entry(name)) {
    assert(existing->kind == MetricKind::kCounter && existing->counter);
    return *existing->counter;
  }
  Entry& entry = emplace(name, help, MetricKind::kCounter);
  entry.counter = std::make_unique<Counter>();
  return *entry.counter;
}

Gauge& Registry::gauge(std::string_view name, std::string_view help) {
  std::lock_guard lock(mutex_);
  if (Entry* existing = find_entry(name)) {
    assert(existing->kind == MetricKind::kGauge && existing->gauge);
    return *existing->gauge;
  }
  Entry& entry = emplace(name, help, MetricKind::kGauge);
  entry.gauge = std::make_unique<Gauge>();
  return *entry.gauge;
}

Histogram& Registry::histogram(std::string_view name, std::vector<double> bounds,
                               std::string_view help) {
  std::lock_guard lock(mutex_);
  if (Entry* existing = find_entry(name)) {
    assert(existing->kind == MetricKind::kHistogram && existing->histogram);
    return *existing->histogram;
  }
  Entry& entry = emplace(name, help, MetricKind::kHistogram);
  entry.histogram = std::make_unique<Histogram>(std::move(bounds));
  return *entry.histogram;
}

void Registry::counter_fn(std::string_view name, std::function<std::uint64_t()> fn,
                          std::string_view help) {
  std::lock_guard lock(mutex_);
  if (find_entry(name) != nullptr) return;
  Entry& entry = emplace(name, help, MetricKind::kCounter);
  entry.pull = [fn = std::move(fn)] { return static_cast<double>(fn()); };
}

void Registry::gauge_fn(std::string_view name, std::function<double()> fn,
                        std::string_view help) {
  std::lock_guard lock(mutex_);
  if (find_entry(name) != nullptr) return;
  Entry& entry = emplace(name, help, MetricKind::kGauge);
  entry.pull = std::move(fn);
}

RegistrySnapshot Registry::snapshot() const {
  std::lock_guard lock(mutex_);
  RegistrySnapshot out;
  out.metrics.reserve(entries_.size());
  for (const auto& entry : entries_) {
    MetricSnapshot metric;
    metric.name = entry.name;
    metric.help = entry.help;
    metric.kind = entry.kind;
    if (entry.pull) {
      metric.value = entry.pull();
    } else if (entry.counter) {
      metric.value = static_cast<double>(entry.counter->value());
    } else if (entry.gauge) {
      metric.value = entry.gauge->value();
    } else if (entry.histogram) {
      metric.histogram = entry.histogram->snapshot();
    }
    out.metrics.push_back(std::move(metric));
  }
  std::sort(out.metrics.begin(), out.metrics.end(),
            [](const MetricSnapshot& a, const MetricSnapshot& b) {
              return a.name < b.name;
            });
  return out;
}

std::size_t Registry::size() const {
  std::lock_guard lock(mutex_);
  return entries_.size();
}

}  // namespace infilter::obs

#include "runtime/affinity.h"

#include <algorithm>
#include <cctype>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace infilter::runtime {
namespace {

/// Upper bound on a cpu id we accept: CPU_SETSIZE is 1024 on glibc, but
/// the parse should not depend on the libc compiled against, so we cap at
/// a generous constant and let pin_current_thread() report ids the
/// running kernel rejects.
constexpr int kMaxCpuId = 4095;

bool parse_int(std::string_view token, int& out) {
  if (token.empty()) return false;
  long value = 0;
  for (const char c : token) {
    if (std::isdigit(static_cast<unsigned char>(c)) == 0) return false;
    value = value * 10 + (c - '0');
    if (value > kMaxCpuId) return false;
  }
  out = static_cast<int>(value);
  return true;
}

}  // namespace

std::optional<std::vector<int>> parse_cpu_set(std::string_view text,
                                              std::string* error) {
  const auto fail = [&](const std::string& what) -> std::optional<std::vector<int>> {
    if (error != nullptr) *error = "cpu set '" + std::string(text) + "': " + what;
    return std::nullopt;
  };
  std::vector<int> cpus;
  std::size_t begin = 0;
  while (begin <= text.size()) {
    const std::size_t comma = std::min(text.find(',', begin), text.size());
    const std::string_view token = text.substr(begin, comma - begin);
    begin = comma + 1;
    const std::size_t dash = token.find('-');
    if (dash == std::string_view::npos) {
      int cpu = 0;
      if (!parse_int(token, cpu)) return fail("expected a cpu id, got '" +
                                              std::string(token) + "'");
      cpus.push_back(cpu);
    } else {
      int lo = 0;
      int hi = 0;
      if (!parse_int(token.substr(0, dash), lo) ||
          !parse_int(token.substr(dash + 1), hi)) {
        return fail("malformed range '" + std::string(token) + "'");
      }
      if (hi < lo) return fail("reversed range '" + std::string(token) + "'");
      for (int cpu = lo; cpu <= hi; ++cpu) cpus.push_back(cpu);
    }
    if (comma == text.size()) break;
  }
  if (cpus.empty()) return fail("no cpus");
  std::sort(cpus.begin(), cpus.end());
  cpus.erase(std::unique(cpus.begin(), cpus.end()), cpus.end());
  return cpus;
}

bool pin_current_thread(const std::vector<int>& cpus, std::size_t slot) {
  if (cpus.empty()) return true;
#if defined(__linux__)
  const int cpu = cpus[slot % cpus.size()];
  if (cpu < 0 || cpu >= CPU_SETSIZE) return false;
  cpu_set_t mask;
  CPU_ZERO(&mask);
  CPU_SET(cpu, &mask);
  return ::pthread_setaffinity_np(::pthread_self(), sizeof mask, &mask) == 0;
#else
  (void)slot;
  return false;
#endif
}

}  // namespace infilter::runtime

#include "runtime/runtime.h"

#include <cassert>
#include <chrono>

#include "util/rng.h"

namespace infilter::runtime {
namespace {

/// Spins before a worker parks: long enough to ride out the dispatcher
/// refilling the ring, short enough that an idle runtime burns no core.
constexpr int kIdleSpins = 64;
/// Dispatcher-side nap while a full ring drains under kBlock.
constexpr auto kBackpressureNap = std::chrono::microseconds(50);

core::EngineConfig shard_engine_config(const RuntimeConfig& config) {
  core::EngineConfig engine = config.engine;
  // Private per-shard registry: merged views come from snapshot(), and an
  // external registry must never outlive callbacks into a dead shard.
  engine.registry = nullptr;
  return engine;
}

}  // namespace

ShardedRuntime::ShardedRuntime(RuntimeConfig config, alert::AlertSink* sink,
                               VerdictHook hook)
    : config_(std::move(config)),
      sink_(sink),
      hook_(std::move(hook)),
      owned_registry_(std::make_unique<obs::Registry>()),
      registry_(config_.registry != nullptr ? config_.registry
                                            : owned_registry_.get()) {
  assert(config_.shards >= 1);
  assert(config_.max_batch >= 1);

  submitted_ = &registry_->counter("infilter_runtime_submitted_total",
                                   "Flows offered to the dispatcher");
  dropped_ = &registry_->counter(
      "infilter_runtime_dropped_total",
      "Flows shed because a shard ring stayed full (kDrop policy)");
  backpressure_waits_ = &registry_->counter(
      "infilter_runtime_backpressure_waits_total",
      "Dispatcher stalls waiting for a full shard ring to drain (kBlock)");
  batches_ = &registry_->counter("infilter_runtime_batches_total",
                                 "Worker dequeue batches");
  batch_size_ = &registry_->histogram(
      "infilter_runtime_batch_size",
      obs::Histogram::exponential_bounds(1.0, 2.0, 10),
      "Flows claimed per worker dequeue batch");
  // `this`-capturing pull gauges always live in the runtime-private
  // registry: obs::Registry has no unregistration, so installing them in a
  // caller-supplied registry that outlives the runtime would leave a
  // dangling callback behind (and, registration being idempotent, a second
  // runtime sharing that registry could never replace it). snapshot()
  // merges them in; only plain value instruments -- safe to read after the
  // runtime dies -- go into the external registry above.
  owned_registry_->gauge_fn(
      "infilter_runtime_shards",
      [this] { return static_cast<double>(shards_.size()); },
      "Worker threads / engine shards");
  owned_registry_->gauge_fn(
      "infilter_runtime_queued",
      [this] {
        std::size_t queued = 0;
        for (const auto& shard : shards_) queued += shard->ring->size();
        return static_cast<double>(queued);
      },
      "Flows currently sitting in shard rings");

  shards_.reserve(static_cast<std::size_t>(config_.shards));
  for (int s = 0; s < config_.shards; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->ring = std::make_unique<SpscRing<FlowItem>>(config_.queue_depth);
    shard->engine = std::make_unique<core::InFilterEngine>(
        shard_engine_config(config_), sink != nullptr ? &sink_ : nullptr);
    shards_.push_back(std::move(shard));
  }
  // Engines first, threads second: a worker must never observe a
  // half-constructed shard vector.
  for (auto& shard : shards_) {
    shard->worker = std::thread([this, raw = shard.get()] { worker_main(*raw); });
  }
}

ShardedRuntime::~ShardedRuntime() { shutdown(); }

void ShardedRuntime::add_expected(core::IngressId ingress,
                                  const net::Prefix& prefix) {
  for (auto& shard : shards_) shard->engine->add_expected(ingress, prefix);
}

void ShardedRuntime::set_clusters(
    std::shared_ptr<const core::TrainedClusters> clusters) {
  for (auto& shard : shards_) shard->engine->set_clusters(clusters);
}

void ShardedRuntime::train(std::span<const netflow::V5Record> normal_flows) {
  // Train once, share everywhere -- the paper builds the NNS structures
  // once "prior to the experiment runs"; N shards retraining N times would
  // multiply the most expensive setup step for identical results.
  set_clusters(std::make_shared<const core::TrainedClusters>(
      normal_flows, config_.engine.cluster, config_.engine.seed));
}

std::size_t ShardedRuntime::shard_of(core::IngressId ingress,
                                     net::IPv4Address source,
                                     std::size_t shards) {
  // The EIA auto-learning key (eia.cpp): ingress in the high word, the
  // source /24 in the low. Hashing exactly this key colocates every flow
  // that can touch one learning counter or one learned /24.
  const std::uint64_t key =
      (std::uint64_t{ingress} << 32) | (source.value() & 0xFFFFFF00u);
  return util::SplitMix64{key}.next() % shards;
}

void ShardedRuntime::wake(Shard& shard) {
  if (shard.parked.load(std::memory_order_seq_cst)) {
    std::lock_guard lock(shard.wake_mutex);
    shard.wake_cv.notify_one();
  }
}

bool ShardedRuntime::push_with_backpressure(Shard& shard, const FlowItem& item) {
  if (shard.ring->try_push(item)) return true;
  if (config_.backpressure == BackpressurePolicy::kDrop) {
    dropped_->inc();
    return false;
  }
  backpressure_waits_->inc();
  for (;;) {
    // The ring is full, so the worker cannot be parked for long -- but it
    // may have parked in the instant before our failed push; wake it.
    wake(shard);
    std::this_thread::sleep_for(kBackpressureNap);
    if (shard.ring->try_push(item)) return true;
  }
}

std::size_t ShardedRuntime::push_batch_with_backpressure(
    Shard& shard, std::span<const FlowItem> items) {
  std::size_t accepted = 0;
  while (accepted < items.size()) {
    const std::size_t pushed =
        shard.ring->try_push_batch(items.subspan(accepted));
    accepted += pushed;
    if (pushed > 0) wake(shard);
    if (accepted == items.size()) break;
    if (config_.backpressure == BackpressurePolicy::kDrop) {
      dropped_->inc(items.size() - accepted);
      break;
    }
    backpressure_waits_->inc();
    wake(shard);
    std::this_thread::sleep_for(kBackpressureNap);
  }
  return accepted;
}

bool ShardedRuntime::submit(const netflow::V5Record& record,
                            core::IngressId ingress, util::TimeMs now,
                            std::uint64_t tag) {
  submitted_->inc();
  if (stopped_) {
    dropped_->inc();
    return false;
  }
  Shard& shard = *shards_[shard_of(ingress, record.src_ip, shards_.size())];
  if (!push_with_backpressure(shard, FlowItem{record, ingress, now, tag})) {
    return false;
  }
  shard.enqueued.fetch_add(1, std::memory_order_relaxed);
  wake(shard);
  return true;
}

std::size_t ShardedRuntime::submit_batch(std::span<const FlowItem> items) {
  submitted_->inc(items.size());
  if (stopped_) {
    dropped_->inc(items.size());
    return 0;
  }
  // Bucket per shard, then push each bucket with one batched ring
  // operation; the scratch buckets are rebuilt per call (the dispatcher is
  // one thread, so a member scratch would buy little and cost clarity).
  std::vector<std::vector<FlowItem>> buckets(shards_.size());
  for (const FlowItem& item : items) {
    buckets[shard_of(item.ingress, item.record.src_ip, shards_.size())]
        .push_back(item);
  }
  std::size_t accepted = 0;
  for (std::size_t s = 0; s < buckets.size(); ++s) {
    if (buckets[s].empty()) continue;
    Shard& shard = *shards_[s];
    const std::size_t pushed = push_batch_with_backpressure(shard, buckets[s]);
    shard.enqueued.fetch_add(pushed, std::memory_order_relaxed);
    accepted += pushed;
  }
  return accepted;
}

void ShardedRuntime::worker_main(Shard& shard) {
  std::vector<FlowItem> batch(config_.max_batch);
  // Reusable batch buffers for the engine's batch API (FlowItem carries the
  // ring tag, so the engine inputs are copied out into their own contiguous
  // array). Sized once; no per-batch allocation.
  std::vector<core::FlowInput> inputs(config_.max_batch);
  std::vector<core::Verdict> verdicts(config_.max_batch);
  for (;;) {
    const std::size_t n = shard.ring->try_pop_batch(batch.data(), batch.size());
    if (n == 0) {
      if (stopping_.load(std::memory_order_acquire) && shard.ring->empty()) break;
      // Spin briefly (the dispatcher may be mid-refill), then park. The
      // timed, predicate-guarded wait bounds any lost-wakeup window to one
      // nap instead of risking a missed-notify deadlock.
      bool refilled = false;
      for (int spin = 0; spin < kIdleSpins; ++spin) {
        if (!shard.ring->empty()) {
          refilled = true;
          break;
        }
        std::this_thread::yield();
      }
      if (!refilled) {
        std::unique_lock lock(shard.wake_mutex);
        shard.parked.store(true, std::memory_order_seq_cst);
        shard.wake_cv.wait_for(lock, std::chrono::milliseconds(1), [&] {
          return !shard.ring->empty() ||
                 stopping_.load(std::memory_order_acquire);
        });
        shard.parked.store(false, std::memory_order_seq_cst);
      }
      continue;
    }
    batches_->inc();
    batch_size_->observe(static_cast<double>(n));
    for (std::size_t i = 0; i < n; ++i) {
      inputs[i] = core::FlowInput{batch[i].record, batch[i].ingress, batch[i].now};
    }
    shard.engine->process_batch(
        std::span<const core::FlowInput>(inputs.data(), n),
        std::span<core::Verdict>(verdicts.data(), n));
    if (hook_) {
      for (std::size_t i = 0; i < n; ++i) hook_(batch[i], verdicts[i]);
    }
    shard.processed.fetch_add(n, std::memory_order_release);
  }
}

void ShardedRuntime::flush() {
  for (auto& shard : shards_) {
    while (shard->processed.load(std::memory_order_acquire) <
           shard->enqueued.load(std::memory_order_relaxed)) {
      wake(*shard);
      std::this_thread::sleep_for(kBackpressureNap);
    }
  }
}

void ShardedRuntime::shutdown() {
  if (stopped_) return;
  flush();
  stopping_.store(true, std::memory_order_release);
  for (auto& shard : shards_) {
    std::lock_guard lock(shard->wake_mutex);
    shard->wake_cv.notify_one();
  }
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
  stopped_ = true;
}

RuntimeStats ShardedRuntime::stats() const {
  RuntimeStats out;
  out.submitted = submitted_->value();
  out.dropped = dropped_->value();
  out.backpressure_waits = backpressure_waits_->value();
  out.batches = batches_->value();
  for (const auto& shard : shards_) {
    out.dispatched += shard->enqueued.load(std::memory_order_relaxed);
    out.processed += shard->processed.load(std::memory_order_acquire);
  }
  return out;
}

const core::InFilterEngine& ShardedRuntime::shard_engine(std::size_t shard) const {
  return *shards_[shard]->engine;
}

obs::RegistrySnapshot ShardedRuntime::snapshot() const {
  std::vector<obs::RegistrySnapshot> parts;
  parts.reserve(shards_.size() + 2);
  parts.push_back(registry_->snapshot());
  if (owned_registry_.get() != registry_) {
    parts.push_back(owned_registry_->snapshot());
  }
  for (const auto& shard : shards_) {
    // A shard engine's registry holds pull gauges over plain (non-atomic)
    // engine state -- the EIA pending map, the scan buffer -- that the
    // worker mutates while processing. Sample a shard only when it is
    // quiescent: every flow the dispatcher pushed has been fully
    // processed, so the worker cannot touch the engine again before the
    // dispatcher (the thread running this, per the contract) submits more.
    // The acquire pairs with the worker's release of `processed`, making
    // the engine writes visible to the snapshot.
    if (shard->processed.load(std::memory_order_acquire) ==
        shard->enqueued.load(std::memory_order_relaxed)) {
      parts.push_back(shard->engine->registry().snapshot());
    }
  }
  return obs::merge_snapshots(parts);
}

}  // namespace infilter::runtime

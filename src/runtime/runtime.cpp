#include "runtime/runtime.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <queue>
#include <string>

#include "lifecycle/migrate.h"
#include "runtime/affinity.h"
#include "util/rng.h"

namespace infilter::runtime {
namespace {

/// Spins before a worker parks: long enough to ride out a producer
/// refilling the rings, short enough that an idle runtime burns no core.
constexpr int kIdleSpins = 64;
/// Producer-side nap while a full ring drains under kBlock.
constexpr auto kBackpressureNap = std::chrono::microseconds(50);

core::EngineConfig shard_engine_config(const RuntimeConfig& config) {
  core::EngineConfig engine = config.engine;
  // Private per-shard registry: merged views come from snapshot(), and an
  // external registry must never outlive callbacks into a dead shard.
  engine.registry = nullptr;
  return engine;
}

/// What a retired shard engine leaves behind at resize: its counters and
/// histograms (pure history, safe to sum forever). Gauges are dropped --
/// they describe live state (pending learn counters, table sizes) that
/// the migration moved into the new engines, whose own gauges now report
/// it; merging both would double-count.
obs::RegistrySnapshot history_only(const obs::RegistrySnapshot& snap) {
  obs::RegistrySnapshot out;
  for (const obs::MetricSnapshot& metric : snap.metrics) {
    if (metric.kind != obs::MetricKind::kGauge) out.metrics.push_back(metric);
  }
  return out;
}

}  // namespace

ShardedRuntime::ShardedRuntime(RuntimeConfig config, alert::AlertSink* sink,
                               VerdictHook hook)
    : config_(std::move(config)),
      sink_(sink),
      engine_sink_(sink != nullptr),
      hook_(std::move(hook)),
      tracer_(config_.tracer),
      owned_registry_(std::make_unique<obs::Registry>()),
      registry_(config_.registry != nullptr ? config_.registry
                                            : owned_registry_.get()) {
  assert(config_.shards >= 1);
  assert(config_.max_batch >= 1);
  if (config_.producers < 1) config_.producers = 1;

  submitted_ = &registry_->counter("infilter_runtime_submitted_total",
                                   "Flows offered to a producer's submit*()");
  dropped_ = &registry_->counter(
      "infilter_runtime_dropped_total",
      "Flows shed because a shard ring stayed full (kDrop policy)");
  backpressure_waits_ = &registry_->counter(
      "infilter_runtime_backpressure_waits_total",
      "Producer stalls waiting for a full shard ring to drain (kBlock)");
  batches_ = &registry_->counter("infilter_runtime_batches_total",
                                 "Worker merge batches");
  batch_size_ = &registry_->histogram(
      "infilter_runtime_batch_size",
      obs::Histogram::exponential_bounds(1.0, 2.0, 10),
      "Flows claimed per worker merge batch");
  resizes_total_ = &registry_->counter(
      "infilter_lifecycle_resizes_total",
      "Completed live shard-pool resizes (ShardedRuntime::resize)");
  migrated_entries_ = &registry_->counter(
      "infilter_lifecycle_migrated_entries_total",
      "State records carried across resize boundaries (EIA membership, "
      "age metadata, pending counters, hop-count ranges)");
  resize_pause_us_ = &registry_->histogram(
      "infilter_lifecycle_resize_pause_us",
      obs::Histogram::exponential_bounds(50.0, 2.0, 16),
      "Producer-visible pause of one resize, quiesce through thread restart");
  // `this`-capturing pull gauges always live in the runtime-private
  // registry: obs::Registry has no unregistration, so installing them in a
  // caller-supplied registry that outlives the runtime would leave a
  // dangling callback behind (and, registration being idempotent, a second
  // runtime sharing that registry could never replace it). snapshot()
  // merges them in; only plain value instruments -- safe to read after the
  // runtime dies -- go into the external registry above.
  owned_registry_->gauge_fn(
      "infilter_runtime_shards",
      [this] { return static_cast<double>(shards_.size()); },
      "Worker threads / engine shards");
  owned_registry_->gauge_fn(
      "infilter_runtime_queued",
      [this] {
        std::size_t queued = 0;
        for (const auto& shard : shards_) queued += shard->queued();
        return static_cast<double>(queued);
      },
      "Flows currently sitting in shard rings");
  owned_registry_->gauge_fn(
      "infilter_runtime_queue_imbalance",
      [this] {
        // Spread between the fullest and emptiest shard (summing each
        // shard's producer rings): a hot-shard skew (one /24 dominating
        // the traffic) shows up here long before it shows up as
        // backpressure.
        std::size_t lo = SIZE_MAX;
        std::size_t hi = 0;
        for (const auto& shard : shards_) {
          const std::size_t queued = shard->queued();
          lo = std::min(lo, queued);
          hi = std::max(hi, queued);
        }
        return shards_.empty() ? 0.0 : static_cast<double>(hi - lo);
      },
      "Max minus min shard occupancy (dispatch skew)");
  owned_registry_->gauge_fn(
      "infilter_runtime_queue_peak",
      [this] {
        std::uint64_t peak = 0;
        for (const auto& shard : shards_) {
          peak = std::max(peak,
                          shard->peak_queued.load(std::memory_order_relaxed));
        }
        return static_cast<double>(peak);
      },
      "High-water shard occupancy sampled at push time");
  owned_registry_->counter_fn(
      "infilter_runtime_suspects_forwarded_total",
      [this] { return suspects_forwarded_.load(std::memory_order_relaxed); },
      "EIA misses forwarded to the shared scan stage");
  owned_registry_->counter_fn(
      "infilter_runtime_suspects_completed_total",
      [this] { return suspects_completed_.load(std::memory_order_relaxed); },
      "Suspect flows completed by the shared scan stage");
  owned_registry_->gauge_fn(
      "infilter_runtime_producers",
      [this] { return static_cast<double>(producers_.size()); },
      "Producer slots (receiver-direct dispatchers)");
  owned_registry_->gauge_fn(
      "infilter_runtime_producer_lag",
      [this] {
        // How far the slowest producer's published watermark trails the
        // claim counter. Persistent lag from a live producer delays the
        // scan stage's reorder window; an idle producer closes it via
        // producer_idle().
        const std::uint64_t next = next_seq_.load(std::memory_order_relaxed);
        std::uint64_t lo = next;
        for (const auto& slot : producers_) {
          lo = std::min(lo, slot->published.load(std::memory_order_relaxed));
        }
        return static_cast<double>(next - lo);
      },
      "Claim counter minus the slowest producer's published watermark");
  owned_registry_->counter_fn(
      "infilter_runtime_producer_flows_total",
      [this] {
        std::uint64_t total = 0;
        for (const auto& slot : producers_) {
          total += slot->accepted.load(std::memory_order_relaxed);
        }
        return total;
      },
      "Flows accepted into shard rings, summed over producer slots");
  owned_registry_->gauge_fn(
      "infilter_runtime_pinned_threads",
      [this] {
        return static_cast<double>(
            pinned_threads_.load(std::memory_order_relaxed));
      },
      "Runtime threads pinned to a cpu from RuntimeConfig::cpu_set");
  owned_registry_->counter_fn(
      "infilter_runtime_affinity_failures_total",
      [this] { return affinity_failures_.load(std::memory_order_relaxed); },
      "Thread-pinning attempts the kernel refused (placement is a hint)");

  const bool scan_stage = config_.engine.mode == core::EngineMode::kEnhanced &&
                          config_.engine.use_scan_analysis;
  producers_.reserve(static_cast<std::size_t>(config_.producers));
  for (int p = 0; p < config_.producers; ++p) {
    producers_.push_back(std::make_unique<ProducerSlot>());
  }
  shards_.reserve(static_cast<std::size_t>(config_.shards));
  for (int s = 0; s < config_.shards; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->index = s;
    shard->rings.reserve(producers_.size());
    for (std::size_t p = 0; p < producers_.size(); ++p) {
      shard->rings.push_back(
          std::make_unique<SpscRing<FlowItem>>(config_.queue_depth));
    }
    shard->engine = std::make_unique<core::InFilterEngine>(
        shard_engine_config(config_), sink != nullptr ? &sink_ : nullptr);
    if (scan_stage) {
      shard->suspect_ring =
          std::make_unique<SpscRing<SeqSuspect>>(config_.queue_depth);
    }
    shards_.push_back(std::move(shard));
  }
  if (scan_stage) {
    scan_engine_ = std::make_unique<core::InFilterEngine>(
        shard_engine_config(config_), sink != nullptr ? &sink_ : nullptr);
  }
  // One lane per producer slot: submit* runs on the slot's owning thread
  // (one thread at a time, per the contract). No queue probe -- a
  // producer's input is its caller, not a ring we can measure.
  if (tracer_ != nullptr) {
    for (std::size_t p = 0; p < producers_.size(); ++p) {
      producers_[p]->lane = tracer_->register_thread(
          p == 0 ? std::string("dispatch") : "dispatch-" + std::to_string(p),
          "dispatch");
    }
  }
  // Engines first, threads second: a worker must never observe a
  // half-constructed shard vector.
  start_threads_locked();
}

ShardedRuntime::~ShardedRuntime() { shutdown(); }

void ShardedRuntime::add_expected(core::IngressId ingress,
                                  const net::Prefix& prefix) {
  // The scan engine's EIA table stays empty on purpose: finish_suspect*
  // never consults it (the EIA outcome rides along in SuspectFlow).
  std::unique_lock gate(submit_gate_);
  // Drain in-flight flows first: the workers read the tables the loop
  // below mutates, and the gate only stops *new* submits.
  flush_locked();
  for (auto& shard : shards_) shard->engine->add_expected(ingress, prefix);
}

void ShardedRuntime::install_hopcount(const hopcount::HopCountTable& table) {
  // Every shard gets the full table (like add_expected): a shard only
  // ever classifies flows whose source /24 hashes to it, so the
  // off-shard entries are dead weight, not a correctness hazard, and the
  // per-shard state evolves exactly as the serial engine's does on that
  // shard's key subset. The scan engine's table stays empty on purpose:
  // the TTL classification rides along in SuspectFlow.
  std::unique_lock gate(submit_gate_);
  flush_locked();
  for (auto& shard : shards_) shard->engine->install_hopcount(table);
}

void ShardedRuntime::set_clusters(
    std::shared_ptr<const core::TrainedClusters> clusters) {
  std::unique_lock gate(submit_gate_);
  flush_locked();
  for (auto& shard : shards_) shard->engine->set_clusters(clusters);
  // With the scan stage active the NNS stage runs there, not on shards.
  if (scan_engine_ != nullptr) scan_engine_->set_clusters(std::move(clusters));
}

void ShardedRuntime::train(std::span<const netflow::V5Record> normal_flows) {
  // Train once, share everywhere -- the paper builds the NNS structures
  // once "prior to the experiment runs"; N shards retraining N times would
  // multiply the most expensive setup step for identical results.
  set_clusters(std::make_shared<const core::TrainedClusters>(
      normal_flows, config_.engine.cluster, config_.engine.seed));
}

std::size_t ShardedRuntime::shard_of(net::IPv4Address source,
                                     std::size_t shards) {
  // Hash the source /24 alone -- a coarsening of the per-key state grain.
  // Every key the stateful pre-process stages can touch carries a /24
  // component: the EIA auto-learn counters and learned ranges are
  // (ingress, /24)-keyed and /24-sized (eia.cpp), and the hop-count table
  // is (ingress, /24)-keyed too. Sharding by /24 therefore colocates ALL
  // of a /24's state, whatever ingress it arrives through -- which is what
  // lets the hop-count stage classify an EIA-missing flow against the
  // range its source's home ingress learned (engine.cpp) without reading
  // another shard's state.
  return util::SplitMix64{source.value() & 0xFFFFFF00u}.next() % shards;
}

void ShardedRuntime::wake(Shard& shard) {
  if (shard.parked.load(std::memory_order_seq_cst)) {
    std::lock_guard lock(shard.wake_mutex);
    shard.wake_cv.notify_one();
  }
}

void ShardedRuntime::wake_scan() {
  if (scan_parked_.load(std::memory_order_seq_cst)) {
    std::lock_guard lock(scan_wake_mutex_);
    scan_wake_cv_.notify_one();
  }
}

void ShardedRuntime::note_occupancy(Shard& shard) {
  const std::uint64_t queued = shard.queued();
  std::uint64_t peak = shard.peak_queued.load(std::memory_order_relaxed);
  while (queued > peak && !shard.peak_queued.compare_exchange_weak(
                              peak, queued, std::memory_order_relaxed)) {
  }
}

bool ShardedRuntime::push_with_backpressure(Shard& shard,
                                            SpscRing<FlowItem>& ring,
                                            const FlowItem& item) {
  if (ring.try_push(item)) return true;
  if (config_.backpressure == BackpressurePolicy::kDrop) {
    dropped_->inc();
    return false;
  }
  backpressure_waits_->inc();
  for (;;) {
    // The ring is full, so the worker cannot be parked for long -- but it
    // may have parked in the instant before our failed push; wake it.
    wake(shard);
    std::this_thread::sleep_for(kBackpressureNap);
    if (ring.try_push(item)) return true;
  }
}

std::size_t ShardedRuntime::push_batch_with_backpressure(
    Shard& shard, SpscRing<FlowItem>& ring, std::span<const FlowItem> items) {
  std::size_t accepted = 0;
  while (accepted < items.size()) {
    const std::size_t pushed = ring.try_push_batch(items.subspan(accepted));
    accepted += pushed;
    if (pushed > 0) wake(shard);
    if (accepted == items.size()) break;
    if (config_.backpressure == BackpressurePolicy::kDrop) {
      dropped_->inc(items.size() - accepted);
      break;
    }
    backpressure_waits_->inc();
    wake(shard);
    std::this_thread::sleep_for(kBackpressureNap);
  }
  return accepted;
}

bool ShardedRuntime::submit(const netflow::V5Record& record,
                            core::IngressId ingress, util::TimeMs now,
                            std::uint64_t tag) {
  submitted_->inc();
  std::shared_lock gate(submit_gate_);
  if (stopped_.load(std::memory_order_relaxed)) {
    dropped_->inc();
    return false;
  }
  ProducerSlot& slot = *producers_[0];
  Shard& shard = *shards_[shard_of(record.src_ip, shards_.size())];
  // Claim one tag. A kDrop shed burns it -- gaps are tolerated everywhere
  // (the merges and the scan stage compare against watermarks, never for
  // contiguity), so the publish below advances past the shed claim.
  const std::uint64_t seq =
      next_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  FlowItem item{record, ingress, now, tag, seq};
  if (slot.lane != nullptr) {
    slot.lane->heartbeat();
    // Direct submits have no socket-receive stamp; a sampled journey
    // starts here, so its spans decompose dispatch-to-verdict. Sampling
    // keys on the tag -- the id every span is emitted under -- so an
    // upstream stage (an ingest receiver) that already screened this tag
    // reached the same verdict and the journey is never double-started.
    if (tracer_->enabled() && tracer_->sampled(item.tag)) {
      item.recv_ns = item.hop_ns = obs::Tracer::now_ns();
    }
  }
  const bool pushed = push_with_backpressure(shard, *shard.rings[0], item);
  if (pushed) {
    shard.enqueued.fetch_add(1, std::memory_order_relaxed);
    slot.accepted.fetch_add(1, std::memory_order_relaxed);
    note_occupancy(shard);
  }
  // Publish after the push (release): a merge that acquires this value and
  // finds the ring empty has consumed everything <= it.
  slot.published.store(seq, std::memory_order_release);
  if (pushed) wake(shard);
  return pushed;
}

std::size_t ShardedRuntime::submit_batch(std::span<const FlowItem> items,
                                         int producer) {
  submitted_->inc(items.size());
  assert(producer >= 0 &&
         static_cast<std::size_t>(producer) < producers_.size());
  std::shared_lock gate(submit_gate_);
  if (stopped_.load(std::memory_order_relaxed)) {
    dropped_->inc(items.size());
    return 0;
  }
  if (items.empty()) return 0;
  ProducerSlot& slot = *producers_[static_cast<std::size_t>(producer)];
  // Bucket per shard, then push each bucket with one batched ring
  // operation. The buckets are producer-slot scratch (one owning thread at
  // a time, per the contract), and clear() keeps each bucket's capacity,
  // so steady state allocates nothing. One fetch_add claims the whole tag
  // range [base+1, base+n]: tags follow items order, so "dispatch order"
  // within a producer is its submission order, and across producers it is
  // the claim interleaving.
  auto& buckets = slot.buckets;
  buckets.resize(shards_.size());
  for (auto& bucket : buckets) bucket.clear();
  const bool tracing = slot.lane != nullptr && tracer_->enabled();
  std::uint64_t t_sub = 0;
  if (slot.lane != nullptr) slot.lane->heartbeat(items.size());
  if (tracing) t_sub = obs::Tracer::now_ns();
  std::uint64_t seq =
      next_seq_.fetch_add(items.size(), std::memory_order_relaxed);
  const std::uint64_t last = seq + items.size();
  for (const FlowItem& item : items) {
    auto& bucket = buckets[shard_of(item.record.src_ip, shards_.size())];
    bucket.push_back(item);
    FlowItem& queued = bucket.back();
    queued.seq = ++seq;
    if (tracing) {
      if (queued.recv_ns != 0 && queued.hop_ns == queued.recv_ns) {
        // Stamped at the socket but the decode span is still open: close
        // it here (parse plus dispatch batching included). A
        // receiver-direct caller instead closes the span on its own lane
        // and arrives with hop_ns already advanced, so nothing is emitted
        // twice.
        slot.lane->emit(obs::SpanKind::kDecode, queued.hop_ns,
                        t_sub - queued.hop_ns, queued.tag);
        queued.hop_ns = t_sub;
      } else if (queued.recv_ns == 0 && tracer_->sampled(queued.tag)) {
        // No upstream stamp (direct submit): the journey starts here.
        // Keyed on the tag, like every emit and the ingest screen, so an
        // ingest-fed record the receiver chose NOT to sample is not
        // re-sampled here under a shifted id.
        queued.recv_ns = t_sub;
        queued.hop_ns = t_sub;
      }
    }
  }
  std::size_t accepted = 0;
  for (std::size_t s = 0; s < buckets.size(); ++s) {
    if (buckets[s].empty()) continue;
    Shard& shard = *shards_[s];
    const std::size_t pushed = push_batch_with_backpressure(
        shard, *shard.rings[static_cast<std::size_t>(producer)], buckets[s]);
    shard.enqueued.fetch_add(pushed, std::memory_order_relaxed);
    note_occupancy(shard);
    accepted += pushed;
  }
  // Publish only after every bucket is in its ring: a worker that acquires
  // this value and then finds this producer's ring empty has merged
  // everything <= it. Shed claims (kDrop) are published past, like gaps.
  slot.published.store(last, std::memory_order_release);
  slot.accepted.fetch_add(accepted, std::memory_order_relaxed);
  return accepted;
}

void ShardedRuntime::producer_idle(int producer) {
  std::shared_lock gate(submit_gate_);
  ProducerSlot& slot = *producers_[static_cast<std::size_t>(producer)];
  // Safe because the owning thread (the caller) has no submission in
  // flight on this slot: any future claim returns at least the counter
  // value loaded here, so nothing <= it can still be contributed.
  const std::uint64_t target = next_seq_.load(std::memory_order_relaxed);
  if (slot.published.load(std::memory_order_relaxed) < target) {
    slot.published.store(target, std::memory_order_release);
  }
}

ShardedRuntime::MergeResult ShardedRuntime::merge_batch(Shard& shard,
                                                        FlowItem* batch,
                                                        std::size_t max) {
  const std::size_t producers = producers_.size();
  if (producers == 1) {
    // Single-producer fast path: one ring is already in tag order, and one
    // batched pop amortizes the release/acquire pair (the k-way merge
    // below pays a head store per item).
    const std::size_t n = shard.rings[0]->try_pop_batch(batch, max);
    if (n == max) return {n, batch[n - 1].seq};
    // Ring drained. Acquire the published watermark *first*, then re-check
    // emptiness: everything <= the acquired value was pushed before the
    // producer's release store, so an empty ring afterwards means it has
    // all been merged (now or earlier) and the watermark may advance that
    // far even past a mid-publish pop (see the max() in the caller-facing
    // contract below).
    const std::uint64_t published =
        producers_[0]->published.load(std::memory_order_acquire);
    std::uint64_t watermark =
        n > 0 ? batch[n - 1].seq
              : shard.watermark.load(std::memory_order_relaxed);
    if (shard.rings[0]->empty() && published > watermark) watermark = published;
    return {n, watermark};
  }

  // K-way merge in tag order. `bound` is the largest tag this pass may
  // cross: for every producer whose ring is empty, its published
  // watermark (acquired *before* the emptiness check) caps the merge --
  // past it, that still-silent producer could yet contribute an earlier
  // tag. Rings are tag-ascending (ranges are claimed monotonically and
  // buckets push in order), so heads are per-ring minima.
  thread_local std::vector<const FlowItem*> fronts;
  fronts.assign(producers, nullptr);
  std::uint64_t bound = UINT64_MAX;
  for (std::size_t p = 0; p < producers; ++p) {
    const std::uint64_t published =
        producers_[p]->published.load(std::memory_order_acquire);
    fronts[p] = shard.rings[p]->front();
    if (fronts[p] == nullptr) bound = std::min(bound, published);
  }
  std::size_t n = 0;
  std::uint64_t last_seq = 0;
  while (n < max) {
    std::size_t best = producers;
    std::uint64_t best_seq = 0;
    std::uint64_t next_best = UINT64_MAX;
    for (std::size_t p = 0; p < producers; ++p) {
      if (fronts[p] == nullptr) continue;
      const std::uint64_t seq = fronts[p]->seq;
      if (best == producers || seq < best_seq) {
        if (best != producers) next_best = best_seq;
        best = p;
        best_seq = seq;
      } else if (seq < next_best) {
        next_best = seq;
      }
    }
    if (best == producers || best_seq > bound) break;
    // Take the whole run from `best`: tag ranges are claimed in batches,
    // so consecutive tags usually come from one producer and the P-way
    // scan amortizes over the run. The run ends where another ring's head
    // (or the bound) preempts.
    const std::uint64_t limit = std::min(next_best - 1, bound);
    auto& ring = *shard.rings[best];
    const FlowItem* front = fronts[best];
    for (;;) {
      batch[n++] = *front;
      last_seq = front->seq;
      ring.pop_front();
      if (n == max) {
        front = ring.front();
        break;
      }
      front = ring.front();
      if (front == nullptr) {
        // Drained mid-run: fold this producer's published watermark into
        // the bound (acquire first, then the confirming re-peek). Popped
        // tags can outrun a publish still in flight; the caller's
        // max(last_seq, ...) keeps the watermark honest -- once a tag is
        // popped, its producer can never contribute a smaller one here
        // (bucket pushes are ascending prefixes).
        const std::uint64_t published =
            producers_[best]->published.load(std::memory_order_acquire);
        front = ring.front();
        if (front == nullptr) {
          bound = std::min(bound, published);
          break;
        }
      }
      if (front->seq > limit) break;
    }
    fronts[best] = front;
  }
  // The pass's frontier: every flow of this shard with seq <= it is in
  // the batch or was already processed. A full batch stops mid-stream
  // (last_seq); an exhausted merge crossed every ring up to `bound`.
  std::uint64_t watermark = n == max ? last_seq : bound;
  if (last_seq > watermark) watermark = last_seq;
  if (watermark == UINT64_MAX) watermark = last_seq;  // unreachable guard
  return {n, watermark};
}

void ShardedRuntime::worker_main(Shard& shard) {
  if (!config_.cpu_set.empty()) {
    if (pin_current_thread(
            config_.cpu_set,
            config_.cpu_slot_offset + static_cast<std::size_t>(shard.index))) {
      pinned_threads_.fetch_add(1, std::memory_order_relaxed);
    } else {
      affinity_failures_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  const bool scan_stage = shard.suspect_ring != nullptr;
  // The worker's flight-recorder lane: heartbeat + state are always
  // published (one relaxed store per batch); span emission sits behind the
  // tracer_->enabled() branch. The queue probe captures the raw shard,
  // whose rings outlive the lane's retirement at thread exit.
  obs::ThreadLane* lane = nullptr;
  if (tracer_ != nullptr) {
    lane = tracer_->register_thread("shard-" + std::to_string(shard.index),
                                    "worker",
                                    [raw = &shard] { return raw->queued(); });
  }
  std::vector<FlowItem> batch(config_.max_batch);
  // Reusable batch buffers for the engine's batch API (FlowItem carries the
  // ring tag, so the engine inputs are copied out into their own contiguous
  // array). Sized once; no per-batch allocation at steady state.
  std::vector<core::FlowInput> inputs(config_.max_batch);
  std::vector<core::Verdict> verdicts(config_.max_batch);
  std::vector<core::SuspectFlow> suspects;
  std::vector<std::uint32_t> positions;
  const auto advance_watermark = [&shard](std::uint64_t to) {
    if (to > shard.watermark.load(std::memory_order_relaxed)) {
      shard.watermark.store(to, std::memory_order_release);
    }
  };
  for (;;) {
    const MergeResult merged = merge_batch(shard, batch.data(), batch.size());
    const std::size_t n = merged.count;
    if (n == 0) {
      // Nothing mergeable, but the frontier may still move (idle
      // producers publishing forward): keep the scan stage's reorder
      // window fed.
      if (scan_stage) advance_watermark(merged.watermark);
      if (stopping_.load(std::memory_order_acquire) && shard.queued() == 0) break;
      if (lane != nullptr) lane->set_state(obs::ThreadState::kIdle);
      // Spin briefly (a producer may be mid-refill), then park. The
      // timed, predicate-guarded wait bounds any lost-wakeup window to one
      // nap instead of risking a missed-notify deadlock.
      bool refilled = false;
      for (int spin = 0; spin < kIdleSpins; ++spin) {
        if (shard.queued() != 0) {
          refilled = true;
          break;
        }
        std::this_thread::yield();
      }
      if (!refilled) {
        std::unique_lock lock(shard.wake_mutex);
        shard.parked.store(true, std::memory_order_seq_cst);
        shard.wake_cv.wait_for(lock, std::chrono::milliseconds(1), [&] {
          return shard.queued() != 0 ||
                 stopping_.load(std::memory_order_acquire);
        });
        shard.parked.store(false, std::memory_order_seq_cst);
      }
      continue;
    }
    batches_->inc();
    batch_size_->observe(static_cast<double>(n));
    bool sampled_any = false;
    if (lane != nullptr) {
      lane->set_state(obs::ThreadState::kBusy);
      lane->heartbeat(n);
      if (tracer_->enabled()) {
        // Close the shard-queue-wait span for every sampled record in the
        // batch. One clock read per batch, taken lazily: a batch with no
        // sampled records costs n compares and nothing else.
        std::uint64_t t_pop = 0;
        for (std::size_t i = 0; i < n; ++i) {
          if (batch[i].recv_ns == 0) continue;
          if (t_pop == 0) t_pop = obs::Tracer::now_ns();
          lane->emit(obs::SpanKind::kQueueShard, batch[i].hop_ns,
                     t_pop - batch[i].hop_ns, batch[i].tag);
          tracer_->queue_wait_shard_us->observe(
              static_cast<double>(t_pop - batch[i].hop_ns) / 1000.0);
          batch[i].hop_ns = t_pop;
          sampled_any = true;
        }
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      inputs[i] = core::FlowInput{batch[i].record, batch[i].ingress, batch[i].now};
    }

    if (!scan_stage) {
      // Whole pipeline per shard: exact without a shared stage (kBasic is
      // EIA-only; with scan analysis off, EIA and NNS shard exactly).
      shard.engine->process_batch(
          std::span<const core::FlowInput>(inputs.data(), n),
          std::span<core::Verdict>(verdicts.data(), n));
      if (sampled_any) {
        const std::uint64_t t_done = obs::Tracer::now_ns();
        for (std::size_t i = 0; i < n; ++i) {
          if (batch[i].recv_ns == 0) continue;
          lane->emit(obs::SpanKind::kProcess, batch[i].hop_ns,
                     t_done - batch[i].hop_ns, batch[i].tag);
          tracer_->e2e_us->observe(
              static_cast<double>(t_done - batch[i].recv_ns) / 1000.0);
        }
      }
      if (hook_) {
        for (std::size_t i = 0; i < n; ++i) hook_(batch[i], verdicts[i]);
      }
      shard.processed.fetch_add(n, std::memory_order_release);
      continue;
    }

    // EIA stage only; suspects go to the scan stage with their dispatch
    // sequence numbers.
    suspects.clear();
    positions.clear();
    shard.engine->pre_process_batch(
        std::span<const core::FlowInput>(inputs.data(), n),
        std::span<core::Verdict>(verdicts.data(), n), suspects, positions);
    if (sampled_any) {
      // EIA-stage span for every sampled record; legal flows are final
      // here, so their journey ends (e2e). Suspects re-stamp hop_ns and
      // carry it into the scan stage via SeqSuspect.
      const std::uint64_t t_eia = obs::Tracer::now_ns();
      for (std::size_t i = 0; i < n; ++i) {
        if (batch[i].recv_ns == 0) continue;
        lane->emit(obs::SpanKind::kEia, batch[i].hop_ns,
                   t_eia - batch[i].hop_ns, batch[i].tag);
        batch[i].hop_ns = t_eia;
        if (!verdicts[i].suspect) {
          tracer_->e2e_us->observe(
              static_cast<double>(t_eia - batch[i].recv_ns) / 1000.0);
        }
      }
    }
    for (std::size_t j = 0; j < suspects.size(); ++j) {
      const FlowItem& origin = batch[positions[j]];
      const SeqSuspect item{suspects[j], origin.seq, origin.tag,
                            origin.recv_ns, origin.hop_ns};
      // Block, never drop: a suspect lost here would desynchronize the
      // scan buffer from the serial engine for every later flow. The wait
      // is bounded -- the scan thread unconditionally drains this ring
      // into its (unbounded) reorder heap on every pass.
      while (!shard.suspect_ring->try_push(item)) {
        wake_scan();
        std::this_thread::sleep_for(kBackpressureNap);
      }
    }
    if (!suspects.empty()) {
      // Relaxed is enough: the release store of `processed` below (and of
      // `watermark`) publishes it before flush()/snapshot() can read.
      suspects_forwarded_.fetch_add(suspects.size(), std::memory_order_relaxed);
      wake_scan();
    }
    // After the pushes: acquiring this watermark guarantees every suspect
    // up to it is visible in the ring.
    advance_watermark(merged.watermark);
    if (hook_) {
      // Legal flows are final here; suspect verdicts complete (and their
      // hook fires) on the scan thread, in dispatch order.
      for (std::size_t i = 0; i < n; ++i) {
        if (!verdicts[i].suspect) hook_(batch[i], verdicts[i]);
      }
    }
    shard.processed.fetch_add(n, std::memory_order_release);
  }
  if (lane != nullptr) lane->retire();
}

void ShardedRuntime::scan_main() {
  if (!config_.cpu_set.empty()) {
    // The slot after the workers (producers come before the offset, per
    // app/node's layout).
    if (pin_current_thread(config_.cpu_set,
                           config_.cpu_slot_offset + shards_.size())) {
      pinned_threads_.fetch_add(1, std::memory_order_relaxed);
    } else {
      affinity_failures_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  struct BySeq {
    bool operator()(const SeqSuspect& a, const SeqSuspect& b) const {
      return a.seq > b.seq;  // min-heap
    }
  };
  std::priority_queue<SeqSuspect, std::vector<SeqSuspect>, BySeq> pending;
  obs::ThreadLane* lane = nullptr;
  if (tracer_ != nullptr) {
    // The probe counts only ring occupancy, not the reorder heap: a heap
    // held back by a lagging watermark with empty rings means the *shard*
    // is the stalled party, and its own lane reports that.
    lane = tracer_->register_thread("scan", "scan", [this] {
      std::size_t queued = 0;
      for (const auto& shard : shards_) queued += shard->suspect_ring->size();
      return queued;
    });
  }
  std::vector<std::uint64_t> watermarks(shards_.size(), 0);
  std::vector<core::SuspectFlow> suspects;
  std::vector<FlowItem> origins;
  std::vector<core::Verdict> verdicts;
  SeqSuspect popped;
  for (;;) {
    // Read the watermarks *before* draining the rings: a suspect with
    // seq <= a shard's acquired watermark is already in that shard's ring
    // (the worker pushes before its release store), so after the drain the
    // heap holds every suspect at or below the safe bound.
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      watermarks[s] = shards_[s]->watermark.load(std::memory_order_acquire);
    }
    for (auto& shard : shards_) {
      while (shard->suspect_ring->try_pop(popped)) pending.push(popped);
    }
    // No suspect below min(watermarks) can still be in flight anywhere, so
    // everything up to it can be applied to the shared scan buffer in
    // sequence order -- exactly the order a serial engine processing the
    // realized dispatch sequence would use.
    const std::uint64_t safe =
        *std::min_element(watermarks.begin(), watermarks.end());
    suspects.clear();
    origins.clear();
    while (!pending.empty() && pending.top().seq <= safe) {
      const SeqSuspect& top = pending.top();
      suspects.push_back(top.suspect);
      origins.push_back(FlowItem{top.suspect.record, top.suspect.ingress,
                                 top.suspect.now, top.tag, top.seq,
                                 top.recv_ns, top.hop_ns});
      pending.pop();
    }
    if (!suspects.empty()) {
      bool sampled_any = false;
      if (lane != nullptr) {
        lane->set_state(obs::ThreadState::kBusy);
        lane->heartbeat(suspects.size());
        if (tracer_->enabled()) {
          // Close the reorder-window wait (suspect forward -> release).
          std::uint64_t t_rel = 0;
          for (FlowItem& origin : origins) {
            if (origin.recv_ns == 0) continue;
            if (t_rel == 0) t_rel = obs::Tracer::now_ns();
            lane->emit(obs::SpanKind::kQueueScan, origin.hop_ns,
                       t_rel - origin.hop_ns, origin.tag);
            tracer_->queue_wait_scan_us->observe(
                static_cast<double>(t_rel - origin.hop_ns) / 1000.0);
            origin.hop_ns = t_rel;
            sampled_any = true;
          }
        }
      }
      if (verdicts.size() < suspects.size()) verdicts.resize(suspects.size());
      scan_engine_->finish_suspect_batch(
          suspects, std::span<core::Verdict>(verdicts.data(), suspects.size()));
      if (sampled_any) {
        const std::uint64_t t_fin = obs::Tracer::now_ns();
        for (const FlowItem& origin : origins) {
          if (origin.recv_ns == 0) continue;
          lane->emit(obs::SpanKind::kScanNns, origin.hop_ns,
                     t_fin - origin.hop_ns, origin.tag);
          tracer_->e2e_us->observe(
              static_cast<double>(t_fin - origin.recv_ns) / 1000.0);
        }
      }
      if (hook_) {
        for (std::size_t i = 0; i < suspects.size(); ++i) {
          hook_(origins[i], verdicts[i]);
        }
      }
      // Release-publish the engine mutations: flush()/snapshot() acquire
      // this counter before touching the scan engine.
      suspects_completed_.fetch_add(suspects.size(), std::memory_order_release);
      continue;
    }
    if (scan_stopping_.load(std::memory_order_acquire) && pending.empty()) {
      // scan_stopping_ is set only after flush(), so nothing is in
      // flight; the empty-ring check is belt and braces.
      bool drained = true;
      for (const auto& shard : shards_) {
        if (!shard->suspect_ring->empty()) drained = false;
      }
      if (drained) break;
      continue;
    }
    if (lane != nullptr) lane->set_state(obs::ThreadState::kIdle);
    // Park with a 1 ms bound: a missed notify costs one nap, and every
    // wake-up (notified or timed) re-reads the watermarks, which idle
    // workers keep advancing. No predicate -- any wake reason is a reason
    // to re-evaluate.
    std::unique_lock lock(scan_wake_mutex_);
    scan_parked_.store(true, std::memory_order_seq_cst);
    scan_wake_cv_.wait_for(lock, std::chrono::milliseconds(1));
    scan_parked_.store(false, std::memory_order_seq_cst);
  }
  if (lane != nullptr) lane->retire();
}

void ShardedRuntime::flush_locked() {
  // Holding the gate exclusively means no claim is in flight, so every
  // producer's published watermark may advance to the claim counter --
  // without this, an idle producer that never called producer_idle()
  // would hold every merge (and the scan reorder window) at its last
  // publish forever.
  const std::uint64_t target = next_seq_.load(std::memory_order_relaxed);
  for (auto& slot : producers_) {
    if (slot->published.load(std::memory_order_relaxed) < target) {
      slot->published.store(target, std::memory_order_release);
    }
  }
  // Phase 1: every shard drains its flow rings (EIA stage complete). After
  // this, suspects_forwarded_ is final -- each worker bumps it before the
  // `processed` release store we acquire here.
  for (auto& shard : shards_) {
    while (shard->processed.load(std::memory_order_acquire) <
           shard->enqueued.load(std::memory_order_relaxed)) {
      wake(*shard);
      std::this_thread::sleep_for(kBackpressureNap);
    }
  }
  if (scan_engine_ == nullptr) return;
  // Phase 2: the scan stage completes every forwarded suspect. Progress
  // needs no help beyond waking the scan thread: parked idle workers
  // re-advance their watermarks at least once per ~1 ms park cycle, which
  // releases any suspects still held in the reorder window.
  while (suspects_completed_.load(std::memory_order_acquire) <
         suspects_forwarded_.load(std::memory_order_acquire)) {
    wake_scan();
    std::this_thread::sleep_for(kBackpressureNap);
  }
}

void ShardedRuntime::flush() {
  std::unique_lock gate(submit_gate_);
  flush_locked();
}

void ShardedRuntime::join_threads_locked() {
  stopping_.store(true, std::memory_order_release);
  for (auto& shard : shards_) {
    std::lock_guard lock(shard->wake_mutex);
    shard->wake_cv.notify_one();
  }
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
  // Workers first, scan thread second: after the flush nothing is in
  // flight, and joined workers can no longer forward suspects.
  if (scan_thread_.joinable()) {
    scan_stopping_.store(true, std::memory_order_release);
    {
      std::lock_guard lock(scan_wake_mutex_);
      scan_wake_cv_.notify_one();
    }
    scan_thread_.join();
  }
}

void ShardedRuntime::start_threads_locked() {
  stopping_.store(false, std::memory_order_release);
  scan_stopping_.store(false, std::memory_order_release);
  for (auto& shard : shards_) {
    shard->worker = std::thread([this, raw = shard.get()] { worker_main(*raw); });
  }
  if (scan_engine_ != nullptr) {
    scan_thread_ = std::thread([this] { scan_main(); });
  }
}

void ShardedRuntime::shutdown() {
  std::unique_lock gate(submit_gate_);
  if (stopped_.load(std::memory_order_relaxed)) return;
  flush_locked();
  join_threads_locked();
  for (auto& slot : producers_) {
    if (slot->lane != nullptr) slot->lane->retire();
  }
  stopped_.store(true, std::memory_order_relaxed);
}

bool ShardedRuntime::resize(int new_shards) {
  if (new_shards < 1) return false;
  std::unique_lock gate(submit_gate_);
  if (stopped_.load(std::memory_order_relaxed)) return false;
  if (static_cast<std::size_t>(new_shards) == shards_.size()) return true;
  const std::uint64_t t0 = obs::Tracer::now_ns();

  // Quiesce: every dispatched flow processed, every suspect completed,
  // then park the pool for good -- the harvest reads plain engine state
  // only joined workers can no longer touch.
  flush_locked();
  join_threads_locked();

  std::vector<const core::InFilterEngine*> engines;
  engines.reserve(shards_.size());
  for (const auto& shard : shards_) engines.push_back(shard->engine.get());
  const lifecycle::EngineHarvest harvest = lifecycle::harvest_engines(engines);

  // Retire the old engines' history; their live state rides on in the
  // harvest and reappears under the new engines' gauges.
  for (const auto& shard : shards_) {
    retired_.push_back(history_only(shard->engine->registry().snapshot()));
    retired_dispatched_.fetch_add(
        shard->enqueued.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    retired_processed_.fetch_add(
        shard->processed.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
  }

  // Rebuild the shard map. New watermarks start at the claim frontier:
  // every tag at or below it is fully processed, so the scan stage's
  // reorder window never waits on pre-resize history.
  const std::uint64_t frontier = next_seq_.load(std::memory_order_relaxed);
  const bool scan_stage = scan_engine_ != nullptr;
  config_.shards = new_shards;
  shards_.clear();
  shards_.reserve(static_cast<std::size_t>(new_shards));
  for (int s = 0; s < new_shards; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->index = s;
    shard->rings.reserve(producers_.size());
    for (std::size_t p = 0; p < producers_.size(); ++p) {
      shard->rings.push_back(
          std::make_unique<SpscRing<FlowItem>>(config_.queue_depth));
    }
    shard->engine = std::make_unique<core::InFilterEngine>(
        shard_engine_config(config_), engine_sink_ ? &sink_ : nullptr);
    if (scan_stage) {
      shard->suspect_ring =
          std::make_unique<SpscRing<SeqSuspect>>(config_.queue_depth);
    }
    shard->watermark.store(frontier, std::memory_order_relaxed);
    lifecycle::install_engine_state(harvest, *shard->engine,
                                    static_cast<std::size_t>(s),
                                    static_cast<std::size_t>(new_shards));
    shards_.push_back(std::move(shard));
  }
  start_threads_locked();

  resizes_total_->inc();
  migrated_entries_->inc(harvest.entry_count());
  resize_pause_us_->observe(static_cast<double>(obs::Tracer::now_ns() - t0) /
                            1000.0);
  return true;
}

std::size_t ShardedRuntime::age_sweep(util::TimeMs now) {
  std::unique_lock gate(submit_gate_);
  if (stopped_.load(std::memory_order_relaxed)) return 0;
  // Drain first (like add_expected): the sweep walks the same EIA maps
  // the workers mutate, and the gate only stops *new* submits. Parked
  // workers never touch a quiescent engine.
  flush_locked();
  std::size_t expired = 0;
  for (auto& shard : shards_) expired += shard->engine->age_sweep(now);
  return expired;
}

RuntimeStats ShardedRuntime::stats() const {
  RuntimeStats out;
  out.submitted = submitted_->value();
  out.dropped = dropped_->value();
  out.backpressure_waits = backpressure_waits_->value();
  out.batches = batches_->value();
  for (const auto& shard : shards_) {
    out.dispatched += shard->enqueued.load(std::memory_order_relaxed);
    out.processed += shard->processed.load(std::memory_order_acquire);
  }
  // Shards retired by resize() fold their totals in here, keeping every
  // stat monotone over the runtime's life across pool swaps.
  out.dispatched += retired_dispatched_.load(std::memory_order_relaxed);
  out.processed += retired_processed_.load(std::memory_order_relaxed);
  out.suspects_forwarded = suspects_forwarded_.load(std::memory_order_relaxed);
  out.suspects_completed = suspects_completed_.load(std::memory_order_relaxed);
  return out;
}

std::vector<std::size_t> ShardedRuntime::shard_queue_peaks() const {
  std::vector<std::size_t> peaks;
  peaks.reserve(shards_.size());
  for (const auto& shard : shards_) {
    peaks.push_back(static_cast<std::size_t>(
        shard->peak_queued.load(std::memory_order_relaxed)));
  }
  return peaks;
}

const core::InFilterEngine& ShardedRuntime::shard_engine(std::size_t shard) const {
  return *shards_[shard]->engine;
}

obs::RegistrySnapshot ShardedRuntime::snapshot() const {
  // The exclusive gate makes a snapshot safe while producer threads are
  // live: no submit races the per-shard quiescence checks below (their
  // pushes either completed before the gate or wait behind it).
  std::unique_lock gate(submit_gate_);
  std::vector<obs::RegistrySnapshot> parts;
  parts.reserve(shards_.size() + 3 + retired_.size());
  parts.push_back(registry_->snapshot());
  // Counter/histogram history of engines retired by resize() (their
  // gauges were dropped at retirement -- the live engines report that
  // state now).
  for (const obs::RegistrySnapshot& part : retired_) parts.push_back(part);
  if (owned_registry_.get() != registry_) {
    parts.push_back(owned_registry_->snapshot());
  }
  bool all_quiescent = true;
  for (const auto& shard : shards_) {
    // A shard engine's registry holds pull gauges over plain (non-atomic)
    // engine state -- the EIA pending map -- that the worker mutates
    // while processing. Sample a shard only when it is quiescent: every
    // flow the producers pushed has been fully processed, so the worker
    // cannot touch the engine again before a producer (gated out for the
    // duration of this call) submits more. The acquire pairs with the
    // worker's release of `processed`, making the engine writes visible
    // to the snapshot.
    if (shard->processed.load(std::memory_order_acquire) ==
        shard->enqueued.load(std::memory_order_relaxed)) {
      parts.push_back(shard->engine->registry().snapshot());
    } else {
      all_quiescent = false;
    }
  }
  // Same rule for the scan engine: merged only once every forwarded
  // suspect is completed (the acquire pairs with the scan thread's
  // release of suspects_completed_) *and* no busy shard could still
  // forward more. flush() first for a complete view.
  if (scan_engine_ != nullptr && all_quiescent &&
      suspects_completed_.load(std::memory_order_acquire) ==
          suspects_forwarded_.load(std::memory_order_relaxed)) {
    parts.push_back(scan_engine_->registry().snapshot());
  }
  return obs::merge_snapshots(parts);
}

}  // namespace infilter::runtime

// Bounded single-producer / single-consumer ring buffer.
//
// The queue between one producer and one shard worker (runtime.h keeps a
// ring per (producer, shard) pair and merges at the worker). One thread
// pushes, one thread pops; under that contract every operation is
// wait-free: a slot index is a monotone position counter and the masked
// remainder addresses the slot array, so full/empty tests are two loads.
//
// Layout discipline:
//   * head_ (consumer position) and tail_ (producer position) live on
//     separate cache lines so the producer's stores never invalidate the
//     consumer's hot line and vice versa.
//   * Each side keeps a cached copy of the other side's index and only
//     re-reads the shared atomic when the cached value would make the
//     operation fail -- the fast path of a push/pop touches no shared
//     cache line at all (Rigtorp-style SPSC).
//   * Batch push/pop amortize even those re-reads over whole spans, which
//     is what lets the dispatcher keep up with several workers.
//
// Capacity is rounded up to a power of two so the position-to-slot map is
// a mask, not a division.

#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <memory>
#include <span>

namespace infilter::runtime {

/// Size in bytes of a destructive-interference-free alignment. We avoid
/// std::hardware_destructive_interference_size: libstdc++ warns that its
/// value is ABI-fragile, and 64 is right for every target we build on.
inline constexpr std::size_t kCacheLine = 64;

template <typename T>
class SpscRing {
 public:
  /// `capacity` is a lower bound; the ring rounds it up to a power of two
  /// (minimum 2).
  explicit SpscRing(std::size_t capacity)
      : capacity_(std::bit_ceil(capacity < 2 ? std::size_t{2} : capacity)),
        mask_(capacity_ - 1),
        slots_(std::make_unique<T[]>(capacity_)) {}

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Producer side. Returns false when the ring is full.
  bool try_push(T value) noexcept {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - cached_head_ >= capacity_) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (tail - cached_head_ >= capacity_) return false;
    }
    slots_[tail & mask_] = std::move(value);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Producer side: pushes a prefix of `items`, returning how many fit.
  /// One release store publishes the whole batch.
  std::size_t try_push_batch(std::span<const T> items) noexcept {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    std::size_t free = capacity_ - (tail - cached_head_);
    if (free < items.size()) {
      cached_head_ = head_.load(std::memory_order_acquire);
      free = capacity_ - (tail - cached_head_);
    }
    const std::size_t n = free < items.size() ? free : items.size();
    for (std::size_t i = 0; i < n; ++i) slots_[(tail + i) & mask_] = items[i];
    if (n > 0) tail_.store(tail + n, std::memory_order_release);
    return n;
  }

  /// Consumer side. Returns false when the ring is empty.
  bool try_pop(T& out) noexcept {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head == cached_tail_) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (head == cached_tail_) return false;
    }
    out = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side: pops up to `max` items into `out`, returning the count.
  /// One release store frees the whole batch for the producer.
  std::size_t try_pop_batch(T* out, std::size_t max) noexcept {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    std::size_t available = cached_tail_ - head;
    if (available < max) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      available = cached_tail_ - head;
    }
    const std::size_t n = available < max ? available : max;
    for (std::size_t i = 0; i < n; ++i) out[i] = std::move(slots_[(head + i) & mask_]);
    if (n > 0) head_.store(head + n, std::memory_order_release);
    return n;
  }

  /// Consumer side: a pointer to the oldest item without consuming it, or
  /// nullptr when the ring is empty. The pointer stays valid until the
  /// consumer pops; the shard workers use it to merge several producer
  /// rings in sequence order without committing to a pop.
  [[nodiscard]] const T* front() noexcept {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head == cached_tail_) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (head == cached_tail_) return nullptr;
    }
    return &slots_[head & mask_];
  }

  /// Consumer side: discards the item front() exposed. Precondition: the
  /// ring is non-empty (front() returned non-null since the last pop).
  void pop_front() noexcept {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    head_.store(head + 1, std::memory_order_release);
  }

  /// Either side: approximate occupancy (exact when the other side is
  /// quiescent).
  [[nodiscard]] std::size_t size() const noexcept {
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    const std::size_t head = head_.load(std::memory_order_acquire);
    return tail - head;
  }
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }

 private:
  const std::size_t capacity_;
  const std::size_t mask_;
  std::unique_ptr<T[]> slots_;

  alignas(kCacheLine) std::atomic<std::size_t> head_{0};  ///< consumer position
  alignas(kCacheLine) std::size_t cached_tail_{0};        ///< consumer's view of tail_
  alignas(kCacheLine) std::atomic<std::size_t> tail_{0};  ///< producer position
  alignas(kCacheLine) std::size_t cached_head_{0};        ///< producer's view of head_
};

}  // namespace infilter::runtime

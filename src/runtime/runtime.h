// The concurrent sharded detection runtime.
//
// A new layer between flow ingestion and the analysis engine: N worker
// threads, each owning a private InFilterEngine (its own EIA table, scan
// buffer, and metrics registry), fed by bounded SPSC rings from a single
// dispatcher. The dispatcher hashes each flow's (ingress, source /24) to
// a fixed shard, so every flow from one source -- and every flow sharing
// that source's EIA auto-learning counter -- always reaches the same
// engine. The paper's prototype sits at a POP border; this is the piece
// that lets the same pipeline keep up with carrier-grade export rates.
//
// Semantics relative to one serial engine processing the same stream:
//   * EIA: exact. The EIA check and Section 5.2 auto-learning key on
//     (ingress, source /24) -- precisely the shard hash -- and each ring
//     preserves dispatch order, so a shard engine sees the same
//     state-relevant history a serial engine would.
//   * NNS: exact. Trained clusters are shared immutable state and the
//     probe RNG is derived per flow (core/engine.h), not from a stream.
//   * Scan analysis: per-shard. The suspect buffer keys on *destination*
//     (hosts-per-port / ports-per-host), so sharding by source splits it;
//     verdicts remain deterministic for a fixed (seed, shard count) but
//     can differ from the single-buffer serial engine. With one shard, or
//     with scan analysis disabled, the whole pipeline is exactly
//     serial-equivalent -- tests/test_runtime.cpp pins both properties.
//
// Threading contract: submit*/flush/shutdown/snapshot and the
// training-phase calls are single-dispatcher operations -- call them from
// one thread at a time (the SPSC rings assume one producer, and snapshot
// relies on no submit racing its per-shard quiescence checks). Alerts from all shards funnel
// through one alert::SerializingSink, so any AlertSink works unmodified.
// Workers spin briefly when idle, then park on a per-shard futex-style
// condition variable; the dispatcher wakes a parked worker only when it
// pushes into that worker's ring.
//
// Backpressure: when a shard's ring is full the dispatcher either blocks
// (kBlock: waits for the worker to drain, counting the waits) or sheds the
// flow (kDrop: counts it and returns false). Both counters are runtime
// metrics, exported alongside the merged per-shard engine metrics.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "alert/idmef.h"
#include "core/engine.h"
#include "runtime/spsc_ring.h"

namespace infilter::runtime {

/// What the dispatcher does when a shard's ring is full.
enum class BackpressurePolicy : std::uint8_t {
  kBlock,  ///< wait for the worker to drain (lossless, line-rate coupling)
  kDrop,   ///< shed the flow and count it (bounded latency, lossy)
};

struct RuntimeConfig {
  /// Worker threads / engine shards. Must be >= 1.
  int shards = 4;
  /// Per-shard ring capacity (rounded up to a power of two).
  std::size_t queue_depth = 4096;
  /// Worker-side dequeue batch: how many flows a worker claims per ring
  /// pop. Amortizes the release/acquire pair over the batch.
  std::size_t max_batch = 256;
  BackpressurePolicy backpressure = BackpressurePolicy::kBlock;
  /// Per-shard engine template. `engine.registry` is ignored: every shard
  /// gets a private registry so snapshots never race engine teardown, and
  /// snapshot() merges them. All shards share `engine.seed` -- with
  /// per-flow NNS randomness, equal seeds are what make shard placement
  /// invisible to verdicts.
  core::EngineConfig engine;
  /// Runtime-level value metrics (dispatch, drop, batch counters and
  /// histograms) land here; null = a runtime-private registry. Pull gauges
  /// that call back into the runtime (shard count, queue occupancy) always
  /// stay runtime-private -- obs::Registry has no unregistration, so an
  /// external registry that outlives the runtime must never hold a
  /// callback into it. snapshot() merges both views either way.
  obs::Registry* registry = nullptr;
};

/// Dispatcher/worker accounting, all monotone over the runtime's life.
struct RuntimeStats {
  std::uint64_t submitted = 0;           ///< flows offered to submit*()
  std::uint64_t dispatched = 0;          ///< flows accepted into a ring
  std::uint64_t dropped = 0;             ///< flows shed under kDrop
  std::uint64_t backpressure_waits = 0;  ///< full-ring waits under kBlock
  std::uint64_t processed = 0;           ///< flows through a shard engine
  std::uint64_t batches = 0;             ///< worker dequeue batches
};

/// One unit of work: the arguments of InFilterEngine::process().
struct FlowItem {
  netflow::V5Record record;
  core::IngressId ingress = 0;
  util::TimeMs now = 0;
  /// Opaque caller payload carried through to the VerdictHook (the
  /// testbed stores a stream index here to join verdicts with ground
  /// truth).
  std::uint64_t tag = 0;
};

class ShardedRuntime {
 public:
  /// Called on the owning worker's thread after each flow is processed;
  /// used by the testbed to score verdicts against ground truth. The
  /// callable must be thread-safe (shards invoke it concurrently).
  using VerdictHook =
      std::function<void(const FlowItem& item, const core::Verdict& verdict)>;

  /// Spawns the workers. `sink` (optional, not owned) receives every
  /// shard's alerts, serialized and renumbered into one dense id sequence.
  explicit ShardedRuntime(RuntimeConfig config, alert::AlertSink* sink = nullptr,
                          VerdictHook hook = nullptr);
  /// Drains and joins (shutdown()).
  ~ShardedRuntime();

  ShardedRuntime(const ShardedRuntime&) = delete;
  ShardedRuntime& operator=(const ShardedRuntime&) = delete;

  // -- Training phase (fans out to every shard engine) --

  /// Preloads an EIA entry into every shard's table.
  void add_expected(core::IngressId ingress, const net::Prefix& prefix);
  /// Installs one trained cluster set, shared (immutable) by all shards.
  void set_clusters(std::shared_ptr<const core::TrainedClusters> clusters);
  /// Trains once and shares the result across shards.
  void train(std::span<const netflow::V5Record> normal_flows);

  // -- Normal processing phase --

  /// The shard a flow lands on: a SplitMix64 hash of (ingress, source
  /// /24), the EIA auto-learning key, reduced mod `shards`.
  [[nodiscard]] static std::size_t shard_of(core::IngressId ingress,
                                            net::IPv4Address source,
                                            std::size_t shards);

  /// Enqueues one flow. Returns false only when the backpressure policy is
  /// kDrop and the target ring stayed full.
  bool submit(const netflow::V5Record& record, core::IngressId ingress,
              util::TimeMs now, std::uint64_t tag = 0);
  /// Enqueues a batch, amortizing the per-ring synchronization: items are
  /// bucketed per shard, then each bucket is pushed with one batched ring
  /// operation. Returns how many flows were accepted (all, under kBlock).
  std::size_t submit_batch(std::span<const FlowItem> items);

  /// Blocks until every dispatched flow has been processed. The dispatcher
  /// must not submit concurrently (single-producer contract).
  void flush();
  /// flush(), then stops and joins the workers. Idempotent; further
  /// submits are rejected (counted as dropped).
  void shutdown();

  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  [[nodiscard]] RuntimeStats stats() const;
  /// Direct access to a shard's engine, for tests and post-run inspection.
  /// Do not call while workers are running (engines are not locked).
  [[nodiscard]] const core::InFilterEngine& shard_engine(std::size_t shard) const;

  /// One registry view: the runtime's own metrics merged with the shard
  /// engines' registries (obs::merge_snapshots). A single-dispatcher
  /// operation, like submit*. The runtime's own metrics (atomic
  /// counters/histograms, ring occupancy) are always included; a shard
  /// engine's registry -- whose pull gauges read plain engine state the
  /// worker mutates -- is merged in only while that shard is quiescent
  /// (every dispatched flow processed). Call flush() first for a complete,
  /// exact view; a mid-stream snapshot silently omits busy shards.
  [[nodiscard]] obs::RegistrySnapshot snapshot() const;

 private:
  struct Shard {
    std::unique_ptr<SpscRing<FlowItem>> ring;
    std::unique_ptr<core::InFilterEngine> engine;
    std::thread worker;

    /// Dispatcher-side count of flows pushed into `ring` (only the
    /// dispatcher writes it; flush() compares against `processed`).
    std::atomic<std::uint64_t> enqueued{0};
    /// Worker-side count of flows fully processed.
    std::atomic<std::uint64_t> processed{0};

    // Park/wake handshake (see worker_main).
    std::mutex wake_mutex;
    std::condition_variable wake_cv;
    std::atomic<bool> parked{false};
  };

  void worker_main(Shard& shard);
  bool push_with_backpressure(Shard& shard, const FlowItem& item);
  std::size_t push_batch_with_backpressure(Shard& shard,
                                           std::span<const FlowItem> items);
  void wake(Shard& shard);

  RuntimeConfig config_;
  alert::SerializingSink sink_;
  VerdictHook hook_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<bool> stopping_{false};
  bool stopped_ = false;

  /// Always holds the `this`-capturing pull gauges (see
  /// RuntimeConfig::registry); also the value-metric home when
  /// config.registry == null.
  std::unique_ptr<obs::Registry> owned_registry_;
  obs::Registry* registry_;  ///< external or owned_registry_.get(); never null
  obs::Counter* submitted_;
  obs::Counter* dropped_;
  obs::Counter* backpressure_waits_;
  obs::Counter* batches_;
  obs::Histogram* batch_size_;
};

}  // namespace infilter::runtime

// The concurrent sharded detection runtime.
//
// A layer between flow ingestion and the analysis engine: N worker
// threads, each owning a private InFilterEngine (its own EIA table, scan
// buffer, and metrics registry), fed by bounded SPSC rings from P
// producers -- one ring per (producer, shard) pair, merged by the worker.
// Producers hash each flow's source /24 to a fixed shard, so every flow
// from one source -- and every flow sharing that source's EIA
// auto-learning counter -- always reaches the same engine. The paper's
// prototype sits at a POP border; this is the piece that lets the same
// pipeline keep up with carrier-grade export rates, with each ingest
// receiver dispatching its own traffic (no dedicated dispatcher thread).
//
// Sequence tags (the total order everything hangs off):
//   * One shared atomic claim counter. A producer claims a contiguous tag
//     range with a single fetch_add per submit call, so tags are globally
//     unique, strictly monotone per producer, and together form one total
//     order over all flows -- "dispatch order" is the order of the claims.
//   * Each producer release-publishes a watermark (`published`) once every
//     flow of a claimed range is visible in its rings. Any flow a producer
//     has not yet pushed carries a tag above its published watermark
//     (ranges are claimed after the previous publish), which is the
//     invariant every merge below leans on.
//   * A worker k-way merges its P rings in tag order. It may process up
//     to `bound` = min over producers of (ring non-empty ? unbounded :
//     that producer's published watermark, acquired *before* the
//     emptiness check) -- past `bound` a still-silent producer could yet
//     contribute an earlier flow. Within a ring tags ascend, so the merge
//     emits the shard's flows in exactly the order a single dispatcher
//     would have.
//
// Semantics relative to one serial engine processing the flows in tag
// order (with one producer, that is submission order; with several, the
// realized claim interleaving -- tests/test_runtime.cpp replays the
// realized order through a serial engine and pins bit-identity):
//   * EIA: exact. The EIA check and Section 5.2 auto-learning key on
//     (ingress, source /24) -- a refinement of the shard hash -- and the
//     per-shard merge preserves tag order, so a shard engine sees the
//     same state-relevant history a serial engine would.
//   * NNS: exact. Trained clusters are shared immutable state and the
//     probe RNG is derived per flow (core/engine.h), not from a stream.
//   * Scan analysis: exact. The suspect buffer keys on *destination*
//     (hosts-per-port / ports-per-host), which source-sharding would
//     split. Instead, shard engines run only the EIA stage
//     (pre_process_batch); flows that fail it are forwarded -- tagged
//     with their dispatch sequence number -- over per-shard SPSC rings to
//     one scan-stage thread, which reorders them (a min-heap reorder
//     window bounded by per-shard watermarks) back into tag order and
//     completes them (scan -> NNS -> alert) on a single shared engine.
//     Verdicts, alert streams, and scan stats are bit-identical to the
//     serial engine at every shard count and every producer count --
//     tests/test_runtime.cpp pins shards {1,2,4,8} x producers {1,2,4}.
//     A shard's watermark is the largest tag it has fully pre-processed
//     through (the merge `bound`), which the per-producer published
//     watermarks keep advancing even while some producers are idle, so
//     the reorder window never stalls longer than a ~1 ms park cycle.
//
// Threading contract: each producer index is owned by one thread at a
// time (the SPSC rings assume one pusher per ring); different producer
// indices submit fully concurrently. flush(), snapshot(), shutdown(), and
// the training-phase calls take the submit gate exclusively: they are
// safe to call while producers are live -- submits briefly block, the
// gate-holder advances every producer's published watermark (no claims
// can be in flight), waits for quiescence, and releases. The legacy
// single-argument submit*/flush/snapshot API is exactly the old
// single-dispatcher usage: producer 0, no concurrency to guard. Alerts
// funnel through one alert::SerializingSink, so any AlertSink works
// unmodified; with the scan stage active only the scan engine emits
// (legal flows never alert). Workers spin briefly when idle, then park on
// a per-shard condition variable; a producer wakes a parked worker only
// when it pushes into that worker's rings. The scan thread parks the same
// way and is woken by workers forwarding suspects.
//
// CPU placement: when RuntimeConfig::cpu_set is non-empty, each worker
// pins itself to cpu_set[(cpu_slot_offset + shard index) % size] and the
// scan thread takes the next slot (runtime/affinity.h). Failures are
// counted (infilter_runtime_affinity_failures_total) and ignored --
// placement is a hint, and on a 1-CPU host the whole feature degrades to
// a no-op.
//
// Backpressure: when a shard ring is full the producer either blocks
// (kBlock: waits for the worker to drain, counting the waits) or sheds the
// flow (kDrop: counts it and returns false). Both counters are runtime
// metrics, exported alongside the merged per-shard engine metrics.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <thread>
#include <vector>

#include "alert/idmef.h"
#include "core/engine.h"
#include "obs/trace.h"
#include "runtime/spsc_ring.h"

namespace infilter::runtime {

/// What a producer does when a shard's ring is full.
enum class BackpressurePolicy : std::uint8_t {
  kBlock,  ///< wait for the worker to drain (lossless, line-rate coupling)
  kDrop,   ///< shed the flow and count it (bounded latency, lossy)
};

struct RuntimeConfig {
  /// Worker threads / engine shards. Must be >= 1.
  int shards = 4;
  /// Producer slots. Each slot owns one SPSC ring per shard plus a
  /// published sequence watermark; each slot must be driven by at most one
  /// thread at a time. The live-ingest pipeline maps receiver thread i to
  /// producer i; the legacy submit*/submit_batch(span) API is producer 0.
  int producers = 1;
  /// Per-(producer, shard) ring capacity (rounded up to a power of two).
  std::size_t queue_depth = 4096;
  /// Worker-side dequeue batch: how many flows a worker claims per merge
  /// pass. Amortizes the release/acquire pairs over the batch.
  std::size_t max_batch = 256;
  BackpressurePolicy backpressure = BackpressurePolicy::kBlock;
  /// CPU placement (runtime/affinity.h): empty = unpinned. Worker k pins
  /// to cpu_set[(cpu_slot_offset + k) % size], the scan thread to the slot
  /// after the workers. cpu_slot_offset lets app/node interleave the
  /// ingest receivers and the runtime threads over one list.
  std::vector<int> cpu_set;
  std::size_t cpu_slot_offset = 0;
  /// Per-shard engine template. `engine.registry` is ignored: every shard
  /// gets a private registry so snapshots never race engine teardown, and
  /// snapshot() merges them. All shards share `engine.seed` -- with
  /// per-flow NNS randomness, equal seeds are what make shard placement
  /// invisible to verdicts.
  core::EngineConfig engine;
  /// Runtime-level value metrics (dispatch, drop, batch counters and
  /// histograms) land here; null = a runtime-private registry. Pull gauges
  /// that call back into the runtime (shard count, queue occupancy) always
  /// stay runtime-private -- obs::Registry has no unregistration, so an
  /// external registry that outlives the runtime must never hold a
  /// callback into it. snapshot() merges both views either way.
  obs::Registry* registry = nullptr;
  /// Flight recorder (obs/trace.h), not owned; null = no tracing, no
  /// liveness lanes. When set, the producer/worker/scan threads register
  /// lanes, publish heartbeats, and -- while tracer->enabled() -- emit the
  /// sampled record-journey spans and queue-wait histogram observations.
  /// Must outlive the runtime (lanes are retired, not destroyed).
  obs::Tracer* tracer = nullptr;
};

/// Producer/worker accounting, all monotone over the runtime's life.
struct RuntimeStats {
  std::uint64_t submitted = 0;           ///< flows offered to submit*()
  std::uint64_t dispatched = 0;          ///< flows accepted into a ring
  std::uint64_t dropped = 0;             ///< flows shed under kDrop
  std::uint64_t backpressure_waits = 0;  ///< full-ring waits under kBlock
  std::uint64_t processed = 0;           ///< flows through a shard engine
  std::uint64_t batches = 0;             ///< worker merge batches
  std::uint64_t suspects_forwarded = 0;  ///< EIA misses handed to the scan stage
  std::uint64_t suspects_completed = 0;  ///< suspects finished by the scan stage
};

/// One unit of work: the arguments of InFilterEngine::process().
struct FlowItem {
  netflow::V5Record record;
  core::IngressId ingress = 0;
  util::TimeMs now = 0;
  /// Opaque caller payload carried through to the VerdictHook (the
  /// testbed stores a stream index here to join verdicts with ground
  /// truth).
  std::uint64_t tag = 0;
  /// Dispatch sequence number, claimed from the runtime's shared counter
  /// at submit time (any caller-set value is overwritten). Globally
  /// unique and monotone per producer; the per-shard merge and the scan
  /// stage sort on it to restore one total dispatch order.
  std::uint64_t seq = 0;
  /// Trace journey (obs/trace.h): monotonic stamp of this record's socket
  /// receive. 0 = not on the sampled journey (the common case); set by the
  /// ingest receiver, or at submit time for direct submits.
  std::uint64_t recv_ns = 0;
  /// The sampled record's previous hop stamp -- each pipeline stage emits
  /// a span [hop_ns, now) and overwrites hop_ns with now, so a record's
  /// spans tile [recv_ns, verdict) exactly. Meaningless when recv_ns == 0.
  std::uint64_t hop_ns = 0;
};

class ShardedRuntime {
 public:
  /// Called once per flow when its verdict is final: on the owning
  /// worker's thread for legal flows, on the scan-stage thread for
  /// suspect flows (on the worker for those too when the scan stage is
  /// inactive). `item.seq` carries the realized dispatch sequence, which
  /// is how the equivalence tests reconstruct the total order a
  /// multi-producer run committed to. The callable must be thread-safe
  /// (threads invoke it concurrently).
  using VerdictHook =
      std::function<void(const FlowItem& item, const core::Verdict& verdict)>;

  /// Spawns the workers. `sink` (optional, not owned) receives every
  /// shard's alerts, serialized and renumbered into one dense id sequence.
  explicit ShardedRuntime(RuntimeConfig config, alert::AlertSink* sink = nullptr,
                          VerdictHook hook = nullptr);
  /// Drains and joins (shutdown()).
  ~ShardedRuntime();

  ShardedRuntime(const ShardedRuntime&) = delete;
  ShardedRuntime& operator=(const ShardedRuntime&) = delete;

  // -- Training phase (fans out to every shard engine) --
  // Gate-exclusive like flush(): safe while producers are live, though the
  // intended use is before traffic starts.

  /// Preloads an EIA entry into every shard's table.
  void add_expected(core::IngressId ingress, const net::Prefix& prefix);
  /// Installs a previously learned hop-count table into every shard
  /// engine (each keeps the copy covering its own key subset).
  void install_hopcount(const hopcount::HopCountTable& table);
  /// Installs one trained cluster set, shared (immutable) by all shards.
  void set_clusters(std::shared_ptr<const core::TrainedClusters> clusters);
  /// Trains once and shares the result across shards.
  void train(std::span<const netflow::V5Record> normal_flows);

  // -- Normal processing phase --

  /// The shard a flow lands on: a SplitMix64 hash of the source /24,
  /// reduced mod `shards`. The /24 alone (not the ingress) so that every
  /// (ingress, /24)-keyed learning structure for one /24 -- EIA counters
  /// and hop-count ranges at every ingress -- lives in a single shard.
  [[nodiscard]] static std::size_t shard_of(net::IPv4Address source,
                                            std::size_t shards);

  /// Enqueues one flow via producer 0. Returns false only when the
  /// backpressure policy is kDrop and the target ring stayed full.
  bool submit(const netflow::V5Record& record, core::IngressId ingress,
              util::TimeMs now, std::uint64_t tag = 0);
  /// Enqueues a batch through one producer slot, amortizing the tag claim
  /// and the per-ring synchronization: one fetch_add claims the whole tag
  /// range, items are bucketed per shard, and each bucket is pushed with
  /// one batched ring operation. Returns how many flows were accepted
  /// (all, under kBlock). `producer` must be < producer_count() and
  /// driven by one thread at a time.
  std::size_t submit_batch(std::span<const FlowItem> items, int producer = 0);

  /// Tells the merge that `producer` has no submission in flight: its
  /// published watermark advances to the claim counter, so an idle
  /// producer never holds back the other producers' flows (or the scan
  /// stage's reorder window). Ingest receivers call this from their poll
  /// loop; call it from the owning thread only, between submits.
  void producer_idle(int producer);

  /// Blocks until every dispatched flow has been processed, including the
  /// scan stage's reorder window. Takes the submit gate exclusively, so
  /// it is safe while producer threads are live: their submits stall for
  /// the duration and no flow is lost.
  void flush();
  /// flush(), then stops and joins the workers. Idempotent; further
  /// submits are rejected (counted as dropped).
  void shutdown();

  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  [[nodiscard]] std::size_t producer_count() const { return producers_.size(); }
  [[nodiscard]] RuntimeStats stats() const;
  /// High-water occupancy per shard (flows queued across that shard's
  /// producer rings, sampled at push time). The benches record min/max
  /// over shards to make dispatch skew -- e.g. under a Zipf source
  /// distribution -- a first-class artifact.
  [[nodiscard]] std::vector<std::size_t> shard_queue_peaks() const;
  /// Direct access to a shard's engine, for tests and post-run inspection.
  /// Do not call while workers are running (engines are not locked).
  [[nodiscard]] const core::InFilterEngine& shard_engine(std::size_t shard) const;
  /// The shared engine completing every suspect flow (scan -> NNS ->
  /// alert), or null when the stage is inactive (kBasic mode, or scan
  /// analysis disabled -- per-shard engines then run the whole pipeline,
  /// which is already serial-exact). Same access rules as shard_engine():
  /// inspect only after flush().
  [[nodiscard]] const core::InFilterEngine* scan_stage_engine() const {
    return scan_engine_.get();
  }

  /// One registry view: the runtime's own metrics merged with the shard
  /// engines' -- and, when active, the scan-stage engine's -- registries
  /// (obs::merge_snapshots). Takes the submit gate exclusively, so it is
  /// safe while producers are live (their submits stall for the
  /// duration). The runtime's own metrics (atomic counters/histograms,
  /// ring occupancy) are always included; an engine registry -- whose
  /// pull gauges read plain engine state its thread mutates -- is merged
  /// in only while that engine is quiescent (every dispatched flow, and
  /// every forwarded suspect, processed). Call flush() first for a
  /// complete, exact view; a mid-stream snapshot silently omits busy
  /// engines. With the scan stage active, the split engine halves divide
  /// the pipeline counters so the merged totals still equal a serial
  /// engine's (core/engine.h).
  [[nodiscard]] obs::RegistrySnapshot snapshot() const;

  // -- Lifecycle operations (src/lifecycle) --

  /// Resizes the shard pool in place, migrating every engine's learned
  /// state (EIA membership incl. pending learn counters and age metadata,
  /// hop-count ranges) to the new shard map under the same source-/24
  /// hash. Takes the submit gate exclusively: producers stall for the
  /// duration, the pool quiesces via the two-phase flush, workers and the
  /// scan thread are joined, state is harvested and reinstalled
  /// (lifecycle/migrate.h), and fresh threads resume. Verdict and alert
  /// streams stay bit-consistent with a serial replay across the
  /// boundary: the migration installs exactly the state a serial engine
  /// would hold after the flows processed so far. Returns false after
  /// shutdown() or for new_shards < 1; a same-size call is a no-op
  /// returning true. The pause is recorded in
  /// infilter_lifecycle_resize_pause_us.
  bool resize(int new_shards);

  /// Fans one exact-EIA aging sweep (core::EiaTable::age_sweep) out to
  /// every shard engine after a full flush, against flow-carried virtual
  /// time `now`. Verdict-neutral by construction -- the sweep applies the
  /// same lazy idle predicate every later lookup would -- so this only
  /// reclaims memory and updates the lifecycle counters eagerly. Returns
  /// the number of entries expired across all shards.
  std::size_t age_sweep(util::TimeMs now);

 private:
  /// A suspect flow in flight from a shard's EIA stage to the scan stage.
  struct SeqSuspect {
    core::SuspectFlow suspect;
    std::uint64_t seq = 0;
    std::uint64_t tag = 0;
    /// Trace journey carry-through (see FlowItem::recv_ns / hop_ns).
    std::uint64_t recv_ns = 0;
    std::uint64_t hop_ns = 0;
  };

  /// One producer slot: the publish watermark plus per-call scratch. Each
  /// slot is driven by at most one thread at a time (see RuntimeConfig).
  struct ProducerSlot {
    /// Tags <= published are all visible in this producer's rings (or
    /// were shed); release-stored after every push of a claimed range.
    /// Everything this producer has not pushed yet carries a larger tag.
    alignas(kCacheLine) std::atomic<std::uint64_t> published{0};
    /// Flows this producer pushed into rings (metrics).
    std::atomic<std::uint64_t> accepted{0};
    /// Per-shard bucketing scratch for submit_batch; capacity kept across
    /// calls so the hot path stays allocation-free at steady state.
    std::vector<std::vector<FlowItem>> buckets;
    /// This producer's trace lane ("dispatch" for slot 0, "dispatch-<p>"
    /// after), written only by the slot's owning thread. Null without a
    /// tracer.
    obs::ThreadLane* lane = nullptr;
  };

  struct Shard {
    /// One ring per producer slot; the worker merges them in tag order.
    std::vector<std::unique_ptr<SpscRing<FlowItem>>> rings;
    std::unique_ptr<core::InFilterEngine> engine;
    /// Worker -> scan stage, only when the scan stage is active.
    std::unique_ptr<SpscRing<SeqSuspect>> suspect_ring;
    std::thread worker;
    /// Shard index, for trace-lane naming and cpu-slot assignment.
    int index = 0;

    /// Flows pushed into this shard's rings, summed over producers
    /// (flush() compares against `processed`).
    std::atomic<std::uint64_t> enqueued{0};
    /// Worker-side count of flows through the shard engine.
    std::atomic<std::uint64_t> processed{0};
    /// High-water total ring occupancy, sampled by producers at push time.
    std::atomic<std::uint64_t> peak_queued{0};
    /// Scan-stage watermark: every flow dispatched to this shard with
    /// seq <= watermark has been pre-processed and its suspect (if any)
    /// pushed into `suspect_ring` *before* the release store the scan
    /// thread acquires. Advanced by the worker to each merge pass's safe
    /// bound, which the per-producer published watermarks keep moving
    /// even while the shard is idle.
    std::atomic<std::uint64_t> watermark{0};

    // Park/wake handshake (see worker_main).
    std::mutex wake_mutex;
    std::condition_variable wake_cv;
    std::atomic<bool> parked{false};

    [[nodiscard]] std::size_t queued() const {
      std::size_t total = 0;
      for (const auto& ring : rings) total += ring->size();
      return total;
    }
  };

  void worker_main(Shard& shard);
  void scan_main();
  /// One merge pass: fills `batch` with up to max_batch flows in tag
  /// order and returns {count, watermark}, where every flow of this shard
  /// with seq <= watermark is in the batch or already processed.
  struct MergeResult {
    std::size_t count = 0;
    std::uint64_t watermark = 0;
  };
  MergeResult merge_batch(Shard& shard, FlowItem* batch, std::size_t max);
  bool push_with_backpressure(Shard& shard, SpscRing<FlowItem>& ring,
                              const FlowItem& item);
  std::size_t push_batch_with_backpressure(Shard& shard, SpscRing<FlowItem>& ring,
                                           std::span<const FlowItem> items);
  void note_occupancy(Shard& shard);
  void flush_locked();
  /// Stops and joins the workers and (if active) the scan thread. Caller
  /// holds the gate and has flushed; shards_ stay intact for harvesting.
  void join_threads_locked();
  /// Spawns one worker per shard plus the scan thread (if active), after
  /// resetting the stop flags. Mirrors the constructor's thread start.
  void start_threads_locked();
  void wake(Shard& shard);
  void wake_scan();

  RuntimeConfig config_;
  alert::SerializingSink sink_;
  /// Whether the shard engines were built with &sink_ (the constructor's
  /// `sink` parameter was non-null); resize() rebuilds them identically.
  bool engine_sink_ = false;
  VerdictHook hook_;
  obs::Tracer* tracer_ = nullptr;  ///< config_.tracer; may be null
  std::vector<std::unique_ptr<ProducerSlot>> producers_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> stopped_{false};

  /// The submit gate: producers hold it shared for the duration of one
  /// submit call; flush/snapshot/shutdown and the training calls hold it
  /// exclusively, which (a) guarantees no tag claim is in flight, so the
  /// gate-holder may advance every published watermark to the claim
  /// counter, and (b) gives the quiescence checks a stable frontier.
  mutable std::shared_mutex submit_gate_;

  // -- Shared scan stage (active iff kEnhanced && use_scan_analysis) --

  /// The one engine whose scan buffer sees every suspect, in dispatch
  /// order. Its EIA table is unused (pre-EIA context rides along in
  /// SuspectFlow); null when the stage is inactive.
  std::unique_ptr<core::InFilterEngine> scan_engine_;
  std::thread scan_thread_;
  /// The shared claim counter: the last tag handed out. Producers claim
  /// ranges with fetch_add (one RMW per submit call).
  std::atomic<std::uint64_t> next_seq_{0};
  std::atomic<std::uint64_t> suspects_forwarded_{0};
  std::atomic<std::uint64_t> suspects_completed_{0};
  /// CPU placement accounting (affinity is a hint; failures are counted,
  /// never fatal).
  std::atomic<std::uint64_t> pinned_threads_{0};
  std::atomic<std::uint64_t> affinity_failures_{0};
  std::atomic<bool> scan_stopping_{false};
  std::mutex scan_wake_mutex_;
  std::condition_variable scan_wake_cv_;
  std::atomic<bool> scan_parked_{false};

  /// Always holds the `this`-capturing pull gauges (see
  /// RuntimeConfig::registry); also the value-metric home when
  /// config.registry == null.
  std::unique_ptr<obs::Registry> owned_registry_;
  obs::Registry* registry_;  ///< external or owned_registry_.get(); never null
  obs::Counter* submitted_;
  obs::Counter* dropped_;
  obs::Counter* backpressure_waits_;
  obs::Counter* batches_;
  obs::Histogram* batch_size_;
  obs::Counter* resizes_total_;
  obs::Counter* migrated_entries_;
  obs::Histogram* resize_pause_us_;

  /// History retired shard engines leave behind at resize: their registry
  /// snapshots filtered to counters and histograms (gauges describe state
  /// that now lives in the new engines and would double-count), merged
  /// into snapshot(); and their dispatch/process totals, folded into
  /// stats() so the monotone contract survives the pool swap.
  std::vector<obs::RegistrySnapshot> retired_;
  std::atomic<std::uint64_t> retired_dispatched_{0};
  std::atomic<std::uint64_t> retired_processed_{0};
};

}  // namespace infilter::runtime

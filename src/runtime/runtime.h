// The concurrent sharded detection runtime.
//
// A new layer between flow ingestion and the analysis engine: N worker
// threads, each owning a private InFilterEngine (its own EIA table, scan
// buffer, and metrics registry), fed by bounded SPSC rings from a single
// dispatcher. The dispatcher hashes each flow's (ingress, source /24) to
// a fixed shard, so every flow from one source -- and every flow sharing
// that source's EIA auto-learning counter -- always reaches the same
// engine. The paper's prototype sits at a POP border; this is the piece
// that lets the same pipeline keep up with carrier-grade export rates.
//
// Semantics relative to one serial engine processing the same stream:
//   * EIA: exact. The EIA check and Section 5.2 auto-learning key on
//     (ingress, source /24) -- precisely the shard hash -- and each ring
//     preserves dispatch order, so a shard engine sees the same
//     state-relevant history a serial engine would.
//   * NNS: exact. Trained clusters are shared immutable state and the
//     probe RNG is derived per flow (core/engine.h), not from a stream.
//   * Scan analysis: exact. The suspect buffer keys on *destination*
//     (hosts-per-port / ports-per-host), which source-sharding would
//     split. Instead, shard engines run only the EIA stage
//     (pre_process_batch); flows that fail it are forwarded -- tagged
//     with their global dispatch sequence number -- over per-shard SPSC
//     rings to one scan-stage thread, which reorders them (a min-heap
//     reorder window bounded by per-shard watermarks) back into dispatch
//     order and completes them (scan -> NNS -> alert) on a single shared
//     engine. Verdicts, alert streams, and scan stats are bit-identical
//     to the serial engine at every shard count --
//     tests/test_runtime.cpp pins 1/2/4/8 shards against serial. The
//     cost is bounded extra latency for suspect flows: a suspect is
//     released once every shard's watermark passes its sequence number,
//     and an idle shard advances its watermark to the dispatcher's
//     published sequence within one ~1 ms park cycle, so the reorder
//     window never stalls longer than that.
//
// Threading contract: submit*/flush/shutdown/snapshot and the
// training-phase calls are single-dispatcher operations -- call them from
// one thread at a time (the SPSC rings assume one producer, and snapshot
// relies on no submit racing its per-shard quiescence checks). Alerts
// funnel through one alert::SerializingSink, so any AlertSink works
// unmodified; with the scan stage active only the scan engine emits
// (legal flows never alert). Workers spin briefly when idle, then park on
// a per-shard futex-style condition variable; the dispatcher wakes a
// parked worker only when it pushes into that worker's ring. The scan
// thread parks the same way and is woken by workers forwarding suspects.
//
// Backpressure: when a shard's ring is full the dispatcher either blocks
// (kBlock: waits for the worker to drain, counting the waits) or sheds the
// flow (kDrop: counts it and returns false). Both counters are runtime
// metrics, exported alongside the merged per-shard engine metrics.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "alert/idmef.h"
#include "core/engine.h"
#include "obs/trace.h"
#include "runtime/spsc_ring.h"

namespace infilter::runtime {

/// What the dispatcher does when a shard's ring is full.
enum class BackpressurePolicy : std::uint8_t {
  kBlock,  ///< wait for the worker to drain (lossless, line-rate coupling)
  kDrop,   ///< shed the flow and count it (bounded latency, lossy)
};

struct RuntimeConfig {
  /// Worker threads / engine shards. Must be >= 1.
  int shards = 4;
  /// Per-shard ring capacity (rounded up to a power of two).
  std::size_t queue_depth = 4096;
  /// Worker-side dequeue batch: how many flows a worker claims per ring
  /// pop. Amortizes the release/acquire pair over the batch.
  std::size_t max_batch = 256;
  BackpressurePolicy backpressure = BackpressurePolicy::kBlock;
  /// Per-shard engine template. `engine.registry` is ignored: every shard
  /// gets a private registry so snapshots never race engine teardown, and
  /// snapshot() merges them. All shards share `engine.seed` -- with
  /// per-flow NNS randomness, equal seeds are what make shard placement
  /// invisible to verdicts.
  core::EngineConfig engine;
  /// Runtime-level value metrics (dispatch, drop, batch counters and
  /// histograms) land here; null = a runtime-private registry. Pull gauges
  /// that call back into the runtime (shard count, queue occupancy) always
  /// stay runtime-private -- obs::Registry has no unregistration, so an
  /// external registry that outlives the runtime must never hold a
  /// callback into it. snapshot() merges both views either way.
  obs::Registry* registry = nullptr;
  /// Flight recorder (obs/trace.h), not owned; null = no tracing, no
  /// liveness lanes. When set, the dispatcher/worker/scan threads register
  /// lanes, publish heartbeats, and -- while tracer->enabled() -- emit the
  /// sampled record-journey spans and queue-wait histogram observations.
  /// Must outlive the runtime (lanes are retired, not destroyed).
  obs::Tracer* tracer = nullptr;
};

/// Dispatcher/worker accounting, all monotone over the runtime's life.
struct RuntimeStats {
  std::uint64_t submitted = 0;           ///< flows offered to submit*()
  std::uint64_t dispatched = 0;          ///< flows accepted into a ring
  std::uint64_t dropped = 0;             ///< flows shed under kDrop
  std::uint64_t backpressure_waits = 0;  ///< full-ring waits under kBlock
  std::uint64_t processed = 0;           ///< flows through a shard engine
  std::uint64_t batches = 0;             ///< worker dequeue batches
  std::uint64_t suspects_forwarded = 0;  ///< EIA misses handed to the scan stage
  std::uint64_t suspects_completed = 0;  ///< suspects finished by the scan stage
};

/// One unit of work: the arguments of InFilterEngine::process().
struct FlowItem {
  netflow::V5Record record;
  core::IngressId ingress = 0;
  util::TimeMs now = 0;
  /// Opaque caller payload carried through to the VerdictHook (the
  /// testbed stores a stream index here to join verdicts with ground
  /// truth).
  std::uint64_t tag = 0;
  /// Global dispatch sequence number. Assigned by the dispatcher (any
  /// caller-set value is overwritten); the scan stage sorts on it to
  /// restore dispatch order across shards.
  std::uint64_t seq = 0;
  /// Trace journey (obs/trace.h): monotonic stamp of this record's socket
  /// receive. 0 = not on the sampled journey (the common case); set by the
  /// ingest decode stage, or by the dispatcher for direct submits.
  std::uint64_t recv_ns = 0;
  /// The sampled record's previous hop stamp -- each pipeline stage emits
  /// a span [hop_ns, now) and overwrites hop_ns with now, so a record's
  /// spans tile [recv_ns, verdict) exactly. Meaningless when recv_ns == 0.
  std::uint64_t hop_ns = 0;
};

class ShardedRuntime {
 public:
  /// Called once per flow when its verdict is final: on the owning
  /// worker's thread for legal flows, on the scan-stage thread for
  /// suspect flows (on the worker for those too when the scan stage is
  /// inactive). Used by the testbed to score verdicts against ground
  /// truth. The callable must be thread-safe (threads invoke it
  /// concurrently).
  using VerdictHook =
      std::function<void(const FlowItem& item, const core::Verdict& verdict)>;

  /// Spawns the workers. `sink` (optional, not owned) receives every
  /// shard's alerts, serialized and renumbered into one dense id sequence.
  explicit ShardedRuntime(RuntimeConfig config, alert::AlertSink* sink = nullptr,
                          VerdictHook hook = nullptr);
  /// Drains and joins (shutdown()).
  ~ShardedRuntime();

  ShardedRuntime(const ShardedRuntime&) = delete;
  ShardedRuntime& operator=(const ShardedRuntime&) = delete;

  // -- Training phase (fans out to every shard engine) --

  /// Preloads an EIA entry into every shard's table.
  void add_expected(core::IngressId ingress, const net::Prefix& prefix);
  /// Installs a previously learned hop-count table into every shard
  /// engine (each keeps the copy covering its own key subset).
  void install_hopcount(const hopcount::HopCountTable& table);
  /// Installs one trained cluster set, shared (immutable) by all shards.
  void set_clusters(std::shared_ptr<const core::TrainedClusters> clusters);
  /// Trains once and shares the result across shards.
  void train(std::span<const netflow::V5Record> normal_flows);

  // -- Normal processing phase --

  /// The shard a flow lands on: a SplitMix64 hash of the source /24,
  /// reduced mod `shards`. The /24 alone (not the ingress) so that every
  /// (ingress, /24)-keyed learning structure for one /24 -- EIA counters
  /// and hop-count ranges at every ingress -- lives in a single shard.
  [[nodiscard]] static std::size_t shard_of(net::IPv4Address source,
                                            std::size_t shards);

  /// Enqueues one flow. Returns false only when the backpressure policy is
  /// kDrop and the target ring stayed full.
  bool submit(const netflow::V5Record& record, core::IngressId ingress,
              util::TimeMs now, std::uint64_t tag = 0);
  /// Enqueues a batch, amortizing the per-ring synchronization: items are
  /// bucketed per shard, then each bucket is pushed with one batched ring
  /// operation. Returns how many flows were accepted (all, under kBlock).
  std::size_t submit_batch(std::span<const FlowItem> items);

  /// Blocks until every dispatched flow has been processed. The dispatcher
  /// must not submit concurrently (single-producer contract).
  void flush();
  /// flush(), then stops and joins the workers. Idempotent; further
  /// submits are rejected (counted as dropped).
  void shutdown();

  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  [[nodiscard]] RuntimeStats stats() const;
  /// Direct access to a shard's engine, for tests and post-run inspection.
  /// Do not call while workers are running (engines are not locked).
  [[nodiscard]] const core::InFilterEngine& shard_engine(std::size_t shard) const;
  /// The shared engine completing every suspect flow (scan -> NNS ->
  /// alert), or null when the stage is inactive (kBasic mode, or scan
  /// analysis disabled -- per-shard engines then run the whole pipeline,
  /// which is already serial-exact). Same access rules as shard_engine():
  /// inspect only after flush().
  [[nodiscard]] const core::InFilterEngine* scan_stage_engine() const {
    return scan_engine_.get();
  }

  /// One registry view: the runtime's own metrics merged with the shard
  /// engines' -- and, when active, the scan-stage engine's -- registries
  /// (obs::merge_snapshots). A single-dispatcher operation, like submit*.
  /// The runtime's own metrics (atomic counters/histograms, ring
  /// occupancy) are always included; an engine registry -- whose pull
  /// gauges read plain engine state its thread mutates -- is merged in
  /// only while that engine is quiescent (every dispatched flow, and
  /// every forwarded suspect, processed). Call flush() first for a
  /// complete, exact view; a mid-stream snapshot silently omits busy
  /// engines. With the scan stage active, the split engine halves divide
  /// the pipeline counters so the merged totals still equal a serial
  /// engine's (core/engine.h).
  [[nodiscard]] obs::RegistrySnapshot snapshot() const;

 private:
  /// A suspect flow in flight from a shard's EIA stage to the scan stage.
  struct SeqSuspect {
    core::SuspectFlow suspect;
    std::uint64_t seq = 0;
    std::uint64_t tag = 0;
    /// Trace journey carry-through (see FlowItem::recv_ns / hop_ns).
    std::uint64_t recv_ns = 0;
    std::uint64_t hop_ns = 0;
  };

  struct Shard {
    std::unique_ptr<SpscRing<FlowItem>> ring;
    std::unique_ptr<core::InFilterEngine> engine;
    /// Worker -> scan stage, only when the scan stage is active.
    std::unique_ptr<SpscRing<SeqSuspect>> suspect_ring;
    std::thread worker;
    /// Shard index, for trace-lane naming.
    int index = 0;

    /// Dispatcher-side count of flows pushed into `ring` (only the
    /// dispatcher writes it; flush() compares against `processed`).
    std::atomic<std::uint64_t> enqueued{0};
    /// Worker-side count of flows through the shard engine.
    std::atomic<std::uint64_t> processed{0};
    /// Scan-stage watermark: every flow dispatched to this shard with
    /// seq <= watermark has been pre-processed and its suspect (if any)
    /// pushed into `suspect_ring` *before* the release store the scan
    /// thread acquires. Advanced by the worker after each batch, and --
    /// when the ring is drained -- up to the dispatcher's published_seq_,
    /// so an idle shard never stalls the reorder window.
    std::atomic<std::uint64_t> watermark{0};

    // Park/wake handshake (see worker_main).
    std::mutex wake_mutex;
    std::condition_variable wake_cv;
    std::atomic<bool> parked{false};
  };

  void worker_main(Shard& shard);
  void scan_main();
  void advance_watermark_if_drained(Shard& shard);
  bool push_with_backpressure(Shard& shard, const FlowItem& item);
  std::size_t push_batch_with_backpressure(Shard& shard,
                                           std::span<const FlowItem> items);
  void wake(Shard& shard);
  void wake_scan();

  RuntimeConfig config_;
  alert::SerializingSink sink_;
  VerdictHook hook_;
  obs::Tracer* tracer_ = nullptr;  ///< config_.tracer; may be null
  /// The dispatcher's trace lane (submit* runs on the caller's thread,
  /// which the single-dispatcher contract makes one logical thread);
  /// retired in shutdown(). Null when tracer_ is null.
  obs::ThreadLane* dispatch_lane_ = nullptr;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<bool> stopping_{false};
  bool stopped_ = false;

  // -- Shared scan stage (active iff kEnhanced && use_scan_analysis) --

  /// The one engine whose scan buffer sees every suspect, in dispatch
  /// order. Its EIA table is unused (pre-EIA context rides along in
  /// SuspectFlow); null when the stage is inactive.
  std::unique_ptr<core::InFilterEngine> scan_engine_;
  std::thread scan_thread_;
  /// Dispatcher-only: the last sequence number assigned.
  std::uint64_t next_seq_ = 0;
  /// Dispatcher-only scratch for submit_batch's per-shard bucketing;
  /// cleared (capacity kept) per call so the hot path stays allocation-free
  /// at steady state.
  std::vector<std::vector<FlowItem>> dispatch_buckets_;
  /// next_seq_, release-published after every flow of a submit call is in
  /// its ring. A worker that acquires this and then finds its ring empty
  /// has processed every flow <= published_seq_ dispatched to it (later
  /// submissions carry larger sequence numbers), so it may raise its
  /// watermark that far.
  std::atomic<std::uint64_t> published_seq_{0};
  std::atomic<std::uint64_t> suspects_forwarded_{0};
  std::atomic<std::uint64_t> suspects_completed_{0};
  std::atomic<bool> scan_stopping_{false};
  std::mutex scan_wake_mutex_;
  std::condition_variable scan_wake_cv_;
  std::atomic<bool> scan_parked_{false};

  /// Always holds the `this`-capturing pull gauges (see
  /// RuntimeConfig::registry); also the value-metric home when
  /// config.registry == null.
  std::unique_ptr<obs::Registry> owned_registry_;
  obs::Registry* registry_;  ///< external or owned_registry_.get(); never null
  obs::Counter* submitted_;
  obs::Counter* dropped_;
  obs::Counter* backpressure_waits_;
  obs::Counter* batches_;
  obs::Histogram* batch_size_;
};

}  // namespace infilter::runtime

// CPU placement for the pipeline's threads.
//
// Receiver-direct dispatch only pays off when receivers, shard workers,
// and the scan thread stop migrating across cores: each lane then runs
// run-to-completion on its own core with a warm cache, the DPDK per-lcore
// shape. This header is the small policy layer behind `--cpu-set` /
// NodeConfig::affinity: parse a Linux-style cpu list once, then pin each
// thread to a slot of it round-robin.
//
// Pinning is a placement hint, never a correctness requirement. A cpu in
// the set that does not exist on this host (the 1-CPU CI box, a container
// with a restricted mask) makes pin_current_thread() return false; callers
// count the failure in a metric and keep running unpinned. An empty set
// disables placement entirely (the default).

#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace infilter::runtime {

/// Parses a Linux-style cpu list: comma-separated cpu ids and inclusive
/// ranges, e.g. "0-3,8". Returns the expanded, deduplicated, ascending id
/// list, or nullopt (with `error` set when non-null) on malformed input:
/// empty tokens, non-numeric text, reversed ranges, or ids above 4095.
std::optional<std::vector<int>> parse_cpu_set(std::string_view text,
                                              std::string* error = nullptr);

/// Pins the calling thread to cpus[slot % cpus.size()] with
/// pthread_setaffinity_np. An empty set is a successful no-op. Returns
/// false when the kernel refuses (cpu not present / not allowed) or the
/// platform has no thread affinity -- the graceful-failure path callers
/// count and ignore.
bool pin_current_thread(const std::vector<int>& cpus, std::size_t slot);

}  // namespace infilter::runtime

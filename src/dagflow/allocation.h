// Address-block allocation for the testbed (Tables 2 and 3).
//
// The paper's testbed has 10 Dagflow sources, each owning 100 of the 1000
// /11 sub-blocks (Table 3; these also preload the EIA sets). To emulate
// route instability, each source keeps its first (100 - C) blocks and
// donates its last C; the donated blocks are redistributed so that C% of
// every source's traffic carries addresses another Peer AS is expected to
// own (Table 2 shows the C = 2 case). Successive allocations rotate the
// donated blocks among sources, emulating routes that keep drifting.

#pragma once

#include <vector>

#include "net/subblocks.h"

namespace infilter::dagflow {

/// Sub-blocks one Dagflow source draws addresses from under one allocation.
struct SourceAllocation {
  /// The source's own Table 3 range (what the EIA set expects).
  net::SubBlockRange eia_range;
  /// Own blocks actually used (the first 100 - C of eia_range).
  std::vector<net::SubBlock> normal_set;
  /// Foreign blocks used (C blocks donated by other sources).
  std::vector<net::SubBlock> change_set;
};

/// Table 3: the i-th source's EIA range (i in [0, sources)), carving the
/// first `sources * blocks_each` used sub-blocks into equal ranges.
[[nodiscard]] net::SubBlockRange eia_range(int source, int blocks_each = 100);

/// Builds allocation number `allocation_index` for all sources with
/// `change_blocks` donated blocks per source (= the route-change percentage
/// when blocks_each is 100). change_blocks == 0 yields pure Table 3
/// allocations with empty change sets.
[[nodiscard]] std::vector<SourceAllocation> make_allocation(int sources,
                                                            int blocks_each,
                                                            int change_blocks,
                                                            int allocation_index);

}  // namespace infilter::dagflow

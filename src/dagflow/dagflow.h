// Dagflow: the traffic-replay tool of Section 6.1.
//
// Dagflow turns a captured (here: synthesized) traffic trace into NetFlow
// version 5 records, emulating the records a border router would have
// exported -- no routers and no packet replay needed. Its key capability
// is controlled source-address rewriting: a configurable address pool
// replaces each flow's source IP, which provides both the spoofing control
// used by attack instances and the address-block distributions used by
// normal instances ("25% of the source IP addresses in the 192.4/16
// subnet, ..."). Each instance sends its export datagrams to a distinct
// UDP port, which the collector uses to identify the emulated Peer AS/BR.

#pragma once

#include <cstdint>
#include <vector>

#include "dagflow/allocation.h"
#include "hopcount/path_model.h"
#include "net/ipv4.h"
#include "netflow/v5.h"
#include "traffic/trace.h"
#include "util/rng.h"

namespace infilter::dagflow {

/// A weighted mixture of prefix sets to draw source addresses from.
class AddressPool {
 public:
  struct Component {
    std::vector<net::Prefix> prefixes;
    double weight = 1.0;
    /// 0 draws host addresses uniformly over each prefix. A positive value
    /// concentrates draws into that many "active" /24s per prefix with a
    /// quadratic popularity skew -- real traffic sources cluster in
    /// populated subnets rather than filling an allocation uniformly, and
    /// that clustering is what lets the EIA auto-learning rule absorb a
    /// moved prefix (Section 5.2a).
    int active_slash24s = 0;
  };

  AddressPool() = default;
  explicit AddressPool(std::vector<Component> components);

  /// Pool over one allocation's normal + change sets (a normal Dagflow
  /// source; foreign traffic fraction = |change| / total). Draws cluster
  /// into `active_slash24s` popular /24s per block when positive.
  static AddressPool from_allocation(const SourceAllocation& allocation,
                                     int active_slash24s = 0);

  /// Uniform pool over arbitrary sub-blocks (attack instances draw from
  /// the 900 blocks belonging to other Peer ASes).
  static AddressPool from_subblocks(const std::vector<net::SubBlock>& blocks);

  [[nodiscard]] bool empty() const { return components_.empty(); }

  /// Draws one address: component by weight, prefix uniformly within the
  /// component, address uniformly within the prefix.
  [[nodiscard]] net::IPv4Address draw(util::Rng& rng) const;

 private:
  std::vector<Component> components_;
  std::vector<double> cumulative_;
};

struct DagflowConfig {
  /// Destination UDP port for export datagrams; identifies the emulated
  /// Peer AS / BR at the collector.
  std::uint16_t netflow_port = 9000;
  std::uint16_t input_if = 0;
  std::uint8_t engine_id = 0;
  /// NetFlow sampled mode: 1 exports every flow; N > 1 emulates 1-in-N
  /// packet sampling at the router -- a flow is exported with probability
  /// min(1, packets/N) and its packet/byte counts are renormalized, the
  /// standard estimator for sampled NetFlow. Stealthy single-packet
  /// attacks mostly vanish from sampled exports (see the ablation bench).
  std::uint32_t sampling_interval = 1;
  /// TTL stamping via a deterministic path model (src/hopcount). Null
  /// leaves every record's ttl at 0 ("not observed"). The model is pure
  /// hashing -- stamping consumes no draws from the replay RNG, so
  /// enabling it changes nothing else about the emitted stream.
  const hopcount::PathModel* path_model = nullptr;
  /// 0: honest stamping -- each record carries its (rewritten) source's
  /// own path TTL. Non-zero: this instance is an attack tool, and every
  /// attack-labeled record is stamped with the TTL of the *tool's* path
  /// (salted by this value) regardless of the source it forges -- the
  /// mismatch the hop-count detector keys on. Companion (benign-labeled)
  /// flows keep honest stamping either way.
  std::uint64_t attacker_path_salt = 0;
  /// With attacker_path_salt set: per-flow TTL jitter of +/- this many
  /// hops (the TTL-jittered evasion kind). Ignored for honest stamping.
  int attacker_ttl_jitter = 0;
};

/// A flow record as produced by a Dagflow instance, with the ground-truth
/// label riding alongside for the evaluation harness (never visible to the
/// detector).
struct LabeledFlow {
  netflow::V5Record record;
  std::uint16_t arrival_port = 0;
  bool attack = false;
  traffic::AttackKind attack_kind = traffic::AttackKind::kPuke;
};

/// One emulated NetFlow-exporting border router.
class Dagflow {
 public:
  Dagflow(DagflowConfig config, AddressPool pool, std::uint64_t seed);

  /// Replaces the instance's address pool (allocation transitions in the
  /// route-change experiments, Section 6.3.3).
  void set_pool(AddressPool pool);

  /// Converts a trace into labeled v5 records with rewritten sources,
  /// ordered by flow start time.
  [[nodiscard]] std::vector<LabeledFlow> replay(const traffic::Trace& trace);

  /// Packs records into wire datagrams (<= 30 records each), maintaining
  /// the export sequence across calls.
  [[nodiscard]] std::vector<std::vector<std::uint8_t>> export_datagrams(
      std::span<const LabeledFlow> flows, util::TimeMs export_time);

  [[nodiscard]] std::uint16_t netflow_port() const { return config_.netflow_port; }

 private:
  DagflowConfig config_;
  AddressPool pool_;
  util::Rng rng_;
  std::uint32_t sequence_ = 0;
};

}  // namespace infilter::dagflow

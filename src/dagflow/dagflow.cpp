#include "dagflow/dagflow.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace infilter::dagflow {

AddressPool::AddressPool(std::vector<Component> components)
    : components_(std::move(components)) {
  double total = 0;
  for (const auto& component : components_) {
    assert(!component.prefixes.empty());
    assert(component.weight > 0);
    total += component.weight;
  }
  double running = 0;
  cumulative_.reserve(components_.size());
  for (const auto& component : components_) {
    running += component.weight / total;
    cumulative_.push_back(running);
  }
  if (!cumulative_.empty()) cumulative_.back() = 1.0;
}

AddressPool AddressPool::from_allocation(const SourceAllocation& allocation,
                                         int active_slash24s) {
  std::vector<net::Prefix> prefixes;
  prefixes.reserve(allocation.normal_set.size() + allocation.change_set.size());
  for (const auto& block : allocation.normal_set) prefixes.push_back(block.prefix());
  for (const auto& block : allocation.change_set) prefixes.push_back(block.prefix());
  return AddressPool({Component{std::move(prefixes), 1.0, active_slash24s}});
}

AddressPool AddressPool::from_subblocks(const std::vector<net::SubBlock>& blocks) {
  std::vector<net::Prefix> prefixes;
  prefixes.reserve(blocks.size());
  for (const auto& block : blocks) prefixes.push_back(block.prefix());
  return AddressPool({Component{std::move(prefixes), 1.0}});
}

net::IPv4Address AddressPool::draw(util::Rng& rng) const {
  assert(!components_.empty());
  const double u = rng.uniform();
  std::size_t index = 0;
  while (index + 1 < cumulative_.size() && u > cumulative_[index]) ++index;
  const auto& component = components_[index];
  const auto& prefix =
      component.prefixes[rng.below(component.prefixes.size())];
  if (component.active_slash24s <= 0 || prefix.length() > 24) {
    return net::IPv4Address{prefix.address().value() +
                            static_cast<std::uint32_t>(rng.below(prefix.size()))};
  }
  // Clustered draw: a quadratically skewed pick among the prefix's active
  // /24s (rank 0 receives ~1/sqrt(K) of the traffic), then a uniform host.
  const auto k = static_cast<std::uint32_t>(component.active_slash24s);
  const double v = rng.uniform();
  const auto rank = static_cast<std::uint32_t>(v * v * k);
  // The active /24s are a deterministic pseudo-random subset of the
  // prefix's /24s, so the same block clusters identically across pools.
  util::SplitMix64 mix{(std::uint64_t{prefix.address().value()} << 8) ^ rank};
  const auto slash24_count = static_cast<std::uint32_t>(prefix.size() >> 8);
  const std::uint32_t slash24 =
      static_cast<std::uint32_t>(mix.next() % slash24_count);
  return net::IPv4Address{prefix.address().value() + (slash24 << 8) +
                          static_cast<std::uint32_t>(rng.below(256))};
}

Dagflow::Dagflow(DagflowConfig config, AddressPool pool, std::uint64_t seed)
    : config_(config), pool_(std::move(pool)), rng_(seed) {}

void Dagflow::set_pool(AddressPool pool) { pool_ = std::move(pool); }

std::vector<LabeledFlow> Dagflow::replay(const traffic::Trace& trace) {
  std::vector<LabeledFlow> out;
  out.reserve(trace.flows.size());
  const double interval = std::max<std::uint32_t>(1, config_.sampling_interval);
  for (const auto& flow : trace.flows) {
    // Sampled NetFlow (1-in-N packet sampling): the flow appears in the
    // export only when at least one of its packets was sampled; the
    // exporter then scales the sampled counts back up by N, so short flows
    // come out quantized to ~N packets and long flows keep their counts.
    std::uint32_t packets = flow.packets;
    std::uint32_t bytes = flow.bytes;
    if (config_.sampling_interval > 1) {
      const double keep_probability =
          1.0 - std::pow(1.0 - 1.0 / interval, static_cast<double>(flow.packets));
      if (!rng_.chance(keep_probability)) continue;
      const auto sampled = std::max<std::uint32_t>(
          1, static_cast<std::uint32_t>(
                 std::round(static_cast<double>(flow.packets) / interval)));
      packets = sampled * config_.sampling_interval;
      bytes = static_cast<std::uint32_t>(
          std::round(static_cast<double>(flow.bytes) * packets /
                     std::max(1.0, static_cast<double>(flow.packets))));
    }
    LabeledFlow labeled;
    labeled.arrival_port = config_.netflow_port;
    labeled.attack = flow.attack;
    labeled.attack_kind = flow.attack_kind;

    auto& r = labeled.record;
    r.src_ip = pool_.empty() ? flow.src_ip : pool_.draw(rng_);
    r.dst_ip = flow.dst_ip;
    r.proto = flow.proto;
    r.src_port = flow.src_port;
    r.dst_port = flow.dst_port;
    r.tcp_flags = flow.tcp_flags;
    r.input_if = config_.input_if;
    r.packets = packets;
    r.bytes = bytes;
    r.first = static_cast<std::uint32_t>(flow.start);
    r.last = static_cast<std::uint32_t>(flow.start) + flow.duration_ms;
    if (config_.path_model != nullptr) {
      // Stamped last, from the *rewritten* source: the TTL a collector
      // would see is a property of whoever actually sent the packets.
      const std::uint64_t flow_salt = (std::uint64_t{r.dst_ip.value()} << 32) ^
                                      (std::uint64_t{r.src_port} << 16) ^
                                      r.dst_port ^ r.first;
      // Only attack-labeled flows travel the tool's path; companion flows
      // are genuine hosts responding over their own routes, so they keep
      // honest TTLs even when replayed through an attack instance.
      r.ttl = (config_.attacker_path_salt != 0 && flow.attack)
                  ? config_.path_model->attacker_ttl(config_.attacker_path_salt,
                                                     flow_salt,
                                                     config_.attacker_ttl_jitter)
                  : config_.path_model->source_ttl(r.src_ip, flow_salt);
    }
    out.push_back(labeled);
  }
  return out;
}

std::vector<std::vector<std::uint8_t>> Dagflow::export_datagrams(
    std::span<const LabeledFlow> flows, util::TimeMs export_time) {
  std::vector<netflow::V5Record> records;
  records.reserve(flows.size());
  for (const auto& flow : flows) records.push_back(flow.record);
  return netflow::encode_all(records, export_time, sequence_, config_.engine_id);
}

}  // namespace infilter::dagflow

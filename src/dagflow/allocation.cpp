#include "dagflow/allocation.h"

#include <cassert>

namespace infilter::dagflow {

net::SubBlockRange eia_range(int source, int blocks_each) {
  assert(source >= 0);
  assert(blocks_each > 0);
  const int first = source * blocks_each;
  assert(first + blocks_each <= net::kTotalSubBlocks);
  return net::SubBlockRange{net::SubBlock{first}, net::SubBlock{first + blocks_each - 1}};
}

std::vector<SourceAllocation> make_allocation(int sources, int blocks_each,
                                              int change_blocks, int allocation_index) {
  assert(sources > 0);
  assert(change_blocks >= 0 && change_blocks < blocks_each);
  assert(allocation_index >= 0);

  std::vector<SourceAllocation> out(static_cast<std::size_t>(sources));
  // Every source keeps its first blocks_each - change_blocks blocks and
  // donates the rest.
  std::vector<net::SubBlock> donated;
  donated.reserve(static_cast<std::size_t>(sources * change_blocks));
  for (int s = 0; s < sources; ++s) {
    auto& alloc = out[static_cast<std::size_t>(s)];
    alloc.eia_range = eia_range(s, blocks_each);
    const int first = alloc.eia_range.first.index();
    for (int b = 0; b < blocks_each - change_blocks; ++b) {
      alloc.normal_set.emplace_back(first + b);
    }
    for (int b = blocks_each - change_blocks; b < blocks_each; ++b) {
      donated.emplace_back(first + b);
    }
  }
  if (change_blocks == 0) return out;

  // Table 2's redistribution: rotate the donated list back by one so no
  // source receives its own blocks, then hand out consecutive chunks
  // starting at source 1 (0-based), advancing the starting source by one
  // per allocation.
  const auto total = static_cast<int>(donated.size());
  for (int chunk = 0; chunk < sources; ++chunk) {
    const int receiver = (1 + chunk + allocation_index) % sources;
    auto& alloc = out[static_cast<std::size_t>(receiver)];
    for (int b = 0; b < change_blocks; ++b) {
      const int index = ((chunk * change_blocks + b - 1) % total + total) % total;
      alloc.change_set.push_back(donated[static_cast<std::size_t>(index)]);
    }
  }
  return out;
}

}  // namespace infilter::dagflow

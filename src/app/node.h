// The deployable analysis node: Figure 9 assembled.
//
// One object owning the whole receiving side of the architecture --
// flow-capture sockets (one per Peer AS / BR collector port), the
// Enhanced InFilter engine, the traceback aggregator and an alert sink --
// driven by a poll loop. This is what an operator actually runs
// (tools/infilter-monitor); the testbed and benches drive the same engine
// in-process instead.

#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "core/engine.h"
#include "core/traceback.h"
#include "flowtools/udp.h"
#include "ingest/ingest.h"
#include "obs/metrics.h"
#include "runtime/runtime.h"
#include "util/result.h"

namespace infilter::app {

struct NodeConfig {
  /// Collector UDP ports, one per emulated Peer AS / border router.
  std::vector<std::uint16_t> ports{9001, 9002, 9003, 9004, 9005,
                                   9006, 9007, 9008, 9009, 9010};
  core::EngineConfig engine;
  core::TracebackConfig traceback;

  // -- Concurrent runtime (src/runtime) --
  /// 0 analyzes flows inline on the polling thread (the paper's prototype
  /// shape); N >= 1 dispatches them to a ShardedRuntime with N worker
  /// shards. Verdict stats then trail the poll loop by whatever is still
  /// in flight -- call flush() before reading them exactly.
  int threads = 0;
  /// Per-shard ring capacity when threads > 0.
  std::size_t queue_depth = 4096;
  runtime::BackpressurePolicy backpressure = runtime::BackpressurePolicy::kBlock;

  // -- Threaded live ingest (src/ingest) --
  /// 0 receives with the classic single-thread LiveCollector on the poll
  /// loop; N >= 1 replaces it with an IngestPipeline: N receiver threads
  /// recvmmsg-ing into pooled buffers, decoding inline, and dispatching
  /// directly into the runtime -- receiver i is runtime producer i, no
  /// intermediate decode/dispatcher thread. Implies runtime mode (threads
  /// is clamped to >= 1). poll_once() then only reports progress --
  /// reception never waits for the poll loop.
  int ingest_threads = 0;
  /// Retained for compatibility; receiver-direct ingest has no internal
  /// queue for the policy to govern (see ingest::OverloadPolicy).
  ingest::OverloadPolicy overload = ingest::OverloadPolicy::kBlock;

  // -- CPU placement (src/runtime/affinity.h) --
  /// Cpu ids for the pipeline's threads (--cpu-set): ingest receivers
  /// take the first slots, runtime shard workers the next, then the scan
  /// thread; assignment is round-robin over the list. Empty = unpinned.
  /// Pinning is a hint -- failures are counted in the affinity metrics,
  /// never fatal, so the same config runs on a 1-CPU host.
  std::vector<int> affinity;

  // -- Flight recorder (src/obs/trace.h) --
  /// Not owned; null = no tracing. Shared by the ingest pipeline, the
  /// runtime, and (serial mode) the poll loop, so one tracer sees the
  /// whole record journey. Must outlive the node.
  obs::Tracer* tracer = nullptr;
};

/// Counters the monitor reports.
struct NodeStats {
  /// Serial mode: flows fully analyzed. Runtime mode: flows *accepted for
  /// analysis* (dispatched to a shard ring, possibly still queued), while
  /// suspects/attacks_flagged count completed flows -- so a live reading
  /// can show fewer verdicts than flows. flush() reconciles them exactly.
  std::uint64_t flows_processed = 0;
  /// Flows shed by a full shard ring (threads > 0 with kDrop only).
  std::uint64_t dropped_flows = 0;
  std::uint64_t suspects = 0;
  std::uint64_t attacks_flagged = 0;
  std::uint64_t datagrams = 0;
  std::uint64_t malformed_datagrams = 0;
  std::uint64_t sequence_gaps = 0;
};

class InFilterNode {
 public:
  /// Binds the collector sockets. `alert_consumer` (optional, not owned)
  /// receives every alert after traceback aggregation.
  static util::Result<std::unique_ptr<InFilterNode>> create(
      const NodeConfig& config, alert::AlertSink* alert_consumer = nullptr);

  /// Stops the ingest pipeline before the runtime dies (the receiver
  /// threads dispatch into it) and retires the node's trace lane.
  ~InFilterNode();

  /// Training-phase helpers (Figure 11). Fan out to every shard when the
  /// node is runtime-backed.
  void add_expected(core::IngressId ingress, const net::Prefix& prefix);
  /// Preloads a learned hop-count table (TTL detection; src/hopcount).
  void install_hopcount(const hopcount::HopCountTable& table);
  void train(std::span<const netflow::V5Record> normal_flows);

  /// Waits up to `timeout_ms` for export datagrams, analyzes (or, with
  /// threads > 0, dispatches) every flow that arrived, and returns how
  /// many flows were drained from the capture. Flow timestamps come from
  /// the records (virtual time), so analysis is deterministic for a given
  /// input stream. Ingest mode: reception and dispatch run on their own
  /// threads, so this just sleeps the timeout and reports how many records
  /// the pipeline dispatched since the previous poll.
  util::Result<std::size_t> poll_once(int timeout_ms);

  /// Runtime-backed nodes: blocks until every dispatched flow has been
  /// analyzed, making stats() and metrics() exact. Ingest mode drains the
  /// receive pipeline first (two-phase: ingest drain, then runtime flush).
  /// Serial nodes: no-op.
  void flush();

  /// Runtime-backed nodes: live-resizes the worker shard pool, migrating
  /// per-shard engine state (see runtime::ShardedRuntime::resize). Safe
  /// while ingest receivers are dispatching -- they stall on the submit
  /// gate for the pause. Returns false on serial nodes or when the
  /// runtime rejects the request.
  bool resize(int new_shards);

  [[nodiscard]] const NodeStats& stats() const { return stats_; }
  [[nodiscard]] const core::TracebackEngine& traceback() const { return traceback_; }
  [[nodiscard]] std::vector<std::uint16_t> ports() const {
    return collector_ ? collector_->ports() : ingest_->ports();
  }
  /// Worker shards processing flows; 0 = serial in-process analysis.
  [[nodiscard]] int threads() const { return runtime_ ? static_cast<int>(runtime_->shard_count()) : 0; }

  /// The registry holding the node-level metrics: collector health, plus
  /// (serial mode) the engine pipeline, or (runtime mode) the dispatcher
  /// counters. The node-owned one unless NodeConfig::engine.registry was
  /// set.
  [[nodiscard]] obs::Registry& metrics_registry() { return *registry_ptr_; }
  /// Every metric of the node in one view; runtime-backed nodes merge the
  /// per-shard engine registries in (see ShardedRuntime::snapshot()).
  /// Runtime mode: call from the polling thread only, and flush() first
  /// for a complete view -- busy shards' engine registries are omitted.
  [[nodiscard]] obs::RegistrySnapshot metrics() const;

 private:
  InFilterNode(const NodeConfig& config,
               std::unique_ptr<flowtools::LiveCollector> collector,
               alert::AlertSink* alert_consumer);

  void refresh_runtime_stats();
  void refresh_ingest_stats();

  /// Exactly one of collector_ (classic poll-loop reception) and ingest_
  /// (threaded reception, set in create() after the runtime exists) holds
  /// the sockets.
  std::unique_ptr<flowtools::LiveCollector> collector_;
  std::unique_ptr<ingest::IngestPipeline> ingest_;
  /// Declared before the engine/runtime: both register callbacks into it.
  obs::Registry registry_;
  obs::Registry* registry_ptr_;  ///< user-supplied or &registry_
  core::TracebackEngine traceback_;
  /// Exactly one of these two is set (engine_ when threads == 0).
  std::unique_ptr<core::InFilterEngine> engine_;
  std::unique_ptr<runtime::ShardedRuntime> runtime_;
  NodeStats stats_;
  /// Verdict counts from the runtime's workers (hook side).
  std::atomic<std::uint64_t> hook_suspects_{0};
  std::atomic<std::uint64_t> hook_attacks_{0};
  /// Flows already drained from the capture on previous polls.
  std::size_t consumed_ = 0;
  /// Ingest mode: records already reported by previous polls.
  std::uint64_t ingest_consumed_ = 0;
  /// Flight recorder (NodeConfig::tracer; may be null) and, in serial
  /// mode, the poll thread's lane plus its journey sampling counter.
  obs::Tracer* tracer_ = nullptr;
  obs::ThreadLane* poll_lane_ = nullptr;
  std::uint64_t serial_seq_ = 0;
};

}  // namespace infilter::app

// The deployable analysis node: Figure 9 assembled.
//
// One object owning the whole receiving side of the architecture --
// flow-capture sockets (one per Peer AS / BR collector port), the
// Enhanced InFilter engine, the traceback aggregator and an alert sink --
// driven by a poll loop. This is what an operator actually runs
// (tools/infilter-monitor); the testbed and benches drive the same engine
// in-process instead.

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "core/engine.h"
#include "core/traceback.h"
#include "flowtools/udp.h"
#include "obs/metrics.h"
#include "util/result.h"

namespace infilter::app {

struct NodeConfig {
  /// Collector UDP ports, one per emulated Peer AS / border router.
  std::vector<std::uint16_t> ports{9001, 9002, 9003, 9004, 9005,
                                   9006, 9007, 9008, 9009, 9010};
  core::EngineConfig engine;
  core::TracebackConfig traceback;
};

/// Counters the monitor reports.
struct NodeStats {
  std::uint64_t flows_processed = 0;
  std::uint64_t suspects = 0;
  std::uint64_t attacks_flagged = 0;
  std::uint64_t datagrams = 0;
  std::uint64_t malformed_datagrams = 0;
  std::uint64_t sequence_gaps = 0;
};

class InFilterNode {
 public:
  /// Binds the collector sockets. `alert_consumer` (optional, not owned)
  /// receives every alert after traceback aggregation.
  static util::Result<std::unique_ptr<InFilterNode>> create(
      const NodeConfig& config, alert::AlertSink* alert_consumer = nullptr);

  /// Training-phase helpers (Figure 11).
  void add_expected(core::IngressId ingress, const net::Prefix& prefix) {
    engine_.add_expected(ingress, prefix);
  }
  void train(std::span<const netflow::V5Record> normal_flows) {
    engine_.train(normal_flows);
  }

  /// Waits up to `timeout_ms` for export datagrams, analyzes every flow
  /// that arrived, and returns how many flows were processed. Flow
  /// timestamps come from the records (virtual time), so analysis is
  /// deterministic for a given input stream.
  util::Result<std::size_t> poll_once(int timeout_ms);

  [[nodiscard]] const NodeStats& stats() const { return stats_; }
  [[nodiscard]] const core::InFilterEngine& engine() const { return engine_; }
  [[nodiscard]] core::InFilterEngine& engine() { return engine_; }
  [[nodiscard]] const core::TracebackEngine& traceback() const { return traceback_; }
  [[nodiscard]] std::vector<std::uint16_t> ports() const { return collector_.ports(); }

  /// The registry holding every pipeline, component and collector metric
  /// of this node (the node-owned one unless NodeConfig::engine.registry
  /// was set). Snapshot it to scrape or export.
  [[nodiscard]] obs::Registry& metrics_registry() { return engine_.registry(); }
  [[nodiscard]] obs::RegistrySnapshot metrics() const {
    return engine_.registry().snapshot();
  }

 private:
  InFilterNode(const NodeConfig& config, flowtools::LiveCollector collector,
               alert::AlertSink* alert_consumer);

  flowtools::LiveCollector collector_;
  /// Declared before engine_: the engine registers callbacks into it.
  obs::Registry registry_;
  core::TracebackEngine traceback_;
  core::InFilterEngine engine_;
  NodeStats stats_;
  /// Flows already drained from the capture on previous polls.
  std::size_t consumed_ = 0;
};

}  // namespace infilter::app

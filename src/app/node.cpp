#include "app/node.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace infilter::app {
namespace {

/// Routes engine metrics into the node-owned registry unless the caller
/// already supplied one.
core::EngineConfig with_registry(core::EngineConfig engine, obs::Registry* registry) {
  if (engine.registry == nullptr) engine.registry = registry;
  return engine;
}

}  // namespace

InFilterNode::InFilterNode(const NodeConfig& config,
                           std::unique_ptr<flowtools::LiveCollector> collector,
                           alert::AlertSink* alert_consumer)
    : collector_(std::move(collector)),
      registry_ptr_(config.engine.registry != nullptr ? config.engine.registry
                                                      : &registry_),
      traceback_(config.traceback, alert_consumer),
      tracer_(config.tracer) {
  if (config.threads > 0) {
    // Runtime-backed analysis: the poll loop becomes the dispatcher and N
    // shard engines do the work. The runtime serializes shard alerts, so
    // the (single-threaded) traceback aggregator works unmodified.
    runtime::RuntimeConfig runtime_config;
    runtime_config.shards = config.threads;
    runtime_config.queue_depth = config.queue_depth;
    runtime_config.backpressure = config.backpressure;
    runtime_config.engine = config.engine;
    runtime_config.registry = registry_ptr_;
    runtime_config.tracer = tracer_;
    runtime_config.cpu_set = config.affinity;
    if (config.ingest_threads > 0) {
      // One producer slot per ingest receiver (receiver i dispatches as
      // producer i). Receivers take cpu slots 0..R-1 of the affinity
      // list, so the runtime's workers and scan thread start after them.
      const auto receivers = std::max<std::size_t>(
          std::min<std::size_t>(
              static_cast<std::size_t>(std::max(1, config.ingest_threads)),
              config.ports.size()),
          1);
      runtime_config.producers = static_cast<int>(receivers);
      runtime_config.cpu_slot_offset = receivers;
    }
    runtime_ = std::make_unique<runtime::ShardedRuntime>(
        std::move(runtime_config), &traceback_,
        [this](const runtime::FlowItem&, const core::Verdict& verdict) {
          if (verdict.suspect)
            hook_suspects_.fetch_add(1, std::memory_order_relaxed);
          if (verdict.attack)
            hook_attacks_.fetch_add(1, std::memory_order_relaxed);
        });
  } else {
    engine_ = std::make_unique<core::InFilterEngine>(
        with_registry(config.engine, &registry_), &traceback_);
    if (tracer_ != nullptr) {
      // Serial analysis runs on whichever thread drives poll_once() --
      // one logical thread, like the runtime's dispatcher.
      poll_lane_ = tracer_->register_thread("poll", "serial");
    }
  }

  // Collector-path health, sampled from the capture at snapshot time.
  // Ingest mode has no capture; the pipeline registers its own
  // infilter_ingest_* counters into the same registry instead.
  if (collector_ == nullptr) return;
  auto& registry = *registry_ptr_;
  registry.counter_fn(
      "infilter_collector_datagrams_total",
      [this] { return static_cast<std::uint64_t>(collector_->capture().datagrams_received()); },
      "NetFlow export datagrams received on the collector sockets");
  registry.counter_fn(
      "infilter_collector_malformed_total",
      [this] { return static_cast<std::uint64_t>(collector_->capture().datagrams_malformed()); },
      "Datagrams dropped as undecodable NetFlow v5");
  registry.counter_fn(
      "infilter_collector_records_total",
      [this] { return collector_->capture().records_decoded(); },
      "Flow records decoded from received datagrams");
  registry.counter_fn(
      "infilter_collector_sequence_gaps_total",
      [this] { return collector_->capture().sequence_gaps(); },
      "Export records lost to sequence gaps (per engine/port stream)");
}

InFilterNode::~InFilterNode() {
  // The receiver threads dispatch into runtime_, which member order would
  // otherwise destroy first; stop the pipeline before anything else dies.
  if (ingest_) ingest_->stop();
  if (poll_lane_ != nullptr) poll_lane_->retire();
}

util::Result<std::unique_ptr<InFilterNode>> InFilterNode::create(
    const NodeConfig& config, alert::AlertSink* alert_consumer) {
  if (config.ingest_threads > 0) {
    // Threaded reception needs something to dispatch into: force runtime
    // mode, then attach the pipeline once the runtime exists (the node
    // must be at its final address first -- the dispatch callback and the
    // metric callbacks point into it).
    NodeConfig adjusted = config;
    adjusted.threads = std::max(1, config.threads);
    auto node = std::unique_ptr<InFilterNode>(
        new InFilterNode(adjusted, nullptr, alert_consumer));
    ingest::IngestConfig ingest_config;
    ingest_config.ports = adjusted.ports;
    ingest_config.receiver_threads = adjusted.ingest_threads;
    ingest_config.overload = adjusted.overload;
    ingest_config.registry = node->registry_ptr_;
    ingest_config.tracer = adjusted.tracer;
    ingest_config.cpu_set = adjusted.affinity;  // receivers take slots 0..R-1
    auto pipeline = ingest::IngestPipeline::create(std::move(ingest_config),
                                                   *node->runtime_);
    if (!pipeline) return pipeline.error();
    node->ingest_ = std::move(*pipeline);
    return node;
  }
  auto collector = flowtools::LiveCollector::bind(config.ports);
  if (!collector) return collector.error();
  // unique_ptr because the engine holds a pointer to the traceback member:
  // the node must not be movable.
  return std::unique_ptr<InFilterNode>(new InFilterNode(
      config,
      std::make_unique<flowtools::LiveCollector>(std::move(*collector)),
      alert_consumer));
}

void InFilterNode::add_expected(core::IngressId ingress, const net::Prefix& prefix) {
  if (ingest_) {
    // The runtime's training calls are gate-exclusive and safe under live
    // producers; quiescing the receivers on top keeps the whole pipeline
    // empty while the tables change, in case traffic is already arriving.
    ingest_->quiesce([&] { runtime_->add_expected(ingress, prefix); });
  } else if (runtime_) {
    runtime_->add_expected(ingress, prefix);
  } else {
    engine_->add_expected(ingress, prefix);
  }
}

void InFilterNode::install_hopcount(const hopcount::HopCountTable& table) {
  if (ingest_) {
    ingest_->quiesce([&] { runtime_->install_hopcount(table); });
  } else if (runtime_) {
    runtime_->install_hopcount(table);
  } else {
    engine_->install_hopcount(table);
  }
}

void InFilterNode::train(std::span<const netflow::V5Record> normal_flows) {
  if (ingest_) {
    ingest_->quiesce([&] { runtime_->train(normal_flows); });
  } else if (runtime_) {
    runtime_->train(normal_flows);
  } else {
    engine_->train(normal_flows);
  }
}

util::Result<std::size_t> InFilterNode::poll_once(int timeout_ms) {
  if (ingest_) {
    // Reception, decode, and dispatch all run on pipeline threads; the
    // poll loop only paces itself and reports progress.
    std::this_thread::sleep_for(std::chrono::milliseconds(timeout_ms));
    refresh_ingest_stats();
    refresh_runtime_stats();
    const auto dispatched = stats_.flows_processed;
    const auto delta = dispatched - ingest_consumed_;
    ingest_consumed_ = dispatched;
    return static_cast<std::size_t>(delta);
  }

  const auto stored = collector_->poll_once(timeout_ms);
  if (!stored) return stored.error();

  const auto& capture = collector_->capture();
  const auto& flows = capture.flows();
  std::size_t processed = 0;
  for (; consumed_ < flows.size(); ++consumed_) {
    const auto& flow = flows[consumed_];
    if (runtime_) {
      if (runtime_->submit(flow.record, flow.arrival_port, flow.record.last)) {
        ++stats_.flows_processed;
      } else {
        ++stats_.dropped_flows;
      }
    } else {
      core::Verdict verdict;
      ++serial_seq_;
      if (poll_lane_ != nullptr && tracer_->enabled() &&
          tracer_->sampled(serial_seq_)) {
        // Serial mode has no hand-offs: one span is the whole journey.
        const auto t0 = obs::Tracer::now_ns();
        verdict = engine_->process(flow.record, flow.arrival_port, flow.record.last);
        const auto t1 = obs::Tracer::now_ns();
        poll_lane_->emit(obs::SpanKind::kSerial, t0, t1 - t0, serial_seq_);
        tracer_->e2e_us->observe(static_cast<double>(t1 - t0) / 1000.0);
      } else {
        verdict = engine_->process(flow.record, flow.arrival_port, flow.record.last);
      }
      ++stats_.flows_processed;
      stats_.suspects += verdict.suspect ? 1 : 0;
      stats_.attacks_flagged += verdict.attack ? 1 : 0;
    }
    ++processed;
  }
  if (poll_lane_ != nullptr && processed > 0) poll_lane_->heartbeat(processed);
  if (runtime_) refresh_runtime_stats();
  stats_.datagrams = capture.datagrams_received();
  stats_.malformed_datagrams = capture.datagrams_malformed();
  stats_.sequence_gaps = capture.sequence_gaps();
  return processed;
}

void InFilterNode::flush() {
  if (!runtime_) return;
  if (ingest_) {
    // Two-phase: park the receivers with everything they accepted already
    // dispatched, then flush the runtime inside the quiet window so no
    // new submits race the drain accounting.
    ingest_->quiesce([&] { runtime_->flush(); });
    refresh_ingest_stats();
  } else {
    runtime_->flush();
  }
  refresh_runtime_stats();
}

bool InFilterNode::resize(int new_shards) {
  if (!runtime_) return false;
  return runtime_->resize(new_shards);
}

void InFilterNode::refresh_runtime_stats() {
  stats_.suspects = hook_suspects_.load(std::memory_order_relaxed);
  stats_.attacks_flagged = hook_attacks_.load(std::memory_order_relaxed);
}

void InFilterNode::refresh_ingest_stats() {
  const auto ingest_stats = ingest_->stats();
  stats_.flows_processed = ingest_stats.records_dispatched;
  stats_.dropped_flows = ingest_stats.records_shed;
  stats_.datagrams = ingest_stats.datagrams_received;
  stats_.malformed_datagrams = ingest_stats.datagrams_malformed;
  stats_.sequence_gaps = ingest_stats.sequence_gaps;
}

obs::RegistrySnapshot InFilterNode::metrics() const {
  if (ingest_) {
    // runtime_->snapshot() is safe under live producers, but taking it
    // (and the pipeline's private gauges) inside the pipeline's quiet
    // window gives one coherent, nothing-in-flight view.
    obs::RegistrySnapshot merged;
    ingest_->quiesce([&] {
      std::vector<obs::RegistrySnapshot> parts{runtime_->snapshot(),
                                               ingest_->snapshot()};
      if (tracer_ != nullptr) parts.push_back(tracer_->snapshot());
      merged = obs::merge_snapshots(parts);
    });
    return merged;
  }
  auto base = runtime_ ? runtime_->snapshot() : registry_ptr_->snapshot();
  if (tracer_ == nullptr) return base;
  return obs::merge_snapshots({std::move(base), tracer_->snapshot()});
}

}  // namespace infilter::app

#include "app/node.h"

namespace infilter::app {
namespace {

/// Routes engine metrics into the node-owned registry unless the caller
/// already supplied one.
core::EngineConfig with_registry(core::EngineConfig engine, obs::Registry* registry) {
  if (engine.registry == nullptr) engine.registry = registry;
  return engine;
}

}  // namespace

InFilterNode::InFilterNode(const NodeConfig& config, flowtools::LiveCollector collector,
                           alert::AlertSink* alert_consumer)
    : collector_(std::move(collector)),
      traceback_(config.traceback, alert_consumer),
      engine_(with_registry(config.engine, &registry_), &traceback_) {
  // Collector-path health, sampled from the capture at snapshot time.
  auto& registry = engine_.registry();
  registry.counter_fn(
      "infilter_collector_datagrams_total",
      [this] { return static_cast<std::uint64_t>(collector_.capture().datagrams_received()); },
      "NetFlow export datagrams received on the collector sockets");
  registry.counter_fn(
      "infilter_collector_malformed_total",
      [this] { return static_cast<std::uint64_t>(collector_.capture().datagrams_malformed()); },
      "Datagrams dropped as undecodable NetFlow v5");
  registry.counter_fn(
      "infilter_collector_records_total",
      [this] { return collector_.capture().records_decoded(); },
      "Flow records decoded from received datagrams");
  registry.counter_fn(
      "infilter_collector_sequence_gaps_total",
      [this] { return collector_.capture().sequence_gaps(); },
      "Export records lost to sequence gaps (per engine/port stream)");
}

util::Result<std::unique_ptr<InFilterNode>> InFilterNode::create(
    const NodeConfig& config, alert::AlertSink* alert_consumer) {
  auto collector = flowtools::LiveCollector::bind(config.ports);
  if (!collector) return collector.error();
  // unique_ptr because the engine holds a pointer to the traceback member:
  // the node must not be movable.
  return std::unique_ptr<InFilterNode>(
      new InFilterNode(config, std::move(*collector), alert_consumer));
}

util::Result<std::size_t> InFilterNode::poll_once(int timeout_ms) {
  const auto stored = collector_.poll_once(timeout_ms);
  if (!stored) return stored.error();

  const auto& capture = collector_.capture();
  const auto& flows = capture.flows();
  std::size_t processed = 0;
  for (; consumed_ < flows.size(); ++consumed_) {
    const auto& flow = flows[consumed_];
    const auto verdict =
        engine_.process(flow.record, flow.arrival_port, flow.record.last);
    ++processed;
    ++stats_.flows_processed;
    stats_.suspects += verdict.suspect ? 1 : 0;
    stats_.attacks_flagged += verdict.attack ? 1 : 0;
  }
  stats_.datagrams = capture.datagrams_received();
  stats_.malformed_datagrams = capture.datagrams_malformed();
  stats_.sequence_gaps = capture.sequence_gaps();
  return processed;
}

}  // namespace infilter::app

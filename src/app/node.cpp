#include "app/node.h"

namespace infilter::app {

InFilterNode::InFilterNode(const NodeConfig& config, flowtools::LiveCollector collector,
                           alert::AlertSink* alert_consumer)
    : collector_(std::move(collector)),
      traceback_(config.traceback, alert_consumer),
      engine_(config.engine, &traceback_) {}

util::Result<std::unique_ptr<InFilterNode>> InFilterNode::create(
    const NodeConfig& config, alert::AlertSink* alert_consumer) {
  auto collector = flowtools::LiveCollector::bind(config.ports);
  if (!collector) return collector.error();
  // unique_ptr because the engine holds a pointer to the traceback member:
  // the node must not be movable.
  return std::unique_ptr<InFilterNode>(
      new InFilterNode(config, std::move(*collector), alert_consumer));
}

util::Result<std::size_t> InFilterNode::poll_once(int timeout_ms) {
  const auto stored = collector_.poll_once(timeout_ms);
  if (!stored) return stored.error();

  const auto& capture = collector_.capture();
  const auto& flows = capture.flows();
  std::size_t processed = 0;
  for (; consumed_ < flows.size(); ++consumed_) {
    const auto& flow = flows[consumed_];
    const auto verdict =
        engine_.process(flow.record, flow.arrival_port, flow.record.last);
    ++processed;
    ++stats_.flows_processed;
    stats_.suspects += verdict.suspect ? 1 : 0;
    stats_.attacks_flagged += verdict.attack ? 1 : 0;
  }
  stats_.datagrams = capture.datagrams_received();
  stats_.malformed_datagrams = capture.datagrams_malformed();
  stats_.sequence_gaps = capture.sequence_gaps();
  return processed;
}

}  // namespace infilter::app

#include "app/node.h"

namespace infilter::app {
namespace {

/// Routes engine metrics into the node-owned registry unless the caller
/// already supplied one.
core::EngineConfig with_registry(core::EngineConfig engine, obs::Registry* registry) {
  if (engine.registry == nullptr) engine.registry = registry;
  return engine;
}

}  // namespace

InFilterNode::InFilterNode(const NodeConfig& config, flowtools::LiveCollector collector,
                           alert::AlertSink* alert_consumer)
    : collector_(std::move(collector)),
      registry_ptr_(config.engine.registry != nullptr ? config.engine.registry
                                                      : &registry_),
      traceback_(config.traceback, alert_consumer) {
  if (config.threads > 0) {
    // Runtime-backed analysis: the poll loop becomes the dispatcher and N
    // shard engines do the work. The runtime serializes shard alerts, so
    // the (single-threaded) traceback aggregator works unmodified.
    runtime::RuntimeConfig runtime_config;
    runtime_config.shards = config.threads;
    runtime_config.queue_depth = config.queue_depth;
    runtime_config.backpressure = config.backpressure;
    runtime_config.engine = config.engine;
    runtime_config.registry = registry_ptr_;
    runtime_ = std::make_unique<runtime::ShardedRuntime>(
        std::move(runtime_config), &traceback_,
        [this](const runtime::FlowItem&, const core::Verdict& verdict) {
          if (verdict.suspect)
            hook_suspects_.fetch_add(1, std::memory_order_relaxed);
          if (verdict.attack)
            hook_attacks_.fetch_add(1, std::memory_order_relaxed);
        });
  } else {
    engine_ = std::make_unique<core::InFilterEngine>(
        with_registry(config.engine, &registry_), &traceback_);
  }

  // Collector-path health, sampled from the capture at snapshot time.
  auto& registry = *registry_ptr_;
  registry.counter_fn(
      "infilter_collector_datagrams_total",
      [this] { return static_cast<std::uint64_t>(collector_.capture().datagrams_received()); },
      "NetFlow export datagrams received on the collector sockets");
  registry.counter_fn(
      "infilter_collector_malformed_total",
      [this] { return static_cast<std::uint64_t>(collector_.capture().datagrams_malformed()); },
      "Datagrams dropped as undecodable NetFlow v5");
  registry.counter_fn(
      "infilter_collector_records_total",
      [this] { return collector_.capture().records_decoded(); },
      "Flow records decoded from received datagrams");
  registry.counter_fn(
      "infilter_collector_sequence_gaps_total",
      [this] { return collector_.capture().sequence_gaps(); },
      "Export records lost to sequence gaps (per engine/port stream)");
}

util::Result<std::unique_ptr<InFilterNode>> InFilterNode::create(
    const NodeConfig& config, alert::AlertSink* alert_consumer) {
  auto collector = flowtools::LiveCollector::bind(config.ports);
  if (!collector) return collector.error();
  // unique_ptr because the engine holds a pointer to the traceback member:
  // the node must not be movable.
  return std::unique_ptr<InFilterNode>(
      new InFilterNode(config, std::move(*collector), alert_consumer));
}

void InFilterNode::add_expected(core::IngressId ingress, const net::Prefix& prefix) {
  if (runtime_) {
    runtime_->add_expected(ingress, prefix);
  } else {
    engine_->add_expected(ingress, prefix);
  }
}

void InFilterNode::train(std::span<const netflow::V5Record> normal_flows) {
  if (runtime_) {
    runtime_->train(normal_flows);
  } else {
    engine_->train(normal_flows);
  }
}

util::Result<std::size_t> InFilterNode::poll_once(int timeout_ms) {
  const auto stored = collector_.poll_once(timeout_ms);
  if (!stored) return stored.error();

  const auto& capture = collector_.capture();
  const auto& flows = capture.flows();
  std::size_t processed = 0;
  for (; consumed_ < flows.size(); ++consumed_) {
    const auto& flow = flows[consumed_];
    if (runtime_) {
      if (runtime_->submit(flow.record, flow.arrival_port, flow.record.last)) {
        ++stats_.flows_processed;
      } else {
        ++stats_.dropped_flows;
      }
    } else {
      const auto verdict =
          engine_->process(flow.record, flow.arrival_port, flow.record.last);
      ++stats_.flows_processed;
      stats_.suspects += verdict.suspect ? 1 : 0;
      stats_.attacks_flagged += verdict.attack ? 1 : 0;
    }
    ++processed;
  }
  if (runtime_) refresh_runtime_stats();
  stats_.datagrams = capture.datagrams_received();
  stats_.malformed_datagrams = capture.datagrams_malformed();
  stats_.sequence_gaps = capture.sequence_gaps();
  return processed;
}

void InFilterNode::flush() {
  if (!runtime_) return;
  runtime_->flush();
  refresh_runtime_stats();
}

void InFilterNode::refresh_runtime_stats() {
  stats_.suspects = hook_suspects_.load(std::memory_order_relaxed);
  stats_.attacks_flagged = hook_attacks_.load(std::memory_order_relaxed);
}

obs::RegistrySnapshot InFilterNode::metrics() const {
  return runtime_ ? runtime_->snapshot() : registry_ptr_->snapshot();
}

}  // namespace infilter::app

// IDMEF consumption.
//
// Section 5.1.4: "The Alert User Interface is ... responsible for
// receiving, parsing and displaying IDMEF alerts from the Analysis
// module" and larger systems "consume such data in the standardized IDMEF
// format". This is the receiving half: a parser for the IDMEF documents
// the Alert type serializes, plus a stream splitter for concatenated
// messages (the on-the-wire form when alerts are appended to a feed).
//
// The parser handles the IDMEF-draft subset our analyzer emits; it is a
// schema-directed extractor, not a general XML engine.
//
// Threading contract (the emitting half lives in idmef.h): AlertSink
// implementations -- including anything that feeds this parser, such as a
// sink appending IDMEF documents to a feed -- are called with serialized
// consume() invocations by every engine in this repository; the sharded
// runtime funnels all worker threads through alert::SerializingSink before
// the user's sink. Concatenated feeds written from a sink therefore never
// interleave two documents, which is what makes parse_idmef_stream's
// "split on message boundaries" contract sound under the concurrent
// runtime. The parse functions themselves are pure and re-entrant.

#pragma once

#include <string_view>
#include <vector>

#include "alert/idmef.h"
#include "util/result.h"

namespace infilter::alert {

/// Parses one IDMEF-Message document back into an Alert. Fails on missing
/// mandatory elements (Alert id, CreateTime, Source/Target addresses) or
/// malformed values.
[[nodiscard]] util::Result<Alert> parse_idmef(std::string_view xml);

/// Splits a feed of concatenated IDMEF-Message documents and parses each.
/// Fails on the first malformed message, identifying its index.
[[nodiscard]] util::Result<std::vector<Alert>> parse_idmef_stream(
    std::string_view xml);

}  // namespace infilter::alert

#include "alert/idmef_io.h"

#include <charconv>
#include <optional>
#include <string>

namespace infilter::alert {
namespace {

/// Contents of the first <tag ...>...</tag> within `scope`.
std::optional<std::string_view> element(std::string_view scope, std::string_view tag) {
  const std::string open = "<" + std::string(tag);
  const auto start = scope.find(open);
  if (start == std::string_view::npos) return std::nullopt;
  const auto open_end = scope.find('>', start);
  if (open_end == std::string_view::npos) return std::nullopt;
  if (open_end > start && scope[open_end - 1] == '/') {
    return scope.substr(open_end, 0);  // self-closing: empty contents
  }
  const std::string close = "</" + std::string(tag) + ">";
  const auto end = scope.find(close, open_end);
  if (end == std::string_view::npos) return std::nullopt;
  return scope.substr(open_end + 1, end - open_end - 1);
}

/// Value of `name="..."` on the first <tag ...> within `scope`.
std::optional<std::string_view> attribute(std::string_view scope, std::string_view tag,
                                          std::string_view name) {
  const std::string open = "<" + std::string(tag);
  const auto start = scope.find(open);
  if (start == std::string_view::npos) return std::nullopt;
  const auto open_end = scope.find('>', start);
  if (open_end == std::string_view::npos) return std::nullopt;
  const auto head = scope.substr(start, open_end - start);
  const std::string key = std::string(name) + "=\"";
  const auto at = head.find(key);
  if (at == std::string_view::npos) return std::nullopt;
  const auto value_start = at + key.size();
  const auto value_end = head.find('"', value_start);
  if (value_end == std::string_view::npos) return std::nullopt;
  return head.substr(value_start, value_end - value_start);
}

/// The AdditionalData element whose meaning attribute equals `meaning`.
std::optional<std::string_view> additional_data(std::string_view scope,
                                                std::string_view meaning) {
  std::size_t at = 0;
  while (true) {
    const auto start = scope.find("<AdditionalData", at);
    if (start == std::string_view::npos) return std::nullopt;
    const auto slice = scope.substr(start);
    const auto found_meaning = attribute(slice, "AdditionalData", "meaning");
    const auto contents = element(slice, "AdditionalData");
    if (found_meaning.has_value() && *found_meaning == meaning) return contents;
    at = start + 1;
  }
}

template <typename T>
bool parse_number(std::string_view text, T& out) {
  std::uint64_t value = 0;
  const auto end = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(text.data(), end, value);
  if (ec != std::errc{} || ptr != end) return false;
  out = static_cast<T>(value);
  return true;
}

std::optional<DetectionStage> stage_by_name(std::string_view name) {
  if (name == "eia-mismatch") return DetectionStage::kEiaMismatch;
  if (name == "scan-analysis") return DetectionStage::kScanAnalysis;
  if (name == "nns-distance") return DetectionStage::kNnsDistance;
  return std::nullopt;
}

}  // namespace

util::Result<Alert> parse_idmef(std::string_view xml) {
  const auto message = element(xml, "IDMEF-Message");
  if (!message.has_value()) return util::Error{"no IDMEF-Message element"};
  const auto body = element(*message, "Alert");
  if (!body.has_value()) return util::Error{"no Alert element"};

  Alert alert;
  const auto id = attribute(*message, "Alert", "messageid");
  if (!id.has_value() || !parse_number(*id, alert.id)) {
    return util::Error{"missing or bad Alert messageid"};
  }
  const auto create_time = element(*body, "CreateTime");
  if (!create_time.has_value() || !parse_number(*create_time, alert.create_time)) {
    return util::Error{"missing or bad CreateTime"};
  }

  const auto source = element(*body, "Source");
  const auto target = element(*body, "Target");
  if (!source.has_value() || !target.has_value()) {
    return util::Error{"missing Source or Target"};
  }
  const auto source_address = element(*source, "address");
  const auto target_address = element(*target, "address");
  if (!source_address.has_value() || !target_address.has_value()) {
    return util::Error{"missing source/target address"};
  }
  const auto src = net::IPv4Address::parse(*source_address);
  const auto dst = net::IPv4Address::parse(*target_address);
  if (!src.has_value() || !dst.has_value()) {
    return util::Error{"malformed source/target address"};
  }
  alert.source_ip = *src;
  alert.target_ip = *dst;

  if (const auto service = element(*target, "Service"); service.has_value()) {
    if (const auto port = element(*service, "port"); port.has_value()) {
      if (!parse_number(*port, alert.target_port)) {
        return util::Error{"malformed target port"};
      }
    }
    if (const auto proto = element(*service, "protocol"); proto.has_value()) {
      if (!parse_number(*proto, alert.proto)) {
        return util::Error{"malformed protocol"};
      }
    }
  }

  if (const auto text = attribute(*body, "Classification", "text"); text.has_value()) {
    alert.classification = std::string(*text);
  }
  const auto stage_text = additional_data(*body, "detection-stage");
  if (!stage_text.has_value()) return util::Error{"missing detection-stage"};
  const auto stage = stage_by_name(*stage_text);
  if (!stage.has_value()) {
    return util::Error{"unknown detection stage '" + std::string(*stage_text) + "'"};
  }
  alert.stage = *stage;

  if (const auto ingress = additional_data(*body, "ingress-port"); ingress.has_value()) {
    if (!parse_number(*ingress, alert.ingress_port)) {
      return util::Error{"malformed ingress-port"};
    }
  }
  if (const auto expected = additional_data(*body, "expected-ingress");
      expected.has_value()) {
    std::uint16_t value = 0;
    if (!parse_number(*expected, value)) {
      return util::Error{"malformed expected-ingress"};
    }
    alert.expected_ingress = value;
  }
  if (const auto distance = additional_data(*body, "nns-distance");
      distance.has_value()) {
    std::uint32_t value = 0;
    if (!parse_number(*distance, value)) return util::Error{"malformed nns-distance"};
    alert.nns_distance = static_cast<int>(value);
  }
  if (const auto threshold = additional_data(*body, "nns-threshold");
      threshold.has_value()) {
    std::uint32_t value = 0;
    if (!parse_number(*threshold, value)) return util::Error{"malformed nns-threshold"};
    alert.nns_threshold = static_cast<int>(value);
  }
  return alert;
}

util::Result<std::vector<Alert>> parse_idmef_stream(std::string_view xml) {
  std::vector<Alert> alerts;
  std::size_t at = 0;
  int index = 0;
  while (true) {
    const auto start = xml.find("<IDMEF-Message", at);
    if (start == std::string_view::npos) break;
    const auto end = xml.find("</IDMEF-Message>", start);
    if (end == std::string_view::npos) {
      return util::Error{"message " + std::to_string(index) + ": unterminated"};
    }
    const auto document = xml.substr(start, end - start + 16);
    auto parsed = parse_idmef(document);
    if (!parsed) {
      return util::Error{"message " + std::to_string(index) + ": " +
                         parsed.error().message};
    }
    alerts.push_back(std::move(*parsed));
    at = end + 16;
    ++index;
  }
  return alerts;
}

}  // namespace infilter::alert

#include "alert/idmef.h"

#include <sstream>

namespace infilter::alert {

std::string_view stage_name(DetectionStage stage) {
  switch (stage) {
    case DetectionStage::kEiaMismatch: return "eia-mismatch";
    case DetectionStage::kScanAnalysis: return "scan-analysis";
    case DetectionStage::kNnsDistance: return "nns-distance";
    case DetectionStage::kHopCountFusion: return "hopcount-fusion";
  }
  return "unknown";
}

std::string Alert::to_idmef_xml() const {
  // Shaped after the IDMEF Internet-Draft's Alert message: Analyzer,
  // CreateTime, Source, Target, Classification, AdditionalData.
  std::ostringstream xml;
  xml << "<IDMEF-Message version=\"1.0\">\n";
  xml << "  <Alert messageid=\"" << id << "\">\n";
  xml << "    <Analyzer analyzerid=\"infilter\" class=\"spoof-detector\"/>\n";
  xml << "    <CreateTime>" << create_time << "</CreateTime>\n";
  xml << "    <Source spoofed=\"yes\">\n";
  xml << "      <Node><Address category=\"ipv4-addr\"><address>"
      << source_ip.to_string() << "</address></Address></Node>\n";
  xml << "    </Source>\n";
  xml << "    <Target>\n";
  xml << "      <Node><Address category=\"ipv4-addr\"><address>"
      << target_ip.to_string() << "</address></Address></Node>\n";
  if (target_port != 0) {
    xml << "      <Service><port>" << target_port << "</port><protocol>"
        << static_cast<int>(proto) << "</protocol></Service>\n";
  }
  xml << "    </Target>\n";
  xml << "    <Classification text=\"" << classification << "\"/>\n";
  xml << "    <AdditionalData type=\"string\" meaning=\"detection-stage\">"
      << stage_name(stage) << "</AdditionalData>\n";
  xml << "    <AdditionalData type=\"integer\" meaning=\"ingress-port\">"
      << ingress_port << "</AdditionalData>\n";
  if (expected_ingress >= 0) {
    xml << "    <AdditionalData type=\"integer\" meaning=\"expected-ingress\">"
        << expected_ingress << "</AdditionalData>\n";
  }
  if (stage == DetectionStage::kNnsDistance) {
    xml << "    <AdditionalData type=\"integer\" meaning=\"nns-distance\">"
        << nns_distance << "</AdditionalData>\n";
    xml << "    <AdditionalData type=\"integer\" meaning=\"nns-threshold\">"
        << nns_threshold << "</AdditionalData>\n";
  }
  xml << "  </Alert>\n";
  xml << "</IDMEF-Message>\n";
  return std::move(xml).str();
}

}  // namespace infilter::alert

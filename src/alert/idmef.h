// IDMEF-style alerting (Section 5.1.4).
//
// When the analysis engine flags an attack flow it emits an alert in the
// Intrusion Detection Message Exchange Format. The paper's Alert UI is one
// consumer; the core capability is the notification stream itself, which a
// larger system can feed into trace-back and response. We implement the
// alert value type, an XML serializer producing IDMEF-draft-shaped
// documents, and a small consumer interface.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/ipv4.h"
#include "util/time.h"

namespace infilter::alert {

/// Which stage of the Enhanced InFilter pipeline flagged the flow.
enum class DetectionStage : std::uint8_t {
  kEiaMismatch,   ///< Basic InFilter: source not in the ingress EIA set
  kScanAnalysis,  ///< scan counters exceeded a threshold
  kNnsDistance,   ///< nearest neighbor beyond the subcluster threshold
};

[[nodiscard]] std::string_view stage_name(DetectionStage stage);

/// One attack notification.
struct Alert {
  std::uint64_t id = 0;
  util::TimeMs create_time = 0;
  DetectionStage stage = DetectionStage::kEiaMismatch;
  net::IPv4Address source_ip;
  net::IPv4Address target_ip;
  std::uint16_t target_port = 0;
  std::uint8_t proto = 0;
  /// The Peer AS (identified by collector port) the flow arrived through.
  std::uint16_t ingress_port = 0;
  /// The Peer AS whose EIA set expected this source, if any (-1 = none).
  int expected_ingress = -1;
  /// NNS diagnostics when stage == kNnsDistance.
  int nns_distance = 0;
  int nns_threshold = 0;
  /// Flow-observation-to-alert latency in (virtual) milliseconds.
  double detection_latency_ms = 0;
  std::string classification;

  /// Serializes to an IDMEF-draft-shaped XML document.
  [[nodiscard]] std::string to_idmef_xml() const;
};

/// Consumer interface ("These could easily be used in a larger system").
class AlertSink {
 public:
  virtual ~AlertSink() = default;
  virtual void consume(const Alert& alert) = 0;
};

/// Stores alerts in memory; the test and experiment harnesses read them
/// back, and the Alert UI example renders them.
class CollectingSink final : public AlertSink {
 public:
  void consume(const Alert& alert) override { alerts_.push_back(alert); }
  [[nodiscard]] const std::vector<Alert>& alerts() const { return alerts_; }
  void clear() { alerts_.clear(); }

 private:
  std::vector<Alert> alerts_;
};

}  // namespace infilter::alert

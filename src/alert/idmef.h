// IDMEF-style alerting (Section 5.1.4).
//
// When the analysis engine flags an attack flow it emits an alert in the
// Intrusion Detection Message Exchange Format. The paper's Alert UI is one
// consumer; the core capability is the notification stream itself, which a
// larger system can feed into trace-back and response. We implement the
// alert value type, an XML serializer producing IDMEF-draft-shaped
// documents, and a small consumer interface.

#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "net/ipv4.h"
#include "util/time.h"

namespace infilter::alert {

/// Which stage of the Enhanced InFilter pipeline flagged the flow.
enum class DetectionStage : std::uint8_t {
  kEiaMismatch,   ///< Basic InFilter: source not in the ingress EIA set
  kScanAnalysis,  ///< scan counters exceeded a threshold
  kNnsDistance,   ///< nearest neighbor beyond the subcluster threshold
  /// Both independent witnesses disagree with the learned state: the
  /// source failed the EIA check AND its TTL implies the wrong path
  /// length. High-confidence spoof; scan/NNS confirmation is skipped.
  kHopCountFusion,
};

[[nodiscard]] std::string_view stage_name(DetectionStage stage);

/// One attack notification.
struct Alert {
  std::uint64_t id = 0;
  util::TimeMs create_time = 0;
  DetectionStage stage = DetectionStage::kEiaMismatch;
  net::IPv4Address source_ip;
  net::IPv4Address target_ip;
  std::uint16_t target_port = 0;
  std::uint8_t proto = 0;
  /// The Peer AS (identified by collector port) the flow arrived through.
  std::uint16_t ingress_port = 0;
  /// The Peer AS whose EIA set expected this source, if any (-1 = none).
  int expected_ingress = -1;
  /// NNS diagnostics when stage == kNnsDistance.
  int nns_distance = 0;
  int nns_threshold = 0;
  /// Flow-observation-to-alert latency in (virtual) milliseconds.
  double detection_latency_ms = 0;
  std::string classification;

  /// Serializes to an IDMEF-draft-shaped XML document.
  [[nodiscard]] std::string to_idmef_xml() const;
};

/// Consumer interface ("These could easily be used in a larger system").
///
/// Threading contract: consume() is invoked on whichever thread runs the
/// detection -- the caller's thread for a serial InFilterEngine, a worker
/// thread for the sharded runtime. Implementations are NOT required to be
/// thread-safe: every engine in this repository promises to serialize its
/// consume() calls (the serial engine trivially, the sharded runtime via
/// SerializingSink, which also keeps alert ids dense across shards). A
/// sink shared between *independently driven* engines must either be
/// wrapped in SerializingSink by the owner or lock internally.
class AlertSink {
 public:
  virtual ~AlertSink() = default;
  virtual void consume(const Alert& alert) = 0;
};

/// Stores alerts in memory; the test and experiment harnesses read them
/// back, and the Alert UI example renders them.
class CollectingSink final : public AlertSink {
 public:
  void consume(const Alert& alert) override { alerts_.push_back(alert); }
  [[nodiscard]] const std::vector<Alert>& alerts() const { return alerts_; }
  void clear() { alerts_.clear(); }

 private:
  std::vector<Alert> alerts_;
};

/// Adapter that makes any sink safe to share across threads: consume()
/// calls are serialized under a mutex and alert ids are renumbered into
/// one dense global sequence (per-shard engines each number their own
/// alerts from 1, so raw ids would collide across shards). The sharded
/// runtime routes every shard's alerts through one of these.
class SerializingSink final : public AlertSink {
 public:
  /// `inner` is not owned and must outlive this adapter.
  explicit SerializingSink(AlertSink* inner) : inner_(inner) {}

  void consume(const Alert& alert) override {
    if (inner_ == nullptr) return;
    std::lock_guard lock(mutex_);
    Alert renumbered = alert;
    renumbered.id = ++next_id_;
    inner_->consume(renumbered);
  }

  [[nodiscard]] std::uint64_t delivered() const {
    std::lock_guard lock(mutex_);
    return next_id_;
  }

 private:
  AlertSink* inner_;
  mutable std::mutex mutex_;
  std::uint64_t next_id_ = 0;
};

}  // namespace infilter::alert

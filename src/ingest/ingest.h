// Threaded live ingest: the receiving half of Figure 9 at line rate.
//
// "A NetFlow enabled router will periodically send datagrams to a
// pre-designated receiver node" -- flowtools::LiveCollector models that
// node with one polling thread that allocates 64 KiB per datagram and
// interleaves receive, decode, and detection. This subsystem is the
// production-shaped replacement: receive, decode, and analysis overlap on
// dedicated threads, and the whole receive/decode hot path runs without a
// single steady-state heap allocation.
//
//   socket(s) --recvmmsg--> [receiver thread]*N  --SPSC ring-->  [decode thread] --submit_batch--> ShardedRuntime
//                             pooled buffer arena  (fan-in)        NetFlow v5 parse,                (dispatcher)
//                             (slots out)          <--free ring--  stream accounting,
//                                                  (slots back)    FlowItem batching
//
// Stage contract:
//   * Receiver threads (one per producer; sockets are distributed
//     round-robin across them) own a pooled buffer arena each. They
//     recvmmsg() batches of export datagrams straight into free arena
//     slots and push {slot, length, socket} descriptors over a bounded
//     SPSC ring to the decode stage. No parsing on the socket threads.
//   * The decode stage (one thread) drains every producer's ring,
//     parses NetFlow v5 with the allocation-free netflow::decode_into(),
//     tracks per-(engine, port) export-sequence gaps, recycles slots over
//     per-producer free rings, and batches the records into FlowItems for
//     the downstream dispatcher. Being the only thread that calls the
//     dispatch function, it satisfies ShardedRuntime's single-dispatcher
//     contract while letting any number of sockets feed one runtime.
//   * Buffers make a full cycle receiver -> ring -> decode -> free ring ->
//     receiver; ring capacities are >= the arena size, so descriptor
//     pushes never fail and overload shows up in exactly one place: an
//     empty free list.
//
// Overload policy (bounded rings, explicit choice):
//   * kBlock: the receiver waits for the decode stage to return buffers.
//     Lossless inside the pipeline; sustained overload backs up into the
//     kernel socket queue, whose drops are visible through the
//     SO_RXQ_OVFL readout (infilter_ingest_kernel_drops_total).
//   * kDropOldest: the receiver asks the decode stage to discard the
//     oldest queued datagrams (counted, buffers recycled) and keeps the
//     freshest traffic flowing. Sheds pipeline latency under bursts; it
//     cannot outrun a downstream dispatcher that itself blocks.
//
// Drain/shutdown is two-phase, mirroring ShardedRuntime::flush():
//   phase 1  drain(): every datagram the receivers accepted is decoded
//            and its records handed to the dispatcher;
//   phase 2  the caller flushes the runtime (quiesce() bundles both and
//            holds the decode stage parked while the caller runs flush or
//            snapshot, preserving the runtime's single-dispatcher rule).
//
// Ordering semantics: each socket's datagram stream reaches the
// dispatcher in kernel receive order (rings are FIFO and one socket maps
// to one producer), so single-socket verdict streams are bit-identical to
// the serial LiveCollector path (pinned by tests/test_ingest.cpp).
// Across sockets the interleaving is whatever the threads make it -- the
// same nondeterminism a serial collector already has across ports.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "core/eia.h"
#include "flowtools/udp.h"
#include "obs/metrics.h"
#include "runtime/runtime.h"
#include "runtime/spsc_ring.h"
#include "util/result.h"

namespace infilter::ingest {

/// What a receiver does when its buffer arena is exhausted (the decode
/// stage is not keeping up).
enum class OverloadPolicy : std::uint8_t {
  kBlock,       ///< wait for free buffers (lossless; kernel queue absorbs)
  kDropOldest,  ///< shed the oldest queued datagrams, keep the freshest
};

struct IngestConfig {
  /// Collector UDP ports, one socket each (0 entries bind ephemeral
  /// ports; read the assignments from ports()).
  std::vector<std::uint16_t> ports;
  /// Ingress id attributed to each port's traffic, parallel to `ports`.
  /// Empty = use the bound port number itself (the LiveCollector
  /// convention). An explicit mapping keeps ingress ids stable when
  /// binding ephemeral ports.
  std::vector<core::IngressId> ingress_ids;
  /// Receiver threads (producers). Sockets are distributed round-robin;
  /// clamped to [1, ports.size()].
  int receiver_threads = 1;
  /// Pooled datagram buffers per receiver thread. Bounds the datagrams in
  /// flight between a receiver and the decode stage.
  std::size_t arena_slots = 1024;
  /// Bytes per buffer slot. A v5 export datagram is at most 1464 bytes;
  /// longer datagrams are counted truncated and dropped before decode.
  std::size_t slot_bytes = 2048;
  /// Datagrams per recvmmsg() batch.
  std::size_t recv_batch = 32;
  /// FlowItems accumulated before a dispatch call.
  std::size_t dispatch_batch = 256;
  /// Kernel receive buffer per socket (SO_RCVBUF; 0 = system default).
  /// Overload policy only governs the pipeline's own rings -- this is the
  /// slack in front of them.
  int socket_rcvbuf = 1 << 20;
  OverloadPolicy overload = OverloadPolicy::kBlock;
  /// Value metrics (datagram/malformed/drop counters) land here; null = a
  /// pipeline-private registry. Pull gauges that call back into the
  /// pipeline always stay private, same discipline as RuntimeConfig.
  obs::Registry* registry = nullptr;
  /// Flight recorder (obs/trace.h), not owned; null = no tracing. When
  /// set, receiver and decode threads register liveness lanes, receivers
  /// stamp each datagram's socket-receive time while tracer->enabled(),
  /// and the decode stage starts the sampled record journeys the
  /// downstream runtime continues. Use the same tracer as the runtime's
  /// RuntimeConfig::tracer so one export holds the whole pipeline. Must
  /// outlive the pipeline.
  obs::Tracer* tracer = nullptr;
};

/// Monotone pipeline accounting. datagrams_received ==
/// datagrams_decoded + datagrams_malformed_of(decoded...) -- precisely:
/// every received datagram ends up decoded, malformed, or dropped_oldest;
/// truncated ones are counted and recycled receiver-side on top.
struct IngestStats {
  std::uint64_t datagrams_received = 0;   ///< accepted into the pipeline
  std::uint64_t datagrams_decoded = 0;    ///< parsed as NetFlow v5
  std::uint64_t datagrams_malformed = 0;  ///< failed v5 parse (incl. zero-length)
  std::uint64_t datagrams_truncated = 0;  ///< longer than slot_bytes, dropped
  std::uint64_t dropped_oldest = 0;       ///< shed under OverloadPolicy::kDropOldest
  std::uint64_t kernel_drops = 0;         ///< SO_RXQ_OVFL readout (socket queue)
  std::uint64_t records_decoded = 0;      ///< flow records parsed
  std::uint64_t records_dispatched = 0;   ///< accepted by the dispatcher
  std::uint64_t records_shed = 0;         ///< refused by the dispatcher (kDrop)
  std::uint64_t sequence_gaps = 0;        ///< export-sequence gaps (lost upstream)
  std::uint64_t socket_errors = 0;        ///< hard recv/poll failures on a socket
};

class IngestPipeline {
 public:
  /// Hands one decoded batch to the next stage; returns how many items it
  /// accepted (ShardedRuntime::submit_batch's contract). Called from the
  /// decode thread only -- a pipeline is a valid single dispatcher.
  using DispatchFn = std::function<std::size_t(std::span<const runtime::FlowItem>)>;

  /// Binds the sockets and spawns the receiver + decode threads.
  static util::Result<std::unique_ptr<IngestPipeline>> create(IngestConfig config,
                                                              DispatchFn dispatch);
  /// Convenience: dispatch straight into a runtime (not owned; must
  /// outlive the pipeline).
  static util::Result<std::unique_ptr<IngestPipeline>> create(
      IngestConfig config, runtime::ShardedRuntime& runtime);

  /// stop()s.
  ~IngestPipeline();
  IngestPipeline(const IngestPipeline&) = delete;
  IngestPipeline& operator=(const IngestPipeline&) = delete;

  [[nodiscard]] std::vector<std::uint16_t> ports() const;
  [[nodiscard]] std::size_t receiver_count() const { return producers_.size(); }

  /// Phase 1 of the two-phase drain: blocks until every datagram the
  /// receivers had accepted when the call was made is decoded and its
  /// records handed to the dispatcher (or counted dropped). Does not stop
  /// the pipeline and does not flush the downstream runtime -- that is
  /// phase 2, the caller's (see quiesce()). Single-owner like quiesce():
  /// do not call concurrently with quiesce() from another thread.
  void drain() const;

  /// drain(), then parks the decode stage, runs `fn` with no dispatch in
  /// flight, and resumes. This is how a caller safely runs downstream
  /// single-dispatcher operations (ShardedRuntime::flush()/snapshot())
  /// while the pipeline is live: the decode thread *is* the dispatcher,
  /// so it must be provably idle for the duration. Receivers keep
  /// accepting traffic into the arenas meanwhile (bounded by them).
  /// Serialized against concurrent quiesce() and stop() callers, so a
  /// destructor racing a metrics/flush quiesce on another thread cannot
  /// strand the waiter; after stop() it degenerates to running `fn`.
  /// `fn` must not call back into stop()/quiesce() on this pipeline.
  void quiesce(const std::function<void()>& fn) const;

  /// Drains whatever the receivers accepted, then stops and joins all
  /// threads. Idempotent, and serialized against quiesce() (a stop cannot
  /// interleave with a quiesce in flight). The downstream runtime is
  /// untouched -- flush or shut it down afterwards (two-phase shutdown).
  void stop();

  [[nodiscard]] IngestStats stats() const;

  /// The pipeline-private registry view (the `this`-capturing pull gauges
  /// plus, when no external registry was configured, the value counters).
  /// Callers with an external registry merge this with their own snapshot
  /// (obs::merge_snapshots), the same shape as ShardedRuntime::snapshot().
  [[nodiscard]] obs::RegistrySnapshot snapshot() const {
    return owned_registry_->snapshot();
  }

 private:
  /// One queued datagram: an arena slot plus what recv told us about it.
  struct DatagramRef {
    std::uint32_t slot = 0;
    std::uint32_t bytes = 0;
    std::uint16_t socket = 0;  ///< index into sockets_ (port + ingress id)
    /// Socket-receive stamp for the trace journey (one clock read per
    /// recv batch); 0 when tracing is off.
    std::uint64_t recv_ns = 0;
  };

  /// One bound socket and its attribution.
  struct Socket {
    flowtools::UdpReceiver receiver;
    core::IngressId ingress = 0;
    std::uint32_t last_rxq_ovfl = 0;  ///< previous SO_RXQ_OVFL reading
  };

  /// One receiver thread: arena + both rings + its share of the sockets.
  struct Producer {
    std::vector<std::size_t> sockets;  ///< indices into sockets_
    std::unique_ptr<std::uint8_t[]> arena;
    runtime::SpscRing<DatagramRef> ring;       ///< receiver -> decode
    runtime::SpscRing<std::uint32_t> free_ring;  ///< decode -> receiver
    std::thread thread;
    /// Datagrams pushed into `ring` (receiver-side, release-published).
    std::atomic<std::uint64_t> received{0};
    /// Datagrams fully handled by the decode stage: decoded + dispatched,
    /// malformed, or discarded under kDropOldest (decode-side).
    std::atomic<std::uint64_t> handled{0};
    /// Outstanding drop-oldest requests from an overloaded receiver.
    std::atomic<std::uint64_t> shed_requests{0};

    Producer(std::size_t slots, std::size_t slot_bytes)
        : arena(std::make_unique<std::uint8_t[]>(slots * slot_bytes)),
          ring(slots),
          free_ring(slots) {}
  };

  IngestPipeline(IngestConfig config, DispatchFn dispatch);

  void receiver_main(Producer& producer);
  void decode_main();
  /// Blocks until `producer` has free slots again, per the overload
  /// policy. Returns false when stopping.
  bool wait_for_slots(Producer& producer, std::vector<std::uint32_t>& free_slots);
  void reclaim_slots(Producer& producer, std::vector<std::uint32_t>& free_slots);
  std::size_t receive_batch(Producer& producer, Socket& socket,
                            std::vector<std::uint32_t>& free_slots);
  void wake_decode() const;
  void read_kernel_drops(Socket& socket);

  IngestConfig config_;
  DispatchFn dispatch_;
  std::vector<Socket> sockets_;
  std::vector<std::unique_ptr<Producer>> producers_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> decode_stopping_{false};
  bool stopped_ = false;
  std::thread decode_thread_;

  // Decode-stage park/wake + quiesce handshake (mutable: synchronization
  // state, used by const quiesce()).
  mutable std::mutex decode_wake_mutex_;
  mutable std::condition_variable decode_wake_cv_;
  mutable std::atomic<bool> decode_parked_{false};
  mutable std::atomic<bool> pause_requested_{false};
  mutable std::atomic<bool> paused_{false};
  mutable std::mutex quiesce_mutex_;  ///< serializes quiesce() and stop() callers

  /// Same dangling-callback discipline as ShardedRuntime: `this`-capturing
  /// pull gauges live here; plain value counters go to config_.registry
  /// when provided.
  std::unique_ptr<obs::Registry> owned_registry_;
  obs::Registry* registry_;  ///< external or owned_registry_.get(); never null
  obs::Counter* datagrams_;
  obs::Counter* decoded_;
  obs::Counter* malformed_;
  obs::Counter* truncated_;
  obs::Counter* dropped_oldest_;
  obs::Counter* kernel_drops_;
  obs::Counter* records_;
  obs::Counter* dispatched_;
  obs::Counter* shed_;
  obs::Counter* sequence_gaps_;
  obs::Counter* socket_errors_;
};

}  // namespace infilter::ingest

// Threaded live ingest: the receiving half of Figure 9 at line rate.
//
// "A NetFlow enabled router will periodically send datagrams to a
// pre-designated receiver node" -- flowtools::LiveCollector models that
// node with one polling thread that allocates 64 KiB per datagram and
// interleaves receive, decode, and detection. This subsystem is the
// production-shaped replacement: R receiver threads each run the whole
// receive -> decode -> dispatch lane to completion on their own core, and
// the hot path runs without a single steady-state heap allocation.
//
//   socket(s) --recvmmsg--> [receiver thread r]*R --decode inline--> submit_batch(items, r)
//                             pooled slot arena     netflow v5 parse,    ShardedRuntime's
//                             (slots reused per     stream accounting,   per-(producer, shard)
//                              receive batch)       FlowItem batching    SPSC rings
//
// Stage contract:
//   * Each receiver thread owns a pooled buffer arena, its share of the
//     sockets (distributed round-robin), and one downstream producer
//     slot. It recvmmsg()s a batch of export datagrams into arena slots,
//     parses them in place with the allocation-free netflow::decode_into(),
//     tracks per-(engine, ingress) export-sequence gaps, and hands the
//     records straight to the dispatch function as that producer -- no
//     hand-off ring, no dedicated decode/dispatcher thread, no cross-core
//     hop between the socket and the shard rings. Slots recycle within
//     the batch (records are copied out at decode), so the arena never
//     runs dry and at most recv_batch slots are ever in flight.
//   * Between receive batches the receiver publishes an idle beacon
//     (ShardedRuntime::producer_idle) so its producer slot never holds
//     back the other receivers' flows in the runtime's tag-order merge;
//     the poll timeout bounds the beacon's staleness.
//
// Overload: the pipeline itself no longer queues, so overload lives at
// its two edges. Upstream, a receiver that cannot keep up (or one blocked
// by a kBlock runtime) backs traffic into the kernel socket queue, whose
// drops stay visible through the SO_RXQ_OVFL readout
// (infilter_ingest_kernel_drops_total). Downstream, a kDrop runtime
// refuses records at submit_batch, counted as records_shed. The
// OverloadPolicy knob is retained for configuration compatibility but
// selects nothing anymore -- there is no internal queue left to govern --
// and dropped_oldest stays at zero.
//
// Drain/shutdown is two-phase, mirroring ShardedRuntime::flush():
//   phase 1  drain(): every datagram the receivers accepted is decoded
//            and its records handed to the dispatcher;
//   phase 2  the caller flushes the runtime (quiesce() parks every
//            receiver with no dispatch in flight while the caller runs
//            flush or snapshot; the kernel socket buffers absorb traffic
//            for the duration).
//
// Ordering semantics: each socket's datagram stream is decoded by one
// fixed receiver in kernel receive order, so single-socket verdict
// streams are bit-identical to the serial LiveCollector path (pinned by
// tests/test_ingest.cpp). Across sockets the interleaving is whatever the
// threads make it -- the same nondeterminism a serial collector already
// has across ports -- and the runtime's sequence tags capture whichever
// interleaving was realized.
//
// CPU placement: with a non-empty cpu_set, receiver r pins itself to
// cpu_set[(cpu_slot_offset + r) % size] (runtime/affinity.h). app/node
// gives receivers the first slots and offsets the runtime's workers past
// them, so one --cpu-set list lays out the whole pipeline. Failures are
// counted, never fatal.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "core/eia.h"
#include "flowtools/udp.h"
#include "obs/metrics.h"
#include "runtime/runtime.h"
#include "util/result.h"

namespace infilter::ingest {

/// Retained for configuration compatibility. Receiver-direct dispatch has
/// no internal queue, so the policy selects nothing: overload is governed
/// by the kernel socket buffer upstream and the dispatcher's own
/// backpressure policy downstream.
enum class OverloadPolicy : std::uint8_t {
  kBlock,       ///< (vestigial) lossless; kernel queue absorbs
  kDropOldest,  ///< (vestigial) pair with a kDrop runtime to shed instead
};

struct IngestConfig {
  /// Collector UDP ports, one socket each (0 entries bind ephemeral
  /// ports; read the assignments from ports()).
  std::vector<std::uint16_t> ports;
  /// Ingress id attributed to each port's traffic, parallel to `ports`.
  /// Empty = use the bound port number itself (the LiveCollector
  /// convention). An explicit mapping keeps ingress ids stable when
  /// binding ephemeral ports.
  std::vector<core::IngressId> ingress_ids;
  /// Receiver threads. Each is a full receive+decode+dispatch lane and
  /// maps to downstream producer slot r; sockets are distributed
  /// round-robin; clamped to [1, ports.size()].
  int receiver_threads = 1;
  /// Pooled datagram buffers per receiver thread. Only recv_batch slots
  /// are ever in flight at once (slots recycle within a batch), so this
  /// is clamped up to recv_batch and mostly a compatibility knob.
  std::size_t arena_slots = 1024;
  /// Bytes per buffer slot. A v5 export datagram is at most 1464 bytes;
  /// longer datagrams are counted truncated and dropped before decode.
  std::size_t slot_bytes = 2048;
  /// Datagrams per recvmmsg() batch.
  std::size_t recv_batch = 32;
  /// FlowItems accumulated before a dispatch call.
  std::size_t dispatch_batch = 256;
  /// Kernel receive buffer per socket (SO_RCVBUF; 0 = system default).
  /// This is the only queue in front of the receivers -- all slack lives
  /// here.
  int socket_rcvbuf = 1 << 20;
  OverloadPolicy overload = OverloadPolicy::kBlock;
  /// CPU placement (runtime/affinity.h): empty = unpinned. Receiver r
  /// pins to cpu_set[(cpu_slot_offset + r) % size].
  std::vector<int> cpu_set;
  std::size_t cpu_slot_offset = 0;
  /// Value metrics (datagram/malformed/drop counters) land here; null = a
  /// pipeline-private registry. Pull gauges that call back into the
  /// pipeline always stay private, same discipline as RuntimeConfig.
  obs::Registry* registry = nullptr;
  /// Flight recorder (obs/trace.h), not owned; null = no tracing. When
  /// set, receiver threads register liveness lanes, stamp each sampled
  /// record's socket-receive time while tracer->enabled(), and emit the
  /// receive->dispatch kDecode span the downstream runtime's spans then
  /// tile against. Use the same tracer as the runtime's
  /// RuntimeConfig::tracer so one export holds the whole pipeline. Must
  /// outlive the pipeline.
  obs::Tracer* tracer = nullptr;
};

/// Monotone pipeline accounting. Every received datagram is decoded or
/// malformed (datagrams_received == datagrams_decoded +
/// datagrams_malformed once drained); truncated ones are counted and
/// recycled receiver-side on top.
struct IngestStats {
  std::uint64_t datagrams_received = 0;   ///< accepted into the pipeline
  std::uint64_t datagrams_decoded = 0;    ///< parsed as NetFlow v5
  std::uint64_t datagrams_malformed = 0;  ///< failed v5 parse (incl. zero-length)
  std::uint64_t datagrams_truncated = 0;  ///< longer than slot_bytes, dropped
  std::uint64_t dropped_oldest = 0;       ///< always 0 (kept for compatibility)
  std::uint64_t kernel_drops = 0;         ///< SO_RXQ_OVFL readout (socket queue)
  std::uint64_t records_decoded = 0;      ///< flow records parsed
  std::uint64_t records_dispatched = 0;   ///< accepted by the dispatcher
  std::uint64_t records_shed = 0;         ///< refused by the dispatcher (kDrop)
  std::uint64_t sequence_gaps = 0;        ///< export-sequence gaps (lost upstream)
  std::uint64_t socket_errors = 0;        ///< hard recv/poll failures on a socket
  std::uint64_t pinned_threads = 0;       ///< receivers pinned from cpu_set
  std::uint64_t affinity_failures = 0;    ///< pin attempts the kernel refused
};

class IngestPipeline {
 public:
  /// Hands one decoded batch to the next stage as `producer` (the
  /// receiver index, < receiver_count()); returns how many items it
  /// accepted (ShardedRuntime::submit_batch's contract). Each producer
  /// index is called from its one receiver thread only; different indices
  /// are called concurrently.
  using DispatchFn = std::function<std::size_t(
      std::span<const runtime::FlowItem> items, int producer)>;
  /// Idle beacon: called by receiver `producer`'s thread between receive
  /// batches, with no dispatch in flight on that producer
  /// (ShardedRuntime::producer_idle's contract). May be empty.
  using IdleFn = std::function<void(int producer)>;

  /// Binds the sockets and spawns the receiver threads.
  static util::Result<std::unique_ptr<IngestPipeline>> create(IngestConfig config,
                                                              DispatchFn dispatch,
                                                              IdleFn idle = nullptr);
  /// Convenience: dispatch straight into a runtime (not owned; must
  /// outlive the pipeline). The runtime must have at least as many
  /// producer slots as the pipeline has receiver threads.
  static util::Result<std::unique_ptr<IngestPipeline>> create(
      IngestConfig config, runtime::ShardedRuntime& runtime);

  /// stop()s.
  ~IngestPipeline();
  IngestPipeline(const IngestPipeline&) = delete;
  IngestPipeline& operator=(const IngestPipeline&) = delete;

  [[nodiscard]] std::vector<std::uint16_t> ports() const;
  [[nodiscard]] std::size_t receiver_count() const { return producers_.size(); }

  /// Phase 1 of the two-phase drain: blocks until every datagram the
  /// receivers had accepted when the call was made is decoded and its
  /// records handed to the dispatcher (or counted shed). A receiver is
  /// between batches exactly when it has dispatched everything it
  /// accepted, so this only ever waits out an in-flight batch. Does not
  /// stop the pipeline and does not flush the downstream runtime -- that
  /// is phase 2, the caller's (see quiesce()). Single-owner like
  /// quiesce(): do not call concurrently with quiesce() from another
  /// thread.
  void drain() const;

  /// Parks every receiver with its current batch fully dispatched, runs
  /// `fn` with no dispatch in flight anywhere, and resumes. This is how a
  /// caller gets a quiescent view of the downstream runtime
  /// (flush()/snapshot()) with zero records mid-pipeline; the kernel
  /// socket buffers absorb traffic for the duration. Serialized against
  /// concurrent quiesce() and stop() callers, so a destructor racing a
  /// metrics/flush quiesce on another thread cannot strand the waiter;
  /// after stop() it degenerates to running `fn`. `fn` must not call back
  /// into stop()/quiesce() on this pipeline.
  void quiesce(const std::function<void()>& fn) const;

  /// Drains whatever the receivers accepted, then stops and joins all
  /// threads. Idempotent, and serialized against quiesce() (a stop cannot
  /// interleave with a quiesce in flight). The downstream runtime is
  /// untouched -- flush or shut it down afterwards (two-phase shutdown).
  void stop();

  [[nodiscard]] IngestStats stats() const;

  /// The pipeline-private registry view (the `this`-capturing pull gauges
  /// plus, when no external registry was configured, the value counters).
  /// Callers with an external registry merge this with their own snapshot
  /// (obs::merge_snapshots), the same shape as ShardedRuntime::snapshot().
  [[nodiscard]] obs::RegistrySnapshot snapshot() const {
    return owned_registry_->snapshot();
  }

 private:
  /// One received datagram awaiting inline decode: an arena slot plus
  /// what recv told us about it. Never crosses a thread.
  struct DatagramRef {
    std::uint32_t slot = 0;
    std::uint32_t bytes = 0;
    std::uint16_t socket = 0;  ///< index into sockets_ (port + ingress id)
    /// Socket-receive stamp for the trace journey (one clock read per
    /// recv batch); 0 when tracing is off.
    std::uint64_t recv_ns = 0;
  };

  /// One bound socket and its attribution.
  struct Socket {
    flowtools::UdpReceiver receiver;
    core::IngressId ingress = 0;
    std::uint32_t last_rxq_ovfl = 0;  ///< previous SO_RXQ_OVFL reading
  };

  /// One receiver lane: arena + its share of the sockets + the drain and
  /// quiesce handshakes.
  struct Producer {
    std::vector<std::size_t> sockets;  ///< indices into sockets_
    std::unique_ptr<std::uint8_t[]> arena;
    std::thread thread;
    /// Datagrams accepted off the sockets (bumped at receive).
    std::atomic<std::uint64_t> received{0};
    /// Datagrams fully handled: decoded and dispatched, or malformed.
    /// Bumped once the batch's records have been handed to the
    /// dispatcher, so received == handled means "nothing in flight".
    std::atomic<std::uint64_t> handled{0};
    /// quiesce() handshake (see quiesce()).
    std::atomic<bool> pause_requested{false};
    std::atomic<bool> paused{false};

    Producer(std::size_t slots, std::size_t slot_bytes)
        : arena(std::make_unique<std::uint8_t[]>(slots * slot_bytes)) {}
  };

  IngestPipeline(IngestConfig config, DispatchFn dispatch, IdleFn idle);

  void receiver_main(Producer& producer, std::size_t index);
  /// Receives up to recv_batch datagrams from `socket` into free arena
  /// slots, appending descriptors to `refs` (slots move from free_slots
  /// to refs; truncated ones bounce straight back). Returns how many
  /// descriptors were appended.
  std::size_t receive_batch(Producer& producer, Socket& socket,
                            std::vector<std::uint32_t>& free_slots,
                            std::vector<DatagramRef>& refs);

  IngestConfig config_;
  DispatchFn dispatch_;
  IdleFn idle_;
  std::vector<Socket> sockets_;
  std::vector<std::unique_ptr<Producer>> producers_;
  std::atomic<bool> stopping_{false};
  bool stopped_ = false;

  // Quiesce handshake (mutable: synchronization state, used by const
  // quiesce()).
  mutable std::mutex pause_mutex_;
  mutable std::condition_variable pause_cv_;
  mutable std::mutex quiesce_mutex_;  ///< serializes quiesce() and stop() callers

  /// CPU placement accounting (a hint; failures counted, never fatal).
  std::atomic<std::uint64_t> pinned_threads_{0};
  std::atomic<std::uint64_t> affinity_failures_{0};

  /// Same dangling-callback discipline as ShardedRuntime: `this`-capturing
  /// pull gauges live here; plain value counters go to config_.registry
  /// when provided.
  std::unique_ptr<obs::Registry> owned_registry_;
  obs::Registry* registry_;  ///< external or owned_registry_.get(); never null
  obs::Counter* datagrams_;
  obs::Counter* decoded_;
  obs::Counter* malformed_;
  obs::Counter* truncated_;
  obs::Counter* dropped_oldest_;
  obs::Counter* kernel_drops_;
  obs::Counter* records_;
  obs::Counter* dispatched_;
  obs::Counter* shed_;
  obs::Counter* sequence_gaps_;
  obs::Counter* socket_errors_;
};

}  // namespace infilter::ingest

// recvmmsg() is a GNU extension; ask for it before any libc header lands.
#ifndef _GNU_SOURCE
#define _GNU_SOURCE
#endif

#include "ingest/ingest.h"

#ifdef __linux__
#include <sys/socket.h>
#endif
#include <poll.h>

#include <algorithm>
#include <cassert>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <numeric>
#include <utility>

#include "runtime/affinity.h"

namespace infilter::ingest {
namespace {

/// How long drain()/quiesce() waiters sleep between progress checks.
constexpr auto kReceiverWait = std::chrono::microseconds(200);
/// Receiver poll timeout. Doubles as the idle-beacon cadence: a receiver
/// with no traffic publishes producer_idle() at most this late, which
/// bounds how long its silent producer slot can hold back the other
/// receivers' flows in the runtime's tag-order merge.
constexpr int kPollTimeoutMs = 1;

util::Error errno_error(const char* what) {
  return util::Error{std::string(what) + ": " + std::strerror(errno)};
}

}  // namespace

IngestPipeline::IngestPipeline(IngestConfig config, DispatchFn dispatch,
                               IdleFn idle)
    : config_(std::move(config)),
      dispatch_(std::move(dispatch)),
      idle_(std::move(idle)) {
  // Normalize the knobs so the threads never have to re-check them.
  if (config_.receiver_threads < 1) config_.receiver_threads = 1;
  if (config_.slot_bytes < netflow::kV5HeaderBytes) {
    config_.slot_bytes = netflow::kV5HeaderBytes;
  }
  if (config_.recv_batch < 1) config_.recv_batch = 1;
  // Decode is inline, so only one receive batch of slots is ever in
  // flight; the arena just needs to cover it.
  if (config_.arena_slots < config_.recv_batch) {
    config_.arena_slots = config_.recv_batch;
  }
  if (config_.dispatch_batch < 1) config_.dispatch_batch = 1;

  owned_registry_ = std::make_unique<obs::Registry>();
  registry_ = config_.registry != nullptr ? config_.registry : owned_registry_.get();
  datagrams_ = &registry_->counter("infilter_ingest_datagrams_total",
                                   "export datagrams accepted by a receiver thread");
  decoded_ = &registry_->counter("infilter_ingest_decoded_total",
                                 "datagrams parsed as NetFlow v5");
  malformed_ = &registry_->counter("infilter_ingest_malformed_total",
                                   "datagrams that failed the v5 parse");
  truncated_ = &registry_->counter(
      "infilter_ingest_truncated_total",
      "datagrams longer than a buffer slot, dropped before decode");
  dropped_oldest_ = &registry_->counter(
      "infilter_ingest_dropped_oldest_total",
      "always zero since receiver-direct dispatch (kept for compatibility)");
  kernel_drops_ = &registry_->counter(
      "infilter_ingest_kernel_drops_total",
      "datagrams the kernel dropped at the socket queue (SO_RXQ_OVFL)");
  records_ = &registry_->counter("infilter_ingest_records_total",
                                 "flow records decoded from export datagrams");
  dispatched_ = &registry_->counter("infilter_ingest_dispatched_total",
                                    "flow records accepted by the dispatcher");
  shed_ = &registry_->counter("infilter_ingest_shed_total",
                              "flow records the dispatcher refused (kDrop runtime)");
  sequence_gaps_ = &registry_->counter(
      "infilter_ingest_sequence_gaps_total",
      "export-sequence gaps per (engine, ingress) stream");
  socket_errors_ = &registry_->counter(
      "infilter_ingest_socket_errors_total",
      "hard receive-socket failures (recv errors and poll error events)");
  // `this`-capturing pull gauges never leave the owned registry (see
  // RuntimeConfig::registry for the dangling-callback rationale).
  owned_registry_->gauge_fn(
      "infilter_ingest_pinned_threads",
      [this] {
        return static_cast<double>(
            pinned_threads_.load(std::memory_order_relaxed));
      },
      "receiver threads pinned to a cpu from IngestConfig::cpu_set");
  owned_registry_->counter_fn(
      "infilter_ingest_affinity_failures_total",
      [this] { return affinity_failures_.load(std::memory_order_relaxed); },
      "receiver pin attempts the kernel refused (placement is a hint)");
}

util::Result<std::unique_ptr<IngestPipeline>> IngestPipeline::create(
    IngestConfig config, DispatchFn dispatch, IdleFn idle) {
  if (config.ports.empty()) return util::Error{"ingest: no collector ports"};
  if (!config.ingress_ids.empty() &&
      config.ingress_ids.size() != config.ports.size()) {
    return util::Error{"ingest: ingress_ids must be empty or parallel to ports"};
  }
  auto pipeline = std::unique_ptr<IngestPipeline>(new IngestPipeline(
      std::move(config), std::move(dispatch), std::move(idle)));
  auto& cfg = pipeline->config_;

  pipeline->sockets_.reserve(cfg.ports.size());
  for (std::size_t i = 0; i < cfg.ports.size(); ++i) {
    auto receiver = flowtools::UdpReceiver::bind(cfg.ports[i], cfg.socket_rcvbuf);
    if (!receiver) return receiver.error();
#if defined(__linux__) && defined(SO_RXQ_OVFL)
    // Ask the kernel to report its own receive-queue drops with every
    // datagram; without this the pipeline's loss accounting is blind to
    // overload that never reaches userspace.
    const int one = 1;
    if (::setsockopt(receiver->fd(), SOL_SOCKET, SO_RXQ_OVFL, &one, sizeof one) < 0) {
      return errno_error("setsockopt(SO_RXQ_OVFL)");
    }
#endif
    const auto ingress = cfg.ingress_ids.empty()
                             ? static_cast<core::IngressId>(receiver->port())
                             : cfg.ingress_ids[i];
    pipeline->sockets_.push_back(Socket{std::move(*receiver), ingress});
  }

  const auto producers = std::min<std::size_t>(
      static_cast<std::size_t>(cfg.receiver_threads), pipeline->sockets_.size());
  for (std::size_t p = 0; p < producers; ++p) {
    auto producer = std::make_unique<Producer>(cfg.arena_slots, cfg.slot_bytes);
    for (std::size_t s = p; s < pipeline->sockets_.size(); s += producers) {
      producer->sockets.push_back(s);
    }
    pipeline->producers_.push_back(std::move(producer));
  }

  for (std::size_t p = 0; p < pipeline->producers_.size(); ++p) {
    auto* producer = pipeline->producers_[p].get();
    producer->thread = std::thread(
        [raw = pipeline.get(), producer, p] { raw->receiver_main(*producer, p); });
  }
  return pipeline;
}

util::Result<std::unique_ptr<IngestPipeline>> IngestPipeline::create(
    IngestConfig config, runtime::ShardedRuntime& runtime) {
  // Each receiver dispatches as its own producer slot; validate the fit
  // before any thread spawns with an out-of-range index.
  const auto receivers = std::min<std::size_t>(
      static_cast<std::size_t>(std::max(config.receiver_threads, 1)),
      config.ports.size());
  if (receivers > runtime.producer_count()) {
    return util::Error{
        "ingest: runtime has fewer producer slots than receiver threads "
        "(set RuntimeConfig::producers >= receiver_threads)"};
  }
  return create(
      std::move(config),
      [&runtime](std::span<const runtime::FlowItem> items, int producer) {
        return runtime.submit_batch(items, producer);
      },
      [&runtime](int producer) { runtime.producer_idle(producer); });
}

IngestPipeline::~IngestPipeline() { stop(); }

std::vector<std::uint16_t> IngestPipeline::ports() const {
  std::vector<std::uint16_t> out;
  out.reserve(sockets_.size());
  for (const auto& socket : sockets_) out.push_back(socket.receiver.port());
  return out;
}

// ---------------------------------------------------------------------------
// Receiver lane (receive -> decode -> dispatch, run to completion)
// ---------------------------------------------------------------------------

std::size_t IngestPipeline::receive_batch(Producer& producer, Socket& socket,
                                          std::vector<std::uint32_t>& free_slots,
                                          std::vector<DatagramRef>& refs) {
  const std::size_t want = std::min(config_.recv_batch, free_slots.size());
  if (want == 0) return 0;
  // Journey origin: one clock read per receive batch, only while tracing.
  // Every datagram in the batch shares the stamp -- they left the kernel
  // in one recvmmsg, so their true receive times differ by less than the
  // decomposition cares about.
  const std::uint64_t recv_ns =
      config_.tracer != nullptr && config_.tracer->enabled()
          ? obs::Tracer::now_ns()
          : 0;
  const std::size_t slot_bytes = config_.slot_bytes;
  const auto socket_index =
      static_cast<std::uint16_t>(&socket - sockets_.data());
  std::size_t appended = 0;

#ifdef __linux__
  if (want > 1) {
    // Ancillary-data buffers must be cmsghdr-aligned; the union forces it.
    union ControlBuf {
      ::cmsghdr align;
      char bytes[CMSG_SPACE(sizeof(std::uint32_t)) + 32];
    };
    // One-time per-thread working set; steady state allocates nothing.
    thread_local std::vector<::mmsghdr> msgs;
    thread_local std::vector<::iovec> iovecs;
    thread_local std::vector<ControlBuf> controls;
    msgs.resize(want);
    iovecs.resize(want);
    controls.resize(want);
    for (std::size_t i = 0; i < want; ++i) {
      const std::uint32_t slot = free_slots[free_slots.size() - 1 - i];
      iovecs[i] = {producer.arena.get() + std::size_t{slot} * slot_bytes, slot_bytes};
      std::memset(&msgs[i].msg_hdr, 0, sizeof msgs[i].msg_hdr);
      msgs[i].msg_hdr.msg_iov = &iovecs[i];
      msgs[i].msg_hdr.msg_iovlen = 1;
      msgs[i].msg_hdr.msg_control = controls[i].bytes;
      msgs[i].msg_hdr.msg_controllen = sizeof controls[i].bytes;
      msgs[i].msg_len = 0;
    }
    int received;
    do {
      // MSG_TRUNC makes msg_len report the wire length even when the slot
      // was too small -- same contract as UdpReceiver::receive_into().
      received = ::recvmmsg(socket.receiver.fd(), msgs.data(),
                            static_cast<unsigned>(want), MSG_TRUNC, nullptr);
    } while (received < 0 && errno == EINTR);
    if (received < 0) {
      // EAGAIN is just an empty socket; anything else is a real failure
      // that must not masquerade as "nothing waiting".
      if (errno != EAGAIN && errno != EWOULDBLOCK) socket_errors_->inc();
      return 0;
    }
    if (received == 0) return 0;

    // iovec i was bound to free_slots[size-1-i] above, and the pop loop
    // below rebuilds that pairing by popping the back once per message.
    // Truncated slots therefore park here and rejoin free_slots only
    // after the loop: recycling one mid-loop would hand message i+1 the
    // truncated slot instead of the slot its bytes landed in, skewing
    // every later descriptor in the batch.
    thread_local std::vector<std::uint32_t> truncated_slots;
    truncated_slots.clear();
    for (int i = 0; i < received; ++i) {
      const std::uint32_t slot = free_slots.back();
      free_slots.pop_back();
      // SO_RXQ_OVFL rides along as ancillary data: a cumulative per-socket
      // drop count whose delta is the kernel loss since the last datagram.
      for (auto* cmsg = CMSG_FIRSTHDR(&msgs[i].msg_hdr); cmsg != nullptr;
           cmsg = CMSG_NXTHDR(&msgs[i].msg_hdr, cmsg)) {
#ifdef SO_RXQ_OVFL
        if (cmsg->cmsg_level == SOL_SOCKET && cmsg->cmsg_type == SO_RXQ_OVFL) {
          std::uint32_t total = 0;
          std::memcpy(&total, CMSG_DATA(cmsg), sizeof total);
          if (total > socket.last_rxq_ovfl) {
            kernel_drops_->inc(total - socket.last_rxq_ovfl);
          }
          socket.last_rxq_ovfl = total;
        }
#endif
      }
      if (msgs[i].msg_len > slot_bytes) {
        truncated_->inc();
        truncated_slots.push_back(slot);  // nothing usable; recycle after the loop
        continue;
      }
      refs.push_back(DatagramRef{slot, msgs[i].msg_len, socket_index, recv_ns});
      ++appended;
    }
    free_slots.insert(free_slots.end(), truncated_slots.begin(),
                      truncated_slots.end());
  } else
#endif  // __linux__
  {
    // Portable single-datagram path (also the want == 1 fast path): the
    // same allocation-free receive_into() the serial LiveCollector uses.
    const std::uint32_t slot = free_slots.back();
    auto received = socket.receiver.receive_into(
        std::span(producer.arena.get() + std::size_t{slot} * slot_bytes, slot_bytes));
    if (!received) {
      // receive_into() retries EINTR and maps EAGAIN to "no datagram", so
      // an error here is a genuine socket failure.
      socket_errors_->inc();
      return 0;
    }
    if (!received->datagram) return 0;
    free_slots.pop_back();
    if (received->truncated()) {
      truncated_->inc();
      free_slots.push_back(slot);
    } else {
      refs.push_back(DatagramRef{slot, static_cast<std::uint32_t>(received->bytes),
                                 socket_index, recv_ns});
      ++appended;
    }
  }

  if (appended > 0) {
    producer.received.fetch_add(appended, std::memory_order_release);
    datagrams_->inc(appended);
  }
  return appended;
}

void IngestPipeline::receiver_main(Producer& producer, std::size_t index) {
  if (!config_.cpu_set.empty()) {
    if (runtime::pin_current_thread(config_.cpu_set,
                                    config_.cpu_slot_offset + index)) {
      pinned_threads_.fetch_add(1, std::memory_order_relaxed);
    } else {
      affinity_failures_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  // The receiver's liveness lane. No queue probe: its input queue is the
  // kernel socket buffer, which SO_RXQ_OVFL already accounts for.
  obs::Tracer* const tracer = config_.tracer;
  obs::ThreadLane* lane = nullptr;
  if (tracer != nullptr) {
    lane = tracer->register_thread("recv-" + std::to_string(index), "receiver");
  }
  // The receiver owns every arena slot; decode is inline and copies
  // records out, so slots recycle within the batch and the pool can never
  // run dry.
  std::vector<std::uint32_t> free_slots(config_.arena_slots);
  std::iota(free_slots.begin(), free_slots.end(), 0U);

  std::vector<pollfd> fds;
  fds.reserve(producer.sockets.size());
  for (const auto socket_index : producer.sockets) {
    fds.push_back(pollfd{sockets_[socket_index].receiver.fd(), POLLIN, 0});
  }

  // Per-lane decode state, all thread-private. Sized once; the whole
  // receive/decode/dispatch path is allocation-free at steady state.
  std::vector<DatagramRef> refs;
  refs.reserve(config_.recv_batch);
  std::vector<netflow::V5Record> records(netflow::kV5MaxRecords);
  std::vector<runtime::FlowItem> items;
  items.reserve(config_.dispatch_batch + netflow::kV5MaxRecords);
  // (engine_id << 16 | ingress) -> next expected flow_sequence, mirroring
  // FlowCapture's per-stream gap accounting. Receiver-private and still
  // stream-consistent: a socket maps to one receiver for the pipeline's
  // life, so every datagram of a stream meets the same state.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> sequence_state;
  // Receiver-local tag sequence, disjoint across receivers via the index
  // in the top bits. Receiver 0 keeps plain 0..n-1 so single-receiver
  // callers can join tags against their send order (and trace sampling,
  // tag % 2^k, behaves identically -- 2^48 is a multiple of any sampling
  // modulus the tracer uses).
  std::uint64_t next_tag = index == 0 ? 0 : std::uint64_t{index} << 48;

  // Hand the accumulated FlowItems to the dispatcher as this producer.
  // Sampled records carry recv_ns with their decode span still open;
  // close it here ([socket receive, dispatch) on this lane) and advance
  // hop_ns so the runtime continues the journey at kQueueShard.
  const auto flush = [&] {
    if (items.empty()) return;
    if (lane != nullptr) {
      std::uint64_t t_dispatch = 0;
      for (auto& item : items) {
        if (item.recv_ns == 0) continue;
        if (t_dispatch == 0) t_dispatch = obs::Tracer::now_ns();
        lane->emit(obs::SpanKind::kDecode, item.recv_ns,
                   t_dispatch - item.recv_ns, item.tag);
        item.hop_ns = t_dispatch;
      }
    }
    const std::size_t accepted =
        dispatch_ ? dispatch_(std::span<const runtime::FlowItem>(items),
                              static_cast<int>(index))
                  : items.size();
    dispatched_->inc(accepted);
    shed_->inc(items.size() - accepted);
    items.clear();
  };

  // Decode and dispatch one receive batch, then recycle its slots and
  // publish completion (`handled`): a receiver between batches has, by
  // construction, dispatched everything it accepted.
  const auto process_batch = [&] {
    const bool tracing = lane != nullptr && tracer->enabled();
    for (const auto& ref : refs) {
      const std::uint8_t* base =
          producer.arena.get() + std::size_t{ref.slot} * config_.slot_bytes;
      netflow::V5Header header;
      std::size_t count = 0;
      const auto status = netflow::decode_into(std::span(base, ref.bytes), header,
                                               std::span(records), count);
      // Records are copied out below; the slot can go straight back.
      free_slots.push_back(ref.slot);
      if (status != netflow::DecodeStatus::kOk) {
        malformed_->inc();
        continue;
      }
      decoded_->inc();
      records_->inc(count);

      const auto ingress = sockets_[ref.socket].ingress;
      const std::uint32_t stream =
          (std::uint32_t{header.engine_id} << 16) | ingress;
      auto state = std::find_if(sequence_state.begin(), sequence_state.end(),
                                [stream](const auto& s) { return s.first == stream; });
      if (state == sequence_state.end()) {
        sequence_state.emplace_back(stream, header.flow_sequence);
        state = std::prev(sequence_state.end());
      } else {
        // The sequence space wraps at 2^32: a modular (int32) delta
        // counts forward gaps across the wrap, while a large backward
        // jump (exporter restart) rebases without a bogus gap.
        const auto delta =
            static_cast<std::int32_t>(header.flow_sequence - state->second);
        if (delta > 0) sequence_gaps_->inc(static_cast<std::uint64_t>(delta));
      }
      state->second = header.flow_sequence + static_cast<std::uint32_t>(count);

      for (std::size_t r = 0; r < count; ++r) {
        runtime::FlowItem item{records[r], ingress, records[r].last,
                               next_tag++, 0};
        if (tracing && ref.recv_ns != 0 && tracer->sampled(item.tag)) {
          // Journey origin: the datagram's socket-receive stamp. hop_ns
          // stays at the origin until flush() closes the decode span.
          item.recv_ns = ref.recv_ns;
          item.hop_ns = ref.recv_ns;
        }
        items.push_back(item);
      }
      if (items.size() >= config_.dispatch_batch) flush();
    }
    flush();
    producer.handled.fetch_add(refs.size(), std::memory_order_release);
    refs.clear();
  };

  while (!stopping_.load(std::memory_order_acquire)) {
    if (producer.pause_requested.load(std::memory_order_acquire)) {
      // quiesce(): we only get here between batches, so everything this
      // receiver accepted has been dispatched; park until released.
      if (lane != nullptr) lane->set_state(obs::ThreadState::kBlocked);
      std::unique_lock lock(pause_mutex_);
      producer.paused.store(true, std::memory_order_release);
      pause_cv_.notify_all();
      pause_cv_.wait(lock, [&] {
        return !producer.pause_requested.load(std::memory_order_acquire) ||
               stopping_.load(std::memory_order_acquire);
      });
      producer.paused.store(false, std::memory_order_release);
      continue;
    }

    int ready;
    do {
      if (lane != nullptr) lane->set_state(obs::ThreadState::kIdle);
      ready = ::poll(fds.data(), fds.size(), kPollTimeoutMs);
    } while (ready < 0 && errno == EINTR);
    if (ready > 0) {
      if (lane != nullptr) lane->set_state(obs::ThreadState::kBusy);
      for (std::size_t i = 0; i < fds.size(); ++i) {
        const auto revents = fds[i].revents;
        if ((revents & POLLNVAL) != 0) {
          // The fd is invalid as far as poll is concerned; receiving
          // cannot clear that, so all we can do is surface it.
          socket_errors_->inc();
          continue;
        }
        // POLLERR enters the drain loop too: the recv attempt both counts
        // the pending socket error and clears it, so a dead collector
        // socket shows up in the metric instead of a silent spin.
        if ((revents & (POLLIN | POLLERR)) == 0) continue;
        auto& socket = sockets_[producer.sockets[i]];
        // Drain this socket; one failing/empty socket never starves the
        // rest.
        while (!stopping_.load(std::memory_order_acquire)) {
          const std::size_t got = receive_batch(producer, socket, free_slots, refs);
          if (got == 0) break;
          if (lane != nullptr) lane->heartbeat(got);
          process_batch();
        }
      }
    }
    // Idle beacon: nothing of ours is in flight here, so tell the
    // downstream merge this producer has published everything. Cheap
    // enough to run every cycle; essential on the quiet cycles.
    if (idle_) idle_(static_cast<int>(index));
  }
  if (lane != nullptr) lane->retire();
}

// ---------------------------------------------------------------------------
// Drain / quiesce / stop
// ---------------------------------------------------------------------------

void IngestPipeline::drain() const {
  // Per-receiver sequential wait, deliberately allocation-free: drain()
  // sits inside the bench's steady-state heap probe. Each target is read
  // at or after the call started, so the contract ("everything accepted
  // when the call was made") holds receiver by receiver. A receiver only
  // lags while inside process_batch(), so each wait is one batch long at
  // most.
  for (const auto& producer : producers_) {
    const auto target = producer->received.load(std::memory_order_acquire);
    while (producer->handled.load(std::memory_order_acquire) < target) {
      std::this_thread::sleep_for(kReceiverWait);
    }
  }
}

void IngestPipeline::quiesce(const std::function<void()>& fn) const {
  std::lock_guard serialize(quiesce_mutex_);
  if (stopped_) {
    // Threads are gone and every accepted datagram was dispatched; the
    // "no dispatch in flight" guarantee holds trivially.
    fn();
    return;
  }
  // Park every receiver. A receiver parks only between batches, i.e. with
  // everything it accepted already dispatched, so once all are paused no
  // record is anywhere between a socket and the dispatcher. Traffic keeps
  // landing in the kernel socket buffers meanwhile.
  {
    std::unique_lock lock(pause_mutex_);
    for (const auto& producer : producers_) {
      producer->pause_requested.store(true, std::memory_order_release);
    }
    pause_cv_.notify_all();
    pause_cv_.wait(lock, [&] {
      return std::all_of(producers_.begin(), producers_.end(),
                         [](const auto& producer) {
                           return producer->paused.load(std::memory_order_acquire);
                         });
    });
  }
  fn();
  {
    std::lock_guard lock(pause_mutex_);
    for (const auto& producer : producers_) {
      producer->pause_requested.store(false, std::memory_order_release);
    }
    pause_cv_.notify_all();
  }
}

void IngestPipeline::stop() {
  // Serialized with quiesce(): a stop interleaving with a quiesce in
  // flight could strand the quiesce waiter (receivers exit without ever
  // setting paused). Holding the quiesce mutex for the whole teardown
  // makes the two strictly ordered (it also makes stopped_ reads/writes
  // race-free across the pair).
  std::lock_guard serialize(quiesce_mutex_);
  if (stopped_) return;
  stopping_.store(true, std::memory_order_release);
  {
    // Release any receiver parked in a pause (none can be -- quiesce()
    // holds the mutex we hold -- but the notify is free belt and braces).
    std::lock_guard lock(pause_mutex_);
    pause_cv_.notify_all();
  }
  for (auto& producer : producers_) {
    if (producer->thread.joinable()) producer->thread.join();
  }
  // A receiver finishes its in-flight batch before exiting, so received ==
  // handled already; the drain documents the invariant more than it waits.
  drain();
  stopped_ = true;
}

IngestStats IngestPipeline::stats() const {
  IngestStats stats;
  for (const auto& producer : producers_) {
    stats.datagrams_received += producer->received.load(std::memory_order_acquire);
  }
  stats.datagrams_decoded = decoded_->value();
  stats.datagrams_malformed = malformed_->value();
  stats.datagrams_truncated = truncated_->value();
  stats.dropped_oldest = dropped_oldest_->value();
  stats.kernel_drops = kernel_drops_->value();
  stats.records_decoded = records_->value();
  stats.records_dispatched = dispatched_->value();
  stats.records_shed = shed_->value();
  stats.sequence_gaps = sequence_gaps_->value();
  stats.socket_errors = socket_errors_->value();
  stats.pinned_threads = pinned_threads_.load(std::memory_order_relaxed);
  stats.affinity_failures = affinity_failures_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace infilter::ingest

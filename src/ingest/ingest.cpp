// recvmmsg() is a GNU extension; ask for it before any libc header lands.
#ifndef _GNU_SOURCE
#define _GNU_SOURCE
#endif

#include "ingest/ingest.h"

#ifdef __linux__
#include <sys/socket.h>
#endif
#include <poll.h>

#include <algorithm>
#include <cassert>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <numeric>
#include <utility>

namespace infilter::ingest {
namespace {

/// How long a receiver sleeps while waiting for the decode stage to
/// return buffers, and how long the decode stage parks when idle. Both
/// are bounded-staleness knobs, not correctness knobs: every handshake
/// also has an eager wake path.
constexpr auto kReceiverWait = std::chrono::microseconds(200);
constexpr auto kDecodePark = std::chrono::milliseconds(1);
constexpr int kPollTimeoutMs = 10;

util::Error errno_error(const char* what) {
  return util::Error{std::string(what) + ": " + std::strerror(errno)};
}

}  // namespace

IngestPipeline::IngestPipeline(IngestConfig config, DispatchFn dispatch)
    : config_(std::move(config)), dispatch_(std::move(dispatch)) {
  // Normalize the knobs so the threads never have to re-check them.
  if (config_.receiver_threads < 1) config_.receiver_threads = 1;
  if (config_.arena_slots < 2) config_.arena_slots = 2;
  if (config_.slot_bytes < netflow::kV5HeaderBytes) {
    config_.slot_bytes = netflow::kV5HeaderBytes;
  }
  if (config_.recv_batch < 1) config_.recv_batch = 1;
  config_.recv_batch = std::min(config_.recv_batch, config_.arena_slots);
  if (config_.dispatch_batch < 1) config_.dispatch_batch = 1;

  owned_registry_ = std::make_unique<obs::Registry>();
  registry_ = config_.registry != nullptr ? config_.registry : owned_registry_.get();
  datagrams_ = &registry_->counter("infilter_ingest_datagrams_total",
                                   "export datagrams accepted by a receiver thread");
  decoded_ = &registry_->counter("infilter_ingest_decoded_total",
                                 "datagrams parsed as NetFlow v5");
  malformed_ = &registry_->counter("infilter_ingest_malformed_total",
                                   "datagrams that failed the v5 parse");
  truncated_ = &registry_->counter(
      "infilter_ingest_truncated_total",
      "datagrams longer than a buffer slot, dropped before decode");
  dropped_oldest_ = &registry_->counter(
      "infilter_ingest_dropped_oldest_total",
      "queued datagrams shed under OverloadPolicy::kDropOldest");
  kernel_drops_ = &registry_->counter(
      "infilter_ingest_kernel_drops_total",
      "datagrams the kernel dropped at the socket queue (SO_RXQ_OVFL)");
  records_ = &registry_->counter("infilter_ingest_records_total",
                                 "flow records decoded from export datagrams");
  dispatched_ = &registry_->counter("infilter_ingest_dispatched_total",
                                    "flow records accepted by the dispatcher");
  shed_ = &registry_->counter("infilter_ingest_shed_total",
                              "flow records the dispatcher refused (kDrop runtime)");
  sequence_gaps_ = &registry_->counter(
      "infilter_ingest_sequence_gaps_total",
      "export-sequence gaps per (engine, ingress) stream");
  socket_errors_ = &registry_->counter(
      "infilter_ingest_socket_errors_total",
      "hard receive-socket failures (recv errors and poll error events)");
  // `this`-capturing pull gauges never leave the owned registry (see
  // RuntimeConfig::registry for the dangling-callback rationale).
  owned_registry_->gauge_fn(
      "infilter_ingest_queued",
      [this] {
        std::size_t queued = 0;
        for (const auto& producer : producers_) queued += producer->ring.size();
        return static_cast<double>(queued);
      },
      "datagrams waiting between the receivers and the decode stage");
  owned_registry_->gauge_fn(
      "infilter_ingest_free_buffers",
      [this] {
        std::size_t free_slots = 0;
        for (const auto& producer : producers_) {
          free_slots += producer->free_ring.size();
        }
        return static_cast<double>(free_slots);
      },
      "arena buffers recycled and waiting for a receiver to reclaim");
}

util::Result<std::unique_ptr<IngestPipeline>> IngestPipeline::create(
    IngestConfig config, DispatchFn dispatch) {
  if (config.ports.empty()) return util::Error{"ingest: no collector ports"};
  if (!config.ingress_ids.empty() &&
      config.ingress_ids.size() != config.ports.size()) {
    return util::Error{"ingest: ingress_ids must be empty or parallel to ports"};
  }
  auto pipeline =
      std::unique_ptr<IngestPipeline>(new IngestPipeline(std::move(config), std::move(dispatch)));
  auto& cfg = pipeline->config_;

  pipeline->sockets_.reserve(cfg.ports.size());
  for (std::size_t i = 0; i < cfg.ports.size(); ++i) {
    auto receiver = flowtools::UdpReceiver::bind(cfg.ports[i], cfg.socket_rcvbuf);
    if (!receiver) return receiver.error();
#if defined(__linux__) && defined(SO_RXQ_OVFL)
    // Ask the kernel to report its own receive-queue drops with every
    // datagram; without this the pipeline's loss accounting is blind to
    // overload that never reaches userspace.
    const int one = 1;
    if (::setsockopt(receiver->fd(), SOL_SOCKET, SO_RXQ_OVFL, &one, sizeof one) < 0) {
      return errno_error("setsockopt(SO_RXQ_OVFL)");
    }
#endif
    const auto ingress = cfg.ingress_ids.empty()
                             ? static_cast<core::IngressId>(receiver->port())
                             : cfg.ingress_ids[i];
    pipeline->sockets_.push_back(Socket{std::move(*receiver), ingress});
  }

  const auto producers = std::min<std::size_t>(
      static_cast<std::size_t>(cfg.receiver_threads), pipeline->sockets_.size());
  for (std::size_t p = 0; p < producers; ++p) {
    auto producer = std::make_unique<Producer>(cfg.arena_slots, cfg.slot_bytes);
    for (std::size_t s = p; s < pipeline->sockets_.size(); s += producers) {
      producer->sockets.push_back(s);
    }
    pipeline->producers_.push_back(std::move(producer));
  }

  pipeline->decode_thread_ = std::thread([raw = pipeline.get()] { raw->decode_main(); });
  for (auto& producer : pipeline->producers_) {
    producer->thread =
        std::thread([raw = pipeline.get(), p = producer.get()] { raw->receiver_main(*p); });
  }
  return pipeline;
}

util::Result<std::unique_ptr<IngestPipeline>> IngestPipeline::create(
    IngestConfig config, runtime::ShardedRuntime& runtime) {
  return create(std::move(config), [&runtime](std::span<const runtime::FlowItem> items) {
    return runtime.submit_batch(items);
  });
}

IngestPipeline::~IngestPipeline() { stop(); }

std::vector<std::uint16_t> IngestPipeline::ports() const {
  std::vector<std::uint16_t> out;
  out.reserve(sockets_.size());
  for (const auto& socket : sockets_) out.push_back(socket.receiver.port());
  return out;
}

// ---------------------------------------------------------------------------
// Receiver side
// ---------------------------------------------------------------------------

void IngestPipeline::reclaim_slots(Producer& producer,
                                   std::vector<std::uint32_t>& free_slots) {
  std::uint32_t slot = 0;
  while (producer.free_ring.try_pop(slot)) free_slots.push_back(slot);
}

bool IngestPipeline::wait_for_slots(Producer& producer,
                                    std::vector<std::uint32_t>& free_slots) {
  if (config_.overload == OverloadPolicy::kDropOldest) {
    // Ask the decode stage to discard the oldest queued datagrams; it
    // recycles their buffers, which the reclaim loop below picks up.
    producer.shed_requests.fetch_add(config_.recv_batch, std::memory_order_relaxed);
  }
  while (free_slots.empty()) {
    if (stopping_.load(std::memory_order_acquire)) return false;
    wake_decode();
    std::this_thread::sleep_for(kReceiverWait);
    reclaim_slots(producer, free_slots);
  }
  return true;
}

std::size_t IngestPipeline::receive_batch(Producer& producer, Socket& socket,
                                          std::vector<std::uint32_t>& free_slots) {
  const std::size_t want = std::min(config_.recv_batch, free_slots.size());
  if (want == 0) return 0;
  // Journey origin: one clock read per receive batch, only while tracing.
  // Every datagram in the batch shares the stamp -- they left the kernel
  // in one recvmmsg, so their true receive times differ by less than the
  // decomposition cares about.
  const std::uint64_t recv_ns =
      config_.tracer != nullptr && config_.tracer->enabled()
          ? obs::Tracer::now_ns()
          : 0;
  const std::size_t slot_bytes = config_.slot_bytes;
  const auto socket_index =
      static_cast<std::uint16_t>(&socket - sockets_.data());
  // One-time per-thread working set; steady state allocates nothing.
  thread_local std::vector<DatagramRef> refs;
  refs.clear();

#ifdef __linux__
  if (want > 1) {
    // Ancillary-data buffers must be cmsghdr-aligned; the union forces it.
    union ControlBuf {
      ::cmsghdr align;
      char bytes[CMSG_SPACE(sizeof(std::uint32_t)) + 32];
    };
    thread_local std::vector<::mmsghdr> msgs;
    thread_local std::vector<::iovec> iovecs;
    thread_local std::vector<ControlBuf> controls;
    msgs.resize(want);
    iovecs.resize(want);
    controls.resize(want);
    for (std::size_t i = 0; i < want; ++i) {
      const std::uint32_t slot = free_slots[free_slots.size() - 1 - i];
      iovecs[i] = {producer.arena.get() + std::size_t{slot} * slot_bytes, slot_bytes};
      std::memset(&msgs[i].msg_hdr, 0, sizeof msgs[i].msg_hdr);
      msgs[i].msg_hdr.msg_iov = &iovecs[i];
      msgs[i].msg_hdr.msg_iovlen = 1;
      msgs[i].msg_hdr.msg_control = controls[i].bytes;
      msgs[i].msg_hdr.msg_controllen = sizeof controls[i].bytes;
      msgs[i].msg_len = 0;
    }
    int received;
    do {
      // MSG_TRUNC makes msg_len report the wire length even when the slot
      // was too small -- same contract as UdpReceiver::receive_into().
      received = ::recvmmsg(socket.receiver.fd(), msgs.data(),
                            static_cast<unsigned>(want), MSG_TRUNC, nullptr);
    } while (received < 0 && errno == EINTR);
    if (received < 0) {
      // EAGAIN is just an empty socket; anything else is a real failure
      // that must not masquerade as "nothing waiting".
      if (errno != EAGAIN && errno != EWOULDBLOCK) socket_errors_->inc();
      return 0;
    }
    if (received == 0) return 0;

    // iovec i was bound to free_slots[size-1-i] above, and the pop loop
    // below rebuilds that pairing by popping the back once per message.
    // Truncated slots therefore park here and rejoin free_slots only
    // after the loop: recycling one mid-loop would hand message i+1 the
    // truncated slot instead of the slot its bytes landed in, skewing
    // every later descriptor in the batch.
    thread_local std::vector<std::uint32_t> truncated_slots;
    truncated_slots.clear();
    for (int i = 0; i < received; ++i) {
      const std::uint32_t slot = free_slots.back();
      free_slots.pop_back();
      // SO_RXQ_OVFL rides along as ancillary data: a cumulative per-socket
      // drop count whose delta is the kernel loss since the last datagram.
      for (auto* cmsg = CMSG_FIRSTHDR(&msgs[i].msg_hdr); cmsg != nullptr;
           cmsg = CMSG_NXTHDR(&msgs[i].msg_hdr, cmsg)) {
#ifdef SO_RXQ_OVFL
        if (cmsg->cmsg_level == SOL_SOCKET && cmsg->cmsg_type == SO_RXQ_OVFL) {
          std::uint32_t total = 0;
          std::memcpy(&total, CMSG_DATA(cmsg), sizeof total);
          if (total > socket.last_rxq_ovfl) {
            kernel_drops_->inc(total - socket.last_rxq_ovfl);
          }
          socket.last_rxq_ovfl = total;
        }
#endif
      }
      if (msgs[i].msg_len > slot_bytes) {
        truncated_->inc();
        truncated_slots.push_back(slot);  // nothing usable; recycle after the loop
        continue;
      }
      refs.push_back(DatagramRef{slot, msgs[i].msg_len, socket_index, recv_ns});
    }
    free_slots.insert(free_slots.end(), truncated_slots.begin(),
                      truncated_slots.end());
  } else
#endif  // __linux__
  {
    // Portable single-datagram path (also the want == 1 fast path): the
    // same allocation-free receive_into() the serial LiveCollector uses.
    const std::uint32_t slot = free_slots.back();
    auto received = socket.receiver.receive_into(
        std::span(producer.arena.get() + std::size_t{slot} * slot_bytes, slot_bytes));
    if (!received) {
      // receive_into() retries EINTR and maps EAGAIN to "no datagram", so
      // an error here is a genuine socket failure.
      socket_errors_->inc();
      return 0;
    }
    if (!received->datagram) return 0;
    free_slots.pop_back();
    if (received->truncated()) {
      truncated_->inc();
      free_slots.push_back(slot);
    } else {
      refs.push_back(DatagramRef{slot, static_cast<std::uint32_t>(received->bytes),
                                 socket_index, recv_ns});
    }
  }

  if (refs.empty()) return 0;
  // The data ring's capacity is >= arena_slots and each queued descriptor
  // holds a distinct slot, so a push of owned slots can never fail.
  [[maybe_unused]] const std::size_t pushed =
      producer.ring.try_push_batch(std::span<const DatagramRef>(refs));
  assert(pushed == refs.size());
  producer.received.fetch_add(pushed, std::memory_order_release);
  datagrams_->inc(pushed);
  wake_decode();
  return pushed;
}

void IngestPipeline::receiver_main(Producer& producer) {
  // The receiver's liveness lane. No queue probe: its input queue is the
  // kernel socket buffer, which SO_RXQ_OVFL already accounts for; the
  // kBlocked state (waiting for the decode stage to return buffers) is
  // the receiver-side stall signal.
  obs::ThreadLane* lane = nullptr;
  if (config_.tracer != nullptr) {
    std::size_t index = 0;
    while (index < producers_.size() && producers_[index].get() != &producer) {
      ++index;
    }
    lane = config_.tracer->register_thread("recv-" + std::to_string(index),
                                           "receiver");
  }
  // The producer owns every arena slot at birth.
  std::vector<std::uint32_t> free_slots(config_.arena_slots);
  std::iota(free_slots.begin(), free_slots.end(), 0U);

  std::vector<pollfd> fds;
  fds.reserve(producer.sockets.size());
  for (const auto index : producer.sockets) {
    fds.push_back(pollfd{sockets_[index].receiver.fd(), POLLIN, 0});
  }

  while (!stopping_.load(std::memory_order_acquire)) {
    reclaim_slots(producer, free_slots);
    int ready;
    do {
      if (lane != nullptr) lane->set_state(obs::ThreadState::kIdle);
      ready = ::poll(fds.data(), fds.size(), kPollTimeoutMs);
    } while (ready < 0 && errno == EINTR);
    if (ready <= 0) continue;  // timeout or transient poll failure
    if (lane != nullptr) lane->set_state(obs::ThreadState::kBusy);

    for (std::size_t i = 0; i < fds.size(); ++i) {
      const auto revents = fds[i].revents;
      if ((revents & POLLNVAL) != 0) {
        // The fd is invalid as far as poll is concerned; receiving cannot
        // clear that, so all we can do is surface it.
        socket_errors_->inc();
        continue;
      }
      // POLLERR enters the drain loop too: the recv attempt both counts
      // the pending socket error and clears it, so a dead collector
      // socket shows up in the metric instead of a silent spin.
      if ((revents & (POLLIN | POLLERR)) == 0) continue;
      auto& socket = sockets_[producer.sockets[i]];
      // Drain this socket; one failing/empty socket never starves the rest.
      while (!stopping_.load(std::memory_order_acquire)) {
        if (free_slots.empty()) {
          if (lane != nullptr) lane->set_state(obs::ThreadState::kBlocked);
          const bool got_slots = wait_for_slots(producer, free_slots);
          if (lane != nullptr) lane->set_state(obs::ThreadState::kBusy);
          if (!got_slots) {
            if (lane != nullptr) lane->retire();
            return;
          }
        }
        const std::size_t got = receive_batch(producer, socket, free_slots);
        if (got == 0) break;
        if (lane != nullptr) lane->heartbeat(got);
      }
    }
  }
  if (lane != nullptr) lane->retire();
}

// ---------------------------------------------------------------------------
// Decode stage
// ---------------------------------------------------------------------------

void IngestPipeline::decode_main() {
  // The decode lane's queue probe is the fan-in backlog: datagrams the
  // receivers queued that decode has not popped. Non-empty + no progress
  // = the stall detector's textbook case.
  obs::Tracer* const tracer = config_.tracer;
  obs::ThreadLane* lane = nullptr;
  if (tracer != nullptr) {
    lane = tracer->register_thread("decode", "decode", [this] {
      std::size_t queued = 0;
      for (const auto& producer : producers_) queued += producer->ring.size();
      return queued;
    });
  }
  std::vector<DatagramRef> refs(config_.recv_batch);
  std::vector<netflow::V5Record> records(netflow::kV5MaxRecords);
  std::vector<runtime::FlowItem> items;
  items.reserve(config_.dispatch_batch + netflow::kV5MaxRecords);
  // Datagrams popped whose +1 on `handled` waits for the next dispatch
  // flush, so drain() == "records reached the dispatcher", not merely
  // "records were decoded".
  std::vector<std::uint64_t> pending(producers_.size(), 0);
  // (engine_id << 16 | ingress) -> next expected flow_sequence, mirroring
  // FlowCapture's per-stream gap accounting.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> sequence_state;
  std::uint64_t next_tag = 0;

  const auto flush = [&] {
    if (!items.empty()) {
      const std::size_t accepted =
          dispatch_ ? dispatch_(std::span<const runtime::FlowItem>(items))
                    : items.size();
      dispatched_->inc(accepted);
      shed_->inc(items.size() - accepted);
      items.clear();
    }
    for (std::size_t p = 0; p < producers_.size(); ++p) {
      if (pending[p] == 0) continue;
      producers_[p]->handled.fetch_add(pending[p], std::memory_order_release);
      pending[p] = 0;
    }
  };

  for (;;) {
    if (pause_requested_.load(std::memory_order_acquire) &&
        !decode_stopping_.load(std::memory_order_acquire)) {
      // quiesce(): everything decoded so far must be visible downstream
      // before we park, and no dispatch may run while we are parked.
      flush();
      if (lane != nullptr) lane->set_state(obs::ThreadState::kBlocked);
      std::unique_lock lock(decode_wake_mutex_);
      paused_.store(true, std::memory_order_release);
      decode_wake_cv_.notify_all();
      decode_wake_cv_.wait(lock, [&] {
        return !pause_requested_.load(std::memory_order_acquire) ||
               decode_stopping_.load(std::memory_order_acquire);
      });
      paused_.store(false, std::memory_order_release);
      continue;
    }

    bool busy = false;
    for (std::size_t p = 0; p < producers_.size(); ++p) {
      auto& producer = *producers_[p];

      // Consumer-assisted shedding: the overloaded receiver cannot touch
      // the consumer end of its own ring, so it asks us to discard the
      // oldest queued datagrams and recycle their buffers.
      if (const auto shed =
              producer.shed_requests.exchange(0, std::memory_order_relaxed)) {
        std::uint64_t dropped = 0;
        DatagramRef ref;
        while (dropped < shed && producer.ring.try_pop(ref)) {
          producer.free_ring.try_push(ref.slot);
          ++dropped;
        }
        if (dropped > 0) {
          dropped_oldest_->inc(dropped);
          producer.handled.fetch_add(dropped, std::memory_order_release);
          busy = true;
        }
      }

      const std::size_t n = producer.ring.try_pop_batch(refs.data(), refs.size());
      if (n == 0) continue;
      busy = true;
      const bool tracing = lane != nullptr && tracer->enabled();
      // Lazy pop stamp, shared by every sampled record in this pop batch:
      // taken at the first sampled record, so an unsampled batch costs no
      // clock read.
      std::uint64_t t_pop = 0;
      if (lane != nullptr) {
        lane->set_state(obs::ThreadState::kBusy);
        lane->heartbeat(n);
      }
      for (std::size_t i = 0; i < n; ++i) {
        const auto& ref = refs[i];
        const std::uint8_t* base =
            producer.arena.get() + std::size_t{ref.slot} * config_.slot_bytes;
        netflow::V5Header header;
        std::size_t count = 0;
        const auto status = netflow::decode_into(std::span(base, ref.bytes), header,
                                                 std::span(records), count);
        // Records are copied out; the slot can go straight back. Capacity
        // >= arena_slots makes this push infallible too.
        producer.free_ring.try_push(ref.slot);
        ++pending[p];
        if (status != netflow::DecodeStatus::kOk) {
          malformed_->inc();
          continue;
        }
        decoded_->inc();
        records_->inc(count);

        const auto ingress = sockets_[ref.socket].ingress;
        const std::uint32_t stream =
            (std::uint32_t{header.engine_id} << 16) | ingress;
        auto state = std::find_if(sequence_state.begin(), sequence_state.end(),
                                  [stream](const auto& s) { return s.first == stream; });
        if (state == sequence_state.end()) {
          sequence_state.emplace_back(stream, header.flow_sequence);
          state = std::prev(sequence_state.end());
        } else {
          // The sequence space wraps at 2^32: a modular (int32) delta
          // counts forward gaps across the wrap, while a large backward
          // jump (exporter restart) rebases without a bogus gap.
          const auto delta =
              static_cast<std::int32_t>(header.flow_sequence - state->second);
          if (delta > 0) sequence_gaps_->inc(static_cast<std::uint64_t>(delta));
        }
        state->second = header.flow_sequence + static_cast<std::uint32_t>(count);

        for (std::size_t r = 0; r < count; ++r) {
          runtime::FlowItem item{records[r], ingress, records[r].last,
                                 next_tag++, 0};
          // Start a sampled journey: the datagram's socket-receive stamp
          // becomes the record's origin, and the receiver-ring wait
          // (recv -> decode pop) is the journey's first span.
          if (tracing && ref.recv_ns != 0 && tracer->sampled(item.tag)) {
            if (t_pop == 0) t_pop = obs::Tracer::now_ns();
            item.recv_ns = ref.recv_ns;
            item.hop_ns = t_pop;
            lane->emit(obs::SpanKind::kQueueIngest, ref.recv_ns,
                       t_pop - ref.recv_ns, item.tag);
            tracer->queue_wait_ingest_us->observe(
                static_cast<double>(t_pop - ref.recv_ns) / 1000.0);
          }
          items.push_back(item);
        }
      }
      if (items.size() >= config_.dispatch_batch) flush();
    }

    if (!busy) {
      flush();
      if (decode_stopping_.load(std::memory_order_acquire)) break;
      if (lane != nullptr) lane->set_state(obs::ThreadState::kIdle);
      std::unique_lock lock(decode_wake_mutex_);
      decode_parked_.store(true, std::memory_order_release);
      decode_wake_cv_.wait_for(lock, kDecodePark);
      decode_parked_.store(false, std::memory_order_release);
    }
  }
  if (lane != nullptr) lane->retire();
}

void IngestPipeline::wake_decode() const {
  if (!decode_parked_.load(std::memory_order_acquire)) return;
  std::lock_guard lock(decode_wake_mutex_);
  decode_wake_cv_.notify_all();
}

// ---------------------------------------------------------------------------
// Drain / quiesce / stop
// ---------------------------------------------------------------------------

void IngestPipeline::drain() const {
  // Per-producer sequential wait, deliberately allocation-free: drain()
  // sits inside the bench's steady-state heap probe. Each target is read
  // at or after the call started, so the contract ("everything accepted
  // when the call was made") holds producer by producer.
  for (const auto& producer : producers_) {
    const auto target = producer->received.load(std::memory_order_acquire);
    while (producer->handled.load(std::memory_order_acquire) < target) {
      wake_decode();
      std::this_thread::sleep_for(kReceiverWait);
    }
  }
}

void IngestPipeline::quiesce(const std::function<void()>& fn) const {
  std::lock_guard serialize(quiesce_mutex_);
  if (stopped_) {
    // Threads are gone and every accepted datagram was dispatched; the
    // "no dispatch in flight" guarantee holds trivially.
    fn();
    return;
  }
  drain();
  {
    std::unique_lock lock(decode_wake_mutex_);
    pause_requested_.store(true, std::memory_order_release);
    decode_wake_cv_.notify_all();
    decode_wake_cv_.wait(lock, [&] { return paused_.load(std::memory_order_acquire); });
  }
  fn();
  {
    std::lock_guard lock(decode_wake_mutex_);
    pause_requested_.store(false, std::memory_order_release);
    decode_wake_cv_.notify_all();
  }
}

void IngestPipeline::stop() {
  // Serialized with quiesce(): if stop() set decode_stopping_ while a
  // quiesce() was waiting for paused_, the decode thread's pause
  // predicate would send it straight to exit without ever setting
  // paused_, and that quiesce() would hang forever. Holding the quiesce
  // mutex for the whole teardown makes the two strictly ordered (it also
  // makes stopped_ reads/writes race-free across the pair).
  std::lock_guard serialize(quiesce_mutex_);
  if (stopped_) return;
  stopping_.store(true, std::memory_order_release);
  for (auto& producer : producers_) {
    if (producer->thread.joinable()) producer->thread.join();
  }
  // Receivers are gone, so the received counters are final: phase 1 of
  // the two-phase shutdown decodes and dispatches everything they had
  // accepted. Phase 2 (flushing the downstream runtime) is the caller's.
  drain();
  {
    std::lock_guard lock(decode_wake_mutex_);
    decode_stopping_.store(true, std::memory_order_release);
    decode_wake_cv_.notify_all();
  }
  if (decode_thread_.joinable()) decode_thread_.join();
  stopped_ = true;
}

IngestStats IngestPipeline::stats() const {
  IngestStats stats;
  for (const auto& producer : producers_) {
    stats.datagrams_received += producer->received.load(std::memory_order_acquire);
  }
  stats.datagrams_decoded = decoded_->value();
  stats.datagrams_malformed = malformed_->value();
  stats.datagrams_truncated = truncated_->value();
  stats.dropped_oldest = dropped_oldest_->value();
  stats.kernel_drops = kernel_drops_->value();
  stats.records_decoded = records_->value();
  stats.records_dispatched = dispatched_->value();
  stats.records_shed = shed_->value();
  stats.sequence_gaps = sequence_gaps_->value();
  stats.socket_errors = socket_errors_->value();
  return stats;
}

}  // namespace infilter::ingest

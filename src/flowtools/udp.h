// UDP transport for NetFlow export (the live half of Figure 9).
//
// "A NetFlow enabled router will periodically send datagrams to a
// pre-designated receiver node" -- and the testbed multiplexes emulated
// border routers by destination UDP port. This module provides the two
// endpoints: a sender that fires export datagrams at localhost ports, and
// a receiver set that binds one socket per emulated Peer AS / BR and
// feeds everything it hears into a FlowCapture, tagging each datagram
// with its arrival port.
//
// Loopback-only by design: the reproduction never needs to leave the
// machine, and binding 127.0.0.1 keeps the test suite hermetic.

#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "flowtools/capture.h"
#include "util/result.h"

namespace infilter::flowtools {

/// Sends datagrams to 127.0.0.1:<port>.
class UdpSender {
 public:
  static util::Result<UdpSender> create();
  ~UdpSender();
  UdpSender(UdpSender&& other) noexcept;
  UdpSender& operator=(UdpSender&& other) noexcept;
  UdpSender(const UdpSender&) = delete;
  UdpSender& operator=(const UdpSender&) = delete;

  /// Sends one datagram; fails on socket errors (never partial).
  util::Result<bool> send(std::uint16_t port, std::span<const std::uint8_t> datagram);

 private:
  explicit UdpSender(int fd) : fd_(fd) {}
  int fd_ = -1;
};

/// One bound, non-blocking UDP receive socket.
class UdpReceiver {
 public:
  /// Binds 127.0.0.1:<port>; port 0 picks an ephemeral port.
  static util::Result<UdpReceiver> bind(std::uint16_t port);
  ~UdpReceiver();
  UdpReceiver(UdpReceiver&& other) noexcept;
  UdpReceiver& operator=(UdpReceiver&& other) noexcept;
  UdpReceiver(const UdpReceiver&) = delete;
  UdpReceiver& operator=(const UdpReceiver&) = delete;

  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Receives one pending datagram without blocking; an empty vector means
  /// nothing was waiting.
  util::Result<std::vector<std::uint8_t>> receive();

  [[nodiscard]] int fd() const { return fd_; }

 private:
  UdpReceiver(int fd, std::uint16_t port) : fd_(fd), port_(port) {}
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

/// Binds one receiver per collector port and pumps arriving export
/// datagrams into a FlowCapture (Figure 9's flow-tools node).
class LiveCollector {
 public:
  /// Binds every port in `ports` (0 entries pick ephemeral ports; read the
  /// final assignments from ports()).
  static util::Result<LiveCollector> bind(const std::vector<std::uint16_t>& ports);

  [[nodiscard]] std::vector<std::uint16_t> ports() const;

  /// Waits up to `timeout_ms` for traffic and ingests every datagram that
  /// arrived. Returns the number of flow records stored by this call.
  util::Result<std::size_t> poll_once(int timeout_ms);

  /// Polls until `flow_target` flows have been captured or `deadline_ms`
  /// of total waiting elapses. Returns the flows captured by this call.
  util::Result<std::size_t> collect(std::size_t flow_target, int deadline_ms);

  [[nodiscard]] const flowtools::FlowCapture& capture() const { return capture_; }
  [[nodiscard]] flowtools::FlowCapture& capture() { return capture_; }

 private:
  explicit LiveCollector(std::vector<UdpReceiver> receivers);
  std::vector<UdpReceiver> receivers_;
  flowtools::FlowCapture capture_;
};

}  // namespace infilter::flowtools

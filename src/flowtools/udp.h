// UDP transport for NetFlow export (the live half of Figure 9).
//
// "A NetFlow enabled router will periodically send datagrams to a
// pre-designated receiver node" -- and the testbed multiplexes emulated
// border routers by destination UDP port. This module provides the two
// endpoints: a sender that fires export datagrams at localhost ports, and
// a receiver set that binds one socket per emulated Peer AS / BR and
// feeds everything it hears into a FlowCapture, tagging each datagram
// with its arrival port.
//
// Loopback-only by design: the reproduction never needs to leave the
// machine, and binding 127.0.0.1 keeps the test suite hermetic.

#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "flowtools/capture.h"
#include "util/result.h"

namespace infilter::flowtools {

/// Sends datagrams to 127.0.0.1:<port>.
class UdpSender {
 public:
  static util::Result<UdpSender> create();
  ~UdpSender();
  UdpSender(UdpSender&& other) noexcept;
  UdpSender& operator=(UdpSender&& other) noexcept;
  UdpSender(const UdpSender&) = delete;
  UdpSender& operator=(const UdpSender&) = delete;

  /// Sends one datagram; fails on socket errors (never partial).
  util::Result<bool> send(std::uint16_t port, std::span<const std::uint8_t> datagram);

 private:
  explicit UdpSender(int fd) : fd_(fd) {}
  int fd_ = -1;
};

/// Outcome of one UdpReceiver::receive_into() call. Distinguishes "a
/// datagram arrived" from "nothing was waiting" explicitly, so a
/// zero-length datagram -- legal UDP -- is not conflated with an empty
/// socket the way receive()'s empty-vector convention conflates them.
struct ReceivedDatagram {
  /// True when a datagram was consumed from the socket (possibly empty or
  /// truncated); false when the socket had nothing waiting.
  bool datagram = false;
  /// Bytes copied into the caller's buffer.
  std::size_t bytes = 0;
  /// Actual length of the datagram on the wire (MSG_TRUNC); greater than
  /// `bytes` when the caller's buffer was too small and the tail was cut.
  std::size_t wire_bytes = 0;

  [[nodiscard]] bool truncated() const { return wire_bytes > bytes; }
};

/// One bound, non-blocking UDP receive socket.
class UdpReceiver {
 public:
  /// Binds 127.0.0.1:<port>; port 0 picks an ephemeral port.
  /// `rcvbuf_bytes` > 0 requests that much kernel receive buffering
  /// (SO_RCVBUF); 0 keeps the system default.
  static util::Result<UdpReceiver> bind(std::uint16_t port, int rcvbuf_bytes = 0);
  ~UdpReceiver();
  UdpReceiver(UdpReceiver&& other) noexcept;
  UdpReceiver& operator=(UdpReceiver&& other) noexcept;
  UdpReceiver(const UdpReceiver&) = delete;
  UdpReceiver& operator=(const UdpReceiver&) = delete;

  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Receives one pending datagram without blocking; an empty vector means
  /// nothing was waiting. Allocates per call -- hot paths should use
  /// receive_into(), which this wraps (and which can also tell a
  /// zero-length datagram apart from an idle socket).
  util::Result<std::vector<std::uint8_t>> receive();

  /// Receives one pending datagram into caller-owned storage without
  /// blocking or allocating. Retries internally on EINTR; errors are real
  /// socket failures only.
  util::Result<ReceivedDatagram> receive_into(std::span<std::uint8_t> buffer);

  [[nodiscard]] int fd() const { return fd_; }

 private:
  UdpReceiver(int fd, std::uint16_t port) : fd_(fd), port_(port) {}
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

/// Binds one receiver per collector port and pumps arriving export
/// datagrams into a FlowCapture (Figure 9's flow-tools node).
class LiveCollector {
 public:
  /// Binds every port in `ports` (0 entries pick ephemeral ports; read the
  /// final assignments from ports()). `rcvbuf_bytes` is forwarded to every
  /// socket (0 = system default).
  static util::Result<LiveCollector> bind(const std::vector<std::uint16_t>& ports,
                                          int rcvbuf_bytes = 0);

  [[nodiscard]] std::vector<std::uint16_t> ports() const;

  /// Waits up to `timeout_ms` for traffic and ingests every datagram that
  /// arrived. Returns the number of flow records stored by this call.
  /// When one receiver fails mid-sweep the remaining sockets are still
  /// drained; the first error is reported after the sweep completes.
  util::Result<std::size_t> poll_once(int timeout_ms);

  /// Polls until `flow_target` flows have been captured or `deadline_ms`
  /// of wall-clock time elapses (steady_clock -- a slow trickle of traffic
  /// cannot stretch the deadline). Returns the flows captured by this call.
  util::Result<std::size_t> collect(std::size_t flow_target, int deadline_ms);

  [[nodiscard]] const flowtools::FlowCapture& capture() const { return capture_; }
  [[nodiscard]] flowtools::FlowCapture& capture() { return capture_; }

 private:
  explicit LiveCollector(std::vector<UdpReceiver> receivers);
  std::vector<UdpReceiver> receivers_;
  flowtools::FlowCapture capture_;
  /// Reused receive buffer: one 64 KiB allocation for the collector's
  /// lifetime instead of one per datagram.
  std::vector<std::uint8_t> scratch_;
};

}  // namespace infilter::flowtools

// Per-flow statistics (Section 5.1.2).
//
// The paper's analysis modules consume exactly five statistics per flow:
// byte count, packet count, duration, bit rate, and packet rate. This
// header defines that statistics vector and its derivation from a NetFlow
// v5 record; it is the interface between the collection substrate and the
// InFilter analysis engine.

#pragma once

#include <algorithm>
#include <array>

#include "netflow/v5.h"

namespace infilter::flowtools {

/// The five flow statistics of Section 5.1.2, in the order the paper lists
/// them. Rates are computed over max(duration, 1 ms) so single-packet
/// flows (Slammer!) still yield finite rates.
struct FlowStats {
  double byte_count = 0;
  double packet_count = 0;
  double duration_ms = 0;
  double bit_rate = 0;     ///< bits per second
  double packet_rate = 0;  ///< packets per second

  /// Number of statistics; the NNS encoder sizes its dimensions from this.
  static constexpr int kCount = 5;

  [[nodiscard]] std::array<double, kCount> as_array() const {
    return {byte_count, packet_count, duration_ms, bit_rate, packet_rate};
  }

  static FlowStats from_record(const netflow::V5Record& record) {
    FlowStats s;
    s.byte_count = record.bytes;
    s.packet_count = record.packets;
    s.duration_ms = record.duration_ms();
    const double seconds = std::max(1.0, s.duration_ms) / 1000.0;
    s.bit_rate = s.byte_count * 8.0 / seconds;
    s.packet_rate = s.packet_count / seconds;
    return s;
  }

  friend auto operator<=>(const FlowStats&, const FlowStats&) = default;
};

}  // namespace infilter::flowtools

// flow-report style filtering, grouping and reporting.
//
// Models the flow-tools reporting pipeline (Section 5.1.2): captured flows
// can be filtered on header fields, grouped by any subset of the flow key
// fields (plus AS numbers and the capture arrival port), and summarized
// into ASCII statistics reports. "Increasing the number of fields increases
// the granularity of the computed statistics."

#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "flowtools/capture.h"
#include "flowtools/stats.h"
#include "net/ipv4.h"

namespace infilter::flowtools {

/// A conjunctive filter: a flow matches when every set field matches.
struct FlowFilter {
  std::optional<net::Prefix> src_prefix;
  std::optional<net::Prefix> dst_prefix;
  std::optional<std::uint8_t> proto;
  std::optional<std::uint16_t> src_port;
  std::optional<std::uint16_t> dst_port;
  std::optional<std::uint16_t> src_as;
  std::optional<std::uint16_t> dst_as;
  std::optional<std::uint16_t> arrival_port;

  [[nodiscard]] bool matches(const CapturedFlow& flow) const;
};

/// Retains the flows matching `filter`, preserving order.
[[nodiscard]] std::vector<CapturedFlow> filter_flows(std::span<const CapturedFlow> flows,
                                                     const FlowFilter& filter);

/// The fields a report can group on, as a bitmask. Grouping on all of
/// kFlowKeyFields reproduces per-flow granularity; subsets aggregate.
enum class GroupField : std::uint16_t {
  kSrcIp = 1 << 0,
  kDstIp = 1 << 1,
  kProto = 1 << 2,
  kSrcPort = 1 << 3,
  kDstPort = 1 << 4,
  kTos = 1 << 5,
  kInputIf = 1 << 6,
  kSrcAs = 1 << 7,
  kDstAs = 1 << 8,
  kArrivalPort = 1 << 9,
};

constexpr GroupField operator|(GroupField a, GroupField b) {
  return static_cast<GroupField>(static_cast<std::uint16_t>(a) |
                                 static_cast<std::uint16_t>(b));
}
constexpr bool has_field(GroupField mask, GroupField f) {
  return (static_cast<std::uint16_t>(mask) & static_cast<std::uint16_t>(f)) != 0;
}

/// All seven Figure 10 key fields.
inline constexpr GroupField kFlowKeyFields =
    GroupField::kSrcIp | GroupField::kDstIp | GroupField::kProto |
    GroupField::kSrcPort | GroupField::kDstPort | GroupField::kTos |
    GroupField::kInputIf;

/// Aggregate statistics for one report group.
struct GroupSummary {
  std::uint64_t flows = 0;
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
  double total_duration_ms = 0;
  double mean_bit_rate = 0;     ///< mean of per-flow bit rates
  double mean_packet_rate = 0;  ///< mean of per-flow packet rates
};

/// One row of a grouped report: the group's key rendered as text plus its
/// summary.
struct ReportRow {
  std::string group_key;
  GroupSummary summary;
};

/// Groups flows by the selected fields and computes summaries. Rows are
/// ordered by descending byte count (flow-report's default "octets" sort).
[[nodiscard]] std::vector<ReportRow> group_flows(std::span<const CapturedFlow> flows,
                                                 GroupField fields);

/// Renders rows as a fixed-width ASCII table, flow-report style.
[[nodiscard]] std::string render_report(std::span<const ReportRow> rows,
                                        GroupField fields);

}  // namespace infilter::flowtools

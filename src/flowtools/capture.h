// flow-capture: receives NetFlow export datagrams and stores the records.
//
// Models the flow-tools `flow-capture` program (Section 5.1.2): datagrams
// arrive (here: as byte buffers, from Dagflow instances or simulated
// routers), are decoded, and records accumulate in a compact store that can
// be persisted to and reloaded from a binary file -- flow-tools keeps its
// captures binary "to speed processing and save storage space".
//
// The capture also tracks the paper's testbed demultiplexing trick: every
// Dagflow instance sends to a distinct UDP port, and the port identifies
// the emulated (Peer AS, BR) ingress point. Records are therefore stored
// together with the port they arrived on.

#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "netflow/v5.h"
#include "util/result.h"

namespace infilter::flowtools {

/// A stored flow record plus capture metadata.
struct CapturedFlow {
  netflow::V5Record record;
  /// UDP destination port the export datagram arrived on. In the testbed
  /// topology this is a stand-in for the ingress Peer AS / Border Router.
  std::uint16_t arrival_port = 0;
  /// Export time taken from the datagram header (sys-uptime ms).
  std::uint32_t export_time_ms = 0;

  friend auto operator<=>(const CapturedFlow&, const CapturedFlow&) = default;
};

/// Decodes and accumulates NetFlow v5 datagrams.
class FlowCapture {
 public:
  /// Decodes one datagram received on `arrival_port`. Returns the number of
  /// records stored, or an error if the datagram is malformed (malformed
  /// datagrams are counted and dropped; the store is unchanged).
  util::Result<std::size_t> ingest(std::span<const std::uint8_t> datagram,
                                   std::uint16_t arrival_port);

  [[nodiscard]] const std::vector<CapturedFlow>& flows() const { return flows_; }
  [[nodiscard]] std::size_t datagrams_received() const { return datagrams_; }
  [[nodiscard]] std::size_t datagrams_malformed() const { return malformed_; }
  /// Flow records decoded from wire datagrams by ingest() (excludes
  /// records restored via load()).
  [[nodiscard]] std::uint64_t records_decoded() const { return records_decoded_; }
  /// Count of export-sequence gaps observed per engine (lost datagrams).
  [[nodiscard]] std::uint64_t sequence_gaps() const { return sequence_gaps_; }

  void clear();

  /// Persists the store to `path` in the compact binary capture format.
  [[nodiscard]] util::Result<std::size_t> save(const std::string& path) const;
  /// Loads a store previously written by save(), replacing the contents.
  [[nodiscard]] util::Result<std::size_t> load(const std::string& path);

 private:
  std::vector<CapturedFlow> flows_;
  std::size_t datagrams_ = 0;
  std::size_t malformed_ = 0;
  std::uint64_t records_decoded_ = 0;
  std::uint64_t sequence_gaps_ = 0;
  /// Last flow_sequence + count per (engine_id, port), for gap detection.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> sequence_state_;
};

}  // namespace infilter::flowtools

#include "flowtools/ascii.h"

#include <charconv>
#include <limits>
#include <sstream>

namespace infilter::flowtools {
namespace {

constexpr std::string_view kHeader =
    "srcaddr,dstaddr,proto,srcport,dstport,tos,input,packets,octets,first,last,"
    "tcpflags,srcas,dstas,port,exported";

/// Splits one line on commas (no quoting in this format).
std::vector<std::string_view> split_commas(std::string_view line) {
  std::vector<std::string_view> out;
  std::size_t at = 0;
  while (true) {
    const auto comma = line.find(',', at);
    if (comma == std::string_view::npos) {
      out.push_back(line.substr(at));
      return out;
    }
    out.push_back(line.substr(at, comma - at));
    at = comma + 1;
  }
}

template <typename T>
bool parse_number(std::string_view token, T& out) {
  std::uint64_t value = 0;
  const auto end = token.data() + token.size();
  const auto [ptr, ec] = std::from_chars(token.data(), end, value);
  if (ec != std::errc{} || ptr != end) return false;
  if (value > std::numeric_limits<T>::max()) return false;
  out = static_cast<T>(value);
  return true;
}

}  // namespace

std::string_view ascii_header() { return kHeader; }

std::string export_ascii(std::span<const CapturedFlow> flows) {
  std::ostringstream out;
  out << kHeader << '\n';
  for (const auto& flow : flows) {
    const auto& r = flow.record;
    out << r.src_ip.to_string() << ',' << r.dst_ip.to_string() << ','
        << static_cast<unsigned>(r.proto) << ',' << r.src_port << ',' << r.dst_port
        << ',' << static_cast<unsigned>(r.tos) << ',' << r.input_if << ','
        << r.packets << ',' << r.bytes << ',' << r.first << ',' << r.last << ','
        << static_cast<unsigned>(r.tcp_flags) << ',' << r.src_as << ',' << r.dst_as
        << ',' << flow.arrival_port << ',' << flow.export_time_ms << '\n';
  }
  return std::move(out).str();
}

util::Result<std::vector<CapturedFlow>> import_ascii(std::string_view text) {
  std::vector<CapturedFlow> flows;
  bool saw_header = false;
  int line_number = 0;
  std::size_t at = 0;
  while (at <= text.size()) {
    const auto newline = text.find('\n', at);
    auto line = text.substr(
        at, newline == std::string_view::npos ? text.size() - at : newline - at);
    at = newline == std::string_view::npos ? text.size() + 1 : newline + 1;
    ++line_number;
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (line.empty() || line.front() == '#') continue;
    if (!saw_header) {
      if (line != kHeader) {
        return util::Error{"line " + std::to_string(line_number) +
                           ": expected ASCII flow header"};
      }
      saw_header = true;
      continue;
    }

    const auto fields = split_commas(line);
    if (fields.size() != 16) {
      return util::Error{"line " + std::to_string(line_number) + ": expected 16 fields, got " +
                         std::to_string(fields.size())};
    }
    CapturedFlow flow;
    auto& r = flow.record;
    const auto src = net::IPv4Address::parse(fields[0]);
    const auto dst = net::IPv4Address::parse(fields[1]);
    bool ok = src.has_value() && dst.has_value();
    if (ok) {
      r.src_ip = *src;
      r.dst_ip = *dst;
    }
    ok = ok && parse_number(fields[2], r.proto) && parse_number(fields[3], r.src_port) &&
         parse_number(fields[4], r.dst_port) && parse_number(fields[5], r.tos) &&
         parse_number(fields[6], r.input_if) && parse_number(fields[7], r.packets) &&
         parse_number(fields[8], r.bytes) && parse_number(fields[9], r.first) &&
         parse_number(fields[10], r.last) && parse_number(fields[11], r.tcp_flags) &&
         parse_number(fields[12], r.src_as) && parse_number(fields[13], r.dst_as) &&
         parse_number(fields[14], flow.arrival_port) &&
         parse_number(fields[15], flow.export_time_ms);
    if (!ok) {
      return util::Error{"line " + std::to_string(line_number) + ": malformed record"};
    }
    flows.push_back(flow);
  }
  if (!saw_header) return util::Error{"missing ASCII flow header"};
  return flows;
}

}  // namespace infilter::flowtools

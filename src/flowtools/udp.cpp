#include "flowtools/udp.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <optional>

namespace infilter::flowtools {
namespace {

util::Error errno_error(const char* what) {
  return util::Error{std::string(what) + ": " + std::strerror(errno)};
}

sockaddr_in loopback(std::uint16_t port) {
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(port);
  address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return address;
}

}  // namespace

util::Result<UdpSender> UdpSender::create() {
  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd < 0) return errno_error("socket");
  return UdpSender{fd};
}

UdpSender::~UdpSender() {
  if (fd_ >= 0) ::close(fd_);
}

UdpSender::UdpSender(UdpSender&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

UdpSender& UdpSender::operator=(UdpSender&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

util::Result<bool> UdpSender::send(std::uint16_t port,
                                   std::span<const std::uint8_t> datagram) {
  const auto address = loopback(port);
  const auto sent = ::sendto(fd_, datagram.data(), datagram.size(), 0,
                             reinterpret_cast<const sockaddr*>(&address),
                             sizeof address);
  if (sent < 0) return errno_error("sendto");
  if (static_cast<std::size_t>(sent) != datagram.size()) {
    return util::Error{"short datagram send"};
  }
  return true;
}

util::Result<UdpReceiver> UdpReceiver::bind(std::uint16_t port, int rcvbuf_bytes) {
  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd < 0) return errno_error("socket");
  if (rcvbuf_bytes > 0 &&
      ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf_bytes,
                   sizeof rcvbuf_bytes) < 0) {
    ::close(fd);
    return errno_error("setsockopt(SO_RCVBUF)");
  }
  const auto address = loopback(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&address), sizeof address) < 0) {
    ::close(fd);
    return errno_error("bind");
  }
  // Read back the assigned port (meaningful when port was 0).
  sockaddr_in bound{};
  socklen_t length = sizeof bound;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &length) < 0) {
    ::close(fd);
    return errno_error("getsockname");
  }
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    ::close(fd);
    return errno_error("fcntl");
  }
  return UdpReceiver{fd, ntohs(bound.sin_port)};
}

UdpReceiver::~UdpReceiver() {
  if (fd_ >= 0) ::close(fd_);
}

UdpReceiver::UdpReceiver(UdpReceiver&& other) noexcept
    : fd_(other.fd_), port_(other.port_) {
  other.fd_ = -1;
}

UdpReceiver& UdpReceiver::operator=(UdpReceiver&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    port_ = other.port_;
    other.fd_ = -1;
  }
  return *this;
}

util::Result<ReceivedDatagram> UdpReceiver::receive_into(
    std::span<std::uint8_t> buffer) {
  for (;;) {
    // MSG_TRUNC reports the wire length even when the buffer was too
    // small, which is how callers detect (and count) truncated datagrams.
    const auto received =
        ::recv(fd_, buffer.data(), buffer.size(), MSG_TRUNC);
    if (received >= 0) {
      ReceivedDatagram out;
      out.datagram = true;
      out.wire_bytes = static_cast<std::size_t>(received);
      out.bytes = std::min(out.wire_bytes, buffer.size());
      return out;
    }
    if (errno == EINTR) continue;  // interrupted by a signal: retry, not an error
    if (errno == EAGAIN || errno == EWOULDBLOCK) return ReceivedDatagram{};
    return errno_error("recv");
  }
}

util::Result<std::vector<std::uint8_t>> UdpReceiver::receive() {
  std::vector<std::uint8_t> buffer(65536);
  const auto received = receive_into(buffer);
  if (!received) return received.error();
  // Legacy convention: empty vector for both "nothing waiting" and a
  // zero-length datagram. Callers who care use receive_into().
  buffer.resize(received->datagram ? received->bytes : 0);
  return buffer;
}

LiveCollector::LiveCollector(std::vector<UdpReceiver> receivers)
    : receivers_(std::move(receivers)), scratch_(65536) {}

util::Result<LiveCollector> LiveCollector::bind(const std::vector<std::uint16_t>& ports,
                                                int rcvbuf_bytes) {
  std::vector<UdpReceiver> receivers;
  receivers.reserve(ports.size());
  for (const auto port : ports) {
    auto receiver = UdpReceiver::bind(port, rcvbuf_bytes);
    if (!receiver) return receiver.error();
    receivers.push_back(std::move(*receiver));
  }
  return LiveCollector{std::move(receivers)};
}

std::vector<std::uint16_t> LiveCollector::ports() const {
  std::vector<std::uint16_t> out;
  out.reserve(receivers_.size());
  for (const auto& receiver : receivers_) out.push_back(receiver.port());
  return out;
}

util::Result<std::size_t> LiveCollector::poll_once(int timeout_ms) {
  std::vector<pollfd> fds;
  fds.reserve(receivers_.size());
  for (const auto& receiver : receivers_) {
    fds.push_back(pollfd{receiver.fd(), POLLIN, 0});
  }
  int ready;
  do {
    ready = ::poll(fds.data(), fds.size(), timeout_ms);
  } while (ready < 0 && errno == EINTR);
  if (ready < 0) return errno_error("poll");
  if (ready == 0) return std::size_t{0};

  // One failing socket must not starve the others: finish the sweep, then
  // report the first error.
  std::optional<util::Error> first_error;
  std::size_t stored = 0;
  for (std::size_t i = 0; i < receivers_.size(); ++i) {
    if ((fds[i].revents & POLLIN) == 0) continue;
    // Drain everything queued on this socket.
    while (true) {
      const auto received = receivers_[i].receive_into(scratch_);
      if (!received) {
        if (!first_error) first_error = received.error();
        break;
      }
      if (!received->datagram) break;
      // A datagram arrived -- zero-length or truncated ones included. Both
      // decode as malformed, which the capture counts; dropping them is
      // collector policy, not an I/O error, and must not stop the drain.
      const auto ingested = capture_.ingest(
          std::span(scratch_.data(), received->bytes), receivers_[i].port());
      if (ingested) stored += *ingested;
    }
  }
  // Everything drained from the healthy sockets is already in capture_;
  // only now surface the failure.
  if (first_error) return *first_error;
  return stored;
}

util::Result<std::size_t> LiveCollector::collect(std::size_t flow_target,
                                                 int deadline_ms) {
  // Wall-clock deadline: the old idle-slice accounting let a slow trickle
  // of traffic (one datagram per slice) run arbitrarily past deadline_ms.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(deadline_ms);
  std::size_t collected = 0;
  while (collected < flow_target &&
         std::chrono::steady_clock::now() < deadline) {
    constexpr int kSliceMs = 20;
    auto stored = poll_once(kSliceMs);
    if (!stored) return stored.error();
    collected += *stored;
  }
  return collected;
}

}  // namespace infilter::flowtools

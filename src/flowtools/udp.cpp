#include "flowtools/udp.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace infilter::flowtools {
namespace {

util::Error errno_error(const char* what) {
  return util::Error{std::string(what) + ": " + std::strerror(errno)};
}

sockaddr_in loopback(std::uint16_t port) {
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(port);
  address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return address;
}

}  // namespace

util::Result<UdpSender> UdpSender::create() {
  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd < 0) return errno_error("socket");
  return UdpSender{fd};
}

UdpSender::~UdpSender() {
  if (fd_ >= 0) ::close(fd_);
}

UdpSender::UdpSender(UdpSender&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

UdpSender& UdpSender::operator=(UdpSender&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

util::Result<bool> UdpSender::send(std::uint16_t port,
                                   std::span<const std::uint8_t> datagram) {
  const auto address = loopback(port);
  const auto sent = ::sendto(fd_, datagram.data(), datagram.size(), 0,
                             reinterpret_cast<const sockaddr*>(&address),
                             sizeof address);
  if (sent < 0) return errno_error("sendto");
  if (static_cast<std::size_t>(sent) != datagram.size()) {
    return util::Error{"short datagram send"};
  }
  return true;
}

util::Result<UdpReceiver> UdpReceiver::bind(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd < 0) return errno_error("socket");
  const auto address = loopback(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&address), sizeof address) < 0) {
    ::close(fd);
    return errno_error("bind");
  }
  // Read back the assigned port (meaningful when port was 0).
  sockaddr_in bound{};
  socklen_t length = sizeof bound;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &length) < 0) {
    ::close(fd);
    return errno_error("getsockname");
  }
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    ::close(fd);
    return errno_error("fcntl");
  }
  return UdpReceiver{fd, ntohs(bound.sin_port)};
}

UdpReceiver::~UdpReceiver() {
  if (fd_ >= 0) ::close(fd_);
}

UdpReceiver::UdpReceiver(UdpReceiver&& other) noexcept
    : fd_(other.fd_), port_(other.port_) {
  other.fd_ = -1;
}

UdpReceiver& UdpReceiver::operator=(UdpReceiver&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    port_ = other.port_;
    other.fd_ = -1;
  }
  return *this;
}

util::Result<std::vector<std::uint8_t>> UdpReceiver::receive() {
  std::vector<std::uint8_t> buffer(65536);
  const auto received = ::recv(fd_, buffer.data(), buffer.size(), 0);
  if (received < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK) return std::vector<std::uint8_t>{};
    return errno_error("recv");
  }
  buffer.resize(static_cast<std::size_t>(received));
  return buffer;
}

LiveCollector::LiveCollector(std::vector<UdpReceiver> receivers)
    : receivers_(std::move(receivers)) {}

util::Result<LiveCollector> LiveCollector::bind(const std::vector<std::uint16_t>& ports) {
  std::vector<UdpReceiver> receivers;
  receivers.reserve(ports.size());
  for (const auto port : ports) {
    auto receiver = UdpReceiver::bind(port);
    if (!receiver) return receiver.error();
    receivers.push_back(std::move(*receiver));
  }
  return LiveCollector{std::move(receivers)};
}

std::vector<std::uint16_t> LiveCollector::ports() const {
  std::vector<std::uint16_t> out;
  out.reserve(receivers_.size());
  for (const auto& receiver : receivers_) out.push_back(receiver.port());
  return out;
}

util::Result<std::size_t> LiveCollector::poll_once(int timeout_ms) {
  std::vector<pollfd> fds;
  fds.reserve(receivers_.size());
  for (const auto& receiver : receivers_) {
    fds.push_back(pollfd{receiver.fd(), POLLIN, 0});
  }
  const int ready = ::poll(fds.data(), fds.size(), timeout_ms);
  if (ready < 0) return errno_error("poll");
  if (ready == 0) return std::size_t{0};

  std::size_t stored = 0;
  for (std::size_t i = 0; i < receivers_.size(); ++i) {
    if ((fds[i].revents & POLLIN) == 0) continue;
    // Drain everything queued on this socket.
    while (true) {
      auto datagram = receivers_[i].receive();
      if (!datagram) return datagram.error();
      if (datagram->empty()) break;
      // Malformed datagrams are counted by the capture and dropped; that
      // is collector policy, not an I/O error.
      if (const auto ingested = capture_.ingest(*datagram, receivers_[i].port())) {
        stored += *ingested;
      }
    }
  }
  return stored;
}

util::Result<std::size_t> LiveCollector::collect(std::size_t flow_target,
                                                 int deadline_ms) {
  std::size_t collected = 0;
  int waited = 0;
  while (collected < flow_target && waited < deadline_ms) {
    constexpr int kSliceMs = 20;
    auto stored = poll_once(kSliceMs);
    if (!stored) return stored.error();
    collected += *stored;
    if (*stored == 0) waited += kSliceMs;
  }
  return collected;
}

}  // namespace infilter::flowtools

#include "flowtools/report.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace infilter::flowtools {

bool FlowFilter::matches(const CapturedFlow& flow) const {
  const auto& r = flow.record;
  if (src_prefix && !src_prefix->contains(r.src_ip)) return false;
  if (dst_prefix && !dst_prefix->contains(r.dst_ip)) return false;
  if (proto && *proto != r.proto) return false;
  if (src_port && *src_port != r.src_port) return false;
  if (dst_port && *dst_port != r.dst_port) return false;
  if (src_as && *src_as != r.src_as) return false;
  if (dst_as && *dst_as != r.dst_as) return false;
  if (arrival_port && *arrival_port != flow.arrival_port) return false;
  return true;
}

std::vector<CapturedFlow> filter_flows(std::span<const CapturedFlow> flows,
                                       const FlowFilter& filter) {
  std::vector<CapturedFlow> out;
  std::copy_if(flows.begin(), flows.end(), std::back_inserter(out),
               [&filter](const CapturedFlow& f) { return filter.matches(f); });
  return out;
}

namespace {

std::string group_key_text(const CapturedFlow& flow, GroupField fields) {
  const auto& r = flow.record;
  std::string key;
  auto add = [&key](const std::string& part) {
    if (!key.empty()) key += ',';
    key += part;
  };
  if (has_field(fields, GroupField::kSrcIp)) add(r.src_ip.to_string());
  if (has_field(fields, GroupField::kDstIp)) add(r.dst_ip.to_string());
  if (has_field(fields, GroupField::kProto)) add("p" + std::to_string(r.proto));
  if (has_field(fields, GroupField::kSrcPort)) add("sp" + std::to_string(r.src_port));
  if (has_field(fields, GroupField::kDstPort)) add("dp" + std::to_string(r.dst_port));
  if (has_field(fields, GroupField::kTos)) add("tos" + std::to_string(r.tos));
  if (has_field(fields, GroupField::kInputIf)) add("if" + std::to_string(r.input_if));
  if (has_field(fields, GroupField::kSrcAs)) add("sas" + std::to_string(r.src_as));
  if (has_field(fields, GroupField::kDstAs)) add("das" + std::to_string(r.dst_as));
  if (has_field(fields, GroupField::kArrivalPort)) {
    add("port" + std::to_string(flow.arrival_port));
  }
  return key;
}

}  // namespace

std::vector<ReportRow> group_flows(std::span<const CapturedFlow> flows,
                                   GroupField fields) {
  struct Accumulator {
    GroupSummary summary;
    double bit_rate_sum = 0;
    double packet_rate_sum = 0;
  };
  std::map<std::string, Accumulator> groups;
  for (const auto& flow : flows) {
    auto& acc = groups[group_key_text(flow, fields)];
    const auto stats = FlowStats::from_record(flow.record);
    acc.summary.flows += 1;
    acc.summary.packets += flow.record.packets;
    acc.summary.bytes += flow.record.bytes;
    acc.summary.total_duration_ms += stats.duration_ms;
    acc.bit_rate_sum += stats.bit_rate;
    acc.packet_rate_sum += stats.packet_rate;
  }

  std::vector<ReportRow> rows;
  rows.reserve(groups.size());
  for (auto& [key, acc] : groups) {
    acc.summary.mean_bit_rate = acc.bit_rate_sum / static_cast<double>(acc.summary.flows);
    acc.summary.mean_packet_rate =
        acc.packet_rate_sum / static_cast<double>(acc.summary.flows);
    rows.push_back(ReportRow{key, acc.summary});
  }
  std::stable_sort(rows.begin(), rows.end(), [](const ReportRow& a, const ReportRow& b) {
    return a.summary.bytes > b.summary.bytes;
  });
  return rows;
}

std::string render_report(std::span<const ReportRow> rows, GroupField fields) {
  std::ostringstream out;
  out << "# grouped by mask 0x" << std::hex << static_cast<std::uint16_t>(fields)
      << std::dec << "\n";
  out << std::left << std::setw(44) << "group" << std::right << std::setw(10)
      << "flows" << std::setw(12) << "packets" << std::setw(14) << "octets"
      << std::setw(14) << "dur_ms" << std::setw(14) << "bps" << std::setw(12)
      << "pps" << "\n";
  for (const auto& row : rows) {
    out << std::left << std::setw(44) << row.group_key << std::right << std::setw(10)
        << row.summary.flows << std::setw(12) << row.summary.packets << std::setw(14)
        << row.summary.bytes << std::setw(14) << std::fixed << std::setprecision(0)
        << row.summary.total_duration_ms << std::setw(14) << std::setprecision(1)
        << row.summary.mean_bit_rate << std::setw(12) << row.summary.mean_packet_rate
        << "\n";
  }
  return std::move(out).str();
}

}  // namespace infilter::flowtools

#include "flowtools/capture.h"

#include <algorithm>
#include <fstream>

namespace infilter::flowtools {
namespace {

// Binary capture file layout: magic, record count, then per-record the
// 48-byte v5 wire image plus port and export time. Little-endian fixed
// fields written through the v5 codec keep the format self-contained.
constexpr std::uint32_t kCaptureMagic = 0x49464331;  // "IFC1"

void put32(std::ofstream& out, std::uint32_t v) {
  char buf[4] = {static_cast<char>(v), static_cast<char>(v >> 8),
                 static_cast<char>(v >> 16), static_cast<char>(v >> 24)};
  out.write(buf, 4);
}

std::uint32_t get32(std::ifstream& in) {
  unsigned char buf[4] = {};
  in.read(reinterpret_cast<char*>(buf), 4);
  return std::uint32_t{buf[0]} | (std::uint32_t{buf[1]} << 8) |
         (std::uint32_t{buf[2]} << 16) | (std::uint32_t{buf[3]} << 24);
}

}  // namespace

util::Result<std::size_t> FlowCapture::ingest(std::span<const std::uint8_t> datagram,
                                              std::uint16_t arrival_port) {
  ++datagrams_;
  auto decoded = netflow::decode(datagram);
  if (!decoded) {
    ++malformed_;
    return decoded.error();
  }

  // Sequence-gap accounting per (engine, port) export stream.
  const std::uint32_t stream =
      (std::uint32_t{decoded->header.engine_id} << 16) | arrival_port;
  auto state = std::find_if(sequence_state_.begin(), sequence_state_.end(),
                            [stream](const auto& s) { return s.first == stream; });
  if (state == sequence_state_.end()) {
    sequence_state_.emplace_back(stream, decoded->header.flow_sequence);
    state = std::prev(sequence_state_.end());
  } else {
    // The sequence space wraps at 2^32: a modular (int32) delta counts
    // forward gaps across the wrap, while a large backward jump (exporter
    // restart) rebases without a bogus gap.
    const auto delta = static_cast<std::int32_t>(decoded->header.flow_sequence -
                                                 state->second);
    if (delta > 0) sequence_gaps_ += static_cast<std::uint32_t>(delta);
  }
  state->second = decoded->header.flow_sequence +
                  static_cast<std::uint32_t>(decoded->records.size());

  for (const auto& record : decoded->records) {
    flows_.push_back(CapturedFlow{record, arrival_port, decoded->header.sys_uptime_ms});
  }
  records_decoded_ += decoded->records.size();
  return decoded->records.size();
}

void FlowCapture::clear() {
  flows_.clear();
  datagrams_ = 0;
  malformed_ = 0;
  records_decoded_ = 0;
  sequence_gaps_ = 0;
  sequence_state_.clear();
}

util::Result<std::size_t> FlowCapture::save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return util::Error{"cannot open " + path + " for writing"};
  put32(out, kCaptureMagic);
  put32(out, static_cast<std::uint32_t>(flows_.size()));
  std::uint32_t sequence = 0;
  for (const auto& flow : flows_) {
    const auto wire = netflow::encode(netflow::V5Header{.flow_sequence = sequence},
                                      std::span{&flow.record, 1});
    out.write(reinterpret_cast<const char*>(wire.data()),
              static_cast<std::streamsize>(wire.size()));
    put32(out, (std::uint32_t{flow.arrival_port} << 16));
    put32(out, flow.export_time_ms);
    ++sequence;
  }
  if (!out) return util::Error{"write failed on " + path};
  return flows_.size();
}

util::Result<std::size_t> FlowCapture::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return util::Error{"cannot open " + path};
  if (get32(in) != kCaptureMagic) return util::Error{"bad capture magic in " + path};
  const std::uint32_t count = get32(in);
  std::vector<CapturedFlow> loaded;
  loaded.reserve(count);
  std::vector<std::uint8_t> buffer(netflow::kV5HeaderBytes + netflow::kV5RecordBytes);
  for (std::uint32_t i = 0; i < count; ++i) {
    in.read(reinterpret_cast<char*>(buffer.data()),
            static_cast<std::streamsize>(buffer.size()));
    if (!in) return util::Error{"truncated capture file " + path};
    auto decoded = netflow::decode(buffer);
    if (!decoded || decoded->records.size() != 1) {
      return util::Error{"corrupt record " + std::to_string(i) + " in " + path};
    }
    CapturedFlow flow;
    flow.record = decoded->records.front();
    flow.arrival_port = static_cast<std::uint16_t>(get32(in) >> 16);
    flow.export_time_ms = get32(in);
    if (!in) return util::Error{"truncated capture file " + path};
    loaded.push_back(flow);
  }
  flows_ = std::move(loaded);
  return flows_.size();
}

}  // namespace infilter::flowtools

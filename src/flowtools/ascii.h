// ASCII flow interchange.
//
// flow-tools ships `flow-export` / `flow-import` for moving captures
// through a text format (Section 5.1.2: "export to/import from ASCII
// format"). This is that capability for our captures: one header line
// naming the columns, then one comma-separated record per flow. The text
// form is what operators grep and what external tooling consumes.

#pragma once

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "flowtools/capture.h"
#include "util/result.h"

namespace infilter::flowtools {

/// The column header emitted and required by the ASCII format.
[[nodiscard]] std::string_view ascii_header();

/// Renders flows as ASCII, header first.
[[nodiscard]] std::string export_ascii(std::span<const CapturedFlow> flows);

/// Parses ASCII produced by export_ascii (or hand-written to the same
/// schema). Blank lines and '#' comments are skipped. Fails with a line
/// number on any malformed record or on a wrong header.
[[nodiscard]] util::Result<std::vector<CapturedFlow>> import_ascii(
    std::string_view text);

}  // namespace infilter::flowtools

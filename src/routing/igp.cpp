#include "routing/igp.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <queue>

namespace infilter::routing {

IgpNetwork::IgpNetwork(int router_count, std::uint64_t seed) {
  assert(router_count >= 1);
  adjacency_.resize(static_cast<std::size_t>(router_count));
  util::Rng rng{seed};

  auto add_edge = [this, &rng](RouterId a, RouterId b) {
    if (a == b) return;
    for (const auto& e : adjacency_[static_cast<std::size_t>(a)]) {
      if (e.to == b) return;
    }
    const int weight = static_cast<int>(rng.range(1, 10));
    adjacency_[static_cast<std::size_t>(a)].push_back(Edge{b, weight, edge_count_});
    adjacency_[static_cast<std::size_t>(b)].push_back(Edge{a, weight, edge_count_});
    ++edge_count_;
  };

  // Ring guarantees connectivity; chords create alternative shortest paths
  // for churn to flip between.
  for (RouterId r = 0; r + 1 < router_count; ++r) add_edge(r, r + 1);
  if (router_count > 2) add_edge(router_count - 1, 0);
  const int chords = std::max(0, router_count - 2);
  for (int c = 0; c < chords; ++c) {
    add_edge(static_cast<RouterId>(rng.below(static_cast<std::uint64_t>(router_count))),
             static_cast<RouterId>(rng.below(static_cast<std::uint64_t>(router_count))));
  }
}

std::vector<RouterId> IgpNetwork::shortest_path(RouterId from, RouterId to) const {
  assert(from >= 0 && from < router_count());
  assert(to >= 0 && to < router_count());
  if (from == to) return {from};

  constexpr int kInf = std::numeric_limits<int>::max();
  std::vector<int> dist(adjacency_.size(), kInf);
  std::vector<RouterId> prev(adjacency_.size(), -1);
  // (distance, router); lower router id pops first among equal distances,
  // giving deterministic tie-breaks.
  using Item = std::pair<int, RouterId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> queue;
  dist[static_cast<std::size_t>(from)] = 0;
  queue.emplace(0, from);
  while (!queue.empty()) {
    const auto [d, at] = queue.top();
    queue.pop();
    if (d > dist[static_cast<std::size_t>(at)]) continue;
    if (at == to) break;
    for (const auto& edge : adjacency_[static_cast<std::size_t>(at)]) {
      const int nd = d + edge.weight;
      auto& slot = dist[static_cast<std::size_t>(edge.to)];
      if (nd < slot || (nd == slot && at < prev[static_cast<std::size_t>(edge.to)])) {
        slot = nd;
        prev[static_cast<std::size_t>(edge.to)] = at;
        queue.emplace(nd, edge.to);
      }
    }
  }
  if (dist[static_cast<std::size_t>(to)] == kInf) return {};

  std::vector<RouterId> path;
  for (RouterId at = to; at != -1; at = prev[static_cast<std::size_t>(at)]) {
    path.push_back(at);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

void IgpNetwork::churn(util::Rng& rng) {
  if (edge_count_ == 0) return;
  const int victim = static_cast<int>(rng.below(static_cast<std::uint64_t>(edge_count_)));
  const int new_weight = static_cast<int>(rng.range(1, 10));
  for (auto& edges : adjacency_) {
    for (auto& edge : edges) {
      if (edge.edge_id == victim) edge.weight = new_weight;
    }
  }
  ++version_;
}

}  // namespace infilter::routing

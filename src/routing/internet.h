// A traceroute-able internet: AS topology + per-AS IGPs + interface
// addressing + ECMP + churn processes.
//
// This is the measurement substrate for the Section 3.1 validation study.
// Three churn processes run at very different rates, reproducing the
// structure of the real measurements:
//
//   * per-AS IGP weight churn (frequent)   -> interior hops change often;
//   * per-link ECMP rehash (frequent)      -> which parallel circuit a
//     probe takes flips, changing the "raw" observed last-hop IPs while
//     /24 + FQDN aggregation sees no change (Figure 4);
//   * inter-AS link failure/repair (rare)  -> the BGP path, and hence the
//     genuine Peer AS - Border Router pair, changes.
//
// Traceroute semantics follow the usual ICMP behaviour: each hop reports
// the IP of the interface the probe *arrived* on, so border crossings show
// the ingress circuit interface and interior hops show the arrival
// interface selected by the current IGP shortest path.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/ipv4.h"
#include "routing/bgp.h"
#include "routing/igp.h"
#include "routing/topology.h"
#include "util/time.h"

namespace infilter::routing {

/// One line of traceroute output.
struct Hop {
  net::IPv4Address ip;
  std::string fqdn;
  AsId as = -1;

  friend bool operator==(const Hop&, const Hop&) = default;
};

struct TracerouteResult {
  bool complete = false;
  std::vector<AsId> as_path;  ///< source AS .. target AS
  std::vector<Hop> hops;      ///< excludes the probing host itself

  /// The last hop inside the peer AS (the AS adjacent to the target on the
  /// path) -- the "Peer AS" entity of Section 3.1. Null when incomplete or
  /// the path has fewer than two ASes.
  [[nodiscard]] const Hop* peer_hop() const;
  /// The first hop inside the target AS -- the "BR" entity of Section 3.1.
  [[nodiscard]] const Hop* br_hop() const;
};

struct ChurnRates {
  /// Expected IGP weight-churn events per AS per hour.
  double igp_events_per_as_hour = 0.28;
  /// Per-link failure probability per hour (up -> down).
  double link_fail_per_hour = 0.0022;
  /// Per-link repair probability per hour (down -> up).
  double link_repair_per_hour = 0.5;
  /// Per-link ECMP rehash events per hour (flow->circuit mapping reshuffle).
  double ecmp_rehash_per_hour = 0.10;
};

class Internet {
 public:
  Internet(const TopologyConfig& topology_config, const ChurnRates& rates,
           std::uint64_t seed);

  [[nodiscard]] const AsTopology& topology() const { return topology_; }
  [[nodiscard]] const std::vector<bool>& down_links() const { return down_; }

  /// Advances virtual time, applying all three churn processes.
  void advance(util::DurationMs dt);

  /// Traceroute from a host in `from_as` to the target site in `target_as`.
  [[nodiscard]] TracerouteResult traceroute(AsId from_as, AsId target_as);

  /// The converged route computation toward `target_as` under the current
  /// link state (cached until the next topology-affecting churn).
  [[nodiscard]] const RouteComputation& routes_to(AsId target_as);

  /// Deterministic border router for an AS's end of a link.
  [[nodiscard]] RouterId border_router(AsId as, int link_id) const;
  /// Interface address of circuit `circuit` of `link_id` on `as`'s side.
  [[nodiscard]] net::IPv4Address circuit_ip(int link_id, int circuit, AsId side) const;
  /// Which circuit the current ECMP hash maps flow (from, target) to.
  [[nodiscard]] int ecmp_circuit(int link_id, AsId from, AsId target) const;
  [[nodiscard]] const IgpNetwork& igp(AsId as) const {
    return *igps_[static_cast<std::size_t>(as)];
  }

  [[nodiscard]] std::string router_fqdn(AsId as, RouterId router) const;

 private:
  [[nodiscard]] net::IPv4Address interior_if_ip(AsId as, RouterId router,
                                                RouterId prev) const;

  AsTopology topology_;
  ChurnRates rates_;
  std::vector<std::unique_ptr<IgpNetwork>> igps_;
  std::vector<bool> down_;
  std::vector<std::uint32_t> ecmp_epoch_;
  util::Rng rng_;
  /// Bumped whenever down_ changes; invalidates cached route computations.
  std::uint64_t link_state_version_ = 0;
  struct CachedRoutes {
    std::uint64_t version = ~std::uint64_t{0};
    std::unique_ptr<RouteComputation> routes;
  };
  std::unordered_map<AsId, CachedRoutes> route_cache_;
};

}  // namespace infilter::routing

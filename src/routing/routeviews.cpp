#include "routing/routeviews.h"

#include <algorithm>
#include <charconv>
#include <sstream>

namespace infilter::routing {
namespace {

/// Splits on runs of spaces/tabs.
std::vector<std::string_view> tokenize(std::string_view line) {
  std::vector<std::string_view> out;
  std::size_t at = 0;
  while (at < line.size()) {
    while (at < line.size() && (line[at] == ' ' || line[at] == '\t')) ++at;
    std::size_t end = at;
    while (end < line.size() && line[end] != ' ' && line[end] != '\t') ++end;
    if (end > at) out.push_back(line.substr(at, end - at));
    at = end;
  }
  return out;
}

bool parse_as_number(std::string_view token, int& out) {
  const auto end = token.data() + token.size();
  const auto [ptr, ec] = std::from_chars(token.data(), end, out);
  return ec == std::errc{} && ptr == end && out >= 0;
}

}  // namespace

int classful_prefix_length(net::IPv4Address address) {
  const auto first = address.octet(0);
  if (first < 128) return 8;
  if (first < 192) return 16;
  return 24;
}

std::string BgpTable::to_text() const {
  std::ostringstream out;
  out << "   Network          Next Hop            Path\n";
  for (const auto& entry : entries_) {
    out << (entry.best ? "*> " : "*  ");
    out << entry.prefix.to_string();
    out << ' ' << entry.next_hop.to_string();
    for (const int as : entry.as_path) out << ' ' << as;
    out << ' ' << entry.origin_code << '\n';
  }
  return std::move(out).str();
}

util::Result<BgpTable> BgpTable::parse(std::string_view text) {
  BgpTable table;
  std::optional<net::Prefix> last_network;
  int line_number = 0;

  std::size_t at = 0;
  while (at <= text.size()) {
    const auto newline = text.find('\n', at);
    const auto line = text.substr(
        at, newline == std::string_view::npos ? text.size() - at : newline - at);
    at = newline == std::string_view::npos ? text.size() + 1 : newline + 1;
    ++line_number;

    auto tokens = tokenize(line);
    if (tokens.empty()) continue;
    // Status column: '*', '*>', or '>' fused with the first token.
    bool best = false;
    {
      auto& first = tokens.front();
      std::size_t strip = 0;
      while (strip < first.size() && (first[strip] == '*' || first[strip] == '>')) {
        best |= first[strip] == '>';
        ++strip;
      }
      if (strip == 0) continue;  // header or unrelated line
      first.remove_prefix(strip);
      if (first.empty()) tokens.erase(tokens.begin());
    }
    if (tokens.size() < 2) {
      return util::Error{"line " + std::to_string(line_number) +
                         ": too few columns after status"};
    }

    BgpTableEntry entry;
    entry.best = best;

    // Is the first token the network column or an omitted-network
    // continuation (next-hop first)? A token with '/' is a prefix; a bare
    // address is the network iff the *second* token is also an address
    // (next hop) -- otherwise the network was omitted.
    std::size_t token_at = 0;
    const auto first_prefix = net::Prefix::parse(tokens[0]);
    const auto first_address = net::IPv4Address::parse(tokens[0]);
    const bool explicit_mask = tokens[0].find('/') != std::string_view::npos;
    const bool second_is_address =
        tokens.size() > 1 && net::IPv4Address::parse(tokens[1]).has_value();
    if (explicit_mask && first_prefix.has_value()) {
      entry.prefix = *first_prefix;
      ++token_at;
    } else if (first_address.has_value() && second_is_address) {
      entry.prefix = net::Prefix{*first_address, classful_prefix_length(*first_address)};
      ++token_at;
    } else if (last_network.has_value()) {
      entry.prefix = *last_network;
    } else {
      return util::Error{"line " + std::to_string(line_number) +
                         ": no network column and no previous network"};
    }
    last_network = entry.prefix;

    // Next hop.
    if (token_at >= tokens.size()) {
      return util::Error{"line " + std::to_string(line_number) + ": missing next hop"};
    }
    const auto hop = net::IPv4Address::parse(tokens[token_at]);
    if (!hop.has_value()) {
      return util::Error{"line " + std::to_string(line_number) + ": bad next hop '" +
                         std::string(tokens[token_at]) + "'"};
    }
    entry.next_hop = *hop;
    ++token_at;

    // AS path, then an optional origin code.
    for (; token_at < tokens.size(); ++token_at) {
      int as = 0;
      if (parse_as_number(tokens[token_at], as)) {
        entry.as_path.push_back(as);
      } else if (tokens[token_at].size() == 1 &&
                 (tokens[token_at][0] == 'i' || tokens[token_at][0] == 'e' ||
                  tokens[token_at][0] == '?' || tokens[token_at][0] == 'I')) {
        entry.origin_code = tokens[token_at][0] == 'I' ? 'i' : tokens[token_at][0];
      } else {
        return util::Error{"line " + std::to_string(line_number) + ": bad path token '" +
                           std::string(tokens[token_at]) + "'"};
      }
    }
    if (entry.as_path.empty()) {
      // A route originated by the vantage itself ("*> 4.0.4.90 1 i" has a
      // path; an entirely empty path only occurs for local routes, which
      // carry no ingress information). Keep it with an empty path.
    }
    table.add(std::move(entry));
  }
  return table;
}

TargetMapping BgpTable::analyze_target(net::IPv4Address target_ip) const {
  TargetMapping mapping;

  // Covering prefixes and the target AS: the origin of the longest
  // covering prefix. Ties between different origins for the same address
  // are resolved in favour of the more specific prefix, as in the paper.
  int best_length = -1;
  for (const auto& entry : entries_) {
    if (entry.as_path.empty() || !entry.prefix.contains(target_ip)) continue;
    if (entry.prefix.length() > best_length) {
      best_length = entry.prefix.length();
      mapping.target_as = entry.as_path.back();
    }
  }
  if (best_length < 0) return mapping;

  // Process covering prefixes from least to most specific so that the
  // most-specific assignment wins. Within one prefix, best-marked entries
  // are applied last (they are the vantage's selected route).
  std::vector<const BgpTableEntry*> covering;
  for (const auto& entry : entries_) {
    if (entry.as_path.empty() || !entry.prefix.contains(target_ip)) continue;
    if (entry.as_path.back() != mapping.target_as) continue;
    covering.push_back(&entry);
  }
  std::stable_sort(covering.begin(), covering.end(),
                   [](const BgpTableEntry* a, const BgpTableEntry* b) {
                     if (a->prefix.length() != b->prefix.length()) {
                       return a->prefix.length() < b->prefix.length();
                     }
                     return !a->best && b->best;
                   });

  std::set<net::Prefix> prefixes;
  for (const auto* entry : covering) {
    prefixes.insert(entry->prefix);
    const auto& path = entry->as_path;
    if (path.size() < 2) continue;  // the vantage *is* the target
    const int peer = path[path.size() - 2];
    mapping.peer_ases.insert(peer);
    // Every AS ahead of the peer uses this path's suffix to reach the
    // target, so they all enter via `peer` (Section 3.2's derivation).
    for (std::size_t i = 0; i + 2 < path.size(); ++i) {
      mapping.source_to_peer[path[i]] = peer;
    }
  }
  // Direct peers are not sources (the paper's source list excludes them).
  for (const int peer : mapping.peer_ases) mapping.source_to_peer.erase(peer);

  mapping.relevant_prefixes.assign(prefixes.begin(), prefixes.end());
  return mapping;
}

BgpTable snapshot_table(const AsTopology& topology, AsId target,
                        std::span<const net::Prefix> announced,
                        const std::vector<bool>& down_links) {
  BgpTable table;
  const RouteComputation routes(topology, target, down_links);
  for (const auto& prefix : announced) {
    for (AsId vantage = 0; vantage < topology.as_count(); ++vantage) {
      if (vantage == target) continue;
      const auto path = routes.path(vantage);
      if (path.empty()) continue;
      BgpTableEntry entry;
      entry.best = true;  // one (selected) route per vantage in miniature
      entry.prefix = prefix;
      // Vantage peering address: synthetic, unique per vantage.
      entry.next_hop = net::IPv4Address{0xC0000000u + static_cast<std::uint32_t>(vantage)};
      entry.as_path.reserve(path.size());
      for (const AsId as : path) entry.as_path.push_back(topology.as_number(as));
      table.add(std::move(entry));
    }
  }
  return table;
}

}  // namespace infilter::routing

// Policy routing (BGP) over the AS topology.
//
// Computes the stable Gao-Rexford route solution toward one target AS:
// every AS prefers customer-learned routes over peer-learned over
// provider-learned, then shorter AS paths, then the lowest next-hop AS
// number; export follows the valley-free rules (routes learned from peers
// or providers are re-advertised only to customers). This is the process
// the paper's Routeviews analysis observes: "the best AS-level path that
// traffic from each of the source ASs on the path would take" and hence
// the mapping from source AS to the peer AS used to enter the target
// (Section 3.2).
//
// Link failures (the `down_links` mask) model the churn that makes the
// mapping drift between Routeviews snapshots.

#pragma once

#include <cstdint>
#include <vector>

#include "routing/topology.h"

namespace infilter::routing {

/// How an AS learned its selected route, in decreasing preference.
enum class RouteType : std::uint8_t { kNone, kSelf, kCustomer, kPeer, kProvider };

struct RouteEntry {
  RouteType type = RouteType::kNone;
  /// AS-path length in hops (target itself = 0).
  int length = 0;
  AsId next_hop = -1;
  /// Inter-AS link carrying the first hop.
  int link_id = -1;
};

/// The converged routing solution toward a single target AS.
class RouteComputation {
 public:
  /// `down_links[link_id]` removes that link. An empty vector means all
  /// links are up.
  RouteComputation(const AsTopology& topology, AsId target,
                   const std::vector<bool>& down_links = {});

  [[nodiscard]] AsId target() const { return target_; }
  [[nodiscard]] const RouteEntry& route(AsId from) const {
    return routes_[static_cast<std::size_t>(from)];
  }

  /// Full AS path from `from` to the target, both endpoints included.
  /// Empty when the target is unreachable from `from`.
  [[nodiscard]] std::vector<AsId> path(AsId from) const;

  /// The peer AS whose link traffic from `from` uses to enter the target
  /// network (the last AS before the target on the path), or -1 when
  /// unreachable or from == target. This is the quantity whose stability
  /// the InFilter hypothesis asserts.
  [[nodiscard]] AsId ingress_peer(AsId from) const;

  /// The inter-AS link over which traffic from `from` enters the target,
  /// or -1 when unreachable.
  [[nodiscard]] int ingress_link(AsId from) const;

 private:
  const AsTopology& topology_;
  AsId target_;
  std::vector<RouteEntry> routes_;
};

/// Markov link-failure process: each step, up links fail with p_fail and
/// down links recover with p_repair. Drives both validation studies.
class LinkFailureProcess {
 public:
  LinkFailureProcess(std::size_t link_count, double p_fail, double p_repair,
                     std::uint64_t seed);

  /// Advances one step and returns the current down-mask.
  const std::vector<bool>& step();
  [[nodiscard]] const std::vector<bool>& down() const { return down_; }

 private:
  double p_fail_;
  double p_repair_;
  util::Rng rng_;
  std::vector<bool> down_;
};

}  // namespace infilter::routing

// Routeviews-style BGP tables: the raw material of the Section 3.2
// validation.
//
// The paper downloads "show ip bgp" dumps from routeviews.org and, for
// each target network, derives the mapping from every source AS on an
// advertised path to the peer AS its traffic would use to enter the
// target -- honouring longest-prefix match ("4.2.101.0/24 is more
// specific than 4.0.0.0/8. Hence AS 6325 will be used by traffic from
// AS 1224 and AS 38").
//
// This module implements the table model, the text format (writer +
// parser, tolerant of the dump quirks the paper's sample shows: omitted
// network columns on continuation lines, classful prefixes without a
// mask), the target analysis, and a snapshot generator that renders our
// synthetic topology in the same format -- so the study methodology can be
// exercised end-to-end through real dump text.

#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "net/ipv4.h"
#include "routing/bgp.h"
#include "routing/topology.h"
#include "util/result.h"

namespace infilter::routing {

/// One line of a "show ip bgp" dump.
struct BgpTableEntry {
  bool best = false;  ///< the '>' marker
  net::Prefix prefix;
  net::IPv4Address next_hop;
  /// AS path as advertised: the vantage peer's AS first, the origin AS
  /// (the target network) last.
  std::vector<int> as_path;
  char origin_code = 'i';

  friend bool operator==(const BgpTableEntry&, const BgpTableEntry&) = default;
};

/// The Section 3.2 output for one target: peer ASes and the
/// source-AS -> peer-AS mapping.
struct TargetMapping {
  int target_as = 0;
  /// Prefixes originated by the target that cover the probed address.
  std::vector<net::Prefix> relevant_prefixes;
  std::set<int> peer_ases;
  /// Source AS -> peer AS used for ingress, after longest-prefix-match
  /// resolution across the covering prefixes.
  std::map<int, int> source_to_peer;
};

class BgpTable {
 public:
  void add(BgpTableEntry entry) { entries_.push_back(std::move(entry)); }
  [[nodiscard]] const std::vector<BgpTableEntry>& entries() const { return entries_; }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  /// Renders "show ip bgp"-style text (network column repeated on every
  /// line; prefixes always carry an explicit mask).
  [[nodiscard]] std::string to_text() const;

  /// Parses dump text. Tolerates: '*'/'*>' status columns, omitted network
  /// on continuation lines (reuses the previous network), classful
  /// prefixes without a mask, and 'i'/'e'/'?' origin codes. Unparseable
  /// lines abort with a message naming the line number.
  static util::Result<BgpTable> parse(std::string_view text);

  /// The Section 3.2 analysis for the target network containing
  /// `target_ip`: selects the covering prefixes, resolves each source AS
  /// through its most-specific covering prefix, and maps it to the peer AS
  /// adjacent to the target on that path. Sources that are themselves peer
  /// ASes of the target are not included in the mapping (the paper's
  /// source list excludes direct peers).
  [[nodiscard]] TargetMapping analyze_target(net::IPv4Address target_ip) const;

 private:
  std::vector<BgpTableEntry> entries_;
};

/// Classful mask inference for dump prefixes written without a length
/// ("4.0.0.0" -> /8, "141.142.0.0" -> /16, "192.0.2.0" -> /24).
[[nodiscard]] int classful_prefix_length(net::IPv4Address address);

/// Renders the synthetic topology as a Routeviews table: one entry per
/// vantage AS per prefix announced by `target`, following the converged
/// policy routes. Vantage set = every AS with a route (the full mesh of
/// Routeviews peers, in miniature).
[[nodiscard]] BgpTable snapshot_table(const AsTopology& topology, AsId target,
                                      std::span<const net::Prefix> announced,
                                      const std::vector<bool>& down_links = {});

}  // namespace infilter::routing

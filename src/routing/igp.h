// Intra-AS routing: a small OSPF-like IGP per AS.
//
// The paper conjectures that the interior of an AS path is volatile because
// it follows "the instantaneous shortest-path established by the local
// interior routing protocol", while the last AS-level hop is pinned by slow
// BGP policy (Section 3 conclusion). To reproduce the traceroute study's
// raw-vs-aggregated statistics we therefore need real interior paths that
// actually change: each AS owns a small weighted router graph, interior
// paths are Dijkstra shortest paths, and a churn process perturbs link
// weights far more often than inter-AS links fail.

#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace infilter::routing {

/// Router index local to one AS.
using RouterId = int;

/// One AS's interior network: routers, weighted links, Dijkstra paths.
class IgpNetwork {
 public:
  /// Builds a connected random graph of `router_count` >= 1 routers
  /// (a ring plus random chords) with weights in [1, 10].
  IgpNetwork(int router_count, std::uint64_t seed);

  [[nodiscard]] int router_count() const { return static_cast<int>(adjacency_.size()); }

  /// Interior shortest path from `from` to `to`, inclusive of both ends.
  /// Ties broken toward lower router ids, so paths are deterministic for a
  /// fixed weight state.
  [[nodiscard]] std::vector<RouterId> shortest_path(RouterId from, RouterId to) const;

  /// Perturbs one random link weight (the OSPF reweighting/flap event).
  void churn(util::Rng& rng);

  /// Monotone counter of churn events; callers can cheaply detect that
  /// cached paths may have changed.
  [[nodiscard]] std::uint64_t version() const { return version_; }

 private:
  struct Edge {
    RouterId to;
    int weight;
    int edge_id;
  };

  std::vector<std::vector<Edge>> adjacency_;
  int edge_count_ = 0;
  std::uint64_t version_ = 0;
};

}  // namespace infilter::routing

#include "routing/bgp.h"

#include <algorithm>
#include <cassert>
#include <queue>
#include <tuple>

namespace infilter::routing {
namespace {

struct Candidate {
  int length;
  int next_hop_asn;  // tie-break key: lowest advertised AS number
  AsId to;
  AsId via;
  int link_id;

  bool operator>(const Candidate& other) const {
    return std::tie(length, next_hop_asn) > std::tie(other.length, other.next_hop_asn);
  }
};

using CandidateQueue =
    std::priority_queue<Candidate, std::vector<Candidate>, std::greater<>>;

}  // namespace

RouteComputation::RouteComputation(const AsTopology& topology, AsId target,
                                   const std::vector<bool>& down_links)
    : topology_(topology), target_(target) {
  const auto n = static_cast<std::size_t>(topology.as_count());
  routes_.assign(n, RouteEntry{});
  routes_[static_cast<std::size_t>(target)] = RouteEntry{RouteType::kSelf, 0, -1, -1};

  auto link_up = [&down_links](int link_id) {
    return down_links.empty() || !down_links[static_cast<std::size_t>(link_id)];
  };

  // Phase 1 -- customer routes: the target's direct and transitive
  // providers learn the route "uphill". Dijkstra with unit weights; the
  // tie-break (lowest next-hop AS number) rides in the queue ordering.
  {
    CandidateQueue queue;
    auto push_to_providers = [&](AsId from, int length) {
      for (const auto& nb : topology.neighbors(from)) {
        // `from` advertises to its providers: neighbors it sees as provider.
        if (nb.relationship == Relationship::kProvider && link_up(nb.link_id)) {
          queue.push(Candidate{length + 1, topology.as_number(from), nb.as, from,
                               nb.link_id});
        }
      }
    };
    push_to_providers(target, 0);
    while (!queue.empty()) {
      const Candidate c = queue.top();
      queue.pop();
      auto& entry = routes_[static_cast<std::size_t>(c.to)];
      if (entry.type != RouteType::kNone) continue;  // already settled
      entry = RouteEntry{RouteType::kCustomer, c.length, c.via, c.link_id};
      push_to_providers(c.to, c.length);
    }
  }

  // Phase 2 -- peer routes: an AS whose peer has a customer route (or is
  // the target) learns a one-hop-longer peer route. Peer routes are never
  // re-advertised to peers, so no propagation: a single relaxation pass.
  for (AsId as = 0; as < topology.as_count(); ++as) {
    auto& entry = routes_[static_cast<std::size_t>(as)];
    if (entry.type != RouteType::kNone) continue;  // customer route wins
    RouteEntry best{};
    int best_asn = 0;
    for (const auto& nb : topology.neighbors(as)) {
      if (nb.relationship != Relationship::kPeer || !link_up(nb.link_id)) continue;
      const auto& peer_route = routes_[static_cast<std::size_t>(nb.as)];
      const bool usable =
          peer_route.type == RouteType::kSelf || peer_route.type == RouteType::kCustomer;
      if (!usable) continue;
      const int length = peer_route.length + 1;
      const int asn = topology.as_number(nb.as);
      if (best.type == RouteType::kNone || length < best.length ||
          (length == best.length && asn < best_asn)) {
        best = RouteEntry{RouteType::kPeer, length, nb.as, nb.link_id};
        best_asn = asn;
      }
    }
    if (best.type != RouteType::kNone) entry = best;
  }

  // Phase 3 -- provider routes: every routed AS advertises its selected
  // route to its customers; provider routes chain downhill.
  {
    CandidateQueue queue;
    auto push_to_customers = [&](AsId from) {
      const auto& route = routes_[static_cast<std::size_t>(from)];
      for (const auto& nb : topology.neighbors(from)) {
        if (nb.relationship == Relationship::kCustomer && link_up(nb.link_id)) {
          queue.push(Candidate{route.length + 1, topology.as_number(from), nb.as,
                               from, nb.link_id});
        }
      }
    };
    for (AsId as = 0; as < topology.as_count(); ++as) {
      if (routes_[static_cast<std::size_t>(as)].type != RouteType::kNone) {
        push_to_customers(as);
      }
    }
    while (!queue.empty()) {
      const Candidate c = queue.top();
      queue.pop();
      auto& entry = routes_[static_cast<std::size_t>(c.to)];
      if (entry.type != RouteType::kNone) continue;
      entry = RouteEntry{RouteType::kProvider, c.length, c.via, c.link_id};
      push_to_customers(c.to);
    }
  }
}

std::vector<AsId> RouteComputation::path(AsId from) const {
  std::vector<AsId> out;
  AsId at = from;
  while (true) {
    const auto& entry = routes_[static_cast<std::size_t>(at)];
    if (entry.type == RouteType::kNone) return {};
    out.push_back(at);
    if (entry.type == RouteType::kSelf) return out;
    // Path lengths strictly decrease along next hops, so this terminates.
    at = entry.next_hop;
  }
}

AsId RouteComputation::ingress_peer(AsId from) const {
  const auto p = path(from);
  if (p.size() < 2) return -1;
  return p[p.size() - 2];
}

int RouteComputation::ingress_link(AsId from) const {
  const auto p = path(from);
  if (p.size() < 2) return -1;
  return routes_[static_cast<std::size_t>(p[p.size() - 2])].link_id;
}

LinkFailureProcess::LinkFailureProcess(std::size_t link_count, double p_fail,
                                       double p_repair, std::uint64_t seed)
    : p_fail_(p_fail), p_repair_(p_repair), rng_(seed), down_(link_count, false) {}

const std::vector<bool>& LinkFailureProcess::step() {
  for (std::size_t i = 0; i < down_.size(); ++i) {
    if (down_[i]) {
      if (rng_.chance(p_repair_)) down_[i] = false;
    } else if (rng_.chance(p_fail_)) {
      down_[i] = true;
    }
  }
  return down_;
}

}  // namespace infilter::routing

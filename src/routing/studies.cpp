#include "routing/studies.h"

#include <algorithm>
#include <cassert>
#include <optional>
#include <set>
#include <unordered_set>

namespace infilter::routing {

bool aggregated_equal(const Hop& a, const Hop& b) {
  if (net::to_slash24(a.ip) == net::to_slash24(b.ip)) return true;
  return a.fqdn == b.fqdn;
}

std::vector<AsId> pick_spread_targets(const AsTopology& topology, int count,
                                      std::uint64_t seed, int min_degree) {
  // Sort eligible ASes by degree and sample evenly across the sorted
  // order, so the targets span the whole "number of peer ASs" axis of
  // Figure 5.
  std::vector<AsId> by_degree;
  for (AsId as = 0; as < topology.as_count(); ++as) {
    if (topology.degree(as) >= min_degree) by_degree.push_back(as);
  }
  if (static_cast<int>(by_degree.size()) < count) {
    // Degenerate topology: fall back to every AS.
    by_degree.clear();
    for (AsId as = 0; as < topology.as_count(); ++as) by_degree.push_back(as);
  }
  std::sort(by_degree.begin(), by_degree.end(), [&topology](AsId a, AsId b) {
    return topology.degree(a) < topology.degree(b);
  });
  util::Rng rng{seed};
  std::vector<AsId> targets;
  targets.reserve(static_cast<std::size_t>(count));
  const auto n = static_cast<int>(by_degree.size());
  for (int i = 0; i < count; ++i) {
    // The i-th slice of the degree distribution, jittered within the slice.
    const int lo = i * n / count;
    const int hi = std::max(lo, (i + 1) * n / count - 1);
    targets.push_back(by_degree[static_cast<std::size_t>(rng.range(lo, hi))]);
  }
  return targets;
}

std::vector<AsId> pick_looking_glass_sites(const AsTopology& topology, int count,
                                           const std::vector<AsId>& exclude,
                                           std::uint64_t seed) {
  util::Rng rng{seed};
  std::unordered_set<AsId> taken(exclude.begin(), exclude.end());
  std::vector<AsId> sites;
  sites.reserve(static_cast<std::size_t>(count));
  // Looking-Glass sites live in stub/edge networks; reject duplicates.
  while (static_cast<int>(sites.size()) < count) {
    const auto as =
        static_cast<AsId>(rng.below(static_cast<std::uint64_t>(topology.as_count())));
    if (taken.contains(as)) continue;
    taken.insert(as);
    sites.push_back(as);
  }
  return sites;
}

TracerouteStudyResult run_traceroute_study(const TracerouteStudyConfig& config) {
  Internet internet(config.topology, config.churn, config.seed);
  const auto targets =
      pick_spread_targets(internet.topology(), config.target_count, config.seed + 1);
  const auto sites = pick_looking_glass_sites(internet.topology(),
                                              config.looking_glass_sites, targets,
                                              config.seed + 2);

  struct LastReading {
    Hop peer;
    Hop br;
    std::vector<Hop> full_path;
  };
  // Previous completed reading per (site, target) pair.
  std::vector<std::optional<LastReading>> previous(sites.size() * targets.size());

  util::Rng completion_rng{config.seed + 3};
  TracerouteStudyResult result;

  for (int reading = 0; reading < config.readings; ++reading) {
    internet.advance(config.period);
    for (std::size_t s = 0; s < sites.size(); ++s) {
      for (std::size_t t = 0; t < targets.size(); ++t) {
        if (!completion_rng.chance(config.completion_probability)) continue;
        const auto trace = internet.traceroute(sites[s], targets[t]);
        const Hop* peer = trace.peer_hop();
        const Hop* br = trace.br_hop();
        if (peer == nullptr || br == nullptr) continue;
        ++result.samples;

        auto& prev = previous[s * targets.size() + t];
        if (prev.has_value()) {
          ++result.transitions;
          const bool raw_changed = prev->peer.ip != peer->ip || prev->br.ip != br->ip;
          const bool agg_changed = !aggregated_equal(prev->peer, *peer) ||
                                   !aggregated_equal(prev->br, *br);
          if (raw_changed) ++result.raw_changes;
          if (agg_changed) ++result.aggregated_changes;
          if (prev->peer.as != peer->as) ++result.peer_as_changes;
          if (prev->full_path != trace.hops) ++result.full_path_changes;
        }
        prev = LastReading{*peer, *br, trace.hops};
      }
    }
  }
  return result;
}

StabilityProfile run_stability_profile(const TracerouteStudyConfig& config) {
  Internet internet(config.topology, config.churn, config.seed);
  const auto targets =
      pick_spread_targets(internet.topology(), config.target_count, config.seed + 1);
  const auto sites = pick_looking_glass_sites(internet.topology(),
                                              config.looking_glass_sites, targets,
                                              config.seed + 2);

  StabilityProfile profile;
  std::array<std::uint64_t, StabilityProfile::kBuckets> changes{};
  // Previous reading's hops per (site, target), for positional comparison.
  std::vector<std::vector<Hop>> previous(sites.size() * targets.size());

  for (int reading = 0; reading < config.readings; ++reading) {
    internet.advance(config.period);
    for (std::size_t s = 0; s < sites.size(); ++s) {
      for (std::size_t t = 0; t < targets.size(); ++t) {
        const auto trace = internet.traceroute(sites[s], targets[t]);
        if (!trace.complete || trace.hops.empty()) continue;
        auto& prev = previous[s * targets.size() + t];
        // Positional comparison aligned from both ends: the first half of
        // the path is compared source-anchored, the second half
        // target-anchored, so a transit detour that inserts or removes
        // hops shows up as mid-path change rather than smearing to the
        // edges. Raw IP comparison: Figure 1 is about the route itself,
        // before any smoothing.
        if (!prev.empty()) {
          const std::size_t hops = trace.hops.size();
          for (std::size_t h = 0; h < hops; ++h) {
            const int bucket = static_cast<int>(
                h * StabilityProfile::kBuckets / hops);
            profile.samples[static_cast<std::size_t>(bucket)] += 1;
            const bool from_start = h < hops / 2;
            bool changed;
            if (from_start) {
              changed = h >= prev.size() || prev[h].ip != trace.hops[h].ip;
            } else {
              const std::size_t from_end = hops - h;  // 1 = last hop
              changed = from_end > prev.size() ||
                        prev[prev.size() - from_end].ip != trace.hops[h].ip;
            }
            if (changed) changes[static_cast<std::size_t>(bucket)] += 1;
          }
        }
        prev = trace.hops;
      }
    }
  }
  for (int b = 0; b < StabilityProfile::kBuckets; ++b) {
    const auto i = static_cast<std::size_t>(b);
    profile.change_rate[i] =
        profile.samples[i] == 0
            ? 0.0
            : static_cast<double>(changes[i]) / static_cast<double>(profile.samples[i]);
  }
  return profile;
}

BgpStudyResult run_bgp_study(const BgpStudyConfig& config) {
  // The BGP study only observes AS-level policy routing; IGP and ECMP
  // churn are irrelevant, so it drives the topology + link failures
  // directly instead of a full Internet.
  const AsTopology topology = AsTopology::generate(config.topology, config.seed);
  const double hours =
      static_cast<double>(config.period) / static_cast<double>(util::kHour);
  LinkFailureProcess failures(topology.links().size(),
                              std::min(1.0, config.churn.link_fail_per_hour * hours),
                              std::min(1.0, config.churn.link_repair_per_hour * hours),
                              config.seed + 17);
  const auto targets = pick_spread_targets(topology, config.target_count, config.seed + 1);

  // The targets' own access circuits stay up: the paper's targets are
  // production ISP networks whose multihomed access links did not fail
  // during the 30-day window (its maximum observed mapping change is 5%;
  // one access-link failure on a low-degree target would move far more).
  // Mapping churn therefore comes from re-routing *upstream* of the
  // targets, which shifts sources between peers a few at a time.
  std::vector<bool> frozen(topology.links().size(), false);
  for (const auto target : targets) {
    for (const auto& nb : topology.neighbors(target)) {
      frozen[static_cast<std::size_t>(nb.link_id)] = true;
    }
  }

  struct TargetState {
    std::vector<AsId> previous_peer;  ///< per source AS, -1 = unreachable
    std::set<AsId> peers_seen;
    double change_sum = 0;
    double change_max = 0;
    int comparisons = 0;
  };
  std::vector<TargetState> states(targets.size());
  for (auto& state : states) {
    state.previous_peer.assign(static_cast<std::size_t>(topology.as_count()), -1);
  }

  for (int snapshot = 0; snapshot < config.snapshots; ++snapshot) {
    std::vector<bool> down = failures.step();
    for (std::size_t l = 0; l < down.size(); ++l) {
      if (frozen[l]) down[l] = false;
    }
    for (std::size_t t = 0; t < targets.size(); ++t) {
      const RouteComputation routes(topology, targets[t], down);
      auto& state = states[t];
      int compared = 0;
      int changed = 0;
      for (AsId source = 0; source < topology.as_count(); ++source) {
        if (source == targets[t]) continue;
        const AsId peer = routes.ingress_peer(source);
        if (peer >= 0) state.peers_seen.insert(peer);
        auto& prev = state.previous_peer[static_cast<std::size_t>(source)];
        if (snapshot > 0 && prev >= 0 && peer >= 0) {
          ++compared;
          if (peer != prev) ++changed;
        }
        prev = peer;
      }
      if (compared > 0) {
        const double fraction = static_cast<double>(changed) / compared;
        state.change_sum += fraction;
        state.change_max = std::max(state.change_max, fraction);
        ++state.comparisons;
      }
    }
  }

  BgpStudyResult result;
  result.targets.reserve(targets.size());
  for (std::size_t t = 0; t < targets.size(); ++t) {
    const auto& state = states[t];
    BgpTargetSeries series;
    series.target = targets[t];
    series.as_number = topology.as_number(targets[t]);
    series.peer_as_count = static_cast<int>(state.peers_seen.size());
    series.avg_fractional_change =
        state.comparisons == 0 ? 0.0 : state.change_sum / state.comparisons;
    series.max_fractional_change = state.change_max;
    result.targets.push_back(series);
    result.overall_avg_change += series.avg_fractional_change;
    result.overall_max_change =
        std::max(result.overall_max_change, series.max_fractional_change);
  }
  if (!result.targets.empty()) {
    result.overall_avg_change /= static_cast<double>(result.targets.size());
  }
  return result;
}

}  // namespace infilter::routing

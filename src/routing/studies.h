// The two hypothesis-validation studies of Section 3.
//
// TracerouteStudy reproduces Section 3.1: periodic traceroutes from
// Looking-Glass sites to target networks, comparing the last AS-level hop
// (Peer AS IP, BR IP) between successive readings, both "raw" and after
// /24 + FQDN aggregation (Figure 4).
//
// BgpStudy reproduces Section 3.2 / Figure 5: periodic Routeviews-style
// snapshots of the source-AS -> peer-AS mapping for each target network,
// measuring the fractional change of the mapping between snapshots.

#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "routing/internet.h"
#include "util/time.h"

namespace infilter::routing {

struct TracerouteStudyConfig {
  int looking_glass_sites = 24;
  int target_count = 20;
  util::DurationMs period = 30 * util::kMinute;
  /// Number of periodic readings (the paper's 24-hour run at 30 minutes
  /// gives 49, its 4-day run at 60 minutes gives 97).
  int readings = 49;
  /// Fraction of traceroutes that complete ("some traceroutes did not
  /// complete, hence fewer samples").
  double completion_probability = 0.45;
  std::uint64_t seed = 1;
  TopologyConfig topology;
  ChurnRates churn;
};

struct TracerouteStudyResult {
  /// Completed traceroute samples.
  int samples = 0;
  /// Pairs of consecutive completed samples compared.
  int transitions = 0;
  /// Either raw Peer or raw BR IP changed between consecutive samples.
  int raw_changes = 0;
  /// Changes surviving /24 + FQDN smoothing.
  int aggregated_changes = 0;
  /// Transitions where the peer AS itself changed (genuine route change).
  int peer_as_changes = 0;
  /// Transitions where any hop of the full path changed -- the interior
  /// volatility the paper cites [LABO][VPAX] to contrast with the last hop.
  int full_path_changes = 0;

  [[nodiscard]] double raw_change_rate() const {
    return transitions == 0 ? 0.0 : static_cast<double>(raw_changes) / transitions;
  }
  [[nodiscard]] double aggregated_change_rate() const {
    return transitions == 0 ? 0.0
                            : static_cast<double>(aggregated_changes) / transitions;
  }
  [[nodiscard]] double full_path_change_rate() const {
    return transitions == 0 ? 0.0
                            : static_cast<double>(full_path_changes) / transitions;
  }
};

[[nodiscard]] TracerouteStudyResult run_traceroute_study(
    const TracerouteStudyConfig& config);

/// Figure 1's conceptual curve measured: per-hop stability of the route as
/// a function of the hop's relative position between source and target.
/// Egress filtering exploits the stable region near the source; InFilter
/// exploits the stable region near the target; the middle of the path is
/// volatile [LABO][VPAX].
struct StabilityProfile {
  /// Position buckets from source (0) to target (kBuckets-1).
  static constexpr int kBuckets = 10;
  /// Fraction of readings in which the hop at this relative position
  /// changed from the previous reading (aggregated /24+FQDN comparison).
  std::array<double, kBuckets> change_rate{};
  std::array<std::uint64_t, kBuckets> samples{};
};

[[nodiscard]] StabilityProfile run_stability_profile(
    const TracerouteStudyConfig& config);

/// Aggregated comparison of one observed hop entity (Section 3.1): two
/// readings match when their /24 subnets agree or their FQDNs agree.
[[nodiscard]] bool aggregated_equal(const Hop& a, const Hop& b);

struct BgpStudyConfig {
  int target_count = 20;
  /// Snapshot count (30 days every 2 hours = ~346 in the paper).
  int snapshots = 346;
  util::DurationMs period = 2 * util::kHour;
  std::uint64_t seed = 1;
  TopologyConfig topology;
  ChurnRates churn;
};

struct BgpTargetSeries {
  AsId target = -1;
  int as_number = 0;
  /// Distinct peer ASes observed carrying ingress traffic over the study.
  int peer_as_count = 0;
  /// Mean fractional change of the source-AS set between snapshots.
  double avg_fractional_change = 0;
  double max_fractional_change = 0;
};

struct BgpStudyResult {
  std::vector<BgpTargetSeries> targets;
  double overall_avg_change = 0;
  double overall_max_change = 0;
};

[[nodiscard]] BgpStudyResult run_bgp_study(const BgpStudyConfig& config);

/// Picks `count` target ASes spanning the degree range above `min_degree`.
/// The paper's 20 targets are production ISP networks (1..~55 peer ASes),
/// not single-homed stubs; both studies use min_degree >= 3 so a target
/// has real ingress diversity. Exposed for the benches so both studies and
/// the EIA-bootstrap example use the same targets.
[[nodiscard]] std::vector<AsId> pick_spread_targets(const AsTopology& topology,
                                                    int count, std::uint64_t seed,
                                                    int min_degree = 3);

/// Picks `count` stub ASes to act as globally distributed Looking-Glass
/// sites, disjoint from `exclude`.
[[nodiscard]] std::vector<AsId> pick_looking_glass_sites(
    const AsTopology& topology, int count, const std::vector<AsId>& exclude,
    std::uint64_t seed);

}  // namespace infilter::routing

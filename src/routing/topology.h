// AS-level Internet topology for the hypothesis-validation studies.
//
// Section 3 of the paper validates the InFilter hypothesis against the real
// Internet (Looking-Glass traceroutes + Routeviews BGP dumps). We have no
// Internet, so this module synthesizes a Gao-Rexford style AS graph: a
// tier-1 clique, multihomed tier-2 providers, and stub ASes, connected by
// customer-provider and peer-peer links. Inter-AS links can consist of
// several parallel (load-shared) physical circuits -- the redundancy that
// makes the paper's "raw" last-hop readings flap (Figure 4).

#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace infilter::routing {

/// Dense AS identifier (index into the topology's AS table).
using AsId = int;

/// Business relationship of a link, stated from the side of `from`:
/// the neighbor is our customer, our peer, or our provider.
enum class Relationship : std::uint8_t { kCustomer, kPeer, kProvider };

[[nodiscard]] constexpr Relationship reverse(Relationship r) {
  switch (r) {
    case Relationship::kCustomer: return Relationship::kProvider;
    case Relationship::kProvider: return Relationship::kCustomer;
    case Relationship::kPeer: return Relationship::kPeer;
  }
  return Relationship::kPeer;
}

/// One inter-AS adjacency as seen from a specific AS.
struct Neighbor {
  AsId as = 0;
  Relationship relationship = Relationship::kPeer;
  /// Undirected link identifier, shared by both directions; indexes the
  /// topology's link table (IP addressing, parallel-circuit count).
  int link_id = 0;
};

/// Undirected inter-AS link metadata.
struct Link {
  AsId a = 0;
  AsId b = 0;
  /// `a`'s relationship toward `b` (a sees b as ...).
  Relationship a_sees_b = Relationship::kPeer;
  /// Number of parallel physical circuits (1..3). Circuits beyond the
  /// first model the redundant/load-shared links of Figure 4.
  int parallel_circuits = 1;
  /// True when the parallel circuits are numbered from different /24
  /// subnets (the case that defeats /24 aggregation and needs FQDN
  /// smoothing, Section 3.1).
  bool circuits_span_subnets = false;
};

/// AS tiers, used by generation and by target selection in the studies.
enum class Tier : std::uint8_t { kTier1, kTier2, kStub };

struct TopologyConfig {
  int tier1_count = 8;
  int tier2_count = 56;
  int stub_count = 336;
  /// Each tier-2 AS gets this many tier-1/tier-2 providers (1..).
  int tier2_min_providers = 1;
  int tier2_max_providers = 3;
  /// Probability that any two tier-2 ASes peer.
  double tier2_peer_probability = 0.08;
  int stub_min_providers = 1;
  int stub_max_providers = 2;
  /// Fraction of inter-AS links with 2-3 parallel circuits.
  double parallel_link_fraction = 0.45;
  /// Among parallel links, fraction whose circuits are numbered from
  /// different /24s.
  double cross_subnet_fraction = 0.3;
};

/// Immutable AS graph.
class AsTopology {
 public:
  /// Generates a topology deterministically from the seed.
  static AsTopology generate(const TopologyConfig& config, std::uint64_t seed);

  [[nodiscard]] int as_count() const { return static_cast<int>(adjacency_.size()); }
  [[nodiscard]] const std::vector<Neighbor>& neighbors(AsId as) const {
    return adjacency_[static_cast<std::size_t>(as)];
  }
  [[nodiscard]] Tier tier(AsId as) const { return tiers_[static_cast<std::size_t>(as)]; }
  [[nodiscard]] const std::vector<Link>& links() const { return links_; }
  [[nodiscard]] const Link& link(int link_id) const {
    return links_[static_cast<std::size_t>(link_id)];
  }
  /// Globally-unique AS number presented in outputs (dense id + 7000).
  [[nodiscard]] int as_number(AsId as) const { return 7000 + as; }

  /// Degree in the AS graph.
  [[nodiscard]] int degree(AsId as) const {
    return static_cast<int>(neighbors(as).size());
  }

 private:
  void add_link(AsId a, AsId b, Relationship a_sees_b, util::Rng& rng,
                const TopologyConfig& config);

  std::vector<std::vector<Neighbor>> adjacency_;
  std::vector<Tier> tiers_;
  std::vector<Link> links_;
};

}  // namespace infilter::routing

#include "routing/internet.h"

#include <algorithm>
#include <cassert>

namespace infilter::routing {
namespace {

// Router counts by tier: tier-1 backbones are larger than stub networks.
int routers_for_tier(Tier tier) {
  switch (tier) {
    case Tier::kTier1: return 8;
    case Tier::kTier2: return 5;
    case Tier::kStub: return 3;
  }
  return 3;
}

std::uint64_t mix(std::uint64_t a, std::uint64_t b) {
  util::SplitMix64 m{a * 0x9e3779b97f4a7c15ULL + b};
  return m.next();
}

}  // namespace

const Hop* TracerouteResult::peer_hop() const {
  if (!complete || as_path.size() < 2) return nullptr;
  const AsId peer = as_path[as_path.size() - 2];
  const Hop* found = nullptr;
  for (const auto& hop : hops) {
    if (hop.as == peer) found = &hop;
  }
  return found;
}

const Hop* TracerouteResult::br_hop() const {
  if (!complete || as_path.size() < 2) return nullptr;
  const AsId target = as_path.back();
  for (const auto& hop : hops) {
    if (hop.as == target) return &hop;
  }
  return nullptr;
}

Internet::Internet(const TopologyConfig& topology_config, const ChurnRates& rates,
                   std::uint64_t seed)
    : topology_(AsTopology::generate(topology_config, seed)),
      rates_(rates),
      down_(topology_.links().size(), false),
      ecmp_epoch_(topology_.links().size(), 0),
      rng_(mix(seed, 0x1a7e)) {
  igps_.reserve(static_cast<std::size_t>(topology_.as_count()));
  for (AsId as = 0; as < topology_.as_count(); ++as) {
    igps_.push_back(std::make_unique<IgpNetwork>(routers_for_tier(topology_.tier(as)),
                                                 mix(seed, 0x16b0 + as)));
  }
}

void Internet::advance(util::DurationMs dt) {
  const double hours = static_cast<double>(dt) / static_cast<double>(util::kHour);

  // Poisson event counts approximated by floor(expectation) plus one
  // Bernoulli trial on the fraction; adequate for rates << 1 per call and
  // monotone in dt.
  auto event_count = [this](double expectation) {
    int count = static_cast<int>(expectation);
    if (rng_.chance(expectation - count)) ++count;
    return count;
  };

  for (AsId as = 0; as < topology_.as_count(); ++as) {
    const int events = event_count(rates_.igp_events_per_as_hour * hours);
    for (int e = 0; e < events; ++e) {
      igps_[static_cast<std::size_t>(as)]->churn(rng_);
    }
  }

  bool links_changed = false;
  for (std::size_t l = 0; l < down_.size(); ++l) {
    if (down_[l]) {
      if (rng_.chance(std::min(1.0, rates_.link_repair_per_hour * hours))) {
        down_[l] = false;
        links_changed = true;
      }
    } else if (rng_.chance(std::min(1.0, rates_.link_fail_per_hour * hours))) {
      down_[l] = true;
      links_changed = true;
    }
    const int rehashes = event_count(rates_.ecmp_rehash_per_hour * hours);
    if (rehashes > 0 && topology_.link(static_cast<int>(l)).parallel_circuits > 1) {
      ecmp_epoch_[l] += static_cast<std::uint32_t>(rehashes);
    }
  }
  if (links_changed) ++link_state_version_;
}

const RouteComputation& Internet::routes_to(AsId target_as) {
  auto& cached = route_cache_[target_as];
  if (!cached.routes || cached.version != link_state_version_) {
    cached.routes = std::make_unique<RouteComputation>(topology_, target_as, down_);
    cached.version = link_state_version_;
  }
  return *cached.routes;
}

RouterId Internet::border_router(AsId as, int link_id) const {
  const auto count = static_cast<std::uint64_t>(
      igps_[static_cast<std::size_t>(as)]->router_count());
  return static_cast<RouterId>(mix(static_cast<std::uint64_t>(as) << 20,
                                   static_cast<std::uint64_t>(link_id)) %
                               count);
}

net::IPv4Address Internet::circuit_ip(int link_id, int circuit, AsId side) const {
  const Link& link = topology_.link(link_id);
  assert(side == link.a || side == link.b);
  assert(circuit >= 0 && circuit < link.parallel_circuits);
  // Links are numbered from 160.0.0.0 upward, 2048 addresses apart.
  // Circuits either share the link's /24 (offset 8 apart) or are spread
  // across /24s (offset 256 apart) when the link spans subnets.
  const std::uint32_t base =
      0xA0000000u + static_cast<std::uint32_t>(link_id) * 2048u;
  const std::uint32_t spread = link.circuits_span_subnets ? 256u : 8u;
  const std::uint32_t offset = static_cast<std::uint32_t>(circuit) * spread;
  return net::IPv4Address{base + offset + (side == link.a ? 1u : 2u)};
}

int Internet::ecmp_circuit(int link_id, AsId from, AsId target) const {
  const Link& link = topology_.link(link_id);
  if (link.parallel_circuits <= 1) return 0;
  // Per-flow hash: stable until the link's epoch bumps (rehash event).
  const std::uint64_t h =
      mix((static_cast<std::uint64_t>(from) << 32) ^ static_cast<std::uint64_t>(target),
          (static_cast<std::uint64_t>(link_id) << 32) ^
              ecmp_epoch_[static_cast<std::size_t>(link_id)]);
  return static_cast<int>(h % static_cast<std::uint64_t>(link.parallel_circuits));
}

std::string Internet::router_fqdn(AsId as, RouterId router) const {
  return "r" + std::to_string(router) + ".as" + std::to_string(topology_.as_number(as)) +
         ".net";
}

net::IPv4Address Internet::interior_if_ip(AsId as, RouterId router, RouterId prev) const {
  // Arrival-interface address: unique per (AS, router, previous hop), so an
  // IGP path change flips the observed IP of the same router. Interfaces
  // of one router stay within one /24 (16 slots, prev in [-1, 14]).
  const std::uint32_t router_base =
      0x0A000000u +
      (static_cast<std::uint32_t>(as) * 16u + static_cast<std::uint32_t>(router)) * 16u;
  return net::IPv4Address{router_base + static_cast<std::uint32_t>(prev + 1)};
}

TracerouteResult Internet::traceroute(AsId from_as, AsId target_as) {
  TracerouteResult result;
  const RouteComputation& routes = routes_to(target_as);
  result.as_path = routes.path(from_as);
  if (result.as_path.empty() || from_as == target_as) return result;

  AsId current_as = from_as;
  RouterId entry_router = 0;  // the probing host connects to router 0
  // The first AS reports its gateway (router 0) as the first hop; after a
  // crossing, the ingress hop was already reported from the link circuit.
  bool entry_hop_reported = false;

  for (std::size_t i = 0; i < result.as_path.size(); ++i) {
    current_as = result.as_path[i];
    const bool is_target = (i + 1 == result.as_path.size());

    RouterId exit_router;
    int outgoing_link = -1;
    if (is_target) {
      // The target site sits on the last router of the target AS.
      exit_router = igps_[static_cast<std::size_t>(current_as)]->router_count() - 1;
    } else {
      outgoing_link = routes.route(current_as).link_id;
      // A hop on the path to the target always has a usable link.
      assert(outgoing_link >= 0);
      exit_router = border_router(current_as, outgoing_link);
    }

    const auto interior = igps_[static_cast<std::size_t>(current_as)]->shortest_path(
        entry_router, exit_router);
    assert(!interior.empty());
    RouterId prev = -1;
    for (std::size_t h = 0; h < interior.size(); ++h) {
      if (h == 0 && entry_hop_reported) {
        prev = interior[0];
        continue;
      }
      result.hops.push_back(Hop{interior_if_ip(current_as, interior[h], prev),
                                router_fqdn(current_as, interior[h]), current_as});
      prev = interior[h];
    }

    if (is_target) break;

    // Cross the inter-AS link: the next AS's border router reports the
    // ingress circuit interface.
    const AsId next_as = result.as_path[i + 1];
    const int circuit = ecmp_circuit(outgoing_link, from_as, target_as);
    result.hops.push_back(Hop{circuit_ip(outgoing_link, circuit, next_as),
                              router_fqdn(next_as, border_router(next_as, outgoing_link)),
                              next_as});
    entry_router = border_router(next_as, outgoing_link);
    entry_hop_reported = true;
  }

  result.complete = true;
  return result;
}

}  // namespace infilter::routing

#include "routing/topology.h"

#include <algorithm>
#include <cassert>

namespace infilter::routing {

void AsTopology::add_link(AsId a, AsId b, Relationship a_sees_b, util::Rng& rng,
                          const TopologyConfig& config) {
  assert(a != b);
  // Reject duplicate adjacencies; generation may propose the same pair twice.
  for (const auto& n : adjacency_[static_cast<std::size_t>(a)]) {
    if (n.as == b) return;
  }
  Link link;
  link.a = a;
  link.b = b;
  link.a_sees_b = a_sees_b;
  if (rng.chance(config.parallel_link_fraction)) {
    link.parallel_circuits = static_cast<int>(rng.range(2, 3));
    link.circuits_span_subnets = rng.chance(config.cross_subnet_fraction);
  }
  const int link_id = static_cast<int>(links_.size());
  links_.push_back(link);
  adjacency_[static_cast<std::size_t>(a)].push_back(Neighbor{b, a_sees_b, link_id});
  adjacency_[static_cast<std::size_t>(b)].push_back(
      Neighbor{a, reverse(a_sees_b), link_id});
}

AsTopology AsTopology::generate(const TopologyConfig& config, std::uint64_t seed) {
  util::Rng rng{seed};
  AsTopology topo;
  const int total = config.tier1_count + config.tier2_count + config.stub_count;
  topo.adjacency_.resize(static_cast<std::size_t>(total));
  topo.tiers_.resize(static_cast<std::size_t>(total));

  // AS ids: [0, t1) tier-1, [t1, t1+t2) tier-2, rest stubs.
  const int t1 = config.tier1_count;
  const int t2_end = t1 + config.tier2_count;
  for (int as = 0; as < total; ++as) {
    topo.tiers_[static_cast<std::size_t>(as)] =
        as < t1 ? Tier::kTier1 : (as < t2_end ? Tier::kTier2 : Tier::kStub);
  }

  // Tier-1 full mesh of peer links (the default-free clique).
  for (AsId a = 0; a < t1; ++a) {
    for (AsId b = a + 1; b < t1; ++b) {
      topo.add_link(a, b, Relationship::kPeer, rng, config);
    }
  }

  // Tier-2: each has 1..3 providers drawn from tier-1 (always at least one)
  // and possibly an upstream tier-2 generated earlier.
  for (AsId as = t1; as < t2_end; ++as) {
    const int providers = static_cast<int>(
        rng.range(config.tier2_min_providers, config.tier2_max_providers));
    // First provider is tier-1 so every tier-2 can reach the core.
    topo.add_link(as, static_cast<AsId>(rng.below(static_cast<std::uint64_t>(t1))),
                  Relationship::kProvider, rng, config);
    for (int p = 1; p < providers; ++p) {
      if (as > t1 && rng.chance(0.35)) {
        topo.add_link(as, static_cast<AsId>(rng.range(t1, as - 1)),
                      Relationship::kProvider, rng, config);
      } else {
        topo.add_link(as, static_cast<AsId>(rng.below(static_cast<std::uint64_t>(t1))),
                      Relationship::kProvider, rng, config);
      }
    }
  }
  // Tier-2 lateral peerings.
  for (AsId a = t1; a < t2_end; ++a) {
    for (AsId b = a + 1; b < t2_end; ++b) {
      if (rng.chance(config.tier2_peer_probability)) {
        topo.add_link(a, b, Relationship::kPeer, rng, config);
      }
    }
  }

  // Stubs: 1..2 providers from tier-2 (preferred) or tier-1.
  for (AsId as = t2_end; as < total; ++as) {
    const int providers = static_cast<int>(
        rng.range(config.stub_min_providers, config.stub_max_providers));
    for (int p = 0; p < providers; ++p) {
      const AsId provider = rng.chance(0.85)
                                ? static_cast<AsId>(rng.range(t1, t2_end - 1))
                                : static_cast<AsId>(rng.below(static_cast<std::uint64_t>(t1)));
      topo.add_link(as, provider, Relationship::kProvider, rng, config);
    }
  }

  return topo;
}

}  // namespace infilter::routing

// Tests for the lifecycle subsystem (src/lifecycle): exact-EIA entry
// aging (expiry / stale grace / relearn and its determinism contract),
// EiaSet prefix removal, age-metadata persistence through eia_io, live
// shard-pool resizes with state migration (bit-consistency against a
// serial replay of the realized dispatch order), the resize/flush/
// snapshot race under live producers (TSan lane), and the long-horizon
// churn soak harness (sim/soak.h).

#include "lifecycle/lifecycle.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "core/eia.h"
#include "core/eia_io.h"
#include "runtime/runtime.h"
#include "sim/soak.h"
#include "sim/testbed.h"

namespace infilter {
namespace {

net::Prefix prefix(const char* text) { return *net::Prefix::parse(text); }

net::IPv4Address addr(const char* text) { return *net::IPv4Address::parse(text); }

// -- The idle-expiry predicate (lifecycle/lifecycle.h) --

TEST(Lifecycle, IdleExpiredIsMonotoneInNow) {
  constexpr util::TimeMs kLastSeen = 1000;
  constexpr util::DurationMs kMaxIdle = 500;
  EXPECT_FALSE(lifecycle::idle_expired(kLastSeen, 1500, kMaxIdle));  // boundary
  EXPECT_TRUE(lifecycle::idle_expired(kLastSeen, 1501, kMaxIdle));
  // Monotone: once expired at T, expired at every later T'.
  bool expired = false;
  for (util::TimeMs now = 0; now < 3000; now += 7) {
    const bool e = lifecycle::idle_expired(kLastSeen, now, kMaxIdle);
    EXPECT_TRUE(!expired || e) << "expiry regressed at now=" << now;
    expired = e;
  }
}

TEST(Lifecycle, RebasedClockNeverExpires) {
  // Exporter restart: record timestamps rebase below last_seen. The
  // predicate must treat a past-reading clock as "no idle time at all".
  EXPECT_FALSE(lifecycle::idle_expired(5000, 0, 10));
  EXPECT_FALSE(lifecycle::idle_expired(5000, 5000, 10));
}

TEST(Lifecycle, StaleThresholdDerivesHalfMaxIdle) {
  lifecycle::LifecycleConfig config;
  EXPECT_FALSE(config.enabled());
  config.max_idle_ms = 1000;
  EXPECT_TRUE(config.enabled());
  EXPECT_EQ(config.stale_threshold(), 500u);
  config.stale_after_ms = 800;
  EXPECT_EQ(config.stale_threshold(), 800u);
}

// -- EiaSet::remove --

TEST(EiaSetRemove, SplitsCoveringRange) {
  core::EiaSet set;
  set.add(prefix("10.0.0.0/16"));
  EXPECT_TRUE(set.remove(prefix("10.0.1.0/24")));
  EXPECT_TRUE(set.contains(addr("10.0.0.5")));
  EXPECT_FALSE(set.contains(addr("10.0.1.5")));
  EXPECT_TRUE(set.contains(addr("10.0.2.5")));
  EXPECT_EQ(set.range_count(), 2u);
  EXPECT_EQ(set.address_count(), 65536u - 256u);
  // Already gone: nothing left to remove.
  EXPECT_FALSE(set.remove(prefix("10.0.1.0/24")));
}

TEST(EiaSetRemove, TrimsRangeEdgesAndEmptiesExactMatch) {
  core::EiaSet set;
  set.add(prefix("10.1.0.0/24"));
  set.add(prefix("10.1.1.0/24"));
  // Trim the front /24 off the merged [10.1.0.0, 10.1.1.255] range.
  EXPECT_TRUE(set.remove(prefix("10.1.0.0/24")));
  EXPECT_FALSE(set.contains(addr("10.1.0.9")));
  EXPECT_TRUE(set.contains(addr("10.1.1.9")));
  // Remove the remainder exactly: the set goes empty.
  EXPECT_TRUE(set.remove(prefix("10.1.1.0/24")));
  EXPECT_EQ(set.range_count(), 0u);
  EXPECT_EQ(set.address_count(), 0u);
  EXPECT_FALSE(set.remove(prefix("10.1.1.0/24")));
}

// -- EiaTable aging --

core::EiaTableConfig aging_config(util::DurationMs max_idle) {
  core::EiaTableConfig config;
  config.learn_threshold = 2;
  config.lifecycle.max_idle_ms = max_idle;
  return config;
}

// Learns `source`'s /24 into `ingress` at virtual time `now`.
void learn(core::EiaTable& table, core::IngressId ingress, net::IPv4Address source,
           util::TimeMs now) {
  bool learned = false;
  for (int i = 0; i < table.config().learn_threshold; ++i) {
    learned = table.observe_mismatch(ingress, source, now);
  }
  ASSERT_TRUE(learned);
}

TEST(EiaAging, EntryWalksLearningEstablishedStaleExpired) {
  core::EiaTable table(aging_config(1000));
  ASSERT_TRUE(table.aging_enabled());
  table.declare_ingress(9001);
  const auto src = addr("10.1.2.3");

  EXPECT_FALSE(table.entry_state(9001, src, 0).has_value());
  ASSERT_FALSE(table.observe_mismatch(9001, src, 100));
  EXPECT_EQ(table.entry_state(9001, src, 100), lifecycle::EntryState::kLearning);
  ASSERT_TRUE(table.observe_mismatch(9001, src, 100));

  // Fresh within the stale threshold (1000 / 2 = 500 of idle time).
  EXPECT_EQ(table.entry_state(9001, src, 400), lifecycle::EntryState::kEstablished);
  // The grace window: stale but still accepted.
  EXPECT_EQ(table.entry_state(9001, src, 700), lifecycle::EntryState::kStale);
  EXPECT_TRUE(table.is_expected(9001, src, 700));  // refreshes last_seen to 700
  EXPECT_EQ(table.entry_state(9001, src, 900), lifecycle::EntryState::kEstablished);

  // Past max_idle the lookup itself expires the entry.
  EXPECT_FALSE(table.is_expected(9001, src, 2000));
  EXPECT_EQ(table.entry_state(9001, src, 2000), lifecycle::EntryState::kExpired);
  EXPECT_EQ(table.lifecycle_stats().entries_expired, 1u);
  // The tombstone is permanent until relearned: still expired much later.
  EXPECT_FALSE(table.is_expected(9001, src, 9000));
  EXPECT_EQ(table.lifecycle_stats().entries_expired, 1u);  // counted once
}

TEST(EiaAging, RelearnAfterExpiryIsCountedAndLive) {
  core::EiaTable table(aging_config(1000));
  table.declare_ingress(9001);
  const auto src = addr("10.1.2.3");
  learn(table, 9001, src, 100);
  EXPECT_FALSE(table.is_expected(9001, src, 5000));  // idled out
  EXPECT_EQ(table.lifecycle_stats().entries_expired, 1u);

  learn(table, 9001, src, 5100);
  EXPECT_EQ(table.lifecycle_stats().entries_relearned, 1u);
  EXPECT_TRUE(table.is_expected(9001, src, 5200));
  EXPECT_EQ(table.entry_state(9001, src, 5200), lifecycle::EntryState::kEstablished);
}

TEST(EiaAging, PreloadedRangesNeverAge) {
  core::EiaTable table(aging_config(10));
  table.add_expected(9001, prefix("3.0.0.0/11"));
  const auto src = addr("3.0.0.7");
  EXPECT_TRUE(table.is_expected(9001, src, 1u << 30));
  EXPECT_EQ(table.entry_state(9001, src, 1u << 30),
            lifecycle::EntryState::kEstablished);
  EXPECT_EQ(table.lifecycle_stats().entries_expired, 0u);
  EXPECT_EQ(table.aged_entry_count(), 0u);
}

TEST(EiaAging, ExporterRebaseNeverExpires) {
  core::EiaTable table(aging_config(1000));
  table.declare_ingress(9001);
  const auto src = addr("10.1.2.3");
  learn(table, 9001, src, 50000);
  // The exporter restarted: flow timestamps read far below last_seen.
  EXPECT_TRUE(table.is_expected(9001, src, 0));
  EXPECT_TRUE(table.is_expected(9001, src, 10));
  EXPECT_EQ(table.lifecycle_stats().entries_expired, 0u);
}

TEST(EiaAging, SweepMatchesLazyExpiryExactly) {
  // Two identical tables, one swept eagerly at T: every later lookup must
  // answer the same -- the sweep only reclaims what lazy expiry would
  // have rejected anyway (verdict-neutral).
  core::EiaTable swept(aging_config(1000));
  core::EiaTable lazy(aging_config(1000));
  for (auto* table : {&swept, &lazy}) {
    table->declare_ingress(9001);
    learn(*table, 9001, addr("10.1.2.3"), 100);   // idles out by T
    learn(*table, 9001, addr("10.7.7.7"), 4800);  // still fresh at T
  }
  const std::size_t expired = swept.age_sweep(5000);
  EXPECT_EQ(expired, 1u);
  EXPECT_EQ(swept.aged_entry_count(), 2u);  // tombstone retained
  for (const char* probe : {"10.1.2.3", "10.7.7.7", "10.9.9.9"}) {
    EXPECT_EQ(swept.is_expected(9001, addr(probe), 5200),
              lazy.is_expected(9001, addr(probe), 5200))
        << probe;
  }
  EXPECT_EQ(swept.lifecycle_stats().entries_expired,
            lazy.lifecycle_stats().entries_expired);
}

TEST(EiaAging, DisabledConfigIsExactlyTheConstPath) {
  core::EiaTable table;  // default: aging off
  ASSERT_FALSE(table.aging_enabled());
  table.declare_ingress(9001);
  const auto src = addr("10.1.2.3");
  for (int i = 0; i < table.config().learn_threshold; ++i) {
    table.observe_mismatch(9001, src, 100);
  }
  // No expiry however far the clock runs, and no age metadata kept.
  EXPECT_TRUE(table.is_expected(9001, src, ~util::TimeMs{0} / 2));
  EXPECT_EQ(table.aged_entry_count(), 0u);
  EXPECT_EQ(table.age_sweep(~util::TimeMs{0} / 2), 0u);
  EXPECT_EQ(table.lifecycle_stats().entries_expired, 0u);
}

// -- Persistence (core/eia_io.h) --

TEST(EiaIoLifecycle, AgeMetadataRoundTripsByteIdentically) {
  core::EiaTable table(aging_config(60000));
  table.add_expected(9001, prefix("3.0.0.0/11"));  // preload: no age line
  learn(table, 9001, addr("10.1.2.3"), 1000);
  learn(table, 9002, addr("10.5.0.9"), 2000);
  EXPECT_FALSE(table.is_expected(9002, addr("10.5.0.9"), 500000));  // tombstone

  const auto text = core::export_eia(table);
  EXPECT_NE(text.find("lifecycle v1 max_idle=60000"), std::string::npos);
  EXPECT_NE(text.find("age 9001 10.1.2.0/24 1000 1000"), std::string::npos);
  EXPECT_NE(text.find("age 9002 10.5.0.0/24 2000 2000 expired"), std::string::npos);

  auto imported = core::import_eia(text);
  ASSERT_TRUE(imported.has_value()) << imported.error().message;
  // The directive overrides the caller's (default, aging-off) config.
  EXPECT_EQ(imported->config().lifecycle.max_idle_ms, 60000u);
  ASSERT_TRUE(imported->aging_enabled());
  EXPECT_EQ(imported->aged_entries(), table.aged_entries());
  // Byte-exact round trip: export(import(export(t))) == export(t).
  // Checked before any aging-aware lookup -- those refresh last_seen.
  EXPECT_EQ(core::export_eia(*imported), text);
  EXPECT_TRUE(imported->is_expected(9001, addr("10.1.2.3"), 1500));
  EXPECT_FALSE(imported->is_expected(9002, addr("10.5.0.9"), 1500));  // expired
  EXPECT_EQ(imported->entry_state(9002, addr("10.5.0.9"), 1500),
            lifecycle::EntryState::kExpired);
}

TEST(EiaIoLifecycle, AgingOffExportCarriesNoLifecycleLines) {
  core::EiaTable table;
  table.add_expected(9001, prefix("3.0.0.0/11"));
  const auto text = core::export_eia(table);
  EXPECT_EQ(text.find("lifecycle"), std::string::npos);
  EXPECT_EQ(text.find("age "), std::string::npos);
}

TEST(EiaIoLifecycle, LegacyDumpLoadsEstablishedUnderAgingConfig) {
  // A pre-lifecycle file: plain stanzas, no directive, no age lines.
  const std::string legacy = "ingress 9001\n  10.1.2.0/24\n";
  auto config = aging_config(60000);
  auto imported = core::import_eia(legacy, config);
  ASSERT_TRUE(imported.has_value()) << imported.error().message;
  ASSERT_TRUE(imported->aging_enabled());
  EXPECT_EQ(imported->aged_entry_count(), 0u);
  // No metadata = treated as an operator preload: established forever.
  EXPECT_EQ(imported->entry_state(9001, addr("10.1.2.3"), 1u << 30),
            lifecycle::EntryState::kEstablished);
  EXPECT_TRUE(imported->is_expected(9001, addr("10.1.2.3"), 1u << 30));
}

TEST(EiaIoLifecycle, DirectiveAfterStateLinesIsRejected) {
  const std::string bad = "ingress 9001\n  10.1.2.0/24\nlifecycle v1 max_idle=5\n";
  const auto imported = core::import_eia(bad);
  EXPECT_FALSE(imported.has_value());
}

// -- Verdict neutrality at the engine level --

void expect_same_result(const sim::ExperimentResult& x,
                        const sim::ExperimentResult& y) {
  EXPECT_EQ(x.attack_instances, y.attack_instances);
  EXPECT_EQ(x.detected_instances, y.detected_instances);
  EXPECT_EQ(x.attack_flows, y.attack_flows);
  EXPECT_EQ(x.detected_attack_flows, y.detected_attack_flows);
  EXPECT_EQ(x.benign_flows, y.benign_flows);
  EXPECT_EQ(x.false_positives, y.false_positives);
  EXPECT_EQ(x.benign_suspects, y.benign_suspects);
  EXPECT_EQ(x.alerts_eia, y.alerts_eia);
  EXPECT_EQ(x.alerts_scan, y.alerts_scan);
  EXPECT_EQ(x.alerts_nns, y.alerts_nns);
  EXPECT_EQ(x.alerts_fused, y.alerts_fused);
  EXPECT_DOUBLE_EQ(x.mean_detection_latency_ms, y.mean_detection_latency_ms);
  for (std::size_t k = 0; k < x.per_kind.size(); ++k) {
    EXPECT_EQ(x.per_kind[k], y.per_kind[k]) << "attack kind " << k;
  }
}

sim::ExperimentConfig small_config() {
  sim::ExperimentConfig config;
  config.normal_flows_per_source = 600;
  config.training_flows = 300;
  config.attack_volume = 0.04;
  config.engine.cluster.bits_per_feature = 48;
  config.seed = 77;
  return config;
}

// Aging enabled but never firing (max_idle beyond the horizon) must be
// bit-identical to aging off: the metadata bookkeeping (stamps, refreshes,
// tombstone checks) is pure observation, never a verdict input.
TEST(LifecycleEngine, AgingWithNoExpiryIsBitIdenticalToAgingOff) {
  const auto config = small_config();
  const auto baseline = sim::run_experiment(config);
  auto aged = config;
  aged.engine.eia.lifecycle.max_idle_ms = 365 * util::kDay;
  expect_same_result(baseline, sim::run_experiment(aged));
}

// -- Live resize: bit-consistency across the boundary --

void expect_same_alert(const alert::Alert& x, const alert::Alert& y) {
  EXPECT_EQ(x.id, y.id);
  EXPECT_EQ(x.create_time, y.create_time);
  EXPECT_EQ(x.stage, y.stage);
  EXPECT_EQ(x.source_ip.value(), y.source_ip.value());
  EXPECT_EQ(x.target_ip.value(), y.target_ip.value());
  EXPECT_EQ(x.target_port, y.target_port);
  EXPECT_EQ(x.proto, y.proto);
  EXPECT_EQ(x.ingress_port, y.ingress_port);
  EXPECT_EQ(x.expected_ingress, y.expected_ingress);
  EXPECT_EQ(x.nns_distance, y.nns_distance);
  EXPECT_EQ(x.nns_threshold, y.nns_threshold);
  EXPECT_DOUBLE_EQ(x.detection_latency_ms, y.detection_latency_ms);
  EXPECT_EQ(x.classification, y.classification);
}

void beacon_until_done(runtime::ShardedRuntime& rt, int producer,
                       std::atomic<int>& live) {
  live.fetch_sub(1);
  while (live.load() > 0) {
    rt.producer_idle(producer);
    std::this_thread::yield();
  }
}

// The tentpole acceptance sweep: at every (shard count, producer count),
// a grow resize at ~1/3 and a shrink back at ~2/3 of the stream -- fired
// from the control thread while producers are live -- must leave the
// alert stream and scan stats bit-identical to a fresh serial engine
// replaying the realized dispatch order. Aging is ON with a horizon that
// fires mid-stream, so expiry/relearn state rides the migration too.
TEST(LifecycleResize, MidStreamResizeSweepReplaysIdenticalAlertStream) {
  auto config = small_config();
  config.engine.eia.lifecycle.max_idle_ms = 2000;
  const auto stream = sim::generate_stream(config);
  const auto clusters = sim::train_clusters(config);
  core::EngineConfig engine_config = config.engine;
  engine_config.seed = config.seed;
  const auto n = stream.flows.size();

  const auto preload = [&](auto& target) {
    for (int s = 0; s < config.sources; ++s) {
      const auto port = static_cast<core::IngressId>(config.first_port + s);
      const auto range = dagflow::eia_range(s, config.blocks_per_source);
      for (int b = range.first.index(); b <= range.last.index(); ++b) {
        target.add_expected(port, net::SubBlock{b}.prefix());
      }
    }
  };

  for (const int shards : {1, 2, 4, 8}) {
    for (const int producers : {1, 2, 4}) {
      SCOPED_TRACE("shards=" + std::to_string(shards) +
                   " producers=" + std::to_string(producers));
      runtime::RuntimeConfig rc;
      rc.shards = shards;
      rc.producers = producers;
      rc.engine = engine_config;
      std::vector<std::uint64_t> seq_of(n, 0);  // one writer per tag
      alert::CollectingSink sharded_sink;
      runtime::ShardedRuntime rt(
          rc, &sharded_sink,
          [&](const runtime::FlowItem& item, const core::Verdict&) {
            seq_of[item.tag] = item.seq;
          });
      rt.set_clusters(clusters);
      preload(rt);
      std::atomic<int> live{producers};
      std::vector<std::thread> threads;
      for (int p = 0; p < producers; ++p) {
        threads.emplace_back([&, p] {
          std::vector<runtime::FlowItem> batch;
          for (std::size_t i = static_cast<std::size_t>(p); i < n;
               i += static_cast<std::size_t>(producers)) {
            const auto& flow = stream.flows[i];
            batch.push_back(
                runtime::FlowItem{flow.record, flow.arrival_port,
                                  static_cast<util::TimeMs>(flow.record.last), i});
            if (batch.size() == 128) {
              rt.submit_batch(batch, p);
              batch.clear();
            }
          }
          if (!batch.empty()) rt.submit_batch(batch, p);
          beacon_until_done(rt, p, live);
        });
      }
      // Grow, then shrink back, from the control thread mid-stream. The
      // exact trigger point is irrelevant to the property -- any boundary
      // must be invisible in the replayed stream.
      const auto wait_processed = [&](std::uint64_t target) {
        while (rt.stats().processed < target && live.load() > 0) {
          std::this_thread::yield();
        }
      };
      wait_processed(n / 3);
      EXPECT_TRUE(rt.resize(shards * 2));
      wait_processed(2 * n / 3);
      EXPECT_TRUE(rt.resize(std::max(1, shards / 2)));
      for (auto& t : threads) t.join();
      rt.flush();
      EXPECT_EQ(rt.shard_count(), static_cast<std::size_t>(std::max(1, shards / 2)));

      // Replay the realized total order through a fresh serial engine.
      std::vector<std::size_t> order(n);
      std::iota(order.begin(), order.end(), std::size_t{0});
      std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return seq_of[a] < seq_of[b];
      });
      alert::CollectingSink replay_sink;
      core::InFilterEngine replay(engine_config, &replay_sink);
      replay.set_clusters(clusters);
      preload(replay);
      for (const auto i : order) {
        const auto& flow = stream.flows[i];
        (void)replay.process(flow.record, flow.arrival_port, flow.record.last);
      }

      ASSERT_GT(replay_sink.alerts().size(), 0u);
      ASSERT_EQ(sharded_sink.alerts().size(), replay_sink.alerts().size());
      for (std::size_t i = 0; i < replay_sink.alerts().size(); ++i) {
        SCOPED_TRACE("alert " + std::to_string(i));
        expect_same_alert(sharded_sink.alerts()[i], replay_sink.alerts()[i]);
      }
      if (rt.scan_stage_engine() != nullptr) {
        const auto& replay_scan = replay.scan().stats();
        const auto& sharded_scan = rt.scan_stage_engine()->scan().stats();
        EXPECT_EQ(sharded_scan.observed, replay_scan.observed);
        EXPECT_EQ(sharded_scan.network_scans, replay_scan.network_scans);
        EXPECT_EQ(sharded_scan.host_scans, replay_scan.host_scans);
        EXPECT_EQ(sharded_scan.evictions, replay_scan.evictions);
      }
      const auto snap = rt.snapshot();
      EXPECT_DOUBLE_EQ(snap.value("infilter_lifecycle_resizes_total"), 2.0);
      // Resize-retired engine history stays in the merged view: every
      // flow is still accounted for after two pool replacements.
      EXPECT_DOUBLE_EQ(snap.value("infilter_flows_total"),
                       static_cast<double>(n));
    }
  }
}

netflow::V5Record simple_flow(std::uint32_t salt) {
  netflow::V5Record r;
  r.src_ip = net::IPv4Address{(10u << 24) | (salt << 8)};
  r.dst_ip = addr("100.64.0.1");
  r.proto = 6;
  r.src_port = 40000;
  r.dst_port = 80;
  r.packets = 10;
  r.bytes = 5000;
  r.first = salt;
  r.last = salt + 10;
  return r;
}

// The race lane: resize(), flush(), and snapshot() hammered from the
// control thread while producer threads submit -- nothing lost, nothing
// double-counted, whatever interleaving the scheduler picks. Run under
// INFILTER_SANITIZE=thread this pins the absence of data races in the
// quiesce/harvest/restart protocol (scripts/check.sh's lifecycle lane).
TEST(LifecycleResize, ResizeFlushSnapshotRaceProducersSafely) {
  constexpr int kProducers = 3;
  constexpr std::uint64_t kPerProducer = 2000;
  runtime::RuntimeConfig config;
  config.shards = 2;
  config.producers = kProducers;
  config.queue_depth = 64;
  config.backpressure = runtime::BackpressurePolicy::kBlock;
  config.engine.mode = core::EngineMode::kBasic;
  config.engine.eia.lifecycle.max_idle_ms = 50;  // churn mid-run too
  runtime::ShardedRuntime rt(config);
  std::atomic<int> live{kProducers};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      std::vector<runtime::FlowItem> batch;
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        batch.push_back(
            runtime::FlowItem{simple_flow(static_cast<std::uint32_t>(i)), 9001,
                              static_cast<util::TimeMs>(i)});
        if (batch.size() == 16) {
          rt.submit_batch(batch, p);
          batch.clear();
        }
      }
      if (!batch.empty()) rt.submit_batch(batch, p);
      beacon_until_done(rt, p, live);
    });
  }
  const int sizes[] = {3, 1, 4, 2};
  std::size_t next_size = 0;
  while (live.load() > 0) {
    EXPECT_TRUE(rt.resize(sizes[next_size++ % 4]));
    const auto snap = rt.snapshot();
    EXPECT_GT(snap.value("infilter_runtime_shards"), 0.0);
    rt.flush();
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  for (auto& t : producers) t.join();
  rt.flush();
  const auto stats = rt.stats();
  EXPECT_EQ(stats.submitted, kPerProducer * kProducers);
  EXPECT_EQ(stats.dispatched, kPerProducer * kProducers);
  EXPECT_EQ(stats.processed, kPerProducer * kProducers);
  EXPECT_EQ(stats.dropped, 0u);
  // Retired-pool history keeps the merged flow count exact.
  EXPECT_DOUBLE_EQ(rt.snapshot().value("infilter_flows_total"),
                   static_cast<double>(kPerProducer * kProducers));
}

TEST(LifecycleResize, RejectsInvalidAndPostShutdownRequests) {
  runtime::RuntimeConfig config;
  config.shards = 2;
  config.engine.mode = core::EngineMode::kBasic;
  runtime::ShardedRuntime rt(config);
  EXPECT_FALSE(rt.resize(0));
  EXPECT_TRUE(rt.resize(2));  // same-size no-op succeeds
  EXPECT_EQ(rt.shard_count(), 2u);
  rt.shutdown();
  EXPECT_FALSE(rt.resize(4));
}

// -- The churn soak harness (sim/soak.h) --

// Acceptance: aging + two live resizes (grow then shrink) across a
// multi-wave horizon with day-long idle gaps and per-wave exporter
// restarts must not decay detection quality versus a static-pool run of
// the same waves. With a single submitting producer the realized order is
// the submission order, so the two runs' verdicts are bit-identical --
// asserted exactly, not within a tolerance.
TEST(LifecycleSoak, ResizedRunMatchesStaticPoolQuality) {
  sim::SoakConfig soak;
  soak.base = small_config();
  soak.base.normal_flows_per_source = 400;
  soak.base.runtime_shards = 2;
  soak.base.runtime_queue_depth = 512;
  // Routing churn donates blocks between sources, so drift entries get
  // learned each wave; a low threshold makes that certain at this scale.
  soak.base.route_change_blocks = 8;
  soak.base.engine.eia.learn_threshold = 2;
  soak.base.engine.eia.lifecycle.max_idle_ms = 12 * util::kHour;
  soak.waves = 3;
  soak.wave_gap_ms = util::kDay;
  soak.resizes = {{.before_wave = 1, .shards = 4}, {.before_wave = 2, .shards = 1}};
  const auto churned = sim::run_soak(soak);

  auto static_pool = soak;
  static_pool.resizes.clear();
  const auto baseline = sim::run_soak(static_pool);

  EXPECT_EQ(churned.resizes, 2u);
  EXPECT_EQ(baseline.resizes, 0u);
  EXPECT_GT(churned.migrated_entries, 0u);
  EXPECT_GT(churned.resize_pause_p99_us, 0.0);
  ASSERT_EQ(churned.waves.size(), 3u);
  EXPECT_EQ(churned.waves[1].shards, 4);
  EXPECT_EQ(churned.waves[2].shards, 1);
  // The day-long gaps exceed max_idle: learned drift entries expire and
  // relearn across waves in both runs.
  EXPECT_GT(churned.entries_expired, 0u);
  EXPECT_GT(churned.min_detection_rate(), 0.0);
  for (std::size_t w = 0; w < churned.waves.size(); ++w) {
    SCOPED_TRACE("wave " + std::to_string(w));
    const auto& c = churned.waves[w];
    const auto& b = baseline.waves[w];
    EXPECT_DOUBLE_EQ(c.detection_rate, b.detection_rate);
    EXPECT_DOUBLE_EQ(c.flow_detection_rate, b.flow_detection_rate);
    EXPECT_DOUBLE_EQ(c.false_positive_rate, b.false_positive_rate);
    EXPECT_DOUBLE_EQ(c.benign_suspect_rate, b.benign_suspect_rate);
    EXPECT_EQ(c.entries_expired, b.entries_expired);
    EXPECT_EQ(c.entries_relearned, b.entries_relearned);
  }
}

// The explicit sweep is verdict-neutral: eager reclamation between waves
// versus purely lazy expiry yields the same quality trajectory.
TEST(LifecycleSoak, EagerSweepIsVerdictNeutral) {
  sim::SoakConfig soak;
  soak.base = small_config();
  soak.base.normal_flows_per_source = 400;
  soak.base.runtime_shards = 2;
  soak.base.route_change_blocks = 8;
  soak.base.engine.eia.learn_threshold = 2;
  soak.base.engine.eia.lifecycle.max_idle_ms = 12 * util::kHour;
  soak.waves = 2;
  soak.age_sweep_between_waves = true;
  const auto swept = sim::run_soak(soak);
  EXPECT_GT(swept.waves.at(0).swept + swept.waves.at(1).swept, 0u);

  auto lazy_config = soak;
  lazy_config.age_sweep_between_waves = false;
  const auto lazy = sim::run_soak(lazy_config);
  ASSERT_EQ(swept.waves.size(), lazy.waves.size());
  for (std::size_t w = 0; w < swept.waves.size(); ++w) {
    SCOPED_TRACE("wave " + std::to_string(w));
    EXPECT_DOUBLE_EQ(swept.waves[w].detection_rate, lazy.waves[w].detection_rate);
    EXPECT_DOUBLE_EQ(swept.waves[w].false_positive_rate,
                     lazy.waves[w].false_positive_rate);
    EXPECT_DOUBLE_EQ(swept.waves[w].benign_suspect_rate,
                     lazy.waves[w].benign_suspect_rate);
    EXPECT_EQ(lazy.waves[w].swept, 0u);
  }
}

}  // namespace
}  // namespace infilter

// End-to-end integration: Dagflow -> NetFlow v5 wire datagrams ->
// flow-capture -> Enhanced InFilter analysis -> IDMEF alerts, i.e. the full
// deployment path of Figure 9 exercised through real datagram bytes.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/engine.h"
#include "dagflow/dagflow.h"
#include "flowtools/capture.h"
#include "flowtools/report.h"
#include "netflow/flow_cache.h"
#include "sim/testbed.h"
#include "traffic/attacks.h"
#include "traffic/normal.h"

namespace infilter {
namespace {

using core::EngineConfig;
using core::EngineMode;
using core::InFilterEngine;

EngineConfig engine_config() {
  EngineConfig config;
  config.mode = EngineMode::kEnhanced;
  config.cluster.bits_per_feature = 48;
  config.seed = 77;
  return config;
}

void preload_eia(InFilterEngine& engine) {
  for (int s = 0; s < 10; ++s) {
    for (const auto& block : dagflow::eia_range(s).expand()) {
      engine.add_expected(static_cast<core::IngressId>(9001 + s), block.prefix());
    }
  }
}

std::vector<netflow::V5Record> training_records(std::uint64_t seed) {
  traffic::NormalTrafficModel model;
  util::Rng rng{seed};
  const auto trace = model.generate(600, 0, rng);
  dagflow::Dagflow replayer(
      dagflow::DagflowConfig{},
      dagflow::AddressPool::from_allocation(dagflow::make_allocation(10, 100, 0, 0)[0]),
      seed);
  std::vector<netflow::V5Record> records;
  for (const auto& labeled : replayer.replay(trace)) records.push_back(labeled.record);
  return records;
}

/// Builds the mixed normal + Slammer stream used by the wire tests.
std::vector<dagflow::LabeledFlow> mixed_stream() {
  traffic::NormalTrafficModel model;
  util::Rng rng{31};
  const auto trace = model.generate(400, 0, rng);
  traffic::AttackConfig attack_config;
  attack_config.companion_fraction = 0;
  const auto attack =
      traffic::generate_attack(traffic::AttackKind::kSlammer, attack_config, 2000, rng);

  dagflow::Dagflow normal_source(
      dagflow::DagflowConfig{.netflow_port = 9001},
      dagflow::AddressPool::from_allocation(dagflow::make_allocation(10, 100, 0, 0)[0]),
      32);
  dagflow::Dagflow attack_source(
      dagflow::DagflowConfig{.netflow_port = 9001},
      dagflow::AddressPool::from_subblocks({*net::SubBlock::parse("110a")}), 33);

  auto labeled = normal_source.replay(trace);
  const auto attack_labeled = attack_source.replay(attack);
  labeled.insert(labeled.end(), attack_labeled.begin(), attack_labeled.end());
  std::stable_sort(labeled.begin(), labeled.end(),
                   [](const auto& a, const auto& b) {
                     return a.record.last < b.record.last;
                   });
  return labeled;
}

TEST(Integration, WirePathMatchesDirectPath) {
  const auto stream = mixed_stream();
  const auto training = training_records(55);

  // Direct path: records handed straight to the engine.
  alert::CollectingSink direct_sink;
  InFilterEngine direct(engine_config(), &direct_sink);
  preload_eia(direct);
  direct.train(training);
  int direct_attacks = 0;
  for (const auto& flow : stream) {
    direct_attacks +=
        direct.process(flow.record, flow.arrival_port, flow.record.last).attack ? 1 : 0;
  }

  // Wire path: serialize to v5 datagrams, collect, then analyze.
  dagflow::Dagflow exporter(
      dagflow::DagflowConfig{.netflow_port = 9001},
      dagflow::AddressPool::from_subblocks({*net::SubBlock::parse("1a")}), 1);
  const auto datagrams = exporter.export_datagrams(stream, 90000);
  flowtools::FlowCapture capture;
  for (const auto& datagram : datagrams) {
    ASSERT_TRUE(capture.ingest(datagram, 9001).has_value());
  }
  ASSERT_EQ(capture.flows().size(), stream.size());

  alert::CollectingSink wire_sink;
  InFilterEngine wire(engine_config(), &wire_sink);
  preload_eia(wire);
  wire.train(training);
  int wire_attacks = 0;
  for (const auto& flow : capture.flows()) {
    wire_attacks +=
        wire.process(flow.record, flow.arrival_port, flow.record.last).attack ? 1 : 0;
  }

  EXPECT_EQ(direct_attacks, wire_attacks);
  EXPECT_EQ(direct_sink.alerts().size(), wire_sink.alerts().size());
  EXPECT_GT(direct_attacks, 0);
}

TEST(Integration, SlammerSweepRaisesScanAlerts) {
  const auto stream = mixed_stream();
  alert::CollectingSink sink;
  InFilterEngine engine(engine_config(), &sink);
  preload_eia(engine);
  engine.train(training_records(56));
  for (const auto& flow : stream) {
    (void)engine.process(flow.record, flow.arrival_port, flow.record.last);
  }
  int scan_alerts = 0;
  for (const auto& alert : sink.alerts()) {
    scan_alerts += alert.stage == alert::DetectionStage::kScanAnalysis ? 1 : 0;
    // Every alert serializes to well-formed IDMEF.
    const auto xml = alert.to_idmef_xml();
    EXPECT_NE(xml.find("<IDMEF-Message"), std::string::npos);
    EXPECT_NE(xml.find("</IDMEF-Message>"), std::string::npos);
  }
  EXPECT_GT(scan_alerts, 50);  // the 120-victim sweep trips scan analysis
}

TEST(Integration, RouterFlowCacheFeedsCollector) {
  // Packets -> router flow cache -> v5 export -> capture -> report: the
  // full NetFlow generation chain of Section 5.1.1/5.1.2.
  netflow::FlowCache cache(netflow::FlowCacheConfig{});
  // Two http flows and one dns exchange.
  for (int p = 0; p < 5; ++p) {
    netflow::PacketObservation packet;
    packet.key.src_ip = net::IPv4Address{3, 0, 0, 1};
    packet.key.dst_ip = net::IPv4Address{100, 64, 0, 1};
    packet.key.proto = 6;
    packet.key.src_port = 40000;
    packet.key.dst_port = 80;
    packet.bytes = 500;
    packet.time = 1000 + static_cast<util::TimeMs>(p) * 10;
    cache.observe(packet);
  }
  netflow::PacketObservation dns;
  dns.key.src_ip = net::IPv4Address{3, 0, 0, 2};
  dns.key.dst_ip = net::IPv4Address{100, 64, 0, 2};
  dns.key.proto = 17;
  dns.key.src_port = 53000;
  dns.key.dst_port = 53;
  dns.bytes = 80;
  dns.time = 1500;
  cache.observe(dns);

  const auto records = cache.flush(60000);
  ASSERT_EQ(records.size(), 2u);
  std::uint32_t sequence = 0;
  const auto datagrams = netflow::encode_all(records, 60000, sequence);
  flowtools::FlowCapture capture;
  for (const auto& datagram : datagrams) {
    ASSERT_TRUE(capture.ingest(datagram, 9001).has_value());
  }
  const auto rows =
      flowtools::group_flows(capture.flows(), flowtools::GroupField::kDstPort);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].group_key, "dp80");  // 2500 bytes beats 80
  EXPECT_EQ(rows[0].summary.packets, 5u);
}

TEST(Integration, CapturePersistenceRoundTripsThroughAnalysis) {
  const auto stream = mixed_stream();
  dagflow::Dagflow exporter(
      dagflow::DagflowConfig{.netflow_port = 9001},
      dagflow::AddressPool::from_subblocks({*net::SubBlock::parse("1a")}), 2);
  const auto datagrams = exporter.export_datagrams(stream, 90000);
  flowtools::FlowCapture capture;
  for (const auto& datagram : datagrams) {
    ASSERT_TRUE(capture.ingest(datagram, 9001).has_value());
  }
  const auto path =
      (::testing::TempDir() + "/infilter_integration_capture.bin");
  ASSERT_TRUE(capture.save(path).has_value());
  flowtools::FlowCapture restored;
  ASSERT_TRUE(restored.load(path).has_value());
  ASSERT_EQ(restored.flows().size(), capture.flows().size());
  std::remove(path.c_str());

  // Analysis over the restored capture still finds the attack.
  InFilterEngine engine(engine_config());
  preload_eia(engine);
  engine.train(training_records(57));
  int attacks = 0;
  for (const auto& flow : restored.flows()) {
    attacks += engine.process(flow.record, flow.arrival_port, flow.record.last).attack
                   ? 1
                   : 0;
  }
  EXPECT_GT(attacks, 0);
}

TEST(Integration, TestbedMetricsReconcile) {
  sim::ExperimentConfig config;
  config.normal_flows_per_source = 800;
  config.training_flows = 600;
  config.engine.cluster.bits_per_feature = 48;
  config.attack_volume = 0.04;
  config.seed = 23;
  const auto result = sim::run_experiment(config);

  // The final dump reconciles with the ground-truth accounting.
  const auto& m = result.metrics;
  const double flows = m.value("infilter_flows_total");
  EXPECT_DOUBLE_EQ(flows, static_cast<double>(result.attack_flows +
                                              result.benign_flows));
  EXPECT_DOUBLE_EQ(m.value("infilter_eia_hits_total") +
                       m.value("infilter_eia_misses_total"),
                   flows);
  // Enhanced mode with scan analysis: every EIA miss is scan-analyzed.
  EXPECT_DOUBLE_EQ(m.value("infilter_scan_analyzed_total"),
                   m.value("infilter_eia_misses_total"));
  // Every flow lands in exactly one terminal verdict counter.
  EXPECT_DOUBLE_EQ(m.value("infilter_verdict_legal_total") +
                       m.value("infilter_verdict_attack_eia_total") +
                       m.value("infilter_verdict_attack_scan_total") +
                       m.value("infilter_verdict_attack_nns_total") +
                       m.value("infilter_verdict_cleared_nns_total") +
                       m.value("infilter_verdict_cleared_learned_total"),
                   flows);
  // The per-stage alert tallies in the result come from the same verdicts
  // the metric counters saw.
  EXPECT_DOUBLE_EQ(m.value("infilter_verdict_attack_eia_total"),
                   static_cast<double>(result.alerts_eia));
  EXPECT_DOUBLE_EQ(m.value("infilter_verdict_attack_scan_total"),
                   static_cast<double>(result.alerts_scan));
  EXPECT_DOUBLE_EQ(m.value("infilter_verdict_attack_nns_total"),
                   static_cast<double>(result.alerts_nns));
  // Latency histograms observed every flow.
  const auto* process = m.histogram("infilter_process_latency_us");
  ASSERT_NE(process, nullptr);
  EXPECT_DOUBLE_EQ(static_cast<double>(process->count), flows);
  EXPECT_GT(process->quantile(0.99), 0.0);
  // Component pull-metrics were sampled into the snapshot.
  EXPECT_DOUBLE_EQ(m.value("infilter_eia_lookups_total"), flows);
  EXPECT_GT(m.value("infilter_nns_trained_flows"), 0.0);
}

}  // namespace
}  // namespace infilter

// Tests for the Routeviews table model (routing/routeviews.h), including
// the paper's exact Section 3.2 worked example.

#include "routing/routeviews.h"

#include <gtest/gtest.h>

namespace infilter::routing {
namespace {

// The paper's sample from the 2002-06-23-1000.dat dump (Section 3.2),
// including the omitted-network continuation lines and the classful
// 4.0.0.0 entry.
constexpr const char* kPaperSample = R"( Network Next Hop Path
* 4.0.0.0 193.0.0.56 3333 9057 3356 1 i
* 217.75.96.60 16150 8434 286 1 i
* 141.142.12.1 1224 38 10514 3356 1 i
* 4.2.101.0/24 141.142.12.1 1224 38 6325 1 i
* 202.249.2.86 7500 2497 1 i
* 203.194.0.5 9942 1 i
* 66.203.205.62 852 1 i
* 167.142.3.6 5056 1 e
* 206.220.240.95 10764 1 i
* 157.130.182.254 19092 1 i
* 203.62.252.26 1221 4637 1 i
* 202.232.1.91 2497 1 i
)";

TEST(BgpTableParse, PaperSampleEntryCount) {
  const auto table = BgpTable::parse(kPaperSample);
  ASSERT_TRUE(table.has_value()) << table.error().message;
  EXPECT_EQ(table->size(), 12u);
}

TEST(BgpTableParse, ClassfulNetworkGetsSlash8) {
  const auto table = BgpTable::parse(kPaperSample);
  ASSERT_TRUE(table.has_value());
  const auto& first = table->entries().front();
  EXPECT_EQ(first.prefix, *net::Prefix::parse("4.0.0.0/8"));
  EXPECT_EQ(first.next_hop, *net::IPv4Address::parse("193.0.0.56"));
  EXPECT_EQ(first.as_path, (std::vector<int>{3333, 9057, 3356, 1}));
  EXPECT_EQ(first.origin_code, 'i');
}

TEST(BgpTableParse, OmittedNetworkReusesPrevious) {
  const auto table = BgpTable::parse(kPaperSample);
  ASSERT_TRUE(table.has_value());
  // Line 2 of the sample has no network column; it belongs to 4.0.0.0/8.
  const auto& entry = table->entries()[1];
  EXPECT_EQ(entry.prefix, *net::Prefix::parse("4.0.0.0/8"));
  EXPECT_EQ(entry.as_path, (std::vector<int>{16150, 8434, 286, 1}));
}

TEST(BgpTableParse, ExplicitMaskOverridesClassful) {
  const auto table = BgpTable::parse(kPaperSample);
  ASSERT_TRUE(table.has_value());
  const auto& slash24 = table->entries()[3];
  EXPECT_EQ(slash24.prefix, *net::Prefix::parse("4.2.101.0/24"));
  // Later omitted-network lines reuse the /24, as in the dump.
  EXPECT_EQ(table->entries()[4].prefix, *net::Prefix::parse("4.2.101.0/24"));
}

TEST(BgpTableParse, BestMarkerAndOriginCodes) {
  const auto table = BgpTable::parse("*> 10.0.0.0/8 192.0.2.1 100 200 e\n");
  ASSERT_TRUE(table.has_value());
  EXPECT_TRUE(table->entries().front().best);
  EXPECT_EQ(table->entries().front().origin_code, 'e');
}

TEST(BgpTableParse, RejectsGarbagePathToken) {
  EXPECT_FALSE(BgpTable::parse("* 10.0.0.0/8 192.0.2.1 100 banana i\n").has_value());
}

TEST(BgpTableParse, RejectsContinuationWithoutContext) {
  EXPECT_FALSE(BgpTable::parse("* 192.0.2.1 100 200 i\n").has_value());
}

TEST(BgpTableParse, SkipsHeaderAndBlankLines) {
  const auto table = BgpTable::parse(
      "BGP table version is 123\n\n   Network  Next Hop  Path\n"
      "* 10.0.0.0/8 192.0.2.1 100 i\n");
  ASSERT_TRUE(table.has_value());
  EXPECT_EQ(table->size(), 1u);
}

TEST(BgpTableRoundTrip, TextSurvivesParse) {
  const auto original = BgpTable::parse(kPaperSample);
  ASSERT_TRUE(original.has_value());
  const auto reparsed = BgpTable::parse(original->to_text());
  ASSERT_TRUE(reparsed.has_value()) << reparsed.error().message;
  ASSERT_EQ(reparsed->size(), original->size());
  for (std::size_t i = 0; i < original->size(); ++i) {
    EXPECT_EQ(reparsed->entries()[i].prefix, original->entries()[i].prefix) << i;
    EXPECT_EQ(reparsed->entries()[i].as_path, original->entries()[i].as_path) << i;
  }
}

TEST(AnalyzeTarget, ReproducesPaperMappingFor4_2_101_20) {
  // The paper's worked result for target 4.2.101.20 (AS 1):
  //   3356 <- {3333, 9057, 10514};  286 <- {16150, 8434};
  //   6325 <- {1224, 38} (via the more-specific /24);  2497 <- {7500};
  //   4637 <- {1221}.
  const auto table = BgpTable::parse(kPaperSample);
  ASSERT_TRUE(table.has_value());
  const auto mapping = table->analyze_target(*net::IPv4Address::parse("4.2.101.20"));

  EXPECT_EQ(mapping.target_as, 1);
  ASSERT_EQ(mapping.relevant_prefixes.size(), 2u);
  EXPECT_EQ(mapping.relevant_prefixes[0], *net::Prefix::parse("4.0.0.0/8"));
  EXPECT_EQ(mapping.relevant_prefixes[1], *net::Prefix::parse("4.2.101.0/24"));

  const std::map<int, int> expected{{3333, 3356}, {9057, 3356}, {10514, 3356},
                                    {16150, 286}, {8434, 286},  {1224, 6325},
                                    {38, 6325},   {7500, 2497}, {1221, 4637}};
  EXPECT_EQ(mapping.source_to_peer, expected);

  // Peer AS set from the sample (direct peers included).
  const std::set<int> expected_peers{3356, 286, 6325, 2497, 9942, 852,
                                     5056, 10764, 19092, 4637};
  EXPECT_EQ(mapping.peer_ases, expected_peers);
}

TEST(AnalyzeTarget, MostSpecificPrefixWins) {
  // The paper's own callout: 1224 and 38 map to 6325, not 3356.
  const auto table = BgpTable::parse(kPaperSample);
  ASSERT_TRUE(table.has_value());
  const auto mapping = table->analyze_target(*net::IPv4Address::parse("4.2.101.20"));
  EXPECT_EQ(mapping.source_to_peer.at(1224), 6325);
  EXPECT_EQ(mapping.source_to_peer.at(38), 6325);
  // An address outside the /24 maps them through the /8 path instead.
  const auto outside = table->analyze_target(*net::IPv4Address::parse("4.9.9.9"));
  EXPECT_EQ(outside.source_to_peer.at(1224), 3356);
  EXPECT_EQ(outside.source_to_peer.at(38), 3356);
}

TEST(AnalyzeTarget, UnknownAddressYieldsEmptyMapping) {
  const auto table = BgpTable::parse(kPaperSample);
  ASSERT_TRUE(table.has_value());
  const auto mapping = table->analyze_target(*net::IPv4Address::parse("99.0.0.1"));
  EXPECT_TRUE(mapping.source_to_peer.empty());
  EXPECT_TRUE(mapping.peer_ases.empty());
}

TEST(ClassfulPrefixLength, FollowsClassBoundaries) {
  EXPECT_EQ(classful_prefix_length(*net::IPv4Address::parse("4.0.0.0")), 8);
  EXPECT_EQ(classful_prefix_length(*net::IPv4Address::parse("127.0.0.0")), 8);
  EXPECT_EQ(classful_prefix_length(*net::IPv4Address::parse("128.0.0.0")), 16);
  EXPECT_EQ(classful_prefix_length(*net::IPv4Address::parse("191.255.0.0")), 16);
  EXPECT_EQ(classful_prefix_length(*net::IPv4Address::parse("192.0.2.0")), 24);
  EXPECT_EQ(classful_prefix_length(*net::IPv4Address::parse("223.1.2.0")), 24);
}

TEST(SnapshotTable, MatchesRouteComputationMapping) {
  // The full-circle check: render the synthetic topology as dump text,
  // parse it back, run the paper's analysis, and compare with the direct
  // RouteComputation ingress peers.
  TopologyConfig config;
  config.tier1_count = 3;
  config.tier2_count = 10;
  config.stub_count = 30;
  const auto topology = AsTopology::generate(config, 4);
  const AsId target = 6;
  const auto target_prefix = *net::Prefix::parse("100.64.0.0/16");

  const auto table = snapshot_table(topology, target, std::vector{target_prefix});
  const auto reparsed = BgpTable::parse(table.to_text());
  ASSERT_TRUE(reparsed.has_value()) << reparsed.error().message;
  const auto mapping =
      reparsed->analyze_target(*net::IPv4Address::parse("100.64.1.1"));
  EXPECT_EQ(mapping.target_as, topology.as_number(target));

  const RouteComputation routes(topology, target);
  for (AsId source = 0; source < topology.as_count(); ++source) {
    if (source == target) continue;
    const AsId peer = routes.ingress_peer(source);
    if (peer < 0 || peer == source) continue;  // unreachable or direct peer
    const auto it = mapping.source_to_peer.find(topology.as_number(source));
    ASSERT_NE(it, mapping.source_to_peer.end()) << "source " << source;
    EXPECT_EQ(it->second, topology.as_number(peer)) << "source " << source;
  }
}

TEST(SnapshotTable, MoreSpecificAnnouncementDivertsSources) {
  // Announce a /16 plus a more-specific /24; the analysis must honour the
  // /24 for addresses it covers even though both share the same origin
  // here (structural LPM check on generated data).
  TopologyConfig config;
  config.tier1_count = 3;
  config.tier2_count = 8;
  config.stub_count = 20;
  const auto topology = AsTopology::generate(config, 5);
  const std::vector announced{*net::Prefix::parse("100.64.0.0/16"),
                              *net::Prefix::parse("100.64.7.0/24")};
  const auto table = snapshot_table(topology, 4, announced);
  const auto mapping = table.analyze_target(*net::IPv4Address::parse("100.64.7.9"));
  ASSERT_EQ(mapping.relevant_prefixes.size(), 2u);
  EXPECT_EQ(mapping.relevant_prefixes[1].length(), 24);
}

}  // namespace
}  // namespace infilter::routing
